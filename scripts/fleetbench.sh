#!/usr/bin/env bash
# fleetbench.sh — samserve fleet scaling curve.
#
# For each replica count given as an argument (default: 1 2 4), boots that
# many samserve replicas plus a samgate in front, drives the identical
# samload workload through the gateway, and writes a BENCH_PR8.json-style
# document to stdout (per-run samload summaries, host CPU count, and the
# gateway's scatter/sync counters). Progress and the human-readable samload
# reports go to stderr.
#
# Workload knobs come from the environment:
#
#   DURATION=5s CLIENTS=32 PROFILES=8 BATCH=1 scripts/fleetbench.sh 1 2 4
#
# PROFILES stays fixed across replica counts so every run scores the same
# corpus; placement spreads the shards over however many replicas exist.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNTS=("$@")
[ ${#COUNTS[@]} -eq 0 ] && COUNTS=(1 2 4)
DURATION=${DURATION:-5s}
CLIENTS=${CLIENTS:-32}
PROFILES=${PROFILES:-8}
BATCH=${BATCH:-1}
PORT_BASE=${PORT_BASE:-19080}
GW_PORT=${GW_PORT:-19070}

BIN=$(mktemp -d)
PIDS=()
cleanup() {
  [ ${#PIDS[@]} -gt 0 ] && kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/samserve" ./cmd/samserve
go build -o "$BIN/samgate" ./cmd/samgate
go build -o "$BIN/samload" ./cmd/samload

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "fleetbench: $1 never became healthy" >&2
  return 1
}

RUNS=""
for n in "${COUNTS[@]}"; do
  echo "== $n replica(s) ==" >&2
  PIDS=()
  replicas=""
  for i in $(seq 0 $((n - 1))); do
    port=$((PORT_BASE + i))
    "$BIN/samserve" -addr "127.0.0.1:$port" -log-format json >/dev/null 2>&1 &
    PIDS+=($!)
    replicas="$replicas${replicas:+,}http://127.0.0.1:$port"
  done
  for i in $(seq 0 $((n - 1))); do
    wait_healthy "http://127.0.0.1:$((PORT_BASE + i))"
  done
  "$BIN/samgate" -addr "127.0.0.1:$GW_PORT" -replicas "$replicas" \
    -log-format json >/dev/null 2>&1 &
  PIDS+=($!)
  wait_healthy "http://127.0.0.1:$GW_PORT"

  # One scatter-gathered training sweep per fleet size: four scenario
  # profiles spread over the replicas, merged in grid order by the gateway.
  curl -sf -X POST "127.0.0.1:$GW_PORT/v1/train/batch" -d '{"runs":6,"scenarios":[
    {"topo":"cluster"},{"topo":"cluster","tier":2},
    {"topo":"uniform6x6","protocol":"smr"},{"topo":"uniform6x6","tier":2,"protocol":"smr"}]}' >/dev/null

  out=$("$BIN/samload" -addr "http://127.0.0.1:$GW_PORT" -duration "$DURATION" \
    -clients "$CLIENTS" -profiles "$PROFILES" -batch "$BATCH" 2>/dev/null)
  printf '%s\n' "$out" | sed 's/^/    /' >&2
  summary=$(printf '%s\n' "$out" | grep '^{' | tail -n 1)
  [ -n "$summary" ] || { echo "fleetbench: no samload summary for n=$n" >&2; exit 1; }
  scatters=$(curl -sf "127.0.0.1:$GW_PORT/metrics" |
    awk '/^samgate_train_scatters_total/ {print $2}')
  RUNS="$RUNS${RUNS:+,
    }{\"replicas\": $n, \"train_scatters\": ${scatters:-0}, \"samload\": $summary}"

  kill "${PIDS[@]}" 2>/dev/null || true
  wait "${PIDS[@]}" 2>/dev/null || true
  PIDS=()
done

cat <<EOF
{
  "pr": 8,
  "date": "$(date -u +%F)",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "workload": {"mode": "detect via samgate", "duration": "$DURATION", "clients": $CLIENTS, "profiles": $PROFILES, "batch": $BATCH},
  "note": "Same samload workload driven through samgate at each fleet size; profile shards spread over the replicas by rendezvous placement. Replicas, gateway, and the load generator share this host's cores, so req_per_s scales with replica count only when cpus comfortably exceeds the fleet size; on a 1-CPU host the curve measures fleet overhead (extra hop + time-slicing), not speedup.",
  "runs": [
    $RUNS
  ]
}
EOF
