package samnet_test

// The benchmark suite regenerates every table and figure of the paper once
// per iteration, so `go test -bench=.` doubles as a smoke reproduction of
// the whole evaluation; per-op time measures the cost of the corresponding
// experiment. Ablation benchmarks at the bottom exercise the design choices
// DESIGN.md calls out.

import (
	"testing"

	"samnet/internal/attack"
	"samnet/internal/experiment"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mr"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// benchCfg keeps benchmark iterations cheap but statistically meaningful.
var benchCfg = experiment.Config{Runs: 10, Seed: 2005}

func benchArtifact(b *testing.B, id string) {
	def, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		art := def.Run(benchCfg)
		if len(art.Tables) == 0 || len(art.Tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1RoutesAffected(b *testing.B) { benchArtifact(b, "table1") }
func BenchmarkTable2Overhead(b *testing.B)       { benchArtifact(b, "table2") }
func BenchmarkFig5PMF(b *testing.B)              { benchArtifact(b, "fig5") }
func BenchmarkFig6Pmax(b *testing.B)             { benchArtifact(b, "fig6") }
func BenchmarkFig7Phi(b *testing.B)              { benchArtifact(b, "fig7") }
func BenchmarkFig8LongTunnel(b *testing.B)       { benchArtifact(b, "fig8") }
func BenchmarkFig9RandomTopology(b *testing.B)   { benchArtifact(b, "fig9") }
func BenchmarkFig10RandomPmax(b *testing.B)      { benchArtifact(b, "fig10") }
func BenchmarkFig11TierPmax(b *testing.B)        { benchArtifact(b, "fig11") }
func BenchmarkFig12TierPhi(b *testing.B)         { benchArtifact(b, "fig12") }
func BenchmarkFig13ProtocolPmax(b *testing.B)    { benchArtifact(b, "fig13") }
func BenchmarkFig14ProtocolPhi(b *testing.B)     { benchArtifact(b, "fig14") }
func BenchmarkFig15MultiWormhole(b *testing.B)   { benchArtifact(b, "fig15") }
func BenchmarkDetectionPipeline(b *testing.B)    { benchArtifact(b, "detection") }
func BenchmarkLeashComparison(b *testing.B)      { benchArtifact(b, "leash") }
func BenchmarkProtocolSweep(b *testing.B)        { benchArtifact(b, "protocols") }
func BenchmarkRushingAttack(b *testing.B)        { benchArtifact(b, "rushing") }
func BenchmarkChannelLoss(b *testing.B)          { benchArtifact(b, "loss") }
func BenchmarkMobility(b *testing.B)             { benchArtifact(b, "mobility") }
func BenchmarkBlackholeEarlyReply(b *testing.B)  { benchArtifact(b, "blackhole") }
func BenchmarkAdaptiveProfile(b *testing.B)      { benchArtifact(b, "adaptive") }
func BenchmarkROCSweep(b *testing.B)             { benchArtifact(b, "roc") }
func BenchmarkPacketDeliveryRatio(b *testing.B)  { benchArtifact(b, "pdr") }

// BenchmarkSweepTable1 measures the full Table I sweep (four conditions x 10
// runs) serially, so ns/op tracks the discovery hot path itself rather than
// pool scheduling.
func BenchmarkSweepTable1(b *testing.B) {
	def, err := experiment.ByID("table1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.Config{Runs: 10, Seed: 2005, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		art := def.Run(cfg)
		if len(art.Tables) == 0 || len(art.Tables[0].Rows) == 0 {
			b.Fatal("table1 produced no rows")
		}
	}
}

// discoverOnce runs one MR discovery on a 1-tier cluster with one wormhole.
func discoverOnce(seed uint64, p routing.Protocol, worms int) *routing.Discovery {
	net := topology.Cluster(1, 2)
	if worms > 0 {
		sc := attack.NewScenario(net, worms, attack.Forward)
		defer sc.Teardown()
	}
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
	return p.Discover(s, net.SrcPool[0], net.DstPool[len(net.DstPool)-1])
}

// benchDiscovery measures steady-state route discovery — the shape the
// experiment harness runs it in: topology and scenario built once, the
// network Reset and re-armed per run (see sim.Network.Reset).
func benchDiscovery(b *testing.B, p routing.Protocol) {
	net := topology.Cluster(1, 2)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(uint64(i + 1))
		sc.Arm(s)
		d := p.Discover(s, src, dst)
		if len(d.Routes) == 0 {
			b.Fatal("no routes")
		}
	}
}

// BenchmarkDiscoveryMR measures one multi-path route discovery.
func BenchmarkDiscoveryMR(b *testing.B) { benchDiscovery(b, &mr.Protocol{}) }

// BenchmarkDiscoveryDSR measures one DSR route discovery.
func BenchmarkDiscoveryDSR(b *testing.B) { benchDiscovery(b, &dsr.Protocol{}) }

// BenchmarkAnalyze measures SAM's statistical analysis of one route set.
func BenchmarkAnalyze(b *testing.B) {
	d := discoverOnce(7, &mr.Protocol{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sam.Analyze(d.Routes)
		if s.N == 0 {
			b.Fatal("no links")
		}
	}
}

// BenchmarkAnalyzeLarge measures Analyze on a route set an order of
// magnitude larger than one discovery's — the service's worst-case request
// shape — by pooling the routes of many discoveries.
func BenchmarkAnalyzeLarge(b *testing.B) {
	var d routing.Discovery
	for seed := uint64(1); seed <= 12; seed++ {
		d.Routes = append(d.Routes, discoverOnce(seed, &mr.Protocol{}, 1).Routes...)
	}
	if len(d.Routes) < 50 {
		b.Fatalf("want a large route set, got %d routes", len(d.Routes))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sam.Analyze(d.Routes)
		if s.N == 0 {
			b.Fatal("no links")
		}
	}
}

// BenchmarkAnalyzeParallel measures Analyze under concurrent callers — the
// batch-detection shape, where every worker shares the scratch pool.
func BenchmarkAnalyzeParallel(b *testing.B) {
	d := discoverOnce(7, &mr.Protocol{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := sam.Analyze(d.Routes)
			if s.N == 0 {
				b.Fatal("no links")
			}
		}
	})
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationSMRRule compares the paper's MR duplicate rule against
// strict SMR: routes found and overhead per discovery.
func BenchmarkAblationSMRRule(b *testing.B) {
	variants := []struct {
		name string
		p    func() routing.Protocol
	}{
		{"MR", func() routing.Protocol { return &mr.Protocol{} }},
		{"SMR", func() routing.Protocol { return &mr.Protocol{IncomingLinkRule: true} }},
		{"MR-unbounded", func() routing.Protocol { return &mr.Protocol{MaxForwards: -1} }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var routes, overhead int64
			for i := 0; i < b.N; i++ {
				d := discoverOnce(uint64(i+1), v.p(), 1)
				routes += int64(len(d.Routes))
				overhead += d.Overhead()
			}
			b.ReportMetric(float64(routes)/float64(b.N), "routes/op")
			b.ReportMetric(float64(overhead)/float64(b.N), "traffic/op")
		})
	}
}

// BenchmarkAblationWaitWindow sweeps the destination's collection slack —
// the paper's "certain amount of time" design parameter.
func BenchmarkAblationWaitWindow(b *testing.B) {
	for _, slack := range []struct {
		name  string
		value int
	}{
		{"strict", mr.HopSlackStrict},
		{"slack1", 1},
		{"slack2", 2},
		{"unbounded", mr.HopSlackNone},
	} {
		b.Run(slack.name, func(b *testing.B) {
			var routes int64
			for i := 0; i < b.N; i++ {
				d := discoverOnce(uint64(i+1), &mr.Protocol{HopSlack: slack.value}, 1)
				routes += int64(len(d.Routes))
			}
			b.ReportMetric(float64(routes)/float64(b.N), "routes/op")
		})
	}
}

// BenchmarkAblationDetector compares detector feature sets: pmax-only
// z-score, phi-only, and the combined rule, reporting detection and false-
// alarm rates over the cluster workload.
func BenchmarkAblationDetector(b *testing.B) {
	train := func() *sam.Profile {
		tr := sam.NewTrainer("bench", 0)
		for i := 0; i < 20; i++ {
			d := discoverOnce(uint64(100+i), &mr.Protocol{}, 0)
			tr.ObserveRoutes(d.Routes)
		}
		p, err := tr.Profile()
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	profile := train()
	variants := []struct {
		name string
		cfg  sam.DetectorConfig
	}{
		{"combined", sam.DetectorConfig{}},
		{"pmax-sensitive", sam.DetectorConfig{ZLow: 1, ZHigh: 2.5}},
		{"conservative", sam.DetectorConfig{ZLow: 3, ZHigh: 6}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var detected, falseAlarm int64
			for i := 0; i < b.N; i++ {
				det := sam.NewDetector(profile, v.cfg)
				atk := det.Evaluate(sam.Analyze(discoverOnce(uint64(i+1), &mr.Protocol{}, 1).Routes))
				if atk.Decision != sam.Normal {
					detected++
				}
				norm := det.Evaluate(sam.Analyze(discoverOnce(uint64(i+1), &mr.Protocol{}, 0).Routes))
				if norm.Decision != sam.Normal {
					falseAlarm++
				}
			}
			b.ReportMetric(float64(detected)/float64(b.N), "detect-rate")
			b.ReportMetric(float64(falseAlarm)/float64(b.N), "false-rate")
		})
	}
}

// BenchmarkAblationBeta sweeps the forgetting factor of the adaptive
// profile update and reports how far the adaptive mean drifts over a
// sequence of normal observations.
func BenchmarkAblationBeta(b *testing.B) {
	tr := sam.NewTrainer("bench", 0)
	for i := 0; i < 20; i++ {
		tr.ObserveRoutes(discoverOnce(uint64(100+i), &mr.Protocol{}, 0).Routes)
	}
	profile, err := tr.Profile()
	if err != nil {
		b.Fatal(err)
	}
	for _, beta := range []float64{0.05, 0.1, 0.3} {
		name := "beta" + trimFloat(beta)
		b.Run(name, func(b *testing.B) {
			var drift float64
			for i := 0; i < b.N; i++ {
				det := sam.NewDetector(profile, sam.DetectorConfig{Beta: beta})
				start, _ := det.AdaptiveMeans()
				for j := 0; j < 10; j++ {
					st := sam.Analyze(discoverOnce(uint64(200+10*i+j), &mr.Protocol{}, 0).Routes)
					v := det.Evaluate(st)
					det.Update(st, v.Lambda)
				}
				end, _ := det.AdaptiveMeans()
				if end > start {
					drift += end - start
				} else {
					drift += start - end
				}
			}
			b.ReportMetric(drift/float64(b.N), "pmax-drift")
		})
	}
}

func trimFloat(f float64) string {
	switch f {
	case 0.05:
		return "005"
	case 0.1:
		return "010"
	case 0.3:
		return "030"
	}
	return "x"
}
