module samnet

go 1.22
