// Package geom provides the small amount of planar geometry the wireless
// topology and packet-leash modules need: points, distances and axis-aligned
// rectangles. All coordinates are in abstract "grid units"; the topology
// package decides what one unit means (one grid spacing).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on the adjacency-test hot path.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3g,%.3g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a Rect with Min==Max is a degenerate point region.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	r := Rect{Min: a, Max: b}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Bounds returns the bounding rectangle of the given points. It returns the
// zero Rect if pts is empty.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}
