package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(1, 1), Pt(1, 2), 1},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		return almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Confine to a sane range to dodge overflow-to-inf artifacts.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a, b, c := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by)), Pt(clamp(cx), clamp(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	p := Pt(2, 3)
	if got := p.Add(Pt(1, -1)); got != Pt(3, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(1, -1)); got != Pt(1, 4) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(4, 6) {
		t.Errorf("Scale = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
	if got := a.Lerp(b, 2); got != Pt(20, 40) {
		t.Errorf("Lerp extrapolation = %v", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(5, -1), Pt(-2, 7))
	if r.Min != Pt(-2, -1) || r.Max != Pt(5, 7) {
		t.Errorf("NewRect = %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 5), Pt(5, 10.001), Pt(11, 11)} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(Pt(1, 2), Pt(4, 8))
	if r.Width() != 3 || r.Height() != 6 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if r.Center() != Pt(2.5, 5) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(1, -1), Pt(5, 1))
	u := a.Union(b)
	if u.Min != Pt(0, -1) || u.Max != Pt(5, 2) {
		t.Errorf("Union = %+v", u)
	}
}

func TestBounds(t *testing.T) {
	if got := Bounds(nil); got != (Rect{}) {
		t.Errorf("Bounds(nil) = %+v", got)
	}
	pts := []Point{Pt(3, 1), Pt(-2, 4), Pt(0, 0)}
	r := Bounds(pts)
	if r.Min != Pt(-2, 0) || r.Max != Pt(3, 4) {
		t.Errorf("Bounds = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounds does not contain %v", p)
		}
	}
}

func TestBoundsContainsAllProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Pt(math.Mod(xs[i], 1e6), math.Mod(ys[i], 1e6))
		}
		r := Bounds(pts)
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
