package routing

import (
	"testing"

	"samnet/internal/geom"
	"samnet/internal/topology"
)

func TestRouteBasics(t *testing.T) {
	r := Route{0, 1, 2, 3}
	if r.Hops() != 3 {
		t.Errorf("Hops = %d", r.Hops())
	}
	if (Route{}).Hops() != 0 || (Route{5}).Hops() != 0 {
		t.Error("degenerate routes should have 0 hops")
	}
	links := r.Links()
	if len(links) != 3 || links[0] != topology.MkLink(0, 1) || links[2] != topology.MkLink(2, 3) {
		t.Errorf("Links = %v", links)
	}
	if !r.Contains(2) || r.Contains(9) {
		t.Error("Contains wrong")
	}
	if !r.ContainsLink(topology.MkLink(2, 1)) {
		t.Error("ContainsLink should be direction-independent")
	}
	if r.ContainsLink(topology.MkLink(0, 2)) {
		t.Error("ContainsLink false positive")
	}
	if r.String() != "0>1>2>3" {
		t.Errorf("String = %q", r.String())
	}
}

func TestRouteCloneIndependent(t *testing.T) {
	r := Route{0, 1, 2}
	c := r.Clone()
	c[0] = 9
	if r[0] != 0 {
		t.Error("Clone aliases the original")
	}
}

func TestRouteEqual(t *testing.T) {
	if !(Route{1, 2}).Equal(Route{1, 2}) {
		t.Error("equal routes unequal")
	}
	if (Route{1, 2}).Equal(Route{2, 1}) {
		t.Error("reversed routes equal")
	}
	if (Route{1}).Equal(Route{1, 2}) {
		t.Error("prefix routes equal")
	}
}

func TestRouteSimple(t *testing.T) {
	if !(Route{0, 1, 2}).Simple() {
		t.Error("simple route misreported")
	}
	if (Route{0, 1, 0}).Simple() {
		t.Error("looping route reported simple")
	}
}

func TestRouteValid(t *testing.T) {
	topo := topology.New("line", 1.001)
	for i := 0; i < 4; i++ {
		topo.AddNode(geom.Pt(float64(i), 0))
	}
	if !(Route{0, 1, 2, 3}).Valid(topo) {
		t.Error("adjacent route invalid")
	}
	if (Route{0, 2}).Valid(topo) {
		t.Error("non-adjacent hop accepted")
	}
	topo.AddExtraLink(0, 3)
	if !(Route{0, 3}).Valid(topo) {
		t.Error("tunnel hop should be valid")
	}
}

func TestSharedLinks(t *testing.T) {
	a := Route{0, 1, 2, 3}
	b := Route{5, 1, 2, 3}
	if got := a.SharedLinks(b); got != 2 {
		t.Errorf("SharedLinks = %d, want 2", got)
	}
	if got := a.SharedLinks(Route{7, 8}); got != 0 {
		t.Errorf("disjoint SharedLinks = %d", got)
	}
}

func TestSelectDisjointPrefersDisjoint(t *testing.T) {
	fast := Route{0, 1, 2, 9}
	overlapping := Route{0, 1, 2, 5, 9}
	disjoint := Route{0, 6, 7, 8, 9}
	got := SelectDisjoint([]Route{fast, overlapping, disjoint}, 2)
	if len(got) != 2 {
		t.Fatalf("selected %d routes", len(got))
	}
	if !got[0].Equal(fast) {
		t.Error("first selected route must be the first candidate")
	}
	if !got[1].Equal(disjoint) {
		t.Errorf("second selected = %v, want the disjoint one", got[1])
	}
}

func TestSelectDisjointEdgeCases(t *testing.T) {
	if SelectDisjoint(nil, 3) != nil {
		t.Error("empty candidates should yield nil")
	}
	if SelectDisjoint([]Route{{0, 1}}, 0) != nil {
		t.Error("max=0 should yield nil")
	}
	one := []Route{{0, 1}}
	if got := SelectDisjoint(one, 5); len(got) != 1 {
		t.Errorf("selected %d from 1 candidate", len(got))
	}
}

func TestDedupRoutes(t *testing.T) {
	a := Route{0, 1, 2}
	b := Route{0, 2, 1} // different order: distinct
	routes := DedupRoutes([]Route{a, b, a.Clone(), b.Clone()})
	if len(routes) != 2 {
		t.Fatalf("dedup kept %d routes", len(routes))
	}
	if !routes[0].Equal(a) || !routes[1].Equal(b) {
		t.Error("dedup must preserve first-occurrence order")
	}
}

func TestDiscoveryAffectedBy(t *testing.T) {
	tunnel := topology.MkLink(5, 6)
	d := &Discovery{Routes: []Route{
		{0, 5, 6, 9},
		{0, 1, 2, 9},
		{0, 5, 6, 8, 9},
		{0, 6, 5, 9}, // reversed traversal still contains the link
	}}
	if got := d.AffectedBy(tunnel); got != 0.75 {
		t.Errorf("AffectedBy = %v, want 0.75", got)
	}
	empty := &Discovery{}
	if got := empty.AffectedBy(tunnel); got != 0 {
		t.Errorf("empty AffectedBy = %v", got)
	}
}

func TestSortRoutesByHops(t *testing.T) {
	routes := []Route{{0, 1, 2, 3}, {0, 3}, {0, 1, 3}}
	SortRoutesByHops(routes)
	if routes[0].Hops() != 1 || routes[2].Hops() != 3 {
		t.Errorf("sorted = %v", routes)
	}
}
