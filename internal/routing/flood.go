package routing

import (
	"sort"
	"sync/atomic"

	"samnet/internal/sim"
	"samnet/internal/topology"
)

// NodeState is the per-node, per-request bookkeeping the paper's forwarding
// rules consult: the hop count and incoming link of the first copy received,
// and how many copies the node has forwarded in total and per incoming link.
type NodeState struct {
	Seen          bool
	FirstHops     int
	FirstFrom     topology.NodeID
	Forwarded     int
	ForwardedFrom map[topology.NodeID]int
}

// ForwardsFrom returns how many copies arriving via neighbor from this node
// has already forwarded.
func (st *NodeState) ForwardsFrom(from topology.NodeID) int {
	return st.ForwardedFrom[from]
}

// ForwardRule decides whether node self forwards an RREQ copy that arrived
// from neighbor from. st is this node's state for the request; st.Seen is
// false exactly on the first arrival (the framework sets Seen/FirstHops/
// FirstFrom after the call). Rules must not mutate q.
type ForwardRule func(self, from topology.NodeID, q *RREQ, st *NodeState) bool

// FloodConfig parameterizes the shared flooding framework that DSR and MR
// are built from.
type FloodConfig struct {
	// Name labels the protocol in Discovery records.
	Name string
	// Rule is the duplicate-forwarding decision.
	Rule ForwardRule
	// MaxForwards caps how many RREQ copies one intermediate node forwards
	// per request (0 = unlimited). The paper's MR overhead (about twice
	// DSR's, Table II) implies the first copy plus roughly one duplicate
	// per node, so mr.Protocol defaults this to 2; the unlimited variant is
	// kept for the ablation benchmark.
	MaxForwards int
	// ReplyAll makes the destination reply to every collected route (DSR
	// behaviour); otherwise it replies to up to MaxReplies maximally
	// disjoint routes (SMR behaviour).
	ReplyAll bool
	// MaxReplies bounds replies when ReplyAll is false (default 2).
	MaxReplies int
	// WaitWindow truncates the collected route set to copies arriving
	// within WaitWindow of the first arrival. Zero means no truncation:
	// the destination collects until the flood dies out.
	WaitWindow sim.Time
	// HopSlack applies the paper's hop-count rule at the destination too:
	// collected routes may exceed the first-arriving route's hop count by
	// at most HopSlack (negative disables the filter). The paper's
	// destination "waits a certain amount of time ... to collect all the
	// obtained routes"; bounding by hop count rather than wall-clock keeps
	// the collection deterministic. Zero (the default) keeps only routes as
	// short as the first one.
	HopSlack int
	// SuppressReplies skips the RREP phase entirely (used by analyses that
	// only need the route set).
	SuppressReplies bool
}

type arrival struct {
	route Route
	at    sim.Time
}

// floodRun is the Handler shared by every node during one discovery.
type floodRun struct {
	cfg   FloodConfig
	reqID uint64
	src   topology.NodeID
	dst   topology.NodeID

	state    map[topology.NodeID]*NodeState
	arrivals []arrival
	replies  []Route // RREPs that made it back to the source
}

// reqCounter issues request ids. Atomic: experiment sweeps run discoveries
// on parallel workers, each with its own network but sharing this counter.
var reqCounter atomic.Uint64

// RunDiscovery floods one route request from src to dst over net using the
// given rule set, runs the simulation until the flood (and reply phase)
// completes, and returns the Discovery. It installs handlers on every node;
// callers wanting a pristine network should pass a fresh one.
func RunDiscovery(net *sim.Network, src, dst topology.NodeID, cfg FloodConfig) *Discovery {
	if cfg.MaxReplies == 0 {
		cfg.MaxReplies = 2
	}
	if src == dst {
		panic("routing: src == dst")
	}
	run := &floodRun{
		cfg:   cfg,
		reqID: reqCounter.Add(1),
		src:   src,
		dst:   dst,
		state: make(map[topology.NodeID]*NodeState),
	}
	net.SetAllHandlers(run)

	net.Schedule(0, func() {
		net.Broadcast(src, &RREQ{ReqID: run.reqID, Src: src, Dst: dst, Path: Route{src}})
	})
	net.Run()

	d := &Discovery{Protocol: cfg.Name, Src: src, Dst: dst}
	routes := run.collectRoutes()
	d.Routes = routes
	if len(run.arrivals) > 0 {
		d.FirstArrival = run.arrivals[0].at
		d.LastArrival = run.arrivals[len(run.arrivals)-1].at
	}

	if !cfg.SuppressReplies && len(routes) > 0 {
		var toReply []Route
		if cfg.ReplyAll {
			toReply = routes
		} else {
			toReply = SelectDisjoint(routes, cfg.MaxReplies)
		}
		for _, r := range toReply {
			r := r
			net.Schedule(0, func() {
				sendRREP(net, run.reqID, r)
			})
		}
		net.Run()
		d.Replies = run.replies
	}

	d.TxTotal, d.RxTotal = net.TotalTraffic()
	return d
}

// collectRoutes dedups arrivals and applies the wait window and hop slack,
// preserving arrival order.
func (f *floodRun) collectRoutes() []Route {
	if len(f.arrivals) == 0 {
		return nil
	}
	cutoff := sim.Forever
	if f.cfg.WaitWindow > 0 {
		cutoff = f.arrivals[0].at + f.cfg.WaitWindow
	}
	maxHops := int(^uint(0) >> 1)
	if f.cfg.HopSlack >= 0 {
		maxHops = f.arrivals[0].route.Hops() + f.cfg.HopSlack
	}
	var routes []Route
	for _, a := range f.arrivals {
		if a.at <= cutoff && a.route.Hops() <= maxHops {
			routes = append(routes, a.route)
		}
	}
	return DedupRoutes(routes)
}

func sendRREP(net *sim.Network, reqID uint64, route Route) {
	if len(route) < 2 {
		return
	}
	last := len(route) - 1
	net.Unicast(route[last], route[last-1], &RREP{ReqID: reqID, Route: route.Clone(), Pos: last - 1})
}

// Recv implements sim.Handler.
func (f *floodRun) Recv(net *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
	switch p := pkt.(type) {
	case *RREQ:
		f.recvRREQ(net, self, from, p)
	case *RREP:
		f.recvRREP(net, self, p)
	case *Data:
		RelayData(net, self, p)
	case *ACK:
		RelayACK(net, self, p)
	}
}

func (f *floodRun) recvRREQ(net *sim.Network, self, from topology.NodeID, q *RREQ) {
	if q.ReqID != f.reqID || self == f.src {
		return
	}
	if self == f.dst {
		route := append(q.Path.Clone(), self)
		f.arrivals = append(f.arrivals, arrival{route: route, at: net.Now()})
		return
	}
	if q.Path.Contains(self) {
		return // loop: this copy already traversed us
	}
	st := f.state[self]
	if st == nil {
		st = &NodeState{}
		f.state[self] = st
	}
	forward := f.cfg.Rule(self, from, q, st)
	if forward && f.cfg.MaxForwards > 0 && st.Forwarded >= f.cfg.MaxForwards {
		forward = false
	}
	if !st.Seen {
		st.Seen = true
		st.FirstHops = q.Hops()
		st.FirstFrom = from
	}
	if forward {
		st.Forwarded++
		if st.ForwardedFrom == nil {
			st.ForwardedFrom = make(map[topology.NodeID]int)
		}
		st.ForwardedFrom[from]++
		fwd := &RREQ{
			ReqID: q.ReqID,
			Src:   q.Src,
			Dst:   q.Dst,
			Path:  append(q.Path.Clone(), self),
		}
		net.Broadcast(self, fwd)
	}
}

func (f *floodRun) recvRREP(net *sim.Network, self topology.NodeID, p *RREP) {
	if p.ReqID != f.reqID || p.Route[p.Pos] != self {
		return
	}
	if p.Pos == 0 {
		// Reached the source: the route is usable.
		f.replies = append(f.replies, p.Route)
		return
	}
	next := &RREP{ReqID: p.ReqID, Route: p.Route, Pos: p.Pos - 1}
	net.Unicast(self, p.Route[p.Pos-1], next)
}

// RelayData forwards a source-routed Data packet one hop, or emits the ACK
// when it has reached the final hop. Exported so probe-only handlers can
// reuse it.
func RelayData(net *sim.Network, self topology.NodeID, p *Data) {
	if p.Route[p.Pos] != self {
		return
	}
	if p.Pos == len(p.Route)-1 {
		// Destination: acknowledge end-to-end along the reverse route.
		if len(p.Route) >= 2 {
			ack := &ACK{SeqNo: p.SeqNo, Route: p.Route, Pos: len(p.Route) - 2}
			net.Unicast(self, p.Route[len(p.Route)-2], ack)
		}
		return
	}
	next := &Data{SeqNo: p.SeqNo, Route: p.Route, Pos: p.Pos + 1}
	net.Unicast(self, p.Route[p.Pos+1], next)
}

// RelayACK walks an ACK backwards along its route. When it reaches index 0
// the source has its acknowledgement; AckSink handlers observe that.
func RelayACK(net *sim.Network, self topology.NodeID, p *ACK) {
	if p.Route[p.Pos] != self || p.Pos == 0 {
		return
	}
	next := &ACK{SeqNo: p.SeqNo, Route: p.Route, Pos: p.Pos - 1}
	net.Unicast(self, p.Route[p.Pos-1], next)
}

// ProbeResult reports one source-routed probe: whether the data packet's
// end-to-end ACK returned to the source.
type ProbeResult struct {
	Route Route
	Acked bool
}

// ProbeRoutes sends one Data packet along each route and reports which ACKs
// came back. It installs minimal relay handlers on every node (replacing any
// discovery handlers) and uses the network's drop function, so black/grey
// hole attackers on a route surface as missing ACKs — SAM's step 2.
func ProbeRoutes(net *sim.Network, routes []Route) []ProbeResult {
	acked := make(map[uint64]bool)
	h := sim.HandlerFunc(func(n *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
		switch p := pkt.(type) {
		case *Data:
			RelayData(n, self, p)
		case *ACK:
			if p.Route[p.Pos] == self && p.Pos == 0 && self == p.Route[0] {
				acked[p.SeqNo] = true
			} else {
				RelayACK(n, self, p)
			}
		}
	})
	net.SetAllHandlers(h)
	for i, r := range routes {
		if len(r) < 2 {
			continue
		}
		seq, r := uint64(i+1), r
		net.Schedule(0, func() {
			net.Unicast(r[0], r[1], &Data{SeqNo: seq, Route: r.Clone(), Pos: 1})
		})
	}
	net.Run()
	out := make([]ProbeResult, len(routes))
	for i, r := range routes {
		out[i] = ProbeResult{Route: r, Acked: acked[uint64(i+1)]}
	}
	return out
}

// SortRoutesByHops orders routes by increasing hop count, stable.
func SortRoutesByHops(routes []Route) {
	sort.SliceStable(routes, func(i, j int) bool { return routes[i].Hops() < routes[j].Hops() })
}
