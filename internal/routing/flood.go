package routing

import (
	"slices"
	"sync"

	"samnet/internal/sim"
	"samnet/internal/topology"
)

// NodeState is the per-node, per-request bookkeeping the paper's forwarding
// rules consult: the hop count and incoming link of the first copy received,
// and how many copies the node has forwarded in total and per incoming link.
type NodeState struct {
	Seen      bool
	FirstHops int
	FirstFrom topology.NodeID
	Forwarded int

	// Per-incoming-link forward counts, as parallel slices: a node has a
	// handful of neighbors, so a linear scan beats a map and the slices
	// recycle across pooled discoveries.
	fromIDs    []topology.NodeID
	fromCounts []int

	// gen tags which discovery last touched this entry; state is stored in
	// a dense generation-tagged slice, so starting a discovery is O(1)
	// instead of clearing (or reallocating) a map.
	gen uint64
}

// ForwardsFrom returns how many copies arriving via neighbor from this node
// has already forwarded.
func (st *NodeState) ForwardsFrom(from topology.NodeID) int {
	for i, id := range st.fromIDs {
		if id == from {
			return st.fromCounts[i]
		}
	}
	return 0
}

// AddForward records one forwarded copy that arrived via from. The flood
// framework calls it on every forward; tests build states with it.
func (st *NodeState) AddForward(from topology.NodeID) {
	st.Forwarded++
	for i, id := range st.fromIDs {
		if id == from {
			st.fromCounts[i]++
			return
		}
	}
	st.fromIDs = append(st.fromIDs, from)
	st.fromCounts = append(st.fromCounts, 1)
}

// reset clears the state in place for a new discovery, keeping slice
// capacity.
func (st *NodeState) reset(gen uint64) {
	st.Seen = false
	st.FirstHops = 0
	st.FirstFrom = 0
	st.Forwarded = 0
	st.fromIDs = st.fromIDs[:0]
	st.fromCounts = st.fromCounts[:0]
	st.gen = gen
}

// ForwardRule decides whether node self forwards an RREQ copy that arrived
// from neighbor from. st is this node's state for the request; st.Seen is
// false exactly on the first arrival (the framework sets Seen/FirstHops/
// FirstFrom after the call). Rules must not mutate q.
type ForwardRule func(self, from topology.NodeID, q *RREQ, st *NodeState) bool

// ForgeFunc is the Byzantine route-reply hook: when installed, it is
// consulted once per node on the first RREQ copy that node receives. prefix
// is the real path the request traversed, source first, self last. Returning
// a non-nil route makes the framework send an RREP for it immediately —
// mid-flood, before the destination has answered anything. The returned
// route must start with prefix (the reply walks those links backwards, and
// they must exist); everything after self may be fabricated. Returning nil
// forges nothing at this node. Honest nodes are modeled by a hook that
// ignores them.
type ForgeFunc func(self, from topology.NodeID, q *RREQ, prefix Route) Route

// FloodConfig parameterizes the shared flooding framework that DSR and MR
// are built from.
type FloodConfig struct {
	// Name labels the protocol in Discovery records.
	Name string
	// Rule is the duplicate-forwarding decision.
	Rule ForwardRule
	// MaxForwards caps how many RREQ copies one intermediate node forwards
	// per request (0 = unlimited). The paper's MR overhead (about twice
	// DSR's, Table II) implies the first copy plus roughly one duplicate
	// per node, so mr.Protocol defaults this to 2; the unlimited variant is
	// kept for the ablation benchmark.
	MaxForwards int
	// ReplyAll makes the destination reply to every collected route (DSR
	// behaviour); otherwise it replies to up to MaxReplies maximally
	// disjoint routes (SMR behaviour).
	ReplyAll bool
	// MaxReplies bounds replies when ReplyAll is false (default 2).
	MaxReplies int
	// WaitWindow truncates the collected route set to copies arriving
	// within WaitWindow of the first arrival. Zero means no truncation:
	// the destination collects until the flood dies out.
	WaitWindow sim.Time
	// HopSlack applies the paper's hop-count rule at the destination too:
	// collected routes may exceed the first-arriving route's hop count by
	// at most HopSlack (negative disables the filter). The paper's
	// destination "waits a certain amount of time ... to collect all the
	// obtained routes"; bounding by hop count rather than wall-clock keeps
	// the collection deterministic. Zero (the default) keeps only routes as
	// short as the first one.
	HopSlack int
	// SuppressReplies skips the RREP phase entirely (used by analyses that
	// only need the route set).
	SuppressReplies bool
	// Avoid excludes nodes from the flood: an avoided node neither forwards
	// nor accepts request copies, so no discovered route traverses it. The
	// IDS's step-3 isolation feeds condemned attackers in through this hook
	// (verify.IsolationSet.Avoid). Nil means no exclusion.
	Avoid func(topology.NodeID) bool
	// Forge, when non-nil, lets Byzantine nodes answer route requests with
	// fabricated replies (see ForgeFunc). Nil — the default and the only
	// value honest workloads use — costs nothing.
	Forge ForgeFunc
}

// pathArena stores every RREQ path of one discovery as a parent-linked
// forest: entry i appends one node to the path ending at its parent entry,
// so all copies share common prefixes and forwarding costs O(1) bookkeeping
// instead of an O(hops) clone. Routes materialize as node slices only for
// the arrivals that survive the destination's filters.
type pathArena struct {
	node   []topology.NodeID
	parent []int32
	hops   []int32 // hop count of the path ending at this entry
}

func (a *pathArena) reset() {
	a.node = a.node[:0]
	a.parent = a.parent[:0]
	a.hops = a.hops[:0]
}

// push appends node to the path ending at parent (-1 starts a path) and
// returns the new entry's ref.
func (a *pathArena) push(parent int32, node topology.NodeID) int32 {
	var h int32
	if parent >= 0 {
		h = a.hops[parent] + 1
	}
	a.node = append(a.node, node)
	a.parent = append(a.parent, parent)
	a.hops = append(a.hops, h)
	return int32(len(a.node) - 1)
}

// contains reports whether the path ending at ref traverses id.
func (a *pathArena) contains(ref int32, id topology.NodeID) bool {
	for i := ref; i >= 0; i = a.parent[i] {
		if a.node[i] == id {
			return true
		}
	}
	return false
}

// samePath reports whether refs p and q denote identical node sequences.
// Paths converge once they share an entry, so the walk short-circuits on
// shared prefixes.
func (a *pathArena) samePath(p, q int32) bool {
	if a.hops[p] != a.hops[q] {
		return false
	}
	for p != q {
		if a.node[p] != a.node[q] {
			return false
		}
		p, q = a.parent[p], a.parent[q]
	}
	return true
}

// appendPath writes the path ending at ref onto dst, source first.
func (a *pathArena) appendPath(dst Route, ref int32) Route {
	start := len(dst)
	for i := ref; i >= 0; i = a.parent[i] {
		dst = append(dst, a.node[i])
	}
	slices.Reverse(dst[start:])
	return dst
}

// rreqChunk sizes the RREQ arena's allocation unit.
const rreqChunk = 64

// rreqArena hands out RREQ structs in fixed chunks so their addresses stay
// stable while the arena grows — queued deliveries hold *RREQ across pushes.
type rreqArena struct {
	chunks [][]RREQ
	ci     int // chunk being filled
	used   int // entries used in chunks[ci]
}

func (a *rreqArena) reset() { a.ci, a.used = 0, 0 }

func (a *rreqArena) get() *RREQ {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]RREQ, rreqChunk))
	}
	q := &a.chunks[a.ci][a.used]
	a.used++
	if a.used == rreqChunk {
		a.ci++
		a.used = 0
	}
	return q
}

type arrival struct {
	ref int32 // arena entry of the full route (destination included)
	at  sim.Time
}

// floodRun is the Handler shared by every node during one discovery. Runs
// are pooled: all scratch (arena, per-node state, arrival list) survives
// into the next discovery, so a steady-state discovery's flood phase does
// not allocate.
type floodRun struct {
	cfg   FloodConfig
	reqID uint64
	src   topology.NodeID
	dst   topology.NodeID

	gen        uint64
	state      []NodeState // dense, indexed by NodeID, generation-tagged
	arena      pathArena
	rreqs      rreqArena
	arrivals   []arrival
	kept       []int32    // collectRoutes scratch: surviving arrival refs
	keptAt     []sim.Time // arrival times parallel to kept
	replies    []Route    // RREPs that made it back to the source
	replyTimes []sim.Time // source-side arrival time of each reply
}

var floodPool = sync.Pool{New: func() any { return new(floodRun) }}

func (f *floodRun) begin(net *sim.Network, src, dst topology.NodeID, cfg FloodConfig) {
	f.cfg = cfg
	f.reqID = net.NextID()
	f.src, f.dst = src, dst
	f.gen++
	if n := net.Topology().N(); n > len(f.state) {
		f.state = make([]NodeState, n)
	}
	f.arena.reset()
	f.rreqs.reset()
	f.arrivals = f.arrivals[:0]
	f.kept = f.kept[:0]
	f.keptAt = f.keptAt[:0]
	f.replies = f.replies[:0]
	f.replyTimes = f.replyTimes[:0]
}

// RunDiscovery floods one route request from src to dst over net using the
// given rule set, runs the simulation until the flood (and reply phase)
// completes, and returns the Discovery. It installs handlers on every node
// for the duration and clears them before returning; callers wanting a
// pristine network should pass a fresh (or Reset) one.
func RunDiscovery(net *sim.Network, src, dst topology.NodeID, cfg FloodConfig) *Discovery {
	if cfg.MaxReplies == 0 {
		cfg.MaxReplies = 2
	}
	if src == dst {
		panic("routing: src == dst")
	}
	run := floodPool.Get().(*floodRun)
	run.begin(net, src, dst, cfg)
	net.SetAllHandlers(run)

	q := run.rreqs.get()
	*q = RREQ{ReqID: run.reqID, Src: src, Dst: dst, arena: &run.arena, ref: run.arena.push(-1, src)}
	net.Broadcast(src, q)
	net.Run()

	d := &Discovery{Protocol: cfg.Name, Src: src, Dst: dst, FloodEnd: net.Now()}
	routes, times := run.collectRoutes()
	d.Routes = routes
	d.Times = times
	if len(run.arrivals) > 0 {
		d.FirstArrival = run.arrivals[0].at
		d.LastArrival = run.arrivals[len(run.arrivals)-1].at
	}

	if !cfg.SuppressReplies && len(routes) > 0 {
		var toReply []Route
		if cfg.ReplyAll {
			toReply = routes
		} else {
			toReply = SelectDisjoint(routes, cfg.MaxReplies)
		}
		for _, r := range toReply {
			sendRREP(net, run.reqID, r)
		}
		net.Run()
	}
	if len(run.replies) > 0 {
		// Forged replies arrive mid-flood, so this set can be non-empty even
		// when the destination never answered (or was never reached).
		d.Replies = append([]Route(nil), run.replies...)
		d.ReplyTimes = append([]sim.Time(nil), run.replyTimes...)
	}

	d.TxTotal, d.RxTotal = net.TotalTraffic()
	// The run goes back to the pool; nothing it owns may leak into the
	// Discovery (routes and replies are materialized copies) or stay
	// installed on the network.
	net.SetAllHandlers(nil)
	floodPool.Put(run)
	return d
}

// collectRoutes dedups arrivals and applies the wait window and hop slack,
// preserving arrival order, then materializes the survivors out of the
// arena into one backing slice, with each survivor's arrival time alongside.
func (f *floodRun) collectRoutes() ([]Route, []sim.Time) {
	if len(f.arrivals) == 0 {
		return nil, nil
	}
	cutoff := sim.Forever
	if f.cfg.WaitWindow > 0 {
		cutoff = f.arrivals[0].at + f.cfg.WaitWindow
	}
	maxHops := int32(^uint32(0) >> 1)
	if f.cfg.HopSlack >= 0 {
		maxHops = f.arena.hops[f.arrivals[0].ref] + int32(f.cfg.HopSlack)
	}
	f.kept = f.kept[:0]
	f.keptAt = f.keptAt[:0]
	total := 0
	for _, a := range f.arrivals {
		if a.at > cutoff || f.arena.hops[a.ref] > maxHops {
			continue
		}
		dup := false
		for _, k := range f.kept {
			if f.arena.samePath(k, a.ref) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		f.kept = append(f.kept, a.ref)
		f.keptAt = append(f.keptAt, a.at)
		total += int(f.arena.hops[a.ref]) + 1
	}
	if len(f.kept) == 0 {
		return nil, nil
	}
	backing := make(Route, 0, total)
	routes := make([]Route, len(f.kept))
	for i, ref := range f.kept {
		start := len(backing)
		backing = f.arena.appendPath(backing, ref)
		// Full slice expressions cap each route at its own end, so an
		// append by a caller reallocates instead of clobbering a sibling.
		routes[i] = backing[start:len(backing):len(backing)]
	}
	return routes, append([]sim.Time(nil), f.keptAt...)
}

func sendRREP(net *sim.Network, reqID uint64, route Route) {
	if len(route) < 2 {
		return
	}
	last := len(route) - 1
	net.Unicast(route[last], route[last-1], &RREP{ReqID: reqID, Route: route.Clone(), Pos: last - 1})
}

// Recv implements sim.Handler.
func (f *floodRun) Recv(net *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
	switch p := pkt.(type) {
	case *RREQ:
		f.recvRREQ(net, self, from, p)
	case *RREP:
		f.recvRREP(net, self, p)
	case *Data:
		RelayData(net, self, p)
	case *ACK:
		RelayACK(net, self, p)
	}
}

// refFor returns q's path as an entry of f's arena, importing an explicit
// Path if the request came from outside the framework.
func (f *floodRun) refFor(q *RREQ) int32 {
	if q.arena == &f.arena {
		return q.ref
	}
	ref := int32(-1)
	for _, id := range q.Path {
		ref = f.arena.push(ref, id)
	}
	return ref
}

func (f *floodRun) recvRREQ(net *sim.Network, self, from topology.NodeID, q *RREQ) {
	if q.ReqID != f.reqID || self == f.src {
		return
	}
	// Isolation filter: copies at or from a condemned node die here, before
	// any state is touched, so no collected route can traverse one.
	if f.cfg.Avoid != nil && (f.cfg.Avoid(self) || f.cfg.Avoid(from)) {
		return
	}
	if self == f.dst {
		ref := f.arena.push(f.refFor(q), self)
		f.arrivals = append(f.arrivals, arrival{ref: ref, at: net.Now()})
		return
	}
	if q.PathContains(self) {
		return // loop: this copy already traversed us
	}
	st := &f.state[self]
	if st.gen != f.gen {
		st.reset(f.gen)
	}
	if f.cfg.Forge != nil && !st.Seen {
		// Byzantine route-reply forgery: a malicious node answers the first
		// copy it sees with a fabricated route, racing the destination's
		// honest replies. The real prefix is materialized for the hook (and
		// walked backwards by the RREP), so only the suffix can lie.
		prefix := f.arena.appendPath(nil, f.arena.push(f.refFor(q), self))
		if forged := f.cfg.Forge(self, from, q, prefix); forged != nil {
			if len(prefix) >= 2 {
				net.Unicast(self, prefix[len(prefix)-2], &RREP{ReqID: f.reqID, Route: forged, Pos: len(prefix) - 2})
			}
		}
	}
	forward := f.cfg.Rule(self, from, q, st)
	if forward && f.cfg.MaxForwards > 0 && st.Forwarded >= f.cfg.MaxForwards {
		forward = false
	}
	if !st.Seen {
		st.Seen = true
		st.FirstHops = q.Hops()
		st.FirstFrom = from
	}
	if forward {
		st.AddForward(from)
		fwd := f.rreqs.get()
		*fwd = RREQ{ReqID: q.ReqID, Src: q.Src, Dst: q.Dst, arena: &f.arena, ref: f.arena.push(f.refFor(q), self)}
		net.Broadcast(self, fwd)
	}
}

func (f *floodRun) recvRREP(net *sim.Network, self topology.NodeID, p *RREP) {
	if p.ReqID != f.reqID || p.Route[p.Pos] != self {
		return
	}
	if p.Pos == 0 {
		// Reached the source: the route is usable.
		f.replies = append(f.replies, p.Route)
		f.replyTimes = append(f.replyTimes, net.Now())
		return
	}
	// Relay in place: the RREP has exactly one holder at a time, so
	// advancing Pos on the same packet saves an allocation per hop.
	p.Pos--
	net.Unicast(self, p.Route[p.Pos], p)
}

// RelayData forwards a source-routed Data packet one hop, or emits the ACK
// when it has reached the final hop. Exported so probe-only handlers can
// reuse it. The packet is relayed in place (Pos advances on the same
// struct); handlers must not retain it across deliveries.
func RelayData(net *sim.Network, self topology.NodeID, p *Data) {
	if p.Route[p.Pos] != self {
		return
	}
	if p.Pos == len(p.Route)-1 {
		// Destination: acknowledge end-to-end along the reverse route.
		if len(p.Route) >= 2 {
			ack := &ACK{SeqNo: p.SeqNo, Route: p.Route, Pos: len(p.Route) - 2}
			net.Unicast(self, p.Route[len(p.Route)-2], ack)
		}
		return
	}
	p.Pos++
	net.Unicast(self, p.Route[p.Pos], p)
}

// RelayACK walks an ACK backwards along its route, in place. When it
// reaches index 0 the source has its acknowledgement; AckSink handlers
// observe that.
func RelayACK(net *sim.Network, self topology.NodeID, p *ACK) {
	if p.Route[p.Pos] != self || p.Pos == 0 {
		return
	}
	p.Pos--
	net.Unicast(self, p.Route[p.Pos], p)
}

// ProbeResult reports one source-routed probe: whether the data packet's
// end-to-end ACK returned to the source.
type ProbeResult struct {
	Route Route
	Acked bool
}

// ProbeRoutes sends one Data packet along each route and reports which ACKs
// came back. It installs minimal relay handlers on every node (replacing any
// discovery handlers) and uses the network's drop function, so black/grey
// hole attackers on a route surface as missing ACKs — SAM's step 2.
func ProbeRoutes(net *sim.Network, routes []Route) []ProbeResult {
	acked := make(map[uint64]bool)
	h := sim.HandlerFunc(func(n *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
		switch p := pkt.(type) {
		case *Data:
			RelayData(n, self, p)
		case *ACK:
			if p.Route[p.Pos] == self && p.Pos == 0 && self == p.Route[0] {
				acked[p.SeqNo] = true
			} else {
				RelayACK(n, self, p)
			}
		}
	})
	net.SetAllHandlers(h)
	for i, r := range routes {
		if len(r) < 2 {
			continue
		}
		net.Unicast(r[0], r[1], &Data{SeqNo: uint64(i + 1), Route: r.Clone(), Pos: 1})
	}
	net.Run()
	out := make([]ProbeResult, len(routes))
	for i, r := range routes {
		out[i] = ProbeResult{Route: r, Acked: acked[uint64(i+1)]}
	}
	return out
}

// SortRoutesByHops orders routes by increasing hop count, stable.
func SortRoutesByHops(routes []Route) {
	slices.SortStableFunc(routes, func(a, b Route) int { return a.Hops() - b.Hops() })
}
