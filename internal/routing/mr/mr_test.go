package mr

import (
	"testing"

	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func discover(t *testing.T, p routing.Protocol, net *topology.Network, seed uint64) *routing.Discovery {
	t.Helper()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	return p.Discover(s, src, dst)
}

func TestMRFindsMultipleRoutes(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	d := discover(t, &Protocol{}, net, 1)
	if len(d.Routes) < 2 {
		t.Fatalf("MR found %d routes, want several", len(d.Routes))
	}
	for _, r := range d.Routes {
		if !r.Simple() || !r.Valid(net.Topo) {
			t.Errorf("bad route %v", r)
		}
	}
}

func TestMRFindsMoreRoutesThanDSR(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	dMR := discover(t, &Protocol{}, net, 1)
	dDSR := discover(t, &dsr.Protocol{}, net, 1)
	if len(dMR.Routes) <= len(dDSR.Routes) {
		t.Errorf("MR %d routes <= DSR %d routes", len(dMR.Routes), len(dDSR.Routes))
	}
}

func TestMRFindsAtLeastAsManyRoutesAsSMR(t *testing.T) {
	// The paper: MR "may find more routes than SMR" because it ignores the
	// incoming-link restriction.
	net := topology.Uniform(6, 6, 1, 0)
	for seed := uint64(1); seed <= 5; seed++ {
		mr := discover(t, &Protocol{}, net, seed)
		smr := discover(t, &Protocol{IncomingLinkRule: true}, net, seed)
		if len(mr.Routes) < len(smr.Routes) {
			t.Errorf("seed %d: MR %d routes < SMR %d", seed, len(mr.Routes), len(smr.Routes))
		}
	}
}

func TestMROverheadAboutTwiceDSR(t *testing.T) {
	// Table II's shape: MR route-discovery overhead is "more than twice"
	// DSR's on average, but in the same ballpark (not an order of
	// magnitude).
	for _, build := range []func() *topology.Network{
		func() *topology.Network { return topology.Cluster(1, 0) },
		func() *topology.Network { return topology.Uniform(6, 6, 1, 0) },
	} {
		net := build()
		var mrOv, dsrOv int64
		for seed := uint64(1); seed <= 5; seed++ {
			mrOv += discover(t, &Protocol{}, net, seed).Overhead()
			dsrOv += discover(t, &dsr.Protocol{}, net, seed).Overhead()
		}
		ratio := float64(mrOv) / float64(dsrOv)
		if ratio < 1.5 || ratio > 5 {
			t.Errorf("%s: MR/DSR overhead ratio = %.2f, want within [1.5,5]", net.Topo.Name(), ratio)
		}
	}
}

func TestMRNameVariants(t *testing.T) {
	if (&Protocol{}).Name() != "MR" {
		t.Error("default name should be MR")
	}
	if (&Protocol{IncomingLinkRule: true}).Name() != "SMR" {
		t.Error("strict variant should be SMR")
	}
}

func TestMRDuplicateHopRule(t *testing.T) {
	p := &Protocol{}
	st := &routing.NodeState{Seen: true, FirstHops: 3, FirstFrom: 7}
	longer := &routing.RREQ{Path: routing.Route{0, 1, 2, 3, 4}} // 4 hops
	if p.rule(9, 8, longer, st) {
		t.Error("duplicate longer than first must be dropped")
	}
	equal := &routing.RREQ{Path: routing.Route{0, 1, 2, 3}} // 3 hops
	if !p.rule(9, 8, equal, st) {
		t.Error("duplicate with equal hop count must be forwarded")
	}
}

func TestSMRRequiresDifferentIncomingLink(t *testing.T) {
	p := &Protocol{IncomingLinkRule: true}
	st := &routing.NodeState{Seen: true, FirstHops: 3, FirstFrom: 7}
	dup := &routing.RREQ{Path: routing.Route{0, 1, 2}}
	if p.rule(9, 7, dup, st) {
		t.Error("SMR must drop duplicates from the first link")
	}
	if !p.rule(9, 8, dup, st) {
		t.Error("SMR must forward duplicates from other links")
	}
}

func TestPerLinkCapRule(t *testing.T) {
	p := &Protocol{PerLink: 1}
	st := &routing.NodeState{Seen: true, FirstHops: 3, FirstFrom: 7}
	st.AddForward(7)
	st.AddForward(7)
	st.AddForward(8)
	dup := &routing.RREQ{Path: routing.Route{0, 1, 2}}
	// Link 7 is the first link: one extra slot beyond the first copy -> cap
	// 2, already used.
	if p.rule(9, 7, dup, st) {
		t.Error("first link over cap should be dropped")
	}
	if p.rule(9, 8, dup, st) {
		t.Error("other link at cap should be dropped")
	}
	if !p.rule(9, 6, dup, st) {
		t.Error("unused link should be allowed")
	}
}

func TestMRRepliesAreDisjointSelection(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	d := discover(t, &Protocol{MaxReplies: 2}, net, 3)
	if len(d.Replies) == 0 || len(d.Replies) > 2 {
		t.Fatalf("replies = %d", len(d.Replies))
	}
}

func TestMRWormholeAttractsRoutes(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	d := discover(t, &Protocol{}, net, 1)
	if got := d.AffectedBy(sc.TunnelLinks()[0]); got != 1.0 {
		t.Errorf("cluster affected fraction = %v, want 1.0 (Table I)", got)
	}
}

func TestMRDeterministicPerSeed(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	a := discover(t, &Protocol{}, net, 7)
	b := discover(t, &Protocol{}, net, 7)
	if len(a.Routes) != len(b.Routes) {
		t.Fatal("route counts differ across identical seeds")
	}
	for i := range a.Routes {
		if !a.Routes[i].Equal(b.Routes[i]) {
			t.Fatal("routes differ across identical seeds")
		}
	}
	if a.Overhead() != b.Overhead() {
		t.Error("overhead differs across identical seeds")
	}
}

func TestHopSlackSentinels(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	strict := discover(t, &Protocol{HopSlack: HopSlackStrict}, net, 2)
	loose := discover(t, &Protocol{HopSlack: HopSlackNone}, net, 2)
	def := discover(t, &Protocol{}, net, 2)
	if len(strict.Routes) > len(def.Routes) || len(def.Routes) > len(loose.Routes) {
		t.Errorf("route counts should grow with slack: %d <= %d <= %d",
			len(strict.Routes), len(def.Routes), len(loose.Routes))
	}
	minHops := strict.Routes[0].Hops()
	for _, r := range strict.Routes {
		if r.Hops() != minHops {
			t.Error("strict slack admitted a longer route")
		}
	}
}
