// Package mr implements the paper's on-demand multi-path routing protocol —
// an SMR variant (Lee & Gerla) with a relaxed duplicate rule:
//
//	The intermediate node will forward the first received RREQ and the
//	duplicate RREQ that has not been forwarded by the node and whose hop
//	count is not larger than that of the first received RREQ.
//
// Unlike strict SMR, the incoming link of the duplicate is not considered,
// so MR may discover more routes. Strict SMR is available behind the
// IncomingLinkRule flag for the ablation benchmark.
package mr

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Protocol is the multi-path routing protocol. The zero value is the
// paper's MR with a reply budget of 2 maximally disjoint routes.
type Protocol struct {
	// MaxReplies is the number of maximally disjoint routes returned to the
	// source (design parameter; default 2).
	MaxReplies int
	// WaitWindow truncates the destination's collection window after the
	// first RREQ arrival (design parameter; 0 = collect everything).
	WaitWindow sim.Time
	// MaxForwards caps the total RREQ copies each intermediate node
	// forwards per request, modeling the MAC-level contention that keeps
	// the paper's observed overhead at "more than twice" DSR's rather than
	// letting grid braiding explode combinatorially. The zero value selects
	// DefaultMaxForwards; negative means unlimited (the literal unbounded
	// reading of the paper's rule, kept for the ablation benchmark).
	MaxForwards int
	// PerLink caps duplicate forwards per incoming link (the first copy's
	// link gets one extra duplicate slot). Zero or negative disables the
	// per-link cap, the default: a per-link cap throttles route diversity
	// at a wormhole exit, where every tunneled copy arrives over one link.
	// Positive values are an ablation variant.
	PerLink int
	// IncomingLinkRule enables strict SMR: a duplicate is forwarded only if
	// it arrived over a different link than the first copy.
	IncomingLinkRule bool
	// HopSlack is how many hops beyond the first-arriving route the
	// destination's collection admits — the "certain amount of time" design
	// parameter, expressed in hops so collection is deterministic. The zero
	// value selects DefaultHopSlack; use HopSlackStrict for shortest-only
	// collection and HopSlackNone to disable the filter.
	HopSlack int
	// SuppressReplies skips the RREP phase (analysis-only runs).
	SuppressReplies bool
	// Avoid excludes nodes from discovery (routing.FloodConfig.Avoid) —
	// the IDS's isolation list plugs in here.
	Avoid func(topology.NodeID) bool
	// Forge lets Byzantine nodes answer requests with fabricated replies
	// (routing.FloodConfig.Forge) — attack scenarios plug in here.
	Forge routing.ForgeFunc
}

// Defaults and sentinels for Protocol fields.
const (
	// DefaultMaxForwards is the per-node forward budget when
	// Protocol.MaxForwards is zero.
	DefaultMaxForwards = 6
	// DefaultHopSlack admits routes up to two hops longer than the first.
	DefaultHopSlack = 2
	// HopSlackStrict admits only routes as short as the first arrival.
	HopSlackStrict = -1
	// HopSlackNone disables the destination hop filter.
	HopSlackNone = -2
)

// Name implements routing.Protocol.
func (p *Protocol) Name() string {
	if p.IncomingLinkRule {
		return "SMR"
	}
	return "MR"
}

// Discover implements routing.Protocol.
func (p *Protocol) Discover(net *sim.Network, src, dst topology.NodeID) *routing.Discovery {
	maxFwd := p.MaxForwards
	switch {
	case maxFwd == 0:
		maxFwd = DefaultMaxForwards
	case maxFwd < 0:
		maxFwd = 0 // unlimited
	}
	slack := DefaultHopSlack
	switch {
	case p.HopSlack > 0:
		slack = p.HopSlack
	case p.HopSlack == HopSlackStrict:
		slack = 0
	case p.HopSlack == HopSlackNone:
		slack = -1
	}
	return routing.RunDiscovery(net, src, dst, routing.FloodConfig{
		Name:            p.Name(),
		Rule:            p.rule,
		MaxForwards:     maxFwd,
		MaxReplies:      p.MaxReplies,
		WaitWindow:      p.WaitWindow,
		HopSlack:        slack,
		SuppressReplies: p.SuppressReplies,
		Avoid:           p.Avoid,
		Forge:           p.Forge,
	})
}

func (p *Protocol) rule(self, from topology.NodeID, q *routing.RREQ, st *routing.NodeState) bool {
	if !st.Seen {
		return true // first copy is always forwarded
	}
	if q.Hops() > st.FirstHops {
		return false // longer than the first copy: drop
	}
	if p.IncomingLinkRule && from == st.FirstFrom {
		return false // strict SMR: must arrive over a different link
	}
	if perLink := p.PerLink; perLink > 0 {
		cap := perLink
		if !p.IncomingLinkRule && from == st.FirstFrom {
			cap++ // the first copy already used one slot on its link
		}
		if st.ForwardsFrom(from) >= cap {
			return false
		}
	}
	return true
}
