package mdsr

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/routing/mr"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func TestPruneDisjoint(t *testing.T) {
	primary := routing.Route{0, 1, 2, 9}
	overlap := routing.Route{0, 1, 3, 9} // shares link 0-1
	disjoint := routing.Route{0, 4, 5, 9}
	// Note: link (0,4) vs primary's (0,1): disjoint shares node 0 but no
	// link — MDSR requires link-disjointness only.
	got := pruneDisjoint([]routing.Route{primary, overlap, disjoint}, 2)
	if len(got) != 2 {
		t.Fatalf("kept %d routes", len(got))
	}
	if !got[0].Equal(primary) || !got[1].Equal(disjoint) {
		t.Errorf("kept %v", got)
	}
}

func TestPruneDisjointCap(t *testing.T) {
	routes := []routing.Route{
		{0, 1, 9},
		{0, 2, 9},
		{0, 3, 9},
		{0, 4, 9},
	}
	got := pruneDisjoint(routes, 1)
	if len(got) != 2 { // primary + one alternate
		t.Fatalf("kept %d routes, want 2", len(got))
	}
	if got := pruneDisjoint(nil, 3); got != nil {
		t.Error("empty input should stay empty")
	}
}

func TestDiscoverRoutesAreLinkDisjoint(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Routes) == 0 {
		t.Fatal("no routes")
	}
	for i, a := range d.Routes {
		for _, b := range d.Routes[i+1:] {
			if a.SharedLinks(b) > 0 {
				t.Errorf("routes %v and %v share links", a, b)
			}
		}
	}
}

func TestMDSRNoMoreRoutesThanMR(t *testing.T) {
	// The paper: "MDSR does not [provide more candidate routes]" — so it
	// should never beat MR's route count on the same run.
	net := topology.Uniform(6, 6, 1, 0)
	for seed := uint64(1); seed <= 5; seed++ {
		src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
		sm := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
		dm := (&Protocol{}).Discover(sm, src, dst)
		sr := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
		dr := (&mr.Protocol{}).Discover(sr, src, dst)
		if len(dm.Routes) > len(dr.Routes) {
			t.Errorf("seed %d: MDSR %d routes > MR %d", seed, len(dm.Routes), len(dr.Routes))
		}
	}
}

func TestRepliesDelivered(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 2})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Replies) != len(d.Routes) {
		t.Errorf("replies %d != routes %d", len(d.Replies), len(d.Routes))
	}
}

func TestName(t *testing.T) {
	if (&Protocol{}).Name() != "MDSR" {
		t.Error("name")
	}
}
