// Package mdsr implements Multipath DSR (Nasipuri & Das, IC3N 1999), the
// third multi-path protocol the paper's conclusion discusses. MDSR keeps
// DSR's forwarding untouched — intermediate nodes discard every duplicate
// RREQ — and obtains multiple routes purely at the destination, which
// replies only to copies that are link-disjoint from the primary (first-
// arriving) route. As the paper notes, MDSR therefore does NOT provide more
// candidate routes than DSR for statistical analysis; the extension
// experiment quantifies how much that costs SAM.
package mdsr

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Protocol is MDSR route discovery. The zero value is ready to use.
type Protocol struct {
	// MaxAlternates caps the disjoint alternate routes kept besides the
	// primary (default 2).
	MaxAlternates int
	// SuppressReplies skips the RREP phase.
	SuppressReplies bool
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string { return "MDSR" }

// Discover implements routing.Protocol. It reuses the shared flooding
// framework with DSR's forward-once rule, then prunes the destination's
// collection to the primary route plus link-disjoint alternates.
func (p *Protocol) Discover(net *sim.Network, src, dst topology.NodeID) *routing.Discovery {
	maxAlt := p.MaxAlternates
	if maxAlt == 0 {
		maxAlt = 2
	}
	d := routing.RunDiscovery(net, src, dst, routing.FloodConfig{
		Name:            p.Name(),
		Rule:            func(self, from topology.NodeID, q *routing.RREQ, st *routing.NodeState) bool { return !st.Seen },
		ReplyAll:        true,
		HopSlack:        -1, // MDSR's destination sees every surviving copy
		SuppressReplies: true,
	})
	d.Protocol = p.Name()
	d.Routes = pruneDisjoint(d.Routes, maxAlt)

	if !p.SuppressReplies && len(d.Routes) > 0 {
		// Reply along each retained route (source-routed RREPs, as DSR).
		// Rebuilding the reply phase here keeps the pruning decision local.
		replies := replyPhase(net, d.Routes)
		d.Replies = replies
		d.TxTotal, d.RxTotal = net.TotalTraffic()
	}
	return d
}

// pruneDisjoint keeps routes[0] (the primary) and up to maxAlt further
// routes that share no link with any retained route — MDSR's destination
// policy.
func pruneDisjoint(routes []routing.Route, maxAlt int) []routing.Route {
	if len(routes) == 0 {
		return nil
	}
	kept := []routing.Route{routes[0]}
	for _, c := range routes[1:] {
		if len(kept)-1 == maxAlt {
			break
		}
		disjoint := true
		for _, k := range kept {
			if c.SharedLinks(k) > 0 {
				disjoint = false
				break
			}
		}
		if disjoint {
			kept = append(kept, c)
		}
	}
	return kept
}

// replyPhase sends one source-routed RREP per route and reports which made
// it back (re-using the shared relay handlers installed by RunDiscovery).
func replyPhase(net *sim.Network, routes []routing.Route) []routing.Route {
	delivered := make([]routing.Route, 0, len(routes))
	h := sim.HandlerFunc(func(n *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
		p, ok := pkt.(*routing.RREP)
		if !ok || p.Route[p.Pos] != self {
			return
		}
		if p.Pos == 0 {
			delivered = append(delivered, p.Route)
			return
		}
		n.Unicast(self, p.Route[p.Pos-1], &routing.RREP{ReqID: p.ReqID, Route: p.Route, Pos: p.Pos - 1})
	})
	net.SetAllHandlers(h)
	for _, r := range routes {
		r := r
		if len(r) < 2 {
			continue
		}
		net.Schedule(0, func() {
			last := len(r) - 1
			net.Unicast(r[last], r[last-1], &routing.RREP{ReqID: 1, Route: r.Clone(), Pos: last - 1})
		})
	}
	net.Run()
	return delivered
}
