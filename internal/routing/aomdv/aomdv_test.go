package aomdv

import (
	"testing"

	"samnet/internal/attack"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func TestTableAcceptRules(t *testing.T) {
	var tab Table
	if !tab.Accept(5, 3) {
		t.Fatal("first path must be accepted")
	}
	if tab.Advertised != 3 {
		t.Errorf("advertised = %d", tab.Advertised)
	}
	if tab.Accept(5, 3) {
		t.Error("same next hop must be rejected")
	}
	if !tab.Accept(6, 3) {
		t.Error("equal-hop alternate via new neighbor must be accepted")
	}
	if tab.Accept(7, 4) {
		t.Error("longer-than-advertised path must be rejected")
	}
	if !tab.Accept(8, 2) {
		t.Error("shorter alternate must be accepted")
	}
	if len(tab.Entries) != 3 {
		t.Errorf("entries = %d", len(tab.Entries))
	}
}

func TestTableBest(t *testing.T) {
	var tab Table
	if _, ok := tab.Best(); ok {
		t.Error("empty table should have no best")
	}
	tab.Accept(5, 3)
	tab.Accept(6, 2)
	best, ok := tab.Best()
	if !ok || best.NextHop != 6 || best.Hops != 2 {
		t.Errorf("best = %+v", best)
	}
}

func TestDiscoverFindsMultipleDisjointishRoutes(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Routes) < 2 {
		t.Fatalf("AOMDV found %d routes, want >= 2", len(d.Routes))
	}
	seen := map[[2]topology.NodeID]bool{}
	for _, r := range d.Routes {
		if !r.Simple() || !r.Valid(net.Topo) {
			t.Errorf("bad route %v", r)
		}
		key := [2]topology.NodeID{r[1], r[len(r)-2]}
		if seen[key] {
			t.Errorf("two routes share entry/exit pair %v", key)
		}
		seen[key] = true
	}
}

func TestMaxRoutesCap(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 2})
	src, dst := net.SrcPool[1], net.DstPool[len(net.DstPool)-2]
	d := (&Protocol{MaxRoutes: 2}).Discover(s, src, dst)
	if len(d.Routes) > 2 {
		t.Errorf("routes = %d, cap 2", len(d.Routes))
	}
}

func TestReverseTablesLoopFree(t *testing.T) {
	// Property: in every node's table, following any stored next hop leads
	// to a node whose own best distance to the source is strictly smaller,
	// so next-hop chains terminate at the source.
	net := topology.Uniform(10, 6, 1, 0)
	var tables map[topology.NodeID]*Table
	p := &Protocol{InspectTables: func(tb map[topology.NodeID]*Table) { tables = tb }}
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 3})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	p.Discover(s, src, dst)
	if len(tables) == 0 {
		t.Fatal("no reverse tables built")
	}
	for _, id := range SortedNodes(tables) {
		tab := tables[id]
		for _, e := range tab.Entries {
			if e.Hops > tab.Advertised {
				t.Fatalf("node %d stores entry longer than advertised: %+v vs %d", id, e, tab.Advertised)
			}
			if e.NextHop == src {
				continue // one hop from the source: chain ends
			}
			nt := tables[e.NextHop]
			if nt == nil {
				t.Fatalf("node %d next hop %d has no table", id, e.NextHop)
			}
			nb, ok := nt.Best()
			if !ok {
				t.Fatalf("node %d next hop %d has empty table", id, e.NextHop)
			}
			if nb.Hops >= e.Hops {
				t.Fatalf("loop risk: node %d entry %+v but next hop's best is %d hops", id, e, nb.Hops)
			}
		}
	}
}

func TestRepliesReachSource(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 4})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Replies) == 0 {
		t.Fatal("no RREPs made it back over the distance-vector reverse paths")
	}
	if len(d.Replies) > len(d.Routes) {
		t.Errorf("more replies (%d) than routes (%d)", len(d.Replies), len(d.Routes))
	}
}

func TestWormholeCapturesAOMDVRoutes(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 5})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Routes) == 0 {
		t.Fatal("no routes")
	}
	if got := d.AffectedBy(sc.TunnelLinks()[0]); got == 0 {
		t.Error("wormhole attracted no AOMDV routes")
	}
	st := sam.Analyze(d.Routes)
	if st.PMax == 0 {
		t.Error("no statistics")
	}
}

func TestName(t *testing.T) {
	if (&Protocol{}).Name() != "AOMDV" {
		t.Error("name")
	}
}
