// Package aomdv implements a simplified Ad hoc On-demand Multipath Distance
// Vector protocol (Marina & Das, ICNP 2001) — one of the multi-path
// protocols the paper's conclusion earmarks for future SAM evaluation.
//
// Unlike the source-routed MR/DSR family, AOMDV is distance-vector: nodes
// keep multiple loop-free reverse next hops toward the request's source,
// established during RREQ flooding with the "advertised hop count" rule —
// an alternate reverse path is accepted only if its hop count does not
// exceed the hop count the node already advertised for that source, which
// bounds path inflation and preserves loop freedom (every stored reverse
// path came from a simple RREQ traversal, so following next hops strictly
// decreases the distance to the source). The destination answers RREQ
// copies that arrived with distinct (first hop, last hop) pairs, a
// link-disjointness heuristic.
//
// RREQs carry the traversed path for measurement only (SAM analyzes route
// link sets); the protocol's forwarding decisions use just (hop count,
// incoming neighbor), as real AOMDV does.
package aomdv

import (
	"slices"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// ReverseEntry is one loop-free reverse path toward the request source.
type ReverseEntry struct {
	NextHop topology.NodeID
	Hops    int
}

// Table is one node's multipath reverse-route state for one request.
type Table struct {
	// Entries are the accepted reverse paths, in acceptance order.
	Entries []ReverseEntry
	// Advertised is the advertised hop count: the maximum hop count over
	// accepted entries, fixed at first acceptance per AOMDV's loop-freedom
	// rule (it never decreases within one request).
	Advertised int
}

// Accept applies AOMDV's rule: the first path is always accepted and fixes
// the advertised hop count; alternates are accepted only if their hop count
// does not exceed it (the advertised bound the node already announced when
// rebroadcasting — accepting a longer path could advertise a distance the
// node cannot honor, the loop risk AOMDV's rule exists to prevent) and the
// next hop is new. It reports whether the entry was added.
func (t *Table) Accept(next topology.NodeID, hops int) bool {
	if len(t.Entries) == 0 {
		t.Entries = append(t.Entries, ReverseEntry{NextHop: next, Hops: hops})
		t.Advertised = hops
		return true
	}
	if hops > t.Advertised {
		return false // longer than the advertised bound: loop risk
	}
	for _, e := range t.Entries {
		if e.NextHop == next {
			return false // already have a path via this neighbor
		}
	}
	t.Entries = append(t.Entries, ReverseEntry{NextHop: next, Hops: hops})
	return true
}

// Best returns the lowest-hop entry (ties: insertion order).
func (t *Table) Best() (ReverseEntry, bool) {
	if len(t.Entries) == 0 {
		return ReverseEntry{}, false
	}
	best := t.Entries[0]
	for _, e := range t.Entries[1:] {
		if e.Hops < best.Hops {
			best = e
		}
	}
	return best, true
}

// Protocol is the AOMDV discovery protocol.
type Protocol struct {
	// MaxRoutes caps the destination's link-disjoint replies (default 3).
	MaxRoutes int
	// SinglePath degrades the protocol to plain AODV — one reverse entry
	// per node, one route at the destination — the single-path counterpart
	// the paper names next to DSR. Used by the protocols experiment.
	SinglePath bool
	// SuppressReplies skips the RREP phase.
	SuppressReplies bool
	// InspectTables, if set, receives the per-node reverse-route tables at
	// the end of each discovery — the hook the loop-freedom tests use.
	InspectTables func(map[topology.NodeID]*Table)
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string {
	if p.SinglePath {
		return "AODV"
	}
	return "AOMDV"
}

// Discover implements routing.Protocol.
func (p *Protocol) Discover(net *sim.Network, src, dst topology.NodeID) *routing.Discovery {
	maxRoutes := p.MaxRoutes
	if maxRoutes == 0 {
		maxRoutes = 3
	}
	if p.SinglePath {
		maxRoutes = 1
	}
	run := &aomdvRun{
		proto:     p,
		src:       src,
		dst:       dst,
		maxRoutes: maxRoutes,
		tables:    make(map[topology.NodeID]*Table),
		seenPair:  make(map[[2]topology.NodeID]bool),
	}
	net.SetAllHandlers(run)
	net.Schedule(0, func() {
		net.Broadcast(src, &routing.RREQ{ReqID: 1, Src: src, Dst: dst, Path: routing.Route{src}})
	})
	net.Run()
	if p.InspectTables != nil {
		p.InspectTables(run.tables)
	}

	d := &routing.Discovery{Protocol: p.Name(), Src: src, Dst: dst, Routes: run.routes}
	if len(run.arrivalTimes) > 0 {
		d.FirstArrival = run.arrivalTimes[0]
		d.LastArrival = run.arrivalTimes[len(run.arrivalTimes)-1]
	}
	if !p.SuppressReplies {
		for _, r := range run.routes {
			r := r
			net.Schedule(0, func() { run.sendRREP(net, r) })
		}
		net.Run()
		d.Replies = run.replies
	}
	d.TxTotal, d.RxTotal = net.TotalTraffic()
	return d
}

type aomdvRun struct {
	proto     *Protocol
	src, dst  topology.NodeID
	maxRoutes int

	tables       map[topology.NodeID]*Table
	routes       []routing.Route
	arrivalTimes []sim.Time
	seenPair     map[[2]topology.NodeID]bool
	replies      []routing.Route
}

// Recv implements sim.Handler.
func (a *aomdvRun) Recv(net *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
	switch p := pkt.(type) {
	case *routing.RREQ:
		a.recvRREQ(net, self, from, p)
	case *routing.RREP:
		a.recvRREP(net, self, p)
	case *routing.Data:
		routing.RelayData(net, self, p)
	case *routing.ACK:
		routing.RelayACK(net, self, p)
	}
}

func (a *aomdvRun) recvRREQ(net *sim.Network, self, from topology.NodeID, q *routing.RREQ) {
	if self == a.src || q.Path.Contains(self) {
		return
	}
	if self == a.dst {
		a.acceptAtDst(net, q)
		return
	}
	t := a.tables[self]
	if t == nil {
		t = &Table{}
		a.tables[self] = t
	}
	first := len(t.Entries) == 0
	// Record the reverse path whether or not we forward: alternates build
	// the multipath table (plain AODV keeps only the first).
	if first || !a.proto.SinglePath {
		t.Accept(from, q.Hops()+1)
	}
	if !first {
		return // AOMDV forwards only the first copy, like AODV
	}
	fwd := &routing.RREQ{ReqID: q.ReqID, Src: q.Src, Dst: q.Dst, Path: append(q.Path.Clone(), self)}
	net.Broadcast(self, fwd)
}

func (a *aomdvRun) acceptAtDst(net *sim.Network, q *routing.RREQ) {
	route := append(q.Path.Clone(), a.dst)
	if len(route) < 2 || len(a.routes) >= a.maxRoutes {
		return
	}
	firstHop := route[1]
	lastHop := route[len(route)-2]
	key := [2]topology.NodeID{firstHop, lastHop}
	if a.seenPair[key] {
		return // not link-disjoint enough: same entry and exit
	}
	a.seenPair[key] = true
	a.routes = append(a.routes, route)
	a.arrivalTimes = append(a.arrivalTimes, net.Now())
}

// sendRREP routes a reply toward the source hop-by-hop along reverse
// entries (distance-vector forwarding, not source routing). The RREP reuses
// the discovered route only to identify itself; each relay picks its own
// reverse next hop.
func (a *aomdvRun) sendRREP(net *sim.Network, route routing.Route) {
	last := route[len(route)-2]
	net.Unicast(a.dst, last, &routing.RREP{ReqID: 1, Route: route.Clone(), Pos: -1})
}

func (a *aomdvRun) recvRREP(net *sim.Network, self topology.NodeID, p *routing.RREP) {
	if self == a.src {
		a.replies = append(a.replies, p.Route)
		return
	}
	t := a.tables[self]
	if t == nil {
		return // no reverse state: reply dies (counts as route failure)
	}
	best, ok := t.Best()
	if !ok {
		return
	}
	net.Unicast(self, best.NextHop, &routing.RREP{ReqID: p.ReqID, Route: p.Route, Pos: -1})
}

// SortedNodes returns table keys in ascending order (test helper).
func SortedNodes(tables map[topology.NodeID]*Table) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(tables))
	for id := range tables {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
