package dsr

import (
	"testing"

	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func discover(t *testing.T, p routing.Protocol, net *topology.Network, seed uint64) *routing.Discovery {
	t.Helper()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	return p.Discover(s, src, dst)
}

func TestDSREachNodeForwardsOnce(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	(&Protocol{SuppressReplies: true}).Discover(s, src, dst)
	for i := 0; i < net.Topo.N(); i++ {
		id := topology.NodeID(i)
		if id == src {
			continue
		}
		if got := s.TxCount(id); got > 1 {
			t.Errorf("node %d transmitted %d times; DSR forwards each request once", id, got)
		}
	}
}

func TestDSRRoutesValid(t *testing.T) {
	net := topology.Cluster(1, 0)
	d := discover(t, &Protocol{}, net, 2)
	if len(d.Routes) == 0 {
		t.Fatal("no routes found")
	}
	for _, r := range d.Routes {
		if !r.Simple() || !r.Valid(net.Topo) {
			t.Errorf("bad route %v", r)
		}
	}
}

func TestDSRRepliesToEveryCollectedRoute(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	d := discover(t, &Protocol{}, net, 3)
	if len(d.Replies) != len(d.Routes) {
		t.Errorf("DSR replied to %d of %d routes", len(d.Replies), len(d.Routes))
	}
}

func TestDSRWormholeAttractsAllClusterRoutes(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	d := discover(t, &Protocol{}, net, 1)
	if got := d.AffectedBy(sc.TunnelLinks()[0]); got != 1.0 {
		t.Errorf("cluster DSR affected = %v, want 1.0 (Table I)", got)
	}
}

func TestDSRName(t *testing.T) {
	if (&Protocol{}).Name() != "DSR" {
		t.Error("name")
	}
}

func TestDSRRouteCountBoundedByDegree(t *testing.T) {
	// Every DSR route arrives via a distinct last hop (each neighbor of the
	// destination forwards at most once), so |R| <= deg(dst).
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 4})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Routes) > net.Topo.Degree(dst) {
		t.Errorf("%d routes exceed dst degree %d", len(d.Routes), net.Topo.Degree(dst))
	}
}

func TestDSRHopSlackSentinels(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	run := func(slack int) int {
		s := sim.NewNetwork(net.Topo, sim.Config{Seed: 6})
		return len((&Protocol{HopSlack: slack}).Discover(s, src, dst).Routes)
	}
	strict := run(-1) // mr.HopSlackStrict
	def := run(0)
	loose := run(-2) // mr.HopSlackNone
	wide := run(4)
	if strict > def || def > loose {
		t.Errorf("route counts should grow with slack: %d <= %d <= %d", strict, def, loose)
	}
	if wide < def {
		t.Errorf("explicit wide slack (%d routes) below default (%d)", wide, def)
	}
}
