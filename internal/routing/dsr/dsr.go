// Package dsr implements DSR-style single-path route discovery as the paper
// uses it for comparison: intermediate nodes discard duplicate RREQs (only
// the first copy of a request is ever forwarded), and the destination
// replies to every copy that reaches it. Route caching and intermediate-node
// replies are disabled, as in the paper's setup (intermediate nodes never
// send RREPs, which also resists blackhole early-reply attacks).
package dsr

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Protocol is DSR route discovery. The zero value is ready to use.
type Protocol struct {
	// WaitWindow truncates the destination's collection window after the
	// first arrival (0 = collect everything).
	WaitWindow sim.Time
	// HopSlack matches mr.Protocol.HopSlack: how many hops beyond the
	// first-arriving route the destination admits. Zero selects the same
	// default (2); mr.HopSlackStrict and mr.HopSlackNone apply here too.
	HopSlack int
	// SuppressReplies skips the RREP phase (analysis-only runs).
	SuppressReplies bool
	// Avoid excludes nodes from discovery (routing.FloodConfig.Avoid) —
	// the IDS's isolation list plugs in here.
	Avoid func(topology.NodeID) bool
	// Forge lets Byzantine nodes answer requests with fabricated replies
	// (routing.FloodConfig.Forge) — attack scenarios plug in here.
	Forge routing.ForgeFunc
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string { return "DSR" }

// Discover implements routing.Protocol.
func (p *Protocol) Discover(net *sim.Network, src, dst topology.NodeID) *routing.Discovery {
	slack := 2
	switch {
	case p.HopSlack > 0:
		slack = p.HopSlack
	case p.HopSlack == -1: // mr.HopSlackStrict
		slack = 0
	case p.HopSlack == -2: // mr.HopSlackNone
		slack = -1
	}
	return routing.RunDiscovery(net, src, dst, routing.FloodConfig{
		Name:            p.Name(),
		Rule:            rule,
		ReplyAll:        true,
		WaitWindow:      p.WaitWindow,
		HopSlack:        slack,
		SuppressReplies: p.SuppressReplies,
		Avoid:           p.Avoid,
		Forge:           p.Forge,
	})
}

func rule(self, from topology.NodeID, q *routing.RREQ, st *routing.NodeState) bool {
	return !st.Seen // forward only the very first copy
}
