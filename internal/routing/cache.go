package routing

import (
	"samnet/internal/topology"
)

// Cache is a DSR-style route cache: routes a node has learned (by
// discovering, forwarding or overhearing them), indexed so the node can
// answer "do I know a path from myself to dst?". The paper's Section IV
// discusses how caching — for all its latency savings — opens the door to
// blackhole attackers that reply early without any cache lookup; the cdsr
// package builds that attack on top of this cache.
type Cache struct {
	owner    topology.NodeID
	capacity int
	routes   []Route // insertion order; index 0 is the oldest
}

// NewCache builds a cache for the given node. capacity bounds stored routes
// (oldest evicted first); zero means DefaultCacheCapacity.
func NewCache(owner topology.NodeID, capacity int) *Cache {
	if capacity == 0 {
		capacity = DefaultCacheCapacity
	}
	if capacity < 1 {
		panic("routing: cache capacity must be positive")
	}
	return &Cache{owner: owner, capacity: capacity}
}

// DefaultCacheCapacity is the route limit per node cache.
const DefaultCacheCapacity = 8

// Owner returns the caching node.
func (c *Cache) Owner() topology.NodeID { return c.owner }

// Len returns the number of stored routes.
func (c *Cache) Len() int { return len(c.routes) }

// Add stores a route that passes through (or starts at) the owner. Routes
// not containing the owner are ignored: the node never saw them. Duplicates
// refresh recency instead of storing twice.
func (c *Cache) Add(r Route) {
	if !r.Contains(c.owner) || len(r) < 2 {
		return
	}
	for i, old := range c.routes {
		if old.Equal(r) {
			// Refresh: move to the newest slot.
			c.routes = append(append(c.routes[:i:i], c.routes[i+1:]...), old)
			return
		}
	}
	if len(c.routes) == c.capacity {
		c.routes = c.routes[1:]
	}
	c.routes = append(c.routes, r.Clone())
}

// Lookup returns a cached path from the owner to dst — the suffix of a
// stored route starting at the owner — and whether one exists. The shortest
// matching suffix wins; ties prefer fresher entries.
func (c *Cache) Lookup(dst topology.NodeID) (Route, bool) {
	var best Route
	for _, r := range c.routes {
		suffix := suffixFrom(r, c.owner, dst)
		if suffix == nil {
			continue
		}
		if best == nil || suffix.Hops() <= best.Hops() {
			best = suffix
		}
	}
	return best, best != nil
}

// suffixFrom extracts the sub-route of r from node a to node b (in that
// traversal order), or nil if a does not precede b in r.
func suffixFrom(r Route, a, b topology.NodeID) Route {
	ai := -1
	for i, n := range r {
		if n == a {
			ai = i
			break
		}
	}
	if ai == -1 {
		return nil
	}
	for j := ai + 1; j < len(r); j++ {
		if r[j] == b {
			return r[ai : j+1].Clone()
		}
	}
	return nil
}
