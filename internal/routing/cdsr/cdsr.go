// Package cdsr implements DSR with route caching and intermediate-node
// replies — the protocol feature the paper's Section IV singles out as a
// blackhole vector: "attackers do not follow the protocol and reply early
// without cache lookup". An intermediate node holding a cached path to the
// destination answers the RREQ itself instead of forwarding; a blackhole
// attacker simply answers every RREQ instantly with a fabricated one-hop
// claim to the destination, capturing the source's route before honest
// replies arrive.
//
// The paper's MR forbids intermediate replies entirely, which is why it
// "provides certain level of resistance to blackhole attack as well"; the
// blackhole extension experiment quantifies exactly that contrast.
package cdsr

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Protocol is cache-enabled DSR. Unlike the flooding protocols, its
// Discovery.Routes holds the routes the SOURCE received (reply arrival
// order) — the set it would actually send data on.
type Protocol struct {
	// Caches are the pre-warmed per-node route caches (nil entries mean an
	// empty cache). Use WarmCaches to populate them from a prior discovery.
	Caches map[topology.NodeID]*routing.Cache
	// Malicious nodes reply to every RREQ instantly with a fabricated
	// route claiming the destination is their neighbor.
	Malicious map[topology.NodeID]bool
}

// Name implements routing.Protocol.
func (p *Protocol) Name() string { return "DSR+cache" }

// Discover implements routing.Protocol.
func (p *Protocol) Discover(net *sim.Network, src, dst topology.NodeID) *routing.Discovery {
	run := &cdsrRun{proto: p, src: src, dst: dst, seen: make(map[topology.NodeID]bool)}
	net.SetAllHandlers(run)
	net.Schedule(0, func() {
		net.Broadcast(src, &routing.RREQ{ReqID: 1, Src: src, Dst: dst, Path: routing.Route{src}})
	})
	net.Run()
	d := &routing.Discovery{Protocol: p.Name(), Src: src, Dst: dst, Routes: run.received}
	d.TxTotal, d.RxTotal = net.TotalTraffic()
	return d
}

// WarmCaches runs one clean MR-style warm-up discovery and feeds every
// discovered route to the caches of the nodes on it, mimicking the steady
// state of a network that has been routing for a while.
func WarmCaches(routes []routing.Route, capacity int) map[topology.NodeID]*routing.Cache {
	caches := make(map[topology.NodeID]*routing.Cache)
	for _, r := range routes {
		for _, id := range r {
			c := caches[id]
			if c == nil {
				c = routing.NewCache(id, capacity)
				caches[id] = c
			}
			c.Add(r)
		}
	}
	return caches
}

type cdsrRun struct {
	proto    *Protocol
	src, dst topology.NodeID
	seen     map[topology.NodeID]bool
	received []routing.Route // at the source, reply order
}

// Recv implements sim.Handler.
func (c *cdsrRun) Recv(net *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
	switch p := pkt.(type) {
	case *routing.RREQ:
		c.recvRREQ(net, self, from, p)
	case *routing.RREP:
		c.recvRREP(net, self, p)
	case *routing.Data:
		routing.RelayData(net, self, p)
	case *routing.ACK:
		routing.RelayACK(net, self, p)
	}
}

func (c *cdsrRun) recvRREQ(net *sim.Network, self, from topology.NodeID, q *routing.RREQ) {
	if self == c.src || q.Path.Contains(self) {
		return
	}
	switch {
	case self == c.dst:
		route := append(q.Path.Clone(), self)
		sendReply(net, route, len(route)-1)
		return

	case c.proto.Malicious[self]:
		// The paper's early-reply blackhole: claim the destination is one
		// hop away, no lookup, no forwarding. The fabricated link
		// (self,dst) does not exist; data sent on this route dies here.
		fake := append(append(q.Path.Clone(), self), c.dst)
		sendReply(net, fake, len(fake)-2)
		return
	}

	if cache := c.proto.Caches[self]; cache != nil {
		if suffix, ok := cache.Lookup(c.dst); ok {
			// Honest cached reply: splice the request path with the cached
			// suffix (suffix[0] == self).
			route := append(q.Path.Clone(), suffix...)
			if route.Simple() {
				sendReply(net, route, q.Path.Hops()+1)
				return
			}
		}
	}

	if c.seen[self] {
		return
	}
	c.seen[self] = true
	net.Broadcast(self, &routing.RREQ{ReqID: q.ReqID, Src: q.Src, Dst: q.Dst, Path: append(q.Path.Clone(), self)})
}

// sendReply starts an RREP from route[replier] back toward the source.
// replier is the index of the node answering the request: the destination
// for real replies, the caching node for cached replies, the attacker for
// fabricated ones. The hops below replier were traversed by the request, so
// the reverse unicasts are all adjacent; hops above replier are claims the
// replier makes (possibly fabricated) that the reply never touches.
func sendReply(net *sim.Network, route routing.Route, replier int) {
	if replier <= 0 || replier >= len(route) {
		return
	}
	net.Unicast(route[replier], route[replier-1],
		&routing.RREP{ReqID: 1, Route: route.Clone(), Pos: replier - 1})
}

func (c *cdsrRun) recvRREP(net *sim.Network, self topology.NodeID, p *routing.RREP) {
	if p.Route[p.Pos] != self {
		return
	}
	if p.Pos == 0 {
		// The source: this is a usable (or fabricated) route.
		c.received = append(c.received, p.Route)
		return
	}
	net.Unicast(self, p.Route[p.Pos-1], &routing.RREP{ReqID: p.ReqID, Route: p.Route, Pos: p.Pos - 1})
}
