package cdsr

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/routing/mr"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func cleanRoutes(t *testing.T, net *topology.Network, src, dst topology.NodeID) []routing.Route {
	t.Helper()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 100})
	return (&mr.Protocol{SuppressReplies: true}).Discover(s, src, dst).Routes
}

func TestPlainDiscoveryReachesSource(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := (&Protocol{}).Discover(s, src, dst)
	if len(d.Routes) == 0 {
		t.Fatal("no replies reached the source")
	}
	for _, r := range d.Routes {
		if r[0] != src || r[len(r)-1] != dst {
			t.Errorf("bad endpoints: %v", r)
		}
		if !r.Valid(net.Topo) {
			t.Errorf("honest discovery produced an invalid route: %v", r)
		}
	}
}

func TestCachedReplyShortCircuits(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	caches := WarmCaches(cleanRoutes(t, net, src, dst), 0)
	if len(caches) == 0 {
		t.Fatal("warming produced no caches")
	}

	plain := sim.NewNetwork(net.Topo, sim.Config{Seed: 2})
	dPlain := (&Protocol{}).Discover(plain, src, dst)
	cached := sim.NewNetwork(net.Topo, sim.Config{Seed: 2})
	dCached := (&Protocol{Caches: caches}).Discover(cached, src, dst)

	if dCached.Overhead() >= dPlain.Overhead() {
		t.Errorf("cached overhead %d should undercut plain %d (replies cut the flood short)",
			dCached.Overhead(), dPlain.Overhead())
	}
	if len(dCached.Routes) == 0 {
		t.Fatal("cached discovery returned nothing")
	}
	for _, r := range dCached.Routes {
		if !r.Valid(net.Topo) {
			t.Errorf("cached reply produced an invalid route: %v", r)
		}
	}
}

func TestBlackholeCapturesFirstRoute(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 1)
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	mal := net.Attackers()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 3})
	d := (&Protocol{Malicious: mal}).Discover(s, src, dst)
	if len(d.Routes) == 0 {
		t.Fatal("no replies")
	}
	first := d.Routes[0]
	if first.Valid(net.Topo) {
		t.Skipf("first reply %v is honest (attacker too far for this pair)", first)
	}
	// The fabricated route ends attacker->dst with a non-existent link.
	last := first[len(first)-2]
	if !mal[last] {
		t.Errorf("invalid route's penultimate node %d is not an attacker: %v", last, first)
	}
}

func TestBlackholeProbeFailsOnFabricatedRoute(t *testing.T) {
	// SAM's step-2 probe catches the fabricated route: the data packet dies
	// at the attacker (it cannot forward over a link that does not exist),
	// so no ACK returns — the paper's point that the test step "may help to
	// detect another type of DoS attack".
	net := topology.Uniform(6, 6, 1, 1)
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	mal := net.Attackers()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 4})
	d := (&Protocol{Malicious: mal}).Discover(s, src, dst)

	var fake routing.Route
	for _, r := range d.Routes {
		if !r.Valid(net.Topo) {
			fake = r
			break
		}
	}
	if fake == nil {
		t.Skip("no fabricated route captured on this seed")
	}
	probeNet := sim.NewNetwork(net.Topo, sim.Config{Seed: 5})
	// Drop data at malicious nodes (they cannot relay over the fake link
	// anyway; dropping models their blackhole behaviour and keeps the
	// simulator's adjacency invariant intact).
	probeNet.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		switch pkt.(type) {
		case *routing.Data, *routing.ACK:
			return mal[to]
		}
		return false
	})
	res := routing.ProbeRoutes(probeNet, []routing.Route{fake})
	if res[0].Acked {
		t.Error("probe over a fabricated blackhole route must not be acked")
	}
}

func TestWarmCachesContainsOnRouteNodesOnly(t *testing.T) {
	caches := WarmCaches([]routing.Route{{0, 1, 2}}, 0)
	if len(caches) != 3 {
		t.Fatalf("caches for %d nodes, want 3", len(caches))
	}
	if _, ok := caches[1].Lookup(2); !ok {
		t.Error("on-route node should know the suffix")
	}
}

func TestName(t *testing.T) {
	if (&Protocol{}).Name() != "DSR+cache" {
		t.Error("name")
	}
}
