package routing

import (
	"testing"
)

func TestCacheAddAndLookup(t *testing.T) {
	c := NewCache(5, 4)
	c.Add(Route{0, 5, 6, 9})
	got, ok := c.Lookup(9)
	if !ok {
		t.Fatal("lookup failed")
	}
	want := Route{5, 6, 9}
	if !got.Equal(want) {
		t.Errorf("suffix = %v, want %v", got, want)
	}
}

func TestCacheIgnoresForeignRoutes(t *testing.T) {
	c := NewCache(5, 4)
	c.Add(Route{0, 1, 2}) // does not contain node 5
	if c.Len() != 0 {
		t.Error("cache stored a route it never saw")
	}
	c.Add(Route{5}) // too short
	if c.Len() != 0 {
		t.Error("cache stored a degenerate route")
	}
}

func TestCacheLookupMiss(t *testing.T) {
	c := NewCache(5, 4)
	c.Add(Route{0, 5, 6, 9})
	if _, ok := c.Lookup(1); ok {
		t.Error("lookup should miss for a destination behind the owner")
	}
	if _, ok := c.Lookup(42); ok {
		t.Error("lookup should miss for an unknown destination")
	}
}

func TestCachePrefersShortestSuffix(t *testing.T) {
	c := NewCache(5, 4)
	c.Add(Route{0, 5, 1, 2, 9})
	c.Add(Route{3, 5, 8, 9})
	got, _ := c.Lookup(9)
	if got.Hops() != 2 {
		t.Errorf("lookup = %v, want the 2-hop suffix", got)
	}
}

func TestCacheEvictsOldest(t *testing.T) {
	c := NewCache(0, 2)
	c.Add(Route{0, 7})
	c.Add(Route{0, 8})
	c.Add(Route{0, 9}) // evicts 0->7
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Lookup(7); ok {
		t.Error("oldest entry should be evicted")
	}
	if _, ok := c.Lookup(9); !ok {
		t.Error("newest entry missing")
	}
}

func TestCacheDuplicateRefreshesRecency(t *testing.T) {
	c := NewCache(0, 2)
	a := Route{0, 7}
	b := Route{0, 8}
	c.Add(a)
	c.Add(b)
	c.Add(a)           // refresh: a becomes newest
	c.Add(Route{0, 9}) // evicts b, not a
	if _, ok := c.Lookup(7); !ok {
		t.Error("refreshed entry was evicted")
	}
	if _, ok := c.Lookup(8); ok {
		t.Error("stale entry survived")
	}
}

func TestCacheCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity should panic")
		}
	}()
	NewCache(0, -1)
}

func TestSuffixFrom(t *testing.T) {
	r := Route{0, 1, 2, 3, 4}
	if got := suffixFrom(r, 1, 3); !got.Equal(Route{1, 2, 3}) {
		t.Errorf("suffix = %v", got)
	}
	if got := suffixFrom(r, 3, 1); got != nil {
		t.Errorf("reversed order should be nil, got %v", got)
	}
	if got := suffixFrom(r, 9, 3); got != nil {
		t.Error("absent start should be nil")
	}
	// Returned suffix must not alias the original.
	got := suffixFrom(r, 0, 2)
	got[0] = 99
	if r[0] != 0 {
		t.Error("suffixFrom aliases its input")
	}
}
