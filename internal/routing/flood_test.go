package routing

import (
	"testing"

	"samnet/internal/geom"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// gridTopo builds a cols x rows unit grid at 1-tier.
func gridTopo(cols, rows int) *topology.Topology {
	t := topology.New("grid", 1.001)
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			t.AddNode(geom.Pt(float64(x), float64(y)))
		}
	}
	return t
}

func nodeAt(t *topology.Topology, x, y float64) topology.NodeID {
	for i := 0; i < t.N(); i++ {
		p := t.Pos(topology.NodeID(i))
		if p.X == x && p.Y == y {
			return topology.NodeID(i)
		}
	}
	panic("no node at position")
}

// forwardAll is the unbounded flooding rule (loop-free by construction).
func forwardAll(self, from topology.NodeID, q *RREQ, st *NodeState) bool { return true }

// forwardFirst is DSR's rule.
func forwardFirst(self, from topology.NodeID, q *RREQ, st *NodeState) bool { return !st.Seen }

func TestRunDiscoveryLine(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	d := RunDiscovery(net, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst})
	if len(d.Routes) != 1 {
		t.Fatalf("routes = %v", d.Routes)
	}
	want := Route{0, 1, 2, 3, 4}
	if !d.Routes[0].Equal(want) {
		t.Errorf("route = %v, want %v", d.Routes[0], want)
	}
	if d.FirstArrival <= 0 {
		t.Error("FirstArrival not recorded")
	}
	if d.Overhead() == 0 {
		t.Error("overhead not counted")
	}
}

func TestRunDiscoveryRoutesAreValidAndSimple(t *testing.T) {
	topo := gridTopo(5, 4)
	net := sim.NewNetwork(topo, sim.Config{Seed: 3})
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 4, 3)
	d := RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 4, HopSlack: 1})
	if len(d.Routes) < 2 {
		t.Fatalf("expected multiple routes, got %d", len(d.Routes))
	}
	for _, r := range d.Routes {
		if r[0] != src || r[len(r)-1] != dst {
			t.Errorf("route endpoints wrong: %v", r)
		}
		if !r.Simple() {
			t.Errorf("route has a loop: %v", r)
		}
		if !r.Valid(topo) {
			t.Errorf("route uses non-adjacent hop: %v", r)
		}
	}
	// No duplicates.
	if got := len(DedupRoutes(d.Routes)); got != len(d.Routes) {
		t.Errorf("route set contains duplicates: %d vs %d", got, len(d.Routes))
	}
}

func TestHopSlackFiltersLongRoutes(t *testing.T) {
	topo := gridTopo(4, 3)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 3, 2)
	for _, slack := range []int{0, 2} {
		net := sim.NewNetwork(topo, sim.Config{Seed: 2})
		d := RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: slack})
		min := d.Routes[0].Hops()
		for _, r := range d.Routes {
			if r.Hops() < min {
				min = r.Hops()
			}
		}
		for _, r := range d.Routes {
			if r.Hops() > min+slack {
				t.Errorf("slack=%d admitted a %d-hop route (min %d)", slack, r.Hops(), min)
			}
		}
	}
}

func TestMaxForwardsBoundsPerNodeTransmissions(t *testing.T) {
	topo := gridTopo(6, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 5, 3)
	net := sim.NewNetwork(topo, sim.Config{Seed: 4})
	RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 2, SuppressReplies: true})
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		if id == src {
			continue // the source's single origination is not a forward
		}
		if got := net.TxCount(id); got > 2 {
			t.Errorf("node %d transmitted %d times, budget 2", id, got)
		}
	}
}

func TestRepliesTravelBackToSource(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	d := RunDiscovery(net, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst, MaxReplies: 1})
	if len(d.Replies) != 1 {
		t.Fatalf("replies = %v", d.Replies)
	}
	if !d.Replies[0].Equal(d.Routes[0]) {
		t.Error("reply route differs from discovered route")
	}
}

func TestSuppressRepliesSkipsRREP(t *testing.T) {
	topo := gridTopo(5, 1)
	netA := sim.NewNetwork(topo, sim.Config{Seed: 1})
	a := RunDiscovery(netA, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst, SuppressReplies: true})
	netB := sim.NewNetwork(topo, sim.Config{Seed: 1})
	b := RunDiscovery(netB, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst})
	if len(a.Replies) != 0 {
		t.Error("suppressed run produced replies")
	}
	if a.Overhead() >= b.Overhead() {
		t.Errorf("suppressed overhead %d should be below reply run %d", a.Overhead(), b.Overhead())
	}
}

func TestDiscoverySameSrcDstPanics(t *testing.T) {
	topo := gridTopo(3, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("src==dst should panic")
		}
	}()
	RunDiscovery(net, 1, 1, FloodConfig{Name: "t", Rule: forwardFirst})
}

func TestDiscoveryUnreachableDst(t *testing.T) {
	topo := topology.New("gap", 1.001)
	topo.AddNode(geom.Pt(0, 0))
	topo.AddNode(geom.Pt(1, 0))
	topo.AddNode(geom.Pt(10, 0))
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	d := RunDiscovery(net, 0, 2, FloodConfig{Name: "t", Rule: forwardFirst})
	if len(d.Routes) != 0 {
		t.Errorf("routes to unreachable dst: %v", d.Routes)
	}
	if d.FirstArrival != 0 {
		t.Error("FirstArrival should stay zero")
	}
}

func TestProbeRoutesAck(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	route := Route{0, 1, 2, 3, 4}
	res := ProbeRoutes(net, []Route{route})
	if len(res) != 1 || !res[0].Acked {
		t.Errorf("probe should be acked: %+v", res)
	}
}

func TestProbeRoutesBlackholeDropsAck(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	net.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if to != 2 {
			return false
		}
		switch pkt.(type) {
		case *Data, *ACK:
			return true
		}
		return false
	})
	res := ProbeRoutes(net, []Route{{0, 1, 2, 3, 4}, {0, 1}})
	if res[0].Acked {
		t.Error("probe through blackhole must not be acked")
	}
	if !res[1].Acked {
		t.Error("clean route should be acked")
	}
}

func TestProbeRoutesMultiple(t *testing.T) {
	topo := gridTopo(4, 2)
	net := sim.NewNetwork(topo, sim.Config{Seed: 2})
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 3, 1)
	p1 := Route{src, nodeAt(topo, 1, 0), nodeAt(topo, 2, 0), nodeAt(topo, 3, 0), dst}
	p2 := Route{src, nodeAt(topo, 0, 1), nodeAt(topo, 1, 1), nodeAt(topo, 2, 1), dst}
	res := ProbeRoutes(net, []Route{p1, p2})
	for i, r := range res {
		if !r.Acked {
			t.Errorf("probe %d not acked", i)
		}
	}
}

func TestDiscoveryOverheadGrowsWithBudget(t *testing.T) {
	topo := gridTopo(6, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 5, 3)
	var prev int64 = -1
	for _, budget := range []int{1, 3, 6} {
		net := sim.NewNetwork(topo, sim.Config{Seed: 9})
		d := RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: budget, SuppressReplies: true})
		if d.Overhead() < prev {
			t.Errorf("overhead with budget %d (%d) below smaller budget (%d)", budget, d.Overhead(), prev)
		}
		prev = d.Overhead()
	}
}

func TestWaitWindowTruncatesCollection(t *testing.T) {
	topo := gridTopo(5, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 4, 3)
	full := RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 6}), src, dst,
		FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: -1, SuppressReplies: true})
	// A near-zero window keeps only copies arriving (essentially) with the
	// first one.
	tiny := RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 6}), src, dst,
		FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: -1,
			WaitWindow: 0.001, SuppressReplies: true})
	if len(tiny.Routes) >= len(full.Routes) {
		t.Errorf("tiny window kept %d routes, full kept %d", len(tiny.Routes), len(full.Routes))
	}
	if len(tiny.Routes) == 0 {
		t.Error("the first arrival itself must always be kept")
	}
	// The window is relative to the first arrival, so FirstArrival match.
	if tiny.FirstArrival != full.FirstArrival {
		t.Errorf("first arrivals differ: %v vs %v", tiny.FirstArrival, full.FirstArrival)
	}
}

func TestWaitWindowLargeKeepsEverything(t *testing.T) {
	topo := gridTopo(5, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 4, 3)
	run := func(window sim.Time) *Discovery {
		return RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 6}), src, dst,
			FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: -1,
				WaitWindow: window, SuppressReplies: true})
	}
	full, wide := run(0), run(1e6)
	if len(full.Routes) != len(wide.Routes) {
		t.Fatalf("wide window kept %d routes, no window kept %d", len(wide.Routes), len(full.Routes))
	}
	for i := range full.Routes {
		if !full.Routes[i].Equal(wide.Routes[i]) {
			t.Errorf("route %d differs: %v vs %v", i, wide.Routes[i], full.Routes[i])
		}
	}
}

// TestHopSlackSpectrum pins the three HopSlack regimes: zero keeps only
// routes as short as the first arrival, positive admits bounded detours,
// negative disables the filter entirely.
func TestHopSlackSpectrum(t *testing.T) {
	topo := gridTopo(4, 3)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 3, 2)
	run := func(slack int) *Discovery {
		return RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 11}), src, dst,
			FloodConfig{Name: "t", Rule: forwardAll, HopSlack: slack, SuppressReplies: true})
	}
	zero, one, off := run(0), run(1), run(-1)
	first := zero.Routes[0].Hops() // jitter < HopDelay, so the first arrival is min-hop
	for _, r := range zero.Routes {
		if r.Hops() != first {
			t.Errorf("slack 0 admitted a %d-hop route (first %d)", r.Hops(), first)
		}
	}
	for _, r := range one.Routes {
		if r.Hops() > first+1 {
			t.Errorf("slack 1 admitted a %d-hop route (first %d)", r.Hops(), first)
		}
	}
	if len(zero.Routes) > len(one.Routes) || len(one.Routes) > len(off.Routes) {
		t.Errorf("route counts not monotone in slack: %d / %d / %d",
			len(zero.Routes), len(one.Routes), len(off.Routes))
	}
	if len(off.Routes) <= len(zero.Routes) {
		t.Errorf("disabling the filter should admit longer routes: off=%d zero=%d",
			len(off.Routes), len(zero.Routes))
	}
}

// TestMaxForwardsCapOverridesRule pins the cap/rule interaction: the rule is
// consulted on every non-loop copy, but the cap has the final word, so an
// always-forward rule with MaxForwards 1 floods exactly like DSR's
// first-copy-only rule.
func TestMaxForwardsCapOverridesRule(t *testing.T) {
	topo := gridTopo(5, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 4, 3)
	calls := 0
	counting := func(self, from topology.NodeID, q *RREQ, st *NodeState) bool {
		calls++
		return true
	}
	netA := sim.NewNetwork(topo, sim.Config{Seed: 13})
	a := RunDiscovery(netA, src, dst, FloodConfig{Name: "t", Rule: counting, MaxForwards: 1, SuppressReplies: true})
	netB := sim.NewNetwork(topo, sim.Config{Seed: 13})
	b := RunDiscovery(netB, src, dst, FloodConfig{Name: "t", Rule: forwardFirst, SuppressReplies: true})
	if a.Overhead() != b.Overhead() {
		t.Errorf("capped forward-all overhead %d != first-copy rule overhead %d", a.Overhead(), b.Overhead())
	}
	forwards := 0
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		if id == src {
			continue
		}
		if got := netA.TxCount(id); got > 1 {
			t.Errorf("node %d transmitted %d times past the cap", id, got)
		}
		forwards += int(netA.TxCount(id))
	}
	if calls <= forwards {
		t.Errorf("rule consulted %d times for %d forwards; duplicates must still be offered to the rule", calls, forwards)
	}
}

// TestProbeRoutesSharedIntermediate probes two routes that cross the same
// middle node; per-sequence bookkeeping must keep their ACKs apart.
func TestProbeRoutesSharedIntermediate(t *testing.T) {
	topo := gridTopo(5, 3)
	src, dst := nodeAt(topo, 0, 1), nodeAt(topo, 4, 1)
	shared := nodeAt(topo, 2, 1)
	a := Route{src, nodeAt(topo, 1, 1), shared, nodeAt(topo, 3, 1), dst}
	b := Route{src, nodeAt(topo, 0, 0), nodeAt(topo, 1, 0), nodeAt(topo, 2, 0), shared,
		nodeAt(topo, 2, 2), nodeAt(topo, 3, 2), nodeAt(topo, 4, 2), dst}
	for _, r := range []Route{a, b} {
		if !r.Valid(topo) {
			t.Fatalf("test route invalid: %v", r)
		}
	}
	net := sim.NewNetwork(topo, sim.Config{Seed: 21})
	res := ProbeRoutes(net, []Route{a, b})
	for i, r := range res {
		if !r.Acked {
			t.Errorf("probe %d through shared node %d not acked", i, shared)
		}
	}
	// A blackhole on the long route's private segment must not leak into the
	// short route's verdict even though they share a relay.
	net2 := sim.NewNetwork(topo, sim.Config{Seed: 21})
	hole := nodeAt(topo, 3, 2)
	net2.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if to != hole {
			return false
		}
		switch pkt.(type) {
		case *Data, *ACK:
			return true
		}
		return false
	})
	res2 := ProbeRoutes(net2, []Route{a, b})
	if !res2[0].Acked {
		t.Error("clean route through the shared node must stay acked")
	}
	if res2[1].Acked {
		t.Error("route through the blackhole must not be acked")
	}
}

func TestArrivalTimesOrdered(t *testing.T) {
	topo := gridTopo(6, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 5, 3)
	d := RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 7}), src, dst,
		FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 4, SuppressReplies: true})
	if d.FirstArrival > d.LastArrival {
		t.Errorf("FirstArrival %v after LastArrival %v", d.FirstArrival, d.LastArrival)
	}
	if d.FirstArrival <= 0 {
		t.Error("arrivals not recorded")
	}
}
