package routing

import (
	"testing"

	"samnet/internal/geom"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// gridTopo builds a cols x rows unit grid at 1-tier.
func gridTopo(cols, rows int) *topology.Topology {
	t := topology.New("grid", 1.001)
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			t.AddNode(geom.Pt(float64(x), float64(y)))
		}
	}
	return t
}

func nodeAt(t *topology.Topology, x, y float64) topology.NodeID {
	for i := 0; i < t.N(); i++ {
		p := t.Pos(topology.NodeID(i))
		if p.X == x && p.Y == y {
			return topology.NodeID(i)
		}
	}
	panic("no node at position")
}

// forwardAll is the unbounded flooding rule (loop-free by construction).
func forwardAll(self, from topology.NodeID, q *RREQ, st *NodeState) bool { return true }

// forwardFirst is DSR's rule.
func forwardFirst(self, from topology.NodeID, q *RREQ, st *NodeState) bool { return !st.Seen }

func TestRunDiscoveryLine(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	d := RunDiscovery(net, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst})
	if len(d.Routes) != 1 {
		t.Fatalf("routes = %v", d.Routes)
	}
	want := Route{0, 1, 2, 3, 4}
	if !d.Routes[0].Equal(want) {
		t.Errorf("route = %v, want %v", d.Routes[0], want)
	}
	if d.FirstArrival <= 0 {
		t.Error("FirstArrival not recorded")
	}
	if d.Overhead() == 0 {
		t.Error("overhead not counted")
	}
}

func TestRunDiscoveryRoutesAreValidAndSimple(t *testing.T) {
	topo := gridTopo(5, 4)
	net := sim.NewNetwork(topo, sim.Config{Seed: 3})
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 4, 3)
	d := RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 4, HopSlack: 1})
	if len(d.Routes) < 2 {
		t.Fatalf("expected multiple routes, got %d", len(d.Routes))
	}
	for _, r := range d.Routes {
		if r[0] != src || r[len(r)-1] != dst {
			t.Errorf("route endpoints wrong: %v", r)
		}
		if !r.Simple() {
			t.Errorf("route has a loop: %v", r)
		}
		if !r.Valid(topo) {
			t.Errorf("route uses non-adjacent hop: %v", r)
		}
	}
	// No duplicates.
	if got := len(DedupRoutes(d.Routes)); got != len(d.Routes) {
		t.Errorf("route set contains duplicates: %d vs %d", got, len(d.Routes))
	}
}

func TestHopSlackFiltersLongRoutes(t *testing.T) {
	topo := gridTopo(4, 3)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 3, 2)
	for _, slack := range []int{0, 2} {
		net := sim.NewNetwork(topo, sim.Config{Seed: 2})
		d := RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: slack})
		min := d.Routes[0].Hops()
		for _, r := range d.Routes {
			if r.Hops() < min {
				min = r.Hops()
			}
		}
		for _, r := range d.Routes {
			if r.Hops() > min+slack {
				t.Errorf("slack=%d admitted a %d-hop route (min %d)", slack, r.Hops(), min)
			}
		}
	}
}

func TestMaxForwardsBoundsPerNodeTransmissions(t *testing.T) {
	topo := gridTopo(6, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 5, 3)
	net := sim.NewNetwork(topo, sim.Config{Seed: 4})
	RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 2, SuppressReplies: true})
	for i := 0; i < topo.N(); i++ {
		id := topology.NodeID(i)
		if id == src {
			continue // the source's single origination is not a forward
		}
		if got := net.TxCount(id); got > 2 {
			t.Errorf("node %d transmitted %d times, budget 2", id, got)
		}
	}
}

func TestRepliesTravelBackToSource(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	d := RunDiscovery(net, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst, MaxReplies: 1})
	if len(d.Replies) != 1 {
		t.Fatalf("replies = %v", d.Replies)
	}
	if !d.Replies[0].Equal(d.Routes[0]) {
		t.Error("reply route differs from discovered route")
	}
}

func TestSuppressRepliesSkipsRREP(t *testing.T) {
	topo := gridTopo(5, 1)
	netA := sim.NewNetwork(topo, sim.Config{Seed: 1})
	a := RunDiscovery(netA, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst, SuppressReplies: true})
	netB := sim.NewNetwork(topo, sim.Config{Seed: 1})
	b := RunDiscovery(netB, 0, 4, FloodConfig{Name: "t", Rule: forwardFirst})
	if len(a.Replies) != 0 {
		t.Error("suppressed run produced replies")
	}
	if a.Overhead() >= b.Overhead() {
		t.Errorf("suppressed overhead %d should be below reply run %d", a.Overhead(), b.Overhead())
	}
}

func TestDiscoverySameSrcDstPanics(t *testing.T) {
	topo := gridTopo(3, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("src==dst should panic")
		}
	}()
	RunDiscovery(net, 1, 1, FloodConfig{Name: "t", Rule: forwardFirst})
}

func TestDiscoveryUnreachableDst(t *testing.T) {
	topo := topology.New("gap", 1.001)
	topo.AddNode(geom.Pt(0, 0))
	topo.AddNode(geom.Pt(1, 0))
	topo.AddNode(geom.Pt(10, 0))
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	d := RunDiscovery(net, 0, 2, FloodConfig{Name: "t", Rule: forwardFirst})
	if len(d.Routes) != 0 {
		t.Errorf("routes to unreachable dst: %v", d.Routes)
	}
	if d.FirstArrival != 0 {
		t.Error("FirstArrival should stay zero")
	}
}

func TestProbeRoutesAck(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	route := Route{0, 1, 2, 3, 4}
	res := ProbeRoutes(net, []Route{route})
	if len(res) != 1 || !res[0].Acked {
		t.Errorf("probe should be acked: %+v", res)
	}
}

func TestProbeRoutesBlackholeDropsAck(t *testing.T) {
	topo := gridTopo(5, 1)
	net := sim.NewNetwork(topo, sim.Config{Seed: 1})
	net.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if to != 2 {
			return false
		}
		switch pkt.(type) {
		case *Data, *ACK:
			return true
		}
		return false
	})
	res := ProbeRoutes(net, []Route{{0, 1, 2, 3, 4}, {0, 1}})
	if res[0].Acked {
		t.Error("probe through blackhole must not be acked")
	}
	if !res[1].Acked {
		t.Error("clean route should be acked")
	}
}

func TestProbeRoutesMultiple(t *testing.T) {
	topo := gridTopo(4, 2)
	net := sim.NewNetwork(topo, sim.Config{Seed: 2})
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 3, 1)
	p1 := Route{src, nodeAt(topo, 1, 0), nodeAt(topo, 2, 0), nodeAt(topo, 3, 0), dst}
	p2 := Route{src, nodeAt(topo, 0, 1), nodeAt(topo, 1, 1), nodeAt(topo, 2, 1), dst}
	res := ProbeRoutes(net, []Route{p1, p2})
	for i, r := range res {
		if !r.Acked {
			t.Errorf("probe %d not acked", i)
		}
	}
}

func TestDiscoveryOverheadGrowsWithBudget(t *testing.T) {
	topo := gridTopo(6, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 5, 3)
	var prev int64 = -1
	for _, budget := range []int{1, 3, 6} {
		net := sim.NewNetwork(topo, sim.Config{Seed: 9})
		d := RunDiscovery(net, src, dst, FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: budget, SuppressReplies: true})
		if d.Overhead() < prev {
			t.Errorf("overhead with budget %d (%d) below smaller budget (%d)", budget, d.Overhead(), prev)
		}
		prev = d.Overhead()
	}
}

func TestWaitWindowTruncatesCollection(t *testing.T) {
	topo := gridTopo(5, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 4, 3)
	full := RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 6}), src, dst,
		FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: -1, SuppressReplies: true})
	// A near-zero window keeps only copies arriving (essentially) with the
	// first one.
	tiny := RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 6}), src, dst,
		FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 6, HopSlack: -1,
			WaitWindow: 0.001, SuppressReplies: true})
	if len(tiny.Routes) >= len(full.Routes) {
		t.Errorf("tiny window kept %d routes, full kept %d", len(tiny.Routes), len(full.Routes))
	}
	if len(tiny.Routes) == 0 {
		t.Error("the first arrival itself must always be kept")
	}
	// The window is relative to the first arrival, so FirstArrival match.
	if tiny.FirstArrival != full.FirstArrival {
		t.Errorf("first arrivals differ: %v vs %v", tiny.FirstArrival, full.FirstArrival)
	}
}

func TestArrivalTimesOrdered(t *testing.T) {
	topo := gridTopo(6, 4)
	src, dst := nodeAt(topo, 0, 0), nodeAt(topo, 5, 3)
	d := RunDiscovery(sim.NewNetwork(topo, sim.Config{Seed: 7}), src, dst,
		FloodConfig{Name: "t", Rule: forwardAll, MaxForwards: 4, SuppressReplies: true})
	if d.FirstArrival > d.LastArrival {
		t.Errorf("FirstArrival %v after LastArrival %v", d.FirstArrival, d.LastArrival)
	}
	if d.FirstArrival <= 0 {
		t.Error("arrivals not recorded")
	}
}
