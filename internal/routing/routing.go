// Package routing defines the protocol-independent vocabulary of on-demand
// route discovery: routes, RREQ/RREP packets, and the Discovery record that
// a protocol run produces. The dsr and mr subpackages implement the two
// protocols the paper compares; aomdv and mdsr implement the future-work
// protocols from its conclusion.
package routing

import (
	"fmt"
	"strings"

	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Route is an ordered node sequence from source to destination, both
// inclusive.
type Route []topology.NodeID

// Clone returns a copy of r.
func (r Route) Clone() Route {
	out := make(Route, len(r))
	copy(out, r)
	return out
}

// Hops returns the hop count (number of links) of r.
func (r Route) Hops() int {
	if len(r) == 0 {
		return 0
	}
	return len(r) - 1
}

// Links returns the undirected links of r in order.
func (r Route) Links() []topology.Link {
	if len(r) < 2 {
		return nil
	}
	out := make([]topology.Link, 0, len(r)-1)
	for i := 0; i+1 < len(r); i++ {
		out = append(out, topology.MkLink(r[i], r[i+1]))
	}
	return out
}

// Contains reports whether id appears in r.
func (r Route) Contains(id topology.NodeID) bool {
	for _, n := range r {
		if n == id {
			return true
		}
	}
	return false
}

// ContainsLink reports whether r traverses l (in either direction).
func (r Route) ContainsLink(l topology.Link) bool {
	for i := 0; i+1 < len(r); i++ {
		if topology.MkLink(r[i], r[i+1]) == l {
			return true
		}
	}
	return false
}

// Equal reports whether r and s visit the same nodes in the same order.
func (r Route) Equal(s Route) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if r[i] != s[i] {
			return false
		}
	}
	return true
}

// Simple reports whether r has no repeated node.
func (r Route) Simple() bool {
	seen := make(map[topology.NodeID]bool, len(r))
	for _, n := range r {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// Valid reports whether every consecutive pair of r is adjacent in t.
func (r Route) Valid(t *topology.Topology) bool {
	for i := 0; i+1 < len(r); i++ {
		if !t.Adjacent(r[i], r[i+1]) {
			return false
		}
	}
	return true
}

// SharedLinks returns how many links r and s have in common.
func (r Route) SharedLinks(s Route) int {
	set := make(map[topology.Link]bool, len(r))
	for _, l := range r.Links() {
		set[l] = true
	}
	n := 0
	for _, l := range s.Links() {
		if set[l] {
			n++
		}
	}
	return n
}

// String implements fmt.Stringer, e.g. "0>5>11".
func (r Route) String() string {
	parts := make([]string, len(r))
	for i, n := range r {
		parts[i] = fmt.Sprint(int(n))
	}
	return strings.Join(parts, ">")
}

// RREQ is a route request flooded from Src toward Dst. Path accumulates the
// nodes traversed so far, Src first; its length minus one is the hop count
// the paper's forwarding rules compare.
//
// Requests issued by the flood framework (RunDiscovery) do not carry an
// explicit Path: they reference a per-discovery path arena that shares
// prefixes between copies, and Path stays nil. Use Hops and PathContains —
// which understand both representations — rather than reading Path directly
// when a request may originate from the framework. Protocols that flood
// their own requests (cdsr, aomdv) still populate Path explicitly.
type RREQ struct {
	ReqID uint64
	Src   topology.NodeID
	Dst   topology.NodeID
	Path  Route

	arena *pathArena
	ref   int32
}

// Hops returns the hop count of the request so far.
func (q *RREQ) Hops() int {
	if q.arena != nil {
		return int(q.arena.hops[q.ref])
	}
	return q.Path.Hops()
}

// PathContains reports whether the request's path so far traverses id.
func (q *RREQ) PathContains(id topology.NodeID) bool {
	if q.arena != nil {
		return q.arena.contains(q.ref, id)
	}
	return q.Path.Contains(id)
}

// RREP carries a discovered route back toward the source. Pos is the index
// (into Route) of the node currently holding the reply; it decreases as the
// reply travels src-ward.
type RREP struct {
	ReqID uint64
	Route Route
	Pos   int
}

// PayloadPacket marks packet types that carry application payload rather
// than routing control. Attack drop policies key on this marker: wormhole
// attackers relay control traffic (to stay attractive) while destroying
// payload, so any packet an attacker may legitimately destroy — Data, ACK,
// and the verify package's challenge/proof probes — implements it.
type PayloadPacket interface {
	IsPayload()
}

// Data is a payload packet sent along a fixed source route — the probe
// packets of SAM's step 2 use it. ACK acknowledges one back to the source.
type Data struct {
	SeqNo uint64
	Route Route
	Pos   int
}

// IsPayload implements PayloadPacket.
func (*Data) IsPayload() {}

// ACK acknowledges a Data packet end-to-end along the reversed route.
type ACK struct {
	SeqNo uint64
	Route Route // the original forward route; the ACK walks it backwards
	Pos   int
}

// IsPayload implements PayloadPacket.
func (*ACK) IsPayload() {}

// Discovery is the outcome of one route discovery: the route set R the
// destination observed, plus bookkeeping.
type Discovery struct {
	Protocol string
	Src, Dst topology.NodeID

	// Routes is R — each distinct route the destination observed, in
	// arrival order. SAM's statistics are computed over this set.
	Routes []Route

	// Times holds the virtual arrival time of each collected route's RREQ
	// copy at the destination, parallel to Routes. Dividing by the route's
	// hop count gives the per-hop latency a delay-consistency detector
	// compares against the nominal hop delay.
	Times []sim.Time

	// Replies are the routes actually returned to the source (a subset of
	// Routes chosen by the protocol's reply policy — or, under a route-reply
	// forgery attack, fabricated routes that never reached the destination).
	Replies []Route

	// ReplyTimes holds the virtual time each reply reached the source,
	// parallel to Replies. Honest replies travel back only after the flood
	// completes (FloodEnd); forged replies are injected mid-flood and arrive
	// implausibly early.
	ReplyTimes []sim.Time

	// FirstArrival and LastArrival are the virtual times of the first and
	// last RREQ copies reaching the destination (0,0 if none did).
	FirstArrival, LastArrival sim.Time

	// FloodEnd is the virtual time the request flood died out — the moment
	// the destination starts answering. Reply travel time is measured from
	// it.
	FloodEnd sim.Time

	// TxTotal and RxTotal are the total transmissions/receptions at all
	// nodes during discovery, including replies — Table II's overhead.
	TxTotal, RxTotal int64
}

// Overhead returns Tx+Rx, the paper's single overhead number per run.
func (d *Discovery) Overhead() int64 { return d.TxTotal + d.RxTotal }

// AffectedBy reports the fraction of discovered routes containing the given
// link (the tunnel), the paper's Table I metric. It returns 0 when no routes
// were found.
func (d *Discovery) AffectedBy(l topology.Link) float64 {
	if len(d.Routes) == 0 {
		return 0
	}
	n := 0
	for _, r := range d.Routes {
		if r.ContainsLink(l) {
			n++
		}
	}
	return float64(n) / float64(len(d.Routes))
}

// Protocol is an on-demand route-discovery protocol. Discover installs its
// handlers on net, floods a request from src to dst, runs the simulation to
// completion and returns the resulting Discovery. Implementations must be
// usable for several sequential discoveries on fresh networks; they must not
// retain references to net afterwards.
type Protocol interface {
	Name() string
	Discover(net *sim.Network, src, dst topology.NodeID) *Discovery
}

// SelectDisjoint greedily picks up to max routes from candidates, starting
// with the first (fastest) route and then repeatedly choosing the candidate
// sharing the fewest links with those already picked (ties: fewer hops, then
// earlier arrival). This is the "maximally disjoint" reply policy of SMR.
func SelectDisjoint(candidates []Route, max int) []Route {
	if max <= 0 || len(candidates) == 0 {
		return nil
	}
	picked := []Route{candidates[0]}
	used := map[int]bool{0: true}
	for len(picked) < max && len(picked) < len(candidates) {
		best, bestShared, bestHops := -1, int(^uint(0)>>1), int(^uint(0)>>1)
		for i, c := range candidates {
			if used[i] {
				continue
			}
			shared := 0
			for _, p := range picked {
				shared += c.SharedLinks(p)
			}
			if shared < bestShared || (shared == bestShared && c.Hops() < bestHops) {
				best, bestShared, bestHops = i, shared, c.Hops()
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		picked = append(picked, candidates[best])
	}
	return picked
}

// DedupRoutes returns routes with exact duplicates removed, preserving first
// occurrence order.
func DedupRoutes(routes []Route) []Route {
	seen := make(map[string]bool, len(routes))
	var out []Route
	for _, r := range routes {
		k := r.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
