package cli

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// LogFormats lists the accepted -log-format values.
var LogFormats = []string{"text", "json"}

// NewLogger resolves a -log-format flag value into the structured logger the
// commands share. Operational logging goes to stderr so stdout stays
// reserved for each command's actual output (tables, profiles, JSON
// summaries) and remains byte-stable for scripting.
func NewLogger(format string) (*slog.Logger, error) {
	return NewLoggerTo(os.Stderr, format)
}

// NewLoggerTo is NewLogger writing to w (tests capture the stream).
func NewLoggerTo(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want one of %v)", format, LogFormats)
}
