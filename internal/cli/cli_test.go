package cli

import (
	"testing"
)

func TestBuildTopologyAllNames(t *testing.T) {
	for _, name := range TopologyNames {
		net, err := BuildTopology(name, 1, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if net.Topo.N() == 0 || !net.Topo.Connected() {
			t.Errorf("%s: bad topology", name)
		}
		if len(net.AttackerPairs) != 2 {
			t.Errorf("%s: want 2 attacker pairs, got %d", name, len(net.AttackerPairs))
		}
	}
}

func TestBuildTopologyUnknown(t *testing.T) {
	if _, err := BuildTopology("torus", 1, 1); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestBuildTopologyTier(t *testing.T) {
	t1, _ := BuildTopology("cluster", 1, 1)
	t2, _ := BuildTopology("cluster", 2, 1)
	if t2.Topo.Radius() <= t1.Topo.Radius() {
		t.Error("tier should widen the radio range")
	}
}

func TestBuildProtocolAllNames(t *testing.T) {
	want := map[string]string{
		"mr": "MR", "smr": "SMR", "dsr": "DSR", "aomdv": "AOMDV", "aodv": "AODV", "mdsr": "MDSR",
	}
	for _, name := range ProtocolNames {
		p, err := BuildProtocol(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != want[name] {
			t.Errorf("%s resolves to %s", name, p.Name())
		}
	}
}

func TestBuildProtocolUnknown(t *testing.T) {
	if _, err := BuildProtocol("ospf"); err == nil {
		t.Error("unknown protocol should error")
	}
}
