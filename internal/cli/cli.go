// Package cli holds the small amount of logic the command-line tools share:
// resolving topology and protocol names to constructors. Keeping it out of
// the main packages makes it testable.
package cli

import (
	"fmt"
	"math/rand/v2"

	"samnet/internal/routing"
	"samnet/internal/routing/aomdv"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mdsr"
	"samnet/internal/routing/mr"
	"samnet/internal/topology"
)

// TopologyNames lists the accepted -topo values.
var TopologyNames = []string{"cluster", "uniform6x6", "uniform10x6", "random"}

// BuildTopology resolves a -topo flag value. tier applies to grid
// topologies; seed drives random placement. All topologies are built with
// two (inactive) attacker pairs so any wormhole count up to 2 can be armed.
func BuildTopology(name string, tier int, seed uint64) (*topology.Network, error) {
	switch name {
	case "cluster":
		return topology.Cluster(tier, 2), nil
	case "uniform6x6":
		return topology.Uniform(6, 6, tier, 2), nil
	case "uniform10x6":
		return topology.Uniform(10, 6, tier, 2), nil
	case "random":
		rng := rand.New(rand.NewPCG(seed, 0xda7a))
		return topology.Random(topology.RandomConfig{Wormholes: 2}, rng), nil
	}
	return nil, fmt.Errorf("unknown topology %q (want one of %v)", name, TopologyNames)
}

// ProtocolNames lists the accepted -protocol values.
var ProtocolNames = []string{"mr", "smr", "dsr", "aomdv", "aodv", "mdsr"}

// BuildProtocol resolves a -protocol flag value.
func BuildProtocol(name string) (routing.Protocol, error) {
	switch name {
	case "mr":
		return &mr.Protocol{}, nil
	case "smr":
		return &mr.Protocol{IncomingLinkRule: true}, nil
	case "dsr":
		return &dsr.Protocol{}, nil
	case "aomdv":
		return &aomdv.Protocol{}, nil
	case "aodv":
		return &aomdv.Protocol{SinglePath: true}, nil
	case "mdsr":
		return &mdsr.Protocol{}, nil
	}
	return nil, fmt.Errorf("unknown protocol %q (want one of %v)", name, ProtocolNames)
}
