package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling to cpuPath and arranges a heap profile
// at memPath; either path may be empty to skip that profile. The returned
// stop function flushes both and must run before the process exits — call it
// via defer from main, not from a path that calls os.Exit.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
