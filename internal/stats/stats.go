// Package stats provides the small statistical toolkit SAM needs: running
// moments (Welford), summaries, binned PMFs over [0,1], and distribution
// distances (total variation, Kolmogorov–Smirnov) for comparing an observed
// link-frequency distribution against a trained normal profile.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean and variance online using Welford's
// algorithm, numerically stable for long training streams. The zero value is
// an empty accumulator.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddAll folds every value of xs into the accumulator.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of samples.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than two samples).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// Summary is a frozen snapshot of an accumulator.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize returns the accumulator's snapshot.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.Mean(), Std: a.Std(), Min: a.min, Max: a.max}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	var a Accumulator
	a.AddAll(xs)
	return a.Std()
}

// Quantile returns the q-quantile (0<=q<=1) of xs by linear interpolation of
// the sorted samples. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// PMF is a binned probability mass function over [0,1]: bin i covers
// [i/bins, (i+1)/bins), with 1.0 folded into the last bin. It approximates
// the distribution of the per-link relative frequencies n_i/N.
type PMF struct {
	Counts []int
	Total  int
}

// NewPMF returns an empty PMF with the given number of bins (panics if <1).
func NewPMF(bins int) *PMF {
	if bins < 1 {
		panic("stats: PMF needs at least one bin")
	}
	return &PMF{Counts: make([]int, bins)}
}

// Bins returns the bin count.
func (p *PMF) Bins() int { return len(p.Counts) }

// BinOf returns the bin index for value x in [0,1]; values outside are
// clamped.
func (p *PMF) BinOf(x float64) int {
	if x < 0 {
		x = 0
	}
	if x >= 1 {
		return len(p.Counts) - 1
	}
	return int(x * float64(len(p.Counts)))
}

// Add folds one sample into the PMF.
func (p *PMF) Add(x float64) {
	p.Counts[p.BinOf(x)]++
	p.Total++
}

// AddAll folds every sample of xs in.
func (p *PMF) AddAll(xs []float64) {
	for _, x := range xs {
		p.Add(x)
	}
}

// Prob returns the probability mass of bin i (0 when empty).
func (p *PMF) Prob(i int) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Counts[i]) / float64(p.Total)
}

// Probs returns all bin masses.
func (p *PMF) Probs() []float64 {
	out := make([]float64, len(p.Counts))
	for i := range p.Counts {
		out[i] = p.Prob(i)
	}
	return out
}

// BinCenter returns the midpoint value of bin i.
func (p *PMF) BinCenter(i int) float64 {
	w := 1.0 / float64(len(p.Counts))
	return (float64(i) + 0.5) * w
}

// Clone returns a deep copy.
func (p *PMF) Clone() *PMF {
	c := NewPMF(len(p.Counts))
	copy(c.Counts, p.Counts)
	c.Total = p.Total
	return c
}

// TailMass returns the total probability mass at or above value x.
func (p *PMF) TailMass(x float64) float64 {
	if p.Total == 0 {
		return 0
	}
	var n int
	for i := p.BinOf(x); i < len(p.Counts); i++ {
		n += p.Counts[i]
	}
	return float64(n) / float64(p.Total)
}

// TVDistance returns the total-variation distance between two PMFs with the
// same binning: 0 for identical distributions, 1 for disjoint support. It
// panics on mismatched bin counts; an empty PMF compares at distance 0 to
// everything (no evidence either way).
func TVDistance(a, b *PMF) float64 {
	if a.Bins() != b.Bins() {
		panic("stats: TVDistance over mismatched bins")
	}
	if a.Total == 0 || b.Total == 0 {
		return 0
	}
	var d float64
	for i := range a.Counts {
		d += math.Abs(a.Prob(i) - b.Prob(i))
	}
	return d / 2
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic between
// the empirical samples xs and ys: the maximum absolute difference of their
// empirical CDFs. It returns 0 when either sample is empty.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 0
	}
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	sort.Float64s(x)
	sort.Float64s(y)
	var i, j int
	var d float64
	for i < len(x) && j < len(y) {
		var v float64
		if x[i] <= y[j] {
			v = x[i]
		} else {
			v = y[j]
		}
		for i < len(x) && x[i] <= v {
			i++
		}
		for j < len(y) && y[j] <= v {
			j++
		}
		fx := float64(i) / float64(len(x))
		fy := float64(j) / float64(len(y))
		if diff := math.Abs(fx - fy); diff > d {
			d = diff
		}
	}
	return d
}
