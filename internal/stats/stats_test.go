package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	// Unbiased sample variance of this classic set is 32/7.
	if got := a.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Var = %v", got)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Std() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Var() != 0 {
		t.Error("variance of one sample should be 0")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Error("min/max of single sample")
	}
}

func TestAccumulatorMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		var a Accumulator
		a.AddAll(xs)
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		scale := 1 + math.Abs(wantVar)
		return math.Abs(a.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(a.Var()-wantVar) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{1, 2, 3})
	s := a.Summarize()
	if s.N != 3 || s.Mean != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPMFBinning(t *testing.T) {
	p := NewPMF(10)
	if p.BinOf(0) != 0 {
		t.Error("0 should land in bin 0")
	}
	if p.BinOf(0.05) != 0 || p.BinOf(0.15) != 1 {
		t.Error("bin boundaries wrong")
	}
	if p.BinOf(1.0) != 9 || p.BinOf(2.0) != 9 {
		t.Error("1.0 and beyond should clamp to last bin")
	}
	if p.BinOf(-0.5) != 0 {
		t.Error("negatives clamp to bin 0")
	}
}

func TestPMFProbsSumToOne(t *testing.T) {
	p := NewPMF(20)
	p.AddAll([]float64{0.1, 0.2, 0.2, 0.9, 0.55})
	var sum float64
	for _, pr := range p.Probs() {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probs sum to %v", sum)
	}
	if p.Total != 5 {
		t.Errorf("Total = %d", p.Total)
	}
}

func TestPMFTailMass(t *testing.T) {
	p := NewPMF(10)
	p.AddAll([]float64{0.05, 0.15, 0.95, 0.85})
	if got := p.TailMass(0.8); got != 0.5 {
		t.Errorf("TailMass(0.8) = %v", got)
	}
	if got := p.TailMass(0); got != 1 {
		t.Errorf("TailMass(0) = %v", got)
	}
}

func TestPMFClone(t *testing.T) {
	p := NewPMF(5)
	p.Add(0.5)
	c := p.Clone()
	c.Add(0.9)
	if p.Total != 1 || c.Total != 2 {
		t.Error("clone aliases original")
	}
}

func TestPMFBinCenter(t *testing.T) {
	p := NewPMF(4)
	if got := p.BinCenter(0); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := p.BinCenter(3); math.Abs(got-0.875) > 1e-12 {
		t.Errorf("BinCenter(3) = %v", got)
	}
}

func TestNewPMFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPMF(0) should panic")
		}
	}()
	NewPMF(0)
}

func TestTVDistanceIdentical(t *testing.T) {
	a := NewPMF(10)
	b := NewPMF(10)
	xs := []float64{0.1, 0.3, 0.3, 0.7}
	a.AddAll(xs)
	b.AddAll(xs)
	if got := TVDistance(a, b); got != 0 {
		t.Errorf("TV identical = %v", got)
	}
}

func TestTVDistanceDisjoint(t *testing.T) {
	a := NewPMF(10)
	b := NewPMF(10)
	a.AddAll([]float64{0.05, 0.05})
	b.AddAll([]float64{0.95, 0.95})
	if got := TVDistance(a, b); got != 1 {
		t.Errorf("TV disjoint = %v", got)
	}
}

func TestTVDistanceRangeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		a := NewPMF(10)
		b := NewPMF(10)
		for _, x := range xs {
			a.Add(math.Abs(math.Mod(x, 1)))
		}
		for _, y := range ys {
			b.Add(math.Abs(math.Mod(y, 1)))
		}
		d := TVDistance(a, b)
		return d >= 0 && d <= 1 && math.Abs(d-TVDistance(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTVDistanceMismatchedBinsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	TVDistance(NewPMF(5), NewPMF(10))
}

func TestKSStatistic(t *testing.T) {
	same := []float64{1, 2, 3, 4}
	if got := KSStatistic(same, same); got != 0 {
		t.Errorf("KS identical = %v", got)
	}
	lo := []float64{1, 2, 3}
	hi := []float64{10, 11, 12}
	if got := KSStatistic(lo, hi); got != 1 {
		t.Errorf("KS disjoint = %v", got)
	}
	if got := KSStatistic(nil, hi); got != 0 {
		t.Errorf("KS empty = %v", got)
	}
}

func TestKSStatisticSymmetricProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) {
					out = append(out, math.Mod(v, 100))
				}
			}
			return out
		}
		a, b := clean(xs), clean(ys)
		d1, d2 := KSStatistic(a, b), KSStatistic(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Std([]float64{2, 4}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Std = %v", got)
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(float64(i % 1000))
	}
}

func BenchmarkTVDistance(b *testing.B) {
	x := NewPMF(50)
	y := NewPMF(50)
	for i := 0; i < 500; i++ {
		x.Add(float64(i%47) / 47)
		y.Add(float64(i%31) / 31)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TVDistance(x, y)
	}
}

func BenchmarkKSStatistic(b *testing.B) {
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i%13) / 13
		ys[i] = float64(i%17) / 17
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSStatistic(xs, ys)
	}
}
