// Package sector implements the MAD distance-bounding check of SECTOR
// (Capkun, Buttyan, Hubaux — SASN 2003), the second prior-art wormhole
// defense the paper's related work describes: "SECTOR requires special
// hardware at each node to respond to a one-bit challenge with one-bit
// response immediately using MAD protocol."
//
// The principle: a node challenges its neighbor with a random bit; the
// neighbor's dedicated hardware answers in (essentially) zero processing
// time, so the round-trip time bounds the distance at the speed of light —
// a tunnel endpoint relaying challenges to its far-away peer cannot beat
// physics, and the measured distance exposes the wormhole at a single hop.
//
// Simulation substitutes: true inter-node distances stand in for signal
// propagation, with a configurable processing-time error that inflates every
// measurement (the hardware's jitter). Like the leash, the check needs
// per-node hardware SAM does without — that trade-off is the comparison the
// baselines experiment quantifies.
package sector

import (
	"math/rand/v2"

	"samnet/internal/topology"
)

// Config sets the simulated hardware characteristics.
type Config struct {
	// Range is the radio range nodes assume when judging a measured
	// distance (defaults to the topology's radius).
	Range float64
	// ProcessingError is the maximum distance overestimate caused by
	// response-hardware jitter, in position units (default 0.15). Each
	// measurement draws a fresh error in [0, ProcessingError].
	ProcessingError float64
}

// Prover runs MAD distance-bounding checks over one topology.
type Prover struct {
	cfg  Config
	topo *topology.Topology
	rng  *rand.Rand

	// Checked and Flagged count measurements and violations.
	Checked, Flagged int64
}

// New builds a Prover. rng draws per-measurement jitter; pass the
// simulation's source for reproducibility.
func New(topo *topology.Topology, cfg Config, rng *rand.Rand) *Prover {
	if cfg.Range == 0 {
		cfg.Range = topo.Radius()
	}
	if cfg.ProcessingError == 0 {
		cfg.ProcessingError = 0.15
	}
	return &Prover{cfg: cfg, topo: topo, rng: rng}
}

// Bound returns the maximum distance a measurement may report for a
// legitimate neighbor: the radio range plus the full processing slack.
func (p *Prover) Bound() float64 { return p.cfg.Range + p.cfg.ProcessingError }

// Measure performs one distance-bounding exchange between a challenger and
// a claimed neighbor, returning the measured distance. A wormhole endpoint
// answering on behalf of its remote peer reports the full physical distance
// between challenger and peer: the tunnel cannot shorten light's round trip.
func (p *Prover) Measure(challenger, neighbor topology.NodeID) float64 {
	p.Checked++
	true2 := p.topo.Pos(challenger).Dist(p.topo.Pos(neighbor))
	return true2 + p.rng.Float64()*p.cfg.ProcessingError
}

// Check measures and verdicts one link: true means the neighbor is within
// bound (accepted), false flags the link.
func (p *Prover) Check(challenger, neighbor topology.NodeID) bool {
	ok := p.Measure(challenger, neighbor) <= p.Bound()
	if !ok {
		p.Flagged++
	}
	return ok
}

// SweepNeighbors distance-bounds every adjacency in the topology (both
// directions, as each node challenges its own neighbor list) and returns the
// flagged links with their worst measured distance.
func (p *Prover) SweepNeighbors() map[topology.Link]float64 {
	flagged := make(map[topology.Link]float64)
	for i := 0; i < p.topo.N(); i++ {
		a := topology.NodeID(i)
		for _, b := range p.topo.Neighbors(a) {
			d := p.Measure(a, b)
			if d > p.Bound() {
				p.Flagged++
				l := topology.MkLink(a, b)
				if d > flagged[l] {
					flagged[l] = d
				}
			}
		}
	}
	return flagged
}
