package sector

import (
	"math/rand/v2"
	"testing"

	"samnet/internal/attack"
	"samnet/internal/topology"
)

func TestCheckAcceptsLegitimateNeighbors(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	p := New(net.Topo, Config{}, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < net.Topo.N(); i++ {
		id := topology.NodeID(i)
		for _, nb := range net.Topo.Neighbors(id) {
			if !p.Check(id, nb) {
				t.Fatalf("distance bounding rejected legitimate link %d-%d", id, nb)
			}
		}
	}
	if p.Flagged != 0 {
		t.Errorf("flagged %d legitimate links", p.Flagged)
	}
}

func TestCheckFlagsTunnel(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	p := New(net.Topo, Config{}, rand.New(rand.NewPCG(2, 2)))
	w := sc.Tunnels[0]
	if p.Check(w.A, w.B) {
		t.Error("distance bounding accepted a multi-hop tunnel")
	}
}

func TestSweepNeighborsFindsExactlyTheTunnel(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	p := New(net.Topo, Config{}, rand.New(rand.NewPCG(3, 3)))
	flagged := p.SweepNeighbors()
	if len(flagged) != 1 {
		t.Fatalf("flagged %d links, want exactly the tunnel: %v", len(flagged), flagged)
	}
	if _, ok := flagged[sc.TunnelLinks()[0]]; !ok {
		t.Errorf("flagged the wrong link: %v", flagged)
	}
}

func TestSweepCleanNetworkFlagsNothing(t *testing.T) {
	net := topology.Uniform(10, 6, 1, 0)
	p := New(net.Topo, Config{}, rand.New(rand.NewPCG(4, 4)))
	if flagged := p.SweepNeighbors(); len(flagged) != 0 {
		t.Errorf("false positives: %v", flagged)
	}
	if p.Checked == 0 {
		t.Error("sweep measured nothing")
	}
}

func TestMeasureInflatesByAtMostProcessingError(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	cfg := Config{ProcessingError: 0.2}
	p := New(net.Topo, cfg, rand.New(rand.NewPCG(5, 5)))
	a := net.SrcPool[0]
	b := net.Topo.Neighbors(a)[0]
	truth := net.Topo.Pos(a).Dist(net.Topo.Pos(b))
	for i := 0; i < 100; i++ {
		d := p.Measure(a, b)
		if d < truth || d > truth+cfg.ProcessingError+1e-9 {
			t.Fatalf("measurement %v outside [%v, %v]", d, truth, truth+cfg.ProcessingError)
		}
	}
}

func TestBoundGrowsWithError(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	rng := rand.New(rand.NewPCG(6, 6))
	tight := New(net.Topo, Config{ProcessingError: 0.01}, rng)
	loose := New(net.Topo, Config{ProcessingError: 0.9}, rng)
	if tight.Bound() >= loose.Bound() {
		t.Error("bound should grow with processing error")
	}
}
