// Package runner is the deterministic parallel experiment harness: it fans
// an indexed grid of independent runs across a bounded worker pool and
// merges the results back in grid order, so the output of any experiment is
// bitwise-identical for every parallelism level, including 1.
//
// The determinism contract has three legs:
//
//  1. Randomness derives from grid coordinates, never from workers. Every
//     run draws its RNG streams via DeriveSeed/StreamRNG from (master seed,
//     axis label, run index) — a pure function of the cell's position in the
//     grid. Which worker executes a cell, and in what order cells complete,
//     cannot influence a single random draw.
//  2. Results are merged in grid order. Map writes each result into the
//     slot its index owns; no result ever passes through a channel whose
//     receive order depends on scheduling.
//  3. Cross-run state folds serially. Anything order-sensitive (trainer
//     accumulators, adaptive detectors, floating-point sums) is folded by
//     the caller over the merged slice, in index order, after the parallel
//     phase.
//
// Workers pull the next cell from an atomic cursor (work stealing), so an
// expensive cell never idles the pool the way static striping would.
package runner

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// Progress observes the pool's lifecycle for telemetry: Start announces the
// cell count before the pool begins, RunDone fires once per completed run.
// Implementations must be safe for concurrent use, and — because completion
// order is scheduling-dependent — must never influence results: a Progress
// may aggregate counts and wall-clock time, nothing else. The obs package
// provides the standard implementation; a nil Progress is a no-op.
type Progress interface {
	Start(n int)
	RunDone()
}

// Map executes fn(0..n-1) on min(parallel, n) workers and returns the
// results in index order. parallel <= 0 selects GOMAXPROCS; parallel == 1
// runs inline with no goroutines at all. A panic in any fn is re-raised on
// the caller's goroutine after the remaining workers drain.
func Map[T any](parallel, n int, fn func(i int) T) []T {
	return MapWorker(parallel, n, noScratch, func(i int, _ struct{}) T { return fn(i) })
}

// MapProgress is Map with a progress hook.
func MapProgress[T any](parallel, n int, pr Progress, fn func(i int) T) []T {
	return MapWorkerProgress(parallel, n, pr, noScratch, func(i int, _ struct{}) T { return fn(i) })
}

// ForEach is Map without collected results: fn(0..n-1) over the pool, same
// determinism contract (fn must write only to state its index owns).
func ForEach(parallel, n int, fn func(i int)) {
	ForEachWorker(parallel, n, noScratch, func(i int, _ struct{}) { fn(i) })
}

func noScratch() struct{} { return struct{}{} }

// MapWorker is Map with per-worker scratch: newScratch runs once per worker
// goroutine (once in total when the pool is inline) and its value is passed
// to every fn call that worker executes. Scratch must be semantically inert
// — reusable buffers, pooled networks — because which cells share a scratch
// depends on scheduling; results must be bitwise-independent of it. The
// determinism contract is otherwise unchanged.
func MapWorker[T, S any](parallel, n int, newScratch func() S, fn func(i int, scratch S) T) []T {
	return MapWorkerProgress[T, S](parallel, n, nil, newScratch, fn)
}

// MapWorkerProgress is MapWorker with a progress hook (see Progress).
func MapWorkerProgress[T, S any](parallel, n int, pr Progress, newScratch func() S, fn func(i int, scratch S) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEachWorkerProgress(parallel, n, pr, newScratch, func(i int, s S) { out[i] = fn(i, s) })
	return out
}

// ForEachWorker is ForEach with per-worker scratch (see MapWorker).
func ForEachWorker[S any](parallel, n int, newScratch func() S, fn func(i int, scratch S)) {
	ForEachWorkerProgress(parallel, n, nil, newScratch, fn)
}

// ForEachWorkerProgress is ForEachWorker with a progress hook: pr.Start(n)
// fires before the first run, pr.RunDone after each completed run, on
// whichever worker finished it. The determinism contract is unchanged — the
// hook observes scheduling, so it must never feed back into results.
func ForEachWorkerProgress[S any](parallel, n int, pr Progress, newScratch func() S, fn func(i int, scratch S)) {
	if n <= 0 {
		return
	}
	if pr != nil {
		pr.Start(n)
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			fn(i, s)
			if pr != nil {
				pr.RunDone()
			}
		}
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		once   sync.Once
		panicv any
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newScratch()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							once.Do(func() { panicv = fmt.Errorf("runner: run %d panicked: %v", i, r) })
							// Park the cursor past the end so the pool
							// drains instead of starting more cells.
							cursor.Store(int64(n))
						}
					}()
					fn(i, s)
					if pr != nil {
						pr.RunDone()
					}
				}()
			}
		}()
	}
	wg.Wait()
	if panicv != nil {
		panic(panicv)
	}
}

// MapGrid executes fn over an outer x inner grid, flattened row-major into
// one work list so parallelism spans the whole grid (a slow outer row never
// serializes behind the others), and returns results as [outer][inner]T in
// grid order.
func MapGrid[T any](parallel, outer, inner int, fn func(o, i int) T) [][]T {
	return MapGridWorker(parallel, outer, inner, noScratch, func(o, i int, _ struct{}) T {
		return fn(o, i)
	})
}

// MapGridWorker is MapGrid with per-worker scratch (see MapWorker).
func MapGridWorker[T, S any](parallel, outer, inner int, newScratch func() S, fn func(o, i int, scratch S) T) [][]T {
	return MapGridWorkerProgress[T, S](parallel, outer, inner, nil, newScratch, fn)
}

// MapGridWorkerProgress is MapGridWorker with a progress hook (see
// Progress); Start receives the flattened cell count outer*inner.
func MapGridWorkerProgress[T, S any](parallel, outer, inner int, pr Progress, newScratch func() S, fn func(o, i int, scratch S) T) [][]T {
	if outer <= 0 || inner <= 0 {
		return nil
	}
	flat := MapWorkerProgress(parallel, outer*inner, pr, newScratch, func(k int, s S) T {
		return fn(k/inner, k%inner, s)
	})
	out := make([][]T, outer)
	for o := range out {
		out[o] = flat[o*inner : (o+1)*inner]
	}
	return out
}

// DeriveSeed hashes (master seed, label, run) into an independent stream
// seed. The label names the axis or condition ("cluster-1tier/MR/attack",
// "pair", "topo"); renaming a label reshuffles its streams, nothing else
// does.
func DeriveSeed(master uint64, label string, run int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(master >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(run) >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// StreamRNG returns the PCG stream owned by grid cell (master, label, run).
// Two distinct cells get statistically independent streams; the same cell
// always gets the same stream, regardless of worker identity or completion
// order.
func StreamRNG(master uint64, label string, run int) *rand.Rand {
	return rand.New(rand.NewPCG(DeriveSeed(master, label, run), 0x9e3779b97f4a7c15))
}
