package runner

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapOrder: results land in index order for every parallelism level,
// and every index runs exactly once.
func TestMapOrder(t *testing.T) {
	const n = 203
	for _, parallel := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0), n + 5} {
		var calls atomic.Int64
		got := Map(parallel, n, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if len(got) != n {
			t.Fatalf("parallel=%d: got %d results, want %d", parallel, len(got), n)
		}
		if calls.Load() != n {
			t.Fatalf("parallel=%d: fn ran %d times, want %d", parallel, calls.Load(), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: slot %d holds %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

// TestMapDeterministicRNG: a run whose randomness derives from its grid
// coordinates produces identical output at every parallelism level.
func TestMapDeterministicRNG(t *testing.T) {
	const n = 64
	sample := func(parallel int) []float64 {
		return Map(parallel, n, func(i int) float64 {
			rng := StreamRNG(2005, "determinism", i)
			s := 0.0
			for j := 0; j < 100; j++ {
				s += rng.Float64()
			}
			return s
		})
	}
	want := sample(1)
	for _, parallel := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := sample(parallel); !reflect.DeepEqual(got, want) {
			t.Errorf("parallel=%d: output differs from serial run", parallel)
		}
	}
}

// TestMapGrid: row-major flattening reassembles into the right [outer][inner]
// shape with grid-order contents.
func TestMapGrid(t *testing.T) {
	got := MapGrid(3, 4, 5, func(o, i int) string { return fmt.Sprintf("%d:%d", o, i) })
	if len(got) != 4 {
		t.Fatalf("outer = %d, want 4", len(got))
	}
	for o, row := range got {
		if len(row) != 5 {
			t.Fatalf("row %d has %d cells, want 5", o, len(row))
		}
		for i, v := range row {
			if want := fmt.Sprintf("%d:%d", o, i); v != want {
				t.Errorf("cell (%d,%d) = %q, want %q", o, i, v, want)
			}
		}
	}
}

// TestForEachPanic: a panicking run surfaces on the caller, wrapped with its
// index, and the pool drains instead of hanging.
func TestForEachPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the worker panic to propagate")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "runner: run 13 panicked") {
			t.Fatalf("panic %q does not name the failing run", msg)
		}
	}()
	ForEach(4, 64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

// TestDeriveSeedIndependence: distinct labels and runs give distinct seeds;
// the same coordinates always give the same seed.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]string{}
	for _, label := range []string{"pair", "topo", "cluster-1tier/MR/attack"} {
		for run := 0; run < 50; run++ {
			s := DeriveSeed(2005, label, run)
			if s != DeriveSeed(2005, label, run) {
				t.Fatal("DeriveSeed is not a pure function")
			}
			key := fmt.Sprintf("%s/%d", label, run)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s", prev, key)
			}
			seen[s] = key
		}
	}
}

type countingProgress struct {
	started atomic.Int64
	done    atomic.Int64
}

func (p *countingProgress) Start(n int) { p.started.Add(int64(n)) }
func (p *countingProgress) RunDone()    { p.done.Add(1) }

// TestProgressHookCounts: Start sees the full cell count before the pool
// runs, RunDone fires exactly once per run, and the hook changes nothing
// about the results — at every parallelism level, including inline.
func TestProgressHookCounts(t *testing.T) {
	const n = 57
	want := Map(1, n, func(i int) int { return i * 3 })
	for _, parallel := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		pr := &countingProgress{}
		got := MapProgress(parallel, n, pr, func(i int) int { return i * 3 })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: progress hook perturbed results", parallel)
		}
		if pr.started.Load() != n {
			t.Errorf("parallel=%d: Start saw %d, want %d", parallel, pr.started.Load(), n)
		}
		if pr.done.Load() != n {
			t.Errorf("parallel=%d: RunDone fired %d times, want %d", parallel, pr.done.Load(), n)
		}
	}
}

// TestProgressGridFlattens: grid pools announce the flattened cell count.
func TestProgressGridFlattens(t *testing.T) {
	pr := &countingProgress{}
	MapGridWorkerProgress(3, 4, 5, pr, noScratch, func(o, i int, _ struct{}) int { return o*10 + i })
	if pr.started.Load() != 20 || pr.done.Load() != 20 {
		t.Errorf("grid progress = %d started / %d done, want 20/20", pr.started.Load(), pr.done.Load())
	}
}

// TestProgressNilSafe: a nil Progress is a no-op, not a crash.
func TestProgressNilSafe(t *testing.T) {
	got := MapProgress(4, 8, nil, func(i int) int { return i })
	if len(got) != 8 {
		t.Fatalf("nil progress broke the pool: %v", got)
	}
}

// TestMapEmpty: degenerate grids are no-ops, not crashes.
func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map over empty grid = %v, want nil", got)
	}
	if got := MapGrid(4, 0, 3, func(o, i int) int { return 0 }); got != nil {
		t.Errorf("MapGrid with zero outer = %v, want nil", got)
	}
}
