// Package trace renders experiment results as tables — markdown for humans,
// CSV for post-processing. Figures are rendered as tables of per-run series
// values (the terminal equivalent of the paper's scatter plots), so every
// artifact has one uniform representation.
package trace

import (
	"fmt"
	"strings"
)

// Table is a rectangular result with named columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed after the table (provenance, shape expectations,
	// deviations from the paper).
	Notes []string
}

// AddRow appends a row; it panics if the width disagrees with Headers.
func (t *Table) AddRow(cells ...string) {
	if len(t.Headers) != 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("trace: row width %d != header width %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	b.WriteString("| ")
	for i, h := range t.Headers {
		b.WriteString(pad(h, widths[i]))
		b.WriteString(" | ")
	}
	b.WriteString("\n|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("| ")
		for i, c := range row {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			b.WriteString(pad(c, w))
			b.WriteString(" | ")
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 4 decimal places, the precision the paper's
// statistics need.
func F(x float64) string { return fmt.Sprintf("%.4f", x) }

// F2 formats a float with 2 decimal places.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// D formats an integer.
func D[T ~int | ~int64 | ~int32](v T) string { return fmt.Sprintf("%d", v) }

// Artifact is one experiment output: a primary table plus any companions
// (e.g. a figure with both pmax and phi panels).
type Artifact struct {
	ID     string
	Kind   string // "table", "figure" or "extension"
	Tables []*Table
}

// Render renders all tables, markdown style.
func (a *Artifact) Render() string {
	var b strings.Builder
	for i, t := range a.Tables {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(t.Markdown())
	}
	return b.String()
}
