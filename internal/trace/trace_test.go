package trace

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Headers: []string{"Run", "Value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("1", "0.5000")
	t.AddRow("2", "0.7500")
	return t
}

func TestAddRowWidthMismatchPanics(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("mismatched row should panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestMarkdownStructure(t *testing.T) {
	md := sample().Markdown()
	if !strings.HasPrefix(md, "### Sample") {
		t.Errorf("missing title: %q", md)
	}
	if !strings.Contains(md, "| Run | Value") {
		t.Errorf("missing header row:\n%s", md)
	}
	if !strings.Contains(md, "| 2   | 0.7500") {
		t.Errorf("missing padded data row:\n%s", md)
	}
	if !strings.Contains(md, "> a note") {
		t.Error("missing note")
	}
	// Header separator must exist and match column count.
	lines := strings.Split(md, "\n")
	var sep string
	for _, l := range lines {
		if strings.HasPrefix(l, "|--") || strings.HasPrefix(l, "|-") {
			sep = l
		}
	}
	if strings.Count(sep, "|") != 3 {
		t.Errorf("separator %q should delimit 2 columns", sep)
	}
}

func TestCSV(t *testing.T) {
	csv := sample().CSV()
	want := "Run,Value\n1,0.5000\n2,0.7500\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Headers: []string{"a"}}
	tab.AddRow(`x,y "z"`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y ""z"""`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.12345) != "0.1235" {
		t.Errorf("F = %q", F(0.12345))
	}
	if F2(1.005) == "" {
		t.Error("F2 empty")
	}
	if Pct(0.425) != "42.5%" {
		t.Errorf("Pct = %q", Pct(0.425))
	}
	if D(42) != "42" || D(int64(-3)) != "-3" {
		t.Error("D wrong")
	}
}

func TestArtifactRender(t *testing.T) {
	a := &Artifact{ID: "x", Kind: "table", Tables: []*Table{sample(), sample()}}
	out := a.Render()
	if strings.Count(out, "### Sample") != 2 {
		t.Error("Render should include both tables")
	}
}
