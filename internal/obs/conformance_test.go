package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionEscapingConformance pins label-value escaping against the
// Prometheus 0.0.4 text format over adversarial values: inside a
// double-quoted label value, `\` must render as `\\`, `"` as `\"`, and a
// line feed as `\n`; everything else passes through. Each case is checked
// differentially — the rendered series line must equal one built from the
// spec's escape table — so an escaping regression cannot hide behind the
// renderer that introduced it.
func TestExpositionEscapingConformance(t *testing.T) {
	specEscape := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	adversarial := []string{
		`plain`,
		`back\slash`,
		`quote"inside`,
		"line\nfeed",
		`trailing\`,
		`\"already escaped\"`,
		"all\\three\"at\nonce",
		`\\double\\`,
		"",
		"unicode-ünïcodé-值",
		"tab\tand\rcarriage", // pass through unescaped per spec
	}
	for i, val := range adversarial {
		r := NewRegistry()
		r.Counter("conf_total", "", Label{Key: "v", Value: val}).Inc()
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		want := `conf_total{v="` + specEscape(val) + `"} 1` + "\n"
		lines := strings.Split(buf.String(), "\n")
		got := lines[len(lines)-2] + "\n" // last non-empty line is the sample
		if got != want {
			t.Errorf("case %d %q:\n got %q\nwant %q", i, val, got, want)
		}
		if got := EscapeLabelValue(val); got != specEscape(val) {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", val, got, specEscape(val))
		}
	}
}

func TestMetricAndLabelNameValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	// ':' is legal in metric names (recording-rule namespace)...
	r.Counter("job:rate5m:sum", "").Inc()
	// ...but not in label names.
	mustPanic("colon label", func() {
		NewRegistry().Counter("ok_total", "", Label{Key: "a:b", Value: "x"})
	})
	mustPanic("empty label", func() {
		NewRegistry().Counter("ok_total", "", Label{Key: "", Value: "x"})
	})
	mustPanic("leading digit label", func() {
		NewRegistry().Counter("ok_total", "", Label{Key: "1x", Value: "x"})
	})
	mustPanic("duplicate label keys", func() {
		NewRegistry().Counter("ok_total", "",
			Label{Key: "k", Value: "a"}, Label{Key: "k", Value: "b"})
	})
	mustPanic("bad metric name", func() { NewRegistry().Counter("bad-name", "") })
}

// TestGaugeFuncRegisterVsScrape races sampler (re-)registration against
// exposition; run under -race this pins the lock discipline around s.gf.
func TestGaugeFuncRegisterVsScrape(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("racy_gauge", "", func() float64 { return 0 })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := float64(i)
			r.GaugeFunc("racy_gauge", "", func() float64 { return v })
			r.GaugeFunc("other_gauge", "", func() float64 { return -v })
		}
	}()
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		if !strings.Contains(buf.String(), "racy_gauge ") {
			t.Fatal("racy_gauge missing from exposition")
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramExpositionZeroObservations pins the empty-instrument shape:
// every bucket (including +Inf) at 0, _sum 0, _count 0 — never NaN.
func TestHistogramExpositionZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "", []float64{0.1, 1})
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# TYPE empty_seconds histogram
empty_seconds_bucket{le="0.1"} 0
empty_seconds_bucket{le="1"} 0
empty_seconds_bucket{le="+Inf"} 0
empty_seconds_sum 0
empty_seconds_count 0
`
	if got := buf.String(); got != want {
		t.Errorf("zero-observation exposition:\n got %q\nwant %q", got, want)
	}
	h := NewHistogram([]float64{0.1, 1})
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Max()) {
		t.Error("empty histogram quantile/max should be NaN")
	}
}

// TestHistogramExpositionMaxClamped pins the over-the-top shape: samples
// beyond the last bound land only in +Inf, buckets stay cumulative, and
// quantiles clamp to the tracked maximum instead of inventing a bound.
func TestHistogramExpositionMaxClamped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(50)  // beyond last bound
	h.Observe(999) // beyond last bound, new max
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# TYPE hot_seconds histogram
hot_seconds_bucket{le="0.1"} 1
hot_seconds_bucket{le="1"} 1
hot_seconds_bucket{le="+Inf"} 3
hot_seconds_sum 1049.05
hot_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("max-clamped exposition:\n got %q\nwant %q", got, want)
	}
	if got := h.Max(); got != 999 {
		t.Errorf("Max = %v, want 999", got)
	}
	if got := h.Quantile(0.99); got != 999 {
		t.Errorf("Quantile(0.99) = %v, want clamp to max 999", got)
	}
}

func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(8, 0)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		span := tr.Start("detect", ParentFromRequest(r))
		w.Header().Set("Traceparent", span.Context().Traceparent())
		w.WriteHeader(http.StatusTeapot)
		tr.Finish(span, http.StatusTeapot)
	})
	h := AccessLog(logger, 2, inner)
	for i := 0; i < 6; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/detect", nil))
		if rec.Code != http.StatusTeapot {
			t.Fatalf("middleware changed status: %d", rec.Code)
		}
	}
	lines := strings.Count(buf.String(), "msg=request")
	if lines != 3 {
		t.Fatalf("1-in-2 sampling logged %d of 6", lines)
	}
	for _, want := range []string{"method=POST", "path=/v1/detect", "status=418", "duration=", "trace_id="} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("log line missing %q in %q", want, buf.String())
		}
	}

	// every <= 0 disables the middleware entirely (identity wrap).
	if got := AccessLog(logger, 0, inner); got == nil {
		t.Fatal("nil handler")
	} else if fmt.Sprintf("%p", got) != fmt.Sprintf("%p", inner) {
		// Not identical — but it must at least not log.
		buf.Reset()
		rec := httptest.NewRecorder()
		got.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if buf.Len() != 0 {
			t.Fatal("every=0 should not log")
		}
	}
}
