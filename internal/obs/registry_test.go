package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format: HELP/TYPE once per
// family, sorted families and series, cumulative le buckets with a +Inf
// bucket plus _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.", Label{"endpoint", "detect"}, Label{"class", "2xx"})
	c.Add(7)
	r.Counter("app_requests_total", "Requests served.", Label{"endpoint", "detect"}, Label{"class", "5xx"}).Inc()
	g := r.Gauge("app_queue_depth", "Tasks admitted.")
	g.Set(3)
	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 0.5, 1}, Label{"endpoint", "detect"})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.7)
	h.Observe(9) // +Inf bucket

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{endpoint="detect",le="0.1"} 2
app_latency_seconds_bucket{endpoint="detect",le="0.5"} 2
app_latency_seconds_bucket{endpoint="detect",le="1"} 3
app_latency_seconds_bucket{endpoint="detect",le="+Inf"} 4
app_latency_seconds_sum{endpoint="detect"} 9.8
app_latency_seconds_count{endpoint="detect"} 4
# HELP app_queue_depth Tasks admitted.
# TYPE app_queue_depth gauge
app_queue_depth 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{class="2xx",endpoint="detect"} 7
app_requests_total{class="5xx",endpoint="detect"} 1
# HELP app_uptime_seconds Uptime.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 12.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Label{"k", "v"})
	b := r.Counter("x_total", "", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if r.Counter("x_total", "", Label{"k", "w"}) == a {
		t.Fatal("different labels must return a different counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 10}, {0.95, 95, 10}, {0.99, 99, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v±%v", tc.q, got, tc.want, tc.tol)
		}
	}
	if got := h.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("Sum = %v, want 5050", got)
	}
	// Beyond the last bound, the quantile falls back to the observed max.
	h.Observe(1e6)
	if got := h.Quantile(1); got != 1e6 {
		t.Errorf("Quantile(1) with overflow sample = %v, want 1e6", got)
	}
	if got := NewHistogram([]float64{1}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
}

// TestInstrumentsConcurrent hammers every instrument from many goroutines;
// run under -race this pins the lock-free hot paths.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				if i%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
