package obs

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// accessWriter captures the response status for access logging. It keeps
// http.ResponseController working (Flush, deadlines, full-duplex on the
// stream paths) by exposing the wrapped writer via Unwrap.
type accessWriter struct {
	http.ResponseWriter
	status int
}

func (w *accessWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *accessWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// AccessLog wraps next with sampled structured request logging: one request
// in every `every` is logged at Info with method, path, status, duration,
// and — when the handler started a span — the trace id, so a log line joins
// /debug/traces directly. every <= 0 disables sampling entirely and returns
// next unwrapped, every == 1 logs everything. Sampling is a single atomic
// counter, shared across all connections.
func AccessLog(logger *slog.Logger, every int, next http.Handler) http.Handler {
	if logger == nil || every <= 0 {
		return next
	}
	var n atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%uint64(every) != 0 {
			next.ServeHTTP(w, r)
			return
		}
		aw := &accessWriter{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(aw, r)
		status := aw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration", time.Since(begin),
		}
		// Instrumented handlers announce their span in the response header;
		// reading it back here keeps the middleware decoupled from the
		// tracer while still joining log lines to traces.
		if tp := aw.Header().Get("Traceparent"); tp != "" {
			if t, _, ok := ParseTraceparent(tp); ok {
				attrs = append(attrs, "trace_id", t.String())
			}
		}
		logger.Info("request", attrs...)
	})
}
