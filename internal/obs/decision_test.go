package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestDecisionRingWraparound(t *testing.T) {
	r := NewDecisionRing(4)
	for i := 1; i <= 10; i++ {
		r.Record(Decision{Profile: fmt.Sprintf("p%d", i), PMax: float64(i)})
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	for i, d := range snap {
		wantSeq := uint64(7 + i) // oldest retained record is seq 7
		if d.Seq != wantSeq || d.PMax != float64(wantSeq) {
			t.Errorf("snapshot[%d] = seq %d pmax %v, want seq %d", i, d.Seq, d.PMax, wantSeq)
		}
	}
}

func TestDecisionRingDisabledAndNil(t *testing.T) {
	var nilRing *DecisionRing
	if nilRing.Enabled() {
		t.Error("nil ring must report disabled")
	}
	nilRing.Record(Decision{}) // must not panic
	nilRing.SetEnabled(true)   // must not panic
	if got := nilRing.Snapshot(); got != nil {
		t.Errorf("nil ring snapshot = %v, want nil", got)
	}

	r := NewDecisionRing(2)
	r.SetEnabled(false)
	r.Record(Decision{})
	if r.Recorded() != 0 || r.Len() != 0 {
		t.Error("disabled ring must not record")
	}
	r.SetEnabled(true)
	r.Record(Decision{})
	if r.Recorded() != 1 {
		t.Error("re-enabled ring must record")
	}
}

// TestDecisionRingConcurrent runs writers against snapshotting readers; under
// -race this pins the lock-free publication protocol.
func TestDecisionRingConcurrent(t *testing.T) {
	r := NewDecisionRing(8)
	const writers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Decision{Profile: "p", Routes: w, N: i})
			}
		}(w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				snap := r.Snapshot()
				for j := 1; j < len(snap); j++ {
					if snap[j].Seq <= snap[j-1].Seq {
						t.Error("snapshot not strictly ordered by seq")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	readers.Wait()
	if got := r.Recorded(); got != writers*per {
		t.Fatalf("Recorded = %d, want %d", got, writers*per)
	}
}

func TestDecisionJSONRoundTrip(t *testing.T) {
	d := Decision{
		Seq: 3, Profile: "cluster", Routes: 5, N: 20,
		Links: []DecisionLink{{A: 1, B: 2, Count: 5, P: 0.25}, {A: 2, B: 3, Count: 3, P: 0.15}},
		PMax:  0.25, Phi: 0.4, TV: 0.31, ZPMax: 5.2, ZPhi: 3.3,
		ZLow: 1.5, ZHigh: 4, TVLow: 0.3, TVHigh: 0.7,
		SuspectLambda: 0.7, AttackLambda: 0.25,
		Suspect: DecisionLink{A: 1, B: 2}, Lambda: 0.1, Decision: "attacked",
	}
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Decision
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
	for _, key := range []string{`"p_max"`, `"z_pmax"`, `"suspect"`, `"lambda"`, `"links"`} {
		if !bytes.Contains(blob, []byte(key)) {
			t.Errorf("encoded decision missing %s: %s", key, blob)
		}
	}
}
