package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods are lock-free and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 gauge. The zero value is ready to use; all
// methods are lock-free and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets bounds a latency histogram in seconds: 50µs to 5s,
// roughly log-spaced, chosen around the sub-millisecond cost of scoring one
// route set with headroom for queueing under load.
var DefaultLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// RatioBuckets bounds a histogram over [0,1] quantities — p_max, phi,
// total-variation distance, lambda.
var RatioBuckets = []float64{
	0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
}

// Histogram is a fixed-bucket histogram with atomic counters, cheap enough
// to sit on a request hot path: Observe is a binary search plus four atomic
// operations, with no locks and no allocation. It additionally tracks the
// maximum observation, so tail quantiles stay meaningful when observations
// land in the +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // one per bound, plus +Inf at the end
	sumBits atomic.Uint64
	maxBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram builds a standalone histogram (one not owned by a registry)
// over the given bucket bounds, which must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation, or NaN before the first one.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank — the standard fixed-bucket
// estimate, accurate to the bucket width. Samples beyond the last bound
// report the maximum observation. Returns NaN with no observations.
//
// Concurrent observers may tick individual bucket counters mid-read; the
// estimate is then correct for some recent state, which is all a telemetry
// percentile needs.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(bound-lo)
		}
		cum += c
	}
	return h.Max()
}
