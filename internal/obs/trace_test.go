package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDGeneration(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d draws", id, i)
		}
		seen[id] = true
	}
	sp := NewSpanID()
	if sp.IsZero() {
		t.Fatal("NewSpanID returned zero id")
	}
	if got := len(NewTraceID().String()); got != 32 {
		t.Fatalf("trace id hex length = %d, want 32", got)
	}
	if got := len(sp.String()); got != 16 {
		t.Fatalf("span id hex length = %d, want 16", got)
	}
}

func TestFormatParseTraceparentRoundTrip(t *testing.T) {
	tr, sp := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tr, sp)
	if len(h) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(h), h)
	}
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent framing wrong: %q", h)
	}
	gt, gs, ok := ParseTraceparent(h)
	if !ok || gt != tr || gs != sp {
		t.Fatalf("round trip failed: %q -> %v %v %v", h, gt, gs, ok)
	}
}

func TestParseTraceparentStrict(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		// Uppercase hex accepted on parse.
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01", true},
		// Future version may carry a dash-prefixed tail.
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		// Version 00 must be exactly 55 bytes.
		{valid + "-extra", false},
		// Future version tail must start with a dash.
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra", false},
		// Version ff is forbidden.
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		// Zero trace / span ids are invalid.
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		// Structural garbage.
		{"", false},
		{"00", false},
		{"004bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e473x-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bx-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x", false},
		{"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
	}
	for _, c := range cases {
		_, _, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
		}
	}
}

func TestSpanContextHexAliasesHeader(t *testing.T) {
	tr := NewTracer(8, 0)
	span := tr.Start("detect", SpanContext{})
	sc := span.Context()
	if !sc.Valid() {
		t.Fatal("started span context invalid")
	}
	h := sc.Traceparent()
	if h[3:35] != sc.TraceHex() || h[36:52] != sc.SpanHex() {
		t.Fatalf("hex views disagree with header: %q vs %q/%q", h, sc.TraceHex(), sc.SpanHex())
	}
	if sc.TraceHex() != sc.TraceID().String() || sc.SpanHex() != sc.SpanID().String() {
		t.Fatal("hex views disagree with binary ids")
	}
	// A parsed (remote) context has no header but still renders hex.
	pt, ps, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	remote := SpanContext{traceID: pt, spanID: ps}
	if remote.TraceHex() != "4bf92f3577b34da6a3ce929d0e0e4736" || remote.SpanHex() != "00f067aa0ba902b7" {
		t.Fatalf("remote hex views wrong: %q %q", remote.TraceHex(), remote.SpanHex())
	}
	if remote.Traceparent() != "" {
		t.Fatal("remote context should not carry a propagation header")
	}
}

func TestParentFromRequest(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/detect", nil)
	if p := ParentFromRequest(r); p.Valid() {
		t.Fatal("no header should yield invalid parent")
	}
	r.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	p := ParentFromRequest(r)
	if !p.Valid() || p.TraceHex() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("parent not extracted: %+v", p)
	}
	r.Header.Set("Traceparent", "garbage")
	if p := ParentFromRequest(r); p.Valid() {
		t.Fatal("garbage header should yield invalid parent")
	}
}

func TestContextSpanRoundTrip(t *testing.T) {
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty context should have no span")
	}
	tr := NewTracer(4, 0)
	span := tr.Start("x", SpanContext{})
	ctx := ContextWithSpan(context.Background(), span.Context())
	got, ok := SpanFromContext(ctx)
	if !ok || got != span.Context() {
		t.Fatalf("context round trip failed: %+v %v", got, ok)
	}
}

func TestTracerParentChild(t *testing.T) {
	tr := NewTracer(8, 0)
	root := tr.Start("gateway", SpanContext{})
	child := tr.Start("replica", root.Context())
	if child.Context().TraceHex() != root.Context().TraceHex() {
		t.Fatal("child should continue parent trace")
	}
	if child.Context().SpanHex() == root.Context().SpanHex() {
		t.Fatal("child must get a fresh span id")
	}
	tr.Finish(child, 200)
	tr.Finish(root, 200)
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Finished in child, root order.
	if spans[0].Name != "replica" || spans[1].Name != "gateway" {
		t.Fatalf("span order wrong: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != root.Context().SpanHex() {
		t.Fatalf("child parent = %q, want %q", spans[0].Parent, root.Context().SpanHex())
	}
	if spans[1].Parent != "" {
		t.Fatalf("root parent = %q, want empty", spans[1].Parent)
	}
	if spans[0].Status != 200 {
		t.Fatalf("status = %d, want 200", spans[0].Status)
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer should be disabled")
	}
	nilT.SetEnabled(true) // must not panic
	nilT.Finish(nilT.Start("x", SpanContext{}), 200)
	if nilT.Snapshot() != nil || nilT.SnapshotSlow() != nil || nilT.Cap() != 0 || nilT.Recorded() != 0 {
		t.Fatal("nil tracer should report empty")
	}

	tr := NewTracer(4, 0)
	tr.SetEnabled(false)
	span := tr.Start("x", SpanContext{})
	if span.Context().Valid() {
		t.Fatal("disabled Start should return inert span")
	}
	tr.Finish(span, 200)
	if tr.Recorded() != 0 {
		t.Fatal("disabled tracer must record nothing")
	}
	tr.SetEnabled(true)
	tr.Finish(tr.Start("y", SpanContext{}), 200)
	if tr.Recorded() != 1 {
		t.Fatal("re-enabled tracer should record")
	}
}

func TestTracerSlowCapture(t *testing.T) {
	tr := NewTracer(8, time.Nanosecond) // everything is slow
	tr.Finish(tr.Start("slowop", SpanContext{}), 200)
	slow := tr.SnapshotSlow()
	if len(slow) != 1 || !slow[0].Slow || slow[0].Name != "slowop" {
		t.Fatalf("slow capture failed: %+v", slow)
	}
	recent := tr.Snapshot()
	if len(recent) != 1 || !recent[0].Slow {
		t.Fatal("slow span should appear marked in recent ring too")
	}

	// Threshold 0 disables slow capture entirely.
	tr2 := NewTracer(8, 0)
	tr2.Finish(tr2.Start("op", SpanContext{}), 200)
	if len(tr2.SnapshotSlow()) != 0 {
		t.Fatal("zero threshold must not capture slow spans")
	}
	if tr2.Snapshot()[0].Slow {
		t.Fatal("span should not be marked slow with capture off")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4, 0)
	for i := 0; i < 10; i++ {
		tr.Finish(tr.Start("op", SpanContext{}), 200)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(7 + i); sp.Seq != want {
			t.Fatalf("spans[%d].Seq = %d, want %d", i, sp.Seq, want)
		}
	}
	if tr.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", tr.Recorded())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64, time.Nanosecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.Start("root", SpanContext{})
				tr.Finish(tr.Start("child", root.Context()), 200)
				tr.Finish(root, 200)
				tr.Snapshot()
				tr.SnapshotSlow()
			}
		}()
	}
	wg.Wait()
	if tr.Recorded() != 8*200*2 {
		t.Fatalf("Recorded = %d, want %d", tr.Recorded(), 8*200*2)
	}
	spans := tr.Snapshot()
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Fatal("snapshot not ordered by seq")
		}
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(8, 0)
	root := tr.Start("gateway", SpanContext{})
	tr.Finish(tr.Start("replica", root.Context()), 200)
	tr.Finish(root, 200)
	other := tr.Start("other", SpanContext{})
	tr.Finish(other, 500)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var resp TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if !resp.Enabled || resp.Capacity != 8 || resp.Recorded != 3 || len(resp.Spans) != 3 {
		t.Fatalf("unexpected response: %+v", resp)
	}

	// Trace filter narrows to one trace.
	rec = httptest.NewRecorder()
	url := "/debug/traces?trace=" + root.Context().TraceHex()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(resp.Spans) != 2 {
		t.Fatalf("filtered spans = %d, want 2", len(resp.Spans))
	}
	for _, sp := range resp.Spans {
		if sp.TraceID != root.Context().TraceHex() {
			t.Fatalf("filter leaked foreign trace: %+v", sp)
		}
	}

	// Nil tracer serves a disabled document rather than panicking.
	var nilT *Tracer
	rec = httptest.NewRecorder()
	nilT.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if resp.Enabled || resp.Capacity != 0 || len(resp.Spans) != 0 {
		t.Fatalf("nil tracer response: %+v", resp)
	}
}

func TestStartAllocsWhenDisabled(t *testing.T) {
	tr := NewTracer(8, 0)
	tr.SetEnabled(false)
	allocs := testing.AllocsPerRun(100, func() {
		span := tr.Start("op", SpanContext{})
		tr.Finish(span, 200)
	})
	if allocs != 0 {
		t.Fatalf("disabled Start/Finish allocs = %v, want 0", allocs)
	}
	var nilT *Tracer
	allocs = testing.AllocsPerRun(100, func() {
		span := nilT.Start("op", SpanContext{})
		nilT.Finish(span, 200)
	})
	if allocs != 0 {
		t.Fatalf("nil Start/Finish allocs = %v, want 0", allocs)
	}
}

func TestParentFromRequestNoAlloc(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/detect", nil)
	allocs := testing.AllocsPerRun(100, func() {
		if ParentFromRequest(r).Valid() {
			t.Fatal("unexpected valid parent")
		}
	})
	if allocs != 0 {
		t.Fatalf("ParentFromRequest miss allocs = %v, want 0", allocs)
	}
}
