// Package obs is the repository's zero-dependency observability core: a
// process-wide registry of counters, gauges, and fixed-bucket histograms
// with a Prometheus text exposition writer, structured detection decision
// records held in a lock-free ring buffer, and a progress tracker for
// long-running experiment sweeps.
//
// Two constraints shape the package, carried over from the hot-path work of
// earlier PRs:
//
//   - Telemetry must be allocation-light on hot paths. Instrument handles
//     are resolved once at registration time (the only place a lock is
//     taken); Add/Set/Observe are single atomic operations and never
//     allocate. Decision capture hides behind an atomic enabled check, so a
//     disabled ring costs one predictable branch and zero allocations.
//   - Telemetry must never perturb simulation results. Nothing in this
//     package touches RNG state or event ordering; progress and metrics only
//     aggregate counts and wall-clock time. samrepro output is pinned
//     bitwise-identical with telemetry on or off.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Label is one metric label pair. Labels attach at registration time, so
// the hot path never renders them.
type Label struct{ Key, Value string }

// kind discriminates the instrument families a registry holds.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

// series is one (family, label set) instrument. Exactly one of the value
// fields is populated, matching the family's kind.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when label-less
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups every series sharing one metric name; HELP and TYPE are
// emitted once per family.
type family struct {
	name, help string
	kind       kind
	bounds     []float64
	series     map[string]*series
}

// Registry is a set of named instruments with Prometheus text exposition.
// Registration takes a mutex; the returned instrument handles are lock-free
// and safe for concurrent use. Registering the same (name, labels) twice
// returns the same instrument; registering one name with conflicting kinds
// or histogram bounds panics, since that is a programming error no caller
// can recover from meaningfully.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, counterKind, nil, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or fetches) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, gaugeKind, nil, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled from fn at exposition
// time — for values some other component already owns (queue depth, store
// size). fn must be safe to call concurrently. Re-registering the same
// (name, labels) replaces the sampler.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, gaugeKind, nil, labels)
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Histogram registers (or fetches) a fixed-bucket histogram. bounds are the
// inclusive bucket upper limits in increasing order; an implicit +Inf bucket
// is always appended.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.getOrCreate(name, help, histogramKind, bounds, labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

func (r *Registry) getOrCreate(name, help string, k kind, bounds []float64, labels []Label) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, kind: k,
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]*series),
		}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	if k == histogramKind && !sliceEq(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format (version 0.0.4): HELP and TYPE once per family,
// families and series in sorted order, histogram buckets cumulative with a
// trailing +Inf bucket plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSeries(w, f, f.series[k])
		}
	}
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch f.kind {
	case counterKind:
		fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
	case gaugeKind:
		v := 0.0
		if s.gf != nil {
			v = s.gf()
		} else {
			v = s.g.Value()
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(v))
	case histogramKind:
		var cum uint64
		for i, bound := range s.h.bounds {
			cum += s.h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, formatFloat(bound)), cum)
		}
		cum += s.h.counts[len(s.h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
	}
}

// Handler returns an HTTP handler serving the exposition — a drop-in
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// withLE splices an le label into a rendered label suffix.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// renderLabels renders a label set as a deterministic {k="v",...} suffix.
// Labels are sorted by key so the same set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// decimal, with integral values kept integral.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// EscapeLabelValue escapes a string for use inside a double-quoted label
// value per the Prometheus 0.0.4 text format: backslash, double quote, and
// line feed become \\, \", and \n. Exported for composers that splice label
// values into already-rendered exposition text (fleet federation).
func EscapeLabelValue(s string) string { return escapeValue(s) }

// validMetricName accepts Prometheus metric names, which — unlike label
// names — may contain ':' (reserved for recording rules, but legal).
func validMetricName(s string) bool { return validIdent(s, true) }

// validLabelName accepts Prometheus label names: [a-zA-Z_][a-zA-Z0-9_]*.
// ':' is legal in metric names only; accepting it here would emit series no
// conformant parser ingests.
func validLabelName(s string) bool { return validIdent(s, false) }

func validIdent(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':':
			if !allowColon {
				return false
			}
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func sliceEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
