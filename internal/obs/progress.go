package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress aggregates run completions from a parallel sweep into a
// throttled, human-readable status line: runs completed, runs per second,
// and (once a total is known) percent done and an ETA. It implements the
// runner package's progress hook.
//
// Progress is safe for concurrent use and deliberately side-effect-free
// beyond its writer: it reads the wall clock and counts completions, so
// attaching one cannot perturb simulation randomness or event order. A nil
// *Progress is valid and inert.
type Progress struct {
	w     io.Writer
	label string
	every time.Duration

	start time.Time
	total atomic.Int64
	done  atomic.Int64
	last  atomic.Int64 // wall nanos of the last emitted line

	mu sync.Mutex // serializes writes to w
}

// NewProgress builds a tracker writing to w (typically stderr) under the
// given label. total may be 0 when the sweep size is unknown up front;
// Start calls accumulate into it. Lines are emitted at most every 500ms.
func NewProgress(w io.Writer, label string, total int) *Progress {
	p := &Progress{w: w, label: label, every: 500 * time.Millisecond, start: time.Now()}
	p.total.Store(int64(total))
	return p
}

// Start announces n upcoming runs, accumulating into the expected total.
// The runner pool calls it once per parallel invocation, so multi-phase
// experiments grow their ETA denominator as phases are scheduled. Nil-safe.
func (p *Progress) Start(n int) {
	if p != nil {
		p.total.Add(int64(n))
	}
}

// RunDone records one completed run and emits a status line when the
// throttle interval has passed. Nil-safe.
func (p *Progress) RunDone() {
	if p == nil {
		return
	}
	p.done.Add(1)
	now := time.Now().UnixNano()
	last := p.last.Load()
	if now-last < int64(p.every) || !p.last.CompareAndSwap(last, now) {
		return
	}
	p.emit()
}

// Finish emits a final summary line. Call it once after the sweep drains.
// Nil-safe.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.emit()
}

// Done returns the number of completed runs. Nil-safe (0).
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

func (p *Progress) emit() {
	done := p.done.Load()
	total := p.total.Load()
	elapsed := time.Since(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if total > 0 && done <= total {
		eta := time.Duration(0)
		if rate > 0 {
			eta = time.Duration(float64(total-done) / rate * float64(time.Second))
		}
		fmt.Fprintf(p.w, "%s: %d/%d runs (%.0f%%)  %.0f runs/s  eta %s\n",
			p.label, done, total, 100*float64(done)/float64(total), rate, eta.Round(100*time.Millisecond))
		return
	}
	fmt.Fprintf(p.w, "%s: %d runs  %.0f runs/s\n", p.label, done, rate)
}
