package obs

// Distributed tracing for the serving fleet, in the same zero-dependency,
// observe-only discipline as the rest of this package. A Tracer hands out
// trace/span identities, propagates them in W3C trace-context style
// ("traceparent" header), and retains completed spans in lock-free rings —
// one for recent spans, one for spans over a slow threshold — behind an
// atomic enabled flag, so a disabled (or nil) tracer costs one branch and
// zero allocations on the detect hot path.
//
// The contract mirrors DecisionRing's: writers claim a slot with one atomic
// increment and publish with one atomic pointer store; readers snapshot
// without blocking writers; nothing in here may perturb request handling or
// response bytes. Spans are records about requests, never inputs to them.

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte trace identity, rendered as 32 lowercase hex digits.
// The all-zero value is invalid, as in the W3C trace-context spec.
type TraceID [16]byte

// SpanID is an 8-byte span identity, rendered as 16 lowercase hex digits.
// The all-zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero identity.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero identity.
func (s SpanID) IsZero() bool { return s == SpanID{} }

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0x0f])
	}
	return dst
}

// String renders the trace id as 32 lowercase hex digits.
func (t TraceID) String() string { return string(appendHex(make([]byte, 0, 32), t[:])) }

// String renders the span id as 16 lowercase hex digits.
func (s SpanID) String() string { return string(appendHex(make([]byte, 0, 16), s[:])) }

// traceparentLen is the exact length of a version-00 traceparent value:
// "00-" + 32 trace hex + "-" + 16 span hex + "-" + 2 flag hex.
const traceparentLen = 55

// FormatTraceparent renders a version-00 traceparent header value with the
// sampled flag set: "00-<trace>-<span>-01".
func FormatTraceparent(t TraceID, s SpanID) string {
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = appendHex(b, t[:])
	b = append(b, '-')
	b = appendHex(b, s[:])
	b = append(b, '-', '0', '1')
	return string(b)
}

// hexNibble decodes one lowercase-or-uppercase hex digit, reporting failure
// without error allocation (the parser runs per request).
func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func decodeHex(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value. Version 00 must be
// exactly 55 bytes; a future (non-ff) version may carry a "-"-prefixed tail,
// which is ignored. The zero trace or span id is rejected, per the spec.
func ParseTraceparent(s string) (TraceID, SpanID, bool) {
	var t TraceID
	var sp SpanID
	if len(s) < traceparentLen || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return t, sp, false
	}
	v1, ok1 := hexNibble(s[0])
	v2, ok2 := hexNibble(s[1])
	if !ok1 || !ok2 {
		return t, sp, false
	}
	version := v1<<4 | v2
	if version == 0xff {
		return t, sp, false
	}
	if len(s) > traceparentLen && (version == 0 || s[traceparentLen] != '-') {
		return t, sp, false
	}
	if !decodeHex(t[:], s[3:35]) || !decodeHex(sp[:], s[36:52]) {
		return t, sp, false
	}
	if _, ok := hexNibble(s[53]); !ok {
		return t, sp, false
	}
	if _, ok := hexNibble(s[54]); !ok {
		return t, sp, false
	}
	if t.IsZero() || sp.IsZero() {
		return t, sp, false
	}
	return t, sp, true
}

// idState seeds trace/span id generation: a process-global splitmix64 walk
// over an atomic counter. splitmix64 is the same mixer the cluster ring uses;
// one atomic add plus a few multiplies per id, no locks, no allocation.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ 0x9e3779b97f4a7c15)
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func put64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// NewTraceID draws a fresh random trace id (never zero).
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		put64(t[:8], nextID())
		put64(t[8:], nextID())
	}
	return t
}

// NewSpanID draws a fresh random span id (never zero).
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		put64(s[:], nextID())
	}
	return s
}

// SpanContext identifies one live span: the ids plus the pre-rendered
// traceparent value outbound propagation reuses, so forwarding a trace never
// re-renders hex on a per-hop basis.
type SpanContext struct {
	traceID TraceID
	spanID  SpanID
	header  string
}

// Valid reports whether the context carries a real trace identity.
func (c SpanContext) Valid() bool { return !c.traceID.IsZero() && !c.spanID.IsZero() }

// TraceID returns the binary trace id.
func (c SpanContext) TraceID() TraceID { return c.traceID }

// SpanID returns the binary span id.
func (c SpanContext) SpanID() SpanID { return c.spanID }

// Traceparent returns the header value propagating this span as the parent
// of downstream work ("" for a context parsed from a remote header, which is
// never re-propagated verbatim).
func (c SpanContext) Traceparent() string { return c.header }

// TraceHex returns the 32-digit hex trace id without allocating: it aliases
// the pre-rendered header when one exists.
func (c SpanContext) TraceHex() string {
	if len(c.header) == traceparentLen {
		return c.header[3:35]
	}
	if c.traceID.IsZero() {
		return ""
	}
	return c.traceID.String()
}

// SpanHex returns the 16-digit hex span id, aliasing the header like TraceHex.
func (c SpanContext) SpanHex() string {
	if len(c.header) == traceparentLen {
		return c.header[36:52]
	}
	if c.spanID.IsZero() {
		return ""
	}
	return c.spanID.String()
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span context for downstream propagation. Only
// call it when tracing is enabled: context.WithValue allocates, and the
// tracing-off path must not.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the request's span context, if one was attached.
// The miss path is a plain context walk: no allocation, safe per request.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

// ParentFromRequest extracts the inbound traceparent header as a parent span
// context. It indexes the canonical header key directly, so an untraced
// request costs one map lookup and zero allocations.
func ParentFromRequest(r *http.Request) SpanContext {
	vals := r.Header["Traceparent"]
	if len(vals) == 0 {
		return SpanContext{}
	}
	t, s, ok := ParseTraceparent(vals[0])
	if !ok {
		return SpanContext{}
	}
	return SpanContext{traceID: t, spanID: s}
}

// Span is one completed operation: a server request, a per-line stream
// score, or a gateway hop. Ids travel as hex strings so the record greps the
// same way it propagates.
type Span struct {
	// Seq is the record's position in the emitting ring, assigned at record
	// time; strictly increasing within one ring.
	Seq     uint64 `json:"seq"`
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the hex span id this span was created under: the gateway's
	// span for a replica request, the stream request's span for a per-line
	// span, a remote client's span for an externally initiated trace. Empty
	// for trace roots.
	Parent string `json:"parent_span_id,omitempty"`
	// Name is the endpoint or operation name (instrumentation label).
	Name string `json:"name"`
	// Status is the HTTP status the operation answered (0 when not HTTP).
	Status      int   `json:"status,omitempty"`
	StartUnixNS int64 `json:"start_unix_ns"`
	DurationNS  int64 `json:"duration_ns"`
	// Slow marks spans at or over the tracer's slow threshold; they are
	// retained in the dedicated slow ring as well as the recent one.
	Slow bool `json:"slow,omitempty"`
}

// spanRing retains spans with DecisionRing's lock-free discipline: one
// atomic increment claims a slot, one pointer store publishes the record.
type spanRing struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[Span]
}

func (r *spanRing) record(sp Span) {
	sp.Seq = r.seq.Add(1)
	r.slots[(sp.Seq-1)%uint64(len(r.slots))].Store(&sp)
}

func (r *spanRing) snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Tracer creates spans and retains the completed ones. A nil *Tracer is
// valid and permanently disabled, so services thread "maybe tracing" without
// nil checks — the same contract as DecisionRing.
type Tracer struct {
	enabled atomic.Bool
	slowNS  int64
	recent  spanRing
	slow    spanRing
}

// NewTracer builds an enabled tracer retaining the last size spans plus a
// quarter-size ring of spans at or over slowThreshold (slowThreshold <= 0
// disables slow capture). size < 1 is clamped to 1.
func NewTracer(size int, slowThreshold time.Duration) *Tracer {
	if size < 1 {
		size = 1
	}
	slowSize := size / 4
	if slowSize < 1 {
		slowSize = 1
	}
	t := &Tracer{
		slowNS: int64(slowThreshold),
		recent: spanRing{slots: make([]atomic.Pointer[Span], size)},
		slow:   spanRing{slots: make([]atomic.Pointer[Span], slowSize)},
	}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether Start/Finish currently capture. Nil-safe (false).
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled toggles capture. Nil-safe (no-op).
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Cap returns the recent-span ring capacity. Nil-safe (0).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.recent.slots)
}

// Recorded returns how many spans have ever been recorded. Nil-safe (0).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recent.seq.Load()
}

// SlowThreshold returns the slow-capture threshold (0 when disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNS)
}

// ActiveSpan is a started, unfinished span. It is a plain value — starting a
// span allocates only the pre-rendered propagation header.
type ActiveSpan struct {
	ctx    SpanContext
	parent SpanID
	name   string
	begin  time.Time
}

// Context returns the span's identity for propagation.
func (a ActiveSpan) Context() SpanContext { return a.ctx }

// Start begins a span under parent: the parent's trace is continued when it
// is valid, otherwise a fresh trace is rooted. Callers on hot paths must
// guard with Enabled so the disabled case stays allocation-free; Start on a
// nil or disabled tracer returns an inert span Finish ignores.
func (t *Tracer) Start(name string, parent SpanContext) ActiveSpan {
	if !t.Enabled() {
		return ActiveSpan{}
	}
	trace := parent.traceID
	if trace.IsZero() {
		trace = NewTraceID()
	}
	span := NewSpanID()
	return ActiveSpan{
		ctx:    SpanContext{traceID: trace, spanID: span, header: FormatTraceparent(trace, span)},
		parent: parent.spanID,
		name:   name,
		begin:  time.Now(),
	}
}

// Finish completes a span and records it, stamping duration and status. The
// slow ring additionally retains it when the duration reaches the threshold.
// Inert spans (from a disabled Start) and nil tracers are no-ops.
func (t *Tracer) Finish(a ActiveSpan, status int) {
	if t == nil || !a.ctx.Valid() {
		return
	}
	d := time.Since(a.begin)
	sp := Span{
		TraceID:     a.ctx.TraceHex(),
		SpanID:      a.ctx.SpanHex(),
		Name:        a.name,
		Status:      status,
		StartUnixNS: a.begin.UnixNano(),
		DurationNS:  int64(d),
	}
	if !a.parent.IsZero() {
		sp.Parent = a.parent.String()
	}
	if t.slowNS > 0 && int64(d) >= t.slowNS {
		sp.Slow = true
		t.slow.record(sp)
	}
	t.recent.record(sp)
}

// Snapshot returns a copy of the retained recent spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	return t.recent.snapshot()
}

// SnapshotSlow returns a copy of the retained slow spans, oldest first.
func (t *Tracer) SnapshotSlow() []Span {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// TracesResponse is the GET /debug/traces document, shaped like the decision
// ring's debug endpoint.
type TracesResponse struct {
	Enabled         bool    `json:"enabled"`
	Capacity        int     `json:"capacity"`
	Recorded        uint64  `json:"recorded"`
	SlowThresholdMS float64 `json:"slow_threshold_ms"`
	Spans           []Span  `json:"spans"`
	Slow            []Span  `json:"slow,omitempty"`
}

// Traces builds the debug document. Nil-safe: a nil tracer reports disabled.
func (t *Tracer) Traces() TracesResponse {
	return TracesResponse{
		Enabled:         t.Enabled(),
		Capacity:        t.Cap(),
		Recorded:        t.Recorded(),
		SlowThresholdMS: float64(t.SlowThreshold()) / float64(time.Millisecond),
		Spans:           t.Snapshot(),
		Slow:            t.SnapshotSlow(),
	}
}

// Handler serves GET /debug/traces. An optional ?trace=<32 hex> query
// filters both span lists to one trace, so a request's whole story reads
// back with one call. Nil-safe, like the tracer itself.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := t.Traces()
		if want := r.URL.Query().Get("trace"); want != "" {
			resp.Spans = filterTrace(resp.Spans, want)
			resp.Slow = filterTrace(resp.Slow, want)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
}

func filterTrace(spans []Span, trace string) []Span {
	out := spans[:0]
	for _, sp := range spans {
		if sp.TraceID == trace {
			out = append(out, sp)
		}
	}
	return out
}
