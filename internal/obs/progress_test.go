package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestProgressCountsAndFinish(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, "sweep", 0)
	p.Start(10)
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				p.RunDone()
			}
		}()
	}
	wg.Wait()
	p.Finish()
	if got := p.Done(); got != 10 {
		t.Fatalf("Done = %d, want 10", got)
	}
	out := b.String()
	if !strings.Contains(out, "sweep: 10/10 runs (100%)") {
		t.Errorf("final line missing completion summary: %q", out)
	}
}

func TestProgressUnknownTotal(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, "load", 0)
	p.RunDone()
	p.Finish()
	if !strings.Contains(b.String(), "load: 1 runs") {
		t.Errorf("unknown-total line = %q", b.String())
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Start(5)
	p.RunDone()
	p.Finish()
	if p.Done() != 0 {
		t.Fatal("nil progress must stay at zero")
	}
}
