package obs

import (
	"sort"
	"sync/atomic"
)

// DecisionLink is one link in a decision record's frequency table: an
// undirected link with its occurrence count and relative frequency.
type DecisionLink struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Count int     `json:"count,omitempty"`
	P     float64 `json:"p,omitempty"`
}

// Decision is one explainable SAM verdict: everything the destination used
// to judge a route set, flattened into plain types so the record can travel
// through JSON (the /detect "explain" field, GET /debug/decisions) without
// dragging in the detector's internal types.
//
// The schema mirrors the paper's §IV decision procedure: the per-link
// frequency table the statistics are computed from, both feature statistics
// (as raw values and as z-scores against the trained profile) next to the
// thresholds that turn them into risk, the PMF total-variation distance, the
// localized (accused) link, and the soft decision lambda with its verdict
// partition.
type Decision struct {
	// Seq is the record's position in the emitting ring, assigned at
	// Record time; strictly increasing within one ring.
	Seq uint64 `json:"seq"`
	// Profile names the trained profile the route set was scored against.
	Profile string `json:"profile,omitempty"`

	// Routes is |R|, N the total non-distinct link count across R.
	Routes int `json:"routes"`
	N      int `json:"n"`
	// Links is the per-link frequency table, most frequent first.
	Links []DecisionLink `json:"links,omitempty"`

	// PMax and Phi are the observed feature statistics; ZPMax and ZPhi
	// their deviations from the trained means in trained standard
	// deviations; TV the PMF total-variation distance.
	PMax  float64 `json:"p_max"`
	Phi   float64 `json:"phi"`
	TV    float64 `json:"tv"`
	ZPMax float64 `json:"z_pmax"`
	ZPhi  float64 `json:"z_phi"`

	// The detector thresholds the statistics were judged against: z-score
	// and TV risk ramps, and the lambda partition.
	ZLow          float64 `json:"z_low"`
	ZHigh         float64 `json:"z_high"`
	TVLow         float64 `json:"tv_low"`
	TVHigh        float64 `json:"tv_high"`
	SuspectLambda float64 `json:"suspect_lambda"`
	AttackLambda  float64 `json:"attack_lambda"`

	// Suspect is the localized link — under attack, the tunnel — and
	// Lambda/Decision the soft and hard verdicts.
	Suspect  DecisionLink `json:"suspect"`
	Lambda   float64      `json:"lambda"`
	Decision string       `json:"decision"`

	// Kind distinguishes record flavours: empty for step-1 detection
	// records, "verify" for step-2 probe verdicts.
	Kind string `json:"kind,omitempty"`
	// Likelihood and Evidence carry a verify record's probe outcome: the
	// incriminating evidence mass fraction and the typed records behind it.
	Likelihood float64            `json:"likelihood,omitempty"`
	Evidence   []DecisionEvidence `json:"evidence,omitempty"`

	// TraceID links the decision to its request trace (/debug/traces) when
	// tracing was on. Ring-only: response bodies never carry it, so output
	// stays byte-identical with tracing on or off.
	TraceID string `json:"trace_id,omitempty"`
}

// DecisionEvidence is one probe evidence record inside a verify decision,
// flattened for JSON travel like the rest of the Decision schema.
type DecisionEvidence struct {
	Kind    string  `json:"kind"`
	Route   string  `json:"route,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	At      float64 `json:"at"`
}

// DecisionRing retains the most recent decision records in a fixed-size
// lock-free ring. Writers claim a slot with one atomic increment and publish
// the record with one atomic pointer store; readers snapshot without
// blocking writers. Capture hides behind an atomic enabled flag so a
// disabled ring costs one branch and zero allocations on the detect hot
// path.
//
// A nil *DecisionRing is valid and permanently disabled, so callers can
// thread "maybe telemetry" without nil checks.
type DecisionRing struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	slots   []atomic.Pointer[Decision]
}

// NewDecisionRing builds a ring retaining the last size records, enabled.
// size < 1 is clamped to 1.
func NewDecisionRing(size int) *DecisionRing {
	if size < 1 {
		size = 1
	}
	r := &DecisionRing{slots: make([]atomic.Pointer[Decision], size)}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether Record currently captures. Nil-safe (false).
func (r *DecisionRing) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles capture. Nil-safe (no-op).
func (r *DecisionRing) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Cap returns the ring capacity. Nil-safe (0).
func (r *DecisionRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Recorded returns how many records have ever been accepted. Nil-safe (0).
func (r *DecisionRing) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Len returns how many records a Snapshot would currently return. Nil-safe.
func (r *DecisionRing) Len() int {
	n := r.Recorded()
	if c := uint64(r.Cap()); n > c {
		n = c
	}
	return int(n)
}

// Record captures d (assigning its Seq) unless the ring is disabled or nil.
// Callers on hot paths should guard record construction with Enabled so the
// disabled case stays allocation-free:
//
//	if ring.Enabled() {
//	    ring.Record(buildDecision(...))
//	}
func (r *DecisionRing) Record(d Decision) {
	if !r.Enabled() {
		return
	}
	d.Seq = r.seq.Add(1)
	r.slots[(d.Seq-1)%uint64(len(r.slots))].Store(&d)
}

// Snapshot returns a copy of the retained records, oldest first. Concurrent
// Records may or may not be included; each returned record is internally
// consistent because publication is a single pointer store.
func (r *DecisionRing) Snapshot() []Decision {
	if r == nil {
		return nil
	}
	out := make([]Decision, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	// Slot order is ring order, not age order; sort by the global sequence.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
