package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"samnet/internal/service"
)

// Fleet is a fixed replica membership with live health state. Placement is
// computed over the full membership (so it is stable and every participant
// agrees), while routing prefers healthy replicas: the effective owner of a
// profile is the first *healthy* replica in its rendezvous rank order, which
// degrades placement gracefully when a replica is down and snaps back when
// it returns.
type Fleet struct {
	ring   *Ring
	client *Client

	mu     sync.RWMutex
	states map[string]*replicaState

	stop, done chan struct{}
	stopOnce   sync.Once
}

// replicaState is one replica's live health view.
type replicaState struct {
	healthy     bool
	lastChecked time.Time
	lastErr     string
	health      service.HealthzResponse
}

// ReplicaStatus is one replica's health as reported by Statuses (and served
// by the gateway's /v1/cluster).
type ReplicaStatus struct {
	Addr        string                  `json:"addr"`
	Healthy     bool                    `json:"healthy"`
	LastChecked time.Time               `json:"last_checked"`
	LastError   string                  `json:"last_error,omitempty"`
	Health      service.HealthzResponse `json:"health"`
}

// NewFleet builds a fleet over the given replica base URLs (scheme://host:port,
// no trailing slash required — one is trimmed).
func NewFleet(addrs []string, client *Client) (*Fleet, error) {
	cleaned := make([]string, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSuffix(strings.TrimSpace(a), "/")
		if a != "" {
			cleaned = append(cleaned, a)
		}
	}
	if len(cleaned) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one replica address")
	}
	if client == nil {
		client = &Client{}
	}
	f := &Fleet{ring: NewRing(cleaned), client: client, states: make(map[string]*replicaState)}
	for _, a := range f.ring.Replicas() {
		// Optimistic start: replicas are presumed healthy until a check says
		// otherwise, so a gateway can route before its first sweep finishes.
		f.states[a] = &replicaState{healthy: true}
	}
	return f, nil
}

// Ring returns the placement ring over the full membership.
func (f *Fleet) Ring() *Ring { return f.ring }

// Replicas returns the fleet's members, sorted.
func (f *Fleet) Replicas() []string { return f.ring.Replicas() }

// Client returns the fleet's replica client.
func (f *Fleet) Client() *Client { return f.client }

// Start launches the background health checker at the given interval.
func (f *Fleet) Start(interval time.Duration) {
	if interval <= 0 || f.stop != nil {
		return
	}
	f.stop, f.done = make(chan struct{}), make(chan struct{})
	go func() {
		defer close(f.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				f.CheckNow(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the background health checker.
func (f *Fleet) Close() {
	if f.stop == nil {
		return
	}
	f.stopOnce.Do(func() {
		close(f.stop)
		<-f.done
	})
}

// CheckNow sweeps every replica's GET /healthz once, in parallel, updating
// the fleet's health view. A 200 with a parseable body marks the replica
// healthy and records its readiness signals; anything else marks it down.
func (f *Fleet) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, addr := range f.ring.Replicas() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			var h service.HealthzResponse
			err := f.client.getJSON(ctx, addr+"/healthz", &h)
			now := time.Now()
			f.mu.Lock()
			st := f.states[addr]
			st.lastChecked = now
			if err != nil {
				st.healthy, st.lastErr = false, err.Error()
			} else {
				st.healthy, st.lastErr, st.health = true, "", h
			}
			f.mu.Unlock()
		}(addr)
	}
	wg.Wait()
}

// MarkDown records a passive failure observation (a dial error during
// routing), so the very next request already avoids the dead replica instead
// of waiting for the health sweep to notice.
func (f *Fleet) MarkDown(addr string, err error) {
	f.mu.Lock()
	if st := f.states[addr]; st != nil {
		st.healthy = false
		st.lastErr = err.Error()
		st.lastChecked = time.Now()
	}
	f.mu.Unlock()
}

// Healthy reports whether the replica is currently believed healthy.
func (f *Fleet) Healthy(addr string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	st := f.states[addr]
	return st != nil && st.healthy
}

// HealthyCount returns how many replicas are currently believed healthy.
func (f *Fleet) HealthyCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, st := range f.states {
		if st.healthy {
			n++
		}
	}
	return n
}

// RankHealthy appends key's replicas to dst in routing order: the rendezvous
// rank with healthy replicas promoted ahead of unhealthy ones (each group
// keeping its rank order). The full membership is always returned, so a
// caller still has somewhere to try when every replica looks down.
func (f *Fleet) RankHealthy(key string, dst []string) []string {
	rank := f.ring.Rank(key, dst)
	f.mu.RLock()
	defer f.mu.RUnlock()
	// Stable partition: healthy first. Fleets are tiny; O(n^2) is fine.
	out := rank[len(rank)-len(f.ring.Replicas()):]
	sorted := make([]string, 0, len(out))
	for _, addr := range out {
		if st := f.states[addr]; st != nil && st.healthy {
			sorted = append(sorted, addr)
		}
	}
	for _, addr := range out {
		if st := f.states[addr]; st == nil || !st.healthy {
			sorted = append(sorted, addr)
		}
	}
	copy(out, sorted)
	return rank
}

// Owner returns key's effective owner: the first healthy replica in rank
// order (or the rank head when none is healthy).
func (f *Fleet) Owner(key string) string {
	rank := f.RankHealthy(key, nil)
	if len(rank) == 0 {
		return ""
	}
	return rank[0]
}

// Statuses snapshots every replica's health, sorted by address.
func (f *Fleet) Statuses() []ReplicaStatus {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]ReplicaStatus, 0, len(f.states))
	for _, addr := range f.ring.Replicas() {
		st := f.states[addr]
		out = append(out, ReplicaStatus{
			Addr:        addr,
			Healthy:     st.healthy,
			LastChecked: st.lastChecked,
			LastError:   st.lastErr,
			Health:      st.health,
		})
	}
	return out
}
