// Package cluster is the horizontal scale-out layer over samserve: a
// rendezvous-hash ring assigning profiles to replicas, a replica client with
// health checking and bounded retry, profile sync by shipping snapshot
// records between replicas, and a scatter-gather gateway that proxies the
// serving API by profile placement and splits /v1/train/batch grids across
// the fleet with a deterministic grid-order merge.
//
// SAM's statistical test is per-profile — every profile is trained and
// scored independently — so the serving layer shards cleanly by profile
// name. Placement is a pure function of (profile, replica set): every
// gateway, load generator and anti-entropy pass computes the same owner
// without coordination, and adding or removing a replica moves only the
// profiles whose owner changed (the rendezvous property).
package cluster

import (
	"slices"
	"sort"
)

// Ring is a rendezvous (highest-random-weight) hash ring over replica
// addresses. It is immutable: membership changes build a new Ring, so
// readers never need a lock. The zero value is an empty ring.
type Ring struct {
	replicas []string
}

// NewRing builds a ring over the given replica addresses, dropping empties
// and duplicates. Order does not matter: placement depends only on the set.
func NewRing(replicas []string) *Ring {
	rs := make([]string, 0, len(replicas))
	for _, r := range replicas {
		if r != "" {
			rs = append(rs, r)
		}
	}
	sort.Strings(rs)
	return &Ring{replicas: slices.Compact(rs)}
}

// Replicas returns the ring's members, sorted. The slice is shared; callers
// must not mutate it.
func (r *Ring) Replicas() []string { return r.replicas }

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int { return len(r.replicas) }

// score is the rendezvous weight of (replica, key): a 64-bit FNV-1a over the
// replica address, a separator, and the key, passed through a splitmix64
// finalizer. FNV alone is too linear for rendezvous hashing — nearby keys
// produce correlated scores across replicas — and the finalizer's avalanche
// restores independence, which is what the balance bound rests on.
func score(replica, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(replica); i++ {
		h ^= uint64(replica[i])
		h *= prime64
	}
	h ^= 0xff // separator: "ab"+"c" and "a"+"bc" must not collide
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the replica owning key — the member with the highest
// rendezvous score, ties broken by address order — or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	best, bestScore := "", uint64(0)
	for _, rep := range r.replicas {
		if s := score(rep, key); best == "" || s > bestScore || (s == bestScore && rep < best) {
			best, bestScore = rep, s
		}
	}
	return best
}

// Rank appends every replica to dst in descending score order for key: the
// owner first, then the failover order for reads and the source order for
// sync pulls. Passing a reused dst[:0] keeps ranking allocation-free.
func (r *Ring) Rank(key string, dst []string) []string {
	type scored struct {
		addr string
		s    uint64
	}
	// Fleets are small (single digits); an insertion sort over a stack
	// array beats sort.Slice and allocates nothing.
	var buf [16]scored
	ranked := buf[:0]
	if len(r.replicas) > len(buf) {
		ranked = make([]scored, 0, len(r.replicas))
	}
	for _, rep := range r.replicas {
		sc := scored{addr: rep, s: score(rep, key)}
		at := len(ranked)
		for at > 0 && (ranked[at-1].s < sc.s || (ranked[at-1].s == sc.s && ranked[at-1].addr > sc.addr)) {
			at--
		}
		ranked = append(ranked, scored{})
		copy(ranked[at+1:], ranked[at:])
		ranked[at] = sc
	}
	for _, sc := range ranked {
		dst = append(dst, sc.addr)
	}
	return dst
}
