package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("profile-%d", i)
	}
	return out
}

func replicas(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingBalance is the placement-balance property: at 1k profiles the
// loaded-most replica carries at most 1.8x the loaded-least one. A perfect
// split of 1000 keys over 4 replicas is 250 each; rendezvous hashing with an
// avalanche finalizer keeps the spread well inside the bound (binomial
// stddev ~14), and the bound failing means the score function regressed.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("%dreplicas", n), func(t *testing.T) {
			ring := NewRing(replicas(n))
			counts := make(map[string]int, n)
			for _, k := range keys(1000) {
				counts[ring.Owner(k)] = counts[ring.Owner(k)] + 1
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d replicas own any key", len(counts), n)
			}
			min, max := 1000, 0
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if float64(max) > 1.8*float64(min) {
				t.Fatalf("placement imbalance: max %d > 1.8 x min %d (%v)", max, min, counts)
			}
		})
	}
}

// TestRingMinimalMovementOnJoin is the rendezvous property: when a replica
// joins, the only keys that move are keys the new replica now owns, and
// about 1/(n+1) of them — never a reshuffle among the survivors.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	before := NewRing(replicas(4))
	joined := "http://10.0.0.99:8080"
	after := NewRing(append(replicas(4), joined))

	ks := keys(1000)
	moved := 0
	for _, k := range ks {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != joined {
			t.Fatalf("key %q moved %s -> %s, but only moves onto the joining replica are allowed", k, was, is)
		}
	}
	// Expected movement is 1000/5 = 200; allow a wide band around it but
	// reject both a reshuffle (far too many) and a dead member (none).
	if moved == 0 || moved > 2*len(ks)/5 {
		t.Fatalf("join moved %d/%d keys, want roughly %d", moved, len(ks), len(ks)/5)
	}
}

// TestRingMinimalMovementOnLeave: when a replica leaves, exactly its keys
// move (to survivors) and nothing else does.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	all := replicas(4)
	before := NewRing(all)
	gone := all[1]
	after := NewRing(append(append([]string{}, all[:1]...), all[2:]...))

	for _, k := range keys(1000) {
		was, is := before.Owner(k), after.Owner(k)
		if was == gone {
			if is == gone || is == "" {
				t.Fatalf("key %q still owned by departed replica", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %s -> %s although its owner never left", k, was, is)
		}
	}
}

// TestRingRank pins the rank contract: the full membership, owner first, no
// duplicates, deterministic.
func TestRingRank(t *testing.T) {
	ring := NewRing(replicas(5))
	for _, k := range keys(50) {
		rank := ring.Rank(k, nil)
		if len(rank) != 5 {
			t.Fatalf("rank(%q) has %d entries, want 5", k, len(rank))
		}
		if rank[0] != ring.Owner(k) {
			t.Fatalf("rank(%q)[0] = %s, owner = %s", k, rank[0], ring.Owner(k))
		}
		seen := make(map[string]bool, 5)
		for _, addr := range rank {
			if seen[addr] {
				t.Fatalf("rank(%q) lists %s twice", k, addr)
			}
			seen[addr] = true
		}
		again := ring.Rank(k, nil)
		for i := range rank {
			if rank[i] != again[i] {
				t.Fatalf("rank(%q) not deterministic: %v vs %v", k, rank, again)
			}
		}
	}
}

// TestRingEdgeCases: empty ring, single member, dedup/empty-string inputs.
func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil).Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]string{"a", "", "a"})
	if one.Len() != 1 || one.Owner("anything") != "a" {
		t.Fatalf("dedup ring = %v", one.Replicas())
	}
}
