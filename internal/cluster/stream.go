package cluster

// Gateway NDJSON scatter: POST /v1/detect/stream fans each input line out to
// the replica owning the line's profile over a per-replica upstream stream
// connection, then merges the answers back in global input order. The
// replica contract (one response line per non-empty input line, in order)
// makes the merge a queue: remember which upstream got line k, and read line
// k's answer from that upstream's response when its turn comes. Replicas
// flush whenever their input buffer drains, so a lockstep client still sees
// every verdict immediately, while a pipelining client keeps every replica's
// window full at once.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"samnet/internal/obs"
	"samnet/internal/service"
)

const (
	gwStreamFlushEvery  = 64
	gwStreamIdleTimeout = 2 * time.Minute
)

// upstream is one replica's live stream connection. Only the handler
// goroutine touches pw and err; only the merger goroutine reads br.
type upstream struct {
	addr string
	pw   *io.PipeWriter
	br   *bufio.Reader
	resp *http.Response
	err  error // open or write failure: later lines for this replica answer it
}

// streamSlot is one input line's reservation in the response order: either
// "read the next line from this upstream" or a pre-rendered error line.
type streamSlot struct {
	u       *upstream
	errLine []byte
}

func errorLine(msg string) []byte {
	blob, _ := json.Marshal(service.ErrorResponse{Error: msg})
	return append(blob, '\n')
}

func (g *Gateway) handleDetectStream(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	w.Header()["Content-Type"] = []string{"application/x-ndjson"}
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		g.metrics.respErrs.Inc()
		return
	}
	extend := func() {
		idle := time.Now().Add(gwStreamIdleTimeout)
		_ = rc.SetReadDeadline(idle)
		_ = rc.SetWriteDeadline(idle)
	}
	extend()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	ups := make(map[string]*upstream)
	defer func() {
		for _, u := range ups {
			if u.resp != nil {
				u.resp.Body.Close()
			}
		}
	}()
	order := make(chan streamSlot, 256)
	done := make(chan struct{})
	go g.mergeStream(w, rc, order, done, extend)

	br := bufio.NewReaderSize(r.Body, 64<<10)
	for {
		line, tooLong, err := readLimitedLine(br, g.cfg.MaxBodyBytes)
		if err != nil {
			if err != io.EOF {
				// The client connection failed mid-read: answer once, after
				// every pending verdict, and end the stream.
				order <- streamSlot{errLine: errorLine(fmt.Sprintf("request body: %v", err))}
			}
			break
		}
		if tooLong {
			order <- streamSlot{errLine: errorLine(fmt.Sprintf(
				"request body exceeds %d bytes", g.cfg.MaxBodyBytes))}
			continue
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		// Unparseable lines get profile "" — still a deterministic rendezvous
		// key, so some replica answers the canonical per-line error in order.
		addr := g.fleet.Owner(profileField(line))
		u := ups[addr]
		if u == nil {
			u = g.openUpstream(ctx, addr)
			ups[addr] = u
		}
		if u.err == nil {
			if _, werr := u.pw.Write(append(line, '\n')); werr != nil {
				u.err = werr
			}
		}
		if u.err != nil {
			order <- streamSlot{errLine: errorLine(fmt.Sprintf("replica %s: %v", u.addr, u.err))}
			continue
		}
		order <- streamSlot{u: u}
	}
	for _, u := range ups {
		if u.pw != nil {
			u.pw.Close()
		}
	}
	close(order)
	<-done
}

// openUpstream dials one replica's stream endpoint with a pipe body the
// handler feeds line by line. The replica answers the 200 header before the
// first verdict, so Do returns as soon as the connection is up.
func (g *Gateway) openUpstream(ctx context.Context, addr string) *upstream {
	u := &upstream{addr: addr}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/detect/stream", pr)
	if err != nil {
		u.err = err
		return u
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	// Stream scatter propagates the gateway span too: the replica's stream
	// span (and its per-line children) joins the same trace.
	if sctx, ok := obs.SpanFromContext(ctx); ok && sctx.Valid() {
		req.Header["Traceparent"] = []string{sctx.Traceparent()}
	}
	resp, err := g.client.httpClient().Do(req)
	if err != nil {
		if NotDelivered(err) {
			g.fleet.MarkDown(addr, err)
		}
		u.err = err
		pw.Close()
		return u
	}
	if resp.StatusCode != http.StatusOK {
		u.err = statusError(resp)
		resp.Body.Close()
		pw.Close()
		return u
	}
	u.pw, u.resp = pw, resp
	u.br = bufio.NewReaderSize(resp.Body, 64<<10)
	return u
}

// mergeStream emits response lines in input order, reading each slot's
// answer from its upstream. An upstream that ends early answers an error
// line for each of its remaining slots (its own tracking, not u.err — that
// field belongs to the handler goroutine). A client write failure drains the
// remaining slots without writing so the handler never blocks on the order
// queue.
func (g *Gateway) mergeStream(w http.ResponseWriter, rc *http.ResponseController, order <-chan streamSlot, done chan<- struct{}, extend func()) {
	defer close(done)
	dead := make(map[*upstream]error)
	failed := false
	pending := 0
	for slot := range order {
		line := slot.errLine
		if slot.u != nil {
			if derr, down := dead[slot.u]; down {
				line = errorLine(fmt.Sprintf("replica %s: stream ended early: %v", slot.u.addr, derr))
			} else {
				resp, err := slot.u.br.ReadBytes('\n')
				switch {
				case err == nil:
					line = resp
				case len(bytes.TrimSpace(resp)) > 0:
					line = append(resp, '\n')
				default:
					dead[slot.u] = err
					line = errorLine(fmt.Sprintf("replica %s: stream ended early: %v", slot.u.addr, err))
				}
			}
		}
		if failed {
			continue
		}
		if _, err := w.Write(line); err != nil {
			g.metrics.respErrs.Inc()
			failed = true
			continue
		}
		pending++
		if pending >= gwStreamFlushEvery || len(order) == 0 {
			if err := rc.Flush(); err != nil {
				g.metrics.respErrs.Inc()
				failed = true
				continue
			}
			pending = 0
			extend()
		}
	}
}

// readLimitedLine reads one newline-delimited line, reporting (but not
// buffering) lines over limit so the stream stays aligned, and treating a
// trailing unterminated line as a line.
func readLimitedLine(br *bufio.Reader, limit int64) (line []byte, tooLong bool, err error) {
	for {
		frag, rerr := br.ReadSlice('\n')
		if !tooLong {
			line = append(line, frag...)
			if int64(len(line)) > limit+1 { // +1: the newline itself
				tooLong, line = true, nil
			}
		}
		if rerr == bufio.ErrBufferFull {
			continue
		}
		if rerr != nil {
			if len(bytes.TrimSpace(line)) > 0 || tooLong {
				return line, tooLong, nil
			}
			return nil, false, rerr
		}
		return line, tooLong, nil
	}
}
