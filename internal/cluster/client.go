package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"samnet/internal/obs"
)

// Client issues requests to replicas under the fleet's retry discipline:
//
//   - 429 with Retry-After is honored with a bounded sleep-and-retry when the
//     caller opts in (scatter sub-requests, sync ships) — a 429 means the
//     replica shed the request before doing any work, so a retry is always
//     safe, idempotent or not.
//   - A dial failure (connection refused, no route) means the request never
//     reached the replica; NotDelivered reports it so callers can fail over
//     to the next-ranked replica safely even for state-changing methods.
//   - Anything else is returned as-is: the request may have executed, and
//     only the caller knows whether a retry is idempotent.
type Client struct {
	// HTTP is the underlying client (nil selects http.DefaultClient). It
	// should carry no global timeout: training sweeps run long, and per-call
	// deadlines belong to the request context.
	HTTP *http.Client
	// MaxAttempts caps tries per call when retry429 is set (default 4).
	MaxAttempts int
	// RetryBudget caps the total Retry-After sleep per call (default 10s).
	RetryBudget time.Duration
	// sleep is the test seam for Retry-After waits.
	sleep func(time.Duration)
	// observe, when set, receives (url, duration) for every delivered
	// request attempt — the gateway wires its per-replica latency
	// histograms here. Health probes and metric scrapes are excluded so
	// the distributions describe proxied work, not the control plane.
	observe func(url string, d time.Duration)
}

// observeURL reports an attempt's latency to the observe hook, filtering the
// control-plane endpoints the health checker and federation scraper hit.
func (c *Client) observeURL(url string, d time.Duration) {
	if c.observe == nil {
		return
	}
	if strings.HasSuffix(url, "/healthz") || strings.HasSuffix(url, "/metrics") {
		return
	}
	c.observe(url, d)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *Client) budget() time.Duration {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 10 * time.Second
}

func (c *Client) doSleep(d time.Duration) {
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	time.Sleep(d)
}

// NotDelivered reports whether err means the request never reached the
// server — the connection could not be established — making a retry against
// another replica safe regardless of the request's method.
func NotDelivered(err error) bool {
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return opErr.Op == "dial"
	}
	return false
}

// do issues one request with a buffered body. With retry429 set, 429
// responses are retried after their Retry-After delay until MaxAttempts or
// the sleep budget runs out (the last 429 response is then returned to the
// caller, who can pass it through). The response body is the caller's to
// close.
func (c *Client) do(ctx context.Context, method, url, contentType string, body []byte, retry429 bool) (*http.Response, error) {
	budget := c.budget()
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		// Propagate the caller's trace: a request issued under a traced
		// gateway span carries that span as traceparent, so the replica's
		// span parents under the gateway's and the two debug-trace views
		// join on one trace id.
		if sctx, ok := obs.SpanFromContext(ctx); ok && sctx.Valid() {
			req.Header["Traceparent"] = []string{sctx.Traceparent()}
		}
		req.ContentLength = int64(len(body))
		begin := time.Now()
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return nil, err
		}
		c.observeURL(url, time.Since(begin))
		if !retry429 || resp.StatusCode != http.StatusTooManyRequests || attempt >= c.attempts() {
			return resp, nil
		}
		wait := retryAfter(resp)
		if wait > budget {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		budget -= wait
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		c.doSleep(wait)
	}
}

// retryAfter parses a 429's Retry-After seconds, defaulting to 1s (what
// samserve sends) and clamping to [100ms, 30s].
func retryAfter(resp *http.Response) time.Duration {
	wait := time.Second
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil {
			wait = time.Duration(secs) * time.Second
		}
	}
	if wait < 100*time.Millisecond {
		wait = 100 * time.Millisecond
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	return wait
}

// getJSON fetches url and decodes its 200 body into v. Non-200 statuses are
// returned as errors carrying the body's error text.
func (c *Client) getJSON(ctx context.Context, url string, v any) error {
	resp, err := c.do(ctx, http.MethodGet, url, "", nil, true)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return decodeBody(resp.Body, v)
}

// statusError summarizes a non-2xx response, preferring the JSON error body.
func statusError(resp *http.Response) error {
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if len(blob) > 0 {
		return fmt.Errorf("status %s: %s", resp.Status, bytes.TrimSpace(blob))
	}
	return fmt.Errorf("status %s", resp.Status)
}

func decodeBody(r io.Reader, v any) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, v)
}
