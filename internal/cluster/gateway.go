package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samnet/internal/obs"
	"samnet/internal/service"
)

// GatewayConfig tunes a scatter-gather gateway. Replicas is required; the
// zero value of everything else selects sensible defaults.
type GatewayConfig struct {
	// Replicas is the fleet membership: samserve base URLs.
	Replicas []string
	// HTTP is the outbound client (nil builds one with a pooled transport
	// sized for the fleet). It must carry no global timeout.
	HTTP *http.Client
	// MaxAttempts and RetryBudget bound the 429 retry discipline on scatter
	// sub-requests and sync ships (defaults 4 attempts, 10s budget).
	MaxAttempts int
	RetryBudget time.Duration
	// HealthInterval is the background health sweep period (default 2s,
	// negative disables the background checker).
	HealthInterval time.Duration
	// SyncInterval enables periodic anti-entropy profile sync (0 disables).
	SyncInterval time.Duration
	// DisablePullOnMiss turns off the 404 repair path (pull the profile's
	// snapshot record from a holder, ship to the owner, retry once).
	DisablePullOnMiss bool
	// MaxBodyBytes caps buffered request bodies (default 8 MiB, matching the
	// replicas).
	MaxBodyBytes int64
	// Registry receives the gateway's samgate_* instruments (nil creates a
	// private registry).
	Registry *obs.Registry
	// Tracer captures gateway spans behind GET /debug/traces and propagates
	// trace context to replicas on every proxied, scattered, and failed-over
	// request, so one trace joins the gateway hop with the replica spans it
	// fanned out to. Nil leaves tracing off with zero extra cost.
	Tracer *obs.Tracer
	// Logger receives gateway warnings (nil selects slog.Default()).
	Logger *slog.Logger
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.HTTP == nil {
		per := 2 * len(c.Replicas)
		if per < 32 {
			per = 32
		}
		c.HTTP = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        per * len(c.Replicas),
			MaxIdleConnsPerHost: per,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return c
}

// Gateway fronts a samserve fleet: profile-scoped requests are proxied to
// the replica owning the profile (rendezvous placement over the fleet, the
// first healthy replica in rank order), training grids are scattered across
// owners and merged deterministically, and profiles missing at their owner
// are repaired by shipping snapshot records from whichever replica still
// holds them.
type Gateway struct {
	cfg     GatewayConfig
	fleet   *Fleet
	client  *Client
	metrics *gwMetrics
	mux     *http.ServeMux
	logger  *slog.Logger
	rr      atomic.Uint64 // round-robin cursor for profile-less endpoints

	// replicaLat/replicaReqs attribute outbound latency per replica,
	// resolved once at construction (addresses are fixed membership).
	replicaLat  map[string]*obs.Histogram
	replicaReqs map[string]*obs.Counter

	syncStop, syncDone chan struct{}
	closeOnce          sync.Once
}

// NewGateway builds a gateway over the given fleet configuration, runs one
// synchronous health sweep so routing starts informed, and launches the
// background health (and optionally anti-entropy) loops.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	cfg = cfg.withDefaults()
	client := &Client{HTTP: cfg.HTTP, MaxAttempts: cfg.MaxAttempts, RetryBudget: cfg.RetryBudget}
	fleet, err := NewFleet(cfg.Replicas, client)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:     cfg,
		fleet:   fleet,
		client:  client,
		metrics: newGWMetrics(cfg.Registry),
		logger:  cfg.Logger,
	}
	// Per-replica latency attribution: every delivered request attempt is
	// prefix-matched back to its replica and lands in that replica's
	// histogram, so a slow or degraded replica shows up as its own series
	// rather than smearing across the endpoint aggregate.
	g.replicaLat = make(map[string]*obs.Histogram, len(fleet.Replicas()))
	g.replicaReqs = make(map[string]*obs.Counter, len(fleet.Replicas()))
	for _, addr := range fleet.Replicas() {
		g.replicaLat[addr] = cfg.Registry.Histogram("samgate_replica_request_duration_seconds",
			"Latency of gateway-to-replica requests, by replica.",
			obs.DefaultLatencyBuckets, obs.Label{Key: "replica", Value: addr})
		g.replicaReqs[addr] = cfg.Registry.Counter("samgate_replica_requests_total",
			"Gateway-to-replica requests delivered, by replica.",
			obs.Label{Key: "replica", Value: addr})
	}
	client.observe = g.observeReplica
	cfg.Registry.GaugeFunc("samgate_replicas",
		"Replicas in the fleet membership.",
		func() float64 { return float64(len(fleet.Replicas())) })
	cfg.Registry.GaugeFunc("samgate_replicas_healthy",
		"Replicas currently passing health checks.",
		func() float64 { return float64(fleet.HealthyCount()) })

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", g.instrument("analyze", g.handleStateless("/v1/analyze")))
	mux.HandleFunc("POST /v1/detect", g.instrument("detect", g.handleDetect("/v1/detect")))
	mux.HandleFunc("POST /v1/detect/batch", g.instrument("detect_batch", g.handleDetect("/v1/detect/batch")))
	mux.HandleFunc("POST /v1/detect/stream", g.instrument("detect_stream", g.handleDetectStream))
	mux.HandleFunc("POST /v1/train/batch", g.instrument("train_batch", g.handleTrainBatch))
	mux.HandleFunc("POST /v1/profiles/{name}/train", g.instrument("train", g.handleProfileScoped(http.MethodPost, "/train")))
	mux.HandleFunc("GET /v1/profiles", g.instrument("profiles", g.handleListProfiles))
	mux.HandleFunc("GET /v1/profiles/{name}", g.instrument("profile_get", g.handleProfileGet))
	mux.HandleFunc("PUT /v1/profiles/{name}", g.instrument("profile_put", g.handleProfileScoped(http.MethodPut, "")))
	mux.HandleFunc("DELETE /v1/profiles/{name}", g.instrument("profile_delete", g.handleProfileDelete))
	mux.HandleFunc("POST /v1/verify", g.instrument("verify", g.handleStateless("/v1/verify")))
	mux.HandleFunc("GET /v1/isolation", g.instrument("isolation", g.handleIsolation))
	mux.HandleFunc("DELETE /v1/isolation/{a}/{b}", g.instrument("isolation_lift", g.handleIsolationLift))
	mux.HandleFunc("GET /v1/cluster", g.instrument("cluster", g.handleCluster))
	mux.Handle("GET /metrics", cfg.Registry.Handler())
	mux.HandleFunc("GET /metrics/fleet", g.instrument("metrics_fleet", g.handleMetricsFleet))
	mux.Handle("GET /debug/traces", cfg.Tracer.Handler())
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux = mux

	boot, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	fleet.CheckNow(boot)
	cancel()
	fleet.Start(cfg.HealthInterval)
	if cfg.SyncInterval > 0 {
		g.syncStop, g.syncDone = make(chan struct{}), make(chan struct{})
		go g.syncLoop(cfg.SyncInterval)
	}
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Fleet returns the gateway's fleet view (health, placement).
func (g *Gateway) Fleet() *Fleet { return g.fleet }

// Registry returns the registry holding the gateway's instruments.
func (g *Gateway) Registry() *obs.Registry { return g.cfg.Registry }

// Tracer returns the gateway's request tracer (nil when tracing is off), for
// mounting /debug/traces on additional listeners (samgate's debug endpoint).
func (g *Gateway) Tracer() *obs.Tracer { return g.cfg.Tracer }

// observeReplica is the Client.observe hook: attribute one delivered request
// to its replica by address prefix.
func (g *Gateway) observeReplica(url string, d time.Duration) {
	for addr, h := range g.replicaLat {
		if strings.HasPrefix(url, addr) {
			h.ObserveDuration(d)
			g.replicaReqs[addr].Inc()
			return
		}
	}
}

// SyncNow runs one synchronous anti-entropy pass, returning how many
// snapshot records were shipped to their owners.
func (g *Gateway) SyncNow(ctx context.Context) int { return g.syncOnce(ctx) }

// Close stops the health checker and the anti-entropy loop.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		if g.syncStop != nil {
			close(g.syncStop)
			<-g.syncDone
		}
		g.fleet.Close()
	})
}

func (g *Gateway) syncLoop(interval time.Duration) {
	defer close(g.syncDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.syncStop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			g.syncOnce(ctx)
			cancel()
		}
	}
}

// --- plumbing ---------------------------------------------------------------

var gwCTJSON = []string{"application/json"}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header()["Content-Type"] = gwCTJSON
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		g.metrics.respErrs.Inc()
		g.logger.Warn("response encode failed", "err", err)
	}
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	g.writeJSON(w, status, service.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// readBody buffers the (size-limited) request body, answering the error
// itself when the read fails.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		g.writeError(w, status, "request body: %v", err)
		return nil, false
	}
	return body, true
}

// copyResponse relays a replica response verbatim: status, content type, and
// body bytes. The gateway is transparent on proxied paths — what the replica
// answered is exactly what the client reads.
func (g *Gateway) copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if resp.ContentLength >= 0 {
		w.Header()["Content-Length"] = []string{fmt.Sprint(resp.ContentLength)}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		g.metrics.respErrs.Inc()
		g.logger.Warn("response relay failed", "err", err)
	}
}

// rrOrder returns the healthy replicas rotated by a round-robin cursor — the
// routing order for endpoints with no profile affinity (analyze, verify).
// Falls back to the full membership when nothing is healthy.
func (g *Gateway) rrOrder() []string {
	all := g.fleet.Replicas()
	healthy := make([]string, 0, len(all))
	for _, addr := range all {
		if g.fleet.Healthy(addr) {
			healthy = append(healthy, addr)
		}
	}
	if len(healthy) == 0 {
		healthy = append(healthy, all...)
	}
	n := int(g.rr.Add(1)) % len(healthy)
	return append(healthy[n:], healthy[:n]...)
}

// proxy forwards a buffered-body request along rank until a replica answers.
// Dial failures (request never delivered) fail over for every method and
// mark the replica down; other transport failures and 5xx answers fail over
// only when idempotent is set. When profile is non-empty and the effective
// owner answers 404 unknown-profile, pull-on-miss ships the profile's
// snapshot record from a holder to the owner and retries once.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, rank []string, path string, body []byte, profile string, idempotent bool) {
	ctx := r.Context()
	var lastErr error
	for i, addr := range rank {
		resp, err := g.client.do(ctx, r.Method, addr+path, r.Header.Get("Content-Type"), body, false)
		if err != nil {
			lastErr = err
			if NotDelivered(err) {
				g.fleet.MarkDown(addr, err)
				g.metrics.failovers.Inc()
				continue
			}
			if idempotent && i+1 < len(rank) {
				g.metrics.failovers.Inc()
				continue
			}
			g.writeError(w, http.StatusBadGateway, "replica %s: %v", addr, err)
			return
		}
		if resp.StatusCode == http.StatusNotFound && profile != "" && !g.cfg.DisablePullOnMiss && i == 0 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if g.pullOnMiss(ctx, profile, rank) {
				retry, rerr := g.client.do(ctx, r.Method, addr+path, r.Header.Get("Content-Type"), body, false)
				if rerr == nil {
					g.copyResponse(w, retry)
					return
				}
				g.writeError(w, http.StatusBadGateway, "replica %s: %v", addr, rerr)
				return
			}
			// No holder anywhere: the profile genuinely does not exist.
			// Answer the canonical replica error body.
			g.writeError(w, http.StatusNotFound, "unknown profile: %q", profile)
			return
		}
		if resp.StatusCode >= 500 && idempotent && i+1 < len(rank) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			g.metrics.failovers.Inc()
			continue
		}
		g.copyResponse(w, resp)
		return
	}
	g.writeError(w, http.StatusBadGateway, "no replica reachable: %v", lastErr)
}

// --- endpoint handlers ------------------------------------------------------

// handleStateless proxies an endpoint with no profile affinity (analyze,
// verify) to the healthy replicas in round-robin order.
func (g *Gateway) handleStateless(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		g.proxy(w, r, g.rrOrder(), path, body, "", false)
	}
}

// handleDetect proxies /v1/detect and /v1/detect/batch to the replica owning
// the request's profile.
func (g *Gateway) handleDetect(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		profile := profileField(body)
		if profile == "" {
			// The replica owns the error contract for a missing profile; any
			// replica produces the canonical body.
			g.proxy(w, r, g.rrOrder(), path, body, "", false)
			return
		}
		g.proxy(w, r, g.fleet.RankHealthy(profile, nil), path, body, profile, false)
	}
}

// handleProfileScoped proxies {name}-scoped mutations (train, PUT) to the
// profile's owner.
func (g *Gateway) handleProfileScoped(method, suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		path := "/v1/profiles/" + name + suffix
		g.proxy(w, r, g.fleet.RankHealthy(name, nil), path, body, "", false)
	}
}

// handleProfileGet serves GET /v1/profiles/{name}: the owner first, then —
// reads being idempotent — any replica still holding the profile (a stale
// copy is better than a 404 during a failover window; placement repair is
// pull-on-miss's and anti-entropy's job).
func (g *Gateway) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ctx := r.Context()
	rank := g.fleet.RankHealthy(name, nil)
	var notFound *http.Response
	for _, addr := range rank {
		resp, err := g.client.do(ctx, http.MethodGet, addr+"/v1/profiles/"+name, "", nil, false)
		if err != nil {
			if NotDelivered(err) {
				g.fleet.MarkDown(addr, err)
			}
			g.metrics.failovers.Inc()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if notFound != nil {
				notFound.Body.Close()
			}
			g.copyResponse(w, resp)
			return
		}
		if notFound == nil {
			notFound = resp // keep the owner's error body
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if notFound != nil {
		g.copyResponse(w, notFound)
		return
	}
	g.writeError(w, http.StatusBadGateway, "no replica reachable")
}

// handleProfileDelete broadcasts the delete to every replica: stale copies
// (left by failovers or membership changes) must go too, or pull-on-miss
// would resurrect the profile from one of them.
func (g *Gateway) handleProfileDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ctx := r.Context()
	deleted := false
	for _, addr := range g.fleet.Replicas() {
		resp, err := g.client.do(ctx, http.MethodDelete, addr+"/v1/profiles/"+name, "", nil, false)
		if err != nil {
			if NotDelivered(err) {
				g.fleet.MarkDown(addr, err)
			}
			continue
		}
		if resp.StatusCode == http.StatusOK {
			deleted = true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if !deleted {
		g.writeError(w, http.StatusNotFound, "unknown profile: %q", name)
		return
	}
	g.writeJSON(w, http.StatusOK, service.DeleteProfileResponse{Profile: name, Deleted: true})
}

// handleListProfiles scatters GET /v1/profiles to every healthy replica and
// merges the union: one entry per profile name (the effective owner's entry
// wins when several replicas hold copies), sorted by name like a single
// replica's listing.
func (g *Gateway) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	byName := make(map[string]service.ProfileInfo)
	fromOwner := make(map[string]bool)
	reached := false
	for _, addr := range g.fleet.Replicas() {
		if !g.fleet.Healthy(addr) {
			continue
		}
		var infos []service.ProfileInfo
		if err := g.client.getJSON(ctx, addr+"/v1/profiles", &infos); err != nil {
			continue
		}
		reached = true
		for _, info := range infos {
			owner := g.fleet.Owner(info.Name) == addr
			if _, seen := byName[info.Name]; !seen || (owner && !fromOwner[info.Name]) {
				byName[info.Name] = info
				fromOwner[info.Name] = owner
			}
		}
	}
	if !reached {
		g.writeError(w, http.StatusBadGateway, "no replica reachable")
		return
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]service.ProfileInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, byName[name])
	}
	g.writeJSON(w, http.StatusOK, infos)
}

// handleIsolation merges every replica's isolation list: the union of
// condemned pairs (verification routes round-robin, so any replica may hold
// a pair), each reported once with its strongest evidence, sorted by pair.
func (g *Gateway) handleIsolation(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	type key struct{ a, b int }
	merged := make(map[key]service.IsolatedPairJSON)
	reached := false
	for _, addr := range g.fleet.Replicas() {
		if !g.fleet.Healthy(addr) {
			continue
		}
		var ir service.IsolationResponse
		if err := g.client.getJSON(ctx, addr+"/v1/isolation", &ir); err != nil {
			continue
		}
		reached = true
		for _, p := range ir.Pairs {
			k := key{p.Pair.A, p.Pair.B}
			if have, ok := merged[k]; !ok || p.Likelihood > have.Likelihood ||
				(p.Likelihood == have.Likelihood && p.Probes > have.Probes) {
				merged[k] = p
			}
		}
	}
	if !reached {
		g.writeError(w, http.StatusBadGateway, "no replica reachable")
		return
	}
	keys := make([]key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	pairs := make([]service.IsolatedPairJSON, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, merged[k])
	}
	g.writeJSON(w, http.StatusOK, service.IsolationResponse{Pairs: pairs})
}

// handleIsolationLift broadcasts the lift: the pair may be condemned on any
// subset of replicas.
func (g *Gateway) handleIsolationLift(w http.ResponseWriter, r *http.Request) {
	a, b := r.PathValue("a"), r.PathValue("b")
	ctx := r.Context()
	var lifted *http.Response
	for _, addr := range g.fleet.Replicas() {
		resp, err := g.client.do(ctx, http.MethodDelete, addr+"/v1/isolation/"+a+"/"+b, "", nil, false)
		if err != nil {
			if NotDelivered(err) {
				g.fleet.MarkDown(addr, err)
			}
			continue
		}
		if resp.StatusCode == http.StatusOK && lifted == nil {
			lifted = resp
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if lifted == nil {
		g.writeError(w, http.StatusNotFound, "pair (%s,%s) is not isolated", a, b)
		return
	}
	g.copyResponse(w, lifted)
}

// handleHealthz reports gateway health: 200 while at least one replica is
// routable, 503 otherwise.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := g.fleet.HealthyCount()
	status := http.StatusOK
	state := "ok"
	if healthy == 0 {
		status, state = http.StatusServiceUnavailable, "no healthy replicas"
	}
	g.writeJSON(w, status, map[string]any{
		"status":   state,
		"replicas": len(g.fleet.Replicas()),
		"healthy":  healthy,
	})
}

// handleCluster serves the fleet view: membership, health, and — with
// ?profile=name — the placement decision for one profile.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Replicas []ReplicaStatus `json:"replicas"`
		Profile  string          `json:"profile,omitempty"`
		Owner    string          `json:"owner,omitempty"`
		Rank     []string        `json:"rank,omitempty"`
	}{Replicas: g.fleet.Statuses()}
	if name := r.URL.Query().Get("profile"); name != "" {
		resp.Profile = name
		resp.Rank = g.fleet.RankHealthy(name, nil)
		resp.Owner = resp.Rank[0]
	}
	g.writeJSON(w, http.StatusOK, resp)
}

// profileField extracts the top-level "profile" string from a detect body.
// The fast path scans for the key without a full decode (the gateway sits on
// the detect hot path); any ambiguity — zero or several occurrences, escape
// sequences, non-string values — falls back to real JSON decoding, so
// routing is exact whenever the fast path answers.
func profileField(body []byte) string {
	const mark = `"profile"`
	i := bytes.Index(body, []byte(mark))
	if i >= 0 && bytes.Index(body[i+len(mark):], []byte(mark)) < 0 {
		rest := body[i+len(mark):]
		j := 0
		for j < len(rest) && (rest[j] == ' ' || rest[j] == '\t' || rest[j] == '\n' || rest[j] == '\r') {
			j++
		}
		if j < len(rest) && rest[j] == ':' {
			j++
			for j < len(rest) && (rest[j] == ' ' || rest[j] == '\t' || rest[j] == '\n' || rest[j] == '\r') {
				j++
			}
			if j < len(rest) && rest[j] == '"' {
				val := rest[j+1:]
				if end := bytes.IndexByte(val, '"'); end >= 0 && bytes.IndexByte(val[:end], '\\') < 0 {
					return string(val[:end])
				}
			}
		}
	}
	var req struct {
		Profile string `json:"profile"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	return req.Profile
}

// --- scatter-gather batch training ------------------------------------------

// handleTrainBatch splits a /v1/train/batch scenario grid across the
// replicas owning each scenario's profile and merges the results back in
// grid order. Each scenario's training streams derive from (seed, scenario
// label, run index) alone — a pure function of grid coordinates — so where a
// scenario runs cannot change what it trains, and the merged response is
// byte-identical to a single replica sweeping the whole grid.
func (g *Gateway) handleTrainBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req service.TrainBatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	names, err := service.ScenarioProfiles(req.Scenarios)
	if err != nil {
		// Invalid grids get the canonical replica error: forward verbatim.
		g.proxy(w, r, g.rrOrder(), "/v1/train/batch", body, "", false)
		return
	}

	// Group scenario indices by owning replica, preserving grid order.
	owners := make(map[string][]int)
	order := make([]string, 0, 4)
	for i, name := range names {
		addr := g.fleet.Owner(name)
		if addr == "" {
			g.writeError(w, http.StatusBadGateway, "no replica reachable")
			return
		}
		if _, seen := owners[addr]; !seen {
			order = append(order, addr)
		}
		owners[addr] = append(owners[addr], i)
	}
	if len(owners) == 1 {
		// One owner: pure proxy, streaming progress and all.
		g.proxy(w, r, []string{order[0]}, "/v1/train/batch", body, "", false)
		return
	}

	// A sweep outlives the server's write timeout; lift it like the replica
	// handler does.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	type shard struct {
		addr    string
		indices []int
		resp    service.TrainBatchResponse
		err     error
	}
	shards := make([]*shard, 0, len(order))
	for _, addr := range order {
		shards = append(shards, &shard{addr: addr, indices: owners[addr]})
	}
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sub := service.TrainBatchRequest{
				Runs:     req.Runs,
				Seed:     req.Seed,
				Parallel: req.Parallel,
				// Stream is dropped: progress interleaving across replicas
				// has no deterministic order; the merged result is one JSON.
			}
			for _, i := range sh.indices {
				sub.Scenarios = append(sub.Scenarios, req.Scenarios[i])
			}
			blob, err := json.Marshal(sub)
			if err != nil {
				sh.err = err
				return
			}
			resp, err := g.client.do(r.Context(), http.MethodPost, sh.addr+"/v1/train/batch",
				"application/json", blob, true)
			if err != nil {
				sh.err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				sh.err = statusError(resp)
				return
			}
			sh.err = decodeBody(resp.Body, &sh.resp)
		}(sh)
	}
	wg.Wait()

	merged := service.TrainBatchResponse{Scenarios: make([]service.TrainBatchResult, len(req.Scenarios))}
	for _, sh := range shards {
		if sh.err != nil {
			g.writeError(w, http.StatusBadGateway, "train_batch scatter: replica %s: %v", sh.addr, sh.err)
			return
		}
		if len(sh.resp.Scenarios) != len(sh.indices) {
			g.writeError(w, http.StatusBadGateway,
				"train_batch scatter: replica %s answered %d scenarios, want %d",
				sh.addr, len(sh.resp.Scenarios), len(sh.indices))
			return
		}
		for j, i := range sh.indices {
			merged.Scenarios[i] = sh.resp.Scenarios[j]
		}
		// Effective runs and seed are grid-global constants; every shard
		// reports the same values.
		merged.Runs, merged.Seed = sh.resp.Runs, sh.resp.Seed
	}
	merged.Cells = len(req.Scenarios) * merged.Runs
	g.metrics.scatters.Inc()
	// Encoded exactly like a replica's writeJSON, so the merged body is
	// byte-identical to a single-replica sweep of the same grid.
	g.writeJSON(w, http.StatusOK, merged)
}

// --- metrics ----------------------------------------------------------------

type gwMetrics struct {
	reg             *obs.Registry
	pulls           *obs.Counter
	pullErrs        *obs.Counter
	syncCopies      *obs.Counter
	failovers       *obs.Counter
	scatters        *obs.Counter
	respErrs        *obs.Counter
	fleetScrapes    *obs.Counter
	fleetScrapeErrs *obs.Counter
}

func newGWMetrics(reg *obs.Registry) *gwMetrics {
	return &gwMetrics{
		reg: reg,
		pulls: reg.Counter("samgate_sync_pulls_total",
			"Profiles repaired at their owner by pull-on-miss."),
		pullErrs: reg.Counter("samgate_sync_errors_total",
			"Failed snapshot-record ships (pull-on-miss or anti-entropy)."),
		syncCopies: reg.Counter("samgate_antientropy_copies_total",
			"Profiles shipped to their owners by anti-entropy passes."),
		failovers: reg.Counter("samgate_failovers_total",
			"Requests rerouted past an unreachable or failing replica."),
		scatters: reg.Counter("samgate_train_scatters_total",
			"Batch-training grids split across multiple replicas."),
		respErrs: reg.Counter("samgate_response_errors_total",
			"Response bodies that failed to encode or relay."),
		fleetScrapes: reg.Counter("samgate_fleet_scrapes_total",
			"Federated /metrics/fleet scrapes served."),
		fleetScrapeErrs: reg.Counter("samgate_fleet_scrape_errors_total",
			"Replica scrape failures during /metrics/fleet federation."),
	}
}

// gwStatusWriter captures the status a traced gateway request answered; it
// is allocated only on the tracing path. Unwrap keeps ResponseController
// working for the stream scatter (full duplex, deadlines).
type gwStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *gwStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *gwStatusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with per-endpoint request counting and latency,
// plus — when tracing is on — a gateway span whose context rides the request
// into Client.do, so every proxied, scattered, or failed-over sub-request
// carries the gateway span as its traceparent and the replica spans parent
// under it.
func (g *Gateway) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := g.cfg.Registry.Counter("samgate_requests_total",
		"Requests served, by endpoint.", obs.Label{Key: "endpoint", Value: name})
	lat := g.cfg.Registry.Histogram("samgate_request_duration_seconds",
		"Request latency.", obs.DefaultLatencyBuckets, obs.Label{Key: "endpoint", Value: name})
	tracer := g.cfg.Tracer
	return func(w http.ResponseWriter, r *http.Request) {
		var span obs.ActiveSpan
		if tracer.Enabled() {
			span = tracer.Start(name, obs.ParentFromRequest(r))
			sw := &gwStatusWriter{ResponseWriter: w}
			sw.Header()["Traceparent"] = []string{span.Context().Traceparent()}
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span.Context()))
			w = sw
		}
		begin := time.Now()
		h(w, r)
		reqs.Inc()
		lat.ObserveDuration(time.Since(begin))
		if sw, ok := w.(*gwStatusWriter); ok {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			tracer.Finish(span, status)
		}
	}
}

// readAll is io.ReadAll under a name the sync path shares.
func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }
