package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"samnet/internal/obs"
	"samnet/internal/service"
)

func TestInjectReplicaLabel(t *testing.T) {
	cases := []struct{ line, addr, want string }{
		{`up 1`, "http://a:1", `up{replica="http://a:1"} 1`},
		{`reqs_total{endpoint="detect"} 7`, "http://a:1",
			`reqs_total{replica="http://a:1",endpoint="detect"} 7`},
		{`lat_bucket{endpoint="detect",le="+Inf"} 3`, "http://b:2",
			`lat_bucket{replica="http://b:2",endpoint="detect",le="+Inf"} 3`},
		// Addresses with exposition metacharacters escape per 0.0.4.
		{`up 1`, `weird"addr\x`, `up{replica="weird\"addr\\x"} 1`},
		{`empty{} 0`, "r", `empty{replica="r"} 0`},
	}
	for _, c := range cases {
		if got := injectReplicaLabel(c.line, c.addr); got != c.want {
			t.Errorf("injectReplicaLabel(%q, %q):\n got %q\nwant %q", c.line, c.addr, got, c.want)
		}
	}
}

// TestMergeExpositions pins the federation merge semantics: HELP/TYPE once
// per family, families sorted, per-replica sample order preserved within a
// family, histogram suffix series grouped under their family, and failed
// scrapes surfaced as leading comments.
func TestMergeExpositions(t *testing.T) {
	r1 := "# HELP reqs_total Requests.\n# TYPE reqs_total counter\nreqs_total{endpoint=\"a\"} 1\nreqs_total{endpoint=\"b\"} 2\n" +
		"# TYPE lat histogram\nlat_bucket{le=\"+Inf\"} 4\nlat_sum 0.5\nlat_count 4\n"
	r2 := "# HELP reqs_total Requests.\n# TYPE reqs_total counter\nreqs_total{endpoint=\"a\"} 9\n" +
		"# TYPE alpha gauge\nalpha 3\n"
	got := string(mergeExpositions([]replicaScrape{
		{addr: "http://r1", body: []byte(r1)},
		{addr: "http://r2", body: []byte(r2)},
		{addr: "http://r3", err: errors.New("dial tcp: connection refused")},
	}))
	want := `# fleet: replica http://r3 unreachable: dial tcp: connection refused
# TYPE alpha gauge
alpha{replica="http://r2"} 3
# TYPE lat histogram
lat_bucket{replica="http://r1",le="+Inf"} 4
lat_sum{replica="http://r1"} 0.5
lat_count{replica="http://r1"} 4
# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{replica="http://r1",endpoint="a"} 1
reqs_total{replica="http://r1",endpoint="b"} 2
reqs_total{replica="http://r2",endpoint="a"} 9
`
	if got != want {
		t.Errorf("merged exposition:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsFleetEndpoint federates two live replicas end to end and pins
// that both replica labels appear, each replica's samserve series carries its
// own address, and a downed replica degrades to a comment instead of a 5xx.
func TestMetricsFleetEndpoint(t *testing.T) {
	r1, r2 := newReplica(t), newReplica(t)
	g, ts := newTestGateway(t, r1.URL, r2.URL)
	trainDirect(t, r1.URL, "p1")

	resp, err := http.Get(ts.URL + "/metrics/fleet")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet scrape: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "0.0.4") {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	for _, addr := range []string{r1.URL, r2.URL} {
		if !strings.Contains(text, `replica="`+addr+`"`) {
			t.Errorf("federated exposition missing replica label for %s", addr)
		}
	}
	if strings.Count(text, "# TYPE samserve_uptime_seconds gauge") != 1 {
		t.Error("TYPE must appear once per family across replicas")
	}

	// Down one replica: the scrape still answers 200, with a fleet comment.
	r2.Close()
	g.fleet.CheckNow(t.Context())
	resp2, err := http.Get(ts.URL + "/metrics/fleet")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("degraded fleet scrape: %d", resp2.StatusCode)
	}
	if strings.Contains(string(body2), `replica="`+r2.URL+`"`) &&
		!strings.Contains(string(body2), "# fleet: replica "+r2.URL) {
		t.Error("downed replica neither skipped nor commented")
	}
}

// TestGatewayTracePropagation is the acceptance pin for the tentpole: one
// detect through a traced gateway over traced replicas yields one trace id
// visible in the gateway's and the scoring replica's /debug/traces, with the
// replica's span parented to the gateway's span.
func TestGatewayTracePropagation(t *testing.T) {
	replicaTracer := obs.NewTracer(64, 0)
	svc := service.New(service.Config{Tracer: replicaTracer})
	replica := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		replica.Close()
		svc.Close()
	})
	trainDirect(t, replica.URL, "traced")

	gwTracer := obs.NewTracer(64, 0)
	g, err := NewGateway(GatewayConfig{
		Replicas: []string{replica.URL}, HealthInterval: -1, Tracer: gwTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})

	body := mustMarshal(t, service.DetectRequest{Profile: "traced", Routes: genSets(1, true, 5000)[0]})
	req, err := http.NewRequest("POST", ts.URL+"/v1/detect", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	const clientTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req.Header.Set("Traceparent", clientTP)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect via gateway: %s", resp.Status)
	}

	// Gateway span: continues the client trace, parented to the client span.
	var gwSpan *obs.Span
	for _, sp := range gwTracer.Snapshot() {
		if sp.Name == "detect" && sp.TraceID == traceID {
			gwSpan = &sp
			break
		}
	}
	if gwSpan == nil {
		t.Fatalf("no gateway detect span for trace %s: %+v", traceID, gwTracer.Snapshot())
	}
	if gwSpan.Parent != "00f067aa0ba902b7" {
		t.Fatalf("gateway span parent = %q, want client span", gwSpan.Parent)
	}

	// Replica span: same trace, parented to the gateway span.
	var repSpan *obs.Span
	for _, sp := range replicaTracer.Snapshot() {
		if sp.Name == "detect" && sp.TraceID == traceID {
			repSpan = &sp
			break
		}
	}
	if repSpan == nil {
		t.Fatalf("no replica detect span for trace %s: %+v", traceID, replicaTracer.Snapshot())
	}
	if repSpan.Parent != gwSpan.SpanID {
		t.Fatalf("replica span parent = %q, want gateway span %q", repSpan.Parent, gwSpan.SpanID)
	}

	// Both /debug/traces surfaces answer for the trace id.
	for _, url := range []string{ts.URL, replica.URL} {
		dbg, err := http.Get(url + "/debug/traces?trace=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		var tr obs.TracesResponse
		err = json.NewDecoder(dbg.Body).Decode(&tr)
		dbg.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Spans) == 0 {
			t.Errorf("%s/debug/traces has no spans for trace %s", url, traceID)
		}
	}

	// Per-replica attribution: the detect landed in the replica's series.
	if g.replicaReqs[replica.URL].Value() == 0 {
		t.Error("per-replica request counter did not move")
	}
	if g.replicaLat[replica.URL].Count() == 0 {
		t.Error("per-replica latency histogram did not move")
	}
}

// TestGatewayResponseBytesIdenticalWithTracing extends the byte-transparency
// pin across the gateway: the same detect answers identical bodies through a
// traced and an untraced gateway/replica stack.
func TestGatewayResponseBytesIdenticalWithTracing(t *testing.T) {
	buildStack := func(tracer bool) string {
		var svcCfg service.Config
		var gwCfg GatewayConfig
		if tracer {
			svcCfg.Tracer = obs.NewTracer(64, 0)
			gwCfg.Tracer = obs.NewTracer(64, 0)
		}
		svc := service.New(svcCfg)
		replica := httptest.NewServer(svc.Handler())
		gwCfg.Replicas = []string{replica.URL}
		gwCfg.HealthInterval = -1
		g, err := NewGateway(gwCfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(g.Handler())
		t.Cleanup(func() {
			ts.Close()
			g.Close()
			replica.Close()
			svc.Close()
		})
		trainDirect(t, replica.URL, "p")
		return ts.URL
	}
	off, on := buildStack(false), buildStack(true)
	for _, body := range []string{
		mustMarshal(t, service.DetectRequest{Profile: "p", Routes: genSets(1, true, 5000)[0]}),
		`{"profile":"p","routes":` + mustMarshal(t, genSets(1, false, 6000)[0]) + `,"explain":true}`,
	} {
		respOff, blobOff := postRaw(t, off+"/v1/detect", body)
		respOn, blobOn := postRaw(t, on+"/v1/detect", body)
		if respOff.StatusCode != respOn.StatusCode || string(blobOff) != string(blobOn) {
			t.Errorf("gateway responses differ with tracing:\noff %d: %s\non  %d: %s",
				respOff.StatusCode, blobOff, respOn.StatusCode, blobOn)
		}
	}
}
