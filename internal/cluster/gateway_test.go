package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"samnet/internal/attack"
	"samnet/internal/routing/mr"
	"samnet/internal/service"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// genSets mirrors the service tests' corpus generator: n route sets from MR
// discoveries on a 1-tier cluster, wormhole on or off.
func genSets(n int, wormhole bool, seedBase uint64) [][][]int {
	net := topology.Cluster(1, 2)
	var sc *attack.Scenario
	if wormhole {
		sc = attack.NewScenario(net, 1, attack.Forward)
		defer sc.Teardown()
	}
	out := make([][][]int, 0, n)
	for i := 0; i < n; i++ {
		s := sim.NewNetwork(net.Topo, sim.Config{Seed: seedBase + uint64(i)*7919})
		if sc != nil {
			sc.Arm(s)
		}
		d := (&mr.Protocol{}).Discover(s, net.SrcPool[0], net.DstPool[len(net.DstPool)-1])
		set := make([][]int, len(d.Routes))
		for j, r := range d.Routes {
			nodes := make([]int, len(r))
			for k, id := range r {
				nodes[k] = int(id)
			}
			set[j] = nodes
		}
		out = append(out, set)
	}
	return out
}

// newReplica boots one samserve service on a test listener.
func newReplica(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// newTestGateway fronts the given replica URLs with background loops off.
func newTestGateway(t *testing.T, replicas ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := NewGateway(GatewayConfig{Replicas: replicas, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// trainDirect trains profile name on one server with a deterministic corpus.
func trainDirect(t *testing.T, baseURL, name string) {
	t.Helper()
	body := mustMarshal(t, service.TrainRequest{RouteSets: genSets(20, false, 1000)})
	resp, blob := postRaw(t, baseURL+"/v1/profiles/"+name+"/train", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train %s: %d: %s", name, resp.StatusCode, blob)
	}
}

// gridBody is the scatter test grid: four scenarios, four distinct profiles,
// small runs so the sweep stays fast.
func gridBody(t *testing.T) string {
	t.Helper()
	seed := uint64(2005)
	return mustMarshal(t, service.TrainBatchRequest{
		Scenarios: []service.TrainScenarioJSON{
			{Topo: "cluster", Tier: 1, Protocol: "mr"},
			{Topo: "cluster", Tier: 2, Protocol: "mr"},
			{Topo: "cluster", Tier: 1, Protocol: "smr"},
			{Topo: "cluster", Tier: 2, Protocol: "smr"},
		},
		Runs: 4,
		Seed: &seed,
	})
}

// TestGatewayTrainBatchScatterByteIdentity is the determinism acceptance
// gate: a grid scattered across two replicas and merged by the gateway must
// produce the exact bytes a single replica produces sweeping the whole grid.
func TestGatewayTrainBatchScatterByteIdentity(t *testing.T) {
	single := newReplica(t)
	r1, r2 := newReplica(t), newReplica(t)
	g, gw := newTestGateway(t, r1.URL, r2.URL)

	body := gridBody(t)
	resp, want := postRaw(t, single.URL+"/v1/train/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single sweep: %d: %s", resp.StatusCode, want)
	}
	resp, got := postRaw(t, gw.URL+"/v1/train/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scattered sweep: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scattered sweep diverged from single replica:\n gw:     %s\n single: %s", got, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("scattered sweep Content-Type = %q", ct)
	}

	// The split actually happened (both replicas trained something) — the
	// byte identity above would be vacuous if one replica took the grid.
	if g.metrics.scatters.Value() == 0 {
		t.Skip("grid placed on one replica; scatter not exercised with this membership")
	}
	for _, r := range []*httptest.Server{r1, r2} {
		var infos []service.ProfileInfo
		if err := g.client.getJSON(context.Background(), r.URL+"/v1/profiles", &infos); err != nil {
			t.Fatal(err)
		}
		if len(infos) == 0 {
			t.Fatalf("replica %s trained nothing; grid was not split", r.URL)
		}
	}
}

// TestGatewayDetectByteTransparent scores one corpus twice — through the
// gateway onto a 2-replica fleet, and against a lone replica — and requires
// byte-identical verdict bodies in both worlds.
func TestGatewayDetectByteTransparent(t *testing.T) {
	single := newReplica(t)
	r1, r2 := newReplica(t), newReplica(t)
	_, gw := newTestGateway(t, r1.URL, r2.URL)

	// Same grid trained in both worlds seeds identical profiles.
	body := gridBody(t)
	if resp, blob := postRaw(t, single.URL+"/v1/train/batch", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("single train: %d: %s", resp.StatusCode, blob)
	}
	if resp, blob := postRaw(t, gw.URL+"/v1/train/batch", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet train: %d: %s", resp.StatusCode, blob)
	}

	profiles := []string{"cluster-1tier-MR", "cluster-2tier-MR", "cluster-1tier-SMR", "cluster-2tier-SMR"}
	normal := genSets(4, false, 5000)
	attacked := genSets(4, true, 6000)
	var reqs []string
	for i, p := range profiles {
		reqs = append(reqs,
			mustMarshal(t, service.DetectRequest{Profile: p, Routes: normal[i]}),
			mustMarshal(t, service.DetectRequest{Profile: p, Routes: attacked[i]}),
		)
	}
	// Scored strictly in order in both worlds, the adaptive profile updates
	// replay identically, so every response must match byte for byte.
	for i, req := range reqs {
		_, want := postRaw(t, single.URL+"/v1/detect", req)
		_, got := postRaw(t, gw.URL+"/v1/detect", req)
		if !bytes.Equal(got, want) {
			t.Fatalf("detect %d diverged:\n gw:     %s\n single: %s", i, got, want)
		}
	}

	// Batch detect is transparent too.
	batch := mustMarshal(t, service.BatchDetectRequest{Profile: profiles[0], Items: genSets(3, false, 7000)})
	_, want := postRaw(t, single.URL+"/v1/detect/batch", batch)
	_, got := postRaw(t, gw.URL+"/v1/detect/batch", batch)
	if !bytes.Equal(got, want) {
		t.Fatalf("detect/batch diverged:\n gw:     %s\n single: %s", got, want)
	}
}

// TestGatewayStreamOrdered runs the NDJSON scatter: interleaved lines for
// profiles owned by different replicas, plus a malformed line, must come
// back as one response line per input line, in input order, byte-identical
// to a lone replica scoring the same stream.
func TestGatewayStreamOrdered(t *testing.T) {
	single := newReplica(t)
	r1, r2 := newReplica(t), newReplica(t)
	g, gw := newTestGateway(t, r1.URL, r2.URL)

	body := gridBody(t)
	if resp, blob := postRaw(t, single.URL+"/v1/train/batch", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("single train: %d: %s", resp.StatusCode, blob)
	}
	if resp, blob := postRaw(t, gw.URL+"/v1/train/batch", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet train: %d: %s", resp.StatusCode, blob)
	}

	// Confirm the stream really crosses replicas.
	if g.fleet.Owner("cluster-1tier-MR") == g.fleet.Owner("cluster-2tier-MR") &&
		g.fleet.Owner("cluster-1tier-MR") == g.fleet.Owner("cluster-1tier-SMR") &&
		g.fleet.Owner("cluster-1tier-MR") == g.fleet.Owner("cluster-2tier-SMR") {
		t.Skip("all stream profiles placed on one replica with this membership")
	}

	sets := genSets(8, false, 8000)
	var in bytes.Buffer
	profiles := []string{"cluster-1tier-MR", "cluster-2tier-MR", "cluster-1tier-SMR", "cluster-2tier-SMR"}
	lines := 0
	for i := 0; i < 8; i++ {
		in.WriteString(mustMarshal(t, service.DetectRequest{Profile: profiles[i%4], Routes: sets[i]}))
		in.WriteByte('\n')
		lines++
		if i == 3 {
			in.WriteString("\n{not json\n") // blank line skipped, bad line answered
			lines++
		}
	}

	stream := func(url string) []string {
		resp, err := http.Post(url+"/v1/detect/stream", "application/x-ndjson", bytes.NewReader(in.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream Content-Type = %q", ct)
		}
		var out []string
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 8<<20)
		for sc.Scan() {
			out = append(out, sc.Text())
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := stream(single.URL)
	got := stream(gw.URL)
	if len(got) != lines {
		t.Fatalf("stream answered %d lines for %d inputs", len(got), lines)
	}
	if len(want) != len(got) {
		t.Fatalf("single answered %d lines, gateway %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("stream line %d diverged:\n gw:     %s\n single: %s", i, got[i], want[i])
		}
	}
}

// TestGatewayPullOnMiss plants a profile on a replica that does not own it;
// the first detect routed to the owner must repair placement (ship the
// record over) and then score, transparently to the client.
func TestGatewayPullOnMiss(t *testing.T) {
	r1, r2 := newReplica(t), newReplica(t)
	g, gw := newTestGateway(t, r1.URL, r2.URL)

	const name = "test"
	owner := g.fleet.Owner(name)
	holder := r1.URL
	if owner == r1.URL {
		holder = r2.URL
	}
	trainDirect(t, holder, name)

	req := mustMarshal(t, service.DetectRequest{Profile: name, Routes: genSets(1, false, 9000)[0]})
	resp, blob := postRaw(t, gw.URL+"/v1/detect", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect after pull-on-miss: %d: %s", resp.StatusCode, blob)
	}
	var dr service.DetectResponse
	if err := json.Unmarshal(blob, &dr); err != nil {
		t.Fatal(err)
	}
	if g.metrics.pulls.Value() != 1 {
		t.Fatalf("pulls = %d, want 1", g.metrics.pulls.Value())
	}
	// The owner now holds the record, byte-identical to the holder's export.
	ctx := context.Background()
	ownerRec, err := g.client.do(ctx, http.MethodGet, owner+"/v1/profiles/"+name, "", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ownerRec.Body.Close()
	if ownerRec.StatusCode != http.StatusOK {
		t.Fatalf("owner GET after repair: %d", ownerRec.StatusCode)
	}

	// A profile held nowhere still answers the canonical 404 body.
	resp, blob = postRaw(t, gw.URL+"/v1/detect", mustMarshal(t, service.DetectRequest{Profile: "ghost", Routes: genSets(1, false, 9100)[0]}))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost detect: %d: %s", resp.StatusCode, blob)
	}
	var er service.ErrorResponse
	if err := json.Unmarshal(blob, &er); err != nil || er.Error != `unknown profile: "ghost"` {
		t.Fatalf("ghost body = %s", blob)
	}
}

// TestGatewaySyncNow: anti-entropy ships misplaced profiles to their owners
// without touching the source copies.
func TestGatewaySyncNow(t *testing.T) {
	r1, r2 := newReplica(t), newReplica(t)
	g, _ := newTestGateway(t, r1.URL, r2.URL)

	const name = "test"
	owner := g.fleet.Owner(name)
	holder := r1.URL
	if owner == r1.URL {
		holder = r2.URL
	}
	trainDirect(t, holder, name)

	ctx := context.Background()
	if shipped := g.SyncNow(ctx); shipped != 1 {
		t.Fatalf("SyncNow shipped %d, want 1", shipped)
	}
	read := func(base string) []byte {
		resp, err := g.client.do(ctx, http.MethodGet, base+"/v1/profiles/"+name, "", nil, false)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", base, resp.StatusCode, blob)
		}
		return blob
	}
	if want, got := read(holder), read(owner); !bytes.Equal(want, got) {
		t.Fatalf("shipped record drifted:\n holder: %s\n owner:  %s", want, got)
	}
	if shipped := g.SyncNow(ctx); shipped != 0 {
		t.Fatalf("second SyncNow shipped %d, want 0 (converged)", shipped)
	}
}

// TestGatewayProfileCRUD covers the union listing, owner-ranked GET, and
// broadcast DELETE.
func TestGatewayProfileCRUD(t *testing.T) {
	r1, r2 := newReplica(t), newReplica(t)
	g, gw := newTestGateway(t, r1.URL, r2.URL)

	trainDirect(t, r1.URL, "alpha")
	trainDirect(t, r2.URL, "beta")

	var infos []service.ProfileInfo
	if err := g.client.getJSON(context.Background(), gw.URL+"/v1/profiles", &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("union listing = %+v", infos)
	}

	// GET finds the profile wherever it lives, even off-owner.
	for _, name := range []string{"alpha", "beta"} {
		resp, blob := getRaw(t, gw.URL+"/v1/profiles/"+name)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", name, resp.StatusCode, blob)
		}
	}

	// DELETE reaches every copy; the profile is gone fleet-wide.
	req, _ := http.NewRequest(http.MethodDelete, gw.URL+"/v1/profiles/alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE alpha: %d", resp.StatusCode)
	}
	for _, base := range []string{r1.URL, r2.URL} {
		resp, _ := getRaw(t, base+"/v1/profiles/alpha")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("alpha survives on %s: %d", base, resp.StatusCode)
		}
	}
	// Deleting a profile nobody holds answers 404.
	req, _ = http.NewRequest(http.MethodDelete, gw.URL+"/v1/profiles/alpha", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE alpha: %d, want 404", resp.StatusCode)
	}
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	return resp, blob
}

// TestGatewayFailover: a dead replica in the membership is routed around
// for reads, and health marks it down after the first dial failure.
func TestGatewayFailover(t *testing.T) {
	live := newReplica(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // port now refuses connections

	g, gw := newTestGateway(t, live.URL, deadURL)
	// Pick a profile the *dead* replica owns under pure placement, so the
	// detect really hits the failover path.
	name := ""
	for i := 0; name == ""; i++ {
		candidate := fmt.Sprintf("failover-%d", i)
		if g.fleet.Ring().Owner(candidate) == deadURL {
			name = candidate
		}
	}
	trainDirect(t, live.URL, name)
	// The boot health sweep already marked the dead replica down, so the
	// live replica owns everything; force the optimistic state back to
	// exercise the passive path.
	g.fleet.mu.Lock()
	g.fleet.states[deadURL].healthy = true
	g.fleet.mu.Unlock()

	req := mustMarshal(t, service.DetectRequest{Profile: name, Routes: genSets(1, false, 9200)[0]})
	resp, blob := postRaw(t, gw.URL+"/v1/detect", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect with a dead owner: %d: %s", resp.StatusCode, blob)
	}
	if g.metrics.failovers.Value() == 0 {
		t.Fatal("failover path not taken")
	}
	if g.fleet.Healthy(deadURL) {
		t.Fatal("dead replica still marked healthy after dial failures")
	}
	if hc := g.fleet.HealthyCount(); hc != 1 {
		t.Fatalf("healthy count = %d, want 1", hc)
	}
}

// TestGatewayHealthz: 200 with replica counts while the fleet is routable,
// 503 when nothing is.
func TestGatewayHealthz(t *testing.T) {
	live := newReplica(t)
	g, gw := newTestGateway(t, live.URL)

	resp, blob := getRaw(t, gw.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(blob, []byte(`"healthy":1`)) {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, blob)
	}

	g.fleet.MarkDown(live.URL, fmt.Errorf("forced down"))
	resp, blob = getRaw(t, gw.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no healthy replicas = %d: %s", resp.StatusCode, blob)
	}

	// /v1/cluster exposes membership and placement.
	resp, blob = getRaw(t, gw.URL+"/v1/cluster?profile=test")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(blob, []byte(`"owner"`)) {
		t.Fatalf("cluster view = %d: %s", resp.StatusCode, blob)
	}
}

// TestClientRetry429 pins the retry discipline: Retry-After honored within
// the budget, the last 429 surfaced once attempts run out.
func TestClientRetry429(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{sleep: func(d time.Duration) { slept = append(slept, d) }}
	resp, err := c.do(context.Background(), http.MethodPost, ts.URL, "application/json", []byte(`{}`), true)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hits != 3 {
		t.Fatalf("status %d after %d hits", resp.StatusCode, hits)
	}
	if len(slept) != 2 || slept[0] != time.Second {
		t.Fatalf("slept %v, want two 1s waits", slept)
	}

	// Without opting in, the 429 passes straight through.
	hits = 0
	resp, err = c.do(context.Background(), http.MethodPost, ts.URL, "application/json", []byte(`{}`), false)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || hits != 1 {
		t.Fatalf("passthrough: status %d after %d hits", resp.StatusCode, hits)
	}
}

// TestNotDelivered: dial errors are recognized; an HTTP-level error is not.
func TestNotDelivered(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	c := &Client{}
	_, err := c.do(context.Background(), http.MethodPost, url, "", nil, false)
	if err == nil || !NotDelivered(err) {
		t.Fatalf("dial error not recognized: %v", err)
	}
	if NotDelivered(io.ErrUnexpectedEOF) {
		t.Fatal("mid-body error misread as not-delivered")
	}
}

// TestProfileFieldExtraction pins the routing key scanner against its JSON
// fallback.
func TestProfileFieldExtraction(t *testing.T) {
	cases := []struct{ body, want string }{
		{`{"profile":"a","routes":[[1,2]]}`, "a"},
		{`{ "profile" : "spaced" }`, "spaced"},
		{`{"routes":[[1]],"profile":"late"}`, "late"},
		{`{"profile":"with\"escape"}`, `with"escape`},        // fallback path
		{`{"note":"\"profile\":","profile":"real"}`, "real"}, // decoy occurrence
		{`{"profile":123}`, ""},                              // non-string
		{`{"routes":[[1]]}`, ""},                             // absent
		{`not json`, ""},                                     // garbage
	}
	for _, tc := range cases {
		if got := profileField([]byte(tc.body)); got != tc.want {
			t.Errorf("profileField(%s) = %q, want %q", tc.body, got, tc.want)
		}
	}
}
