package cluster

import (
	"context"
	"fmt"
	"net/http"

	"samnet/internal/service"
)

// Profile sync: replicas exchange profiles by shipping snapshot records —
// the ProfileResponse document that GET /v1/profiles/{name} exports and
// PUT /v1/profiles/{name} installs, byte-identical to a snapshot file line
// (DESIGN §10). Two mechanisms move records to where placement says they
// belong:
//
//   - Pull-on-miss: when the owner answers 404 for a profile-scoped request,
//     the gateway walks the profile's rank order looking for a replica that
//     still holds it (a former owner after a membership change, or a
//     survivor of a failover window), ships the record to the owner, and
//     retries the original request once.
//   - Anti-entropy: a periodic pass lists every replica's profiles, computes
//     each profile's effective owner, and ships records the owner is
//     missing. Sources are left intact — stale copies are harmless (they are
//     only read if placement moves back) and deleting them would turn a
//     transient health flap into data loss.

// shipProfile copies profile name from one replica to another: GET the
// snapshot record from src, PUT it to dst. The record travels verbatim, so
// what the destination installs is byte-identical to the source's export.
func (c *Client) shipProfile(ctx context.Context, src, dst, name string) error {
	resp, err := c.do(ctx, http.MethodGet, src+"/v1/profiles/"+name, "", nil, true)
	if err != nil {
		return fmt.Errorf("pull %s from %s: %w", name, src, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pull %s from %s: %w", name, src, statusError(resp))
	}
	record, err := readAll(resp.Body)
	if err != nil {
		return fmt.Errorf("pull %s from %s: %w", name, src, err)
	}
	putResp, err := c.do(ctx, http.MethodPut, dst+"/v1/profiles/"+name, "application/json", record, true)
	if err != nil {
		return fmt.Errorf("ship %s to %s: %w", name, dst, err)
	}
	defer putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		return fmt.Errorf("ship %s to %s: %w", name, dst, statusError(putResp))
	}
	return nil
}

// pullOnMiss repairs a 404 at the effective owner: scan the rest of the rank
// order for a holder and ship the record over. Reports whether a repair
// happened (so the caller can retry the original request).
func (g *Gateway) pullOnMiss(ctx context.Context, name string, rank []string) bool {
	if len(rank) < 2 {
		return false
	}
	owner := rank[0]
	for _, src := range rank[1:] {
		if !g.fleet.Healthy(src) {
			continue
		}
		err := g.client.shipProfile(ctx, src, owner, name)
		if err == nil {
			g.metrics.pulls.Inc()
			g.logger.Info("pull-on-miss repaired profile", "profile", name, "from", src, "to", owner)
			return true
		}
		g.metrics.pullErrs.Inc()
		g.logger.Debug("pull-on-miss source failed", "profile", name, "from", src, "err", err)
	}
	return false
}

// syncOnce runs one anti-entropy pass and returns how many records it
// shipped. For every profile resident anywhere in the fleet, the effective
// owner is computed and, if the owner does not hold the profile, the record
// is shipped from a replica that does.
func (g *Gateway) syncOnce(ctx context.Context) (shipped int) {
	holders := make(map[string][]string) // profile -> replicas holding it
	for _, addr := range g.fleet.Replicas() {
		if !g.fleet.Healthy(addr) {
			continue
		}
		var infos []service.ProfileInfo
		if err := g.client.getJSON(ctx, addr+"/v1/profiles", &infos); err != nil {
			g.logger.Debug("anti-entropy list failed", "replica", addr, "err", err)
			continue
		}
		for _, info := range infos {
			if info.Trained {
				holders[info.Name] = append(holders[info.Name], addr)
			}
		}
	}
	for name, held := range holders {
		owner := g.fleet.Owner(name)
		if owner == "" || !g.fleet.Healthy(owner) {
			continue
		}
		ownerHasIt := false
		for _, addr := range held {
			if addr == owner {
				ownerHasIt = true
				break
			}
		}
		if ownerHasIt {
			continue
		}
		// Ship from the best-ranked holder so repeated passes are
		// deterministic about their source.
		src := ""
		for _, addr := range g.fleet.RankHealthy(name, nil) {
			for _, h := range held {
				if h == addr {
					src = addr
					break
				}
			}
			if src != "" {
				break
			}
		}
		if src == "" {
			continue
		}
		if err := g.client.shipProfile(ctx, src, owner, name); err != nil {
			g.metrics.pullErrs.Inc()
			g.logger.Warn("anti-entropy ship failed", "profile", name, "from", src, "to", owner, "err", err)
			continue
		}
		g.metrics.syncCopies.Inc()
		shipped++
	}
	if shipped > 0 {
		g.logger.Info("anti-entropy pass shipped profiles", "count", shipped)
	}
	return shipped
}
