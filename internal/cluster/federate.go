package cluster

// GET /metrics/fleet: one federated Prometheus exposition for the whole
// fleet. The gateway scrapes every healthy replica's /metrics concurrently,
// parses each exposition just enough to track metric families, and re-emits
// every sample with a `replica="<addr>"` label injected, so one scrape (or
// one curl) answers "which replica?" for every samserve series. Families are
// merged: HELP/TYPE appear once per family even when every replica exports
// it, families are sorted by name, and within a family each replica's
// samples keep their original order. Unreachable replicas are reported as
// `# fleet:` comments (and counted) rather than failing the whole scrape —
// a federated view that dies with its weakest member would be useless
// exactly when it matters.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"samnet/internal/obs"
)

// fleetScrapeTimeout bounds one federation pass; a replica slower than this
// to serve /metrics is reported unreachable for the scrape.
const fleetScrapeTimeout = 5 * time.Second

// replicaScrape is one replica's scrape outcome.
type replicaScrape struct {
	addr string
	body []byte
	err  error
}

func (g *Gateway) handleMetricsFleet(w http.ResponseWriter, r *http.Request) {
	var addrs []string
	for _, addr := range g.fleet.Replicas() {
		if g.fleet.Healthy(addr) {
			addrs = append(addrs, addr)
		}
	}
	if len(addrs) == 0 {
		g.writeError(w, http.StatusServiceUnavailable, "no healthy replicas")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), fleetScrapeTimeout)
	defer cancel()
	scrapes := make([]replicaScrape, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			scrapes[i] = replicaScrape{addr: addr}
			resp, err := g.client.do(ctx, http.MethodGet, addr+"/metrics", "", nil, false)
			if err != nil {
				scrapes[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				scrapes[i].err = statusError(resp)
				return
			}
			scrapes[i].body, scrapes[i].err = io.ReadAll(resp.Body)
		}(i, addr)
	}
	wg.Wait()

	g.metrics.fleetScrapes.Inc()
	for _, sc := range scrapes {
		if sc.err != nil {
			g.metrics.fleetScrapeErrs.Inc()
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if _, err := w.Write(mergeExpositions(scrapes)); err != nil {
		g.metrics.respErrs.Inc()
		g.logger.Warn("fleet metrics relay failed", "err", err)
	}
}

// sample is one exposition line attributed to its family and replica.
type sample struct {
	replica string
	line    string
}

// expoFamily accumulates one metric family across replicas.
type expoFamily struct {
	name    string
	help    string // first non-empty HELP wins
	typ     string // first TYPE wins
	samples []sample
}

// mergeExpositions merges per-replica Prometheus expositions into one
// document with a `replica` label injected on every sample:
//
//   - families (grouped by metric name, with _bucket/_sum/_count attributed
//     to their histogram family) carry HELP/TYPE once, sorted by name;
//   - within a family, samples keep per-replica order, replicas in scrape
//     (membership) order;
//   - failed scrapes surface as leading `# fleet:` comments.
//
// It is a pure function of its input, pinned by TestMergeExpositions.
func mergeExpositions(scrapes []replicaScrape) []byte {
	var buf bytes.Buffer
	families := make(map[string]*expoFamily)
	var order []string

	family := func(name string) *expoFamily {
		// A histogram's _bucket/_sum/_count series belong to the family
		// declared by its TYPE line; strip the suffix when that family is
		// already known so samples group under it.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok && families[trimmed] != nil {
				base = trimmed
				break
			}
		}
		f := families[base]
		if f == nil {
			f = &expoFamily{name: base}
			families[base] = f
			order = append(order, base)
		}
		return f
	}

	for _, sc := range scrapes {
		if sc.err != nil {
			fmt.Fprintf(&buf, "# fleet: replica %s unreachable: %s\n",
				sc.addr, strings.ReplaceAll(sc.err.Error(), "\n", " "))
			continue
		}
		for _, line := range strings.Split(string(sc.body), "\n") {
			line = strings.TrimRight(line, "\r")
			if line == "" {
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
				name, help, _ := strings.Cut(rest, " ")
				if f := family(name); f.help == "" {
					f.help = help
				}
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				name, typ, _ := strings.Cut(rest, " ")
				if f := family(name); f.typ == "" {
					f.typ = typ
				}
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue // other comments don't federate
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			f := family(name)
			f.samples = append(f.samples, sample{replica: sc.addr, line: line})
		}
	}

	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		if f.help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, f.help)
		}
		if f.typ != "" {
			fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.typ)
		}
		for _, s := range f.samples {
			buf.WriteString(injectReplicaLabel(s.line, s.replica))
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// injectReplicaLabel adds replica="<addr>" as the first label of one sample
// line, escaping the address per the 0.0.4 label-value rules.
func injectReplicaLabel(line, addr string) string {
	label := `replica="` + obs.EscapeLabelValue(addr) + `"`
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if strings.HasPrefix(rest, "{}") { // degenerate empty label set
		return name + "{" + label + "}" + rest[2:]
	}
	if strings.HasPrefix(rest, "{") {
		return name + "{" + label + "," + rest[1:]
	}
	return name + "{" + label + "}" + rest
}
