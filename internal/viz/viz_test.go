package viz

import (
	"strings"
	"testing"

	"samnet/internal/geom"
	"samnet/internal/routing"
	"samnet/internal/topology"
)

func TestRenderEmpty(t *testing.T) {
	topo := topology.New("empty", 1)
	if got := NewMap(topo).Render(); !strings.Contains(got, "empty topology") {
		t.Errorf("empty render = %q", got)
	}
}

func TestRenderGlyphs(t *testing.T) {
	topo := topology.New("t", 1.5)
	a := topo.AddNode(geom.Pt(0, 0))
	b := topo.AddNode(geom.Pt(1, 0))
	c := topo.AddNode(geom.Pt(2, 0))
	d := topo.AddNode(geom.Pt(3, 0))
	m := NewMap(topo)
	m.MarkSource(a)
	m.MarkDest(d)
	m.MarkAttackers(c)
	m.MarkRoute(routing.Route{a, b, c, d})
	out := m.Render()
	for _, g := range []string{"S", "D", "X", "o"} {
		if !strings.Contains(out, g) {
			t.Errorf("render missing glyph %q:\n%s", g, out)
		}
	}
	if !strings.Contains(out, "legend:") {
		t.Error("missing legend")
	}
}

func TestAttackerPrecedenceOverRoute(t *testing.T) {
	topo := topology.New("t", 1.5)
	a := topo.AddNode(geom.Pt(0, 0))
	m := NewMap(topo)
	m.MarkRoute(routing.Route{a})
	m.MarkAttackers(a)
	out := m.Render()
	if strings.ContainsRune(out[:strings.Index(out, "legend")], 'S') {
		t.Errorf("attacker glyph should override source:\n%s", out)
	}
	if !strings.ContainsRune(out, 'X') {
		t.Errorf("attacker missing:\n%s", out)
	}
}

// body strips the legend line so glyph counts only see the map.
func body(out string) string {
	if i := strings.Index(out, "legend:"); i >= 0 {
		return out[:i]
	}
	return out
}

func TestRenderClusterShape(t *testing.T) {
	net := topology.Cluster(1, 1)
	out := Network(net)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 4 node rows + legend.
	if len(lines) != 5 {
		t.Fatalf("cluster render has %d lines:\n%s", len(lines), out)
	}
	m := body(out)
	if strings.Count(m, "X") != 2 {
		t.Errorf("want 2 attacker glyphs:\n%s", out)
	}
	total := strings.Count(m, ".") + strings.Count(m, "X")
	if total != 42 {
		t.Errorf("rendered %d nodes, want 42:\n%s", total, out)
	}
}

func TestDiscoveryOverlay(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	route := routing.Route{net.SrcPool[0]}
	for _, id := range net.DstPool[:1] {
		route = append(route, id)
	}
	// Only endpoints marked; no attackers.
	out := Discovery(net, routing.Route{net.SrcPool[0], net.DstPool[0]})
	m := body(out)
	if !strings.Contains(m, "S") || !strings.Contains(m, "D") {
		t.Errorf("overlay missing endpoints:\n%s", out)
	}
	if strings.Contains(m, "X") {
		t.Error("no attackers expected")
	}
}

func TestRandomRenderIsBounded(t *testing.T) {
	net := topology.Uniform(10, 6, 1, 2)
	out := Network(net)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 10*2+2 && !strings.HasPrefix(line, "legend") {
			t.Errorf("line wider than grid: %q", line)
		}
	}
}
