// Package viz renders topologies and routes as ASCII maps — the terminal
// stand-in for the paper's topology figures (Figs. 1, 2, 9). Nodes are
// plotted on a character grid scaled to the topology's bounding box;
// attackers, sources, destinations and route members get distinct glyphs.
package viz

import (
	"fmt"
	"strings"

	"samnet/internal/geom"
	"samnet/internal/routing"
	"samnet/internal/topology"
)

// Glyphs used by the renderer, in increasing precedence: a cell keeps the
// highest-precedence glyph that lands on it.
const (
	GlyphEmpty    = ' '
	GlyphNode     = '.'
	GlyphRoute    = 'o'
	GlyphSource   = 'S'
	GlyphDest     = 'D'
	GlyphAttacker = 'X'
)

var precedence = map[rune]int{
	GlyphEmpty:    0,
	GlyphNode:     1,
	GlyphRoute:    2,
	GlyphSource:   3,
	GlyphDest:     3,
	GlyphAttacker: 4,
}

// Map is a configured renderer for one topology.
type Map struct {
	topo *topology.Topology
	// CellsPerUnit scales world units to grid columns (default 2 columns
	// and 1 row per unit, approximating terminal cell aspect ratio).
	CellsPerUnitX, CellsPerUnitY float64

	attackers map[topology.NodeID]bool
	sources   map[topology.NodeID]bool
	dests     map[topology.NodeID]bool
	onRoute   map[topology.NodeID]bool
}

// NewMap builds a renderer over topo.
func NewMap(topo *topology.Topology) *Map {
	return &Map{
		topo:          topo,
		CellsPerUnitX: 2,
		CellsPerUnitY: 1,
		attackers:     make(map[topology.NodeID]bool),
		sources:       make(map[topology.NodeID]bool),
		dests:         make(map[topology.NodeID]bool),
		onRoute:       make(map[topology.NodeID]bool),
	}
}

// MarkAttackers tags nodes with the attacker glyph.
func (m *Map) MarkAttackers(ids ...topology.NodeID) *Map {
	for _, id := range ids {
		m.attackers[id] = true
	}
	return m
}

// MarkSource / MarkDest tag endpoints.
func (m *Map) MarkSource(id topology.NodeID) *Map { m.sources[id] = true; return m }

// MarkDest tags a destination node.
func (m *Map) MarkDest(id topology.NodeID) *Map { m.dests[id] = true; return m }

// MarkRoute tags every intermediate node of a route.
func (m *Map) MarkRoute(r routing.Route) *Map {
	for _, id := range r {
		m.onRoute[id] = true
	}
	if len(r) > 0 {
		m.MarkSource(r[0])
		m.MarkDest(r[len(r)-1])
	}
	return m
}

func (m *Map) glyphFor(id topology.NodeID) rune {
	switch {
	case m.attackers[id]:
		return GlyphAttacker
	case m.sources[id]:
		return GlyphSource
	case m.dests[id]:
		return GlyphDest
	case m.onRoute[id]:
		return GlyphRoute
	default:
		return GlyphNode
	}
}

// Render draws the map. The y axis points up (row 0 is the top of the
// bounding box), matching how the paper draws its figures.
func (m *Map) Render() string {
	n := m.topo.N()
	if n == 0 {
		return "(empty topology)\n"
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = m.topo.Pos(topology.NodeID(i))
	}
	box := geom.Bounds(pts)
	cols := int(box.Width()*m.CellsPerUnitX) + 1
	rows := int(box.Height()*m.CellsPerUnitY) + 1

	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for c := range grid[r] {
			grid[r][c] = GlyphEmpty
		}
	}
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		p := m.topo.Pos(id)
		c := int((p.X - box.Min.X) * m.CellsPerUnitX)
		r := rows - 1 - int((p.Y-box.Min.Y)*m.CellsPerUnitY)
		if c < 0 || c >= cols || r < 0 || r >= rows {
			continue
		}
		g := m.glyphFor(id)
		if precedence[g] >= precedence[grid[r][c]] {
			grid[r][c] = g
		}
	}

	var b strings.Builder
	for _, row := range grid {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "legend: %c node  %c route  %c source  %c destination  %c attacker\n",
		GlyphNode, GlyphRoute, GlyphSource, GlyphDest, GlyphAttacker)
	return b.String()
}

// Network renders a topology.Network with its attacker pairs marked.
func Network(net *topology.Network) string {
	m := NewMap(net.Topo)
	for _, p := range net.AttackerPairs {
		m.MarkAttackers(p[0], p[1])
	}
	return m.Render()
}

// Discovery renders the network with one discovered route overlaid.
func Discovery(net *topology.Network, route routing.Route) string {
	m := NewMap(net.Topo)
	for _, p := range net.AttackerPairs {
		m.MarkAttackers(p[0], p[1])
	}
	m.MarkRoute(route)
	return m.Render()
}
