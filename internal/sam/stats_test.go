package sam

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.N != 0 || s.PMax != 0 || s.Phi != 0 || len(s.ByLink) != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestAnalyzeSingleRoute(t *testing.T) {
	s := Analyze([]routing.Route{{0, 1, 2}})
	if s.N != 2 {
		t.Errorf("N = %d", s.N)
	}
	if s.PMax != 0.5 {
		t.Errorf("PMax = %v", s.PMax)
	}
	// Both links appear once: tie at the top, so phi = 0.
	if s.Phi != 0 {
		t.Errorf("Phi = %v", s.Phi)
	}
}

func TestAnalyzeDominantLink(t *testing.T) {
	// Three routes all crossing the 5-6 "tunnel", with diverse other links.
	routes := []routing.Route{
		{0, 5, 6, 9},
		{1, 5, 6, 8},
		{2, 5, 6, 7},
	}
	s := Analyze(routes)
	if s.MaxLink != topology.MkLink(5, 6) {
		t.Errorf("MaxLink = %v", s.MaxLink)
	}
	if s.NMax != 3 || s.N2nd != 1 {
		t.Errorf("NMax/N2nd = %d/%d", s.NMax, s.N2nd)
	}
	if want := 3.0 / 9.0; math.Abs(s.PMax-want) > 1e-12 {
		t.Errorf("PMax = %v, want %v", s.PMax, want)
	}
	if want := 2.0 / 3.0; math.Abs(s.Phi-want) > 1e-12 {
		t.Errorf("Phi = %v, want %v", s.Phi, want)
	}
}

func TestAnalyzePhiZeroOnTie(t *testing.T) {
	// The paper's special case: two links sharing the maximum count.
	routes := []routing.Route{
		{0, 1, 2}, // links 0-1 and 1-2
		{0, 1, 2},
	}
	s := Analyze(routes)
	if s.Phi != 0 {
		t.Errorf("Phi = %v, want 0 on a tie", s.Phi)
	}
}

func TestAnalyzeCountsDirectionless(t *testing.T) {
	s := Analyze([]routing.Route{{0, 1}, {1, 0}})
	if len(s.ByLink) != 1 || s.ByLink[0].Count != 2 {
		t.Errorf("directionless counting broken: %+v", s.ByLink)
	}
}

func TestFrequenciesSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		var routes []routing.Route
		n := 1 + rng.IntN(10)
		for i := 0; i < n; i++ {
			hops := 1 + rng.IntN(6)
			r := routing.Route{topology.NodeID(rng.IntN(5))}
			for j := 0; j < hops; j++ {
				next := topology.NodeID(rng.IntN(20) + 5*(j+1))
				r = append(r, next)
			}
			routes = append(routes, r)
		}
		s := Analyze(routes)
		var sum float64
		for _, p := range s.Frequencies() {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestByLinkSortedDescending(t *testing.T) {
	routes := []routing.Route{{0, 1, 2, 3}, {0, 1, 2, 4}, {0, 1, 5}}
	s := Analyze(routes)
	for i := 1; i < len(s.ByLink); i++ {
		if s.ByLink[i].Count > s.ByLink[i-1].Count {
			t.Fatalf("ByLink not sorted: %+v", s.ByLink)
		}
	}
	if s.ByLink[0].Link != topology.MkLink(0, 1) {
		t.Errorf("top link = %v", s.ByLink[0].Link)
	}
}

func TestPMFOfStats(t *testing.T) {
	routes := []routing.Route{{0, 5, 6, 9}, {1, 5, 6, 8}}
	s := Analyze(routes)
	pmf := s.PMF(10)
	if pmf.Total != len(s.ByLink) {
		t.Errorf("PMF total = %d, want %d distinct links", pmf.Total, len(s.ByLink))
	}
}

func TestTopLinks(t *testing.T) {
	routes := []routing.Route{{0, 1, 2, 3}}
	s := Analyze(routes)
	if got := len(s.TopLinks(2)); got != 2 {
		t.Errorf("TopLinks(2) = %d entries", got)
	}
	if got := len(s.TopLinks(99)); got != 3 {
		t.Errorf("TopLinks(99) = %d entries", got)
	}
}

func TestOutlierLinks(t *testing.T) {
	routes := []routing.Route{
		{0, 5, 6, 9},
		{1, 5, 6, 8},
		{2, 5, 6, 7},
	}
	s := Analyze(routes)
	out := s.OutlierLinks(0.3)
	if len(out) != 1 || out[0].Link != topology.MkLink(5, 6) {
		t.Errorf("outliers = %+v", out)
	}
	if got := s.OutlierLinks(0.01); len(got) != len(s.ByLink) {
		t.Errorf("low cutoff should return everything, got %d", len(got))
	}
}

func TestStatsString(t *testing.T) {
	s := Analyze([]routing.Route{{0, 1, 2}})
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestAnalyzeInvariantsProperty(t *testing.T) {
	// For any route set: 0 <= phi <= 1, pmax in (0,1], N equals the summed
	// link counts, and MaxLink has the top count.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		var routes []routing.Route
		for i := 0; i < 1+rng.IntN(8); i++ {
			r := routing.Route{}
			for j := 0; j <= 1+rng.IntN(5); j++ {
				r = append(r, topology.NodeID(rng.IntN(12)))
			}
			routes = append(routes, r)
		}
		s := Analyze(routes)
		if s.N == 0 {
			return true
		}
		if s.Phi < 0 || s.Phi > 1 || s.PMax <= 0 || s.PMax > 1 {
			return false
		}
		total := 0
		for _, lc := range s.ByLink {
			if lc.Count > s.NMax {
				return false
			}
			total += lc.Count
		}
		return total == s.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocalizeUniqueMax(t *testing.T) {
	// Unique maximum: the suspect is simply the max link.
	s := Analyze([]routing.Route{
		{0, 5, 6, 9},
		{1, 5, 6, 8},
	})
	if s.Suspect != topology.MkLink(5, 6) {
		t.Errorf("suspect = %v", s.Suspect)
	}
}

func TestLocalizeTieFiltersEndpointLinks(t *testing.T) {
	// Every route is src -> x -> A1 -> A2 -> y -> dst: the source's first
	// link (src,x) ties with the tunnel (A1,A2) at count |R|, but being
	// incident to the source it must be discarded, leaving the tunnel.
	routes := []routing.Route{
		{0, 1, 5, 6, 7, 9},
		{0, 1, 5, 6, 8, 9},
	}
	// Counts: 0-1:2, 1-5:2, 5-6:2 all tie; 6-7,6-8,7-9,8-9 once each.
	s := Analyze(routes)
	if s.NMax != 2 {
		t.Fatalf("unexpected counts: %+v", s.ByLink)
	}
	// Tied chain along route 0: [0-1, 1-5, 5-6]; drop 0-1 (source-incident);
	// middle of [1-5, 5-6] is index 1 -> 5-6.
	if s.Suspect != topology.MkLink(5, 6) {
		t.Errorf("suspect = %v, want 5-6", s.Suspect)
	}
}

func TestLocalizeFullFunnelChain(t *testing.T) {
	// src adjacent to the wormhole entry x, dst adjacent to the exit y:
	// chain [src-x, x-A1, A1-A2, A2-y, y-dst]; endpoint-incident links are
	// dropped, leaving [x-A1, A1-A2, A2-y], whose middle is the tunnel.
	routes := []routing.Route{
		{0, 1, 5, 6, 7, 9},
	}
	s := Analyze(routes)
	// Single route: all 5 links tie at 1. Filtered: 1-5, 5-6, 6-7; middle
	// is 5-6.
	if s.Suspect != topology.MkLink(5, 6) {
		t.Errorf("suspect = %v, want the chain middle 5-6", s.Suspect)
	}
}

func TestLocalizeAllEndpointIncident(t *testing.T) {
	// Two-hop routes: every link touches src or dst; the fallback keeps the
	// ordered chain and accuses its middle.
	s := Analyze([]routing.Route{{0, 5, 9}})
	mid := topology.MkLink(5, 9) // ordered [0-5, 5-9], len 2, middle index 1
	if s.Suspect != mid {
		t.Errorf("suspect = %v, want %v", s.Suspect, mid)
	}
}

func TestLocalizeMatchesVerdictSuspects(t *testing.T) {
	routes := attackRoutesForStats()
	s := Analyze(routes)
	if s.Suspect != topology.MkLink(100, 101) {
		t.Errorf("suspect = %v", s.Suspect)
	}
}

// attackRoutesForStats mirrors detector_test's attackRoutes without
// depending on its file.
func attackRoutesForStats() []routing.Route {
	return []routing.Route{
		{0, 100, 101, 11, 19},
		{1, 100, 101, 12, 19},
		{2, 100, 101, 13, 19},
	}
}
