package sam

import (
	"samnet/internal/obs"
	"samnet/internal/routing"
	"samnet/internal/topology"
)

// Prober performs step 2 of the detection procedure: send test data packets
// along the given routes and report which returned an end-to-end ACK. The
// simulation-backed implementation lives in the experiment package; tests
// stub it.
type Prober interface {
	Probe(routes []routing.Route) []routing.ProbeResult
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(routes []routing.Route) []routing.ProbeResult

// Probe implements Prober.
func (f ProberFunc) Probe(routes []routing.Route) []routing.ProbeResult { return f(routes) }

// AttackReport is step 3's output: what the destination tells the security
// authority and the attackers' neighbors.
type AttackReport struct {
	// SuspectLink is the accused link (the tunnel) and Suspects its
	// endpoints — the malicious pair.
	SuspectLink topology.Link
	Suspects    [2]topology.NodeID
	// Lambda is the soft decision that triggered the report.
	Lambda float64
	// Confirmed is true when the probe step observed data loss on the
	// suspicious paths (or when the statistics alone crossed the attack
	// threshold).
	Confirmed bool
	// ProbesSent and ProbesFailed count step 2 activity (0/0 when the
	// verdict skipped probing).
	ProbesSent, ProbesFailed int
}

// Responder consumes attack reports — the response module of the IDS.
type Responder interface {
	ReportAttack(r AttackReport)
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(r AttackReport)

// ReportAttack implements Responder.
func (f ResponderFunc) ReportAttack(r AttackReport) { f(r) }

// Outcome is the result of running the three-step procedure on one route
// discovery.
type Outcome struct {
	Verdict Verdict
	// SelectedRoutes are the routes fed back to the source when the route
	// set is judged usable (step 1's "otherwise choose several paths").
	// Under a confirmed attack, routes containing the suspect link are
	// excluded first.
	SelectedRoutes []routing.Route
	// Report is non-nil when an attack was alerted (step 3).
	Report *AttackReport
}

// PipelineConfig tunes the three-step procedure.
type PipelineConfig struct {
	// MaxSelect is the number of maximally disjoint routes to feed back to
	// the source (default 2, as in the MR reply budget).
	MaxSelect int
	// MaxProbes bounds how many suspicious paths step 2 tests (default 3).
	MaxProbes int
	// UpdateProfile applies the adaptive low-pass update after each
	// evaluation (default true via NewPipeline).
	UpdateProfile bool
}

// Pipeline wires the three-step wormhole detection procedure (paper Fig. 3):
//
//  1. statistical analysis of the route set; anomaly? if not, select routes
//     and reply;
//  2. probe the suspicious paths with test data packets and wait for ACKs;
//  3. if the attack is confirmed, report it (security authority, neighbors
//     of the attackers) so the attackers can be isolated.
type Pipeline struct {
	Detector  *Detector
	Prober    Prober
	Responder Responder
	cfg       PipelineConfig
	// recorder, when set and enabled, captures one decision record per
	// Process (see SetRecorder in explain.go).
	recorder *obs.DecisionRing
}

// NewPipeline builds a pipeline. Prober and Responder may be nil: without a
// prober, suspicious verdicts escalate on statistics alone only when they
// cross the attack threshold; without a responder, reports are only
// returned, not delivered.
func NewPipeline(d *Detector, p Prober, r Responder, cfg PipelineConfig) *Pipeline {
	if cfg.MaxSelect == 0 {
		cfg.MaxSelect = 2
	}
	if cfg.MaxProbes == 0 {
		cfg.MaxProbes = 3
	}
	cfg.UpdateProfile = true
	return &Pipeline{Detector: d, Prober: p, Responder: r, cfg: cfg}
}

// SetUpdateProfile toggles the adaptive profile update (on by default).
func (p *Pipeline) SetUpdateProfile(on bool) { p.cfg.UpdateProfile = on }

// Process runs the procedure over one discovery's route set.
func (p *Pipeline) Process(routes []routing.Route) Outcome {
	s := Analyze(routes)
	v := p.Detector.Evaluate(s)
	p.record(v)
	out := Outcome{Verdict: v}

	switch v.Decision {
	case Normal:
		out.SelectedRoutes = routing.SelectDisjoint(routes, p.cfg.MaxSelect)

	case Suspicious:
		confirmed, sent, failed := p.probeSuspects(routes, v.SuspectLink)
		if confirmed {
			out.Report = p.report(v, true, sent, failed)
			out.SelectedRoutes = p.selectAvoiding(routes, v.SuspectLink)
		} else {
			// Probes came back clean: treat the route set as usable, per
			// Fig. 3's "under attack? N" branch.
			out.SelectedRoutes = routing.SelectDisjoint(routes, p.cfg.MaxSelect)
			out.Report = &AttackReport{
				SuspectLink: v.SuspectLink,
				Suspects:    v.Suspects,
				Lambda:      v.Lambda,
				Confirmed:   false,
				ProbesSent:  sent, ProbesFailed: failed,
			}
		}

	case Attacked:
		// Strong statistical evidence: alert outright, but still probe (if
		// we can) to enrich the report with payload-loss confirmation.
		sent, failed := 0, 0
		if p.Prober != nil {
			_, sent, failed = p.probeSuspects(routes, v.SuspectLink)
		}
		out.Report = p.report(v, true, sent, failed)
		out.SelectedRoutes = p.selectAvoiding(routes, v.SuspectLink)
	}

	if p.cfg.UpdateProfile {
		p.Detector.Update(s, v.Lambda)
	}
	return out
}

// probeSuspects sends test packets along up to MaxProbes routes containing
// the suspect link. Any missing ACK confirms the attack (the paper notes
// this also catches DoS relays that route correctly but drop data).
func (p *Pipeline) probeSuspects(routes []routing.Route, suspect topology.Link) (confirmed bool, sent, failed int) {
	if p.Prober == nil {
		return false, 0, 0
	}
	var targets []routing.Route
	for _, r := range routes {
		if r.ContainsLink(suspect) {
			targets = append(targets, r)
			if len(targets) == p.cfg.MaxProbes {
				break
			}
		}
	}
	if len(targets) == 0 {
		return false, 0, 0
	}
	results := p.Prober.Probe(targets)
	for _, res := range results {
		sent++
		if !res.Acked {
			failed++
		}
	}
	return failed > 0, sent, failed
}

// selectAvoiding picks feedback routes that avoid the accused link when any
// exist; otherwise it returns nothing (all paths compromised — the source
// must rediscover after isolation).
func (p *Pipeline) selectAvoiding(routes []routing.Route, suspect topology.Link) []routing.Route {
	var clean []routing.Route
	for _, r := range routes {
		if !r.ContainsLink(suspect) {
			clean = append(clean, r)
		}
	}
	return routing.SelectDisjoint(clean, p.cfg.MaxSelect)
}

func (p *Pipeline) report(v Verdict, confirmed bool, sent, failed int) *AttackReport {
	r := &AttackReport{
		SuspectLink:  v.SuspectLink,
		Suspects:     v.Suspects,
		Lambda:       v.Lambda,
		Confirmed:    confirmed,
		ProbesSent:   sent,
		ProbesFailed: failed,
	}
	if p.Responder != nil {
		p.Responder.ReportAttack(*r)
	}
	return r
}
