package sam

import (
	"samnet/internal/stats"
	"samnet/internal/topology"
)

// PMFDetector is the paper's alternative detection statistic (Section III):
// instead of thresholding p_max and phi, compare the full PMF of the
// per-link relative frequencies n/N against the trained normal-condition
// profile. "The distribution of n/N under normal condition may be obtained
// by approximation using the training set and act as a profile. Then the
// distribution of n/N obtained using real-time samples will be compared
// with the profile."
//
// Two comparisons back the decision:
//   - the total-variation distance between the live PMF and the profile PMF,
//   - the profile's own tail mass at the live p_max — "the probability of
//     high usage link" the paper says the PMF makes computable: if no normal
//     run ever produced a link this frequent, the live maximum is evidence
//     by itself.
type PMFDetector struct {
	profile *Profile
	// TVThreshold flags distributions farther than this from the profile
	// (default 0.5).
	TVThreshold float64
	// TailProb flags a live p_max whose probability under the profile is
	// below this (default 0.02).
	TailProb float64
}

// NewPMFDetector builds the alternative detector over a trained profile.
// tvThreshold and tailProb follow the package's ExplicitZero convention:
// zero selects the default, ExplicitZero selects a true zero (a zero
// TVThreshold condemns every sample by TV distance; a zero TailProb disables
// the tail test).
func NewPMFDetector(profile *Profile, tvThreshold, tailProb float64) *PMFDetector {
	if profile == nil {
		panic("sam: nil profile")
	}
	return &PMFDetector{
		profile:     profile,
		TVThreshold: resolve(tvThreshold, 0.5),
		TailProb:    resolve(tailProb, 0.02),
	}
}

// PMFVerdict reports the alternative detector's evaluation.
type PMFVerdict struct {
	Attacked bool
	// TV is the total-variation distance to the profile PMF.
	TV float64
	// TailMass is the profile's probability of seeing a link at least as
	// frequent as the live p_max.
	TailMass float64
	// ByTV and ByTail report which evidence triggered.
	ByTV, ByTail bool
	// SuspectLink mirrors Stats.Suspect.
	SuspectLink topology.Link
}

// Evaluate scores one route set's statistics.
func (d *PMFDetector) Evaluate(s Stats) PMFVerdict {
	var v PMFVerdict
	if s.N == 0 {
		return v
	}
	v.SuspectLink = s.Suspect
	v.TV = stats.TVDistance(s.PMF(d.profile.PMF.Bins()), d.profile.PMF)
	v.TailMass = d.profile.PMF.TailMass(s.PMax)
	v.ByTV = v.TV >= d.TVThreshold
	v.ByTail = v.TailMass < d.TailProb
	v.Attacked = v.ByTV || v.ByTail
	return v
}

// HighUsageProbability returns the trained probability that a link's
// relative frequency reaches at least p — the theoretical-analysis handle
// the paper highlights.
func (d *PMFDetector) HighUsageProbability(p float64) float64 {
	return d.profile.PMF.TailMass(p)
}
