package sam

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

// stubProber fails probes whose route crosses badLink.
type stubProber struct {
	badLink topology.Link
	calls   int
}

func (p *stubProber) Probe(routes []routing.Route) []routing.ProbeResult {
	p.calls++
	out := make([]routing.ProbeResult, len(routes))
	for i, r := range routes {
		out[i] = routing.ProbeResult{Route: r, Acked: !r.ContainsLink(p.badLink)}
	}
	return out
}

type captureResponder struct {
	reports []AttackReport
}

func (c *captureResponder) ReportAttack(r AttackReport) { c.reports = append(c.reports, r) }

func newPipeline(t *testing.T, prober Prober, resp Responder) *Pipeline {
	t.Helper()
	return NewPipeline(trainedDetector(t), prober, resp, PipelineConfig{})
}

func TestPipelineNormalSelectsRoutes(t *testing.T) {
	p := newPipeline(t, &stubProber{}, &captureResponder{})
	out := p.Process(normalRoutes(50))
	if out.Verdict.Decision != Normal {
		t.Fatalf("decision = %v", out.Verdict.Decision)
	}
	if out.Report != nil {
		t.Error("normal outcome should carry no report")
	}
	if len(out.SelectedRoutes) == 0 || len(out.SelectedRoutes) > 2 {
		t.Errorf("selected %d routes", len(out.SelectedRoutes))
	}
}

func TestPipelineAttackReportsAndAvoids(t *testing.T) {
	tunnel := topology.MkLink(100, 101)
	prober := &stubProber{badLink: tunnel}
	resp := &captureResponder{}
	p := newPipeline(t, prober, resp)

	routes := append(attackRoutes(), normalRoutes(0)...)
	out := p.Process(routes)
	if out.Report == nil || !out.Report.Confirmed {
		t.Fatalf("attack not reported: %+v", out.Verdict)
	}
	if out.Report.SuspectLink != tunnel {
		t.Errorf("suspect link = %v", out.Report.SuspectLink)
	}
	if len(resp.reports) != 1 {
		t.Errorf("responder received %d reports", len(resp.reports))
	}
	for _, r := range out.SelectedRoutes {
		if r.ContainsLink(tunnel) {
			t.Errorf("selected route %v crosses the accused link", r)
		}
	}
}

func TestPipelineSuspiciousConfirmedByProbe(t *testing.T) {
	// A mildly dominant link: suspicious but not outright attacked. The
	// failing probe should escalate it to a confirmed report.
	tunnel := topology.MkLink(100, 101)
	routes := []routing.Route{
		{0, 100, 101, 11, 19},
		{1, 100, 101, 12, 19},
		{2, 100, 101, 13, 19},
		{0, 1, 2, 3, 19},
		{0, 4, 5, 6, 19},
	}
	prober := &stubProber{badLink: tunnel}
	resp := &captureResponder{}
	p := newPipeline(t, prober, resp)
	out := p.Process(routes)
	if out.Verdict.Decision == Normal {
		t.Skip("detector judged this set normal; dominance too weak for this profile")
	}
	if out.Report == nil {
		t.Fatal("no report")
	}
	if !out.Report.Confirmed {
		t.Error("failing probes should confirm the attack")
	}
	if out.Report.ProbesSent == 0 || out.Report.ProbesFailed == 0 {
		t.Errorf("probe bookkeeping: %+v", out.Report)
	}
}

func TestPipelineSuspiciousCleanProbeKeepsRoutes(t *testing.T) {
	// Same mild anomaly, but the prober finds nothing wrong (e.g. a
	// legitimately popular link): pipeline should keep the routes and not
	// confirm.
	routes := []routing.Route{
		{0, 100, 101, 11, 19},
		{1, 100, 101, 12, 19},
		{2, 100, 101, 13, 19},
		{0, 1, 2, 3, 19},
		{0, 4, 5, 6, 19},
	}
	prober := &stubProber{} // no bad link: everything acks
	resp := &captureResponder{}
	p := newPipeline(t, prober, resp)
	out := p.Process(routes)
	switch out.Verdict.Decision {
	case Normal:
		t.Skip("detector judged this set normal")
	case Suspicious:
		if out.Report != nil && out.Report.Confirmed {
			t.Error("clean probes must not confirm")
		}
		if len(out.SelectedRoutes) == 0 {
			t.Error("clean-probe suspicious outcome should still select routes")
		}
		if len(resp.reports) != 0 {
			t.Error("unconfirmed suspicion must not reach the responder")
		}
	case Attacked:
		// Statistics alone crossed the attack threshold; acceptable.
	}
}

func TestPipelineWithoutProberStillAlertsOnStrongAttack(t *testing.T) {
	resp := &captureResponder{}
	p := newPipeline(t, nil, resp)
	out := p.Process(attackRoutes())
	if out.Verdict.Decision != Attacked {
		t.Skipf("strong attack judged %v under this profile", out.Verdict.Decision)
	}
	if out.Report == nil || !out.Report.Confirmed {
		t.Error("attack verdict should report even without a prober")
	}
}

func TestPipelineUpdatesProfile(t *testing.T) {
	p := newPipeline(t, nil, nil)
	// A normal-looking set whose pmax differs slightly from the trained
	// mean, so the low-pass update has somewhere to move.
	obs := append(normalRoutes(60), routing.Route{1200, 1201, 1202})
	pm0, _ := p.Detector.AdaptiveMeans()
	p.Process(obs)
	pm1, _ := p.Detector.AdaptiveMeans()
	if pm0 == pm1 {
		t.Error("normal processing should nudge the adaptive profile")
	}

	p.SetUpdateProfile(false)
	pm2, _ := p.Detector.AdaptiveMeans()
	p.Process(obs)
	pm3, _ := p.Detector.AdaptiveMeans()
	if pm2 != pm3 {
		t.Error("updates disabled but profile moved")
	}
}

func TestPipelineProbeBudget(t *testing.T) {
	tunnel := topology.MkLink(100, 101)
	var got int
	prober := ProberFunc(func(routes []routing.Route) []routing.ProbeResult {
		got = len(routes)
		out := make([]routing.ProbeResult, len(routes))
		for i, r := range routes {
			out[i] = routing.ProbeResult{Route: r, Acked: false}
		}
		return out
	})
	p := NewPipeline(trainedDetector(t), prober, nil, PipelineConfig{MaxProbes: 2})
	out := p.Process(attackRoutes())
	if out.Verdict.Decision == Normal {
		t.Skip("not anomalous under this profile")
	}
	if got > 2 {
		t.Errorf("probed %d routes, budget 2", got)
	}
	_ = tunnel
}

func TestAgentHistoryAndAlerts(t *testing.T) {
	tunnel := topology.MkLink(100, 101)
	a := NewAgent(19, newPipeline(t, &stubProber{badLink: tunnel}, nil))
	a.OnRouteDiscovery(normalRoutes(70))
	a.OnRouteDiscovery(attackRoutes())
	if len(a.History()) != 2 {
		t.Fatalf("history = %d", len(a.History()))
	}
	alerts := a.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].SuspectLink != tunnel {
		t.Errorf("alert link = %v", alerts[0].SuspectLink)
	}
}

func TestCoordinatorQuorum(t *testing.T) {
	c := NewCoordinator(2)
	rep := AttackReport{
		SuspectLink: topology.MkLink(100, 101),
		Suspects:    [2]topology.NodeID{100, 101},
		Confirmed:   true,
	}
	c.Submit(5, rep)
	if len(c.Blacklist()) != 0 {
		t.Error("single accusation below quorum should not blacklist")
	}
	c.Submit(5, rep) // same reporter again: still one distinct accuser
	if len(c.Blacklist()) != 0 {
		t.Error("repeat accusations from one agent must not satisfy quorum")
	}
	c.Submit(9, rep)
	bl := c.Blacklist()
	if len(bl) != 2 || bl[0] != 100 || bl[1] != 101 {
		t.Errorf("blacklist = %v", bl)
	}
	if !c.BlacklistSet()[100] {
		t.Error("BlacklistSet missing node")
	}
	if len(c.Reports()) != 3 {
		t.Errorf("reports = %d", len(c.Reports()))
	}
}

func TestCoordinatorIgnoresUnconfirmed(t *testing.T) {
	c := NewCoordinator(1)
	c.Submit(1, AttackReport{Suspects: [2]topology.NodeID{7, 8}, Confirmed: false})
	if len(c.Blacklist()) != 0 || len(c.Reports()) != 0 {
		t.Error("unconfirmed report must be ignored")
	}
}

func TestCoordinatorResponderFor(t *testing.T) {
	c := NewCoordinator(1)
	r := c.ResponderFor(3)
	r.ReportAttack(AttackReport{Suspects: [2]topology.NodeID{1, 2}, Confirmed: true})
	if len(c.Blacklist()) != 2 {
		t.Error("ResponderFor should submit to the coordinator")
	}
}

func TestCoordinatorConcurrentSubmissions(t *testing.T) {
	c := NewCoordinator(1)
	rep := AttackReport{
		SuspectLink: topology.MkLink(100, 101),
		Suspects:    [2]topology.NodeID{100, 101},
		Confirmed:   true,
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				c.Submit(topology.NodeID(g), rep)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(c.Reports()); got != 800 {
		t.Errorf("reports = %d, want 800", got)
	}
	if bl := c.Blacklist(); len(bl) != 2 {
		t.Errorf("blacklist = %v", bl)
	}
}
