package sam

import (
	"samnet/internal/topology"
)

// NeighborTables collects per-node neighbor claims — the "who do you hear"
// reports a neighbor-table-comparison check audits. Honest nodes report
// their radio neighborhood; colluding wormhole nodes also claim the tunnel
// (both endpoints corroborate it, so a mutual-claim check alone cannot see
// it). Two audits run over the claims:
//
//   - Corroborated: a link is believable only if both endpoints claim each
//     other. Fabricated links in forged route replies fail this — the
//     invented neighbor never claimed the forger.
//   - DetourHops: for a corroborated link, the hop distance between its
//     endpoints through the rest of the claimed graph. Radio links always
//     have short detours (their endpoints share a physical neighborhood); a
//     tunnel's endpoints are many honest hops apart, however loudly the
//     colluders corroborate the link itself.
type NeighborTables struct {
	claims map[topology.NodeID]map[topology.NodeID]bool
}

// NewNeighborTables returns an empty claim set.
func NewNeighborTables() *NeighborTables {
	return &NeighborTables{claims: make(map[topology.NodeID]map[topology.NodeID]bool)}
}

// RadioNeighborTables builds the honest baseline: every node claims exactly
// its radio (in-range) neighborhood, tunnels excluded.
func RadioNeighborTables(topo *topology.Topology) *NeighborTables {
	t := NewNeighborTables()
	n := topo.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if topo.InRange(topology.NodeID(a), topology.NodeID(b)) {
				t.ClaimLink(topology.NodeID(a), topology.NodeID(b))
			}
		}
	}
	return t
}

// Claim records that reporter lists neighbor in its neighbor table.
func (t *NeighborTables) Claim(reporter, neighbor topology.NodeID) {
	if reporter == neighbor {
		panic("sam: self neighbor claim")
	}
	m := t.claims[reporter]
	if m == nil {
		m = make(map[topology.NodeID]bool, 8)
		t.claims[reporter] = m
	}
	m[neighbor] = true
}

// ClaimLink records mutual claims for both endpoints — how colluding
// attackers corroborate their own tunnel, and how honest radio links enter
// the tables.
func (t *NeighborTables) ClaimLink(a, b topology.NodeID) {
	t.Claim(a, b)
	t.Claim(b, a)
}

// Corroborated reports whether a and b both claim each other.
func (t *NeighborTables) Corroborated(a, b topology.NodeID) bool {
	return t.claims[a][b] && t.claims[b][a]
}

// DetourHops returns the hop distance between l's endpoints through the
// corroborated claim graph with l itself removed — the length of the honest
// detour around the link. It returns -1 when no detour exists. Radio links
// detour in 2–3 hops on the paper's topologies; a corroborated tunnel can
// only detour over the many-hop honest path it shortcuts.
func (t *NeighborTables) DetourHops(l topology.Link) int {
	if l.A == l.B {
		return 0
	}
	// Plain BFS over the corroborated graph; claim sets are small (tens of
	// nodes), so no adjacency materialization is needed.
	dist := map[topology.NodeID]int{l.A: 0}
	queue := []topology.NodeID{l.A}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for y := range t.claims[x] {
			if !t.claims[y][x] {
				continue // uncorroborated: not a usable edge
			}
			if (x == l.A && y == l.B) || (x == l.B && y == l.A) {
				continue // the link under audit is excluded
			}
			if _, seen := dist[y]; seen {
				continue
			}
			dist[y] = dist[x] + 1
			if y == l.B {
				return dist[y]
			}
			queue = append(queue, y)
		}
	}
	return -1
}
