package sam

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

// FuzzAnalyze feeds Analyze arbitrary byte-derived route sets and checks its
// invariants never break: no panics, frequencies sum to 1, phi and p_max in
// range, and the suspect link (when N > 0) is one of the counted links.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 5, 6, 0})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 9})
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode: bytes are node ids; zero terminates a route.
		var routes []routing.Route
		var cur routing.Route
		for _, b := range data {
			if b == 0 {
				if len(cur) > 0 {
					routes = append(routes, cur)
					cur = nil
				}
				continue
			}
			cur = append(cur, topology.NodeID(b))
		}
		if len(cur) > 0 {
			routes = append(routes, cur)
		}

		s := Analyze(routes)
		if s.N == 0 {
			if s.PMax != 0 || s.Phi != 0 {
				t.Fatalf("empty stats carry values: %+v", s)
			}
			return
		}
		if s.PMax <= 0 || s.PMax > 1 || s.Phi < 0 || s.Phi > 1 {
			t.Fatalf("out-of-range statistics: %+v", s)
		}
		var sum float64
		found := false
		for _, lc := range s.ByLink {
			sum += lc.P
			if lc.Link == s.Suspect {
				found = true
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("frequencies sum to %v", sum)
		}
		if !found {
			t.Fatalf("suspect %v is not a counted link", s.Suspect)
		}
	})
}
