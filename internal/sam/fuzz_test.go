package sam

import (
	"encoding/json"
	"testing"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

// fuzzRoutes decodes bytes into a route set: bytes are node ids and zero
// terminates a route. A terminator with nothing pending emits an empty
// route, so degenerate shapes (empty routes, single-node routes) are
// reachable.
func fuzzRoutes(data []byte) []routing.Route {
	var routes []routing.Route
	var cur routing.Route
	for _, b := range data {
		if b == 0 {
			routes = append(routes, cur)
			cur = nil
			continue
		}
		cur = append(cur, topology.NodeID(b))
	}
	if len(cur) > 0 {
		routes = append(routes, cur)
	}
	return routes
}

// FuzzAnalyze feeds Analyze arbitrary byte-derived route sets and checks its
// invariants never break: no panics, frequencies sum to 1, phi and p_max in
// range, and the suspect link (when N > 0) is one of the counted links.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 5, 6, 0})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 9})
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3})
	// Degenerate shapes the detection service must survive: empty routes,
	// a lone single-node route, a route walking the same link back and
	// forth (duplicate links inside one route), a one-route set, and a set
	// where every route is the same.
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{7, 0})
	f.Add([]byte{1, 2, 1, 2, 1, 0})
	f.Add([]byte{3, 4, 5})
	f.Add([]byte{1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		routes := fuzzRoutes(data)

		s := Analyze(routes)
		if s.N == 0 {
			if s.PMax != 0 || s.Phi != 0 {
				t.Fatalf("empty stats carry values: %+v", s)
			}
			return
		}
		if s.PMax <= 0 || s.PMax > 1 || s.Phi < 0 || s.Phi > 1 {
			t.Fatalf("out-of-range statistics: %+v", s)
		}
		var sum float64
		found := false
		for _, lc := range s.ByLink {
			sum += lc.P
			if lc.Link == s.Suspect {
				found = true
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("frequencies sum to %v", sum)
		}
		if !found {
			t.Fatalf("suspect %v is not a counted link", s.Suspect)
		}
	})
}

// FuzzProfileJSON throws arbitrary documents at the profile decoder: decoding
// must never panic, and any document that decodes must survive a
// marshal/unmarshal round trip unchanged — the invariant the service's
// snapshot restore leans on for on-disk state.
func FuzzProfileJSON(f *testing.F) {
	f.Add(`{"label":"p","runs":2,"pmf_counts":[1,1],"pmf_total":2}`)
	f.Add(`{"label":"legacy","pmf_counts":[3],"pmf_total":3}`) // pre-Runs document
	f.Add(`{"label":"x","pmf_counts":[],"pmf_total":0}`)
	f.Add(`{"label":"x","pmf_counts":[-1],"pmf_total":-1}`)
	f.Add(`{"runs":-5,"pmf_counts":[1],"pmf_total":1}`)
	f.Add(`null`)
	f.Add(`{}`)
	f.Add(`{"pmax":{"Mean":1e308},"pmf_counts":[1],"pmf_total":1}`)
	f.Fuzz(func(t *testing.T, doc string) {
		var p Profile
		if err := json.Unmarshal([]byte(doc), &p); err != nil {
			return // refused documents are fine; they must just not panic
		}
		if p.PMF == nil || p.Runs < 0 {
			t.Fatalf("decoder accepted an invalid profile: %+v from %q", p, doc)
		}
		blob, err := json.Marshal(&p)
		if err != nil {
			t.Fatalf("accepted profile does not re-marshal: %v", err)
		}
		var back Profile
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("re-marshaled profile does not decode: %v (%s)", err, blob)
		}
		if back.Label != p.Label || back.Runs != p.Runs || back.PMF.Total != p.PMF.Total {
			t.Fatalf("profile changed across round trip: %+v vs %+v", back, p)
		}
	})
}

// FuzzTrainerDetector drives the full train-then-score path on byte-derived
// route sets: training must never panic, a trained profile must survive a
// JSON round trip, and every verdict must keep lambda and the adaptive
// update within their contracts — the same invariants the detection service
// leans on for untrusted inputs.
func FuzzTrainerDetector(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 1, 4, 3, 0}, []byte{1, 2, 3, 0, 1, 2, 3, 0})
	f.Add([]byte{}, []byte{5, 6})
	f.Add([]byte{7, 0, 0, 7, 8}, []byte{0})
	f.Add([]byte{1, 2, 1, 2, 1, 0, 3, 4, 0}, []byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, trainData, scoreData []byte) {
		tr := NewTrainer("fuzz", 0)
		tr.ObserveRoutes(fuzzRoutes(trainData))
		profile, err := tr.Profile()
		if err != nil {
			return // nothing informative observed; that's a valid outcome
		}

		blob, err := json.Marshal(profile)
		if err != nil {
			t.Fatalf("marshal trained profile: %v", err)
		}
		var back Profile
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("round-trip trained profile: %v", err)
		}
		if back.PMax.Mean != profile.PMax.Mean || back.PMF.Total != profile.PMF.Total {
			t.Fatalf("profile changed across JSON round trip: %+v vs %+v", back, *profile)
		}

		det := NewDetector(back.Clone(), DetectorConfig{})
		s := Analyze(fuzzRoutes(scoreData))
		v := det.Evaluate(s)
		if v.Lambda < 0 || v.Lambda > 1 {
			t.Fatalf("lambda %v out of [0,1]", v.Lambda)
		}
		if s.N == 0 && v.Decision != Normal {
			t.Fatalf("empty route set judged %v", v.Decision)
		}
		det.Update(s, v.Lambda)
		pmaxMean, phiMean := det.AdaptiveMeans()
		if pmaxMean < 0 || pmaxMean > 1 || phiMean < 0 || phiMean > 1 {
			t.Fatalf("adaptive means left [0,1]: pmax %v phi %v", pmaxMean, phiMean)
		}
	})
}
