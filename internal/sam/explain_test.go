package sam

import (
	"math/rand/v2"
	"testing"

	"samnet/internal/attack"
	"samnet/internal/obs"
	"samnet/internal/routing/mr"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func TestDetectorConfigWithDefaults(t *testing.T) {
	eff := DetectorConfig{}.WithDefaults()
	if eff.ZLow != 1.5 || eff.ZHigh != 4 || eff.TVLow != 0.3 || eff.TVHigh != 0.7 {
		t.Errorf("defaults not applied: %+v", eff)
	}
	if eff.SuspectLambda != 0.7 || eff.AttackLambda != 0.25 {
		t.Errorf("lambda partition defaults not applied: %+v", eff)
	}
	ez := DetectorConfig{MinStd: ExplicitZero, ZLow: ExplicitZero}.WithDefaults()
	if ez.MinStd != 0 || ez.ZLow != 0 {
		t.Errorf("ExplicitZero not resolved to 0: %+v", ez)
	}
}

func TestDecisionRecordFields(t *testing.T) {
	d := trainedDetector(t)
	st := Analyze(attackRoutes())
	v := d.Evaluate(st)
	rec := NewDecisionRecord("cluster", v, d.Config())

	if rec.Profile != "cluster" {
		t.Errorf("profile = %q", rec.Profile)
	}
	if rec.Routes != st.Routes || rec.N != st.N {
		t.Errorf("counts = %d/%d, want %d/%d", rec.Routes, rec.N, st.Routes, st.N)
	}
	if rec.PMax != st.PMax || rec.Phi != st.Phi {
		t.Errorf("statistics not echoed: %+v", rec)
	}
	if rec.ZLow != 1.5 || rec.ZHigh != 4 || rec.TVLow != 0.3 || rec.TVHigh != 0.7 {
		t.Errorf("thresholds = %+v", rec)
	}
	if rec.Suspect != (obs.DecisionLink{A: 100, B: 101}) {
		t.Errorf("suspect = %+v, want the tunnel 100-101", rec.Suspect)
	}
	if rec.Decision != v.Decision.String() || rec.Lambda != v.Lambda {
		t.Errorf("verdict not echoed: %+v", rec)
	}
	if len(rec.Links) != len(st.ByLink) {
		t.Fatalf("frequency table has %d rows, want %d", len(rec.Links), len(st.ByLink))
	}
	// The table must come over most-frequent-first, with the tunnel on top.
	if rec.Links[0] != (obs.DecisionLink{A: 100, B: 101, Count: st.NMax, P: st.PMax}) {
		t.Errorf("top link = %+v", rec.Links[0])
	}
	for i := 1; i < len(rec.Links); i++ {
		if rec.Links[i].Count > rec.Links[i-1].Count {
			t.Fatalf("frequency table not sorted at row %d", i)
		}
	}
}

// TestDecisionRecordLocalizesSimulatedWormhole runs the full stack on a real
// wormhole topology: train on clean MR discoveries over the paper's cluster
// grid, arm a wormhole, rediscover, and check the decision record names the
// tunnel link.
func TestDecisionRecordLocalizesSimulatedWormhole(t *testing.T) {
	const seed = 2005
	net := topology.Cluster(1, 2)
	proto := &mr.Protocol{}

	discover := func(sn *sim.Network, run uint64) Stats {
		src, dst := net.PickPair(rand.New(rand.NewPCG(seed, run)))
		d := proto.Discover(sn, src, dst)
		return Analyze(d.Routes)
	}

	tr := NewTrainer("cluster-1tier", 0)
	for run := uint64(0); run < 15; run++ {
		sn := sim.NewNetwork(net.Topo, sim.Config{Seed: seed + run})
		src, dst := net.PickPair(rand.New(rand.NewPCG(seed, run)))
		d := proto.Discover(sn, src, dst)
		tr.ObserveRoutes(d.Routes)
	}
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(prof, DetectorConfig{})

	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	tunnel := sc.TunnelLinks()[0]

	flagged, localized := 0, 0
	const runs = 10
	for run := uint64(100); run < 100+runs; run++ {
		sn := sim.NewNetwork(net.Topo, sim.Config{Seed: seed + run})
		sc.Arm(sn)
		st := discover(sn, run)
		v := det.Evaluate(st)
		rec := NewDecisionRecord(prof.Label, v, det.Config())
		if rec.Decision != Normal.String() {
			flagged++
			if rec.Suspect == (obs.DecisionLink{A: int(tunnel.A), B: int(tunnel.B)}) {
				localized++
			}
		}
	}
	if flagged < runs/2 {
		t.Fatalf("wormhole flagged in only %d/%d runs", flagged, runs)
	}
	if localized*2 < flagged {
		t.Errorf("tunnel %v localized in only %d/%d flagged runs", tunnel, localized, flagged)
	}
}

func TestPipelineRecorder(t *testing.T) {
	ring := obs.NewDecisionRing(8)
	p := NewPipeline(trainedDetector(t), nil, nil, PipelineConfig{})
	p.SetRecorder(ring)

	p.Process(normalRoutes(1))
	p.Process(attackRoutes())
	snap := ring.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("recorded %d decisions, want 2", len(snap))
	}
	if snap[0].Decision != "normal" {
		t.Errorf("first decision = %q", snap[0].Decision)
	}
	if snap[1].Decision == "normal" || snap[1].Suspect != (obs.DecisionLink{A: 100, B: 101}) {
		t.Errorf("attack decision = %+v", snap[1])
	}
	if snap[1].Profile != "test" {
		t.Errorf("profile label = %q, want the trained profile's label", snap[1].Profile)
	}

	// Disabled ring: Process must not record (and must not allocate a
	// record, pinned separately by the service's zero-alloc guard).
	ring.SetEnabled(false)
	p.Process(attackRoutes())
	if ring.Recorded() != 2 {
		t.Errorf("disabled ring recorded a decision")
	}
}
