// Package sam implements the paper's contribution: Statistical Analysis of
// Multi-path routing (SAM). Given the set R of routes obtained by one route
// discovery, SAM computes link-frequency statistics — the maximum relative
// frequency p_max and the normalized top-two gap phi — and compares them (and
// the full PMF of relative frequencies) against a profile trained under
// normal conditions. A wormhole makes its tunnel link appear in nearly every
// route, so both statistics jump; the most frequent link then localizes the
// attacker pair. No time synchronization, GPS, or protocol changes are
// needed: SAM consumes only information multi-path routing already collects.
package sam

import (
	"fmt"
	"slices"
	"sync"

	"samnet/internal/routing"
	"samnet/internal/stats"
	"samnet/internal/topology"
)

// LinkCount pairs a distinct link with its occurrence count n_i and relative
// frequency p_i = n_i/N.
type LinkCount struct {
	Link  topology.Link
	Count int
	P     float64
}

// Stats holds the statistics of one route set R, using the paper's notation:
// L is the set of distinct links, n_i the occurrences of link i, N the total
// (non-distinct) link count, p_i = n_i/N, PMax = max p_i, and
// Phi = (n_max - n_2nd) / n_max.
type Stats struct {
	Routes int // |R|
	N      int // total non-distinct links across R

	// ByLink lists every distinct link sorted by decreasing count (ties:
	// ascending link order), so ByLink[0] is the most frequent link.
	ByLink []LinkCount

	PMax    float64       // maximum relative frequency
	MaxLink topology.Link // the link achieving PMax
	NMax    int           // n_max
	N2nd    int           // n_2nd: highest count among other links
	Phi     float64       // (n_max - n_2nd)/n_max; 0 if N == 0

	// Suspect is the localization answer: the accused link. Usually it is
	// MaxLink, but when several links tie at the maximum (they then lie on
	// every route), links incident to the source or destination are
	// discarded — a bottleneck at an endpoint is expected, not evidence —
	// and the middle of the remaining chain is accused: a wormhole's entry
	// and exit links tie with the tunnel itself, and the tunnel sits
	// between them.
	Suspect topology.Link
}

// scratch holds the per-call working state of Analyze. Link counting is the
// hot path of every experiment run and every service request, so the count
// map is pooled and reused instead of reallocated per route set; only the
// ByLink slice (which the returned Stats owns) is freshly allocated.
type scratch struct {
	counts map[topology.Link]int
}

var scratchPool = sync.Pool{
	New: func() any { return &scratch{counts: make(map[topology.Link]int, 128)} },
}

// Analyze computes the SAM statistics of a route set.
func Analyze(routes []routing.Route) Stats {
	sc := scratchPool.Get().(*scratch)
	s := analyzeInto(sc, routes)
	clear(sc.counts)
	scratchPool.Put(sc)
	return s
}

// analyzeInto computes the statistics using sc's buffers. sc.counts must be
// empty on entry; the caller clears it afterwards.
func analyzeInto(sc *scratch, routes []routing.Route) Stats {
	var s Stats
	s.Routes = len(routes)
	counts := sc.counts
	// Count links in place rather than materializing a Route.Links() slice
	// per route.
	for _, r := range routes {
		for i := 0; i+1 < len(r); i++ {
			counts[topology.MkLink(r[i], r[i+1])]++
		}
		if len(r) > 1 {
			s.N += len(r) - 1
		}
	}
	if s.N == 0 {
		return s
	}
	s.ByLink = make([]LinkCount, 0, len(counts))
	for l, c := range counts {
		s.ByLink = append(s.ByLink, LinkCount{Link: l, Count: c, P: float64(c) / float64(s.N)})
	}
	slices.SortFunc(s.ByLink, func(a, b LinkCount) int {
		if a.Count != b.Count {
			return b.Count - a.Count
		}
		if a.Link.A != b.Link.A {
			return int(a.Link.A) - int(b.Link.A)
		}
		return int(a.Link.B) - int(b.Link.B)
	})
	top := s.ByLink[0]
	s.MaxLink = top.Link
	s.NMax = top.Count
	s.PMax = top.P
	if len(s.ByLink) > 1 {
		s.N2nd = s.ByLink[1].Count
	}
	// Phi = (n_max - n_2nd)/n_max. When two links tie for the maximum,
	// n_2nd == n_max and Phi = 0 — the paper's special case (attackers in
	// the same row/column as source or destination).
	s.Phi = float64(s.NMax-s.N2nd) / float64(s.NMax)
	s.Suspect = localize(routes, s)
	return s
}

// localize picks the accused link from the statistics. See Stats.Suspect.
func localize(routes []routing.Route, s Stats) topology.Link {
	ties := 0
	for _, lc := range s.ByLink {
		if lc.Count != s.NMax {
			break // ByLink is sorted by decreasing count
		}
		ties++
	}
	if ties == 1 {
		// The common case: a unique maximum needs no tie-breaking state.
		return s.MaxLink
	}
	top := make(map[topology.Link]bool, ties)
	for _, lc := range s.ByLink[:ties] {
		top[lc.Link] = true
	}
	// Every tied link appears n_max times; when n_max equals the route
	// count they all lie on every route, so the first route orders them.
	// Degenerate sets may open with empty or single-node routes that carry
	// no links; skip to the first route that can order anything.
	var ref routing.Route
	for _, r := range routes {
		if len(r) >= 2 {
			ref = r
			break
		}
	}
	if ref == nil {
		return s.MaxLink
	}
	src, dst := ref[0], ref[len(ref)-1]
	var ordered, filtered []topology.Link
	for i := 0; i+1 < len(ref); i++ {
		l := topology.MkLink(ref[i], ref[i+1])
		if !top[l] {
			continue
		}
		ordered = append(ordered, l)
		if l.A != src && l.B != src && l.A != dst && l.B != dst {
			filtered = append(filtered, l)
		}
	}
	switch {
	case len(filtered) > 0:
		return filtered[len(filtered)/2]
	case len(ordered) > 0:
		return ordered[len(ordered)/2]
	default:
		return s.MaxLink
	}
}

// Frequencies returns all relative frequencies p_i (the samples whose PMF
// Fig. 5 plots), in ByLink order.
func (s Stats) Frequencies() []float64 {
	out := make([]float64, len(s.ByLink))
	for i, lc := range s.ByLink {
		out[i] = lc.P
	}
	return out
}

// PMF bins the relative frequencies into a stats.PMF with the given bin
// count.
func (s Stats) PMF(bins int) *stats.PMF {
	p := stats.NewPMF(bins)
	for _, lc := range s.ByLink {
		p.Add(lc.P) // straight from ByLink: no Frequencies() slice
	}
	return p
}

// TopLinks returns the k most frequent links (fewer if not available).
func (s Stats) TopLinks(k int) []LinkCount {
	if k > len(s.ByLink) {
		k = len(s.ByLink)
	}
	return s.ByLink[:k]
}

// OutlierLinks returns every link whose relative frequency is at least
// cutoff. With multiple wormholes, each tunnel shows up as its own outlier;
// localization for Fig. 15 uses this.
func (s Stats) OutlierLinks(cutoff float64) []LinkCount {
	var out []LinkCount
	for _, lc := range s.ByLink {
		if lc.P >= cutoff {
			out = append(out, lc)
		} else {
			break // ByLink is sorted by decreasing count
		}
	}
	return out
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("routes=%d N=%d distinct=%d pmax=%.4f (link %s) phi=%.4f",
		s.Routes, s.N, len(s.ByLink), s.PMax, s.MaxLink, s.Phi)
}
