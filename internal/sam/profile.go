package sam

import (
	"encoding/json"
	"errors"
	"fmt"

	"samnet/internal/routing"
	"samnet/internal/stats"
)

// DefaultPMFBins is the binning used for link-frequency PMF profiles:
// 50 bins of width 2% over [0,1].
const DefaultPMFBins = 50

// Profile is the trained normal-condition profile the local detection
// module compares live statistics against. The paper trains it per
// (topology, transmission range, routing algorithm) because the nominal
// values of p_max and phi depend on all three.
type Profile struct {
	// Label records what the profile was trained on, e.g.
	// "cluster-1tier/MR".
	Label string

	// Runs is the number of training route sets the profile was built from;
	// it survives serialization so a preloaded profile still reports how
	// much data backs it.
	Runs int

	// PMax and Phi summarize the training distribution of the two features.
	PMax stats.Summary
	Phi  stats.Summary

	// PMF is the trained distribution of per-link relative frequencies
	// n_i/N under normal conditions.
	PMF *stats.PMF
}

// Trainer accumulates normal-condition route discoveries into a Profile.
type Trainer struct {
	label   string
	pmaxAcc stats.Accumulator
	phiAcc  stats.Accumulator
	pmf     *stats.PMF
}

// NewTrainer returns a trainer with the given label and PMF binning
// (bins <= 0 selects DefaultPMFBins).
func NewTrainer(label string, bins int) *Trainer {
	if bins <= 0 {
		bins = DefaultPMFBins
	}
	return &Trainer{label: label, pmf: stats.NewPMF(bins)}
}

// Observe folds the statistics of one normal-condition route set into the
// training state.
func (t *Trainer) Observe(s Stats) {
	if s.N == 0 {
		return // an empty discovery carries no information
	}
	t.pmaxAcc.Add(s.PMax)
	t.phiAcc.Add(s.Phi)
	t.pmf.AddAll(s.Frequencies())
}

// ObserveRoutes is shorthand for Observe(Analyze(routes)).
func (t *Trainer) ObserveRoutes(routes []routing.Route) { t.Observe(Analyze(routes)) }

// Runs returns how many route sets have been observed.
func (t *Trainer) Runs() int { return t.pmaxAcc.N() }

// Profile freezes the training state. It returns an error if no runs were
// observed: a detector cannot be built from nothing.
func (t *Trainer) Profile() (*Profile, error) {
	if t.pmaxAcc.N() == 0 {
		return nil, errors.New("sam: profile requires at least one training run")
	}
	return &Profile{
		Label: t.label,
		Runs:  t.pmaxAcc.N(),
		PMax:  t.pmaxAcc.Summarize(),
		Phi:   t.phiAcc.Summarize(),
		PMF:   t.pmf.Clone(),
	}, nil
}

// Clone returns a deep copy of p, sharing no mutable state with the
// original. A profile handed to concurrent readers (e.g. the detection
// service's store snapshots) should be cloned once per owner so a later
// retrain can never race an in-flight evaluation.
func (p *Profile) Clone() *Profile {
	c := *p
	if p.PMF != nil {
		c.PMF = p.PMF.Clone()
	}
	return &c
}

// profileJSON is the serialized form of a Profile. Runs is omitempty so
// profiles written before the field existed (and hand-built ones) still
// decode; they report zero training runs.
type profileJSON struct {
	Label     string        `json:"label"`
	Runs      int           `json:"runs,omitempty"`
	PMax      stats.Summary `json:"pmax"`
	Phi       stats.Summary `json:"phi"`
	PMFCounts []int         `json:"pmf_counts"`
	PMFTotal  int           `json:"pmf_total"`
}

// ErrNoPMF reports a marshal of a profile that carries no trained PMF — a
// zero-value or hand-built Profile. UnmarshalJSON rejects PMF-less documents,
// so refusing to emit one keeps every marshaled profile loadable.
var ErrNoPMF = errors.New("sam: profile has no PMF")

// MarshalJSON implements json.Marshaler. A profile without a PMF answers
// ErrNoPMF (wrapped by encoding/json in a *json.MarshalerError) instead of
// panicking on the nil dereference.
func (p *Profile) MarshalJSON() ([]byte, error) {
	if p.PMF == nil {
		return nil, fmt.Errorf("%w (label %q)", ErrNoPMF, p.Label)
	}
	return json.Marshal(profileJSON{
		Label:     p.Label,
		Runs:      p.Runs,
		PMax:      p.PMax,
		Phi:       p.Phi,
		PMFCounts: p.PMF.Counts,
		PMFTotal:  p.PMF.Total,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var j profileJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.PMFCounts) == 0 {
		return fmt.Errorf("sam: profile %q has no PMF bins", j.Label)
	}
	sum := 0
	for _, c := range j.PMFCounts {
		if c < 0 {
			return fmt.Errorf("sam: profile %q has negative PMF count", j.Label)
		}
		sum += c
	}
	if sum != j.PMFTotal {
		return fmt.Errorf("sam: profile %q PMF total %d does not match counts sum %d",
			j.Label, j.PMFTotal, sum)
	}
	if j.Runs < 0 {
		return fmt.Errorf("sam: profile %q has negative run count", j.Label)
	}
	p.Label = j.Label
	p.Runs = j.Runs
	p.PMax = j.PMax
	p.Phi = j.Phi
	p.PMF = &stats.PMF{Counts: j.PMFCounts, Total: j.PMFTotal}
	return nil
}
