package sam

import (
	"testing"
)

func trainedPMFDetector(t *testing.T) *PMFDetector {
	t.Helper()
	tr := NewTrainer("pmf-test", 0)
	for v := 0; v < 12; v++ {
		tr.ObserveRoutes(normalRoutes(v))
	}
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	return NewPMFDetector(prof, 0, 0)
}

func TestPMFDetectorNormal(t *testing.T) {
	d := trainedPMFDetector(t)
	v := d.Evaluate(Analyze(normalRoutes(99)))
	if v.Attacked {
		t.Errorf("normal routes flagged: %+v", v)
	}
}

func TestPMFDetectorFlagsWormhole(t *testing.T) {
	d := trainedPMFDetector(t)
	v := d.Evaluate(Analyze(attackRoutes()))
	if !v.Attacked {
		t.Fatalf("attack not flagged: %+v", v)
	}
	if !v.ByTail {
		t.Error("the isolated high-frequency link should trip the tail test")
	}
	if v.SuspectLink.A != 100 || v.SuspectLink.B != 101 {
		t.Errorf("suspect = %v", v.SuspectLink)
	}
}

func TestPMFDetectorEmpty(t *testing.T) {
	d := trainedPMFDetector(t)
	if v := d.Evaluate(Analyze(nil)); v.Attacked {
		t.Error("empty route set flagged")
	}
}

func TestHighUsageProbabilityMonotone(t *testing.T) {
	d := trainedPMFDetector(t)
	prev := 1.1
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.5} {
		got := d.HighUsageProbability(p)
		if got > prev {
			t.Errorf("tail mass rose from %v to %v at p=%v", prev, got, p)
		}
		prev = got
	}
	if d.HighUsageProbability(0) != 1 {
		t.Error("tail mass at 0 must be 1")
	}
}

func TestPMFDetectorNilProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil profile should panic")
		}
	}()
	NewPMFDetector(nil, 0, 0)
}

func TestPMFDetectorThresholdsRespected(t *testing.T) {
	tr := NewTrainer("x", 0)
	tr.ObserveRoutes(normalRoutes(0))
	prof, _ := tr.Profile()
	// Absurdly lax thresholds: nothing should trigger.
	lax := NewPMFDetector(prof, 2.0, -1)
	if v := lax.Evaluate(Analyze(attackRoutes())); v.Attacked {
		t.Errorf("lax thresholds still flagged: %+v", v)
	}
	// Hair-trigger TV threshold with the tail test disabled: the attack's
	// distribution shift must trip TV on its own.
	strict := NewPMFDetector(prof, 1e-9, -1)
	if v := strict.Evaluate(Analyze(attackRoutes())); !v.ByTV {
		t.Errorf("strict TV threshold did not trip: %+v", v)
	}
}

// TestPMFDetectorExplicitZero pins the ExplicitZero convention on the
// constructor: a plain zero selects the default, ExplicitZero a true zero —
// previously an explicit zero was silently coerced to the default, making
// "condemn on any TV distance" and "disable the tail test" unreachable.
func TestPMFDetectorExplicitZero(t *testing.T) {
	tr := NewTrainer("pmf-explicit-zero", 0)
	for v := 0; v < 12; v++ {
		tr.ObserveRoutes(normalRoutes(v))
	}
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}

	def := NewPMFDetector(prof, 0, 0)
	if def.TVThreshold != 0.5 || def.TailProb != 0.02 {
		t.Errorf("zero must select defaults, got tv=%v tail=%v", def.TVThreshold, def.TailProb)
	}

	zero := NewPMFDetector(prof, ExplicitZero, ExplicitZero)
	if zero.TVThreshold != 0 || zero.TailProb != 0 {
		t.Fatalf("ExplicitZero must resolve to 0, got tv=%v tail=%v", zero.TVThreshold, zero.TailProb)
	}
	v := zero.Evaluate(Analyze(attackRoutes()))
	if v.ByTail {
		t.Error("TailProb 0 must disable the tail test (no mass is below 0)")
	}
	if !v.ByTV {
		t.Error("TVThreshold 0 must condemn any nonzero TV distance")
	}
}
