package sam

import (
	"sort"
	"sync"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

// Agent is one node's IDS agent (paper Fig. 4): SAM as the data-collection
// and feature-extraction module feeding a local detection module, with a
// response module delivering alerts. Each node that acts as a destination
// runs one. Agents are independent; cooperation happens through a
// Coordinator. An Agent is safe for concurrent use: discoveries arriving
// from parallel workers are serialized through its mutex, which also
// protects the pipeline's stateful adaptive-profile update.
type Agent struct {
	Node     topology.NodeID
	mu       sync.Mutex
	pipeline *Pipeline
	history  []Outcome
}

// NewAgent builds an agent for node id around a detection pipeline.
func NewAgent(id topology.NodeID, p *Pipeline) *Agent {
	return &Agent{Node: id, pipeline: p}
}

// OnRouteDiscovery feeds the agent the route set its node collected as the
// destination of one route discovery, runs the three-step procedure, and
// records the outcome.
func (a *Agent) OnRouteDiscovery(routes []routing.Route) Outcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.pipeline.Process(routes)
	a.history = append(a.history, out)
	return out
}

// History returns a copy of every outcome the agent has produced, oldest
// first.
func (a *Agent) History() []Outcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Outcome(nil), a.history...)
}

// Alerts returns only the confirmed attack reports in the history.
func (a *Agent) Alerts() []AttackReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []AttackReport
	for _, o := range a.history {
		if o.Report != nil && o.Report.Confirmed {
			out = append(out, *o.Report)
		}
	}
	return out
}

// Coordinator aggregates attack reports from many agents — the cooperative
// half of the distributed IDS. A node accused by at least Quorum distinct
// reporting agents lands on the blacklist; isolation (removing it from
// routing) is then the network's move. Coordinator is safe for concurrent
// use by agents running in parallel experiment workers.
type Coordinator struct {
	mu sync.Mutex
	// Quorum is the number of distinct accusing agents required (default 1:
	// a single confirmed local detection suffices, as in the paper's
	// "report to security authority" step).
	Quorum    int
	accusers  map[topology.NodeID]map[topology.NodeID]bool // suspect -> set of reporters
	reports   []AttackReport
	reporters map[topology.NodeID]int
}

// NewCoordinator builds a coordinator with the given quorum (minimum 1).
func NewCoordinator(quorum int) *Coordinator {
	if quorum < 1 {
		quorum = 1
	}
	return &Coordinator{
		Quorum:    quorum,
		accusers:  make(map[topology.NodeID]map[topology.NodeID]bool),
		reporters: make(map[topology.NodeID]int),
	}
}

// Submit records a confirmed report from the given agent. Unconfirmed
// reports are ignored: suspicion alone must not blacklist a node.
func (c *Coordinator) Submit(reporter topology.NodeID, r AttackReport) {
	if !r.Confirmed {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports = append(c.reports, r)
	c.reporters[reporter]++
	for _, s := range r.Suspects {
		set := c.accusers[s]
		if set == nil {
			set = make(map[topology.NodeID]bool)
			c.accusers[s] = set
		}
		set[reporter] = true
	}
}

// ResponderFor returns a Responder that submits an agent's reports under its
// node id — the glue between a Pipeline and the Coordinator.
func (c *Coordinator) ResponderFor(reporter topology.NodeID) Responder {
	return ResponderFunc(func(r AttackReport) { c.Submit(reporter, r) })
}

// Blacklist returns the nodes accused by at least Quorum distinct agents,
// in ascending id order.
func (c *Coordinator) Blacklist() []topology.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []topology.NodeID
	for n, set := range c.accusers {
		if len(set) >= c.Quorum {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlacklistSet returns the blacklist as a set, convenient for topology
// exclusion.
func (c *Coordinator) BlacklistSet() map[topology.NodeID]bool {
	out := make(map[topology.NodeID]bool)
	for _, n := range c.Blacklist() {
		out[n] = true
	}
	return out
}

// Reports returns all confirmed reports received so far.
func (c *Coordinator) Reports() []AttackReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]AttackReport(nil), c.reports...)
}
