package sam

import (
	"samnet/internal/obs"
)

// WithDefaults returns the effective configuration: zero-valued fields
// replaced by their defaults and ExplicitZero fields resolved to true zeros,
// exactly as NewDetector would resolve them. Use it when the thresholds must
// be reported (decision records, explain responses) without holding a
// detector.
func (c DetectorConfig) WithDefaults() DetectorConfig {
	c.defaults()
	return c
}

// NewDecisionRecord flattens one verdict — and the statistics it judged —
// into the telemetry schema: the per-link frequency table, both feature
// statistics against the thresholds of cfg, the localized link, and the
// soft decision. profile names the trained profile the route set was scored
// against; cfg should be the detector's effective configuration
// (Detector.Config, or DetectorConfig.WithDefaults).
//
// The record is self-contained plain data: it allocates the Links table, so
// hot paths must guard construction behind DecisionRing.Enabled.
func NewDecisionRecord(profile string, v Verdict, cfg DetectorConfig) obs.Decision {
	d := obs.Decision{
		Profile: profile,
		Routes:  v.Stats.Routes,
		N:       v.Stats.N,
		PMax:    v.Stats.PMax,
		Phi:     v.Stats.Phi,
		TV:      v.TV,
		ZPMax:   v.ZPMax,
		ZPhi:    v.ZPhi,

		ZLow:          cfg.ZLow,
		ZHigh:         cfg.ZHigh,
		TVLow:         cfg.TVLow,
		TVHigh:        cfg.TVHigh,
		SuspectLambda: cfg.SuspectLambda,
		AttackLambda:  cfg.AttackLambda,

		Suspect:  obs.DecisionLink{A: int(v.Suspects[0]), B: int(v.Suspects[1])},
		Lambda:   v.Lambda,
		Decision: v.Decision.String(),
	}
	if n := len(v.Stats.ByLink); n > 0 {
		d.Links = make([]obs.DecisionLink, n)
		for i, lc := range v.Stats.ByLink {
			d.Links[i] = obs.DecisionLink{A: int(lc.Link.A), B: int(lc.Link.B), Count: lc.Count, P: lc.P}
		}
	}
	return d
}

// SetRecorder attaches a decision ring to the pipeline: every Process emits
// one decision record (labelled with the trained profile's label) while the
// ring is enabled. A nil or disabled ring costs one branch per Process and
// no allocation.
func (p *Pipeline) SetRecorder(r *obs.DecisionRing) { p.recorder = r }

// record captures v into the pipeline's ring when enabled.
func (p *Pipeline) record(v Verdict) {
	if !p.recorder.Enabled() {
		return
	}
	p.recorder.Record(NewDecisionRecord(p.Detector.Profile().Label, v, p.Detector.Config()))
}
