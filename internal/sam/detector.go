package sam

import (
	"fmt"
	"math"

	"samnet/internal/stats"
	"samnet/internal/topology"
)

// DetectorConfig tunes how the local detection module turns feature
// deviations into the soft decision lambda. The defaults reproduce the
// paper's qualitative behaviour; the ablation benchmark sweeps them.
type DetectorConfig struct {
	// ZLow and ZHigh map a feature z-score (deviation above the trained
	// mean, in trained standard deviations) to risk: risk is 0 at or below
	// ZLow and 1 at or above ZHigh, linear between. Defaults 1.5 and 4.
	ZLow, ZHigh float64
	// MinStd floors the trained standard deviation so a degenerate
	// (near-constant) training set cannot make the detector hair-triggered.
	// Default 0.02.
	MinStd float64
	// TVLow and TVHigh likewise map the total-variation distance between
	// the observed frequency PMF and the trained PMF to risk.
	// Defaults 0.3 and 0.7.
	TVLow, TVHigh float64
	// SuspectLambda and AttackLambda partition lambda into verdicts:
	// lambda <= AttackLambda is Attacked, lambda <= SuspectLambda is
	// Suspicious, otherwise Normal. Recall the paper's convention:
	// lambda = 0 means attacked with certainty, 1 means no attack.
	// Defaults 0.7 and 0.25.
	SuspectLambda, AttackLambda float64
	// Beta is the forgetting factor of the adaptive profile update
	// (equations 8 and 9), 0 < Beta < 1. Default 0.1. Beta has no
	// meaningful zero, so ExplicitZero does not apply to it.
	Beta float64
}

// ExplicitZero configures a DetectorConfig field to an effective value of
// zero. A literal 0 is the "use the default" sentinel, so fields that are
// meaningfully zero — MinStd: 0 disables the std floor, AttackLambda: 0
// reserves the Attacked verdict for lambda exactly 0, ZLow/TVLow: 0 start
// the risk ramps immediately — take this (or any negative value) instead.
const ExplicitZero = -1.0

// resolve maps a config field to its effective value: zero selects the
// default, negative (ExplicitZero) selects a true zero.
func resolve(v, def float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

func (c *DetectorConfig) defaults() {
	c.ZLow = resolve(c.ZLow, 1.5)
	c.ZHigh = resolve(c.ZHigh, 4)
	c.MinStd = resolve(c.MinStd, 0.02)
	c.TVLow = resolve(c.TVLow, 0.3)
	c.TVHigh = resolve(c.TVHigh, 0.7)
	c.SuspectLambda = resolve(c.SuspectLambda, 0.7)
	c.AttackLambda = resolve(c.AttackLambda, 0.25)
	if c.Beta == 0 {
		c.Beta = 0.1
	}
}

// Decision classifies one route set.
type Decision int

const (
	// Normal: statistics are consistent with the trained profile.
	Normal Decision = iota
	// Suspicious: anomalous enough to probe (step 2 of the procedure).
	Suspicious
	// Attacked: anomalous enough to raise the alert outright.
	Attacked
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Normal:
		return "normal"
	case Suspicious:
		return "suspicious"
	case Attacked:
		return "attacked"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// Verdict is the output of one detector evaluation.
type Verdict struct {
	Decision Decision
	// Lambda is the soft decision: 0 = attacked with absolute certainty,
	// 1 = no attack detected (the paper's convention).
	Lambda float64
	// ZPMax and ZPhi are the feature deviations in trained standard
	// deviations; TV is the PMF total-variation distance.
	ZPMax, ZPhi, TV float64
	// SuspectLink is the accused link (Stats.Suspect) — under attack, the
	// tunnel.
	SuspectLink topology.Link
	// Suspects are the endpoints of SuspectLink: the accused node pair.
	Suspects [2]topology.NodeID
	// Stats echoes the analyzed statistics.
	Stats Stats
}

// Detector is the SAM local-detection module: it scores live route-set
// statistics against a trained profile and keeps the profile's feature
// means adaptive via the paper's low-pass update.
type Detector struct {
	cfg DetectorConfig

	profile *Profile
	// pmaxMean and phiMean are the adaptive copies of the trained feature
	// means, updated by equations (8) and (9).
	pmaxMean, phiMean float64
}

// NewDetector builds a detector over a trained profile. cfg zero-values are
// filled with defaults.
func NewDetector(profile *Profile, cfg DetectorConfig) *Detector {
	if profile == nil {
		panic("sam: nil profile")
	}
	cfg.defaults()
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		panic("sam: Beta must be in (0,1)")
	}
	return &Detector{
		cfg:      cfg,
		profile:  profile,
		pmaxMean: profile.PMax.Mean,
		phiMean:  profile.Phi.Mean,
	}
}

// Config returns the effective configuration (defaults filled in).
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Profile returns the underlying trained profile.
func (d *Detector) Profile() *Profile { return d.profile }

// AdaptiveMeans returns the current low-pass-updated feature means.
func (d *Detector) AdaptiveMeans() (pmax, phi float64) { return d.pmaxMean, d.phiMean }

// SetAdaptiveMeans overwrites the adaptive feature means with values captured
// earlier by AdaptiveMeans, restoring the low-pass filter state (equations 8
// and 9) across a snapshot/restore cycle. Both features are relative
// frequencies, so values must be finite and in [0,1]; anything else panics —
// persisted state is validated by the caller before it reaches the detector.
func (d *Detector) SetAdaptiveMeans(pmax, phi float64) {
	if math.IsNaN(pmax) || pmax < 0 || pmax > 1 || math.IsNaN(phi) || phi < 0 || phi > 1 {
		panic("sam: adaptive means out of [0,1]")
	}
	d.pmaxMean = pmax
	d.phiMean = phi
}

// Evaluate scores one route set's statistics and returns the verdict.
// It does not update the adaptive profile; call Update with the verdict's
// lambda once the decision has been acted on.
func (d *Detector) Evaluate(s Stats) Verdict {
	v := Verdict{Stats: s, Lambda: 1}
	if s.N == 0 {
		// No routes at all: nothing to judge. (A total route failure is a
		// different alarm — the routing layer's, not SAM's.)
		v.Decision = Normal
		return v
	}
	v.SuspectLink = s.Suspect
	v.Suspects = [2]topology.NodeID{s.Suspect.A, s.Suspect.B}

	v.ZPMax = d.zScore(s.PMax, d.pmaxMean, d.profile.PMax.Std)
	v.ZPhi = d.zScore(s.Phi, d.phiMean, d.profile.Phi.Std)
	v.TV = stats.TVDistance(s.PMF(d.profile.PMF.Bins()), d.profile.PMF)

	riskP := ramp(v.ZPMax, d.cfg.ZLow, d.cfg.ZHigh)
	riskPhi := ramp(v.ZPhi, d.cfg.ZLow, d.cfg.ZHigh)
	riskTV := ramp(v.TV, d.cfg.TVLow, d.cfg.TVHigh)

	// p_max is the primary feature (it separates attacks in every topology
	// the paper tests, Fig. 10/13); phi and the PMF corroborate. Combine as
	// the maximum of the primary risk and the mean of the corroborating
	// pair, so a tied-maximum attack (phi = 0) is still caught by p_max.
	risk := math.Max(riskP, (riskPhi+riskTV)/2)
	v.Lambda = 1 - risk

	switch {
	case v.Lambda <= d.cfg.AttackLambda:
		v.Decision = Attacked
	case v.Lambda <= d.cfg.SuspectLambda:
		v.Decision = Suspicious
	default:
		v.Decision = Normal
	}
	return v
}

// Update applies the paper's adaptive profile update (equations 8 and 9):
//
//	mean_new = lambda*beta*observation + (1 - lambda*beta)*mean_old
//
// so that confidently-normal observations (lambda near 1) refresh the
// profile at rate beta, while attacked observations (lambda near 0) leave
// it untouched.
func (d *Detector) Update(s Stats, lambda float64) {
	if s.N == 0 {
		return
	}
	if lambda < 0 || lambda > 1 {
		panic("sam: lambda out of [0,1]")
	}
	w := lambda * d.cfg.Beta
	d.pmaxMean = w*s.PMax + (1-w)*d.pmaxMean
	d.phiMean = w*s.Phi + (1-w)*d.phiMean
}

func (d *Detector) zScore(obs, mean, std float64) float64 {
	if std < d.cfg.MinStd {
		std = d.cfg.MinStd
	}
	if std == 0 {
		// MinStd: ExplicitZero with a degenerate training set. Any
		// deviation from the mean is infinitely surprising; none is no
		// surprise at all. Keeps NaN out of the lambda computation.
		switch {
		case obs > mean:
			return math.Inf(1)
		case obs < mean:
			return math.Inf(-1)
		}
		return 0
	}
	return (obs - mean) / std
}

// ramp maps x linearly from [lo,hi] onto [0,1], clamping outside.
func ramp(x, lo, hi float64) float64 {
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	return (x - lo) / (hi - lo)
}
