package sam

import (
	"encoding/json"
	"math"
	"testing"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

// normalRoutes builds a spread-out route set: many distinct links, no
// dominant one.
func normalRoutes(variant int) []routing.Route {
	base := topology.NodeID(20 * variant)
	mk := func(ids ...int) routing.Route {
		r := make(routing.Route, len(ids))
		for i, id := range ids {
			r[i] = base + topology.NodeID(id)
		}
		return r
	}
	return []routing.Route{
		mk(0, 1, 2, 3, 19),
		mk(0, 4, 5, 6, 19),
		mk(0, 7, 8, 9, 19),
		mk(0, 1, 5, 9, 19),
		mk(0, 4, 8, 3, 19),
	}
}

// attackRoutes builds a route set where one link (100-101) dominates, as a
// wormhole tunnel does.
func attackRoutes() []routing.Route {
	return []routing.Route{
		{0, 100, 101, 11, 19},
		{1, 100, 101, 12, 19},
		{2, 100, 101, 13, 19},
		{3, 100, 101, 14, 19},
		{4, 100, 101, 15, 19},
		{5, 100, 101, 16, 19},
	}
}

func trainedDetector(t *testing.T) *Detector {
	t.Helper()
	tr := NewTrainer("test", 0)
	for v := 0; v < 12; v++ {
		tr.ObserveRoutes(normalRoutes(v))
	}
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	return NewDetector(prof, DetectorConfig{})
}

func TestTrainerRequiresRuns(t *testing.T) {
	tr := NewTrainer("empty", 0)
	if _, err := tr.Profile(); err == nil {
		t.Error("profile from zero runs should error")
	}
}

func TestTrainerIgnoresEmptyRouteSets(t *testing.T) {
	tr := NewTrainer("x", 0)
	tr.ObserveRoutes(nil)
	if tr.Runs() != 0 {
		t.Error("empty route set should not count as a run")
	}
}

func TestDetectorNormalIsNormal(t *testing.T) {
	d := trainedDetector(t)
	v := d.Evaluate(Analyze(normalRoutes(99)))
	if v.Decision != Normal {
		t.Errorf("decision = %v (lambda=%.3f zp=%.2f zphi=%.2f tv=%.2f)",
			v.Decision, v.Lambda, v.ZPMax, v.ZPhi, v.TV)
	}
	if v.Lambda < 0.9 {
		t.Errorf("lambda = %v, want near 1 for normal traffic", v.Lambda)
	}
}

func TestDetectorFlagsWormhole(t *testing.T) {
	d := trainedDetector(t)
	v := d.Evaluate(Analyze(attackRoutes()))
	if v.Decision == Normal {
		t.Fatalf("wormhole not flagged (lambda=%.3f zp=%.2f zphi=%.2f tv=%.2f)",
			v.Lambda, v.ZPMax, v.ZPhi, v.TV)
	}
	if v.Lambda > 0.7 {
		t.Errorf("lambda = %v, want low under attack", v.Lambda)
	}
	want := Analyze(attackRoutes()).MaxLink
	if v.SuspectLink != want {
		t.Errorf("suspect link = %v, want %v", v.SuspectLink, want)
	}
	if v.Suspects[0] != 100 || v.Suspects[1] != 101 {
		t.Errorf("suspects = %v, want the tunnel endpoints", v.Suspects)
	}
}

func TestDetectorEmptyRouteSet(t *testing.T) {
	d := trainedDetector(t)
	v := d.Evaluate(Analyze(nil))
	if v.Decision != Normal || v.Lambda != 1 {
		t.Errorf("empty evaluation = %+v", v)
	}
}

func TestLambdaMonotoneInDominance(t *testing.T) {
	// The more routes the tunnel captures, the lower lambda should go.
	d := trainedDetector(t)
	mkRoutes := func(tunnelShare int) []routing.Route {
		var rs []routing.Route
		for i := 0; i < tunnelShare; i++ {
			rs = append(rs, routing.Route{topology.NodeID(i), 100, 101, topology.NodeID(30 + i), 19})
		}
		for i := tunnelShare; i < 6; i++ {
			rs = append(rs, routing.Route{topology.NodeID(i), topology.NodeID(40 + i), topology.NodeID(50 + i), 19})
		}
		return rs
	}
	prev := 2.0
	for _, share := range []int{2, 4, 6} {
		v := d.Evaluate(Analyze(mkRoutes(share)))
		if v.Lambda > prev+1e-9 {
			t.Errorf("lambda rose from %.3f to %.3f as dominance grew", prev, v.Lambda)
		}
		prev = v.Lambda
	}
}

func TestUpdateAdaptsOnlyWhenNormal(t *testing.T) {
	d := trainedDetector(t)
	pm0, ph0 := d.AdaptiveMeans()

	// Attacked observation with lambda = 0: no movement at all.
	d.Update(Analyze(attackRoutes()), 0)
	pm1, ph1 := d.AdaptiveMeans()
	if pm1 != pm0 || ph1 != ph0 {
		t.Error("lambda=0 update must not move the profile")
	}

	// Normal observation with lambda = 1: moves by beta toward observation.
	obs := Analyze(normalRoutes(3))
	d.Update(obs, 1)
	pm2, _ := d.AdaptiveMeans()
	beta := d.Config().Beta
	want := beta*obs.PMax + (1-beta)*pm0
	if math.Abs(pm2-want) > 1e-12 {
		t.Errorf("update = %v, want %v (eq. 8)", pm2, want)
	}
}

func TestUpdateRejectsBadLambda(t *testing.T) {
	d := trainedDetector(t)
	defer func() {
		if recover() == nil {
			t.Error("lambda out of range should panic")
		}
	}()
	d.Update(Analyze(normalRoutes(0)), 1.5)
}

func TestUpdateIgnoresEmptyStats(t *testing.T) {
	d := trainedDetector(t)
	pm0, _ := d.AdaptiveMeans()
	d.Update(Analyze(nil), 1)
	pm1, _ := d.AdaptiveMeans()
	if pm0 != pm1 {
		t.Error("empty stats must not move the profile")
	}
}

func TestDetectorConfigValidation(t *testing.T) {
	tr := NewTrainer("x", 0)
	tr.ObserveRoutes(normalRoutes(0))
	prof, _ := tr.Profile()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("beta out of range should panic")
			}
		}()
		NewDetector(prof, DetectorConfig{Beta: 1.5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil profile should panic")
			}
		}()
		NewDetector(nil, DetectorConfig{})
	}()
}

// TestDetectorConfigZeroSemantics pins the two meanings of "zero" in
// DetectorConfig: a literal 0 selects the documented default, while
// ExplicitZero (any negative value) selects a true zero.
func TestDetectorConfigZeroSemantics(t *testing.T) {
	tr := NewTrainer("x", 0)
	tr.ObserveRoutes(normalRoutes(0))
	prof, _ := tr.Profile()

	def := NewDetector(prof, DetectorConfig{}).Config()
	want := DetectorConfig{
		ZLow: 1.5, ZHigh: 4, MinStd: 0.02,
		TVLow: 0.3, TVHigh: 0.7,
		SuspectLambda: 0.7, AttackLambda: 0.25, Beta: 0.1,
	}
	if def != want {
		t.Errorf("zero config resolved to %+v, want %+v", def, want)
	}

	got := NewDetector(prof, DetectorConfig{
		ZLow:   ExplicitZero,
		MinStd: ExplicitZero,
		TVLow:  ExplicitZero,
		// AttackLambda 0 would previously have been overwritten with the
		// default 0.25, making "alert only at lambda exactly 0" unreachable.
		AttackLambda: ExplicitZero,
	}).Config()
	if got.ZLow != 0 || got.MinStd != 0 || got.TVLow != 0 || got.AttackLambda != 0 {
		t.Errorf("ExplicitZero fields resolved to %+v, want true zeros", got)
	}
	// Fields left at literal zero alongside ExplicitZero ones still default.
	if got.ZHigh != 4 || got.TVHigh != 0.7 || got.SuspectLambda != 0.7 || got.Beta != 0.1 {
		t.Errorf("defaulted fields corrupted by ExplicitZero neighbours: %+v", got)
	}
	// Positive values pass through untouched.
	if c := NewDetector(prof, DetectorConfig{MinStd: 0.5}).Config(); c.MinStd != 0.5 {
		t.Errorf("explicit MinStd 0.5 resolved to %v", c.MinStd)
	}
}

// TestZScoreZeroStd: with the std floor disabled and a degenerate profile,
// z-scores must stay NaN-free so lambda remains a valid decision.
func TestZScoreZeroStd(t *testing.T) {
	d := &Detector{cfg: DetectorConfig{MinStd: 0}}
	if z := d.zScore(1, 1, 0); z != 0 {
		t.Errorf("zScore(obs==mean, std=0) = %v, want 0", z)
	}
	if z := d.zScore(2, 1, 0); !math.IsInf(z, 1) {
		t.Errorf("zScore(obs>mean, std=0) = %v, want +Inf", z)
	}
	if z := d.zScore(0, 1, 0); !math.IsInf(z, -1) {
		t.Errorf("zScore(obs<mean, std=0) = %v, want -Inf", z)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Normal:     "normal",
		Suspicious: "suspicious",
		Attacked:   "attacked",
	} {
		if d.String() != want {
			t.Errorf("String(%v) = %q", int(d), d.String())
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	tr := NewTrainer("cluster-1tier/MR", 25)
	for v := 0; v < 5; v++ {
		tr.ObserveRoutes(normalRoutes(v))
	}
	prof, _ := tr.Profile()
	blob, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != prof.Label || back.PMax != prof.PMax || back.Phi != prof.Phi {
		t.Error("round trip lost summaries")
	}
	if back.PMF.Total != prof.PMF.Total || back.PMF.Bins() != prof.PMF.Bins() {
		t.Error("round trip lost PMF")
	}
	if back.Runs != 5 {
		t.Errorf("round trip lost run count: got %d, want 5", back.Runs)
	}
}

// TestProfileJSONLegacyRuns: blobs written before the runs field existed
// still decode, reporting zero runs; negative counts are rejected.
func TestProfileJSONLegacyRuns(t *testing.T) {
	var p Profile
	legacy := `{"label":"x","pmf_counts":[1,2],"pmf_total":3}`
	if err := json.Unmarshal([]byte(legacy), &p); err != nil {
		t.Fatalf("legacy blob without runs should decode: %v", err)
	}
	if p.Runs != 0 {
		t.Errorf("legacy blob Runs = %d, want 0", p.Runs)
	}
	bad := `{"label":"x","runs":-3,"pmf_counts":[1,2],"pmf_total":3}`
	if err := json.Unmarshal([]byte(bad), &p); err == nil {
		t.Error("negative run count should be rejected")
	}
}

func TestProfileJSONRejectsCorrupt(t *testing.T) {
	var p Profile
	if err := json.Unmarshal([]byte(`{"label":"x","pmf_counts":[],"pmf_total":0}`), &p); err == nil {
		t.Error("no bins should be rejected")
	}
	if err := json.Unmarshal([]byte(`{"label":"x","pmf_counts":[1,2],"pmf_total":5}`), &p); err == nil {
		t.Error("mismatched total should be rejected")
	}
	if err := json.Unmarshal([]byte(`{"label":"x","pmf_counts":[-1,4],"pmf_total":3}`), &p); err == nil {
		t.Error("negative count should be rejected")
	}
}

func TestRamp(t *testing.T) {
	if ramp(0, 1, 3) != 0 || ramp(3, 1, 3) != 1 || ramp(2, 1, 3) != 0.5 {
		t.Error("ramp wrong")
	}
	if ramp(10, 1, 3) != 1 || ramp(-10, 1, 3) != 0 {
		t.Error("ramp clamp wrong")
	}
}
