package sam

import (
	"encoding/json"
	"errors"
	"testing"

	"samnet/internal/stats"
)

// TestMarshalNilPMF is the regression test for the nil-PMF marshal panic: a
// zero-value or hand-built profile must answer ErrNoPMF, not dereference the
// missing PMF. Clone already guarded the same field.
func TestMarshalNilPMF(t *testing.T) {
	for _, p := range []*Profile{
		{},
		{Label: "hand-built", Runs: 3, PMax: stats.Summary{N: 3, Mean: 0.2}},
	} {
		blob, err := json.Marshal(p)
		if err == nil {
			t.Fatalf("marshal of PMF-less profile %+v succeeded: %s", p, blob)
		}
		if !errors.Is(err, ErrNoPMF) {
			t.Errorf("marshal error = %v, want ErrNoPMF in the chain", err)
		}
	}

	// A profile embedded in a larger document hits the same path.
	if _, err := json.Marshal(struct {
		P *Profile `json:"p"`
	}{P: &Profile{}}); !errors.Is(err, ErrNoPMF) {
		t.Errorf("embedded marshal error = %v, want ErrNoPMF in the chain", err)
	}

	// Clone must keep tolerating the same shape.
	c := (&Profile{Label: "x"}).Clone()
	if c.Label != "x" || c.PMF != nil {
		t.Errorf("clone of PMF-less profile = %+v", c)
	}
}

