package sam

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// hubTables builds neighbor tables that corroborate every link of the given
// route sets and give each a short detour via a shared hub node — the
// honest-radio shape, where every link's endpoints share a neighborhood.
func hubTables(routeSets ...[]routing.Route) *NeighborTables {
	const hub = topology.NodeID(1 << 20)
	nt := NewNeighborTables()
	for _, routes := range routeSets {
		for _, r := range routes {
			for i := 0; i+1 < len(r); i++ {
				nt.ClaimLink(r[i], r[i+1])
				nt.ClaimLink(r[i], hub)
				nt.ClaimLink(r[i+1], hub)
			}
		}
	}
	return nt
}

// honestTimes returns per-route timings at exactly one nominal hop delay per
// hop.
func honestTimes(routes []routing.Route) []sim.Time {
	ts := make([]sim.Time, len(routes))
	for i, r := range routes {
		ts[i] = sim.Time(r.Hops())
	}
	return ts
}

func trainedHybrid(t *testing.T, nt *NeighborTables, cfg HybridConfig) *HybridDetector {
	t.Helper()
	tr := NewTrainer("hybrid-test", 0)
	for v := 0; v < 12; v++ {
		tr.ObserveRoutes(normalRoutes(v))
	}
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	return NewHybridDetector(prof, nt, cfg)
}

func TestHybridNormalStaysQuiet(t *testing.T) {
	routes := normalRoutes(99)
	h := trainedHybrid(t, hubTables(routes), HybridConfig{})
	v := h.Evaluate(Analyze(routes), routes, honestTimes(routes))
	if v.Attacked {
		t.Fatalf("normal routes flagged: %+v", v)
	}
	if v.ByZ || v.ByNeighbor || v.ByDelay {
		t.Errorf("side channels fired on honest evidence: %+v", v)
	}
}

func TestHybridFlagsClassicWormholeByFrequency(t *testing.T) {
	routes := attackRoutes()
	// Corroborate even the tunnel (colluders do) and give it a short detour:
	// the frequency channels must still catch the classic spike on their own.
	h := trainedHybrid(t, hubTables(routes), HybridConfig{})
	v := h.Evaluate(Analyze(routes), routes, honestTimes(routes))
	if !v.Attacked || !(v.BySAM || v.ByPMF || v.ByZ) {
		t.Errorf("classic frequency spike not caught: %+v", v)
	}
}

func TestHybridFlagsUncorroboratedLink(t *testing.T) {
	routes := normalRoutes(0)
	nt := hubTables(routes)
	// One more route claims a link whose far end never claimed back — a
	// forged reply's fabricated relay.
	forged := routing.Route{0, 777, 19}
	routes = append(routes, forged)
	nt.Claim(0, 777) // one-sided: node 777 does not answer

	h := trainedHybrid(t, nt, HybridConfig{})
	v := h.Evaluate(Analyze(routes), routes, nil)
	if !v.ByNeighbor || !v.Attacked {
		t.Fatalf("fabricated link not flagged: %+v", v)
	}
	if len(v.SuspectLinks) == 0 {
		t.Error("suspect links should name the fabricated link")
	}
}

func TestHybridFlagsLongDetourTunnel(t *testing.T) {
	// A corroborated shortcut 200-206 across a 6-hop line of colluders: both
	// endpoints claim the link (as wormhole endpoints do), but the only
	// detour around it is the line itself — a wormhole's signature.
	nt := hubTables(normalRoutes(0))
	for i := topology.NodeID(200); i < 206; i++ {
		nt.ClaimLink(i, i+1)
	}
	nt.ClaimLink(200, 206)

	routes := append(normalRoutes(0), routing.Route{200, 206})
	h := trainedHybrid(t, nt, HybridConfig{})
	v := h.Evaluate(Analyze(routes), routes, nil)
	if !v.ByNeighbor || !v.Attacked {
		t.Fatalf("long-detour tunnel not flagged: %+v", v)
	}
}

func TestHybridFlagsDelayOutliers(t *testing.T) {
	routes := normalRoutes(0)
	h := trainedHybrid(t, hubTables(routes), HybridConfig{})

	slow := honestTimes(routes)
	slow[0] *= 3 // one route paid tunnel store-and-forward cost
	v := h.Evaluate(Analyze(routes), routes, slow)
	if !v.ByDelay || v.SlowRoutes != 1 {
		t.Fatalf("slow route not flagged: %+v", v)
	}

	fast := honestTimes(routes)
	fast[1] = -2 // a forged reply lands before the flood even ends
	v = h.Evaluate(Analyze(routes), routes, fast)
	if !v.ByDelay || v.FastRoutes != 1 {
		t.Fatalf("fast route not flagged: %+v", v)
	}

	if v = h.Evaluate(Analyze(routes), routes, nil); v.ByDelay {
		t.Error("nil times must disable the delay check")
	}
}

func TestHybridNilNeighborsDisablesCheck(t *testing.T) {
	routes := append(normalRoutes(0), routing.Route{0, 777, 19})
	h := trainedHybrid(t, nil, HybridConfig{})
	if v := h.Evaluate(Analyze(routes), routes, nil); v.ByNeighbor {
		t.Error("nil tables must disable the neighbor check")
	}
}

func TestHybridConfigExplicitZero(t *testing.T) {
	h := trainedHybrid(t, nil, HybridConfig{
		TVThreshold:     ExplicitZero,
		TailProb:        ExplicitZero,
		SlowHopRatio:    ExplicitZero,
		FastHopRatio:    ExplicitZero,
		NominalHopDelay: sim.Time(ExplicitZero),
	})
	cfg := h.Config()
	if cfg.TVThreshold != 0 || cfg.TailProb != 0 || cfg.SlowHopRatio != 0 ||
		cfg.FastHopRatio != 0 || cfg.NominalHopDelay != 0 {
		t.Errorf("ExplicitZero fields did not resolve to zero: %+v", cfg)
	}

	def := trainedHybrid(t, nil, HybridConfig{}).Config()
	if def.TVThreshold != 0.5 || def.TailProb != 0.02 || def.DetourHops != 4 ||
		def.SlowHopRatio != 1.2 || def.FastHopRatio != 0.6 || def.NominalHopDelay != 1.05 {
		t.Errorf("defaults wrong: %+v", def)
	}
}

func TestNeighborTablesCorroboration(t *testing.T) {
	nt := NewNeighborTables()
	nt.Claim(1, 2)
	if nt.Corroborated(1, 2) {
		t.Error("one-sided claim must not corroborate")
	}
	nt.Claim(2, 1)
	if !nt.Corroborated(1, 2) || !nt.Corroborated(2, 1) {
		t.Error("mutual claims corroborate in both orders")
	}
	defer func() {
		if recover() == nil {
			t.Error("self-claim should panic")
		}
	}()
	nt.Claim(3, 3)
}

func TestNeighborTablesDetourHops(t *testing.T) {
	nt := NewNeighborTables()
	// Triangle 1-2-3: removing any edge leaves a 2-hop detour.
	nt.ClaimLink(1, 2)
	nt.ClaimLink(2, 3)
	nt.ClaimLink(1, 3)
	if d := nt.DetourHops(topology.MkLink(1, 3)); d != 2 {
		t.Errorf("triangle detour = %d, want 2", d)
	}
	// An isolated edge has no detour at all.
	nt.ClaimLink(8, 9)
	if d := nt.DetourHops(topology.MkLink(8, 9)); d != -1 {
		t.Errorf("isolated edge detour = %d, want -1", d)
	}
	// Uncorroborated edges are not usable as detour hops.
	nt2 := NewNeighborTables()
	nt2.ClaimLink(1, 2)
	nt2.Claim(1, 4)
	nt2.Claim(4, 2) // 1-4-2 exists only as one-sided claims
	if d := nt2.DetourHops(topology.MkLink(1, 2)); d != -1 {
		t.Errorf("one-sided detour accepted: %d", d)
	}
}

func TestRadioNeighborTablesMatchesInRange(t *testing.T) {
	net := topology.Cluster(1, 1)
	w := topology.MkLink(net.AttackerPairs[0][0], net.AttackerPairs[0][1])
	net.Topo.AddExtraLink(w.A, w.B)
	defer net.Topo.RemoveExtraLink(w.A, w.B)

	nt := RadioNeighborTables(net.Topo)
	if nt.Corroborated(w.A, w.B) {
		t.Error("tunnel link must not enter honest radio tables")
	}
	n := net.Topo.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			ida, idb := topology.NodeID(a), topology.NodeID(b)
			if net.Topo.InRange(ida, idb) != nt.Corroborated(ida, idb) {
				t.Fatalf("radio tables disagree with InRange at (%d,%d)", a, b)
			}
		}
	}
}
