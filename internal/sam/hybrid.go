package sam

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// HybridConfig tunes the hybrid detector. Zero values select defaults; the
// float fields follow the package's ExplicitZero convention.
type HybridConfig struct {
	// Detector configures the fused SAM module (z ramps, lambda cuts); its
	// ZHigh also serves as the per-link z-score alarm level.
	Detector DetectorConfig
	// TVThreshold and TailProb configure the PMF component (see
	// NewPMFDetector; defaults 0.5 and 0.02, ExplicitZero for true zeros).
	TVThreshold, TailProb float64
	// DetourHops is the corroborated-detour length at which a claimed link
	// counts as a wormhole: honest radio links on the paper's topologies
	// detour around themselves in at most 3 hops, so the default is 4.
	// Non-positive selects the default.
	DetourHops int
	// SlowHopRatio flags a route whose per-hop latency exceeds this multiple
	// of NominalHopDelay — tunnel store-and-forward cost surfacing in the
	// discovery timing (default 1.2; honest jitter tops out well under it,
	// while even one slow tunnel crossing pushes a route past it). FastHopRatio
	// flags latencies below
	// that multiple — replies that arrived faster than radio allows, i.e.
	// forged mid-flood (default 0.6). ExplicitZero for true zeros.
	SlowHopRatio, FastHopRatio float64
	// NominalHopDelay is the expected honest per-hop latency the delay
	// check normalizes by (default 1.05: unit hop delay plus mean jitter).
	// ExplicitZero for a zero-delay network.
	NominalHopDelay sim.Time
}

func (c *HybridConfig) defaults() {
	c.Detector.defaults()
	c.TVThreshold = resolve(c.TVThreshold, 0.5)
	c.TailProb = resolve(c.TailProb, 0.02)
	if c.DetourHops <= 0 {
		c.DetourHops = 4
	}
	c.SlowHopRatio = resolve(c.SlowHopRatio, 1.2)
	c.FastHopRatio = resolve(c.FastHopRatio, 0.6)
	c.NominalHopDelay = sim.Time(resolve(float64(c.NominalHopDelay), 1.05))
}

// HybridVerdict is the hybrid detector's evaluation: the fused decision plus
// which evidence channels fired.
type HybridVerdict struct {
	// Attacked is the fused decision: any channel's alarm condemns the set.
	Attacked bool
	// BySAM: the frequency detector's own hard verdict (Decision ==
	// Attacked). ByPMF: the PMF total-variation/tail test. ByZ: some link's
	// frequency sits ZHigh trained deviations above the trained p_max mean
	// (a per-link generalization of SAM's primary z-score — it also catches
	// secondary tunnels that are not the maximum). ByNeighbor: neighbor-
	// table comparison found an uncorroborated (fabricated) link or a
	// corroborated link whose honest detour is DetourHops or longer (a
	// tunnel). ByDelay: some route's per-hop timing fell outside the
	// [FastHopRatio, SlowHopRatio] band around the nominal hop delay.
	BySAM, ByPMF, ByZ, ByNeighbor, ByDelay bool
	// SAM and PMF echo the component verdicts.
	SAM Verdict
	PMF PMFVerdict
	// SuspectLinks are the links condemned by neighbor-table evidence, in
	// decreasing frequency order.
	SuspectLinks []topology.Link
	// SlowRoutes and FastRoutes count the routes outside the timing band.
	SlowRoutes, FastRoutes int
}

// HybridDetector fuses SAM's frequency statistics with three independent
// evidence channels — a per-link z-score, a neighbor-table comparison
// (mutual corroboration plus detour-length audit), and a delay-consistency
// check over route-discovery timings. Complex adversaries can flatten the
// frequency signal (relay chains split it, adaptive throttling starves it,
// forgery diversifies it) but each evasion leaks through another channel:
// chains and adaptive tunnels still claim links with implausibly long
// honest detours and cost tunnel latency; forged links are never
// corroborated and their replies arrive faster than radio allows.
type HybridDetector struct {
	cfg       HybridConfig
	det       *Detector
	pmf       *PMFDetector
	neighbors *NeighborTables
}

// NewHybridDetector builds the hybrid over a trained profile and the claimed
// neighbor tables. neighbors may be nil, disabling the neighbor check.
func NewHybridDetector(profile *Profile, neighbors *NeighborTables, cfg HybridConfig) *HybridDetector {
	if profile == nil {
		panic("sam: nil profile")
	}
	cfg.defaults()
	tv, tail := cfg.TVThreshold, cfg.TailProb
	// NewPMFDetector resolves its own defaults; forward true zeros as
	// ExplicitZero so the resolved config round-trips.
	if tv == 0 {
		tv = ExplicitZero
	}
	if tail == 0 {
		tail = ExplicitZero
	}
	return &HybridDetector{
		cfg:       cfg,
		det:       NewDetector(profile, cfg.Detector),
		pmf:       NewPMFDetector(profile, tv, tail),
		neighbors: neighbors,
	}
}

// Config returns the effective configuration (defaults filled in).
func (h *HybridDetector) Config() HybridConfig { return h.cfg }

// Detector returns the embedded frequency detector (for adaptive updates).
func (h *HybridDetector) Detector() *Detector { return h.det }

// Evaluate scores one route set. s must be Analyze(routes); times, when
// non-nil, holds each route's discovery latency parallel to routes —
// destination arrival times for collected routes, or reply time minus
// Discovery.FloodEnd for reply sets (forged replies then show negative
// elapsed time and fall out of the fast band). A nil times skips the delay
// check.
func (h *HybridDetector) Evaluate(s Stats, routes []routing.Route, times []sim.Time) HybridVerdict {
	v := HybridVerdict{
		SAM: h.det.Evaluate(s),
		PMF: h.pmf.Evaluate(s),
	}
	v.BySAM = v.SAM.Decision == Attacked
	v.ByPMF = v.PMF.Attacked
	if s.N == 0 {
		return v
	}

	// Per-link z-score: every link's frequency against the trained p_max
	// profile, not just the maximum — the frequency spike of a secondary
	// tunnel is evidence even when another link tops it.
	pmaxMean, _ := h.det.AdaptiveMeans()
	for _, lc := range s.ByLink {
		if h.det.zScore(lc.P, pmaxMean, h.det.profile.PMax.Std) >= h.cfg.Detector.ZHigh {
			v.ByZ = true
		}
	}

	// Neighbor-table comparison over every link the route set claims.
	if h.neighbors != nil {
		for _, lc := range s.ByLink {
			l := lc.Link
			if !h.neighbors.Corroborated(l.A, l.B) {
				v.ByNeighbor = true
				v.SuspectLinks = append(v.SuspectLinks, l)
				continue
			}
			if d := h.neighbors.DetourHops(l); d < 0 || d >= h.cfg.DetourHops {
				v.ByNeighbor = true
				v.SuspectLinks = append(v.SuspectLinks, l)
			}
		}
	}

	// Delay consistency: honest per-hop latency is pinned to the MAC's hop
	// delay plus bounded jitter; tunnel crossings add latency no radio hop
	// can, and forged replies arrive before any honest reply can.
	if times != nil && h.cfg.NominalHopDelay > 0 {
		slow := float64(h.cfg.NominalHopDelay) * h.cfg.SlowHopRatio
		fast := float64(h.cfg.NominalHopDelay) * h.cfg.FastHopRatio
		for i, r := range routes {
			if i >= len(times) || r.Hops() == 0 {
				continue
			}
			perHop := float64(times[i]) / float64(r.Hops())
			switch {
			case perHop >= slow:
				v.SlowRoutes++
			case perHop <= fast:
				v.FastRoutes++
			}
		}
		v.ByDelay = v.SlowRoutes+v.FastRoutes > 0
	}

	v.Attacked = v.BySAM || v.ByPMF || v.ByZ || v.ByNeighbor || v.ByDelay
	return v
}
