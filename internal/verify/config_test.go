package verify

import (
	"bytes"
	"testing"
)

// TestConfigDefaults pins the zero-value → default mapping.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Timeout != 64 {
		t.Errorf("Timeout = %v, want 64", c.Timeout)
	}
	if c.Retries != 1 {
		t.Errorf("Retries = %d, want 1", c.Retries)
	}
	if c.MaxProbes != 3 {
		t.Errorf("MaxProbes = %d, want 3", c.MaxProbes)
	}
	if c.CondemnThreshold != 0.75 {
		t.Errorf("CondemnThreshold = %v, want 0.75", c.CondemnThreshold)
	}
	if !bytes.Equal(c.Key, DefaultKey) {
		t.Errorf("Key = %q, want DefaultKey", c.Key)
	}
}

// TestConfigExplicitZero pins the ExplicitZero contract: every field with a
// meaningful zero resolves to a true zero, not its default — the same
// convention as sam.DetectorConfig and sim.Config.
func TestConfigExplicitZero(t *testing.T) {
	c := Config{
		Timeout:          ExplicitZero,
		Retries:          ExplicitZero,
		MaxProbes:        ExplicitZero,
		CondemnThreshold: ExplicitZero,
	}.WithDefaults()
	if c.Timeout != 0 {
		t.Errorf("Timeout = %v, want 0", c.Timeout)
	}
	if c.Retries != 0 {
		t.Errorf("Retries = %d, want 0", c.Retries)
	}
	if c.MaxProbes != 0 {
		t.Errorf("MaxProbes = %d, want 0", c.MaxProbes)
	}
	if c.CondemnThreshold != 0 {
		t.Errorf("CondemnThreshold = %v, want 0", c.CondemnThreshold)
	}
}

// TestConfigExplicitValuesKept pins that genuine values pass through.
func TestConfigExplicitValuesKept(t *testing.T) {
	c := Config{Timeout: 10, Retries: 4, MaxProbes: 7, CondemnThreshold: 0.5, Key: []byte("x")}.WithDefaults()
	if c.Timeout != 10 || c.Retries != 4 || c.MaxProbes != 7 || c.CondemnThreshold != 0.5 || string(c.Key) != "x" {
		t.Fatalf("config mangled: %+v", c)
	}
}
