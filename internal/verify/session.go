package verify

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// attempt tracks one outstanding probe: the route walked, the nonce the
// proof must cover, and where the current send attempt stands.
type attempt struct {
	route    routing.Route
	nonce    uint64
	sends    int      // send attempts so far (1-based)
	deadline sim.Time // expiry of the current attempt
	expired  bool     // current attempt's timer has fired
	resolved bool     // a terminal evidence record exists
	proofOK  bool     // a valid proof has been accepted
}

// session is the probe state machine for one suspect pair. It is driven by
// two inputs — onTimeout (the source's retry timer) and onProof (an answer
// arriving back at the source) — and accumulates typed Evidence. The
// machine is deliberately free of simulator references so table-driven
// tests can walk every transition directly.
type session struct {
	cfg      Config
	pair     topology.Link
	attempts map[uint64]*attempt
	evidence []Evidence
}

func newSession(cfg Config, pair topology.Link) *session {
	return &session{cfg: cfg, pair: pair, attempts: make(map[uint64]*attempt)}
}

// start registers a freshly sent probe. deadline is the expiry of this first
// attempt.
func (s *session) start(probeID, nonce uint64, route routing.Route, deadline sim.Time) {
	s.attempts[probeID] = &attempt{route: route, nonce: nonce, sends: 1, deadline: deadline}
}

// add records one evidence record against the session's pair.
func (s *session) add(kind Kind, probeID uint64, a *attempt, at sim.Time) {
	s.evidence = append(s.evidence, Evidence{
		Kind:    kind,
		Pair:    s.pair,
		Route:   a.route,
		ProbeID: probeID,
		Attempt: a.sends,
		At:      at,
	})
}

// onTimeout handles the retry timer of probeID firing at virtual time at.
// It reports whether the probe should be resent: true while the retry
// budget lasts, false once the missing ACK has become evidence (or the
// probe already resolved some other way). On a resend the caller must
// re-transmit the challenge and re-arm the timer; onTimeout has already
// advanced the attempt count and deadline.
func (s *session) onTimeout(probeID uint64, at sim.Time) bool {
	a := s.attempts[probeID]
	if a == nil || a.resolved {
		return false
	}
	if a.sends <= s.cfg.Retries {
		a.sends++
		a.deadline = at + s.cfg.Timeout
		a.expired = false
		return true
	}
	a.expired = true
	a.resolved = true
	s.add(AckMissing, probeID, a, at)
	return false
}

// onProof handles a proof arriving back at the source at virtual time at.
// Unknown probe ids are ignored (a stale answer from a previous session).
func (s *session) onProof(probeID uint64, proof []byte, at sim.Time) {
	a := s.attempts[probeID]
	if a == nil {
		return
	}
	if !VerifyProof(s.cfg.Key, probeID, a.nonce, a.route, proof) {
		// A fabricated answer is terminal: whoever sent it does not hold
		// the key, and no later packet can un-forge it.
		if !a.resolved {
			a.resolved = true
			s.add(ProofInvalid, probeID, a, at)
		}
		return
	}
	if a.proofOK {
		s.add(AckDuplicate, probeID, a, at)
		return
	}
	a.proofOK = true
	if a.expired || at > a.deadline {
		// Valid but after expiry — including after AckMissing already fired;
		// both records stand (the pair stalled payload past the deadline).
		s.add(AckLate, probeID, a, at)
	} else {
		s.add(AckValid, probeID, a, at)
	}
	a.resolved = true
}

// judge folds the session's evidence into the pair verdict.
func (s *session) judge() Verdict {
	return Judge(s.pair, s.evidence, s.cfg.CondemnThreshold, len(s.attempts))
}
