package verify

import (
	"testing"

	"samnet/internal/attack"
	"samnet/internal/geom"
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// lineTopo builds the 5-node line 0-1-2-3-4 with unit spacing. The suspect
// pair under test is the middle link 1-2.
func lineTopo() *topology.Topology {
	topo := topology.New("line", 1.001)
	for i := 0; i < 5; i++ {
		topo.AddNode(geom.Pt(float64(i), 0))
	}
	return topo
}

func lineNet(seed uint64) *sim.Network {
	return sim.NewNetwork(lineTopo(), sim.Config{Seed: seed})
}

var lineRoute = routing.Route{0, 1, 2, 3, 4}

// TestProbeExoneratesForwardingPair: honest relays answer every challenge
// with a valid in-time proof, so the pair is cleared.
func TestProbeExoneratesForwardingPair(t *testing.T) {
	net := lineNet(1)
	pair := topology.MkLink(1, 2)
	v := Probe(net, pair, []routing.Route{lineRoute}, Config{}, nil)
	if v.Probes != 1 {
		t.Fatalf("Probes = %d, want 1", v.Probes)
	}
	if len(v.Evidence) != 1 || v.Evidence[0].Kind != AckValid {
		t.Fatalf("evidence = %v, want one AckValid", v.Evidence)
	}
	if v.Likelihood != 0 || v.Condemned {
		t.Fatalf("verdict = %+v, want exonerated", v)
	}
}

// TestProbeCondemnsBlackholePair: a payload-dropping pair destroys the
// challenges (via the attack package's drop policy, proving the probe
// packets carry the PayloadPacket marker), so every probe times out.
func TestProbeCondemnsBlackholePair(t *testing.T) {
	net := lineNet(1)
	pol := attack.NewDropPolicy(map[topology.NodeID]bool{1: true, 2: true}, attack.Blackhole)
	net.SetDropFunc(pol.Func(net.Rand()))

	pair := topology.MkLink(1, 2)
	v := Probe(net, pair, []routing.Route{lineRoute}, Config{}, nil)
	if len(v.Evidence) != 1 || v.Evidence[0].Kind != AckMissing {
		t.Fatalf("evidence = %v, want one AckMissing", v.Evidence)
	}
	// Default retries = 1: the missing ACK is recorded on the second send.
	if v.Evidence[0].Attempt != 2 {
		t.Fatalf("Attempt = %d, want 2 (one retry)", v.Evidence[0].Attempt)
	}
	if v.Likelihood != 1 || !v.Condemned {
		t.Fatalf("verdict = %+v, want condemned", v)
	}
	if pol.Dropped == 0 {
		t.Fatal("drop policy never fired: probe packets are not payload")
	}
}

// TestProbeCondemnsForger: a Byzantine intermediary answers challenges with
// fabricated proofs; the MAC check turns each into ProofInvalid evidence.
func TestProbeCondemnsForger(t *testing.T) {
	net := lineNet(1)
	pair := topology.MkLink(1, 2)
	cfg := Config{Forgers: map[topology.NodeID]bool{1: true}}
	v := Probe(net, pair, []routing.Route{lineRoute}, cfg, nil)
	if len(v.Evidence) != 1 || v.Evidence[0].Kind != ProofInvalid {
		t.Fatalf("evidence = %v, want one ProofInvalid", v.Evidence)
	}
	if !v.Condemned {
		t.Fatalf("verdict = %+v, want condemned", v)
	}
}

// TestProbeRefusesIsolatedPair: probing a pair already on the isolation
// list is refused with administrative PairIsolated evidence.
func TestProbeRefusesIsolatedPair(t *testing.T) {
	net := lineNet(1)
	pair := topology.MkLink(1, 2)
	iso := NewIsolationSet()
	iso.Condemn(Verdict{Pair: pair, Likelihood: 1, Condemned: true})

	v := Probe(net, pair, []routing.Route{lineRoute}, Config{}, iso)
	if len(v.Evidence) != 1 || v.Evidence[0].Kind != PairIsolated {
		t.Fatalf("evidence = %v, want one PairIsolated", v.Evidence)
	}
	if v.Probes != 0 || !v.Condemned {
		t.Fatalf("verdict = %+v, want refused and condemned", v)
	}
}

// TestProbeSkipsRoutesOffPair: only routes traversing the suspect pair are
// probed; a pair no route crosses yields the unproven 0.5 prior.
func TestProbeSkipsRoutesOffPair(t *testing.T) {
	net := lineNet(1)
	off := routing.Route{2, 3, 4} // does not contain link 0-1
	v := Probe(net, topology.MkLink(0, 1), []routing.Route{off}, Config{}, nil)
	if v.Probes != 0 || len(v.Evidence) != 0 {
		t.Fatalf("verdict = %+v, want no probes", v)
	}
	if v.Likelihood != 0.5 || v.Condemned {
		t.Fatalf("verdict = %+v, want 0.5 prior, not condemned", v)
	}
}

// TestProbeMaxProbesExplicitZero: MaxProbes: ExplicitZero disables probing
// even when candidate routes exist — the configurable-zero contract.
func TestProbeMaxProbesExplicitZero(t *testing.T) {
	net := lineNet(1)
	v := Probe(net, topology.MkLink(1, 2), []routing.Route{lineRoute}, Config{MaxProbes: ExplicitZero}, nil)
	if v.Probes != 0 || len(v.Evidence) != 0 || v.Condemned {
		t.Fatalf("verdict = %+v, want no probes under ExplicitZero", v)
	}
}

// TestProbeZeroTimeout: Timeout: ExplicitZero expires every attempt at send
// time, so even an honest pair's proof arrives late — the probe records the
// missing ACK and then the late (valid) proof.
func TestProbeZeroTimeout(t *testing.T) {
	net := lineNet(1)
	cfg := Config{Timeout: ExplicitZero, Retries: ExplicitZero}
	v := Probe(net, topology.MkLink(1, 2), []routing.Route{lineRoute}, cfg, nil)
	if len(v.Evidence) != 2 || v.Evidence[0].Kind != AckMissing || v.Evidence[1].Kind != AckLate {
		t.Fatalf("evidence = %v, want [AckMissing AckLate]", v.Evidence)
	}
}

// TestProbeDeterministic: identical seeds yield identical verdicts,
// including evidence timestamps.
func TestProbeDeterministic(t *testing.T) {
	run := func() Verdict {
		net := lineNet(7)
		pol := attack.NewDropPolicy(map[topology.NodeID]bool{2: true}, attack.Greyhole)
		net.SetDropFunc(pol.Func(net.Rand()))
		return Probe(net, topology.MkLink(1, 2), []routing.Route{lineRoute, lineRoute}, Config{}, nil)
	}
	a, b := run(), run()
	if len(a.Evidence) != len(b.Evidence) {
		t.Fatalf("evidence counts differ: %d vs %d", len(a.Evidence), len(b.Evidence))
	}
	for i := range a.Evidence {
		x, y := a.Evidence[i], b.Evidence[i]
		if x.Kind != y.Kind || x.At != y.At || x.Attempt != y.Attempt {
			t.Fatalf("evidence[%d] differs: %+v vs %+v", i, x, y)
		}
	}
	if a.Likelihood != b.Likelihood || a.Condemned != b.Condemned {
		t.Fatalf("verdicts differ: %+v vs %+v", a, b)
	}
}

// TestProbeClearsHandlers: the network is handler-free after Probe, as the
// contract promises.
func TestProbeClearsHandlers(t *testing.T) {
	net := lineNet(1)
	Probe(net, topology.MkLink(1, 2), []routing.Route{lineRoute}, Config{}, nil)
	// A fresh unicast must fall into the void (nil handler), not panic or
	// invoke a stale prober; counters tell us it was at least delivered.
	net.Unicast(0, 1, &Challenge{ProbeID: 99, Route: lineRoute, Pos: 1})
	net.Run()
	if got := net.RxCount(1); got == 0 {
		t.Fatal("delivery did not happen")
	}
}
