package verify

import (
	"bytes"
	"testing"

	"samnet/internal/routing"
	"samnet/internal/topology"
)

// FuzzProofVerify throws arbitrary keys, identifiers, routes and candidate
// MACs at the proof parser: it must never panic, must accept exactly the
// genuine proof, and must reject every length violation.
func FuzzProofVerify(f *testing.F) {
	f.Add([]byte("k"), uint64(1), uint64(2), []byte{0, 1, 2}, []byte("0123456789abcdef"))
	f.Add([]byte{}, uint64(0), uint64(0), []byte{}, []byte{})
	f.Add([]byte("key"), ^uint64(0), uint64(7), []byte{255, 0, 255}, []byte("short"))
	f.Add(DefaultKey, uint64(3), uint64(4), []byte{1}, make([]byte, 64))
	f.Fuzz(func(t *testing.T, key []byte, probeID, nonce uint64, routeBytes, candidate []byte) {
		route := make(routing.Route, len(routeBytes))
		for i, b := range routeBytes {
			route[i] = topology.NodeID(b)
		}
		genuine := ComputeProof(key, probeID, nonce, route)
		if len(genuine) != ProofSize {
			t.Fatalf("ComputeProof length = %d", len(genuine))
		}
		if !VerifyProof(key, probeID, nonce, route, genuine) {
			t.Fatal("genuine proof rejected")
		}
		ok := VerifyProof(key, probeID, nonce, route, candidate)
		if ok != bytes.Equal(candidate, genuine) {
			t.Fatalf("VerifyProof = %v for candidate %x (genuine %x)", ok, candidate, genuine)
		}
	})
}
