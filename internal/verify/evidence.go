package verify

import (
	"fmt"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Kind classifies one piece of probe evidence.
type Kind int

const (
	// AckValid: the destination's proof came back in time and verified —
	// exculpatory; payload flows through the suspect pair.
	AckValid Kind = iota
	// AckMissing: no proof arrived within the timeout across all retries —
	// the signature of a payload-dropping wormhole.
	AckMissing
	// AckLate: a valid proof arrived, but only after the probe had expired —
	// weak incrimination (tunnel congestion, or an attacker stalling).
	AckLate
	// ProofInvalid: an answer arrived whose MAC does not verify — someone on
	// the route fabricated a proof without the key.
	ProofInvalid
	// AckDuplicate: a second proof for an already-answered probe — replay or
	// duplication on the path, weakly incriminating.
	AckDuplicate
	// PairIsolated: the pair was already on the isolation list; the probe
	// was refused. Administrative, carries no likelihood weight.
	PairIsolated
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case AckValid:
		return "ack-valid"
	case AckMissing:
		return "ack-missing"
	case AckLate:
		return "ack-late"
	case ProofInvalid:
		return "proof-invalid"
	case AckDuplicate:
		return "ack-duplicate"
	case PairIsolated:
		return "pair-isolated"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// weights returns the (incriminating, exculpatory) mass of one evidence
// kind. A missing ACK and an invalid proof are the protocol's two hard
// contradictions; lateness and duplication corroborate weakly; a valid
// in-time proof is the one exculpatory outcome.
func (k Kind) weights() (inc, exc float64) {
	switch k {
	case AckValid:
		return 0, 1
	case AckMissing:
		return 1, 0
	case ProofInvalid:
		return 1, 0
	case AckLate:
		return 0.5, 0
	case AckDuplicate:
		return 0.25, 0
	}
	return 0, 0 // PairIsolated and unknown kinds carry no weight
}

// Evidence is one typed probe observation against a suspect pair.
type Evidence struct {
	Kind    Kind
	Pair    topology.Link
	Route   routing.Route
	ProbeID uint64
	// Attempt is the 1-based send attempt the evidence refers to.
	Attempt int
	// At is the virtual time the evidence was recorded.
	At sim.Time
}

// Verdict is the outcome of probing one suspect pair.
type Verdict struct {
	Pair topology.Link
	// Likelihood is the fraction of evidence mass that incriminates the
	// pair: 1 = every probe contradicted, 0 = every probe exonerated,
	// 0.5 = no weighted evidence either way.
	Likelihood float64
	// Condemned reports whether the evidence clears the condemnation
	// threshold — the pair goes on the isolation list.
	Condemned bool
	// Probes is how many challenge routes were walked.
	Probes int
	// Evidence is every record folded into the likelihood, in order.
	Evidence []Evidence
}

// Judge folds evidence into a Verdict under the given condemnation
// threshold. With no weighted evidence the likelihood is the 0.5 prior and
// nothing is condemned: an unprobed pair is unproven, not innocent.
func Judge(pair topology.Link, evidence []Evidence, threshold float64, probes int) Verdict {
	var inc, exc float64
	for _, e := range evidence {
		i, x := e.Kind.weights()
		inc += i
		exc += x
	}
	v := Verdict{Pair: pair, Likelihood: 0.5, Probes: probes, Evidence: evidence}
	if inc+exc > 0 {
		v.Likelihood = inc / (inc + exc)
		v.Condemned = v.Likelihood >= threshold
	}
	return v
}
