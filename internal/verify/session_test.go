package verify

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// sessionEvent drives one transition of the probe state machine under test.
type sessionEvent struct {
	timeout bool // else: a proof arrives
	at      sim.Time
	proof   func(key []byte, id, nonce uint64, r routing.Route) []byte
}

func validProof(key []byte, id, nonce uint64, r routing.Route) []byte {
	return ComputeProof(key, id, nonce, r)
}

func forgedProof(key []byte, id, nonce uint64, r routing.Route) []byte {
	return make([]byte, ProofSize)
}

func truncatedProof(key []byte, id, nonce uint64, r routing.Route) []byte {
	return ComputeProof(key, id, nonce, r)[:ProofSize/2]
}

// TestSessionStateMachine walks every probe outcome the protocol
// distinguishes and asserts the exact evidence sequence each produces.
func TestSessionStateMachine(t *testing.T) {
	route := routing.Route{0, 1, 2, 3}
	pair := topology.MkLink(1, 2)
	const probeID, nonce = 7, 0xabcdef

	cases := []struct {
		name    string
		retries int // Config.Retries (0 = default 1, ExplicitZero = none)
		events  []sessionEvent
		want    []Kind
		// wantAttempts pins Evidence.Attempt per record when non-nil.
		wantAttempts []int
	}{
		{
			name:    "lost ack",
			retries: ExplicitZero,
			events:  []sessionEvent{{timeout: true, at: 64}},
			want:    []Kind{AckMissing},
		},
		{
			name:    "late ack after timeout",
			retries: ExplicitZero,
			events: []sessionEvent{
				{timeout: true, at: 64},
				{at: 90, proof: validProof},
			},
			want: []Kind{AckMissing, AckLate},
		},
		{
			name:    "forged proof",
			retries: ExplicitZero,
			events:  []sessionEvent{{at: 8, proof: forgedProof}},
			want:    []Kind{ProofInvalid},
		},
		{
			name:    "truncated proof",
			retries: ExplicitZero,
			events:  []sessionEvent{{at: 8, proof: truncatedProof}},
			want:    []Kind{ProofInvalid},
		},
		{
			name:    "duplicate ack",
			retries: ExplicitZero,
			events: []sessionEvent{
				{at: 8, proof: validProof},
				{at: 9, proof: validProof},
			},
			want: []Kind{AckValid, AckDuplicate},
		},
		{
			name:    "in-time ack",
			retries: ExplicitZero,
			events:  []sessionEvent{{at: 8, proof: validProof}},
			want:    []Kind{AckValid},
		},
		{
			name:    "retry then success",
			retries: 1,
			events: []sessionEvent{
				{timeout: true, at: 64}, // resend, no evidence
				{at: 70, proof: validProof},
			},
			want:         []Kind{AckValid},
			wantAttempts: []int{2},
		},
		{
			name:    "retries exhausted",
			retries: 1,
			events: []sessionEvent{
				{timeout: true, at: 64},
				{timeout: true, at: 128},
			},
			want:         []Kind{AckMissing},
			wantAttempts: []int{2},
		},
		{
			name:    "forged then timeout stays terminal",
			retries: ExplicitZero,
			events: []sessionEvent{
				{at: 8, proof: forgedProof},
				{timeout: true, at: 64},
			},
			want: []Kind{ProofInvalid},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Retries: tc.retries}.WithDefaults()
			ses := newSession(cfg, pair)
			ses.start(probeID, nonce, route, cfg.Timeout)
			for _, ev := range tc.events {
				if ev.timeout {
					ses.onTimeout(probeID, ev.at)
					continue
				}
				ses.onProof(probeID, ev.proof(cfg.Key, probeID, nonce, route), ev.at)
			}
			if len(ses.evidence) != len(tc.want) {
				t.Fatalf("evidence = %v, want kinds %v", ses.evidence, tc.want)
			}
			for i, e := range ses.evidence {
				if e.Kind != tc.want[i] {
					t.Errorf("evidence[%d].Kind = %v, want %v", i, e.Kind, tc.want[i])
				}
				if e.Pair != pair {
					t.Errorf("evidence[%d].Pair = %v, want %v", i, e.Pair, pair)
				}
				if tc.wantAttempts != nil && e.Attempt != tc.wantAttempts[i] {
					t.Errorf("evidence[%d].Attempt = %d, want %d", i, e.Attempt, tc.wantAttempts[i])
				}
			}
		})
	}
}

// TestSessionRetrySchedule pins onTimeout's resend contract: true while the
// retry budget lasts (advancing attempt and deadline), false at exhaustion.
func TestSessionRetrySchedule(t *testing.T) {
	cfg := Config{Retries: 2}.WithDefaults()
	ses := newSession(cfg, topology.MkLink(1, 2))
	ses.start(1, 42, routing.Route{0, 1, 2}, cfg.Timeout)

	for i := 0; i < 2; i++ {
		if !ses.onTimeout(1, sim.Time(64*(i+1))) {
			t.Fatalf("timeout %d: want resend", i+1)
		}
		if len(ses.evidence) != 0 {
			t.Fatalf("timeout %d produced evidence %v before exhaustion", i+1, ses.evidence)
		}
	}
	if ses.onTimeout(1, 192) {
		t.Fatal("third timeout: want no resend")
	}
	if len(ses.evidence) != 1 || ses.evidence[0].Kind != AckMissing {
		t.Fatalf("evidence = %v, want one AckMissing", ses.evidence)
	}
	if got := ses.attempts[1].sends; got != 3 {
		t.Fatalf("sends = %d, want 3", got)
	}
}

// TestSessionIgnoresUnknownProbe pins that stale proofs (an id this session
// never issued) are dropped without evidence.
func TestSessionIgnoresUnknownProbe(t *testing.T) {
	cfg := Config{}.WithDefaults()
	ses := newSession(cfg, topology.MkLink(1, 2))
	ses.start(1, 42, routing.Route{0, 1, 2}, cfg.Timeout)
	ses.onProof(999, make([]byte, ProofSize), 8)
	if len(ses.evidence) != 0 {
		t.Fatalf("unknown probe produced evidence %v", ses.evidence)
	}
	if ses.onTimeout(999, 64) {
		t.Fatal("unknown probe timeout wants resend")
	}
}

// TestJudge pins the likelihood fold: evidence mass ratios, the 0.5 prior,
// and the condemnation threshold edge.
func TestJudge(t *testing.T) {
	pair := topology.MkLink(3, 9)
	mk := func(kinds ...Kind) []Evidence {
		out := make([]Evidence, len(kinds))
		for i, k := range kinds {
			out[i] = Evidence{Kind: k, Pair: pair}
		}
		return out
	}
	cases := []struct {
		name      string
		evidence  []Evidence
		threshold float64
		wantL     float64
		wantC     bool
	}{
		{"no evidence", nil, 0.75, 0.5, false},
		{"only administrative", mk(PairIsolated), 0.75, 0.5, false},
		{"all missing", mk(AckMissing, AckMissing, AckMissing), 0.75, 1, true},
		{"all valid", mk(AckValid, AckValid), 0.75, 0, false},
		{"mixed below threshold", mk(AckMissing, AckValid, AckValid), 0.75, 1.0 / 3, false},
		{"at threshold", mk(AckMissing, AckMissing, AckMissing, AckValid), 0.75, 0.75, true},
		{"late and duplicate corroborate", mk(AckLate, AckDuplicate), 0.75, 1, true},
		{"late against valid", mk(AckLate, AckValid), 0.75, 1.0 / 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Judge(pair, tc.evidence, tc.threshold, len(tc.evidence))
			if v.Likelihood != tc.wantL {
				t.Errorf("Likelihood = %v, want %v", v.Likelihood, tc.wantL)
			}
			if v.Condemned != tc.wantC {
				t.Errorf("Condemned = %v, want %v", v.Condemned, tc.wantC)
			}
			if v.Pair != pair {
				t.Errorf("Pair = %v, want %v", v.Pair, pair)
			}
		})
	}
}
