package verify

import (
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Challenge is the probe request walking a source route toward the
// destination. It is payload (attackers may drop it) — that is the point:
// a wormhole that destroys payload destroys the challenge, and the missing
// proof becomes evidence.
type Challenge struct {
	ProbeID uint64
	Nonce   uint64
	Route   routing.Route
	Pos     int // index into Route of the current holder
}

// IsPayload implements routing.PayloadPacket.
func (*Challenge) IsPayload() {}

// Proof is the destination's answer walking the route back to the source:
// the HMAC over (probe id, nonce, route) under the shared key.
type Proof struct {
	ProbeID uint64
	MAC     []byte
	Route   routing.Route // the forward route; the proof walks it backwards
	Pos     int
}

// IsPayload implements routing.PayloadPacket.
func (*Proof) IsPayload() {}

// prober is the per-probe sim.Handler and sim.TimerHandler: it relays
// challenges out, answers at the destination, relays proofs back, feeds the
// session state machine at the source, and resends on retry timeouts.
type prober struct {
	cfg Config
	net *sim.Network
	ses *session
}

// Recv implements sim.Handler.
func (p *prober) Recv(net *sim.Network, self, from topology.NodeID, pkt sim.Packet) {
	switch c := pkt.(type) {
	case *Challenge:
		p.recvChallenge(net, self, c)
	case *Proof:
		p.recvProof(net, self, c)
	}
}

func (p *prober) recvChallenge(net *sim.Network, self topology.NodeID, c *Challenge) {
	if c.Pos >= len(c.Route) || c.Route[c.Pos] != self {
		return
	}
	last := len(c.Route) - 1
	if p.cfg.Forgers[self] && c.Pos > 0 && c.Pos < last {
		// Byzantine intermediary: swallow the challenge and answer in the
		// destination's stead. Without the key the MAC cannot verify.
		forged := make([]byte, ProofSize)
		net.Unicast(self, c.Route[c.Pos-1], &Proof{ProbeID: c.ProbeID, MAC: forged, Route: c.Route, Pos: c.Pos - 1})
		return
	}
	if c.Pos == last {
		mac := ComputeProof(p.cfg.Key, c.ProbeID, c.Nonce, c.Route)
		net.Unicast(self, c.Route[last-1], &Proof{ProbeID: c.ProbeID, MAC: mac, Route: c.Route, Pos: last - 1})
		return
	}
	// Relay in place, like RREP/Data: one holder at a time.
	c.Pos++
	net.Unicast(self, c.Route[c.Pos], c)
}

func (p *prober) recvProof(net *sim.Network, self topology.NodeID, c *Proof) {
	if c.Pos >= len(c.Route) || c.Route[c.Pos] != self {
		return
	}
	if c.Pos == 0 {
		p.ses.onProof(c.ProbeID, c.MAC, net.Now())
		return
	}
	c.Pos--
	net.Unicast(self, c.Route[c.Pos], c)
}

// Timer implements sim.TimerHandler: a probe's retry timer fired.
func (p *prober) Timer(id uint64) {
	if !p.ses.onTimeout(id, p.net.Now()) {
		return
	}
	a := p.ses.attempts[id]
	p.send(id, a)
}

// send transmits (or re-transmits) the challenge for one attempt and arms
// its timer.
func (p *prober) send(id uint64, a *attempt) {
	p.net.Unicast(a.route[0], a.route[1], &Challenge{ProbeID: id, Nonce: a.nonce, Route: a.route, Pos: 1})
	p.net.ScheduleTimer(p.cfg.Timeout, p, id)
}

// Probe walks the suspect pair with challenge–response probes over net and
// returns the evidence verdict. routes is the discovered route set; up to
// cfg.MaxProbes routes traversing the pair are probed (a pair no route
// crosses yields no evidence — likelihood 0.5, not condemned). If iso
// already isolates the pair the probe is refused with a PairIsolated
// verdict. Probe installs its own handlers on every node for the duration
// and clears them before returning; it never mutates iso — condemning a
// verdict into an IsolationSet is the caller's decision.
func Probe(net *sim.Network, pair topology.Link, routes []routing.Route, cfg Config, iso *IsolationSet) Verdict {
	cfg = cfg.WithDefaults()
	if iso.Isolated(pair) {
		ev := []Evidence{{Kind: PairIsolated, Pair: pair, At: net.Now()}}
		return Verdict{Pair: pair, Likelihood: 1, Condemned: true, Evidence: ev}
	}
	ses := newSession(cfg, pair)
	pr := &prober{cfg: cfg, net: net, ses: ses}
	net.SetAllHandlers(pr)
	n := 0
	for _, r := range routes {
		if n >= cfg.MaxProbes {
			break
		}
		if len(r) < 2 || !r.ContainsLink(pair) {
			continue
		}
		n++
		id := net.NextID()
		// Nonces come from the simulation's own source: reproducible per
		// seed, opaque to the (simulated) adversary.
		ses.start(id, net.Rand().Uint64(), r.Clone(), net.Now()+cfg.Timeout)
		pr.send(id, ses.attempts[id])
	}
	net.Run()
	net.SetAllHandlers(nil)
	return ses.judge()
}
