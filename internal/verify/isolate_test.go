package verify

import (
	"sync"
	"testing"

	"samnet/internal/topology"
)

func condemned(a, b topology.NodeID) Verdict {
	return Verdict{Pair: topology.MkLink(a, b), Likelihood: 1, Condemned: true}
}

func TestIsolationSetLifecycle(t *testing.T) {
	iso := NewIsolationSet()
	if iso.Len() != 0 || iso.Isolated(topology.MkLink(1, 2)) {
		t.Fatal("fresh set is not empty")
	}
	iso.Condemn(condemned(1, 2))
	iso.Condemn(condemned(2, 3)) // shares node 2
	if iso.Len() != 2 {
		t.Fatalf("Len = %d, want 2", iso.Len())
	}
	for _, id := range []topology.NodeID{1, 2, 3} {
		if !iso.IsolatedNode(id) || !iso.Avoid(id) {
			t.Errorf("node %d not isolated", id)
		}
	}
	if iso.IsolatedNode(0) {
		t.Error("node 0 isolated")
	}

	// Lifting one pair keeps the shared node isolated via the other.
	if !iso.Lift(topology.MkLink(1, 2)) {
		t.Fatal("Lift returned false for present pair")
	}
	if iso.IsolatedNode(1) {
		t.Error("node 1 still isolated after lift")
	}
	if !iso.IsolatedNode(2) {
		t.Error("node 2 lost isolation while pair 2-3 stands")
	}
	if iso.Lift(topology.MkLink(1, 2)) {
		t.Error("Lift returned true for absent pair")
	}
}

func TestIsolationSetPairsSorted(t *testing.T) {
	iso := NewIsolationSet()
	iso.Condemn(condemned(7, 8))
	iso.Condemn(condemned(0, 9))
	iso.Condemn(condemned(0, 3))
	var prev topology.Link
	for i, v := range iso.Pairs() {
		if i > 0 && (v.Pair.A < prev.A || (v.Pair.A == prev.A && v.Pair.B < prev.B)) {
			t.Fatalf("Pairs out of order at %d: %v after %v", i, v.Pair, prev)
		}
		prev = v.Pair
	}
	if got := len(iso.Pairs()); got != 3 {
		t.Fatalf("len(Pairs) = %d, want 3", got)
	}
}

func TestIsolationSetNilReads(t *testing.T) {
	var iso *IsolationSet
	if iso.Isolated(topology.MkLink(1, 2)) || iso.IsolatedNode(1) || iso.Avoid(1) {
		t.Fatal("nil set isolates something")
	}
	if iso.Len() != 0 || iso.Pairs() != nil {
		t.Fatal("nil set is not empty")
	}
}

func TestIsolationSetCondemnPanicsOnUncondemned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Condemn accepted an uncondemned verdict")
		}
	}()
	NewIsolationSet().Condemn(Verdict{Pair: topology.MkLink(1, 2)})
}

// TestIsolationSetConcurrent exercises the lock paths under the race
// detector.
func TestIsolationSetConcurrent(t *testing.T) {
	iso := NewIsolationSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := topology.NodeID(g)
				b := topology.NodeID(g + 10 + i%3)
				iso.Condemn(condemned(a, b))
				iso.Isolated(topology.MkLink(a, b))
				iso.IsolatedNode(a)
				iso.Len()
				iso.Pairs()
				iso.Lift(topology.MkLink(a, b))
			}
		}(g)
	}
	wg.Wait()
}
