package verify

import (
	"bytes"
	"testing"

	"samnet/internal/routing"
)

func TestProofRoundTrip(t *testing.T) {
	key := []byte("k")
	route := routing.Route{0, 5, 11}
	p := ComputeProof(key, 1, 2, route)
	if len(p) != ProofSize {
		t.Fatalf("proof length = %d, want %d", len(p), ProofSize)
	}
	if !VerifyProof(key, 1, 2, route, p) {
		t.Fatal("valid proof rejected")
	}
}

// TestProofBinding pins that the MAC covers every input: changing the key,
// probe id, nonce or any route node invalidates it.
func TestProofBinding(t *testing.T) {
	key := []byte("k")
	route := routing.Route{0, 5, 11}
	p := ComputeProof(key, 1, 2, route)

	if VerifyProof([]byte("k2"), 1, 2, route, p) {
		t.Error("proof verified under wrong key")
	}
	if VerifyProof(key, 9, 2, route, p) {
		t.Error("proof verified for wrong probe id")
	}
	if VerifyProof(key, 1, 9, route, p) {
		t.Error("proof verified for wrong nonce")
	}
	if VerifyProof(key, 1, 2, routing.Route{0, 6, 11}, p) {
		t.Error("proof verified for wrong route")
	}
	if VerifyProof(key, 1, 2, route[:2], p) {
		t.Error("proof verified for truncated route")
	}
}

func TestProofRejectsBadLengths(t *testing.T) {
	key := []byte("k")
	route := routing.Route{0, 1}
	p := ComputeProof(key, 1, 2, route)
	for _, bad := range [][]byte{nil, {}, p[:1], p[:ProofSize-1], append(bytes.Clone(p), 0)} {
		if VerifyProof(key, 1, 2, route, bad) {
			t.Errorf("proof of length %d verified", len(bad))
		}
	}
}
