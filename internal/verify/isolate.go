package verify

import (
	"sort"
	"sync"

	"samnet/internal/topology"
)

// IsolationSet is the IDS's step-3 output: the set of condemned node pairs
// and, derived from it, the node set route discovery must avoid. Its Avoid
// method has the routing.FloodConfig.Avoid signature, so plugging isolation
// into a protocol is one field assignment. All methods are safe for
// concurrent use; read methods are additionally nil-safe (a nil set
// isolates nothing), so callers without an isolation policy pass nil.
type IsolationSet struct {
	mu    sync.RWMutex
	pairs map[topology.Link]Verdict
	nodes map[topology.NodeID]int // refcount: pairs sharing a node
}

// NewIsolationSet returns an empty isolation set.
func NewIsolationSet() *IsolationSet {
	return &IsolationSet{
		pairs: make(map[topology.Link]Verdict),
		nodes: make(map[topology.NodeID]int),
	}
}

// Condemn puts a verdict's pair on the isolation list. It panics if the
// verdict is not condemned: an exonerated pair has no business here. Re-
// condemning a pair replaces its verdict.
func (s *IsolationSet) Condemn(v Verdict) {
	if !v.Condemned {
		panic("verify: condemning an uncondemned verdict")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pairs[v.Pair]; !ok {
		s.nodes[v.Pair.A]++
		s.nodes[v.Pair.B]++
	}
	s.pairs[v.Pair] = v
}

// Lift removes a pair from the isolation list (e.g. a condemned verdict
// overturned by operator review) and reports whether it was present.
func (s *IsolationSet) Lift(pair topology.Link) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pairs[pair]; !ok {
		return false
	}
	delete(s.pairs, pair)
	for _, id := range [2]topology.NodeID{pair.A, pair.B} {
		if s.nodes[id]--; s.nodes[id] == 0 {
			delete(s.nodes, id)
		}
	}
	return true
}

// Isolated reports whether the pair is condemned.
func (s *IsolationSet) Isolated(pair topology.Link) bool {
	if s == nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pairs[pair]
	return ok
}

// IsolatedNode reports whether id belongs to any condemned pair.
func (s *IsolationSet) IsolatedNode(id topology.NodeID) bool {
	if s == nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodes[id] > 0
}

// Avoid is IsolatedNode under the routing.FloodConfig.Avoid contract:
// assign it to a protocol's Avoid field and discovery refuses routes
// through condemned attackers.
func (s *IsolationSet) Avoid(id topology.NodeID) bool { return s.IsolatedNode(id) }

// Len returns the number of condemned pairs.
func (s *IsolationSet) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pairs)
}

// Pairs returns the condemned verdicts ordered by pair, for deterministic
// reporting.
func (s *IsolationSet) Pairs() []Verdict {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]Verdict, 0, len(s.pairs))
	for _, v := range s.pairs {
		out = append(out, v)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		return out[i].Pair.B < out[j].Pair.B
	})
	return out
}
