package verify

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"samnet/internal/routing"
)

// ProofSize is the truncated HMAC length carried in Proof packets. 128 bits
// keeps forgery infeasible while halving the on-air bytes, the usual
// truncated-HMAC trade (RFC 2104 §5).
const ProofSize = 16

// ComputeProof returns the HMAC-SHA256 proof (truncated to ProofSize) a
// destination owes for a challenge: keyed over the probe id, the nonce, and
// every node of the route, so a proof cannot be replayed for a different
// probe or spliced onto a different path.
func ComputeProof(key []byte, probeID, nonce uint64, route routing.Route) []byte {
	mac := hmac.New(sha256.New, key)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], probeID)
	mac.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], nonce)
	mac.Write(buf[:])
	for _, id := range route {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(id)))
		mac.Write(buf[:])
	}
	return mac.Sum(nil)[:ProofSize]
}

// VerifyProof reports whether proof is the valid MAC for the given probe.
// Truncated, oversized or forged proofs all fail; comparison is constant
// time (hmac.Equal).
func VerifyProof(key []byte, probeID, nonce uint64, route routing.Route, proof []byte) bool {
	if len(proof) != ProofSize {
		return false
	}
	return hmac.Equal(proof, ComputeProof(key, probeID, nonce, route))
}
