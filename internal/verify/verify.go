// Package verify implements steps 2 and 3 of the paper's intrusion detection
// procedure. Step 1 (package sam) statistically localizes a suspect node
// pair; this package confirms or refutes the accusation with an HMAC
// challenge–response probe over the simulated network, folds the typed
// evidence into a per-pair likelihood verdict, and maintains the isolation
// list that feeds condemned attackers back into route discovery
// (routing.FloodConfig.Avoid), closing the detect→probe→isolate→re-route
// loop.
//
// The probe protocol: the source sends a Challenge carrying a fresh nonce
// along a discovered route that traverses the suspect pair. The destination
// answers with a Proof — an HMAC over the probe id, nonce and route under a
// key the attackers do not hold — walked back along the reverse route. A
// wormhole that drops payload destroys the challenge (missing ACK); one that
// fabricates answers cannot forge the MAC (invalid proof); one that forwards
// faithfully exonerates the pair. Timeouts ride the simulator's zero-alloc
// event heap (sim.Engine.ScheduleTimer) with bounded retries.
package verify

import (
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// ExplicitZero configures a Config field to an effective value of zero. A
// literal 0 is the "use the default" sentinel, so fields that are
// meaningfully zero — Timeout: 0 expires probes immediately, Retries: 0
// disables resends, MaxProbes: 0 sends no probes at all — take this (or any
// negative value) instead, mirroring sam.DetectorConfig's convention.
const ExplicitZero = -1

// DefaultKey is the probe HMAC key when Config.Key is empty. Any key works —
// what matters is that the simulated attackers do not hold it, which is why
// forged proofs fail verification.
var DefaultKey = []byte("samnet-verify-v1")

// Config tunes the probe engine. The zero value selects the defaults.
type Config struct {
	// Timeout is how long (virtual time) the source waits for a probe's
	// proof before declaring the attempt expired (default 64; ExplicitZero
	// for an immediately-expiring probe).
	Timeout sim.Time
	// Retries is how many times an expired probe is resent before the
	// missing ACK becomes evidence (default 1; ExplicitZero for none).
	Retries int
	// MaxProbes caps how many routes through the suspect pair are probed
	// (default 3; ExplicitZero disables probing entirely).
	MaxProbes int
	// CondemnThreshold is the likelihood at or above which a probed pair is
	// condemned (default 0.75; ExplicitZero condemns on any evidence).
	CondemnThreshold float64
	// Key is the shared HMAC key honest nodes prove knowledge of (default
	// DefaultKey).
	Key []byte
	// Forgers marks nodes that intercept challenges and answer with
	// fabricated proofs instead of relaying — the Byzantine reply-forgery
	// adversary the proof MAC exists to defeat. Simulation-side only.
	Forgers map[topology.NodeID]bool
}

// resolveInt maps an int config field to its effective value: zero selects
// the default, negative (ExplicitZero) a true zero.
func resolveInt(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// WithDefaults returns c with zero-valued fields resolved to defaults and
// ExplicitZero fields resolved to true zeros.
func (c Config) WithDefaults() Config {
	switch {
	case c.Timeout == 0:
		c.Timeout = 64
	case c.Timeout < 0:
		c.Timeout = 0
	}
	c.Retries = resolveInt(c.Retries, 1)
	c.MaxProbes = resolveInt(c.MaxProbes, 3)
	switch {
	case c.CondemnThreshold == 0:
		c.CondemnThreshold = 0.75
	case c.CondemnThreshold < 0:
		c.CondemnThreshold = 0
	}
	if len(c.Key) == 0 {
		c.Key = DefaultKey
	}
	return c
}
