package experiment

import (
	"strconv"

	"samnet/internal/trace"
)

// Table1 reproduces Table I: the percentage of obtained routes affected by
// the wormhole, per run, for MR and DSR on the cluster and uniform
// topologies (one active wormhole, 1-tier).
func Table1(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	cols := []struct {
		name string
		cond Condition
	}{
		{"Cluster MR", clusterCond(1, 1, mrProtocol, "MR")},
		{"Cluster DSR", clusterCond(1, 1, dsrProtocol, "DSR")},
		{"Uniform MR", uniformCond(6, 6, 1, 1, mrProtocol, "MR")},
		{"Uniform DSR", uniformCond(6, 6, 1, 1, dsrProtocol, "DSR")},
	}
	conds := make([]Condition, len(cols))
	for i, c := range cols {
		conds[i] = c.cond
	}
	results := RunConditions(cfg, conds)

	t := &trace.Table{
		Title:   "Table I — Percentage of routes affected by wormhole attack",
		Headers: []string{"Run", "Cluster MR", "Cluster DSR", "Uniform MR", "Uniform DSR"},
		Notes: []string{
			"Paper shape: all cluster-topology routes affected (100%) for both protocols; " +
				"uniform topology lower, with MR no worse than DSR.",
		},
	}
	avg := make([]float64, len(cols))
	for run := 0; run < cfg.Runs; run++ {
		row := []string{strconv.Itoa(run + 1)}
		for i := range cols {
			a := results[i][run].Affected
			avg[i] += a
			row = append(row, trace.Pct(a))
		}
		t.AddRow(row...)
	}
	row := []string{"avg"}
	for i := range cols {
		row = append(row, trace.Pct(avg[i]/float64(cfg.Runs)))
	}
	t.AddRow(row...)
	return &trace.Artifact{ID: "table1", Kind: "table", Tables: []*trace.Table{t}}
}

// Table2 reproduces Table II: route-discovery overhead (total transmissions
// plus receptions at all nodes) per run for MR and DSR, same setups as
// Table I.
func Table2(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	cols := []struct {
		name string
		cond Condition
	}{
		{"Cluster MR", clusterCond(1, 1, mrProtocol, "MR")},
		{"Cluster DSR", clusterCond(1, 1, dsrProtocol, "DSR")},
		{"Uniform MR", uniformCond(6, 6, 1, 1, mrProtocol, "MR")},
		{"Uniform DSR", uniformCond(6, 6, 1, 1, dsrProtocol, "DSR")},
	}
	conds := make([]Condition, len(cols))
	for i, c := range cols {
		conds[i] = c.cond
	}
	results := RunConditions(cfg, conds)

	t := &trace.Table{
		Title:   "Table II — Overhead of route discovery (tx+rx at all nodes)",
		Headers: []string{"Run", "Cluster MR", "Cluster DSR", "Uniform MR", "Uniform DSR"},
		Notes: []string{
			"Paper shape: MR overhead is more than twice DSR's on average, justified by " +
				"needing a new discovery only when all paths break.",
		},
	}
	sums := make([]int64, len(cols))
	for run := 0; run < cfg.Runs; run++ {
		row := []string{strconv.Itoa(run + 1)}
		for i := range cols {
			ov := results[i][run].Overhead
			sums[i] += ov
			row = append(row, trace.D(ov))
		}
		t.AddRow(row...)
	}
	row := []string{"avg"}
	for i := range cols {
		row = append(row, trace.D(sums[i]/int64(cfg.Runs)))
	}
	t.AddRow(row...)

	ratio := &trace.Table{
		Title:   "Table II (companion) — MR/DSR overhead ratio",
		Headers: []string{"Topology", "MR avg", "DSR avg", "Ratio"},
	}
	clusterRatio := float64(sums[0]) / float64(sums[1])
	uniformRatio := float64(sums[2]) / float64(sums[3])
	ratio.AddRow("Cluster", trace.D(sums[0]/int64(cfg.Runs)), trace.D(sums[1]/int64(cfg.Runs)), trace.F2(clusterRatio))
	ratio.AddRow("Uniform", trace.D(sums[2]/int64(cfg.Runs)), trace.D(sums[3]/int64(cfg.Runs)), trace.F2(uniformRatio))
	return &trace.Artifact{ID: "table2", Kind: "table", Tables: []*trace.Table{t, ratio}}
}
