package experiment

import (
	"runtime"
	"strings"
	"testing"

	"samnet/internal/trace"
)

// serialize flattens an artifact into one comparable string: every table,
// rendered, in order.
func serialize(a *trace.Artifact) string {
	var b strings.Builder
	for _, t := range a.Tables {
		b.WriteString(t.Markdown())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExperimentsDeterministicAcrossWorkers is the runner's contract proven
// at the experiment layer: a fixed grid produces bitwise-identical artifacts
// for parallel in {1, 4, GOMAXPROCS}. A sweep over one experiment of each
// kind keeps the test fast while exercising every porting pattern (Map,
// MapGrid, serial folds).
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, id := range []string{"table1", "table2", "fig5", "fig15", "detection", "loss", "pdr"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var want string
			for _, w := range levels {
				got := serialize(d.Run(Config{Runs: 4, Seed: 2005, Workers: w}))
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d produced different output than workers=%d:\n%s\n--- vs ---\n%s",
						w, levels[0], got, want)
				}
			}
		})
	}
}
