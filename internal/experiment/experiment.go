// Package experiment reproduces the paper's evaluation: every table and
// figure has a runner that regenerates it from the simulator, plus extension
// experiments (packet-leash comparison, end-to-end detection rates) and the
// registry the samrepro command and the benchmark suite drive.
//
// Determinism and parallelism: each run's simulation seed is derived from
// (master seed, condition label, run index), and the source/destination pair
// of run i is derived from (master seed, run index) only — so the same pairs
// are compared across normal/attacked conditions and across protocols, as a
// paired experiment should. Runs fan out over the internal/runner harness
// and are merged back in grid order, so output is byte-stable for every
// worker count, including 1.
package experiment

import (
	"math/rand/v2"
	"runtime"
	"strconv"

	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mr"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/verify"
)

// Config controls an experiment invocation.
type Config struct {
	// Runs is the number of simulation runs per condition (default 10, as
	// in the paper).
	Runs int
	// Seed is the master seed all per-run seeds derive from (default 2005,
	// the paper's year).
	Seed uint64
	// Workers bounds run-level parallelism (default NumCPU).
	Workers int
	// Progress, when non-nil, observes run completion for telemetry (run
	// counts and wall-clock only — see runner.Progress). It cannot influence
	// results: seeds derive from grid coordinates and results merge in grid
	// order regardless of the hook.
	Progress runner.Progress
	// Verify configures the step-2 probe engine the closed-loop experiment
	// (verifyloop) drives. The zero value takes verify.Config defaults;
	// fields follow that package's ExplicitZero convention, so
	// Verify.MaxProbes = verify.ExplicitZero disables probing (and with it
	// condemnation) entirely.
	Verify verify.Config
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.Seed == 0 {
		c.Seed = 2005
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// deriveSeed hashes (master seed, label, run) into a simulation seed.
func deriveSeed(master uint64, label string, run int) uint64 {
	return runner.DeriveSeed(master, label, run)
}

// pairRNG returns the RNG that draws run i's source/destination pair. It
// depends only on (master seed, run), never on the condition, so conditions
// are compared on identical workloads.
func pairRNG(master uint64, run int) *rand.Rand {
	return rand.New(rand.NewPCG(deriveSeed(master, "pair", run), 0x9e3779b97f4a7c15))
}

// topoRNG returns the RNG used when a condition rebuilds a random topology
// per run.
func topoRNG(master uint64, run int) *rand.Rand {
	return rand.New(rand.NewPCG(deriveSeed(master, "topo", run), 0x517cc1b727220a95))
}

// Condition describes one simulated setting: a topology, a number of active
// wormholes, and a routing protocol.
type Condition struct {
	// Label names the condition ("cluster-1tier/MR/attack"); it feeds seed
	// derivation, so renaming a condition reshuffles its seeds.
	Label string
	// Build constructs the network for one run. Most conditions ignore run
	// and rebuild the same deterministic grid; random-topology conditions
	// draw a fresh placement from topoRNG.
	Build func(cfg Config, run int) *topology.Network
	// Wormholes is how many attacker pairs tunnel during the run.
	Wormholes int
	// Protocol constructs the routing protocol (fresh per run; protocols
	// are stateless but cheap to build).
	Protocol func() routing.Protocol
	// Behavior is the attackers' payload behaviour (default Forward).
	Behavior attack.PayloadBehavior
}

// RunResult is the outcome of one simulated route discovery.
type RunResult struct {
	Run      int
	Src, Dst topology.NodeID
	Routes   []routing.Route
	Stats    sam.Stats
	// Affected is the fraction of routes containing any active tunnel
	// link (0 under normal conditions).
	Affected float64
	// Overhead is Tx+Rx across all nodes for the discovery.
	Overhead int64
	// TunnelLinks are the active attack links (empty when Wormholes == 0).
	TunnelLinks []topology.Link
}

// simCache is one worker's reusable simulation state: a Network whose
// allocations (event queue, per-node slices) survive across the runs that
// worker executes. network() hands out the cached network retargeted onto
// the run's topology and config — behaviourally indistinguishable from a
// fresh sim.NewNetwork (see sim.Network.Retarget), so sharing it across
// whichever cells land on one worker cannot perturb results. A nil cache
// degrades to plain NewNetwork.
type simCache struct {
	net *sim.Network
}

func newSimCache() *simCache { return &simCache{} }

func (c *simCache) network(topo *topology.Topology, cfg sim.Config) *sim.Network {
	if c == nil {
		return sim.NewNetwork(topo, cfg)
	}
	if c.net == nil {
		c.net = sim.NewNetwork(topo, cfg)
	} else {
		c.net.Retarget(topo, cfg)
	}
	return c.net
}

// runOne executes one run of a condition.
func runOne(cfg Config, cond Condition, run int, sc1 *simCache) RunResult {
	net := cond.Build(cfg, run)
	var sc *attack.Scenario
	if cond.Wormholes > 0 {
		sc = attack.NewScenario(net, cond.Wormholes, cond.Behavior)
	}
	src, dst := net.PickPair(pairRNG(cfg.Seed, run))
	simNet := sc1.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, cond.Label, run)})
	if sc != nil {
		sc.Arm(simNet)
	}
	disc := cond.Protocol().Discover(simNet, src, dst)

	res := RunResult{
		Run:      run,
		Src:      src,
		Dst:      dst,
		Routes:   disc.Routes,
		Stats:    sam.Analyze(disc.Routes),
		Overhead: disc.Overhead(),
	}
	if sc != nil {
		res.TunnelLinks = sc.TunnelLinks()
		affected := 0
		for _, r := range disc.Routes {
			for _, l := range res.TunnelLinks {
				if r.ContainsLink(l) {
					affected++
					break
				}
			}
		}
		if len(disc.Routes) > 0 {
			res.Affected = float64(affected) / float64(len(disc.Routes))
		}
		sc.Teardown()
	}
	return res
}

// RunCondition executes cfg.Runs runs of cond over the runner harness and
// returns the results in run order.
func RunCondition(cfg Config, cond Condition) []RunResult {
	cfg = cfg.withDefaults()
	return runner.MapWorkerProgress(cfg.Workers, cfg.Runs, cfg.Progress, newSimCache, func(i int, sc *simCache) RunResult {
		return runOne(cfg, cond, i, sc)
	})
}

// RunConditions executes cfg.Runs runs of every condition as one flattened
// (condition x run) grid, so parallelism spans the whole grid instead of one
// condition at a time, and returns results[condition][run] in grid order.
// The output is identical to calling RunCondition per condition.
func RunConditions(cfg Config, conds []Condition) [][]RunResult {
	cfg = cfg.withDefaults()
	return runner.MapGridWorkerProgress(cfg.Workers, len(conds), cfg.Runs, cfg.Progress, newSimCache, func(c, i int, sc *simCache) RunResult {
		return runOne(cfg, conds[c], i, sc)
	})
}

// Standard network builders, shared across experiment definitions.

func buildCluster(k int) func(Config, int) *topology.Network {
	return func(Config, int) *topology.Network { return topology.Cluster(k, 2) }
}

func buildUniform(cols, rows, k int) func(Config, int) *topology.Network {
	return func(Config, int) *topology.Network { return topology.Uniform(cols, rows, k, 2) }
}

func buildRandom() func(Config, int) *topology.Network {
	return func(cfg Config, run int) *topology.Network {
		return topology.Random(topology.RandomConfig{Wormholes: 2}, topoRNG(cfg.Seed, run))
	}
}

func mrProtocol() routing.Protocol  { return &mr.Protocol{SuppressReplies: false} }
func dsrProtocol() routing.Protocol { return &dsr.Protocol{} }

// Cond is a small helper assembling a Condition.
func clusterCond(k, wormholes int, proto func() routing.Protocol, protoName string) Condition {
	suffix := "normal"
	if wormholes > 0 {
		suffix = "attack"
	}
	return Condition{
		Label:     "cluster-" + strconv.Itoa(k) + "tier/" + protoName + "/" + suffix,
		Build:     buildCluster(k),
		Wormholes: wormholes,
		Protocol:  proto,
	}
}

func uniformCond(cols, rows, k, wormholes int, proto func() routing.Protocol, protoName string) Condition {
	suffix := "normal"
	if wormholes > 0 {
		suffix = "attack"
	}
	return Condition{
		Label:     "uniform" + strconv.Itoa(cols) + "x" + strconv.Itoa(rows) + "-" + strconv.Itoa(k) + "tier/" + protoName + "/" + suffix,
		Build:     buildUniform(cols, rows, k),
		Wormholes: wormholes,
		Protocol:  proto,
	}
}

func randomCond(wormholes int, proto func() routing.Protocol, protoName string) Condition {
	suffix := "normal"
	if wormholes > 0 {
		suffix = "attack"
	}
	return Condition{
		Label:     "random/" + protoName + "/" + suffix,
		Build:     buildRandom(),
		Wormholes: wormholes,
		Protocol:  proto,
	}
}
