package experiment

import (
	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mr"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
	"samnet/internal/verify"
)

// VerifyLoop closes the paper's full 3-step IDS loop and measures what each
// step buys in delivered packets, on the Table I scenario grid:
//
//	step 1: SAM scores the attacked discovery's route statistics;
//	step 2: a Suspicious/Attacked verdict sends challenge–response probes
//	        (internal/verify) down the accused pair's routes;
//	step 3: a condemned pair lands on an isolation list that the next
//	        discovery consults (FloodConfig.Avoid), and traffic moves to the
//	        rediscovered routes.
//
// Three packet-delivery regimes bracket the loop: pre-attack (clean
// network), under attack (blackhole armed, source oblivious), and
// post-isolation (attack still armed, routes rediscovered around the
// isolated pair). The paper describes the probing and isolation steps but
// never quantifies recovery; this closes that loop.
func VerifyLoop(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	rows := verifyLoopRows(cfg)

	t := &trace.Table{
		Title:   "Extension — closed-loop IDS: detect, probe, isolate, re-route",
		Headers: []string{"Scenario", "PDR pre-attack", "PDR under attack", "PDR post-isolation", "Condemned"},
		Notes: []string{
			"Each run sends " + trace.D(verifyLoopPackets) + " data packets over the (up to 2) routes " +
				"the source would select; attackers blackhole every payload, probes included.",
			"'post-isolation' rediscovers with the condemned pair's nodes excluded from flooding " +
				"(the attack stays armed), so recovery is earned by isolation, not by disarming.",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Scenario,
			trace.Pct(r.PDR[0]), trace.Pct(r.PDR[1]), trace.Pct(r.PDR[2]),
			trace.D(r.Condemned)+"/"+trace.D(cfg.Runs))
	}
	return &trace.Artifact{ID: "verifyloop", Kind: "extension", Tables: []*trace.Table{t}}
}

const verifyLoopPackets = 5

// verifyLoopRow is one scenario's aggregate outcome, exposed separately from
// the rendered table so the golden test can pin numeric bands.
type verifyLoopRow struct {
	Scenario string
	// PDR is the packet delivery ratio per regime: pre-attack, under
	// attack, post-isolation.
	PDR [3]float64
	// Condemned counts the runs whose probe verdict condemned the suspect.
	Condemned int
}

// verifyLoopScenario names one cell of the Table I grid with an
// isolation-aware protocol constructor.
type verifyLoopScenario struct {
	name  string
	build func(Config, int) *topology.Network
	proto func(avoid func(topology.NodeID) bool) routing.Protocol
}

func verifyLoopScenarios() []verifyLoopScenario {
	mrProto := func(avoid func(topology.NodeID) bool) routing.Protocol {
		return &mr.Protocol{Avoid: avoid}
	}
	dsrProto := func(avoid func(topology.NodeID) bool) routing.Protocol {
		return &dsr.Protocol{Avoid: avoid}
	}
	return []verifyLoopScenario{
		{"cluster-1tier/MR", buildCluster(1), mrProto},
		{"cluster-1tier/DSR", buildCluster(1), dsrProto},
		{"uniform6x6/MR", buildUniform(6, 6, 1), mrProto},
		{"uniform6x6/DSR", buildUniform(6, 6, 1), dsrProto},
	}
}

func verifyLoopRows(cfg Config) []verifyLoopRow {
	cfg = cfg.withDefaults()
	rows := make([]verifyLoopRow, 0, 4)
	for _, sc := range verifyLoopScenarios() {
		rows = append(rows, runVerifyLoopScenario(cfg, sc))
	}
	return rows
}

func runVerifyLoopScenario(cfg Config, sc verifyLoopScenario) verifyLoopRow {
	label := "verifyloop/" + sc.name

	// Train the detector on normal-condition discoveries of the same
	// scenario, off the main seed stream (as the pdr extension does).
	trainCfg := cfg
	trainCfg.Runs = 30
	trainCfg.Seed = cfg.Seed + 11
	trainer := sam.NewTrainer(label, 0)
	for _, r := range RunCondition(trainCfg, Condition{
		Label:    label + "/train",
		Build:    sc.build,
		Protocol: func() routing.Protocol { return sc.proto(nil) },
	}) {
		trainer.Observe(r.Stats)
	}
	profile, err := trainer.Profile()
	if err != nil {
		panic("experiment: verifyloop training failed: " + err.Error())
	}

	type loopOut struct {
		sent, delivered [3]int
		condemned       int
	}
	outs := runner.MapWorkerProgress(cfg.Workers, cfg.Runs, cfg.Progress, newSimCache, func(run int, cache *simCache) loopOut {
		var tally loopOut
		net := sc.build(cfg, run)
		atk := attack.NewScenario(net, 1, attack.Blackhole)
		src, dst := net.PickPair(pairRNG(cfg.Seed, run))

		send := func(regime int, simNet *sim.Network, routes []routing.Route) {
			routes = routing.SelectDisjoint(routes, 2)
			if len(routes) == 0 {
				tally.sent[regime] += verifyLoopPackets // nothing usable: all lost
				return
			}
			var batch []routing.Route
			for i := 0; i < verifyLoopPackets; i++ {
				batch = append(batch, routes[i%len(routes)])
			}
			for _, res := range routing.ProbeRoutes(simNet, batch) {
				tally.sent[regime]++
				if res.Acked {
					tally.delivered[regime]++
				}
			}
		}

		// Regime 0 — pre-attack: clean discovery and delivery, no attack.
		preNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label+"/pre", run)})
		pre := sc.proto(nil).Discover(preNet, src, dst)
		send(0, preNet, pre.Routes)

		// Regime 1 — under attack: the oblivious source discovers and sends
		// through the armed blackhole.
		atkNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label+"/attack", run)})
		atk.Arm(atkNet)
		disc := sc.proto(nil).Discover(atkNet, src, dst)
		sendNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label+"/send", run)})
		atk.Arm(sendNet)
		send(1, sendNet, disc.Routes)

		// Steps 1–3: detect, probe the accused pair, isolate on condemnation.
		iso := verify.NewIsolationSet()
		v := sam.NewDetector(profile, sam.DetectorConfig{}).Evaluate(sam.Analyze(disc.Routes))
		if v.Decision != sam.Normal {
			probeNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label+"/probe", run)})
			atk.Arm(probeNet)
			verdict := verify.Probe(probeNet, v.SuspectLink, disc.Routes, cfg.Verify, iso)
			if verdict.Condemned {
				iso.Condemn(verdict)
				tally.condemned = 1
			}
		}

		// Regime 2 — post-isolation: rediscover with the isolation list
		// filtering the flood, attack still armed, and send again.
		redisc := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label+"/redisc", run)})
		atk.Arm(redisc)
		clean := sc.proto(iso.Avoid).Discover(redisc, src, dst)
		postNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label+"/post", run)})
		atk.Arm(postNet)
		send(2, postNet, clean.Routes)

		atk.Teardown()
		return tally
	})

	row := verifyLoopRow{Scenario: sc.name}
	var sent, delivered [3]int
	for _, o := range outs {
		row.Condemned += o.condemned
		for i := 0; i < 3; i++ {
			sent[i] += o.sent[i]
			delivered[i] += o.delivered[i]
		}
	}
	for i := 0; i < 3; i++ {
		if sent[i] > 0 {
			row.PDR[i] = float64(delivered[i]) / float64(sent[i])
		}
	}
	return row
}
