package experiment

import (
	"strconv"

	"samnet/internal/routing"
	"samnet/internal/routing/cdsr"
	"samnet/internal/routing/mr"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
)

// Blackhole reproduces the paper's Section IV discussion as an experiment:
// route caching plus intermediate-node replies (classic DSR) lets an
// early-reply blackhole capture the source's primary route with a
// fabricated claim, while the paper's MR — whose intermediate nodes never
// reply — is structurally immune, and SAM's probe step exposes the
// fabricated route anyway.
func Blackhole(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := &trace.Table{
		Title: "Extension — early-reply blackhole: cached DSR vs MR (6x6 uniform)",
		Headers: []string{
			"Run", "Cached-DSR first route fabricated", "Probe exposes it", "MR routes all genuine",
		},
		Notes: []string{
			"Cached DSR: the attacker answers every request instantly, claiming the destination " +
				"is one hop away; being nearest, its reply usually arrives first.",
			"MR forbids intermediate replies, so every MR route is a path the request actually " +
				"traversed — the paper's 'certain level of resistance to blackhole attack'.",
		},
	}
	type bhOut struct {
		fabricated, probeExposed, allGenuine bool
	}
	rows := runner.MapWorkerProgress(cfg.Workers, cfg.Runs, cfg.Progress, newSimCache, func(run int, cache *simCache) bhOut {
		net := topology.Uniform(6, 6, 1, 1)
		mal := net.Attackers()
		src, dst := net.PickPair(pairRNG(cfg.Seed, run))

		// Cached DSR under the early-reply attacker.
		sCD := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "blackhole/cdsr", run)})
		dCD := (&cdsr.Protocol{Malicious: mal}).Discover(sCD, src, dst)
		fabricated := len(dCD.Routes) > 0 && !dCD.Routes[0].Valid(net.Topo)

		// SAM step 2: probe the captured route; the attacker cannot deliver.
		probeExposed := false
		if fabricated {
			pNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "blackhole/probe", run)})
			pNet.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
				switch pkt.(type) {
				case *routing.Data, *routing.ACK:
					return mal[to]
				}
				return false
			})
			res := routing.ProbeRoutes(pNet, []routing.Route{dCD.Routes[0]})
			probeExposed = !res[0].Acked
		}

		// MR on the same pair: every collected route is a real traversal.
		sMR := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "blackhole/mr", run)})
		dMR := (&mr.Protocol{}).Discover(sMR, src, dst)
		allGenuine := len(dMR.Routes) > 0
		for _, r := range dMR.Routes {
			if !r.Valid(net.Topo) || !r.Simple() {
				allGenuine = false
			}
		}
		_ = sam.Analyze(dMR.Routes) // statistics remain available to the IDS

		return bhOut{fabricated: fabricated, probeExposed: probeExposed, allGenuine: allGenuine}
	})
	for run, r := range rows {
		t.AddRow(strconv.Itoa(run+1), boolMark(r.fabricated), probeMark(r.fabricated, r.probeExposed), boolMark(r.allGenuine))
	}
	return &trace.Artifact{ID: "blackhole", Kind: "extension", Tables: []*trace.Table{t}}
}

func probeMark(fabricated, exposed bool) string {
	if !fabricated {
		return "n/a"
	}
	return boolMark(exposed)
}
