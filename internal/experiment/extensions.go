package experiment

import (
	"strconv"

	"samnet/internal/attack"
	"samnet/internal/leash"
	"samnet/internal/routing"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sector"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
)

// Detection is the end-to-end SAM experiment the paper describes but does
// not tabulate: train a profile on normal-condition discoveries, then run
// the full three-step pipeline on fresh normal and attacked runs, reporting
// detection rate, false positives and attacker localization accuracy.
func Detection(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	const trainRuns = 30

	setups := []struct {
		name  string
		build func(Config, int) *topology.Network
	}{
		{"cluster-1tier", buildCluster(1)},
		{"uniform10x6", buildUniform(10, 6, 1)},
		{"random", buildRandom()},
	}

	t := &trace.Table{
		Title: "Extension — End-to-end SAM detection (trained profile, three-step pipeline)",
		Headers: []string{
			"Topology", "Detection rate", "Localization", "False alarms", "Mean lambda (attack)", "Mean lambda (normal)",
		},
		Notes: []string{
			"Detection rate: attacked runs ending in a confirmed report. Localization: " +
				"confirmed reports whose accused link is the actual tunnel. False alarms: " +
				"normal runs ending in a confirmed report.",
			"Attackers blackhole data packets, so step 2 probes lose their ACKs.",
		},
	}

	for _, s := range setups {
		normalCond := Condition{Label: s.name + "/MR/normal", Build: s.build, Protocol: mrProtocol}
		attackCond := Condition{
			Label: s.name + "/MR/attack", Build: s.build, Wormholes: 1,
			Protocol: mrProtocol, Behavior: attack.Blackhole,
		}

		// Train on extra normal runs (offset run indices keep training and
		// evaluation workloads disjoint).
		trainer := sam.NewTrainer(s.name+"/MR", 0)
		trainCfg := cfg
		trainCfg.Runs = trainRuns
		trainCfg.Seed = cfg.Seed + 1 // disjoint workload stream
		for _, r := range RunCondition(trainCfg, normalCond) {
			trainer.Observe(r.Stats)
		}
		profile, err := trainer.Profile()
		if err != nil {
			panic("experiment: training produced no profile: " + err.Error())
		}

		// Each run gets its own detector and pipeline over the shared
		// read-only profile, so runs evaluate in parallel; the counters fold
		// serially in run order to keep the float sums byte-stable.
		type evalOut struct {
			confirmed, localized bool
			lambda               float64
		}
		evalRuns := func(cond Condition, attacked bool) (confirmed, localized int, lambdaSum float64) {
			results := RunCondition(cfg, cond)
			outs := runner.MapWorkerProgress(cfg.Workers, len(results), cfg.Progress, newSimCache, func(i int, cache *simCache) evalOut {
				r := results[i]
				det := sam.NewDetector(profile, sam.DetectorConfig{})
				pipe := sam.NewPipeline(det, proberFor(cfg, cond, r, cache), nil, sam.PipelineConfig{})
				out := pipe.Process(r.Routes)
				eo := evalOut{lambda: out.Verdict.Lambda}
				if out.Report != nil && out.Report.Confirmed {
					eo.confirmed = true
					if attacked {
						for _, l := range r.TunnelLinks {
							if out.Report.SuspectLink == l {
								eo.localized = true
								break
							}
						}
					}
				}
				return eo
			})
			for _, eo := range outs {
				lambdaSum += eo.lambda
				if eo.confirmed {
					confirmed++
					if eo.localized {
						localized++
					}
				}
			}
			return confirmed, localized, lambdaSum
		}

		tp, loc, lamA := evalRuns(attackCond, true)
		fp, _, lamN := evalRuns(normalCond, false)
		n := float64(cfg.Runs)
		locRate := 0.0
		if tp > 0 {
			locRate = float64(loc) / float64(tp)
		}
		t.AddRow(s.name,
			trace.Pct(float64(tp)/n),
			trace.Pct(locRate),
			trace.Pct(float64(fp)/n),
			trace.F(lamA/n),
			trace.F(lamN/n),
		)
	}
	return &trace.Artifact{ID: "detection", Kind: "extension", Tables: []*trace.Table{t}}
}

// proberFor builds a simulation-backed prober that replays the run's
// scenario: a network with the same topology (drawn from the worker's
// cache), wormholes armed with the same payload behaviour, probing by
// source routing.
func proberFor(cfg Config, cond Condition, r RunResult, cache *simCache) sam.Prober {
	return sam.ProberFunc(func(routes []routing.Route) []routing.ProbeResult {
		net := cond.Build(cfg, r.Run)
		var sc *attack.Scenario
		if cond.Wormholes > 0 {
			sc = attack.NewScenario(net, cond.Wormholes, cond.Behavior)
		}
		simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, cond.Label+"/probe", r.Run)})
		if sc != nil {
			sc.Arm(simNet)
			defer sc.Teardown()
		}
		return routing.ProbeRoutes(simNet, routes)
	})
}

// LeashCompare pits SAM against the two prior-art defenses the paper's
// related work describes — the geographic packet leash and SECTOR's MAD
// distance bounding — on identical attacked runs: what each detects, and
// what hardware each requires.
func LeashCompare(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	cond := clusterCond(1, 1, mrProtocol, "MR")

	t := &trace.Table{
		Title: "Extension — SAM vs packet leash vs SECTOR (1-tier cluster, MR, one wormhole)",
		Headers: []string{
			"Run", "Leash flags tunnel", "SECTOR flags tunnel", "SAM pmax", "SAM suspect = tunnel",
		},
		Notes: []string{
			"Packet leashes check per reception and need GPS + loose clock sync at every node; " +
				"SECTOR distance-bounds each neighbor and needs dedicated challenge-response " +
				"hardware; SAM needs only the route set multi-path routing already collects.",
		},
	}
	type leashOut struct {
		leashHit, sectorHit, samHit bool
		pmax                        float64
	}
	rows := runner.MapWorkerProgress(cfg.Workers, cfg.Runs, cfg.Progress, newSimCache, func(run int, cache *simCache) leashOut {
		net := cond.Build(cfg, run)
		sc := attack.NewScenario(net, cond.Wormholes, cond.Behavior)
		defer sc.Teardown()
		src, dst := net.PickPair(pairRNG(cfg.Seed, run))
		simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, cond.Label, run)})
		checker := leash.New(net.Topo, leash.Config{}, simNet.Rand())
		tally := checker.Monitor(simNet, nil)
		disc := cond.Protocol().Discover(simNet, src, dst)
		verdict := leash.Summarize(tally)
		st := sam.Analyze(disc.Routes)
		tunnel := sc.TunnelLinks()[0]

		prover := sector.New(net.Topo, sector.Config{}, simNet.Rand())
		_, sectorHit := prover.SweepNeighbors()[tunnel]

		return leashOut{
			leashHit:  verdict.Detected && verdict.WorstLink == tunnel,
			sectorHit: sectorHit,
			samHit:    st.Suspect == tunnel,
			pmax:      st.PMax,
		}
	})
	for run, r := range rows {
		t.AddRow(
			strconv.Itoa(run+1),
			boolMark(r.leashHit),
			boolMark(r.sectorHit),
			trace.F(r.pmax),
			boolMark(r.samHit),
		)
	}
	return &trace.Artifact{ID: "leash", Kind: "extension", Tables: []*trace.Table{t}}
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
