package experiment

import (
	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
)

// PDR measures what the wormhole actually costs and what SAM's response
// buys back: the packet delivery ratio of data sent over the routes a
// source would use, in three regimes —
//
//	oblivious:  routes from an attacked discovery, attackers blackholing;
//	detected:   SAM's pipeline ran, the accused pair's routes are avoided
//	            (when clean alternatives exist in the collected set);
//	isolated:   the accused pair is cut out of the network entirely and
//	            routes are rediscovered (step 3's end state).
//
// The paper motivates SAM with exactly this damage model ("the attack nodes
// may perform various attacks, such as the black hole attacks") but never
// quantifies delivery; this closes that loop.
func PDR(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	const packetsPerRun = 5

	t := &trace.Table{
		Title:   "Extension — packet delivery ratio under a blackhole wormhole (1-tier cluster, MR)",
		Headers: []string{"Regime", "Delivered", "PDR"},
		Notes: []string{
			"Each run sends " + trace.D(packetsPerRun) + " data packets over the (up to 2) routes " +
				"the source would select; attackers drop all payloads.",
			"'detected' uses SAM's selected routes after the pipeline's verdict; in the cluster " +
				"every collected route crosses the tunnel, so recovery requires the isolation step.",
		},
	}

	// Train the detector on normal-condition discoveries.
	trainCfg := cfg
	trainCfg.Runs = 30
	trainCfg.Seed = cfg.Seed + 11
	trainer := sam.NewTrainer("pdr", 0)
	for _, r := range RunCondition(trainCfg, clusterCond(1, 0, mrProtocol, "MR")) {
		trainer.Observe(r.Stats)
	}
	profile, err := trainer.Profile()
	if err != nil {
		panic("experiment: pdr training failed: " + err.Error())
	}

	type pdrOut struct {
		sent, delivered [3]int
	}
	outs := runner.MapWorkerProgress(cfg.Workers, cfg.Runs, cfg.Progress, newSimCache, func(run int, cache *simCache) pdrOut {
		var tally pdrOut
		net := topology.Cluster(1, 2)
		sc := attack.NewScenario(net, 1, attack.Blackhole)
		src, dst := net.PickPair(pairRNG(cfg.Seed, run))

		// Attacked discovery: the routes an oblivious source would get.
		discNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "pdr/disc", run)})
		sc.Arm(discNet)
		disc := mrProtocol().Discover(discNet, src, dst)

		send := func(regime int, routes []routing.Route, excluded map[topology.NodeID]bool) {
			routes = routing.SelectDisjoint(routes, 2)
			if len(routes) == 0 {
				tally.sent[regime] += packetsPerRun // nothing usable: all lost
				return
			}
			pNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "pdr/send", run)})
			policy := sc.Arm(pNet)
			if excluded != nil {
				inner := policy.Func(pNet.Rand())
				pNet.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
					return excluded[from] || excluded[to] || inner(n, from, to, pkt)
				})
			}
			var batch []routing.Route
			for i := 0; i < packetsPerRun; i++ {
				batch = append(batch, routes[i%len(routes)])
			}
			for _, res := range routing.ProbeRoutes(pNet, batch) {
				tally.sent[regime]++
				if res.Acked {
					tally.delivered[regime]++
				}
			}
		}

		// Regime 0 — oblivious: use the attacked discovery's routes as-is.
		send(0, disc.Routes, nil)

		// Regime 1 — detected: run the pipeline, use its selected routes.
		det := sam.NewDetector(profile, sam.DetectorConfig{})
		pipe := sam.NewPipeline(det, proberFor(cfg, Condition{
			Label: "pdr/probe", Build: buildCluster(1), Wormholes: 1,
			Protocol: mrProtocol, Behavior: attack.Blackhole,
		}, RunResult{Run: run}, cache), nil, sam.PipelineConfig{})
		out := pipe.Process(disc.Routes)
		send(1, out.SelectedRoutes, nil)

		// Regime 2 — isolated: cut the accused pair out and rediscover.
		excluded := map[topology.NodeID]bool{}
		if out.Report != nil && out.Report.Confirmed {
			excluded[out.Report.Suspects[0]] = true
			excluded[out.Report.Suspects[1]] = true
		}
		redisc := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "pdr/redisc", run)})
		redisc.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
			return excluded[from] || excluded[to]
		})
		clean := mrProtocol().Discover(redisc, src, dst)
		send(2, clean.Routes, excluded)

		sc.Teardown()
		return tally
	})
	var sent, delivered [3]int
	for _, o := range outs {
		for i := 0; i < 3; i++ {
			sent[i] += o.sent[i]
			delivered[i] += o.delivered[i]
		}
	}

	names := []string{"oblivious (no detection)", "detected (avoid accused link)", "isolated (step 3) + rediscovery"}
	for i, name := range names {
		ratio := 0.0
		if sent[i] > 0 {
			ratio = float64(delivered[i]) / float64(sent[i])
		}
		t.AddRow(name, trace.D(delivered[i])+"/"+trace.D(sent[i]), trace.Pct(ratio))
	}
	return &trace.Artifact{ID: "pdr", Kind: "extension", Tables: []*trace.Table{t}}
}
