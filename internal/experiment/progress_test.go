package experiment

import (
	"io"
	"testing"

	"samnet/internal/obs"
)

// TestTelemetryPreservesDeterminism is the observability hard constraint
// pinned at the experiment layer: attaching a progress hook must not change a
// single byte of any artifact, because the hook observes scheduling and
// nothing else. A representative experiment of each porting pattern runs with
// and without telemetry at parallelism > 1.
func TestTelemetryPreservesDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "fig15", "detection", "loss", "pdr"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			base := Config{Runs: 4, Seed: 2005, Workers: 4}
			want := serialize(d.Run(base))

			withHook := base
			withHook.Progress = obs.NewProgress(io.Discard, id, 0)
			if got := serialize(d.Run(withHook)); got != want {
				t.Errorf("progress hook changed the artifact:\n%s\n--- vs ---\n%s", got, want)
			}
		})
	}
}

// TestProgressSeesEveryRun: the experiment harness reports each completed run
// to the hook, across Map and MapGrid call patterns.
func TestProgressSeesEveryRun(t *testing.T) {
	pr := obs.NewProgress(io.Discard, "test", 0)
	d, err := ByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	d.Run(Config{Runs: 3, Seed: 2005, Workers: 2, Progress: pr})
	if pr.Done() == 0 {
		t.Error("progress hook saw no completed runs")
	}
}
