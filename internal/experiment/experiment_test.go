package experiment

import (
	"strings"
	"testing"
)

// fastCfg keeps test runs quick; 4 runs still exercise the full machinery.
var fastCfg = Config{Runs: 4, Seed: 99, Workers: 2}

func TestDeriveSeedDistinguishesInputs(t *testing.T) {
	a := deriveSeed(1, "x", 0)
	if deriveSeed(1, "x", 0) != a {
		t.Error("seed not deterministic")
	}
	for _, other := range []uint64{
		deriveSeed(2, "x", 0),
		deriveSeed(1, "y", 0),
		deriveSeed(1, "x", 1),
	} {
		if other == a {
			t.Error("distinct inputs collided")
		}
	}
}

func TestPairRNGIsConditionIndependent(t *testing.T) {
	a := pairRNG(7, 3)
	b := pairRNG(7, 3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("pair stream not reproducible")
		}
	}
}

func TestRunConditionDeterministicAcrossWorkerCounts(t *testing.T) {
	cond := clusterCond(1, 1, mrProtocol, "MR")
	one := RunCondition(Config{Runs: 5, Seed: 3, Workers: 1}, cond)
	many := RunCondition(Config{Runs: 5, Seed: 3, Workers: 8}, cond)
	for i := range one {
		if one[i].Stats.PMax != many[i].Stats.PMax || one[i].Overhead != many[i].Overhead {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

func TestRunConditionPairsSharedAcrossConditions(t *testing.T) {
	mr := RunCondition(fastCfg, clusterCond(1, 0, mrProtocol, "MR"))
	dsr := RunCondition(fastCfg, clusterCond(1, 1, dsrProtocol, "DSR"))
	for i := range mr {
		if mr[i].Src != dsr[i].Src || mr[i].Dst != dsr[i].Dst {
			t.Fatalf("run %d: pairs differ across conditions (%d->%d vs %d->%d)",
				i, mr[i].Src, mr[i].Dst, dsr[i].Src, dsr[i].Dst)
		}
	}
}

func TestAttackConditionPopulatesTunnels(t *testing.T) {
	res := RunCondition(fastCfg, clusterCond(1, 1, mrProtocol, "MR"))
	for _, r := range res {
		if len(r.TunnelLinks) != 1 {
			t.Fatalf("tunnel links = %v", r.TunnelLinks)
		}
		if r.Affected != 1 {
			t.Errorf("cluster affected = %v, want 1", r.Affected)
		}
	}
}

func TestNormalConditionHasNoTunnels(t *testing.T) {
	res := RunCondition(fastCfg, clusterCond(1, 0, mrProtocol, "MR"))
	for _, r := range res {
		if len(r.TunnelLinks) != 0 || r.Affected != 0 {
			t.Fatalf("normal run has attack residue: %+v", r)
		}
	}
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Registry {
		if seen[d.ID] {
			t.Errorf("duplicate id %q", d.ID)
		}
		seen[d.ID] = true
		got, err := ByID(d.ID)
		if err != nil || got.ID != d.ID {
			t.Errorf("ByID(%q) failed: %v", d.ID, err)
		}
		if d.Kind != "table" && d.Kind != "figure" && d.Kind != "extension" {
			t.Errorf("%s has unknown kind %q", d.ID, d.Kind)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestEveryExperimentProducesRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is not short")
	}
	for _, d := range Registry {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			art := d.Run(fastCfg)
			if art.ID != d.ID {
				t.Errorf("artifact id %q != %q", art.ID, d.ID)
			}
			if len(art.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range art.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
				if tab.Markdown() == "" || tab.CSV() == "" {
					t.Error("render failed")
				}
			}
		})
	}
}

func TestTable1ClusterIsFullyAffected(t *testing.T) {
	art := Table1(fastCfg)
	rows := art.Tables[0].Rows
	for _, row := range rows[:len(rows)-1] { // last row is the average
		if row[1] != "100.0%" || row[2] != "100.0%" {
			t.Errorf("cluster run %s not fully affected: %v", row[0], row)
		}
	}
}

func TestTable2RatioAboveTwo(t *testing.T) {
	art := Table2(fastCfg)
	ratio := art.Tables[1]
	for _, row := range ratio.Rows {
		if !strings.HasPrefix(row[3], "2") && !strings.HasPrefix(row[3], "3") {
			t.Errorf("%s MR/DSR ratio %s outside the 'more than twice' regime", row[0], row[3])
		}
	}
}

func TestFig6AttackAboveNormalInCluster(t *testing.T) {
	art := Fig6(fastCfg)
	rows := art.Tables[0].Rows
	mean := rows[len(rows)-1]
	if mean[0] != "mean" {
		t.Fatal("last row should be the mean")
	}
	if mean[2] <= mean[1] { // string compare works: same width fixed-point
		t.Errorf("cluster attack mean %s not above normal %s", mean[2], mean[1])
	}
}

// BenchmarkRunConditionWorkers measures the worker-pool scaling of the
// experiment executor; run with -cpu 1,2,4 to see the sweep parallelize.
func BenchmarkRunConditionWorkers(b *testing.B) {
	cond := clusterCond(1, 1, mrProtocol, "MR")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunCondition(Config{Runs: 16, Seed: uint64(i + 1)}, cond)
	}
}
