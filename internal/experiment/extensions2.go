package experiment

import (
	"strconv"

	"samnet/internal/attack"
	"samnet/internal/geom"
	"samnet/internal/mobility"
	"samnet/internal/routing"
	"samnet/internal/routing/aomdv"
	"samnet/internal/routing/mdsr"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
)

// Protocols evaluates SAM's statistics over the route sets of the paper's
// future-work protocols (AOMDV, MDSR) next to MR and DSR — the evaluation
// the conclusion says is "underway".
func Protocols(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	protos := []struct {
		name string
		mk   func() routing.Protocol
	}{
		{"MR", mrProtocol},
		{"DSR", dsrProtocol},
		{"AOMDV", func() routing.Protocol { return &aomdv.Protocol{} }},
		{"AODV", func() routing.Protocol { return &aomdv.Protocol{SinglePath: true} }},
		{"MDSR", func() routing.Protocol { return &mdsr.Protocol{} }},
	}

	t := &trace.Table{
		Title: "Extension — SAM statistics across multi-path protocols (1-tier cluster)",
		Headers: []string{
			"Protocol", "Routes (normal)", "Routes (attack)",
			"p_max normal", "p_max attack", "Localized",
		},
		Notes: []string{
			"The paper's conclusion: SMR/AOMDV provide more candidate routes during route " +
				"discovery than their single-path counterparts DSR and AODV, but MDSR does not.",
		},
	}
	// One flattened (protocol x condition x run) grid: all five protocols'
	// normal and attacked runs share the worker pool.
	conds := make([]Condition, 0, 2*len(protos))
	for _, p := range protos {
		conds = append(conds,
			Condition{Label: "protocols/" + p.name + "/normal", Build: buildCluster(1), Protocol: p.mk},
			Condition{
				Label: "protocols/" + p.name + "/attack", Build: buildCluster(1),
				Wormholes: 1, Protocol: p.mk,
			})
	}
	all := RunConditions(cfg, conds)
	for pi, p := range protos {
		normal, attacked := all[2*pi], all[2*pi+1]
		var rn, ra, pn, pa, loc float64
		for i := 0; i < cfg.Runs; i++ {
			rn += float64(len(normal[i].Routes))
			ra += float64(len(attacked[i].Routes))
			pn += normal[i].Stats.PMax
			pa += attacked[i].Stats.PMax
			for _, l := range attacked[i].TunnelLinks {
				if attacked[i].Stats.Suspect == l {
					loc++
				}
			}
		}
		n := float64(cfg.Runs)
		t.AddRow(p.name, trace.F2(rn/n), trace.F2(ra/n), trace.F(pn/n), trace.F(pa/n), trace.Pct(loc/n))
	}
	return &trace.Artifact{ID: "protocols", Kind: "extension", Tables: []*trace.Table{t}}
}

// Rushing evaluates SAM against a rushing-only adversary (no tunnel): the
// attackers forward with a fraction of the normal MAC delay, biasing
// duplicate suppression toward themselves. The paper claims SAM extends to
// "any routing attacks as long as certain statistics of the obtained routes
// change significantly" — this measures how much rushing actually moves
// them.
func Rushing(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := &trace.Table{
		Title:   "Extension — route statistics under a rushing attack (1-tier cluster, MR)",
		Headers: []string{"Run", "p_max normal", "p_max rushing", "Rushers on max-link"},
		Notes: []string{
			"Rushing bends routes toward the attackers but creates no impossible link, so " +
				"the statistical signature is far weaker than a wormhole's — SAM's stated limit.",
		},
	}
	normal := RunCondition(cfg, clusterCond(1, 0, mrProtocol, "MR"))
	type rushOut struct {
		pmax  float64
		onMax bool
	}
	rows := runner.MapWorkerProgress(cfg.Workers, cfg.Runs, cfg.Progress, newSimCache, func(run int, cache *simCache) rushOut {
		net := topology.Cluster(1, 2)
		sc := attack.NewRushingScenario(net, 1, 0.3, attack.Forward)
		src, dst := net.PickPair(pairRNG(cfg.Seed, run))
		simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "rushing", run)})
		sc.Arm(simNet)
		disc := mrProtocol().Discover(simNet, src, dst)
		st := sam.Analyze(disc.Routes)
		mal := sc.MaliciousNodes()
		return rushOut{pmax: st.PMax, onMax: mal[st.MaxLink.A] || mal[st.MaxLink.B]}
	})
	for run, r := range rows {
		t.AddRow(strconv.Itoa(run+1), trace.F(normal[run].Stats.PMax), trace.F(r.pmax), boolMark(r.onMax))
	}
	return &trace.Artifact{ID: "rushing", Kind: "extension", Tables: []*trace.Table{t}}
}

// Loss measures SAM's robustness to channel loss: detection statistics on
// the attacked cluster as the per-reception loss rate grows.
func Loss(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := &trace.Table{
		Title:   "Extension — wormhole statistics under channel loss (1-tier cluster, MR)",
		Headers: []string{"Loss rate", "Mean routes", "Mean p_max attack", "Mean p_max normal", "Localized"},
		Notes: []string{
			"Route sets shrink as receptions die, but the tunnel stays dominant: the wormhole " +
				"signature survives moderate loss.",
		},
	}
	losses := []float64{0, 0.05, 0.1, 0.2}
	type lossOut struct {
		routes, pa, pn float64
		localized      bool
	}
	// One flattened (loss rate x run) grid; sums fold serially per row.
	grid := runner.MapGridWorkerProgress(cfg.Workers, len(losses), cfg.Runs, cfg.Progress, newSimCache, func(li, run int, cache *simCache) lossOut {
		loss := losses[li]

		// Attacked run.
		net := topology.Cluster(1, 2)
		sc := attack.NewScenario(net, 1, attack.Forward)
		defer sc.Teardown()
		src, dst := net.PickPair(pairRNG(cfg.Seed, run))
		simNet := cache.network(net.Topo, sim.Config{
			Seed: deriveSeed(cfg.Seed, "loss/attack", run), LossRate: loss,
		})
		disc := mrProtocol().Discover(simNet, src, dst)
		st := sam.Analyze(disc.Routes)
		out := lossOut{
			routes:    float64(len(disc.Routes)),
			pa:        st.PMax,
			localized: len(disc.Routes) > 0 && st.Suspect == sc.TunnelLinks()[0],
		}

		// Paired normal run at the same loss rate.
		netN := topology.Cluster(1, 2)
		simN := cache.network(netN.Topo, sim.Config{
			Seed: deriveSeed(cfg.Seed, "loss/normal", run), LossRate: loss,
		})
		discN := mrProtocol().Discover(simN, src, dst)
		out.pn = sam.Analyze(discN.Routes).PMax
		return out
	})
	for li, loss := range losses {
		var routes, pa, pn, loc float64
		for _, o := range grid[li] {
			routes += o.routes
			pa += o.pa
			pn += o.pn
			if o.localized {
				loc++
			}
		}
		n := float64(cfg.Runs)
		t.AddRow(trace.Pct(loss), trace.F2(routes/n), trace.F(pa/n), trace.F(pn/n), trace.Pct(loc/n))
	}
	return &trace.Artifact{ID: "loss", Kind: "extension", Tables: []*trace.Table{t}}
}

// Mobility evaluates SAM when legitimate nodes roam (random waypoint)
// between route discoveries while the attackers stay pinned — the paper's
// deferred mobility question.
func Mobility(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := &trace.Table{
		Title:   "Extension — SAM under random-waypoint mobility (random topology, MR)",
		Headers: []string{"Drift time", "Connected runs", "Mean p_max attack", "Mean p_max normal", "Localized"},
		Notes: []string{
			"Nodes drift between discoveries; attackers stay at fixed positions (the paper's " +
				"assumption). Disconnected draws produce empty route sets and are skipped in the means.",
		},
	}
	drifts := []float64{0, 2, 5, 10}
	type mobOut struct {
		connected bool
		pa, pn    float64
		localized bool
	}
	mobGrid := runner.MapGridWorkerProgress(cfg.Workers, len(drifts), cfg.Runs, cfg.Progress, newSimCache, func(di, run int, cache *simCache) mobOut {
		net := topology.Random(topology.RandomConfig{Wormholes: 1}, topoRNG(cfg.Seed, run))
		model := mobility.New(net.Topo, mobility.Config{
			Arena: geom.NewRect(geom.Pt(0, 0), geom.Pt(15, 15)),
		}, topoRNG(cfg.Seed+1, run))
		pair := net.AttackerPairs[0]
		model.Pin(pair[0], pair[1])
		model.Advance(drifts[di])

		src, dst := net.PickPair(pairRNG(cfg.Seed, run))
		sc := attack.NewScenario(net, 1, attack.Forward)
		simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "mobility/attack", run)})
		disc := mrProtocol().Discover(simNet, src, dst)
		sc.Teardown()

		simN := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "mobility/normal", run)})
		discN := mrProtocol().Discover(simN, src, dst)

		if len(disc.Routes) == 0 || len(discN.Routes) == 0 {
			return mobOut{} // drifted apart: no routes either way
		}
		st := sam.Analyze(disc.Routes)
		return mobOut{
			connected: true,
			pa:        st.PMax,
			pn:        sam.Analyze(discN.Routes).PMax,
			localized: st.Suspect == topology.MkLink(pair[0], pair[1]),
		}
	})
	for di, drift := range drifts {
		var pa, pn, loc float64
		connected := 0
		for _, o := range mobGrid[di] {
			if !o.connected {
				continue
			}
			connected++
			pa += o.pa
			pn += o.pn
			if o.localized {
				loc++
			}
		}
		if connected == 0 {
			t.AddRow(trace.F2(drift), "0", "-", "-", "-")
			continue
		}
		n := float64(connected)
		t.AddRow(trace.F2(drift), strconv.Itoa(connected), trace.F(pa/n), trace.F(pn/n), trace.Pct(loc/n))
	}
	return &trace.Artifact{ID: "mobility", Kind: "extension", Tables: []*trace.Table{t}}
}
