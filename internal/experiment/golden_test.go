package experiment

// Golden reproduction tests: the paper-shape claims in Table I, Table II,
// and Figures 6/7 are asserted at the default configuration (seed 2005,
// 10 runs), so paper fidelity is regression-guarded rather than eyeballed.
// Each assertion states the paper's qualitative claim; the numeric bands are
// the seed values measured at the default seed with slack for refactors
// that legitimately perturb tie-breaking (a band violation means the
// simulated physics changed, not just an implementation detail).

import "testing"

func goldenAvg(rs []RunResult, f func(RunResult) float64) float64 {
	var s float64
	for _, r := range rs {
		s += f(r)
	}
	return s / float64(len(rs))
}

func inBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.4f, want within [%.4f, %.4f]", name, got, lo, hi)
	}
}

// TestGoldenTable1 asserts Table I: on the cluster topology every obtained
// route crosses the tunnel (100% for both MR and DSR); on the 6x6 uniform
// grid the fraction is substantially lower but far from zero.
func TestGoldenTable1(t *testing.T) {
	cfg := Config{}.withDefaults()
	affected := func(r RunResult) float64 { return r.Affected }

	clusterMR := goldenAvg(RunCondition(cfg, clusterCond(1, 1, mrProtocol, "MR")), affected)
	clusterDSR := goldenAvg(RunCondition(cfg, clusterCond(1, 1, dsrProtocol, "DSR")), affected)
	uniformMR := goldenAvg(RunCondition(cfg, uniformCond(6, 6, 1, 1, mrProtocol, "MR")), affected)
	uniformDSR := goldenAvg(RunCondition(cfg, uniformCond(6, 6, 1, 1, dsrProtocol, "DSR")), affected)

	// Paper: "all the routes obtained are affected by the wormhole attack"
	// on the cluster topology.
	inBand(t, "cluster MR affected", clusterMR, 0.999, 1.0)
	inBand(t, "cluster DSR affected", clusterDSR, 0.999, 1.0)
	// Paper: uniform topology is affected less; measured 0.425 (MR) and
	// 0.475 (DSR) at the default seed.
	inBand(t, "uniform MR affected", uniformMR, 0.20, 0.80)
	inBand(t, "uniform DSR affected", uniformDSR, 0.20, 0.80)
}

// TestGoldenTable2 asserts Table II's claim that MR's route-discovery
// overhead is more than twice DSR's, on both topologies. Measured ratios at
// the default seed: 2.52 (cluster) and 2.53 (uniform).
func TestGoldenTable2(t *testing.T) {
	cfg := Config{}.withDefaults()
	overhead := func(r RunResult) float64 { return float64(r.Overhead) }

	clusterMR := goldenAvg(RunCondition(cfg, clusterCond(1, 1, mrProtocol, "MR")), overhead)
	clusterDSR := goldenAvg(RunCondition(cfg, clusterCond(1, 1, dsrProtocol, "DSR")), overhead)
	uniformMR := goldenAvg(RunCondition(cfg, uniformCond(6, 6, 1, 1, mrProtocol, "MR")), overhead)
	uniformDSR := goldenAvg(RunCondition(cfg, uniformCond(6, 6, 1, 1, dsrProtocol, "DSR")), overhead)

	inBand(t, "cluster MR/DSR overhead ratio", clusterMR/clusterDSR, 2.0, 3.2)
	inBand(t, "uniform MR/DSR overhead ratio", uniformMR/uniformDSR, 2.0, 3.2)
}

// TestGoldenFig6Fig7 asserts the Figure 6/7 separation on the 1-tier
// cluster: under attack p_max roughly doubles (measured 0.079 -> 0.162) and
// phi jumps an order of magnitude (measured 0.010 -> 0.167). It also
// asserts the paper's negative result: the 6-hop uniform tunnel is too
// short for a clean p_max separation.
func TestGoldenFig6Fig7(t *testing.T) {
	cfg := Config{}.withDefaults()
	pmax := func(r RunResult) float64 { return r.Stats.PMax }
	phi := func(r RunResult) float64 { return r.Stats.Phi }

	clusterNormal := RunCondition(cfg, clusterCond(1, 0, mrProtocol, "MR"))
	clusterAttack := RunCondition(cfg, clusterCond(1, 1, mrProtocol, "MR"))
	uniformNormal := RunCondition(cfg, uniformCond(6, 6, 1, 0, mrProtocol, "MR"))
	uniformAttack := RunCondition(cfg, uniformCond(6, 6, 1, 1, mrProtocol, "MR"))

	pmaxNormal := goldenAvg(clusterNormal, pmax)
	pmaxAttack := goldenAvg(clusterAttack, pmax)
	inBand(t, "cluster normal mean p_max", pmaxNormal, 0.05, 0.11)
	inBand(t, "cluster attack mean p_max", pmaxAttack, 0.13, 0.21)
	if pmaxAttack < 1.7*pmaxNormal {
		t.Errorf("cluster p_max jump %.4f -> %.4f is below the paper's ~2x separation",
			pmaxNormal, pmaxAttack)
	}

	phiNormal := goldenAvg(clusterNormal, phi)
	phiAttack := goldenAvg(clusterAttack, phi)
	inBand(t, "cluster normal mean phi", phiNormal, 0.0, 0.05)
	inBand(t, "cluster attack mean phi", phiAttack, 0.10, 0.30)

	// Negative result: the short uniform tunnel does not separate cleanly.
	uPmaxNormal := goldenAvg(uniformNormal, pmax)
	uPmaxAttack := goldenAvg(uniformAttack, pmax)
	if uPmaxAttack > 1.5*uPmaxNormal {
		t.Errorf("uniform 6x6 p_max separates too cleanly (%.4f -> %.4f): "+
			"the paper's short-tunnel caveat no longer reproduces", uPmaxNormal, uPmaxAttack)
	}
}
