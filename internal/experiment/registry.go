package experiment

import (
	"fmt"
	"sort"

	"samnet/internal/trace"
)

// Definition names one reproducible experiment.
type Definition struct {
	ID    string
	Kind  string // "table", "figure" or "extension"
	Title string
	Run   func(Config) *trace.Artifact
}

// Registry lists every experiment in presentation order: the paper's two
// tables, its eleven figures, then the extensions.
var Registry = []Definition{
	{"table1", "table", "Table I — % of routes affected by wormhole attack", Table1},
	{"table2", "table", "Table II — overhead of route discovery", Table2},
	{"fig5", "figure", "Fig 5 — PMF of n/N, normal vs attack", Fig5},
	{"fig6", "figure", "Fig 6 — p_max of 1-tier networks", Fig6},
	{"fig7", "figure", "Fig 7 — phi of 1-tier networks", Fig7},
	{"fig8", "figure", "Fig 8 — p_max and phi, 10x6 uniform, 10-hop tunnel", Fig8},
	{"fig9", "figure", "Fig 9 — a network with random topology", Fig9},
	{"fig10", "figure", "Fig 10 — p_max of random topologies", Fig10},
	{"fig11", "figure", "Fig 11 — p_max of cluster systems, 1- vs 2-tier", Fig11},
	{"fig12", "figure", "Fig 12 — phi of cluster systems, 1- vs 2-tier", Fig12},
	{"fig13", "figure", "Fig 13 — p_max, MR vs DSR routes", Fig13},
	{"fig14", "figure", "Fig 14 — phi, MR vs DSR routes", Fig14},
	{"fig15", "figure", "Fig 15 — p_max under no/one/two wormholes", Fig15},
	{"detection", "extension", "End-to-end SAM detection rates", Detection},
	{"leash", "extension", "SAM vs geographic packet leash", LeashCompare},
	{"protocols", "extension", "SAM across MR/DSR/AOMDV/MDSR route sets", Protocols},
	{"rushing", "extension", "Route statistics under a rushing attack", Rushing},
	{"loss", "extension", "Wormhole signature under channel loss", Loss},
	{"mobility", "extension", "SAM under random-waypoint mobility", Mobility},
	{"blackhole", "extension", "Early-reply blackhole: cached DSR vs MR", Blackhole},
	{"adaptive", "extension", "Adaptive vs frozen profile on a drifting network", Adaptive},
	{"roc", "extension", "Detector operating curve (threshold sweep)", ROC},
	{"pdr", "extension", "Packet delivery ratio: oblivious vs detected vs isolated", PDR},
	{"verifyloop", "extension", "Closed-loop IDS: detect, probe, isolate, re-route", VerifyLoop},
	{"rocmatrix", "extension", "ROC matrix: detector family vs. adversary family", ROCMatrix},
}

// ByID returns the experiment definition with the given id.
func ByID(id string) (Definition, error) {
	for _, d := range Registry {
		if d.ID == id {
			return d, nil
		}
	}
	ids := make([]string, len(Registry))
	for i, d := range Registry {
		ids[i] = d.ID
	}
	sort.Strings(ids)
	return Definition{}, fmt.Errorf("experiment: unknown id %q (known: %v)", id, ids)
}
