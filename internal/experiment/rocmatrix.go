package experiment

import (
	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mr"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
)

// ROCMatrix sweeps the detector family against the adversary family — the
// arms race the paper's single classic wormhole never exercises. Rows are
// scenarios (normal plus each complex-attack variant); columns are the three
// detectors: SAM alone (the paper's p_max/phi statistic), the PMF detector,
// and the hybrid that adds per-link z-scores, neighbor-table comparison and
// delay-consistency evidence. The interesting cells are the ones where a
// complex adversary flattens the frequency signal SAM keys on (relay chains
// split it, adaptive throttling starves it, forgery diversifies it) and the
// hybrid's side channels recover the detection — without raising the normal
// rows' false-alarm rate.
func ROCMatrix(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	rows := rocMatrixRows(cfg)

	matrix := &trace.Table{
		Title:   "Extension — ROC matrix: detector family vs. adversary family (1-tier cluster)",
		Headers: []string{"Scenario", "Routes", "p_max", "SAM", "PMF", "Hybrid"},
		Notes: []string{
			"Each detector column is the fraction of runs flagged: a false-alarm rate on the " +
				"normal rows, a detection rate on the attack rows.",
			"SAM flags a verdict other than 'normal' (it triggers step-2 probing); PMF flags on " +
				"total-variation distance or tail mass; the hybrid ORs SAM with per-link z-score, " +
				"neighbor-table and delay-consistency evidence.",
			"MR rows score the destination's collected routes; DSR rows score the replies the " +
				"source receives (forged replies never reach the destination's collection).",
		},
	}
	channels := &trace.Table{
		Title:   "Hybrid evidence channels (fraction of runs each channel fired)",
		Headers: []string{"Scenario", "BySAM", "ByPMF", "ByZ", "ByNeighbor", "ByDelay"},
		Notes: []string{
			"Which leg of the hybrid carries each detection: chains and adaptive tunnels evade " +
				"the frequency channels but leak through neighbor detours and timing; forged " +
				"replies leak through uncorroborated links and impossible reply latency.",
		},
	}
	for _, r := range rows {
		matrix.AddRow(r.Scenario,
			trace.F2(r.MeanRoutes), trace.F(r.MeanPMax),
			trace.Pct(r.SAM), trace.Pct(r.PMF), trace.Pct(r.Hybrid))
		channels.AddRow(r.Scenario,
			trace.Pct(r.Channels[0]), trace.Pct(r.Channels[1]), trace.Pct(r.Channels[2]),
			trace.Pct(r.Channels[3]), trace.Pct(r.Channels[4]))
	}
	return &trace.Artifact{ID: "rocmatrix", Kind: "extension", Tables: []*trace.Table{matrix, channels}}
}

// rocMatrixRow is one scenario's aggregate outcome, exposed separately from
// the rendered table so the golden and determinism tests can pin bands.
type rocMatrixRow struct {
	Scenario string
	// SAM, PMF, Hybrid are the flagged-run fractions per detector.
	SAM, PMF, Hybrid float64
	// Channels are the hybrid's per-channel firing fractions, in verdict
	// order: BySAM, ByPMF, ByZ, ByNeighbor, ByDelay.
	Channels [5]float64
	// MeanPMax and MeanRoutes summarize the scored route sets.
	MeanPMax, MeanRoutes float64
}

// rocMatrixCell names one scenario row: a protocol family and an adversary
// variant ("" = normal).
type rocMatrixCell struct {
	name    string
	proto   string // "MR" or "DSR"
	variant string // attack.Named vocabulary
}

// rocMatrixCells is the sweep grid. MR rows cover the tunnel-based variants
// (the destination's collection is where tunnel frequency shows); the DSR
// rows cover reply forgery, which only exists on the reply path, plus its own
// normal baseline.
func rocMatrixCells() []rocMatrixCell {
	return []rocMatrixCell{
		{"normal/MR", "MR", ""},
		{"classic/MR", "MR", "classic"},
		{"latent/MR", "MR", "latent"},
		{"chain/MR", "MR", "chain"},
		{"adaptive/MR", "MR", "adaptive"},
		{"normal/DSR", "DSR", ""},
		{"forge/DSR", "DSR", "forge"},
	}
}

// rocMatrixRun executes one discovery of one cell and returns what a
// detector deployment would see: the scored route set, its per-route timing
// (nil-safe for the delay check), and the claimed neighbor tables (honest
// radio claims plus the colluders corroborating their own tunnels).
func rocMatrixRun(cfg Config, label, proto, variant string, run int, cache *simCache) ([]routing.Route, []sim.Time, *sam.NeighborTables) {
	net := topology.Cluster(1, 2)
	var sc *attack.Scenario
	if variant != "" {
		var err error
		sc, err = attack.Named(variant, net, attack.Forward)
		if err != nil {
			panic("experiment: rocmatrix: " + err.Error())
		}
	}
	src, dst := net.PickPair(pairRNG(cfg.Seed, run))
	simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, label, run)})

	nbr := sam.RadioNeighborTables(net.Topo)
	var forge routing.ForgeFunc
	if sc != nil {
		sc.Arm(simNet)
		for _, w := range sc.Tunnels {
			if w.Installed() {
				nbr.ClaimLink(w.A, w.B)
			}
		}
		if variant == "forge" {
			forge = sc.ForgeFunc()
		}
	}

	var routes []routing.Route
	var times []sim.Time
	switch proto {
	case "MR":
		disc := (&mr.Protocol{Forge: forge}).Discover(simNet, src, dst)
		routes, times = disc.Routes, disc.Times
	case "DSR":
		disc := (&dsr.Protocol{Forge: forge}).Discover(simNet, src, dst)
		routes = disc.Replies
		times = make([]sim.Time, len(disc.ReplyTimes))
		for i, at := range disc.ReplyTimes {
			// Reply travel time: forged replies launch mid-flood and land
			// before the flood ends, so their elapsed time goes negative —
			// squarely inside the hybrid's "faster than radio" band.
			times[i] = at - disc.FloodEnd
		}
	default:
		panic("experiment: rocmatrix: unknown protocol " + proto)
	}
	if sc != nil {
		sc.Teardown()
	}
	return routes, times, nbr
}

// rocMatrixProfile trains one protocol family's normal-condition profile on a
// seed stream disjoint from evaluation.
func rocMatrixProfile(cfg Config, proto string) *sam.Profile {
	label := "rocmatrix/train/" + proto
	trainCfg := cfg
	trainCfg.Runs = 30
	trainCfg.Seed = cfg.Seed + 13
	statsOut := runner.MapWorkerProgress(trainCfg.Workers, trainCfg.Runs, trainCfg.Progress, newSimCache, func(run int, cache *simCache) sam.Stats {
		routes, _, _ := rocMatrixRun(trainCfg, label, proto, "", run, cache)
		return sam.Analyze(routes)
	})
	trainer := sam.NewTrainer(label, 0)
	for _, s := range statsOut {
		trainer.Observe(s)
	}
	profile, err := trainer.Profile()
	if err != nil {
		panic("experiment: rocmatrix training failed: " + err.Error())
	}
	return profile
}

func rocMatrixRows(cfg Config) []rocMatrixRow {
	cfg = cfg.withDefaults()
	profiles := map[string]*sam.Profile{
		"MR":  rocMatrixProfile(cfg, "MR"),
		"DSR": rocMatrixProfile(cfg, "DSR"),
	}
	cells := rocMatrixCells()

	type out struct {
		flags    [3]bool // SAM, PMF, hybrid
		channels [5]bool // BySAM, ByPMF, ByZ, ByNeighbor, ByDelay
		pmax     float64
		routes   int
	}
	outs := runner.MapGridWorkerProgress(cfg.Workers, len(cells), cfg.Runs, cfg.Progress, newSimCache, func(c, run int, cache *simCache) out {
		cell := cells[c]
		profile := profiles[cell.proto]
		routes, times, nbr := rocMatrixRun(cfg, "rocmatrix/"+cell.name, cell.proto, cell.variant, run, cache)
		st := sam.Analyze(routes)
		samV := sam.NewDetector(profile, sam.DetectorConfig{}).Evaluate(st)
		hybV := sam.NewHybridDetector(profile, nbr, sam.HybridConfig{}).Evaluate(st, routes, times)
		return out{
			flags:    [3]bool{samV.Decision != sam.Normal, hybV.PMF.Attacked, hybV.Attacked},
			channels: [5]bool{hybV.BySAM, hybV.ByPMF, hybV.ByZ, hybV.ByNeighbor, hybV.ByDelay},
			pmax:     st.PMax,
			routes:   len(routes),
		}
	})

	rows := make([]rocMatrixRow, len(cells))
	n := float64(cfg.Runs)
	for c, cell := range cells {
		r := rocMatrixRow{Scenario: cell.name}
		for _, o := range outs[c] {
			if o.flags[0] {
				r.SAM++
			}
			if o.flags[1] {
				r.PMF++
			}
			if o.flags[2] {
				r.Hybrid++
			}
			for i, fired := range o.channels {
				if fired {
					r.Channels[i]++
				}
			}
			r.MeanPMax += o.pmax
			r.MeanRoutes += float64(o.routes)
		}
		r.SAM /= n
		r.PMF /= n
		r.Hybrid /= n
		for i := range r.Channels {
			r.Channels[i] /= n
		}
		r.MeanPMax /= n
		r.MeanRoutes /= n
		rows[c] = r
	}
	return rows
}
