package experiment

import (
	"samnet/internal/sam"
	"samnet/internal/trace"
)

// ROC sweeps the detector's sensitivity (the z-score ramp) and reports the
// detection/false-alarm trade-off on the cluster workload — the operating
// curve a deployment would use to pick thresholds. The paper fixes one
// operating point implicitly; this makes the whole curve visible.
func ROC(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()

	// More evaluation runs than the default 10 make the rates legible.
	evalCfg := cfg
	if evalCfg.Runs < 20 {
		evalCfg.Runs = 20
	}

	normal := RunCondition(evalCfg, clusterCond(1, 0, mrProtocol, "MR"))
	attacked := RunCondition(evalCfg, clusterCond(1, 1, mrProtocol, "MR"))

	// Train on a disjoint workload stream.
	trainCfg := cfg
	trainCfg.Runs = 30
	trainCfg.Seed = cfg.Seed + 7
	trainer := sam.NewTrainer("roc", 0)
	for _, r := range RunCondition(trainCfg, clusterCond(1, 0, mrProtocol, "MR")) {
		trainer.Observe(r.Stats)
	}
	profile, err := trainer.Profile()
	if err != nil {
		panic("experiment: roc training failed: " + err.Error())
	}

	t := &trace.Table{
		Title:   "Extension — detector operating curve (1-tier cluster, MR)",
		Headers: []string{"Sensitivity (z-ramp)", "Detection rate", "False-alarm rate", "Mean lambda gap"},
		Notes: []string{
			"Each row is one detector configuration: a verdict other than 'normal' counts as " +
				"a detection (attacked runs) or a false alarm (normal runs).",
			"The mean lambda gap (normal minus attacked) is threshold-independent evidence of " +
				"separation.",
		},
	}
	sweeps := []struct {
		name      string
		zLow, zHi float64
	}{
		{"z 0.5-1.5 (aggressive)", 0.5, 1.5},
		{"z 1.0-2.5", 1.0, 2.5},
		{"z 1.5-4.0 (default)", 1.5, 4.0},
		{"z 2.5-5.0", 2.5, 5.0},
		{"z 4.0-8.0 (conservative)", 4.0, 8.0},
	}
	for _, sw := range sweeps {
		det := sam.NewDetector(profile, sam.DetectorConfig{ZLow: sw.zLow, ZHigh: sw.zHi})
		var tp, fp int
		var lamN, lamA float64
		for i := 0; i < evalCfg.Runs; i++ {
			va := det.Evaluate(attacked[i].Stats)
			lamA += va.Lambda
			if va.Decision != sam.Normal {
				tp++
			}
			vn := det.Evaluate(normal[i].Stats)
			lamN += vn.Lambda
			if vn.Decision != sam.Normal {
				fp++
			}
		}
		n := float64(evalCfg.Runs)
		t.AddRow(sw.name,
			trace.Pct(float64(tp)/n),
			trace.Pct(float64(fp)/n),
			trace.F((lamN-lamA)/n),
		)
	}
	return &trace.Artifact{ID: "roc", Kind: "extension", Tables: []*trace.Table{t}}
}
