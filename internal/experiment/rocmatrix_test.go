package experiment

// ROC-matrix regression tests: the arms-race claims are golden-pinned (which
// adversaries degrade which detectors, and that the hybrid's recovery costs
// no normal-condition false alarms), the matrix is proven bitwise-identical
// across worker counts, and the adaptive attacker's throttle is pinned to
// actually hold the observed p_max under the trained alarm level — the
// property the scenario is named for. Measured values at seed 2005, 30 runs,
// are noted inline; bands leave slack for tie-break-level refactors.

import (
	"testing"
)

func rocMatrixRowsByName(t *testing.T, cfg Config) map[string]rocMatrixRow {
	t.Helper()
	rows := rocMatrixRows(cfg)
	out := make(map[string]rocMatrixRow, len(rows))
	for _, r := range rows {
		out[r.Scenario] = r
	}
	return out
}

// TestGoldenROCMatrix pins the arms race. SAM alone (and the PMF detector)
// keeps the paper's near-perfect detection of the classic and latent
// wormholes, but degrades hard against the relay chain (measured 3%), the
// adaptive throttler (30%) and reply forgery (43%). The hybrid recovers all
// three (70% / 83% / 100%) while flagging exactly the same normal runs the
// PMF component already flagged — the side channels are free of their own
// false alarms.
func TestGoldenROCMatrix(t *testing.T) {
	rows := rocMatrixRowsByName(t, Config{Runs: 30})

	// Baselines stay detected by everything: classic and latent wormholes
	// keep the frequency spike the paper measures.
	for _, name := range []string{"classic/MR", "latent/MR"} {
		inBand(t, name+" SAM", rows[name].SAM, 0.85, 1.0)
		inBand(t, name+" hybrid", rows[name].Hybrid, 0.95, 1.0)
	}
	inBand(t, "classic/MR mean p_max", rows["classic/MR"].MeanPMax, 0.13, 0.21)
	inBand(t, "normal/MR mean p_max", rows["normal/MR"].MeanPMax, 0.05, 0.11)

	// The arms race: at least these attack classes defeat the frequency
	// statistic and are recovered by the hybrid's side channels.
	degraded := []struct {
		name             string
		samMax, hybridLo float64
	}{
		{"chain/MR", 0.20, 0.50},    // measured SAM 0.03, hybrid 0.70 (ByDelay)
		{"adaptive/MR", 0.50, 0.65}, // measured SAM 0.30, hybrid 0.83 (ByNeighbor+ByDelay)
		{"forge/DSR", 0.60, 0.90},   // measured SAM 0.43, hybrid 1.00 (ByNeighbor+ByDelay)
	}
	for _, d := range degraded {
		r := rows[d.name]
		inBand(t, d.name+" SAM (degraded)", r.SAM, 0.0, d.samMax)
		inBand(t, d.name+" hybrid (recovered)", r.Hybrid, d.hybridLo, 1.0)
		if r.Hybrid < r.SAM+0.3 {
			t.Errorf("%s: hybrid %.2f does not meaningfully recover over SAM %.2f",
				d.name, r.Hybrid, r.SAM)
		}
	}

	// Recovery must be free: on the normal rows the hybrid's extra channels
	// stay silent, so its false-alarm rate sits in the same band as the
	// components' (measured 0.13 MR, 0.20 DSR) and adds at most one run over
	// the PMF component alone.
	for _, name := range []string{"normal/MR", "normal/DSR"} {
		r := rows[name]
		inBand(t, name+" hybrid false alarms", r.Hybrid, 0.0, 0.25)
		if r.Hybrid > r.PMF+0.034 {
			t.Errorf("%s: hybrid false-alarm rate %.2f exceeds PMF's %.2f — "+
				"the side channels are misfiring on normal traffic", name, r.Hybrid, r.PMF)
		}
		inBand(t, name+" z channel silent", r.Channels[2], 0, 0)
		inBand(t, name+" neighbor channel silent", r.Channels[3], 0, 0)
		inBand(t, name+" delay channel silent", r.Channels[4], 0, 0)
	}
}

// TestROCMatrixDeterministicAcrossWorkers proves the matrix honors the
// runner contract at the worker counts the issue names: 1, 4 and 8 produce
// bitwise-identical artifacts (training included).
func TestROCMatrixDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, w := range []int{1, 4, 8} {
		got := serialize(ROCMatrix(Config{Runs: 4, Seed: 2005, Workers: w}))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d produced different output than workers=1:\n%s\n--- vs ---\n%s",
				w, got, want)
		}
	}
}

// TestROCMatrixAdaptiveThrottleHoldsPMax pins the adaptive attacker to its
// contract: the request budget plus slowed tunnel keep the observed mean
// p_max under the trained hard-alarm level (profile mean + ZHigh sigmas, the
// level where SAM's risk saturates), which the un-throttled classic wormhole
// clearly crosses on the same workload.
func TestROCMatrixAdaptiveThrottleHoldsPMax(t *testing.T) {
	cfg := Config{Runs: 30}.withDefaults()
	profile := rocMatrixProfile(cfg, "MR")
	rows := rocMatrixRowsByName(t, cfg)

	// The detector floors sigma at MinStd (default 0.02) before thresholding;
	// mirror that here.
	std := profile.PMax.Std
	if std < 0.02 {
		std = 0.02
	}
	alarm := profile.PMax.Mean + 4*std // DetectorConfig default ZHigh

	adaptive, classic := rows["adaptive/MR"], rows["classic/MR"]
	if adaptive.MeanPMax >= alarm {
		t.Errorf("adaptive mean p_max %.4f breaches the trained alarm level %.4f: the throttle failed",
			adaptive.MeanPMax, alarm)
	}
	if classic.MeanPMax <= profile.PMax.Mean+1.5*std {
		t.Errorf("classic mean p_max %.4f never leaves the normal band (mean %.4f, std %.4f): "+
			"the workload cannot witness the throttle's effect", classic.MeanPMax, profile.PMax.Mean, std)
	}
	if adaptive.MeanPMax >= classic.MeanPMax {
		t.Errorf("adaptive mean p_max %.4f is not below classic's %.4f", adaptive.MeanPMax, classic.MeanPMax)
	}
}
