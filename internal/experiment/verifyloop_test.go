package experiment

import (
	"testing"

	"samnet/internal/verify"
)

// TestGoldenVerifyLoop pins the closed-loop claim at the default
// configuration: the blackhole destroys delivery, the probe protocol
// condemns the tunnel, and isolation-aware rediscovery recovers delivery
// toward the pre-attack baseline. Measured at seed 2005 / 10 runs:
// cluster MR 1.00 -> 0.00 -> 1.00 (10/10 condemned), cluster DSR
// 1.00 -> 0.00 -> 0.86 (10/10), uniform MR 1.00 -> 0.58 -> 0.76 (3/10),
// uniform DSR 1.00 -> 0.54 -> 0.92 (5/10). Bands carry slack for refactors
// that legitimately perturb tie-breaking; a violation means the loop's
// physics changed.
func TestGoldenVerifyLoop(t *testing.T) {
	rows := verifyLoopRows(Config{})
	if len(rows) != 4 {
		t.Fatalf("got %d scenario rows, want 4", len(rows))
	}
	byName := map[string]verifyLoopRow{}
	for _, r := range rows {
		byName[r.Scenario] = r

		// Universal claims: a clean network delivers everything, and
		// isolation never makes delivery worse than the oblivious regime.
		inBand(t, r.Scenario+" pre-attack PDR", r.PDR[0], 0.999, 1.0)
		if r.PDR[2] < r.PDR[1] {
			t.Errorf("%s: post-isolation PDR %.4f below under-attack %.4f",
				r.Scenario, r.PDR[2], r.PDR[1])
		}
	}

	// Cluster: every route crosses the tunnel (Table I), so the blackhole
	// zeroes delivery, every run's probes condemn, and rediscovery around
	// the isolated pair restores most of the baseline.
	for _, name := range []string{"cluster-1tier/MR", "cluster-1tier/DSR"} {
		r := byName[name]
		inBand(t, name+" under-attack PDR", r.PDR[1], 0.0, 0.05)
		inBand(t, name+" post-isolation PDR", r.PDR[2], 0.70, 1.0)
		if r.Condemned < 8 {
			t.Errorf("%s: condemned %d/10 runs, want >= 8", name, r.Condemned)
		}
	}

	// Uniform grid: the short tunnel hurts less and separates less (the
	// paper's caveat), so detection fires on only some runs — but the runs
	// it does catch still lift the aggregate.
	for _, name := range []string{"uniform6x6/MR", "uniform6x6/DSR"} {
		r := byName[name]
		inBand(t, name+" under-attack PDR", r.PDR[1], 0.30, 0.80)
		inBand(t, name+" post-isolation PDR", r.PDR[2], 0.60, 1.0)
		if r.Condemned < 1 {
			t.Errorf("%s: condemned %d/10 runs, want >= 1", name, r.Condemned)
		}
	}
}

// TestVerifyLoopDeterminism proves the closed loop rides the runner
// contract: the rendered artifact is bitwise identical for every worker
// count, per-run isolation state and probe traffic included.
func TestVerifyLoopDeterminism(t *testing.T) {
	d, err := ByID("verifyloop")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, w := range []int{1, 4, 8} {
		got := serialize(d.Run(Config{Runs: 4, Seed: 2005, Workers: w}))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d produced different output than workers=1:\n%s\n--- vs ---\n%s",
				w, got, want)
		}
	}
}

// TestVerifyLoopExplicitZero pins the Config.Verify hook's ExplicitZero
// semantics: MaxProbes = verify.ExplicitZero means zero probes, so no run
// can gather evidence and nothing is ever condemned — step 3 never fires.
func TestVerifyLoopExplicitZero(t *testing.T) {
	rows := verifyLoopRows(Config{
		Runs:   4,
		Verify: verify.Config{MaxProbes: verify.ExplicitZero},
	})
	for _, r := range rows {
		if r.Condemned != 0 {
			t.Errorf("%s: condemned %d runs with probing disabled, want 0", r.Scenario, r.Condemned)
		}
	}
}
