package experiment

import (
	"samnet/internal/attack"
	"samnet/internal/geom"
	"samnet/internal/mobility"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/trace"
)

// Adaptive demonstrates the purpose of the paper's low-pass profile update
// (equations 8-9): a long-lived IDS agent watches a slowly drifting network.
// A detector that keeps updating its profile (weighted by lambda*beta)
// tracks the drift and stays quiet on normal traffic, while a frozen
// detector accumulates false alarms as its training data goes stale. When a
// wormhole finally activates, both must still raise the alert — the
// lambda-weighting is what keeps attack observations from polluting the
// adaptive profile.
func Adaptive(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	const (
		normalPhase  = 40 // drifting normal discoveries
		attackPhase  = 10 // discoveries with the wormhole active
		driftPerStep = 0.3
	)

	type agentStats struct {
		falseAlarms int // non-normal verdicts during the normal phase
		detections  int // non-normal verdicts during the attack phase
	}
	var adaptive, frozen agentStats

	net := topology.Random(topology.RandomConfig{Wormholes: 1}, topoRNG(cfg.Seed, 0))
	pair := net.AttackerPairs[0]
	model := mobility.New(net.Topo, mobility.Config{
		Arena:    geom.NewRect(geom.Pt(0, 0), geom.Pt(15, 15)),
		MaxSpeed: 0.8,
	}, topoRNG(cfg.Seed+1, 0))
	model.Pin(pair[0], pair[1])

	// The whole experiment is serial (profiles fold in step order), so one
	// cached network serves every discovery.
	cache := newSimCache()

	// Train both detectors on the initial topology.
	trainer := sam.NewTrainer("adaptive", 0)
	for run := 0; run < 20; run++ {
		src, dst := net.PickPair(pairRNG(cfg.Seed+2, run))
		simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "adaptive/train", run)})
		trainer.ObserveRoutes(mrProtocol().Discover(simNet, src, dst).Routes)
	}
	profile, err := trainer.Profile()
	if err != nil {
		panic("experiment: adaptive training failed: " + err.Error())
	}
	adaptiveDet := sam.NewDetector(profile, sam.DetectorConfig{Beta: 0.2})
	frozenDet := sam.NewDetector(profile, sam.DetectorConfig{})

	step := 0
	discover := func(label string) []sam.Stats {
		src, dst := net.PickPair(pairRNG(cfg.Seed+3, step))
		simNet := cache.network(net.Topo, sim.Config{Seed: deriveSeed(cfg.Seed, "adaptive/"+label, step)})
		d := mrProtocol().Discover(simNet, src, dst)
		if len(d.Routes) == 0 {
			return nil
		}
		return []sam.Stats{sam.Analyze(d.Routes)}
	}

	// A Suspicious verdict triggers the probe step, which passes when no
	// payload is being dropped — so only outright Attacked verdicts raise
	// alarms in either phase (the attackers here forward payloads; they are
	// caught by statistics, the hardest case).
	evaluate := func(st sam.Stats, attacked bool) {
		va := adaptiveDet.Evaluate(st)
		adaptiveDet.Update(st, va.Lambda) // eq. 8-9: lambda-weighted refresh
		vf := frozenDet.Evaluate(st)      // no update: stale profile
		if attacked {
			if va.Decision == sam.Attacked {
				adaptive.detections++
			}
			if vf.Decision == sam.Attacked {
				frozen.detections++
			}
			return
		}
		if va.Decision == sam.Attacked {
			adaptive.falseAlarms++
		}
		if vf.Decision == sam.Attacked {
			frozen.falseAlarms++
		}
	}

	normalSeen, attackSeen := 0, 0
	for ; step < normalPhase; step++ {
		model.Advance(driftPerStep)
		for _, st := range discover("normal") {
			normalSeen++
			evaluate(st, false)
		}
	}
	sc := attack.NewScenario(net, 1, attack.Forward)
	for ; step < normalPhase+attackPhase; step++ {
		for _, st := range discover("attack") {
			attackSeen++
			evaluate(st, true)
		}
	}
	sc.Teardown()

	t := &trace.Table{
		Title: "Extension — adaptive profile (eq. 8-9) vs frozen profile on a drifting network",
		Headers: []string{
			"Detector", "False alarms (drift phase)", "Detections (attack phase)",
		},
		Notes: []string{
			trace.D(normalSeen) + " normal discoveries while the network drifts, then " +
				trace.D(attackSeen) + " with the wormhole active; attackers pinned.",
			"The adaptive detector refreshes its means with weight lambda*beta, so normal " +
				"drift is absorbed but attacked observations (lambda near 0) never pollute it.",
		},
	}
	t.AddRow("adaptive (beta=0.2)",
		trace.D(adaptive.falseAlarms)+"/"+trace.D(normalSeen),
		trace.D(adaptive.detections)+"/"+trace.D(attackSeen))
	t.AddRow("frozen",
		trace.D(frozen.falseAlarms)+"/"+trace.D(normalSeen),
		trace.D(frozen.detections)+"/"+trace.D(attackSeen))
	return &trace.Artifact{ID: "adaptive", Kind: "extension", Tables: []*trace.Table{t}}
}
