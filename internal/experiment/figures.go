package experiment

import (
	"fmt"
	"strconv"

	"samnet/internal/topology"
	"samnet/internal/trace"
)

// statFn extracts the plotted statistic from a run.
type statFn func(RunResult) float64

func pmaxOf(r RunResult) float64 { return r.Stats.PMax }
func phiOf(r RunResult) float64  { return r.Stats.Phi }

// seriesTable renders one figure panel: per-run values of one statistic for
// several conditions, plus a mean row — the tabular equivalent of the
// paper's scatter plots.
func seriesTable(cfg Config, title, stat string, fn statFn, conds []Condition, names []string, notes ...string) *trace.Table {
	t := &trace.Table{
		Title:   title,
		Headers: append([]string{"Run"}, names...),
		Notes:   notes,
	}
	results := RunConditions(cfg, conds)
	means := make([]float64, len(conds))
	for run := 0; run < cfg.Runs; run++ {
		row := []string{strconv.Itoa(run + 1)}
		for i := range conds {
			v := fn(results[i][run])
			means[i] += v
			row = append(row, trace.F(v))
		}
		t.AddRow(row...)
	}
	row := []string{"mean"}
	for i := range means {
		row = append(row, trace.F(means[i]/float64(cfg.Runs)))
	}
	t.AddRow(row...)
	_ = stat
	return t
}

// Fig5 reproduces Figure 5: the PMF of the per-link relative frequency n/N
// for a single 1-tier cluster run, normal system versus system under
// wormhole attack.
func Fig5(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	both := RunConditions(cfg, []Condition{
		clusterCond(1, 0, mrProtocol, "MR"),
		clusterCond(1, 1, mrProtocol, "MR"),
	})
	normal, attacked := both[0][0], both[1][0]

	const bins = 25 // 4% resolution over [0,1]
	pN := normal.Stats.PMF(bins)
	pA := attacked.Stats.PMF(bins)

	t := &trace.Table{
		Title:   "Figure 5 — PMF of n/N (single run, 1-tier cluster, MR)",
		Headers: []string{"Bin center", "Normal mass", "Attack mass"},
		Notes: []string{
			fmt.Sprintf("Normal: max relative frequency %.1f%% over %d distinct links.",
				100*normal.Stats.PMax, len(normal.Stats.ByLink)),
			fmt.Sprintf("Attack: max relative frequency %.1f%% (link %v, the tunnel), isolated from the rest of the mass.",
				100*attacked.Stats.PMax, attacked.Stats.MaxLink),
			"Paper shape: normal max ~9%, attacked max >15% and far apart from the other links.",
		},
	}
	for i := 0; i < bins; i++ {
		if pN.Counts[i] == 0 && pA.Counts[i] == 0 {
			continue
		}
		t.AddRow(trace.F(pN.BinCenter(i)), trace.F(pN.Prob(i)), trace.F(pA.Prob(i)))
	}
	return &trace.Artifact{ID: "fig5", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig6 reproduces Figure 6: p_max of 1-tier cluster and uniform networks
// under MR, normal versus attacked, per run.
func Fig6(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 6 — p_max of 1-tier networks (MR)", "pmax", pmaxOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			uniformCond(6, 6, 1, 0, mrProtocol, "MR"),
			uniformCond(6, 6, 1, 1, mrProtocol, "MR"),
		},
		[]string{"Cluster normal", "Cluster attack", "Uniform normal", "Uniform attack"},
		"Paper shape: cluster attack clearly above cluster normal; the 6-hop uniform tunnel is too short to separate as cleanly.",
	)
	return &trace.Artifact{ID: "fig6", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig7 reproduces Figure 7: phi for the same four conditions as Fig6.
func Fig7(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 7 — phi of 1-tier networks (MR)", "phi", phiOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			uniformCond(6, 6, 1, 0, mrProtocol, "MR"),
			uniformCond(6, 6, 1, 1, mrProtocol, "MR"),
		},
		[]string{"Cluster normal", "Cluster attack", "Uniform normal", "Uniform attack"},
		"phi = 0 marks the paper's special case: two links tied at the maximum "+
			"(attackers aligned with source or destination row/column).",
	)
	return &trace.Artifact{ID: "fig7", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig8 reproduces Figure 8: p_max and phi on the 10x6 uniform grid whose
// attack link spans 10 hops.
func Fig8(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	conds := []Condition{
		uniformCond(10, 6, 1, 0, mrProtocol, "MR"),
		uniformCond(10, 6, 1, 1, mrProtocol, "MR"),
	}
	names := []string{"Normal", "Attack"}
	tp := seriesTable(cfg, "Figure 8a — p_max, 10x6 uniform grid (10-hop tunnel, MR)", "pmax", pmaxOf, conds, names,
		"Paper shape: with the longer tunnel both statistics separate on the uniform topology too.")
	tphi := seriesTable(cfg, "Figure 8b — phi, 10x6 uniform grid (10-hop tunnel, MR)", "phi", phiOf, conds, names)
	return &trace.Artifact{ID: "fig8", Kind: "figure", Tables: []*trace.Table{tp, tphi}}
}

// Fig9 reproduces Figure 9: one drawn random topology — node coordinates and
// roles.
func Fig9(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	net := topology.Random(topology.RandomConfig{Wormholes: 1}, topoRNG(cfg.Seed, 0))
	attackers := net.Attackers()
	srcs := make(map[topology.NodeID]bool)
	for _, id := range net.SrcPool {
		srcs[id] = true
	}
	dsts := make(map[topology.NodeID]bool)
	for _, id := range net.DstPool {
		dsts[id] = true
	}
	t := &trace.Table{
		Title:   "Figure 9 — A random topology (node placement)",
		Headers: []string{"Node", "X", "Y", "Role", "Degree"},
		Notes: []string{
			fmt.Sprintf("%d nodes in a %.0fx%.0f area, radio range %.1f; attacker pair tunnel spans %d hops.",
				net.Topo.N(), 15.0, 15.0, net.Topo.Radius(), net.TunnelSpan(0)),
		},
	}
	for i := 0; i < net.Topo.N(); i++ {
		id := topology.NodeID(i)
		role := "relay"
		switch {
		case attackers[id]:
			role = "attacker"
		case srcs[id]:
			role = "source pool"
		case dsts[id]:
			role = "destination pool"
		}
		p := net.Topo.Pos(id)
		t.AddRow(strconv.Itoa(i), trace.F2(p.X), trace.F2(p.Y), role, strconv.Itoa(net.Topo.Degree(id)))
	}
	return &trace.Artifact{ID: "fig9", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig10 reproduces Figure 10: p_max on random topologies (fresh placement
// per run), normal versus attacked.
func Fig10(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 10 — p_max of networks with random topology (MR)", "pmax", pmaxOf,
		[]Condition{
			randomCond(0, mrProtocol, "MR"),
			randomCond(1, mrProtocol, "MR"),
		},
		[]string{"Normal", "Attack"},
		"Paper shape: p_max alone separates attack from normal on random topologies "+
			"(the paper does not plot phi here, and phi is indeed uninformative).",
	)
	return &trace.Artifact{ID: "fig10", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig11 reproduces Figure 11: p_max of cluster systems at 1-tier and 2-tier
// transmission ranges.
func Fig11(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 11 — p_max of cluster systems, 1-tier vs 2-tier (MR)", "pmax", pmaxOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			clusterCond(2, 0, mrProtocol, "MR"),
			clusterCond(2, 1, mrProtocol, "MR"),
		},
		[]string{"1-tier normal", "1-tier attack", "2-tier normal", "2-tier attack"},
		"Paper shape: attack above normal at both ranges; the attack stays effective "+
			"as long as the tunnel is much longer than the transmission range.",
	)
	return &trace.Artifact{ID: "fig11", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig12 reproduces Figure 12: phi for the same conditions as Fig11.
func Fig12(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 12 — phi of cluster systems, 1-tier vs 2-tier (MR)", "phi", phiOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			clusterCond(2, 0, mrProtocol, "MR"),
			clusterCond(2, 1, mrProtocol, "MR"),
		},
		[]string{"1-tier normal", "1-tier attack", "2-tier normal", "2-tier attack"},
		"Known deviation: in this reconstruction the 2-tier normal phi is elevated by "+
			"grid-parity bottlenecks of ideal unit-disk ranges, so the paper's phi ordering "+
			"holds at 1-tier but not 2-tier; p_max (Fig 11) separates at both.",
	)
	return &trace.Artifact{ID: "fig12", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig13 reproduces Figure 13: p_max computed from MR routes versus DSR
// routes on the 1-tier cluster.
func Fig13(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 13 — p_max of 1-tier cluster, MR vs DSR routes", "pmax", pmaxOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			clusterCond(1, 0, dsrProtocol, "DSR"),
			clusterCond(1, 1, dsrProtocol, "DSR"),
		},
		[]string{"MR normal", "MR attack", "DSR normal", "DSR attack"},
		"Paper shape: p_max separates for both protocols — statistical detection also "+
			"works on routes from protocols other than MR.",
	)
	return &trace.Artifact{ID: "fig13", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig14 reproduces Figure 14: phi for the same conditions as Fig13.
func Fig14(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 14 — phi of 1-tier cluster, MR vs DSR routes", "phi", phiOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			clusterCond(1, 0, dsrProtocol, "DSR"),
			clusterCond(1, 1, dsrProtocol, "DSR"),
		},
		[]string{"MR normal", "MR attack", "DSR normal", "DSR attack"},
		"Paper shape: phi keeps its character for MR but not for DSR — DSR's few routes "+
			"make the gap statistic unreliable.",
	)
	return &trace.Artifact{ID: "fig14", Kind: "figure", Tables: []*trace.Table{t}}
}

// Fig15 reproduces Figure 15: p_max under zero, one and two simultaneous
// wormhole attacks on the 1-tier cluster.
func Fig15(cfg Config) *trace.Artifact {
	cfg = cfg.withDefaults()
	t := seriesTable(cfg, "Figure 15 — p_max under no/one/two wormhole attacks (1-tier cluster, MR)", "pmax", pmaxOf,
		[]Condition{
			clusterCond(1, 0, mrProtocol, "MR"),
			clusterCond(1, 1, mrProtocol, "MR"),
			clusterCond(1, 2, mrProtocol, "MR"),
		},
		[]string{"No wormhole", "One wormhole", "Two wormholes"},
		"Paper shape: p_max much higher in both attacked systems than normal; variance "+
			"grows with the number of wormholes (tunnels compete for routes).",
	)
	return &trace.Artifact{ID: "fig15", Kind: "figure", Tables: []*trace.Table{t}}
}
