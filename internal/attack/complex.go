// Complex adversaries beyond the paper's classic two-node wormhole
// (cf. the taxonomy of multi-node and variable-latency wormholes in the
// wormhole literature): colluding relay chains, latent tunnels, an adaptive
// attacker that throttles tunnel usage to stay under the detector's trained
// p_max threshold, and Byzantine route-reply forgery. Each reshapes the
// link-frequency signal SAM keys on in a different way; the hybrid detector
// (internal/sam) adds the neighbor-table and delay-consistency evidence that
// recovers detection where the frequency statistic alone collapses.
package attack

import (
	"fmt"
	"math"
	"sort"

	"samnet/internal/geom"
	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Default parameters of the named complex-adversary variants.
const (
	// DefaultLatentDelay is the extra latency per tunnel crossing of the
	// "latent" variant, in hop-delay units: the covert channel is slower
	// than radio, leaving timing evidence.
	DefaultLatentDelay sim.Time = 6
	// DefaultChainRelays is the number of colluding relay nodes the "chain"
	// variant inserts between the classic attacker pair.
	DefaultChainRelays = 3
	// DefaultChainDelay is the per-chain-link store-and-forward latency of
	// the "chain" variant.
	DefaultChainDelay sim.Time = 2
)

// NewLatentScenario installs count classic wormholes whose tunnel crossings
// each cost the given extra delay — a variable-latency out-of-band channel.
// The frequency signature is unchanged (SAM still fires); the point is the
// timing evidence: tunneled routes arrive slower per claimed hop than radio
// ever delivers.
func NewLatentScenario(net *topology.Network, count int, delay sim.Time, behavior PayloadBehavior) *Scenario {
	if delay <= 0 {
		panic("attack: latent tunnel delay must be positive")
	}
	s := NewScenario(net, count, behavior)
	s.TunnelDelay = delay
	return s
}

// NewChainScenario builds a colluding wormhole chain: the endpoints of
// attacker pair 0 plus the given number of relay nodes between them, every
// consecutive pair joined by a tunnel link with the given per-link latency.
// Relays are the placed nodes nearest the evenly spaced points on the
// endpoint-to-endpoint segment; all chain nodes become colluders (and are
// removed from the source/destination pools).
//
// Against SAM the chain is frequency camouflage: the tunnel's appearance
// count is split across relays+1 links, and chain routes are longer, so no
// single link's relative frequency spikes the way a 1-link tunnel's does.
func NewChainScenario(net *topology.Network, relays int, delay sim.Time, behavior PayloadBehavior) *Scenario {
	if relays < 1 {
		panic("attack: chain needs at least one relay")
	}
	if len(net.AttackerPairs) == 0 {
		panic("attack: network has no attacker pair to anchor the chain")
	}
	pair := net.AttackerPairs[0]
	topo := net.Topo
	pa, pb := topo.Pos(pair[0]), topo.Pos(pair[1])
	claimed := map[topology.NodeID]bool{pair[0]: true, pair[1]: true}
	chain := []topology.NodeID{pair[0]}
	for i := 1; i <= relays; i++ {
		anchor := pa.Lerp(pb, float64(i)/float64(relays+1))
		id := nearestNode(topo, anchor, claimed)
		claimed[id] = true
		chain = append(chain, id)
	}
	chain = append(chain, pair[1])

	s := &Scenario{Net: net, Behavior: behavior, TunnelDelay: delay}
	for i := 0; i+1 < len(chain); i++ {
		s.Tunnels = append(s.Tunnels, Install(topo, chain[i], chain[i+1]))
	}
	net.SrcPool = poolWithout(net.SrcPool, claimed)
	net.DstPool = poolWithout(net.DstPool, claimed)
	return s
}

// AdaptiveConfig tunes NewAdaptiveScenario. The zero value selects the most
// conservative attacker: one tunneled request copy per discovery, tunnel
// latency matched to the path it shortcuts.
type AdaptiveConfig struct {
	// TargetPMax is the trained p_max alarm level the attacker engineers its
	// throttle to stay under (recorded on the scenario; informational).
	TargetPMax float64
	// Budget is the per-discovery tunneled-RREQ budget (default 1).
	Budget int
	// Delay is the tunnel's extra crossing latency. The default is one less
	// than the tunnel's normal-path hop span, so tunneled copies stop
	// winning first-arrival races — honest routes keep flooding and dilute
	// the tunnel's appearance frequency.
	Delay sim.Time
}

// NewAdaptiveScenario installs count classic wormholes driven by an attacker
// that knows SAM's statistics and throttles itself under them: few tunneled
// request copies per discovery (so few collected routes carry the tunnel)
// and a slow-enough tunnel that honest routes arrive first and stay in the
// collection. The tunnel still attracts payload traffic — its routes are
// shorter — but the p_max spike SAM alarms on never forms.
func NewAdaptiveScenario(net *topology.Network, count int, behavior PayloadBehavior, cfg AdaptiveConfig) *Scenario {
	s := NewScenario(net, count, behavior)
	if cfg.Budget <= 0 {
		cfg.Budget = 1
	}
	if cfg.Delay <= 0 {
		span := 2
		if count > 0 {
			if d := net.TunnelSpan(0); d > span {
				span = d
			}
		}
		cfg.Delay = sim.Time(span - 1)
	}
	s.TunnelDelay = cfg.Delay
	s.ReqBudget = cfg.Budget
	s.TargetPMax = cfg.TargetPMax
	return s
}

// NewForgeScenario builds Byzantine route-reply forgers: the first pairs
// attacker pairs collude, but instead of tunneling they answer route
// requests with fabricated replies (wire the scenario's ForgeFunc into the
// protocol). No extra link is installed, so Teardown is a no-op on these
// handles.
func NewForgeScenario(net *topology.Network, pairs int, behavior PayloadBehavior) *Scenario {
	if pairs < 1 || pairs > len(net.AttackerPairs) {
		panic("attack: forge pairs out of range")
	}
	s := &Scenario{Net: net, Behavior: behavior}
	for i := 0; i < pairs; i++ {
		p := net.AttackerPairs[i]
		s.Tunnels = append(s.Tunnels, &Wormhole{A: p[0], B: p[1], topo: net.Topo})
	}
	return s
}

// ForgeFunc returns the routing hook implementing this scenario's Byzantine
// route-reply forgery. Each malicious node answers the first request copy it
// receives with a fabricated short route: the real path prefix up to itself,
// one invented relay, then the destination. The invented relay varies per
// forge (a deterministic counter walks the node space, preferring nodes not
// actually adjacent to the forger or the destination), so no fabricated link
// repeats often enough to trip SAM's frequency statistic — but every
// fabricated link is uncorroborated by honest neighbor tables, and forged
// replies reach the source mid-flood, far earlier than any honest reply.
func (s *Scenario) ForgeFunc() routing.ForgeFunc {
	malicious := s.MaliciousNodes()
	topo := s.Net.Topo
	n := topo.N()
	counter := 0
	return func(self, from topology.NodeID, q *routing.RREQ, prefix routing.Route) routing.Route {
		if !malicious[self] || self == q.Dst || self == q.Src {
			return nil
		}
		counter++
		fake := topology.None
		fallback := topology.None
		for i := 0; i < n; i++ {
			cand := topology.NodeID((counter*13 + i) % n)
			if cand == q.Dst || cand == q.Src || prefix.Contains(cand) {
				continue
			}
			if fallback == topology.None {
				fallback = cand
			}
			if !topo.Adjacent(self, cand) && !topo.Adjacent(cand, q.Dst) {
				fake = cand
				break
			}
		}
		if fake == topology.None {
			fake = fallback
		}
		if fake == topology.None {
			return nil
		}
		out := make(routing.Route, 0, len(prefix)+2)
		out = append(out, prefix...)
		return append(out, fake, q.Dst)
	}
}

// Variants lists the named complex-adversary constructions Named accepts, in
// the order the ROC matrix sweeps them.
func Variants() []string {
	return []string{"classic", "latent", "chain", "adaptive", "forge"}
}

// Named builds the named adversary variant on net with default parameters —
// the shared vocabulary of the ROC-matrix experiment and the serving layer's
// scenario replay. "classic" (or "") is the paper's two-node wormhole; see
// NewLatentScenario, NewChainScenario, NewAdaptiveScenario and
// NewForgeScenario for the others. The "forge" scenario's hook must still be
// wired into the protocol by the caller (Scenario.ForgeFunc).
func Named(name string, net *topology.Network, behavior PayloadBehavior) (*Scenario, error) {
	switch name {
	case "", "classic":
		return NewScenario(net, 1, behavior), nil
	case "latent":
		return NewLatentScenario(net, 1, DefaultLatentDelay, behavior), nil
	case "chain":
		return NewChainScenario(net, DefaultChainRelays, DefaultChainDelay, behavior), nil
	case "adaptive":
		return NewAdaptiveScenario(net, 1, behavior, AdaptiveConfig{}), nil
	case "forge":
		return NewForgeScenario(net, 1, behavior), nil
	}
	known := Variants()
	sort.Strings(known)
	return nil, fmt.Errorf("attack: unknown variant %q (known: %v)", name, known)
}

// nearestNode returns the placed node nearest p that is not yet claimed.
func nearestNode(t *topology.Topology, p geom.Point, claimed map[topology.NodeID]bool) topology.NodeID {
	best := topology.None
	bestD := math.MaxFloat64
	for i := 0; i < t.N(); i++ {
		id := topology.NodeID(i)
		if claimed[id] {
			continue
		}
		if d := t.Pos(id).Dist2(p); d < bestD {
			best, bestD = id, d
		}
	}
	if best == topology.None {
		panic("attack: no node available as chain relay")
	}
	return best
}

// poolWithout filters claimed nodes out of a source/destination pool in
// place.
func poolWithout(pool []topology.NodeID, drop map[topology.NodeID]bool) []topology.NodeID {
	out := pool[:0]
	for _, id := range pool {
		if !drop[id] {
			out = append(out, id)
		}
	}
	return out
}
