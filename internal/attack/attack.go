// Package attack implements the adversary models the paper studies. The
// central one is the wormhole: a pair of colluding nodes connected by an
// out-of-band tunnel, so that routing sees them as one-hop neighbors however
// far apart they sit. Wormhole nodes do not modify or fabricate packets —
// which is why cryptography cannot detect them — but once routes traverse
// the tunnel they can mount payload attacks: blackhole (drop everything) or
// greyhole (drop selectively).
package attack

import (
	"fmt"
	"math/rand/v2"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Wormhole is one installed tunnel between two attacker nodes.
type Wormhole struct {
	A, B topology.NodeID
	topo *topology.Topology
	// installed tracks whether this handle owns a live extra link. Handles
	// that never tunneled (rushing attackers) leave it false, so Remove
	// cannot tear down a link someone else installed on the same pair.
	installed bool
}

// Install creates the tunnel between a and b in topo and returns a handle
// for later removal. The attacker nodes must already exist in the topology.
func Install(topo *topology.Topology, a, b topology.NodeID) *Wormhole {
	if a == b {
		panic("attack: wormhole endpoints must differ")
	}
	topo.AddExtraLink(a, b)
	return &Wormhole{A: a, B: b, topo: topo, installed: true}
}

// InstallPairs installs the first count wormholes of net's attacker pairs
// and returns the handles. count may be 0.
func InstallPairs(net *topology.Network, count int) []*Wormhole {
	if count < 0 || count > len(net.AttackerPairs) {
		panic(fmt.Sprintf("attack: count must be in [0,%d]", len(net.AttackerPairs)))
	}
	out := make([]*Wormhole, 0, count)
	for i := 0; i < count; i++ {
		p := net.AttackerPairs[i]
		out = append(out, Install(net.Topo, p[0], p[1]))
	}
	return out
}

// Remove tears the tunnel down (e.g. after the IDS isolates the attackers).
// It is a no-op on a handle whose tunnel was never installed — tunnel-less
// attackers (rushing scenarios) share the Wormhole bookkeeping, and tearing
// such a handle down must not delete an extra link installed by anyone else
// on the same pair.
func (w *Wormhole) Remove() {
	if !w.installed {
		return
	}
	w.installed = false
	w.topo.RemoveExtraLink(w.A, w.B)
}

// Installed reports whether this handle currently owns a live tunnel link.
func (w *Wormhole) Installed() bool { return w.installed }

// Link returns the tunnel as a normalized link — the paper's "attack link"
// whose appearance frequency SAM keys on.
func (w *Wormhole) Link() topology.Link { return topology.MkLink(w.A, w.B) }

// Endpoints returns the attacker node set of this wormhole.
func (w *Wormhole) Endpoints() map[topology.NodeID]bool {
	return map[topology.NodeID]bool{w.A: true, w.B: true}
}

// PayloadBehavior is what wormhole endpoints do with data packets once
// routes flow through them.
type PayloadBehavior int

const (
	// Forward: attackers relay payloads faithfully. SAM's statistical step
	// still detects the tunnel, but the probe step cannot confirm it.
	Forward PayloadBehavior = iota
	// Blackhole: attackers drop every data packet.
	Blackhole
	// Greyhole: attackers drop each data packet with probability DropProb.
	Greyhole
)

// String implements fmt.Stringer.
func (b PayloadBehavior) String() string {
	switch b {
	case Forward:
		return "forward"
	case Blackhole:
		return "blackhole"
	case Greyhole:
		return "greyhole"
	}
	return fmt.Sprintf("PayloadBehavior(%d)", int(b))
}

// DropPolicy builds a sim.DropFunc implementing the payload behaviour of a
// set of malicious nodes. Routing traffic (RREQ/RREP) always passes: the
// wormhole behaves normally during routing, exactly the property that makes
// it hard to detect. Only payload packets (routing.PayloadPacket — Data,
// ACK, and the verify probes) are dropped.
type DropPolicy struct {
	Malicious map[topology.NodeID]bool
	Behavior  PayloadBehavior
	DropProb  float64 // greyhole drop probability (default 0.5)
	Dropped   int64   // count of payload packets destroyed
}

// NewDropPolicy builds a policy over the given malicious nodes.
func NewDropPolicy(malicious map[topology.NodeID]bool, b PayloadBehavior) *DropPolicy {
	return &DropPolicy{Malicious: malicious, Behavior: b, DropProb: 0.5}
}

// Func returns the sim.DropFunc. rng draws greyhole decisions; it must be
// the simulation's own source for reproducibility.
func (p *DropPolicy) Func(rng *rand.Rand) sim.DropFunc {
	return func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if _, ok := pkt.(routing.PayloadPacket); !ok {
			return false // routing traffic always passes
		}
		// A packet dies when a malicious node is asked to hand it onward
		// (i.e. the receiving relay is malicious: it accepts and destroys).
		if !p.Malicious[to] {
			return false
		}
		switch p.Behavior {
		case Blackhole:
			p.Dropped++
			return true
		case Greyhole:
			if rng.Float64() < p.DropProb {
				p.Dropped++
				return true
			}
		}
		return false
	}
}

// Scenario bundles a network with its active wormholes and payload policy,
// which is how experiments describe "the system under attack".
type Scenario struct {
	Net      *topology.Network
	Tunnels  []*Wormhole
	Behavior PayloadBehavior
	// RushFactor, when in (0,1), makes the attackers rushing adversaries
	// (Hu-Perrig-Johnson's rushing attack): they forward with a fraction of
	// the normal MAC delay, winning duplicate-suppression races even
	// without a tunnel. Zero disables rushing.
	RushFactor float64
	// TunnelDelay is the extra latency each tunnel-link crossing costs — a
	// variable-latency out-of-band channel instead of the classic
	// instantaneous one. Zero keeps the classic free tunnel.
	TunnelDelay sim.Time
	// ReqBudget, when positive, throttles tunnel usage during route
	// discovery: at most ReqBudget RREQ copies per request may cross each
	// tunnel link (receive-side; both directions count together). The
	// adaptive attacker uses it to cap how many tunneled routes the
	// destination can collect, keeping the tunnel's appearance frequency —
	// SAM's p_max — under the trained alarm threshold. Zero is unlimited.
	ReqBudget int
	// TargetPMax records the trained p_max alarm level an adaptive attacker
	// is engineered to stay under (informational; the throttle itself is
	// ReqBudget + TunnelDelay).
	TargetPMax float64
}

// NewScenario installs count wormholes on net with the given payload
// behaviour.
func NewScenario(net *topology.Network, count int, behavior PayloadBehavior) *Scenario {
	return &Scenario{
		Net:      net,
		Tunnels:  InstallPairs(net, count),
		Behavior: behavior,
	}
}

// Teardown removes all tunnels (restoring the normal system).
func (s *Scenario) Teardown() {
	for _, w := range s.Tunnels {
		w.Remove()
	}
	s.Tunnels = nil
}

// TunnelLinks returns the attack links of all active wormholes.
func (s *Scenario) TunnelLinks() []topology.Link {
	out := make([]topology.Link, len(s.Tunnels))
	for i, w := range s.Tunnels {
		out[i] = w.Link()
	}
	return out
}

// MaliciousNodes returns every attacker endpoint across active tunnels.
func (s *Scenario) MaliciousNodes() map[topology.NodeID]bool {
	out := make(map[topology.NodeID]bool, 2*len(s.Tunnels))
	for _, w := range s.Tunnels {
		out[w.A] = true
		out[w.B] = true
	}
	return out
}

// Arm installs the payload drop policy (and rushing delay factors, tunnel
// latency and the adaptive request throttle, if configured) on simNet and
// returns the policy so callers can read the drop count.
func (s *Scenario) Arm(simNet *sim.Network) *DropPolicy {
	p := NewDropPolicy(s.MaliciousNodes(), s.Behavior)
	drop := p.Func(simNet.Rand())
	if s.ReqBudget > 0 {
		drop = s.throttleRREQ(drop)
	}
	simNet.SetDropFunc(drop)
	if s.RushFactor > 0 && s.RushFactor < 1 {
		for id := range s.MaliciousNodes() {
			simNet.SetDelayFactor(id, s.RushFactor)
		}
	}
	if s.TunnelDelay > 0 {
		for _, w := range s.Tunnels {
			if w.Installed() {
				simNet.SetLinkDelay(w.A, w.B, s.TunnelDelay)
			}
		}
	}
	return p
}

// throttleRREQ wraps a drop decision with the adaptive attacker's tunnel
// budget: once ReqBudget RREQ copies of one request have crossed a tunnel
// link, further copies of that request die at the tunnel exit. Everything
// else falls through to the base policy.
func (s *Scenario) throttleRREQ(base sim.DropFunc) sim.DropFunc {
	tunnels := make(map[topology.Link]bool, len(s.Tunnels))
	for _, w := range s.Tunnels {
		if w.Installed() {
			tunnels[w.Link()] = true
		}
	}
	used := make(map[uint64]int)
	return func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if q, ok := pkt.(*routing.RREQ); ok && tunnels[topology.MkLink(from, to)] {
			used[q.ReqID]++
			if used[q.ReqID] > s.ReqBudget {
				return true
			}
			return false
		}
		return base(n, from, to, pkt)
	}
}

// NewRushingScenario builds attackers that rush but do not tunnel: the
// attacker pairs exist, no extra link is installed, and Arm gives them the
// given fraction of the normal transmission delay.
func NewRushingScenario(net *topology.Network, pairs int, factor float64, behavior PayloadBehavior) *Scenario {
	if factor <= 0 || factor >= 1 {
		panic("attack: rush factor must be in (0,1)")
	}
	if pairs < 0 || pairs > len(net.AttackerPairs) {
		panic("attack: pairs out of range")
	}
	s := &Scenario{Net: net, Behavior: behavior, RushFactor: factor}
	for i := 0; i < pairs; i++ {
		p := net.AttackerPairs[i]
		// No Install: rushing uses no out-of-band link. Track endpoints via
		// tunnel-less Wormhole handles so MaliciousNodes works unchanged.
		s.Tunnels = append(s.Tunnels, &Wormhole{A: p[0], B: p[1], topo: net.Topo})
	}
	return s
}
