package attack

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func TestInstallCreatesTunnel(t *testing.T) {
	net := topology.Cluster(1, 1)
	p := net.AttackerPairs[0]
	if net.Topo.Adjacent(p[0], p[1]) {
		t.Fatal("attackers should not be adjacent before install")
	}
	w := Install(net.Topo, p[0], p[1])
	if !net.Topo.Adjacent(p[0], p[1]) {
		t.Error("tunnel not installed")
	}
	if w.Link() != topology.MkLink(p[0], p[1]) {
		t.Error("Link mismatch")
	}
	w.Remove()
	if net.Topo.Adjacent(p[0], p[1]) {
		t.Error("tunnel not removed")
	}
}

func TestInstallSelfPanics(t *testing.T) {
	net := topology.Cluster(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("self wormhole should panic")
		}
	}()
	Install(net.Topo, 3, 3)
}

func TestInstallPairsCount(t *testing.T) {
	net := topology.Cluster(1, 2)
	ws := InstallPairs(net, 2)
	if len(ws) != 2 {
		t.Fatalf("installed %d tunnels", len(ws))
	}
	if len(net.Topo.ExtraLinks()) != 2 {
		t.Error("topology should carry two tunnels")
	}
	for _, w := range ws {
		w.Remove()
	}
	if len(net.Topo.ExtraLinks()) != 0 {
		t.Error("teardown incomplete")
	}
}

func TestInstallPairsOutOfRangePanics(t *testing.T) {
	net := topology.Cluster(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many wormholes")
		}
	}()
	InstallPairs(net, 2)
}

func TestScenarioLifecycle(t *testing.T) {
	net := topology.Cluster(1, 2)
	sc := NewScenario(net, 2, Blackhole)
	if len(sc.TunnelLinks()) != 2 {
		t.Error("tunnel links")
	}
	mal := sc.MaliciousNodes()
	if len(mal) != 4 {
		t.Errorf("malicious nodes = %d", len(mal))
	}
	sc.Teardown()
	if len(sc.Tunnels) != 0 || len(net.Topo.ExtraLinks()) != 0 {
		t.Error("teardown failed")
	}
}

func TestBlackholeDropsOnlyPayload(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewScenario(net, 1, Blackhole)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	policy := sc.Arm(s)
	drop := policy.Func(s.Rand())

	a1 := sc.Tunnels[0].A
	from := net.Topo.Neighbors(a1)[0]
	if !drop(s, from, a1, &routing.Data{Route: routing.Route{from, a1}, Pos: 1}) {
		t.Error("blackhole should drop data")
	}
	if !drop(s, from, a1, &routing.ACK{Route: routing.Route{from, a1}, Pos: 1}) {
		t.Error("blackhole should drop acks")
	}
	if drop(s, from, a1, &routing.RREQ{Path: routing.Route{from}}) {
		t.Error("routing traffic must always pass (that is the point of a wormhole)")
	}
	if drop(s, a1, from, &routing.Data{Route: routing.Route{a1, from}, Pos: 1}) {
		t.Error("benign receivers should not drop")
	}
	if policy.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", policy.Dropped)
	}
}

func TestForwardBehaviorNeverDrops(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewScenario(net, 1, Forward)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	drop := sc.Arm(s).Func(s.Rand())
	a1 := sc.Tunnels[0].A
	from := net.Topo.Neighbors(a1)[0]
	if drop(s, from, a1, &routing.Data{Route: routing.Route{from, a1}, Pos: 1}) {
		t.Error("forwarding attacker must not drop")
	}
}

func TestGreyholeDropsSometimes(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewScenario(net, 1, Greyhole)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	policy := sc.Arm(s)
	drop := policy.Func(s.Rand())
	a1 := sc.Tunnels[0].A
	from := net.Topo.Neighbors(a1)[0]
	dropped := 0
	for i := 0; i < 200; i++ {
		if drop(s, from, a1, &routing.Data{Route: routing.Route{from, a1}, Pos: 1}) {
			dropped++
		}
	}
	if dropped == 0 || dropped == 200 {
		t.Errorf("greyhole dropped %d/200; want something in between", dropped)
	}
	if int64(dropped) != policy.Dropped {
		t.Errorf("counter mismatch: %d vs %d", dropped, policy.Dropped)
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[PayloadBehavior]string{
		Forward:   "forward",
		Blackhole: "blackhole",
		Greyhole:  "greyhole",
	} {
		if b.String() != want {
			t.Errorf("String(%d) = %q", int(b), b.String())
		}
	}
}

func TestEndpoints(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewScenario(net, 1, Forward)
	defer sc.Teardown()
	w := sc.Tunnels[0]
	eps := w.Endpoints()
	if !eps[w.A] || !eps[w.B] || len(eps) != 2 {
		t.Errorf("endpoints = %v", eps)
	}
}

func TestRushingScenario(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewRushingScenario(net, 1, 0.3, Forward)
	if len(net.Topo.ExtraLinks()) != 0 {
		t.Error("rushing must not install a tunnel")
	}
	if len(sc.MaliciousNodes()) != 2 {
		t.Errorf("malicious = %d", len(sc.MaliciousNodes()))
	}
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	sc.Arm(s) // applies delay factors; must not panic
	sc.Teardown()
}

func TestRushingScenarioValidation(t *testing.T) {
	net := topology.Cluster(1, 1)
	for _, fn := range []func(){
		func() { NewRushingScenario(net, 1, 0, Forward) },
		func() { NewRushingScenario(net, 1, 1.5, Forward) },
		func() { NewRushingScenario(net, 5, 0.3, Forward) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBehaviorStringUnknown(t *testing.T) {
	if PayloadBehavior(99).String() == "" {
		t.Error("unknown behaviour should still render")
	}
}
