package attack

import (
	"testing"

	"samnet/internal/routing"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// TestTeardownRearmRoundTrip is the regression test for the tunnel-less
// teardown bug: a rushing scenario's handles never installed a link, so its
// Teardown must not rip out a tunnel some other scenario owns on the same
// pair — and the surviving scenario must still arm and tear down correctly.
func TestTeardownRearmRoundTrip(t *testing.T) {
	net := topology.Cluster(1, 1)
	p := net.AttackerPairs[0]

	tunneled := NewScenario(net, 1, Forward)
	rushing := NewRushingScenario(net, 1, 0.3, Forward)

	// The rushing scenario shares the attacker pair but owns no link.
	rushing.Teardown()
	if !net.Topo.Adjacent(p[0], p[1]) {
		t.Fatal("tearing down the tunnel-less scenario removed the other scenario's tunnel")
	}

	// The surviving scenario re-arms on a fresh simulation and still owns
	// its tunnel end to end.
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	tunneled.Arm(s)
	if !tunneled.Tunnels[0].Installed() {
		t.Error("surviving tunnel lost its installed mark")
	}
	tunneled.Teardown()
	if net.Topo.Adjacent(p[0], p[1]) {
		t.Error("owning scenario's teardown should remove the tunnel")
	}
	if len(net.Topo.ExtraLinks()) != 0 {
		t.Errorf("extra links remain: %v", net.Topo.ExtraLinks())
	}
}

func TestRemoveIsIdempotent(t *testing.T) {
	net := topology.Cluster(1, 1)
	p := net.AttackerPairs[0]
	w := Install(net.Topo, p[0], p[1])
	w.Remove()
	// A second install by someone else must survive the stale handle's
	// repeated Remove.
	w2 := Install(net.Topo, p[0], p[1])
	w.Remove()
	if !net.Topo.Adjacent(p[0], p[1]) {
		t.Error("stale handle's second Remove deleted a link it does not own")
	}
	w2.Remove()
	if w2.Installed() {
		t.Error("Installed should report false after Remove")
	}
}

func TestNamedVariantsConstructAndTearDown(t *testing.T) {
	for _, name := range Variants() {
		net := topology.Cluster(1, 2)
		sc, err := Named(name, net, Forward)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sc.MaliciousNodes()) < 2 {
			t.Errorf("%s: no malicious nodes", name)
		}
		s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
		sc.Arm(s)
		sc.Teardown()
		if len(net.Topo.ExtraLinks()) != 0 {
			t.Errorf("%s: teardown left extra links %v", name, net.Topo.ExtraLinks())
		}
	}
	if _, err := Named("nope", topology.Cluster(1, 1), Forward); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestChainScenarioShape(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewChainScenario(net, DefaultChainRelays, DefaultChainDelay, Forward)
	defer sc.Teardown()

	if len(sc.Tunnels) != DefaultChainRelays+1 {
		t.Fatalf("chain links = %d, want %d", len(sc.Tunnels), DefaultChainRelays+1)
	}
	mal := sc.MaliciousNodes()
	if len(mal) != DefaultChainRelays+2 {
		t.Errorf("colluders = %d, want %d", len(mal), DefaultChainRelays+2)
	}
	// Consecutive tunnels share their relay endpoints (a connected chain).
	for i := 0; i+1 < len(sc.Tunnels); i++ {
		if sc.Tunnels[i].B != sc.Tunnels[i+1].A {
			t.Errorf("chain broken between link %d and %d", i, i+1)
		}
	}
	// Colluders must not be picked as sources or destinations.
	for _, pool := range [][]topology.NodeID{net.SrcPool, net.DstPool} {
		for _, id := range pool {
			if mal[id] {
				t.Errorf("colluder %d still in a traffic pool", id)
			}
		}
	}
}

func TestAdaptiveThrottleCapsTunnelRREQs(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewAdaptiveScenario(net, 1, Forward, AdaptiveConfig{Budget: 1})
	defer sc.Teardown()
	if sc.ReqBudget != 1 || sc.TunnelDelay <= 0 {
		t.Fatalf("adaptive defaults: budget=%d delay=%v", sc.ReqBudget, sc.TunnelDelay)
	}

	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 1})
	sc.Arm(s) // wires the throttle into the live network
	pass := func(*sim.Network, topology.NodeID, topology.NodeID, sim.Packet) bool { return false }
	drop := sc.throttleRREQ(pass)
	w := sc.Tunnels[0]
	q := &routing.RREQ{ReqID: 7}
	if drop(s, w.A, w.B, q) {
		t.Error("first tunneled copy must pass (that is the budget)")
	}
	if !drop(s, w.B, w.A, q) {
		t.Error("second crossing of the same request must die at the tunnel")
	}
	if drop(s, w.A, w.B, &routing.RREQ{ReqID: 8}) {
		t.Error("a different request has its own budget")
	}
	nb := net.Topo.Neighbors(w.A)[0]
	if drop(s, nb, w.A, q) {
		t.Error("non-tunnel links are not throttled")
	}
}

func TestForgeFuncFabricatesShortRoutes(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := NewForgeScenario(net, 1, Forward)
	defer sc.Teardown()
	if len(net.Topo.ExtraLinks()) != 0 {
		t.Fatal("forgery must not install a tunnel")
	}

	forge := sc.ForgeFunc()
	self := sc.Tunnels[0].A
	src, dst := net.SrcPool[0], net.DstPool[0]
	prefix := routing.Route{src, self}
	forged := forge(self, src, &routing.RREQ{Src: src, Dst: dst}, prefix)
	if forged == nil {
		t.Fatal("malicious node should forge")
	}
	if len(forged) != len(prefix)+2 || forged[len(forged)-1] != dst {
		t.Fatalf("forged route %v should be prefix + fake relay + dst", forged)
	}
	for i, id := range prefix {
		if forged[i] != id {
			t.Fatalf("forged route %v does not extend prefix %v", forged, prefix)
		}
	}
	if honest := forge(dst, src, &routing.RREQ{Src: src, Dst: dst}, routing.Route{src, dst}); honest != nil {
		t.Error("non-malicious nodes must not forge")
	}
}

func TestLatentScenarioValidation(t *testing.T) {
	net := topology.Cluster(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive latent delay should panic")
		}
	}()
	NewLatentScenario(net, 1, 0, Forward)
}
