package service

// POST /v1/detect/stream: the NDJSON pipeline mode. The client writes
// newline-delimited DetectRequest objects and reads one response line per
// request, in request order — DetectResponse for scored lines, ErrorResponse
// for lines that fail. Per-request HTTP framing is what caps a detect client
// at round-trip throughput; a stream lets a loader (cmd/samload -stream)
// keep hundreds of requests in flight on one connection.
//
// Contract:
//
//   - One JSON object per line; blank lines are skipped. Each line is
//     limited to MaxBodyBytes; an over-limit line is discarded up to its
//     terminating newline (bounded memory, not bounded read) and answered
//     with an ErrorResponse line like any other per-line failure.
//   - Per-line failures (malformed JSON, oversized line, unknown profile,
//     untrained, bad route ids) answer an ErrorResponse line and the
//     stream continues — the newline framing is still intact, so later
//     lines are unaffected.
//   - A body read error answers a final ErrorResponse line and the stream
//     ends: the connection itself is broken, there is nothing left to
//     resynchronize on.
//   - Responses are flushed whenever no further complete line is already
//     buffered, so a lockstep client sees every answer immediately while a
//     pipelining client gets large write batches.
//
// The response status is always 200 with Content-Type application/x-ndjson;
// per-line status lives in the line itself (an "error" key marks failures,
// mirroring writeJSON's error bodies).

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"time"

	"samnet/internal/obs"
)

// streamFlushEvery bounds how many response lines may accumulate before a
// flush even when the client keeps the input buffer full, so a pipelining
// client's window cannot be starved by the adaptive flush policy alone.
const streamFlushEvery = 64

// streamIdleTimeout replaces the server's whole-request read/write deadlines
// on the stream path: a stream may run for hours, but a client that goes
// silent (or stops reading) for this long is disconnected.
const streamIdleTimeout = 2 * time.Minute

func (s *Service) handleDetectStream(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	// Full duplex: the handler writes response lines while the client is
	// still streaming request lines (net/http otherwise drains the body
	// before letting responses interleave).
	_ = rc.EnableFullDuplex()
	w.Header()["Content-Type"] = ctNDJSON
	w.WriteHeader(http.StatusOK)
	// Ship the header immediately so the client's Do() returns and it can
	// start its reader before the first verdict.
	if err := rc.Flush(); err != nil {
		s.responseFailed("stream flush", err)
		return
	}

	sc := getScratch()
	defer putScratch(sc)
	lr := lineReader{r: r.Body, buf: sc.lbuf[:0], limit: s.cfg.MaxBodyBytes}
	defer func() { sc.lbuf = lr.buf }()

	// Per-line child spans: the stream request's own span (started by
	// instrument) parents one span per scored line, so an individual slow
	// line inside an hours-long pipelined connection is still traceable.
	// With tracing off, parent stays zero and the loop takes one atomic
	// load per line.
	tracer := s.metrics.tracer
	parent, _ := obs.SpanFromContext(r.Context())

	// Slide the per-request deadlines forward at every flush: the server's
	// blanket ReadTimeout/WriteTimeout would otherwise cut a healthy
	// long-running stream mid-flight. Flushes happen at least once per
	// streamFlushEvery lines and on every lockstep exchange, so only a
	// genuinely idle peer can run into the deadline. Errors (a
	// ResponseWriter without deadline support, e.g. in tests) just leave
	// the defaults in place.
	extend := func() {
		idle := time.Now().Add(streamIdleTimeout)
		_ = rc.SetReadDeadline(idle)
		_ = rc.SetWriteDeadline(idle)
	}
	extend()

	pending := 0 // response lines written since the last flush
	for {
		line, err := lr.next()
		var body []byte
		switch {
		case err == nil:
			// Scored below.
		case errors.Is(err, errBodyTooLarge):
			// The over-limit line was discarded up to its newline, so the
			// reader is still line-aligned: answer and continue. Crucially
			// this never leaves the handler with a half-read body — doing
			// so after a full-duplex response trips a net/http race where
			// the post-handler body discard hits EOF and fires the
			// deferred background-read hook after finishRequest already
			// aborted pending reads, panicking ("invalid concurrent
			// Body.Read call") on a reused connection.
			body = appendErrorResponse(sc.out[:0], err.Error())
			sc.out = body
		default:
			if !errors.Is(err, io.EOF) {
				// The connection itself failed mid-read: answer once and
				// end the stream (nothing further can arrive on it).
				sc.out = appendErrorResponse(sc.out[:0], err.Error())
				if _, werr := w.Write(sc.out); werr != nil {
					s.responseFailed("stream write", werr)
				}
			}
			if ferr := rc.Flush(); ferr != nil {
				s.responseFailed("stream flush", ferr)
			}
			return
		}
		if body == nil {
			sc.reset()
			sc.body = append(sc.body[:0], line...)
			if perr := sc.parseRequest(kindDetect); perr != nil {
				// A line that parsed as a complete (but invalid) JSON value
				// is a semantic failure: report and continue. parseRequest
				// only sees full lines, so framing stays intact.
				body = appendErrorResponse(sc.out[:0], perr.Error())
				sc.out = body
			}
		}
		if body == nil {
			var lineSpan obs.ActiveSpan
			if tracer.Enabled() {
				lineSpan = tracer.Start("detect_stream_line", parent)
				sc.trace = lineSpan.Context().TraceHex()
			}
			lineStatus, rec, v := s.detectScratch(sc)
			tracer.Finish(lineSpan, lineStatus)
			if rec != nil {
				// Explain lines are cold-path: encoding/json builds the line
				// (Encode appends the newline NDJSON needs).
				var buf bytes.Buffer
				if err := writeJSONLine(&buf, DetectResponse{
					Profile: string(sc.profile), Verdict: verdictJSON(v), Explain: rec,
				}); err != nil {
					s.responseFailed("stream encode", err)
					return
				}
				body = buf.Bytes()
			} else {
				body = sc.out
			}
		}
		if _, err := w.Write(body); err != nil {
			s.responseFailed("stream write", err)
			return
		}
		pending++
		// Adaptive flush: only when no complete line is already buffered
		// (a lockstep client is waiting) or the batch is large enough.
		if pending >= streamFlushEvery || !lr.buffered() {
			if err := rc.Flush(); err != nil {
				s.responseFailed("stream flush", err)
				return
			}
			pending = 0
			extend()
		}
	}
}

// lineReader splits the request body into newline-delimited frames using one
// reusable buffer. A line longer than limit is consumed to its terminating
// newline without being buffered (the buffer would otherwise grow
// unboundedly on a missing newline) and reported as errBodyTooLarge, leaving
// the reader aligned on the next line.
type lineReader struct {
	r     io.Reader
	buf   []byte // unconsumed bytes, start..len valid
	start int
	limit int64
	err   error
}

// next returns the next non-empty line (CR trimmed, newline excluded). The
// returned slice is valid until the following next call. errBodyTooLarge
// marks a dropped over-limit line (the stream remains usable); io.EOF marks
// a clean end of stream; any other error means the body reader failed.
func (lr *lineReader) next() ([]byte, error) {
	for {
		// Look for a complete line in the buffered window.
		for lr.start < len(lr.buf) {
			if i := bytes.IndexByte(lr.buf[lr.start:], '\n'); i >= 0 {
				line := lr.buf[lr.start : lr.start+i]
				lr.start += i + 1
				if int64(len(line)) > lr.limit {
					// A pooled buffer can be (much) larger than the limit, so
					// a complete over-limit line may arrive in a single read
					// without ever tripping the refill-time check below. It is
					// already consumed past its newline, so alignment holds.
					return nil, errBodyTooLarge
				}
				if line = trimLine(line); len(line) > 0 {
					return line, nil
				}
				continue
			}
			break
		}
		if lr.err != nil {
			// Reader exhausted: a trailing unterminated line still counts.
			if line := trimLine(lr.buf[lr.start:]); len(line) > 0 && lr.err == io.EOF {
				lr.start = len(lr.buf)
				if int64(len(line)) > lr.limit {
					return nil, errBodyTooLarge
				}
				return line, nil
			}
			if lr.err == io.EOF {
				return nil, io.EOF
			}
			return nil, lr.err
		}
		// Compact and refill.
		if lr.start > 0 {
			lr.buf = append(lr.buf[:0], lr.buf[lr.start:]...)
			lr.start = 0
		}
		if int64(len(lr.buf)) > lr.limit {
			// The buffer holds exactly one partial line here (a complete
			// line would have been returned above), so its length is the
			// line's length so far.
			return nil, lr.discardLine()
		}
		if len(lr.buf) == cap(lr.buf) {
			lr.buf = append(lr.buf, 0)[:len(lr.buf)]
		}
		n, err := lr.r.Read(lr.buf[len(lr.buf):cap(lr.buf)])
		lr.buf = lr.buf[:len(lr.buf)+n]
		if err != nil {
			lr.err = err
		}
	}
}

// discardLine consumes the remainder of an over-limit line without buffering
// it, then reports errBodyTooLarge with the reader realigned on the byte
// after the line's newline. A read error inside the discard ends the stream
// with that error; EOF still reports the truncated line as too large.
func (lr *lineReader) discardLine() error {
	lr.buf = lr.buf[:0]
	lr.start = 0
	scratch := lr.buf[:cap(lr.buf)]
	for {
		n, err := lr.r.Read(scratch)
		if i := bytes.IndexByte(scratch[:n], '\n'); i >= 0 {
			// Alignment restored: keep whatever follows the newline.
			// scratch aliases lr.buf's array; copy moves the tail down.
			lr.buf = lr.buf[:copy(scratch, scratch[i+1:n])]
			if err != nil {
				lr.err = err
			}
			return errBodyTooLarge
		}
		if err != nil {
			lr.err = err
			if err == io.EOF {
				return errBodyTooLarge
			}
			return err
		}
	}
}

// buffered reports whether a complete line is already waiting, so the
// handler can batch flushes while the client keeps the pipe full.
func (lr *lineReader) buffered() bool {
	return bytes.IndexByte(lr.buf[lr.start:], '\n') >= 0
}

func trimLine(line []byte) []byte {
	for len(line) > 0 {
		switch line[len(line)-1] {
		case '\r', ' ', '\t':
			line = line[:len(line)-1]
		default:
			return line
		}
	}
	return line
}
