package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"samnet/internal/attack"
	"samnet/internal/routing/mr"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// genSets produces n route sets from MR discoveries on a 1-tier cluster,
// with or without an active wormhole. Seeds are offset so normal and
// attacked sets never reuse a simulation.
func genSets(n int, wormhole bool, seedBase uint64) [][][]int {
	net := topology.Cluster(1, 2)
	var sc *attack.Scenario
	if wormhole {
		sc = attack.NewScenario(net, 1, attack.Forward)
		defer sc.Teardown()
	}
	out := make([][][]int, 0, n)
	for i := 0; i < n; i++ {
		s := sim.NewNetwork(net.Topo, sim.Config{Seed: seedBase + uint64(i)*7919})
		if sc != nil {
			sc.Arm(s)
		}
		d := (&mr.Protocol{}).Discover(s, net.SrcPool[0], net.DstPool[len(net.DstPool)-1])
		set := make([][]int, len(d.Routes))
		for j, r := range d.Routes {
			nodes := make([]int, len(r))
			for k, id := range r {
				nodes[k] = int(id)
			}
			set[j] = nodes
		}
		out = append(out, set)
	}
	return out
}

// newTrainedServer builds a service with the given config, trains profile
// "test" over the HTTP API, and returns the test server.
func newTrainedServer(t *testing.T, cfg Config) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	body, err := json.Marshal(TrainRequest{RouteSets: genSets(20, false, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/profiles/test/train", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %s", resp.Status)
	}
	var tr TrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Trained || tr.Runs != 20 {
		t.Fatalf("train response = %+v, want 20 trained runs", tr)
	}
	return ts, svc
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEndpoints is the table-driven sweep over every endpoint: happy paths,
// error paths, and protocol edges.
func TestEndpoints(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	normal := genSets(1, false, 5000)[0]
	attacked := genSets(1, true, 6000)[0]

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		check      func(t *testing.T, body []byte)
	}{
		{
			name: "analyze normal", method: "POST", path: "/v1/analyze",
			body:       mustJSON(t, AnalyzeRequest{Routes: normal}),
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var ar AnalyzeResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					t.Fatal(err)
				}
				if ar.Routes != len(normal) || ar.N == 0 || ar.PMax <= 0 || ar.PMax > 1 {
					t.Fatalf("implausible analyze response: %+v", ar)
				}
				if len(ar.Top) == 0 || ar.Top[0].P != ar.PMax {
					t.Fatalf("top links missing or inconsistent: %+v", ar.Top)
				}
			},
		},
		{
			name: "analyze empty set", method: "POST", path: "/v1/analyze",
			body: `{"routes":[]}`, wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var ar AnalyzeResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					t.Fatal(err)
				}
				if ar.N != 0 || ar.PMax != 0 {
					t.Fatalf("empty set should yield zero stats: %+v", ar)
				}
			},
		},
		{
			name: "analyze malformed JSON", method: "POST", path: "/v1/analyze",
			body: `{"routes":[[1,2`, wantStatus: http.StatusBadRequest,
		},
		{
			name: "analyze trailing garbage", method: "POST", path: "/v1/analyze",
			body: `{"routes":[[1,2]]}{"routes":[]}`, wantStatus: http.StatusBadRequest,
		},
		{
			name: "analyze negative node id", method: "POST", path: "/v1/analyze",
			body: `{"routes":[[1,-2,3]]}`, wantStatus: http.StatusBadRequest,
		},
		{
			name: "detect normal", method: "POST", path: "/v1/detect",
			body:       mustJSON(t, DetectRequest{Profile: "test", Routes: normal}),
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var dr DetectResponse
				if err := json.Unmarshal(body, &dr); err != nil {
					t.Fatal(err)
				}
				if dr.Verdict.Decision != "normal" {
					t.Fatalf("normal route set judged %q (lambda %.3f)", dr.Verdict.Decision, dr.Verdict.Lambda)
				}
			},
		},
		{
			name: "detect wormhole", method: "POST", path: "/v1/detect",
			body:       mustJSON(t, DetectRequest{Profile: "test", Routes: attacked}),
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var dr DetectResponse
				if err := json.Unmarshal(body, &dr); err != nil {
					t.Fatal(err)
				}
				if dr.Verdict.Decision == "normal" {
					t.Fatalf("wormhole route set judged normal (lambda %.3f)", dr.Verdict.Lambda)
				}
				if dr.Verdict.Suspects[0] == dr.Verdict.Suspects[1] {
					t.Fatalf("degenerate suspect pair: %+v", dr.Verdict.Suspects)
				}
			},
		},
		{
			name: "detect unknown profile", method: "POST", path: "/v1/detect",
			body:       mustJSON(t, DetectRequest{Profile: "nope", Routes: normal}),
			wantStatus: http.StatusNotFound,
		},
		{
			name: "detect missing profile name", method: "POST", path: "/v1/detect",
			body: `{"routes":[[1,2]]}`, wantStatus: http.StatusBadRequest,
		},
		{
			name: "batch detect", method: "POST", path: "/v1/detect/batch",
			body:       mustJSON(t, BatchDetectRequest{Profile: "test", Items: [][][]int{normal, attacked, normal}}),
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var br BatchDetectResponse
				if err := json.Unmarshal(body, &br); err != nil {
					t.Fatal(err)
				}
				if len(br.Verdicts) != 3 {
					t.Fatalf("got %d verdicts, want 3", len(br.Verdicts))
				}
				// Verdicts come back in item order.
				if br.Verdicts[0].Decision != "normal" || br.Verdicts[2].Decision != "normal" {
					t.Fatalf("normal items flagged: %+v", br.Verdicts)
				}
				if br.Verdicts[1].Decision == "normal" {
					t.Fatalf("wormhole item judged normal: %+v", br.Verdicts[1])
				}
			},
		},
		{
			name: "batch over item limit", method: "POST", path: "/v1/detect/batch",
			body:       mustJSON(t, BatchDetectRequest{Profile: "test", Items: make([][][]int, 257)}),
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "train empty body", method: "POST", path: "/v1/profiles/p2/train",
			body: `{"route_sets":[]}`, wantStatus: http.StatusBadRequest,
		},
		{
			name: "train then untrained detect", method: "POST", path: "/v1/profiles/empty/train",
			// A set of zero-link routes observes nothing, so the profile
			// exists but stays untrained.
			body:       `{"route_sets":[[[1]]]}`,
			wantStatus: http.StatusOK,
			check: func(t *testing.T, body []byte) {
				var tr TrainResponse
				if err := json.Unmarshal(body, &tr); err != nil {
					t.Fatal(err)
				}
				if tr.Trained || tr.Runs != 0 {
					t.Fatalf("zero-information training marked trained: %+v", tr)
				}
				resp, _ := postJSON(t, ts.URL+"/v1/detect",
					mustJSON(t, DetectRequest{Profile: "empty", Routes: [][]int{{1, 2}}}))
				if resp.StatusCode != http.StatusConflict {
					t.Fatalf("untrained detect status = %d, want 409", resp.StatusCode)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantStatus != http.StatusOK {
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
					t.Fatalf("error response not JSON with an error field: %s", body)
				}
			}
			if tc.check != nil {
				tc.check(t, body)
			}
		})
	}
}

// TestProfileEndpoints covers GET /v1/profiles and GET /v1/profiles/{name},
// including the exported profile being loadable back into sam.
func TestProfileEndpoints(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ProfileInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "test" || !infos[0].Trained || infos[0].Runs != 20 {
		t.Fatalf("profile list = %+v", infos)
	}

	resp, err = http.Get(ts.URL + "/v1/profiles/test")
	if err != nil {
		t.Fatal(err)
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Profile == nil || pr.Profile.PMF == nil || pr.Profile.PMax.N != 20 {
		t.Fatalf("exported profile incomplete: %+v", pr)
	}
	if pr.PMaxMean != pr.Profile.PMax.Mean {
		t.Fatalf("fresh profile adaptive mean %.4f != trained mean %.4f", pr.PMaxMean, pr.Profile.PMax.Mean)
	}
	// The exported JSON round-trips through sam.Profile (samtrain's format).
	if _, err := json.Marshal(pr.Profile); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/v1/profiles/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown profile GET = %d, want 404", resp.StatusCode)
	}
}

// TestHealthAndMetrics asserts the liveness probe and that served requests
// show up in the Prometheus exposition.
func TestHealthAndMetrics(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/detect",
		mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, false, 123)[0]}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mr.Body)
	mr.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`samserve_requests_total{class="2xx",endpoint="detect"} 1`,
		`samserve_requests_total{class="2xx",endpoint="train"} 1`,
		`samserve_request_duration_seconds_count{endpoint="detect"} 1`,
		"samserve_queue_depth 0",
		"samserve_profiles 1",
		`samserve_detections_total{decision="normal"} 1`,
		"samserve_detect_pmax_count 1",
		"samserve_profile_trainings_total 1",
		"samserve_decisions_recorded 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestConcurrentBatchDetect hammers a shared profile with concurrent batch
// requests (run under -race in CI): all verdicts must come back in order and
// the adaptive update must stay internally consistent.
func TestConcurrentBatchDetect(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{Workers: 4, QueueDepth: 1 << 16})
	normal := genSets(4, false, 9000)
	attacked := genSets(4, true, 9100)
	items := [][][]int{normal[0], attacked[0], normal[1], attacked[1], normal[2], attacked[2], normal[3], attacked[3]}
	body := mustJSON(t, BatchDetectRequest{Profile: "test", Items: items})

	const goroutines = 16
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/v1/detect/batch", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var br BatchDetectResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if len(br.Verdicts) != len(items) {
					errs <- fmt.Errorf("got %d verdicts, want %d", len(br.Verdicts), len(items))
					return
				}
				for j, v := range br.Verdicts {
					if v.Lambda < 0 || v.Lambda > 1 {
						errs <- fmt.Errorf("item %d lambda %v out of range", j, v.Lambda)
						return
					}
					// Odd items are the attacked discoveries.
					if j%2 == 1 && v.Decision == "normal" {
						errs <- fmt.Errorf("attacked item %d judged normal", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatchBackpressure asserts the 429 path: a batch larger than the queue
// depth is rejected whole, with a Retry-After hint and a JSON error body,
// and the pool admits work again afterwards.
func TestBatchBackpressure(t *testing.T) {
	ts, svc := newTrainedServer(t, Config{Workers: 1, QueueDepth: 4})
	big := make([][][]int, 10)
	set := genSets(1, false, 777)[0]
	for i := range big {
		big[i] = set
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect/batch", mustJSON(t, BatchDetectRequest{Profile: "test", Items: big}))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("429 body not a JSON error: %s", body)
	}
	if d := svc.pool.depth(); d != 0 {
		t.Fatalf("rejected batch leaked %d queue slots", d)
	}

	// A batch that fits still goes through.
	resp, body = postJSON(t, ts.URL+"/v1/detect/batch",
		mustJSON(t, BatchDetectRequest{Profile: "test", Items: big[:3]}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget batch status = %d (body %s)", resp.StatusCode, body)
	}
}

// TestAdaptiveUpdateOverAPI asserts that detect with update enabled moves
// the adaptive means (the paper's low-pass update) while update:false leaves
// them frozen.
func TestAdaptiveUpdateOverAPI(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	set := genSets(1, false, 4242)[0]

	means := func() float64 {
		resp, err := http.Get(ts.URL + "/v1/profiles/test")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr ProfileResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr.PMaxMean
	}

	frozen := false
	before := means()
	postJSON(t, ts.URL+"/v1/detect", mustJSON(t, DetectRequest{Profile: "test", Routes: set, Update: &frozen}))
	if after := means(); after != before {
		t.Fatalf("update:false moved the adaptive mean %.6f -> %.6f", before, after)
	}
	postJSON(t, ts.URL+"/v1/detect", mustJSON(t, DetectRequest{Profile: "test", Routes: set}))
	if after := means(); after == before {
		t.Fatalf("update:true left the adaptive mean frozen at %.6f", before)
	}
}

// TestBodyLimit asserts the 413 path for oversized request bodies.
func TestBodyLimit(t *testing.T) {
	svc := New(Config{MaxBodyBytes: 512})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	big := mustJSON(t, AnalyzeRequest{Routes: genSets(1, false, 31337)[0]})
	if len(big) <= 512 {
		t.Skipf("fixture unexpectedly small: %d bytes", len(big))
	}
	resp, _ := postJSON(t, ts.URL+"/v1/analyze", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestLoadProfile asserts a samtrain-style profile can be installed and
// scored against without online training.
func TestLoadProfile(t *testing.T) {
	tr := sam.NewTrainer("preloaded", 0)
	for _, set := range genSets(10, false, 2222) {
		routes, err := decodeRoutes(set)
		if err != nil {
			t.Fatal(err)
		}
		tr.ObserveRoutes(routes)
	}
	p, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{})
	defer svc.Close()
	if err := svc.LoadProfile("pre", p); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/detect",
		mustJSON(t, DetectRequest{Profile: "pre", Routes: genSets(1, true, 3333)[0]}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect on preloaded profile = %d (%s)", resp.StatusCode, body)
	}
	var dr DetectResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Verdict.Decision == "normal" {
		t.Fatalf("wormhole set judged normal against preloaded profile: %+v", dr.Verdict)
	}
}

// TestPreloadedProfileReportsRuns is the regression test for preloaded
// profiles answering "runs": 0 on GET: the entry's local trainer is empty, so
// the run count recorded in the loaded profile itself must be surfaced.
func TestPreloadedProfileReportsRuns(t *testing.T) {
	tr := sam.NewTrainer("preloaded", 0)
	for _, set := range genSets(10, false, 4444) {
		routes, err := decodeRoutes(set)
		if err != nil {
			t.Fatal(err)
		}
		tr.ObserveRoutes(routes)
	}
	p, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs != 10 {
		t.Fatalf("trainer produced profile with Runs = %d, want 10", p.Runs)
	}

	svc := New(Config{})
	defer svc.Close()
	if err := svc.LoadProfile("pre", p); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/profiles/pre")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET preloaded profile = %s", resp.Status)
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Runs != 10 {
		t.Errorf("GET /v1/profiles/pre runs = %d, want 10 (from loaded profile)", pr.Runs)
	}
	if pr.Profile == nil || pr.Profile.Runs != 10 {
		t.Errorf("embedded profile = %+v, want Runs 10", pr.Profile)
	}

	// The list endpoint goes through the same snapshot path.
	resp2, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list []ProfileInfo
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Runs != 10 || !list[0].Trained {
		t.Errorf("profile list = %+v, want one trained entry with 10 runs", list)
	}

	// Training on top of the preload switches back to the live trainer's
	// count rather than summing with the preloaded one.
	resp3, body := postJSON(t, ts.URL+"/v1/profiles/pre/train",
		mustJSON(t, TrainRequest{RouteSets: genSets(3, false, 5555)}))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("train over preload = %d (%s)", resp3.StatusCode, body)
	}
	resp4, err := http.Get(ts.URL + "/v1/profiles/pre")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var pr4 ProfileResponse
	if err := json.NewDecoder(resp4.Body).Decode(&pr4); err != nil {
		t.Fatal(err)
	}
	if pr4.Runs != 3 {
		t.Errorf("after retrain runs = %d, want 3 (local trainer)", pr4.Runs)
	}
}
