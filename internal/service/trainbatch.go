package service

import (
	"fmt"
	"net/http"
	"time"

	"samnet/internal/cli"
	"samnet/internal/obs"
	"samnet/internal/routing"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
)

// Batch training: POST /v1/train/batch runs a server-side training sweep
// over a scenario grid — each scenario one (topology, transmission range,
// protocol) condition, exactly the axes the paper trains a profile per
// (§IV) — and installs one profile per scenario.
//
// The sweep runs on internal/runner under its determinism contract: every
// run's randomness derives from (seed, scenario label, run index) via
// runner.DeriveSeed/StreamRNG — a pure function of the cell's grid
// coordinates — results merge in grid order, and each scenario's trainer
// folds serially over its runs. Repeating the same request therefore
// produces byte-identical profiles at any parallelism, and batch training is
// declarative: the entry's training state is *replaced*, not accumulated, so
// re-posting a grid converges instead of doubling run counts.

// Limits bounding one batch-training request.
const (
	maxTrainScenarios       = 64
	maxTrainRunsPerScenario = 4096
	maxTrainCells           = 8192
)

// trainScenario is one resolved grid cell axis: constructors plus the
// deterministic label its random streams derive from.
type trainScenario struct {
	profile string
	label   string
	topo    string
	tier    int
	proto   routing.Protocol
}

// resolveScenarios validates the wire scenarios against the known topology
// and protocol names and fills defaults (tier 1, protocol mr, profile named
// after the label).
func resolveScenarios(in []TrainScenarioJSON) ([]trainScenario, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("scenarios must not be empty")
	}
	if len(in) > maxTrainScenarios {
		return nil, fmt.Errorf("request has %d scenarios, limit %d", len(in), maxTrainScenarios)
	}
	out := make([]trainScenario, len(in))
	seen := make(map[string]int, len(in))
	for i, sc := range in {
		tier := sc.Tier
		if tier == 0 {
			tier = 1
		}
		if tier < 0 || tier > 4 {
			return nil, fmt.Errorf("scenario %d: tier %d out of range [1,4]", i, sc.Tier)
		}
		protoName := sc.Protocol
		if protoName == "" {
			protoName = "mr"
		}
		proto, err := cli.BuildProtocol(protoName)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %v", i, err)
		}
		// Resolve the topology once to reject unknown names up front; the
		// sweep rebuilds it per run with the run's own seed.
		if _, err := cli.BuildTopology(sc.Topo, tier, 0); err != nil {
			return nil, fmt.Errorf("scenario %d: %v", i, err)
		}
		label := fmt.Sprintf("%s-%dtier/%s", sc.Topo, tier, proto.Name())
		name := sc.Profile
		if name == "" {
			// The default store name flattens the label's slash so the
			// profile stays addressable under GET /v1/profiles/{name}
			// ({name} matches one path segment).
			name = fmt.Sprintf("%s-%dtier-%s", sc.Topo, tier, proto.Name())
		}
		if j, dup := seen[name]; dup {
			return nil, fmt.Errorf("scenario %d: profile %q already produced by scenario %d", i, name, j)
		}
		seen[name] = i
		out[i] = trainScenario{profile: name, label: label, topo: sc.Topo, tier: tier, proto: proto}
	}
	return out, nil
}

// ScenarioProfiles resolves the effective profile name of each scenario —
// the explicit Profile field or the defaulted flattened label — using exactly
// the validation /v1/train/batch applies. A cluster gateway uses it to place
// scenarios on owning replicas; sharing the resolver means gateway placement
// and replica training can never disagree about a grid's profile names.
func ScenarioProfiles(in []TrainScenarioJSON) ([]string, error) {
	scs, err := resolveScenarios(in)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.profile
	}
	return names, nil
}

// trainCell runs one clean route discovery for grid cell (scenario, run).
// All three random streams — topology placement, source/destination pair,
// simulation jitter — derive from the scenario label and run index alone.
func trainCell(sc trainScenario, seed uint64, run int) ([]routing.Route, error) {
	net, err := cli.BuildTopology(sc.topo, sc.tier, runner.DeriveSeed(seed, sc.label+"/topo", run))
	if err != nil {
		return nil, err
	}
	src, dst := net.PickPair(runner.StreamRNG(seed, sc.label+"/pair", run))
	simNet := sim.NewNetwork(net.Topo, sim.Config{Seed: runner.DeriveSeed(seed, sc.label+"/sim", run)})
	return sc.proto.Discover(simNet, src, dst).Routes, nil
}

func (s *Service) handleTrainBatch(w http.ResponseWriter, r *http.Request) {
	var req TrainBatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, decodeStatus(err), "%v", err)
		return
	}
	scenarios, err := resolveScenarios(req.Scenarios)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	runs := req.Runs
	if runs == 0 {
		runs = 30
	}
	if runs < 0 || runs > maxTrainRunsPerScenario {
		s.writeError(w, http.StatusBadRequest, "runs %d out of range [1,%d]", req.Runs, maxTrainRunsPerScenario)
		return
	}
	if cells := len(scenarios) * runs; cells > maxTrainCells {
		s.writeError(w, http.StatusBadRequest, "grid has %d cells (%d scenarios x %d runs), limit %d",
			cells, len(scenarios), runs, maxTrainCells)
		return
	}
	seed := uint64(2005)
	if req.Seed != nil {
		seed = *req.Seed
	}
	parallel := req.Parallel
	if parallel <= 0 || parallel > s.cfg.Workers {
		parallel = s.cfg.Workers
	}

	// Single flight: a sweep can be thousands of simulations, so a second
	// concurrent one is shed (429) instead of stacking unbounded CPU work.
	if !s.trainBusy.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, "a batch training sweep is already running")
		return
	}
	defer s.trainBusy.Store(false)

	// A sweep can legitimately run longer than the server's slow-client
	// write timeout; lift the per-response deadline (the admission gate above
	// already bounds concurrent sweeps to one).
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})

	// Streaming mode pushes the obs progress tracker's throttled status lines
	// into the chunked response as the grid drains, then the result JSON as
	// the final line. The tracker observes completions only, so streaming
	// cannot perturb the trained profiles (DESIGN §6).
	var pr *obs.Progress
	if req.Stream {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		pr = obs.NewProgress(flushWriter{w: w, rc: rc}, "train_batch", 0)
	}

	type cellOut struct {
		routes []routing.Route
		err    error
	}
	grid := runner.MapGridWorkerProgress(parallel, len(scenarios), runs, pr,
		func() struct{} { return struct{}{} },
		func(o, i int, _ struct{}) cellOut {
			routes, err := trainCell(scenarios[o], seed, i)
			return cellOut{routes: routes, err: err}
		})
	pr.Finish()

	results := make([]TrainBatchResult, len(scenarios))
	for o, sc := range scenarios {
		res := TrainBatchResult{Profile: sc.profile, Label: sc.label}
		tr := sam.NewTrainer(sc.label, s.cfg.PMFBins)
		for _, cell := range grid[o] {
			if cell.err != nil {
				res.Error = cell.err.Error()
				break
			}
			tr.ObserveRoutes(cell.routes)
		}
		if res.Error == "" {
			var installed int
			var trainErr error
			s.store.withResident(sc.profile, func(e *entry) {
				installed, trainErr = e.retrain(tr)
			})
			res.Runs = installed
			res.Trained = installed > 0 && trainErr == nil
			if trainErr != nil {
				res.Error = trainErr.Error()
			} else if res.Trained {
				s.metrics.trainings.Inc()
			}
		}
		results[o] = res
	}
	s.enforceCap()

	resp := TrainBatchResponse{
		Scenarios: results,
		Runs:      runs,
		Cells:     len(scenarios) * runs,
		Seed:      seed,
	}
	if req.Stream {
		_ = writeJSONLine(w, resp)
		_ = rc.Flush()
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// flushWriter flushes the response after every progress line so streamed
// clients see the sweep advance instead of one buffered burst at the end.
type flushWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if err == nil {
		if ferr := fw.rc.Flush(); ferr != nil && ferr != http.ErrNotSupported {
			// A failed flush means the client is gone; surface it so the
			// progress tracker stops emitting.
			return n, ferr
		}
	}
	return n, err
}
