package service

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolCloseRace hammers tryRun from many goroutines while close runs
// concurrently: no send may panic on the closed channel, every batch must
// either run completely or be refused, and close must be idempotent. Run
// under -race this is the regression test for the graceful-shutdown race.
func TestPoolCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		p := newPool(4, 32)
		var ran atomic.Int64
		var admitted atomic.Int64

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					batch := []func(){
						func() { ran.Add(1) },
						func() { ran.Add(1) },
					}
					if p.tryRun(batch) {
						admitted.Add(int64(len(batch)))
					}
				}
			}()
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			p.close()
		}()
		go func() {
			defer wg.Done()
			<-start
			p.close() // idempotent: a second concurrent close must be a no-op
		}()
		close(start)
		wg.Wait()

		if ran.Load() != admitted.Load() {
			t.Fatalf("iter %d: %d tasks ran but %d were admitted — a batch was half-dropped",
				iter, ran.Load(), admitted.Load())
		}
		if p.tryRun([]func(){func() { ran.Add(1) }}) {
			t.Fatalf("iter %d: tryRun admitted a batch after close", iter)
		}
		p.close() // and a third, sequential close stays a no-op
	}
}

// TestPoolBackpressure pins the admission contract: a batch larger than the
// queue cap is refused outright, a fitting one runs to completion.
func TestPoolBackpressure(t *testing.T) {
	p := newPool(2, 4)
	defer p.close()

	big := make([]func(), 5)
	for i := range big {
		big[i] = func() {}
	}
	if p.tryRun(big) {
		t.Fatal("batch of 5 admitted over queue cap 4")
	}
	if got := p.depth(); got != 0 {
		t.Fatalf("refused batch left depth %d, want 0", got)
	}

	var ran atomic.Int64
	ok := p.tryRun([]func(){
		func() { ran.Add(1) },
		func() { ran.Add(1) },
	})
	if !ok || ran.Load() != 2 {
		t.Fatalf("fitting batch: admitted=%v ran=%d, want true/2", ok, ran.Load())
	}
}
