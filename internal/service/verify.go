package service

import (
	"fmt"
	"net/http"
	"strconv"

	"samnet/internal/attack"
	"samnet/internal/cli"
	"samnet/internal/obs"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mr"
	"samnet/internal/runner"
	"samnet/internal/sam"
	"samnet/internal/sim"
	"samnet/internal/topology"
	"samnet/internal/verify"
)

// Verification: POST /v1/verify replays the paper's step-2 probe protocol
// against a suspect pair on a named scenario — the same deterministic
// scenario grid /v1/train/batch sweeps — and answers with the evidence
// verdict. With isolate=true a condemned pair lands on the service's
// isolation list (step 3), visible via GET /v1/isolation and revocable via
// DELETE /v1/isolation/{a}/{b}.
//
// Determinism: every random stream derives from (seed, scenario label) via
// runner.DeriveSeed, exactly like batch training, so re-posting a request
// reproduces the verdict bit for bit.

// Validation caps bounding one verification request.
const (
	maxVerifyTimeout   = 1e6
	maxVerifyRetries   = 16
	maxVerifyMaxProbes = 64
)

// parseBehavior maps the wire behaviour to the attack model. "forge" is
// forward-but-fabricate: payload passes, probe answers are forged.
func parseBehavior(s string) (attack.PayloadBehavior, bool, error) {
	switch s {
	case "", "blackhole":
		return attack.Blackhole, false, nil
	case "greyhole":
		return attack.Greyhole, false, nil
	case "forward":
		return attack.Forward, false, nil
	case "forge":
		return attack.Forward, true, nil
	}
	return 0, false, fmt.Errorf("unknown behavior %q (want blackhole, greyhole, forward or forge)", s)
}

func evidenceJSON(evidence []verify.Evidence) []EvidenceJSON {
	out := make([]EvidenceJSON, len(evidence))
	for i, e := range evidence {
		route := make([]int, len(e.Route))
		for j, id := range e.Route {
			route[j] = int(id)
		}
		out[i] = EvidenceJSON{
			Kind:    e.Kind.String(),
			Route:   route,
			ProbeID: e.ProbeID,
			Attempt: e.Attempt,
			At:      float64(e.At),
		}
	}
	return out
}

func (s *Service) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, decodeStatus(err), "%v", err)
		return
	}
	scenarios, err := resolveScenarios([]TrainScenarioJSON{req.Scenario})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sc := scenarios[0]
	behavior, forge, err := parseBehavior(req.Behavior)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Timeout > maxVerifyTimeout || req.Retries > maxVerifyRetries || req.MaxProbes > maxVerifyMaxProbes {
		s.writeError(w, http.StatusBadRequest, "probe knobs out of range (timeout <= %g, retries <= %d, max_probes <= %d)",
			float64(maxVerifyTimeout), maxVerifyRetries, maxVerifyMaxProbes)
		return
	}
	seed := uint64(2005)
	if req.Seed != nil {
		seed = *req.Seed
	}

	// Build and arm the scenario exactly as batch training builds its cells:
	// all randomness derives from (seed, label).
	net, err := cli.BuildTopology(sc.topo, sc.tier, runner.DeriveSeed(seed, sc.label+"/topo", 0))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wormholes := 1
	if req.Wormholes != nil {
		wormholes = *req.Wormholes
	}
	if wormholes < 0 || wormholes > len(net.AttackerPairs) {
		s.writeError(w, http.StatusBadRequest, "wormholes %d out of range [0,%d]", wormholes, len(net.AttackerPairs))
		return
	}
	var atk *attack.Scenario
	switch req.Attack {
	case "", "classic":
		atk = attack.NewScenario(net, wormholes, behavior)
	default:
		if req.Wormholes != nil {
			s.writeError(w, http.StatusBadRequest, "wormholes only parameterizes the classic attack variant")
			return
		}
		atk, err = attack.Named(req.Attack, net, behavior)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Attack == "forge" {
		f := atk.ForgeFunc()
		switch p := sc.proto.(type) {
		case *mr.Protocol:
			p.Forge = f
		case *dsr.Protocol:
			p.Forge = f
		default:
			s.writeError(w, http.StatusBadRequest, `attack "forge" requires the mr or dsr protocol`)
			return
		}
	}
	simNet := sim.NewNetwork(net.Topo, sim.Config{Seed: runner.DeriveSeed(seed, sc.label+"/sim", 0)})
	atk.Arm(simNet)

	// Route set: client-supplied (validated against the armed topology — the
	// tunnels are topology links) or a server-side discovery.
	var routes []routing.Route
	if len(req.Routes) > 0 {
		routes, err = decodeRoutes(req.Routes)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for i, rt := range routes {
			for _, id := range rt {
				if int(id) >= net.Topo.N() {
					s.writeError(w, http.StatusUnprocessableEntity,
						"route %d: node %d outside the %d-node scenario topology", i, id, net.Topo.N())
					return
				}
			}
			if !rt.Valid(net.Topo) {
				s.writeError(w, http.StatusUnprocessableEntity,
					"route %d (%s) is not connected in the scenario topology", i, rt)
				return
			}
		}
	} else {
		src, dst := net.PickPair(runner.StreamRNG(seed, sc.label+"/pair", 0))
		routes = sc.proto.Discover(simNet, src, dst).Routes
	}

	// The accused pair: explicit, or SAM's localization over the route set.
	var pair topology.Link
	if req.Suspect != nil {
		if req.Suspect.A < 0 || req.Suspect.B < 0 ||
			req.Suspect.A >= net.Topo.N() || req.Suspect.B >= net.Topo.N() || req.Suspect.A == req.Suspect.B {
			s.writeError(w, http.StatusUnprocessableEntity, "suspect %d-%d outside the %d-node scenario topology",
				req.Suspect.A, req.Suspect.B, net.Topo.N())
			return
		}
		pair = topology.MkLink(topology.NodeID(req.Suspect.A), topology.NodeID(req.Suspect.B))
	} else {
		st := sam.Analyze(routes)
		if st.N == 0 {
			s.writeError(w, http.StatusUnprocessableEntity, "no routes to localize a suspect from")
			return
		}
		pair = st.Suspect
	}

	cfg := s.cfg.Verify
	if req.Timeout != 0 {
		cfg.Timeout = sim.Time(req.Timeout)
	}
	if req.Retries != 0 {
		cfg.Retries = req.Retries
	}
	if req.MaxProbes != 0 {
		cfg.MaxProbes = req.MaxProbes
	}
	if forge {
		cfg.Forgers = atk.MaliciousNodes()
	}

	refused := s.iso.Isolated(pair)
	v := verify.Probe(simNet, pair, routes, cfg, s.iso)
	isolated := refused
	if req.Isolate && v.Condemned && !refused {
		s.iso.Condemn(v)
		isolated = true
	}

	s.metrics.observeVerify(v, refused)
	if s.decisions.Enabled() {
		rec := obs.Decision{
			Kind:       "verify",
			TraceID:    requestTraceHex(r),
			Routes:     len(routes),
			Suspect:    obs.DecisionLink{A: int(pair.A), B: int(pair.B)},
			Likelihood: v.Likelihood,
			Decision:   verifyOutcome(v, refused),
			Evidence:   make([]obs.DecisionEvidence, len(v.Evidence)),
		}
		for i, e := range v.Evidence {
			rec.Evidence[i] = obs.DecisionEvidence{
				Kind: e.Kind.String(), Route: e.Route.String(), Attempt: e.Attempt, At: float64(e.At),
			}
		}
		s.decisions.Record(rec)
	}

	s.writeJSON(w, http.StatusOK, VerifyResponse{
		Label:         sc.label,
		Suspect:       linkJSON(pair),
		Likelihood:    v.Likelihood,
		Condemned:     v.Condemned,
		Probes:        v.Probes,
		Evidence:      evidenceJSON(v.Evidence),
		Isolated:      isolated,
		IsolationSize: s.iso.Len(),
		Seed:          seed,
	})
}

// verifyOutcome names a verdict for decision records, mirroring the metric
// outcome label.
func verifyOutcome(v verify.Verdict, refused bool) string {
	switch {
	case refused:
		return "refused"
	case v.Condemned:
		return "condemned"
	case len(v.Evidence) == 0:
		return "unproven"
	}
	return "cleared"
}

func (s *Service) handleIsolation(w http.ResponseWriter, r *http.Request) {
	verdicts := s.iso.Pairs()
	pairs := make([]IsolatedPairJSON, len(verdicts))
	for i, v := range verdicts {
		pairs[i] = IsolatedPairJSON{Pair: linkJSON(v.Pair), Likelihood: v.Likelihood, Probes: v.Probes}
	}
	s.writeJSON(w, http.StatusOK, IsolationResponse{Pairs: pairs})
}

func (s *Service) handleIsolationLift(w http.ResponseWriter, r *http.Request) {
	a, errA := strconv.Atoi(r.PathValue("a"))
	b, errB := strconv.Atoi(r.PathValue("b"))
	if errA != nil || errB != nil || a < 0 || b < 0 || a == b {
		s.writeError(w, http.StatusBadRequest, "isolation pair must be two distinct non-negative node ids")
		return
	}
	pair := topology.MkLink(topology.NodeID(a), topology.NodeID(b))
	if !s.iso.Lift(pair) {
		s.writeError(w, http.StatusNotFound, "pair %s is not isolated", pair)
		return
	}
	s.writeJSON(w, http.StatusOK, LiftResponse{Pair: linkJSON(pair), Lifted: true})
}
