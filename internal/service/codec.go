package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"samnet/internal/obs"
	"samnet/internal/routing"
	"samnet/internal/sam"
	"samnet/internal/topology"
)

// Wire types. Routes travel as arrays of node ids ([[0,1,2],[0,3,2]]), the
// same shape routing.Route has in memory, so clients need no bespoke
// encoding.

// LinkJSON is an undirected link on the wire.
type LinkJSON struct {
	A int `json:"a"`
	B int `json:"b"`
}

func linkJSON(l topology.Link) LinkJSON { return LinkJSON{A: int(l.A), B: int(l.B)} }

// LinkCountJSON is one distinct link with its occurrence statistics.
type LinkCountJSON struct {
	Link  LinkJSON `json:"link"`
	Count int      `json:"count"`
	P     float64  `json:"p"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	Routes [][]int `json:"routes"`
	// TopK bounds how many of the most frequent links the response lists
	// (default 5, 0 keeps the default, negative lists none).
	TopK int `json:"top_k,omitempty"`
}

// AnalyzeResponse reports SAM's statistics of one route set.
type AnalyzeResponse struct {
	Routes   int             `json:"routes"`
	N        int             `json:"n"`
	Distinct int             `json:"distinct_links"`
	PMax     float64         `json:"p_max"`
	Phi      float64         `json:"phi"`
	MaxLink  LinkJSON        `json:"max_link"`
	Suspect  LinkJSON        `json:"suspect_link"`
	Top      []LinkCountJSON `json:"top_links,omitempty"`
}

// DetectRequest is the body of POST /v1/detect: one route set scored
// against a named profile.
type DetectRequest struct {
	Profile string  `json:"profile"`
	Routes  [][]int `json:"routes"`
	// Update controls the adaptive low-pass profile update (default true,
	// the paper's behaviour).
	Update *bool `json:"update,omitempty"`
	// Explain requests the full decision record — frequency table,
	// statistics vs thresholds, localized link — in the response.
	Explain bool `json:"explain,omitempty"`
}

// VerdictJSON is one detector verdict on the wire.
type VerdictJSON struct {
	Decision    string   `json:"decision"`
	Lambda      float64  `json:"lambda"`
	ZPMax       float64  `json:"z_pmax"`
	ZPhi        float64  `json:"z_phi"`
	TV          float64  `json:"tv"`
	PMax        float64  `json:"p_max"`
	Phi         float64  `json:"phi"`
	Routes      int      `json:"routes"`
	N           int      `json:"n"`
	SuspectLink LinkJSON `json:"suspect_link"`
	Suspects    [2]int   `json:"suspects"`
}

func verdictJSON(v sam.Verdict) VerdictJSON {
	return VerdictJSON{
		Decision:    v.Decision.String(),
		Lambda:      v.Lambda,
		ZPMax:       v.ZPMax,
		ZPhi:        v.ZPhi,
		TV:          v.TV,
		PMax:        v.Stats.PMax,
		Phi:         v.Stats.Phi,
		Routes:      v.Stats.Routes,
		N:           v.Stats.N,
		SuspectLink: linkJSON(v.SuspectLink),
		Suspects:    [2]int{int(v.Suspects[0]), int(v.Suspects[1])},
	}
}

// DetectResponse is the body answering /v1/detect. Explain carries the full
// decision record when the request asked for it.
type DetectResponse struct {
	Profile string        `json:"profile"`
	Verdict VerdictJSON   `json:"verdict"`
	Explain *obs.Decision `json:"explain,omitempty"`
}

// BatchDetectRequest is the body of POST /v1/detect/batch: many route sets
// scored against one named profile on the worker pool.
type BatchDetectRequest struct {
	Profile string    `json:"profile"`
	Items   [][][]int `json:"items"`
	Update  *bool     `json:"update,omitempty"`
}

// BatchDetectResponse answers /v1/detect/batch, verdicts in item order.
// When every item scores, the status is 200 and Errors is absent. When some
// items fail, the status is 207 (Multi-Status) and Errors carries one entry
// per item — "" for items that scored (their verdict is live) and the error
// text for items that did not (their verdict slot is zero-valued filler).
// Completed verdicts are always returned: batch items that already updated
// the adaptive profile are never silently discarded because a sibling item
// failed.
type BatchDetectResponse struct {
	Profile  string        `json:"profile"`
	Verdicts []VerdictJSON `json:"verdicts"`
	Errors   []string      `json:"errors,omitempty"`
}

// TrainRequest is the body of POST /v1/profiles/{name}/train: one or more
// normal-condition route sets to fold into the profile's trainer.
type TrainRequest struct {
	RouteSets [][][]int `json:"route_sets"`
}

// TrainResponse reports the training state after the request.
type TrainResponse struct {
	Profile string `json:"profile"`
	Runs    int    `json:"runs"`
	Trained bool   `json:"trained"`
}

// TrainScenarioJSON is one grid cell axis of POST /v1/train/batch: a
// (topology, transmission tier, protocol) condition, trained into the named
// profile (default: a flattened form of the scenario's canonical label,
// e.g. "cluster-1tier-MR", so the name fits one URL path segment).
type TrainScenarioJSON struct {
	Profile  string `json:"profile,omitempty"`
	Topo     string `json:"topo"`
	Tier     int    `json:"tier,omitempty"`
	Protocol string `json:"protocol,omitempty"`
}

// TrainBatchRequest is the body of POST /v1/train/batch: a scenario grid
// swept server-side under the runner's determinism contract. Stream switches
// the response to a progress stream whose final line is the result JSON.
type TrainBatchRequest struct {
	Scenarios []TrainScenarioJSON `json:"scenarios"`
	Runs      int                 `json:"runs,omitempty"`
	Seed      *uint64             `json:"seed,omitempty"`
	Parallel  int                 `json:"parallel,omitempty"`
	Stream    bool                `json:"stream,omitempty"`
}

// TrainBatchResult reports one scenario's outcome.
type TrainBatchResult struct {
	Profile string `json:"profile"`
	Label   string `json:"label"`
	Runs    int    `json:"runs"`
	Trained bool   `json:"trained"`
	Error   string `json:"error,omitempty"`
}

// TrainBatchResponse answers /v1/train/batch, scenarios in request order.
// It carries the effective runs and seed so defaulted sweeps are
// reproducible from the response alone.
type TrainBatchResponse struct {
	Scenarios []TrainBatchResult `json:"scenarios"`
	Runs      int                `json:"runs"`
	Cells     int                `json:"cells"`
	Seed      uint64             `json:"seed"`
}

// VerifyRequest is the body of POST /v1/verify: replay the step-2 probe
// protocol against a suspect pair on a named scenario. The scenario grid
// axes are the same as /v1/train/batch; the attack knobs control what the
// simulated wormhole does to probe traffic.
type VerifyRequest struct {
	Scenario TrainScenarioJSON `json:"scenario"`
	// Routes optionally supplies the route set to probe over (validated
	// against the armed topology). Empty runs a server-side discovery.
	Routes [][]int `json:"routes,omitempty"`
	// Suspect is the accused pair; nil localizes via SAM over the routes.
	Suspect *LinkJSON `json:"suspect,omitempty"`
	// Wormholes is how many tunnels to install (nil → 1; 0 probes a clean
	// network). It only parameterizes the classic attack variant.
	Wormholes *int `json:"wormholes,omitempty"`
	// Attack selects the adversary variant to arm, from the attack package's
	// named vocabulary: "classic" (default), "latent", "chain", "adaptive"
	// or "forge" — the same scenario set the rocmatrix experiment sweeps.
	// "forge" requires the mr or dsr protocol (the forge hook plugs into
	// their discovery floods).
	Attack string `json:"attack,omitempty"`
	// Behavior is the attackers' payload behaviour: "blackhole" (default),
	// "greyhole", "forward", or "forge" (forward but answer probes with
	// fabricated proofs).
	Behavior string  `json:"behavior,omitempty"`
	Seed     *uint64 `json:"seed,omitempty"`
	// Timeout, Retries and MaxProbes map onto verify.Config with its
	// ExplicitZero convention: 0 selects the default, -1 a true zero.
	Timeout   float64 `json:"timeout,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	MaxProbes int     `json:"max_probes,omitempty"`
	// Isolate condemns the pair into the service's isolation list when the
	// verdict clears the threshold.
	Isolate bool `json:"isolate,omitempty"`
}

// EvidenceJSON is one probe evidence record on the wire.
type EvidenceJSON struct {
	Kind    string  `json:"kind"`
	Route   []int   `json:"route,omitempty"`
	ProbeID uint64  `json:"probe_id,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	At      float64 `json:"at"`
}

// VerifyResponse answers /v1/verify with the pair verdict.
type VerifyResponse struct {
	Label      string         `json:"label"`
	Suspect    LinkJSON       `json:"suspect"`
	Likelihood float64        `json:"likelihood"`
	Condemned  bool           `json:"condemned"`
	Probes     int            `json:"probes"`
	Evidence   []EvidenceJSON `json:"evidence,omitempty"`
	// Isolated reports whether the pair is on the isolation list after this
	// request; IsolationSize the list's total pair count.
	Isolated      bool   `json:"isolated"`
	IsolationSize int    `json:"isolation_size"`
	Seed          uint64 `json:"seed"`
}

// IsolatedPairJSON is one condemned pair in GET /v1/isolation.
type IsolatedPairJSON struct {
	Pair       LinkJSON `json:"pair"`
	Likelihood float64  `json:"likelihood"`
	Probes     int      `json:"probes"`
}

// IsolationResponse answers GET /v1/isolation.
type IsolationResponse struct {
	Pairs []IsolatedPairJSON `json:"pairs"`
}

// LiftResponse answers DELETE /v1/isolation/{a}/{b}.
type LiftResponse struct {
	Pair   LinkJSON `json:"pair"`
	Lifted bool     `json:"lifted"`
}

// ProfileInfo describes one stored profile in GET /v1/profiles.
type ProfileInfo struct {
	Name    string `json:"name"`
	Runs    int    `json:"runs"`
	Trained bool   `json:"trained"`
}

// ProfileResponse answers GET /v1/profiles/{name}: the portable profile
// JSON plus the current adaptive means.
type ProfileResponse struct {
	Name     string       `json:"name"`
	Runs     int          `json:"runs"`
	PMaxMean float64      `json:"adaptive_pmax_mean"`
	PhiMean  float64      `json:"adaptive_phi_mean"`
	Profile  *sam.Profile `json:"profile"`
}

// PutProfileResponse answers PUT /v1/profiles/{name}: the snapshot record
// (a ProfileResponse body, i.e. exactly what GET /v1/profiles/{name} exports)
// was installed under the path's name. This is the cluster sync primitive:
// shipping a record between replicas is a GET from the holder and a PUT to
// the owner.
type PutProfileResponse struct {
	Profile  string `json:"profile"`
	Runs     int    `json:"runs"`
	Restored bool   `json:"restored"`
}

// DeleteProfileResponse answers DELETE /v1/profiles/{name}.
type DeleteProfileResponse struct {
	Profile string `json:"profile"`
	Deleted bool   `json:"deleted"`
}

// HealthzResponse answers GET /healthz: liveness plus the readiness signals a
// cluster gateway (or ops) gates traffic on. SnapshotAgeS is seconds since
// the last successful durable snapshot, -1 when none has been written (no
// -snapshot configured, or none completed yet).
type HealthzResponse struct {
	Status       string  `json:"status"`
	Profiles     int     `json:"profiles"`
	QueueDepth   int     `json:"queue_depth"`
	SnapshotAgeS float64 `json:"snapshot_age_s"`
}

// DecisionsResponse answers GET /debug/decisions: the retained decision
// records, oldest first, plus the ring's state.
type DecisionsResponse struct {
	Enabled   bool           `json:"enabled"`
	Capacity  int            `json:"capacity"`
	Recorded  uint64         `json:"recorded"`
	Decisions []obs.Decision `json:"decisions"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Decoding limits. They bound worst-case memory per request; a request
// exceeding any of them is rejected with 400/413, never partially applied.
const (
	maxRoutesPerSet = 4096
	maxRouteHops    = 1024
	maxNodeID       = 1 << 30
)

var errBodyTooLarge = errors.New("request body exceeds the size limit")

// decodeJSON strictly decodes one JSON value from the (size-limited) body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return errBodyTooLarge
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	// Reject trailing garbage so "{}{}" cannot sneak half-parsed state in.
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("invalid JSON body: trailing data after the request object")
	}
	return nil
}

// decodeRoutes validates and converts one wire route set.
func decodeRoutes(raw [][]int) ([]routing.Route, error) {
	if len(raw) > maxRoutesPerSet {
		return nil, fmt.Errorf("route set has %d routes, limit %d", len(raw), maxRoutesPerSet)
	}
	routes := make([]routing.Route, 0, len(raw))
	for i, r := range raw {
		if len(r) > maxRouteHops+1 {
			return nil, fmt.Errorf("route %d has %d nodes, limit %d", i, len(r), maxRouteHops+1)
		}
		route := make(routing.Route, len(r))
		for j, id := range r {
			if id < 0 || id > maxNodeID {
				return nil, fmt.Errorf("route %d node %d: id %d out of range [0,%d]", i, j, id, maxNodeID)
			}
			route[j] = topology.NodeID(id)
		}
		routes = append(routes, route)
	}
	return routes, nil
}

// decodeRouteSets validates and converts many wire route sets, capping the
// total route count across sets at maxRoutesPerSet*4 so a training request
// cannot smuggle unbounded work past the per-set limit.
func decodeRouteSets(raw [][][]int) ([][]routing.Route, error) {
	total := 0
	sets := make([][]routing.Route, 0, len(raw))
	for i, rs := range raw {
		total += len(rs)
		if total > maxRoutesPerSet*4 {
			return nil, fmt.Errorf("request carries more than %d routes in total", maxRoutesPerSet*4)
		}
		set, err := decodeRoutes(rs)
		if err != nil {
			return nil, fmt.Errorf("route set %d: %w", i, err)
		}
		sets = append(sets, set)
	}
	return sets, nil
}
