package service

import (
	"net/http"
	"sync"
	"time"

	"samnet/internal/obs"
	"samnet/internal/sam"
	"samnet/internal/verify"
)

// metrics bundles the service's pre-resolved obs instruments. Every series is
// registered up front (at New or at wrap time), so the request hot path never
// touches the registry's mutex — it only increments atomics it already holds
// pointers to.
type metrics struct {
	reg *obs.Registry

	// tracer captures per-request spans when enabled; nil (or disabled)
	// keeps the instrument wrapper on its zero-extra-alloc path.
	tracer *obs.Tracer

	// Per-detection instruments: one counter per hard decision plus the
	// distributions of the paper's statistics as scored in production.
	detections   [3]*obs.Counter // indexed by sam.Decision
	detectPMax   *obs.Histogram
	detectPhi    *obs.Histogram
	detectTV     *obs.Histogram
	detectLambda *obs.Histogram

	// Step-2 verification instruments: one counter per probe outcome, one
	// per evidence kind, and the likelihood distribution.
	verifications    map[string]*obs.Counter
	verifyEvidence   [verify.PairIsolated + 1]*obs.Counter // indexed by verify.Kind
	verifyLikelihood *obs.Histogram

	// Profile-store lifecycle counters. Evictions are labelled by cause:
	// an explicit DELETE, the idle-TTL sweep, or the max-profiles LRU cap.
	trainings    *obs.Counter
	loads        *obs.Counter
	evictDelete  *obs.Counter
	evictTTL     *obs.Counter
	evictLRU     *obs.Counter
	snapshots    *obs.Counter
	snapshotErrs *obs.Counter

	// respErrors counts response bodies that failed after the status line was
	// committed — the one failure a JSON API cannot report in-band (a 200 with
	// truncated JSON used to be silent; now it is at least observable).
	respErrors *obs.Counter
}

func newMetrics(reg *obs.Registry, tracer *obs.Tracer) *metrics {
	m := &metrics{reg: reg, tracer: tracer}
	for d := sam.Normal; d <= sam.Attacked; d++ {
		m.detections[d] = reg.Counter("samserve_detections_total",
			"Scored route sets, by hard decision.",
			obs.Label{Key: "decision", Value: d.String()})
	}
	m.detectPMax = reg.Histogram("samserve_detect_pmax",
		"Observed p_max (max link relative frequency) per scored route set.", obs.RatioBuckets)
	m.detectPhi = reg.Histogram("samserve_detect_phi",
		"Observed phi (normalized top-two frequency gap) per scored route set.", obs.RatioBuckets)
	m.detectTV = reg.Histogram("samserve_detect_tv",
		"PMF total-variation distance from the trained profile per scored route set.", obs.RatioBuckets)
	m.detectLambda = reg.Histogram("samserve_detect_lambda",
		"Soft decision lambda per scored route set (0 attacked, 1 normal).", obs.RatioBuckets)
	m.verifications = make(map[string]*obs.Counter, 4)
	for _, outcome := range []string{"condemned", "cleared", "unproven", "refused"} {
		m.verifications[outcome] = reg.Counter("samserve_verifications_total",
			"Probe verifications served, by outcome.",
			obs.Label{Key: "outcome", Value: outcome})
	}
	for k := verify.AckValid; k <= verify.PairIsolated; k++ {
		m.verifyEvidence[k] = reg.Counter("samserve_verify_evidence_total",
			"Probe evidence records produced, by kind.",
			obs.Label{Key: "kind", Value: k.String()})
	}
	m.verifyLikelihood = reg.Histogram("samserve_verify_likelihood",
		"Incriminating evidence mass fraction per verified pair.", obs.RatioBuckets)
	m.trainings = reg.Counter("samserve_profile_trainings_total",
		"Successful training requests.")
	m.loads = reg.Counter("samserve_profile_loads_total",
		"Profiles installed from external snapshots (LoadProfile).")
	for _, c := range []struct {
		reason string
		dst    **obs.Counter
	}{{"delete", &m.evictDelete}, {"ttl", &m.evictTTL}, {"lru", &m.evictLRU}} {
		*c.dst = reg.Counter("samserve_profile_evictions_total",
			"Profiles evicted from the store, by cause (delete, ttl, lru).",
			obs.Label{Key: "reason", Value: c.reason})
	}
	m.snapshots = reg.Counter("samserve_snapshots_total",
		"Snapshot files written successfully (timer or shutdown).")
	m.snapshotErrs = reg.Counter("samserve_snapshot_errors_total",
		"Snapshot write attempts that failed.")
	m.respErrors = reg.Counter("samserve_response_errors_total",
		"Response bodies that failed to encode or write after the status was sent.")
	return m
}

// observeVerify feeds one probe verdict into the verification instruments.
func (m *metrics) observeVerify(v verify.Verdict, refused bool) {
	outcome := "cleared"
	switch {
	case refused:
		outcome = "refused"
	case v.Condemned:
		outcome = "condemned"
	case len(v.Evidence) == 0:
		outcome = "unproven"
	}
	m.verifications[outcome].Inc()
	for _, e := range v.Evidence {
		if int(e.Kind) < len(m.verifyEvidence) && m.verifyEvidence[e.Kind] != nil {
			m.verifyEvidence[e.Kind].Inc()
		}
	}
	m.verifyLikelihood.Observe(v.Likelihood)
}

// observeVerdict feeds one scored verdict into the detection instruments.
func (m *metrics) observeVerdict(v sam.Verdict) {
	if d := int(v.Decision); d >= 0 && d < len(m.detections) {
		m.detections[d].Inc()
	}
	m.detectPMax.Observe(v.Stats.PMax)
	m.detectPhi.Observe(v.Stats.Phi)
	m.detectTV.Observe(v.TV)
	m.detectLambda.Observe(v.Lambda)
}

// endpointMetrics tracks one endpoint: request counts by status class and a
// latency histogram, resolved once at registration.
type endpointMetrics struct {
	byClass [6]*obs.Counter // index status/100; 0 collects anything odd
	latency *obs.Histogram
}

var classNames = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

func (m *metrics) endpoint(name string) *endpointMetrics {
	em := &endpointMetrics{
		latency: m.reg.Histogram("samserve_request_duration_seconds",
			"Request latency.", obs.DefaultLatencyBuckets,
			obs.Label{Key: "endpoint", Value: name}),
	}
	// Only the classes a handler can actually answer are declared, keeping
	// the exposition focused; anything unexpected lands in "other".
	for _, class := range []int{0, 2, 4, 5} {
		em.byClass[class] = m.reg.Counter("samserve_requests_total",
			"Requests served, by endpoint and status class.",
			obs.Label{Key: "endpoint", Value: name},
			obs.Label{Key: "class", Value: classNames[class]})
	}
	return em
}

func (em *endpointMetrics) record(status int, d time.Duration) {
	class := status / 100
	if class < 0 || class >= len(em.byClass) || em.byClass[class] == nil {
		class = 0
	}
	em.byClass[class].Inc()
	em.latency.ObserveDuration(d)
}

// statusWriter captures the status code a handler writes, for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can reach
// optional interfaces (Flusher for the batch-training progress stream) that
// the embedding hides.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// statusWriterPool recycles the per-request status capture wrapper; at the
// serving throughput target even this one small struct per request is
// measurable garbage.
var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

// instrument wraps a handler with request counting, latency observation,
// and — when tracing is enabled — a server span under the given endpoint
// name. The tracing branch is guarded by one atomic load, so with the
// tracer off (or nil) the wrapper's cost is exactly what it was before
// tracing existed: the zero-alloc detect guarantee does not move.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := m.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status = w, 0
		var span obs.ActiveSpan
		if m.tracer.Enabled() {
			// Continue the caller's trace (gateway hop, external client)
			// or root a new one. The span context rides the request
			// context for downstream propagation, and the response echoes
			// the header so clients and the access log can join the trace.
			span = m.tracer.Start(name, obs.ParentFromRequest(r))
			sw.Header()["Traceparent"] = []string{span.Context().Traceparent()}
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span.Context()))
		}
		begin := time.Now()
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
		em.record(status, time.Since(begin))
		m.tracer.Finish(span, status)
	}
}
