package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in seconds, chosen
// around the sub-millisecond cost of scoring one route set with headroom for
// queueing under load.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// histogram is a fixed-bucket latency histogram with atomic counters, cheap
// enough to sit on the request hot path.
type histogram struct {
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sumNs  atomic.Int64
	count  atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(latencyBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBounds, sec)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// endpointMetrics tracks one endpoint: request counts by status class and a
// latency histogram.
type endpointMetrics struct {
	name    string
	byClass [6]atomic.Uint64 // index status/100; 0 collects anything odd
	latency *histogram
}

func (m *endpointMetrics) record(status int, d time.Duration) {
	class := status / 100
	if class < 0 || class > 5 {
		class = 0
	}
	m.byClass[class].Add(1)
	m.latency.observe(d)
}

// metrics is the service-wide registry. Endpoints are registered up front,
// so the hot path is lock-free; the mutex only guards registration.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	start     time.Time
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics), start: time.Now()}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{name: name, latency: newHistogram()}
		m.endpoints[name] = em
	}
	return em
}

// write renders the registry in Prometheus text exposition format. depth and
// profiles report the current worker-pool occupancy and profile count.
func (m *metrics) write(w io.Writer, depth int64, profiles int) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP samserve_uptime_seconds Seconds since the service started.\n")
	fmt.Fprintf(w, "# TYPE samserve_uptime_seconds gauge\n")
	fmt.Fprintf(w, "samserve_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "# HELP samserve_queue_depth Tasks admitted to the worker pool (queued or running).\n")
	fmt.Fprintf(w, "# TYPE samserve_queue_depth gauge\n")
	fmt.Fprintf(w, "samserve_queue_depth %d\n", depth)
	fmt.Fprintf(w, "# HELP samserve_profiles Profiles resident in the store.\n")
	fmt.Fprintf(w, "# TYPE samserve_profiles gauge\n")
	fmt.Fprintf(w, "samserve_profiles %d\n", profiles)

	fmt.Fprintf(w, "# HELP samserve_requests_total Requests served, by endpoint and status class.\n")
	fmt.Fprintf(w, "# TYPE samserve_requests_total counter\n")
	for _, name := range names {
		em := m.endpoints[name]
		for class := 1; class <= 5; class++ {
			if n := em.byClass[class].Load(); n > 0 {
				fmt.Fprintf(w, "samserve_requests_total{endpoint=%q,class=\"%dxx\"} %d\n", name, class, n)
			}
		}
	}

	fmt.Fprintf(w, "# HELP samserve_request_duration_seconds Request latency.\n")
	fmt.Fprintf(w, "# TYPE samserve_request_duration_seconds histogram\n")
	for _, name := range names {
		h := m.endpoints[name].latency
		var cum uint64
		for i, bound := range latencyBounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "samserve_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", name, bound, cum)
		}
		cum += h.counts[len(latencyBounds)].Load()
		fmt.Fprintf(w, "samserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "samserve_request_duration_seconds_sum{endpoint=%q} %.6f\n", name, time.Duration(h.sumNs.Load()).Seconds())
		fmt.Fprintf(w, "samserve_request_duration_seconds_count{endpoint=%q} %d\n", name, h.count.Load())
	}
}

// statusWriter captures the status code a handler writes, for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with request counting and latency observation
// under the given endpoint name.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := m.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		em.record(sw.status, time.Since(begin))
	}
}
