//go:build race

package service

// raceEnabled reports whether the race detector is compiled in. Strict
// allocation-count assertions skip under it: sync.Pool deliberately drops a
// quarter of Puts when racing, so pooled paths allocate nondeterministically.
const raceEnabled = true
