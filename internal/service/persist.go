package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"
)

// Snapshot persistence: the profile lifecycle's durability layer. A snapshot
// is JSON lines — one header record followed by one record per resident
// trained profile, each record exactly the body GET /v1/profiles/{name}
// answers (name, runs, adaptive feature means, portable profile). Persisting
// the adaptive means matters: they are the low-pass filter state of the
// paper's equations 8–9, and without them every restart silently resets the
// profile to its trained means.
//
// Durability contract:
//
//   - Writes are atomic: the snapshot is written to a temp file in the target
//     directory, fsynced, and renamed over the destination, so a crash
//     mid-write can never leave a half-written file under the snapshot path.
//   - Restores are prefix-tolerant: records are validated independently and a
//     corrupt or truncated record is skipped (counted, reported) while every
//     valid record before and after it restores — a truncated tail costs the
//     tail, never the boot.

// SnapshotFormat and SnapshotVersion identify the on-disk snapshot schema.
// Version bumps when a record's meaning changes incompatibly; readers refuse
// versions they do not know rather than misread them.
const (
	SnapshotFormat  = "samserve-snapshot"
	SnapshotVersion = 1
)

// SnapshotHeader is the first line of every snapshot file.
type SnapshotHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// WriteSnapshotHeader emits the header line opening a snapshot stream.
func WriteSnapshotHeader(w io.Writer) error {
	return writeJSONLine(w, SnapshotHeader{Format: SnapshotFormat, Version: SnapshotVersion})
}

// WriteSnapshotRecord emits one profile record. The record type is
// ProfileResponse on purpose: a snapshot line and a GET /v1/profiles/{name}
// body are the same document, so samtrain output, API exports and snapshots
// all interchange.
func WriteSnapshotRecord(w io.Writer, rec ProfileResponse) error {
	if rec.Name == "" {
		return fmt.Errorf("service: snapshot record needs a profile name")
	}
	if rec.Profile == nil {
		return fmt.Errorf("service: snapshot record %q carries no profile", rec.Name)
	}
	return writeJSONLine(w, rec)
}

func writeJSONLine(w io.Writer, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// WriteSnapshot streams a snapshot of every resident trained profile to w and
// returns how many profiles it wrote. Untrained entries (created but never
// successfully trained) carry no detector state and are skipped; profiles
// trained or evicted concurrently may or may not be included, each included
// record is internally consistent (entry.snapshot is race-free).
func (s *Service) WriteSnapshot(w io.Writer) (int, error) {
	if err := WriteSnapshotHeader(w); err != nil {
		return 0, err
	}
	written := 0
	for _, name := range s.store.names() {
		e, err := s.store.get(name)
		if err != nil {
			continue // evicted concurrently
		}
		p, pmaxMean, phiMean, runs, err := e.snapshot()
		if err != nil {
			continue // untrained
		}
		rec := ProfileResponse{Name: name, Runs: runs, PMaxMean: pmaxMean, PhiMean: phiMean, Profile: p}
		if err := WriteSnapshotRecord(w, rec); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// SaveSnapshot writes a snapshot atomically under path: temp file in the same
// directory, fsync, rename. Readers of path therefore always see either the
// previous complete snapshot or the new complete one.
func (s *Service) SaveSnapshot(path string) (n int, err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
			s.metrics.snapshotErrs.Inc()
		} else {
			s.metrics.snapshots.Inc()
			s.lastSnapshot.Store(time.Now().UnixNano())
		}
	}()
	bw := bufio.NewWriter(f)
	if n, err = s.WriteSnapshot(bw); err != nil {
		return n, err
	}
	if err = bw.Flush(); err != nil {
		return n, err
	}
	if err = f.Sync(); err != nil {
		return n, err
	}
	if err = f.Close(); err != nil {
		return n, err
	}
	if err = os.Rename(tmp, path); err != nil {
		return n, err
	}
	return n, nil
}

// RestoreStats reports a snapshot restore: how many records installed, how
// many were skipped as corrupt/invalid, and the last skip's cause.
type RestoreStats struct {
	Restored int
	Skipped  int
	// LastError explains the most recent skipped record (nil when nothing
	// was skipped); earlier causes are counted, not retained.
	LastError error
}

// ReadSnapshot restores profiles from a snapshot stream. The header must
// parse and match the known format/version — anything else means the file is
// not a snapshot at all and nothing is restored. After the header, each line
// is validated independently: a record that fails to parse or validate
// (including the torn final line of a truncated file) is skipped and counted
// while the rest restore, so startup never wedges on a bad tail.
func (s *Service) ReadSnapshot(r io.Reader) (RestoreStats, error) {
	var st RestoreStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return st, fmt.Errorf("service: snapshot header: %w", err)
		}
		return st, fmt.Errorf("service: snapshot is empty")
	}
	var hdr SnapshotHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return st, fmt.Errorf("service: snapshot header is not JSON: %w", err)
	}
	if hdr.Format != SnapshotFormat {
		return st, fmt.Errorf("service: snapshot format %q, want %q", hdr.Format, SnapshotFormat)
	}
	if hdr.Version != SnapshotVersion {
		return st, fmt.Errorf("service: snapshot version %d, reader understands %d", hdr.Version, SnapshotVersion)
	}
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec ProfileResponse
		if err := json.Unmarshal(raw, &rec); err != nil {
			st.Skipped++
			st.LastError = fmt.Errorf("line %d: %w", line, err)
			continue
		}
		if err := validateSnapshotRecord(rec); err != nil {
			st.Skipped++
			st.LastError = fmt.Errorf("line %d: %w", line, err)
			continue
		}
		s.store.restore(rec.Name, rec.Profile, rec.PMaxMean, rec.PhiMean)
		s.metrics.loads.Inc()
		st.Restored++
	}
	if err := sc.Err(); err != nil {
		// An over-long or unreadable tail: keep the restored prefix.
		st.Skipped++
		st.LastError = err
	}
	if st.Restored > 0 {
		s.enforceCap()
	}
	return st, nil
}

// validateSnapshotRecord checks everything the store will trust: a name, a
// structurally valid profile (sam.Profile.UnmarshalJSON has already enforced
// PMF consistency when the field was present), and adaptive means inside the
// feature domain [0,1] so restored state can never poison the detector.
func validateSnapshotRecord(rec ProfileResponse) error {
	if rec.Name == "" {
		return fmt.Errorf("record has no profile name")
	}
	if rec.Profile == nil || rec.Profile.PMF == nil {
		return fmt.Errorf("record %q carries no profile", rec.Name)
	}
	for _, m := range [...]struct {
		label string
		v     float64
	}{{"adaptive_pmax_mean", rec.PMaxMean}, {"adaptive_phi_mean", rec.PhiMean}} {
		if math.IsNaN(m.v) || m.v < 0 || m.v > 1 {
			return fmt.Errorf("record %q %s %v outside [0,1]", rec.Name, m.label, m.v)
		}
	}
	return nil
}

// RestoreSnapshot restores from the snapshot file at path. A missing file is
// an error (callers decide whether a fresh boot is fine); any other failure
// mode follows ReadSnapshot's skip-and-count semantics.
func (s *Service) RestoreSnapshot(path string) (RestoreStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return RestoreStats{}, err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}
