// Package service is the SAM detection service: the paper's local-detection
// module turned into a long-running HTTP/JSON scoring layer. It holds named
// normal-condition profiles in a sharded store, scores incoming route sets
// against them (one at a time or in batches over a bounded worker pool with
// queue-depth backpressure), keeps each profile adaptive via the paper's
// low-pass update, and exposes Prometheus-style metrics.
//
// Endpoints:
//
//	POST   /v1/analyze               SAM statistics of a route set (stateless)
//	POST   /v1/detect                score one route set against a profile
//	POST   /v1/detect/batch          score many route sets on the worker pool
//	POST   /v1/profiles/{name}/train feed normal route sets into the trainer
//	POST   /v1/train/batch           deterministic server-side training sweep
//	POST   /v1/verify                probe a suspect pair (step 2), optionally isolate (step 3)
//	GET    /v1/isolation             list condemned pairs
//	DELETE /v1/isolation/{a}/{b}     lift a condemned pair
//	GET    /v1/profiles              list stored profiles
//	GET    /v1/profiles/{name}       export a profile snapshot
//	DELETE /v1/profiles/{name}       evict a profile from the store
//	GET    /debug/decisions          recent decision records (explainability)
//	GET    /metrics                  Prometheus text metrics
//	GET    /healthz                  liveness probe
//
// Telemetry lives on an obs.Registry (private by default, injectable for
// embedding) and every scored route set can be captured as a structured
// obs.Decision in a lock-free ring; capture is toggled by one atomic and
// costs nothing when off.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"samnet/internal/obs"
	"samnet/internal/sam"
	"samnet/internal/verify"
)

// Config tunes the service. The zero value selects sensible defaults.
type Config struct {
	// Shards is the profile-store shard count (default 16).
	Shards int
	// Workers bounds batch-detection parallelism (default NumCPU).
	Workers int
	// QueueDepth caps tasks admitted to the worker pool, queued or running;
	// a batch that does not fit is answered 429 (default 4*Workers, min 64).
	QueueDepth int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems caps items per /v1/detect/batch request (default 256).
	MaxBatchItems int
	// Detector configures detectors built for trained profiles; zero fields
	// take the sam defaults.
	Detector sam.DetectorConfig
	// PMFBins is the trainer binning (0 selects sam.DefaultPMFBins).
	PMFBins int
	// Registry receives the service's instruments. Nil creates a private
	// registry; inject one to merge the service's series into a larger
	// exposition (each Service must then be the registry's only samserve_*
	// producer).
	Registry *obs.Registry
	// DecisionBuffer sizes the ring of retained decision records behind
	// GET /debug/decisions (default 256; negative disables capture, making
	// the detect path record-free).
	DecisionBuffer int
	// Verify configures the probe engine behind POST /v1/verify; zero fields
	// take the verify defaults (per-request knobs override).
	Verify verify.Config
	// ProfileTTL evicts profiles idle (no store lookup) for longer than this
	// duration; 0 disables idle eviction.
	ProfileTTL time.Duration
	// MaxProfiles caps store residency: when a training, load or restore
	// pushes the count above the cap, the least-recently-accessed profiles
	// are evicted until it fits. 0 means unlimited.
	MaxProfiles int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
		if c.QueueDepth < 64 {
			c.QueueDepth = 64
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.DecisionBuffer == 0 {
		c.DecisionBuffer = 256
	}
	return c
}

// Service is a SAM detection service instance. It is safe for concurrent
// use; create one with New and serve Handler.
type Service struct {
	cfg     Config
	store   *store
	pool    *pool
	metrics *metrics
	mux     *http.ServeMux
	// detCfg is the effective detector configuration (defaults resolved),
	// echoed into decision records as the thresholds verdicts were judged by.
	detCfg sam.DetectorConfig
	// decisions retains recent decision records; nil when capture is
	// disabled (DecisionBuffer < 0).
	decisions *obs.DecisionRing
	// iso is the service's isolation list: pairs condemned by /v1/verify
	// with isolate=true, readable via /v1/isolation.
	iso *verify.IsolationSet
	// trainBusy is the batch-training single-flight gate: one server-side
	// sweep at a time, later requests answer 429 instead of queueing sweeps.
	trainBusy atomic.Bool
	// sweepStop/sweepDone manage the eviction sweeper goroutine, started
	// only when a TTL or residency cap is configured.
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// New builds a service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		store:   newStore(cfg.Shards, cfg.Detector, cfg.PMFBins),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(cfg.Registry),
		detCfg:  cfg.Detector.WithDefaults(),
		iso:     verify.NewIsolationSet(),
	}
	if cfg.DecisionBuffer > 0 {
		s.decisions = obs.NewDecisionRing(cfg.DecisionBuffer)
	}
	start := time.Now()
	cfg.Registry.GaugeFunc("samserve_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(start).Seconds() })
	cfg.Registry.GaugeFunc("samserve_queue_depth",
		"Tasks admitted to the worker pool (queued or running).",
		func() float64 { return float64(s.pool.depth()) })
	cfg.Registry.GaugeFunc("samserve_profiles",
		"Profiles resident in the store.",
		func() float64 { return float64(s.store.count()) })
	cfg.Registry.GaugeFunc("samserve_decisions_recorded",
		"Decision records accepted by the ring since start.",
		func() float64 { return float64(s.decisions.Recorded()) })
	cfg.Registry.GaugeFunc("samserve_isolated_pairs",
		"Condemned pairs currently on the isolation list.",
		func() float64 { return float64(s.iso.Len()) })
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.wrap("analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/detect", s.wrap("detect", s.handleDetect))
	mux.HandleFunc("POST /v1/detect/batch", s.wrap("detect_batch", s.handleDetectBatch))
	mux.HandleFunc("POST /v1/profiles/{name}/train", s.wrap("train", s.handleTrain))
	mux.HandleFunc("POST /v1/train/batch", s.wrap("train_batch", s.handleTrainBatch))
	mux.HandleFunc("POST /v1/verify", s.wrap("verify", s.handleVerify))
	mux.HandleFunc("GET /v1/isolation", s.wrap("isolation", s.handleIsolation))
	mux.HandleFunc("DELETE /v1/isolation/{a}/{b}", s.wrap("isolation_lift", s.handleIsolationLift))
	mux.HandleFunc("GET /v1/profiles", s.wrap("profiles", s.handleListProfiles))
	mux.HandleFunc("GET /v1/profiles/{name}", s.wrap("profile_get", s.handleGetProfile))
	mux.HandleFunc("DELETE /v1/profiles/{name}", s.wrap("profile_delete", s.handleDeleteProfile))
	mux.HandleFunc("GET /debug/decisions", s.handleDecisions)
	mux.Handle("GET /metrics", cfg.Registry.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	if cfg.ProfileTTL > 0 || cfg.MaxProfiles > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s
}

// sweepInterval picks how often the eviction sweeper wakes: a quarter of the
// TTL (so an idle profile overstays by at most ~25%), clamped to [1s, 1m];
// with only a residency cap configured the sweep is a 10s backstop behind
// the synchronous enforceCap calls.
func (s *Service) sweepInterval() time.Duration {
	if s.cfg.ProfileTTL <= 0 {
		return 10 * time.Second
	}
	iv := s.cfg.ProfileTTL / 4
	if iv < time.Second {
		iv = time.Second
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

func (s *Service) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.sweepInterval())
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.sweepOnce(time.Now())
		}
	}
}

// sweepOnce runs one eviction pass: expire entries idle past the TTL, then
// enforce the residency cap. It returns the eviction counts for tests.
func (s *Service) sweepOnce(now time.Time) (ttl, lru int) {
	if d := s.cfg.ProfileTTL; d > 0 {
		cutoff := now.Add(-d).UnixNano()
		for _, a := range s.store.accesses() {
			if a.last > cutoff {
				break // accesses is oldest-first; the rest are younger
			}
			if s.store.removeIfIdle(a.name, a.e, cutoff) {
				s.metrics.evictTTL.Inc()
				ttl++
			}
		}
	}
	return ttl, s.enforceCap()
}

// enforceCap evicts least-recently-accessed profiles until residency fits
// under MaxProfiles. It runs synchronously after every operation that can
// grow the store (training, load, restore) and inside the periodic sweep.
func (s *Service) enforceCap() int {
	max := s.cfg.MaxProfiles
	if max <= 0 {
		return 0
	}
	evicted := 0
	over := s.store.count() - max
	if over <= 0 {
		return 0
	}
	for _, a := range s.store.accesses() {
		if over <= 0 {
			break
		}
		// cutoff now: only evict if the entry hasn't been touched since the
		// scan observed it (a concurrent user re-stamps lastAccess).
		if s.store.removeIfIdle(a.name, a.e, a.last) {
			s.metrics.evictLRU.Inc()
			evicted++
			over--
		}
	}
	return evicted
}

// Registry returns the registry holding the service's instruments, for
// mounting on additional listeners (samserve's debug endpoint).
func (s *Service) Registry() *obs.Registry { return s.cfg.Registry }

// Decisions returns the decision record ring (nil when capture is disabled).
func (s *Service) Decisions() *obs.DecisionRing { return s.decisions }

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler { return s.mux }

// Close stops the eviction sweeper and the worker pool. Call it only after
// the HTTP server has fully shut down (no handler in flight).
func (s *Service) Close() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
		s.sweepStop = nil
	}
	s.pool.close()
}

// LoadProfile installs an externally trained profile (e.g. samtrain output)
// under the given name, cloning it so the caller keeps its copy. The install
// is eviction-safe: a concurrent DELETE or sweep cannot silently drop it
// (store.load re-checks residency under the shard lock).
func (s *Service) LoadProfile(name string, p *sam.Profile) error {
	if name == "" {
		return errors.New("service: profile name must not be empty")
	}
	if p == nil || p.PMF == nil {
		return errors.New("service: nil or PMF-less profile")
	}
	s.store.load(name, p)
	s.metrics.loads.Inc()
	s.enforceCap()
	return nil
}

// RestoreProfile installs a snapshot record — profile plus the adaptive
// feature means captured when it was written — under the given name. It is
// LoadProfile for state that must resume, not restart, the low-pass filter.
func (s *Service) RestoreProfile(name string, p *sam.Profile, pmaxMean, phiMean float64) error {
	if name == "" {
		return errors.New("service: profile name must not be empty")
	}
	if p == nil || p.PMF == nil {
		return errors.New("service: nil or PMF-less profile")
	}
	if err := validateSnapshotRecord(ProfileResponse{
		Name: name, PMaxMean: pmaxMean, PhiMean: phiMean, Profile: p,
	}); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	s.store.restore(name, p, pmaxMean, phiMean)
	s.metrics.loads.Inc()
	s.enforceCap()
	return nil
}

// wrap applies body limiting and metrics instrumentation to a handler.
func (s *Service) wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.metrics.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeStatus maps a decoding error to its HTTP status.
func decodeStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	routes, err := decodeRoutes(req.Routes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := sam.Analyze(routes)
	topK := req.TopK
	if topK == 0 {
		topK = 5
	}
	resp := AnalyzeResponse{
		Routes:   st.Routes,
		N:        st.N,
		Distinct: len(st.ByLink),
		PMax:     st.PMax,
		Phi:      st.Phi,
		MaxLink:  linkJSON(st.MaxLink),
		Suspect:  linkJSON(st.Suspect),
	}
	if topK > 0 {
		for _, lc := range st.TopLinks(topK) {
			resp.Top = append(resp.Top, LinkCountJSON{Link: linkJSON(lc.Link), Count: lc.Count, P: lc.P})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// scoreOrError maps store/entry errors onto HTTP statuses shared by the
// detect endpoints: 404 unknown profile, 409 not yet trained.
func scoreStatus(err error) int {
	switch {
	case errors.Is(err, errUnknownProfile):
		return http.StatusNotFound
	case errors.Is(err, errUntrained):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	if req.Profile == "" {
		writeError(w, http.StatusBadRequest, "missing profile name")
		return
	}
	routes, err := decodeRoutes(req.Routes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.store.get(req.Profile)
	if err != nil {
		writeError(w, scoreStatus(err), "%v", err)
		return
	}
	update := req.Update == nil || *req.Update
	v, err := e.score(sam.Analyze(routes), update)
	if err != nil {
		writeError(w, scoreStatus(err), "profile %q: %v", req.Profile, err)
		return
	}
	s.metrics.observeVerdict(v)
	resp := DetectResponse{Profile: req.Profile, Verdict: verdictJSON(v)}
	if req.Explain || s.decisions.Enabled() {
		rec := sam.NewDecisionRecord(req.Profile, v, s.detCfg)
		s.decisions.Record(rec)
		if req.Explain {
			resp.Explain = &rec
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// observe feeds one scored verdict into the instruments and, when capture is
// on, the decision ring. The disabled-capture path is one atomic load and
// allocation-free (pinned by TestDetectTelemetryOffZeroAlloc).
func (s *Service) observe(profile string, v sam.Verdict) {
	s.metrics.observeVerdict(v)
	if s.decisions.Enabled() {
		s.decisions.Record(sam.NewDecisionRecord(profile, v, s.detCfg))
	}
}

func (s *Service) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchDetectRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	if req.Profile == "" {
		writeError(w, http.StatusBadRequest, "missing profile name")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusBadRequest, "batch has %d items, limit %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}
	sets, err := decodeRouteSets(req.Items)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.store.get(req.Profile)
	if err != nil {
		writeError(w, scoreStatus(err), "%v", err)
		return
	}
	update := req.Update == nil || *req.Update

	verdicts := make([]VerdictJSON, len(sets))
	errs := make([]error, len(sets))
	tasks := make([]func(), len(sets))
	for i := range sets {
		i, set := i, sets[i]
		tasks[i] = func() {
			// Analysis is pure and runs fully parallel; only the stateful
			// evaluate+update pair serializes on the profile's mutex.
			v, err := e.score(sam.Analyze(set), update)
			if err != nil {
				errs[i] = err
				return
			}
			s.observe(req.Profile, v)
			verdicts[i] = verdictJSON(v)
		}
	}
	if !s.pool.tryRun(tasks) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"worker pool saturated (%d items would exceed queue depth %d)", len(sets), s.cfg.QueueDepth)
		return
	}
	for _, err := range errs {
		if err != nil {
			writeError(w, scoreStatus(err), "profile %q: %v", req.Profile, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, BatchDetectResponse{Profile: req.Profile, Verdicts: verdicts})
}

func (s *Service) handleTrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing profile name")
		return
	}
	var req TrainRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, decodeStatus(err), "%v", err)
		return
	}
	if len(req.RouteSets) == 0 {
		writeError(w, http.StatusBadRequest, "route_sets must not be empty")
		return
	}
	sets, err := decodeRouteSets(req.RouteSets)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e := s.store.getOrCreate(name)
	runs, err := e.train(sets)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errProfileBuild) {
			// Observations were recorded but no usable profile came out of
			// them: the training data is unprocessable, not a server fault.
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, "profile %q: %v", name, err)
		return
	}
	s.metrics.trainings.Inc()
	s.enforceCap()
	writeJSON(w, http.StatusOK, TrainResponse{Profile: name, Runs: runs, Trained: runs > 0})
}

func (s *Service) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	names := s.store.names()
	infos := make([]ProfileInfo, 0, len(names))
	for _, name := range names {
		e, err := s.store.get(name)
		if err != nil {
			continue // deleted concurrently; nothing to report
		}
		_, _, _, runs, snapErr := e.snapshot()
		infos = append(infos, ProfileInfo{Name: name, Runs: runs, Trained: snapErr == nil})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, err := s.store.get(name)
	if err != nil {
		writeError(w, scoreStatus(err), "%v", err)
		return
	}
	p, pmaxMean, phiMean, runs, err := e.snapshot()
	if err != nil {
		writeError(w, scoreStatus(err), "profile %q: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, ProfileResponse{
		Name: name, Runs: runs, PMaxMean: pmaxMean, PhiMean: phiMean, Profile: p,
	})
}

func (s *Service) handleDeleteProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.remove(name) {
		writeError(w, http.StatusNotFound, "%v: %q", errUnknownProfile, name)
		return
	}
	s.metrics.evictDelete.Inc()
	writeJSON(w, http.StatusOK, DeleteProfileResponse{Profile: name, Deleted: true})
}

func (s *Service) handleDecisions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DecisionsResponse{
		Enabled:   s.decisions.Enabled(),
		Capacity:  s.decisions.Cap(),
		Recorded:  s.decisions.Recorded(),
		Decisions: s.decisions.Snapshot(),
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
