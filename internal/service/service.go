// Package service is the SAM detection service: the paper's local-detection
// module turned into a long-running HTTP/JSON scoring layer. It holds named
// normal-condition profiles in a sharded store, scores incoming route sets
// against them (one at a time or in batches over a bounded worker pool with
// queue-depth backpressure), keeps each profile adaptive via the paper's
// low-pass update, and exposes Prometheus-style metrics.
//
// Endpoints:
//
//	POST   /v1/analyze               SAM statistics of a route set (stateless)
//	POST   /v1/detect                score one route set against a profile
//	POST   /v1/detect/batch          score many route sets on the worker pool
//	POST   /v1/detect/stream         NDJSON pipeline: detect requests in, verdicts out
//	POST   /v1/profiles/{name}/train feed normal route sets into the trainer
//	POST   /v1/train/batch           deterministic server-side training sweep
//	POST   /v1/verify                probe a suspect pair (step 2), optionally isolate (step 3)
//	GET    /v1/isolation             list condemned pairs
//	DELETE /v1/isolation/{a}/{b}     lift a condemned pair
//	GET    /v1/profiles              list stored profiles
//	GET    /v1/profiles/{name}       export a profile snapshot
//	DELETE /v1/profiles/{name}       evict a profile from the store
//	GET    /debug/decisions          recent decision records (explainability)
//	GET    /metrics                  Prometheus text metrics
//	GET    /healthz                  liveness probe
//
// Telemetry lives on an obs.Registry (private by default, injectable for
// embedding) and every scored route set can be captured as a structured
// obs.Decision in a lock-free ring; capture is toggled by one atomic and
// costs nothing when off.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"samnet/internal/obs"
	"samnet/internal/sam"
	"samnet/internal/verify"
)

// Config tunes the service. The zero value selects sensible defaults.
type Config struct {
	// Shards is the profile-store shard count (default 16).
	Shards int
	// Workers bounds batch-detection parallelism (default NumCPU).
	Workers int
	// QueueDepth caps tasks admitted to the worker pool, queued or running;
	// a batch that does not fit is answered 429 (default 4*Workers, min 64).
	QueueDepth int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems caps items per /v1/detect/batch request (default 256).
	MaxBatchItems int
	// Detector configures detectors built for trained profiles; zero fields
	// take the sam defaults.
	Detector sam.DetectorConfig
	// PMFBins is the trainer binning (0 selects sam.DefaultPMFBins).
	PMFBins int
	// Registry receives the service's instruments. Nil creates a private
	// registry; inject one to merge the service's series into a larger
	// exposition (each Service must then be the registry's only samserve_*
	// producer).
	Registry *obs.Registry
	// DecisionBuffer sizes the ring of retained decision records behind
	// GET /debug/decisions (default 256; negative disables capture, making
	// the detect path record-free).
	DecisionBuffer int
	// Tracer captures per-request spans behind GET /debug/traces and
	// propagates trace context (W3C traceparent) in and out. Nil leaves
	// tracing off entirely: the request path takes one atomic-load branch
	// and allocates nothing extra, and response bodies are byte-identical
	// either way (spans are observe-only, like decision records).
	Tracer *obs.Tracer
	// Verify configures the probe engine behind POST /v1/verify; zero fields
	// take the verify defaults (per-request knobs override).
	Verify verify.Config
	// ProfileTTL evicts profiles idle (no store lookup) for longer than this
	// duration; 0 disables idle eviction.
	ProfileTTL time.Duration
	// MaxProfiles caps store residency: when a training, load or restore
	// pushes the count above the cap, the least-recently-accessed profiles
	// are evicted until it fits. 0 means unlimited.
	MaxProfiles int
	// Logger receives service warnings (response bodies that failed after
	// the status line was committed). Nil selects slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
		if c.QueueDepth < 64 {
			c.QueueDepth = 64
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.DecisionBuffer == 0 {
		c.DecisionBuffer = 256
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Service is a SAM detection service instance. It is safe for concurrent
// use; create one with New and serve Handler.
type Service struct {
	cfg     Config
	store   *store
	pool    *pool
	metrics *metrics
	mux     *http.ServeMux
	logger  *slog.Logger
	// detCfg is the effective detector configuration (defaults resolved),
	// echoed into decision records as the thresholds verdicts were judged by.
	detCfg sam.DetectorConfig
	// decisions retains recent decision records; nil when capture is
	// disabled (DecisionBuffer < 0).
	decisions *obs.DecisionRing
	// iso is the service's isolation list: pairs condemned by /v1/verify
	// with isolate=true, readable via /v1/isolation.
	iso *verify.IsolationSet
	// trainBusy is the batch-training single-flight gate: one server-side
	// sweep at a time, later requests answer 429 instead of queueing sweeps.
	trainBusy atomic.Bool
	// lastSnapshot is the wall clock (unix nanos) of the last successful
	// SaveSnapshot, 0 when none has completed; /healthz reports its age so a
	// gateway can spot replicas whose durability loop has stalled.
	lastSnapshot atomic.Int64
	// sweepStop/sweepDone manage the eviction sweeper goroutine, started
	// only when a TTL or residency cap is configured.
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// New builds a service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		store:   newStore(cfg.Shards, cfg.Detector, cfg.PMFBins),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(cfg.Registry, cfg.Tracer),
		logger:  cfg.Logger,
		detCfg:  cfg.Detector.WithDefaults(),
		iso:     verify.NewIsolationSet(),
	}
	if cfg.DecisionBuffer > 0 {
		s.decisions = obs.NewDecisionRing(cfg.DecisionBuffer)
	}
	start := time.Now()
	cfg.Registry.GaugeFunc("samserve_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(start).Seconds() })
	cfg.Registry.GaugeFunc("samserve_queue_depth",
		"Tasks admitted to the worker pool (queued or running).",
		func() float64 { return float64(s.pool.depth()) })
	cfg.Registry.GaugeFunc("samserve_profiles",
		"Profiles resident in the store.",
		func() float64 { return float64(s.store.count()) })
	cfg.Registry.GaugeFunc("samserve_decisions_recorded",
		"Decision records accepted by the ring since start.",
		func() float64 { return float64(s.decisions.Recorded()) })
	cfg.Registry.GaugeFunc("samserve_isolated_pairs",
		"Condemned pairs currently on the isolation list.",
		func() float64 { return float64(s.iso.Len()) })
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.hot("analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/detect", s.hot("detect", s.handleDetect))
	mux.HandleFunc("POST /v1/detect/batch", s.hot("detect_batch", s.handleDetectBatch))
	mux.HandleFunc("POST /v1/detect/stream", s.hot("detect_stream", s.handleDetectStream))
	mux.HandleFunc("POST /v1/profiles/{name}/train", s.wrap("train", s.handleTrain))
	mux.HandleFunc("POST /v1/train/batch", s.wrap("train_batch", s.handleTrainBatch))
	mux.HandleFunc("POST /v1/verify", s.wrap("verify", s.handleVerify))
	mux.HandleFunc("GET /v1/isolation", s.wrap("isolation", s.handleIsolation))
	mux.HandleFunc("DELETE /v1/isolation/{a}/{b}", s.wrap("isolation_lift", s.handleIsolationLift))
	mux.HandleFunc("GET /v1/profiles", s.wrap("profiles", s.handleListProfiles))
	mux.HandleFunc("GET /v1/profiles/{name}", s.wrap("profile_get", s.handleGetProfile))
	mux.HandleFunc("PUT /v1/profiles/{name}", s.wrap("profile_put", s.handlePutProfile))
	mux.HandleFunc("DELETE /v1/profiles/{name}", s.wrap("profile_delete", s.handleDeleteProfile))
	mux.HandleFunc("GET /debug/decisions", s.handleDecisions)
	mux.Handle("GET /debug/traces", cfg.Tracer.Handler())
	mux.Handle("GET /metrics", cfg.Registry.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	if cfg.ProfileTTL > 0 || cfg.MaxProfiles > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s
}

// sweepInterval picks how often the eviction sweeper wakes: a quarter of the
// TTL (so an idle profile overstays by at most ~25%), clamped to [1s, 1m];
// with only a residency cap configured the sweep is a 10s backstop behind
// the synchronous enforceCap calls.
func (s *Service) sweepInterval() time.Duration {
	if s.cfg.ProfileTTL <= 0 {
		return 10 * time.Second
	}
	iv := s.cfg.ProfileTTL / 4
	if iv < time.Second {
		iv = time.Second
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

func (s *Service) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.sweepInterval())
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.sweepOnce(time.Now())
		}
	}
}

// sweepOnce runs one eviction pass: expire entries idle past the TTL, then
// enforce the residency cap. It returns the eviction counts for tests.
func (s *Service) sweepOnce(now time.Time) (ttl, lru int) {
	if d := s.cfg.ProfileTTL; d > 0 {
		cutoff := now.Add(-d).UnixNano()
		for _, a := range s.store.accesses() {
			if a.last > cutoff {
				break // accesses is oldest-first; the rest are younger
			}
			if s.store.removeIfIdle(a.name, a.e, cutoff) {
				s.metrics.evictTTL.Inc()
				ttl++
			}
		}
	}
	return ttl, s.enforceCap()
}

// enforceCap evicts least-recently-accessed profiles until residency fits
// under MaxProfiles. It runs synchronously after every operation that can
// grow the store (training, load, restore) and inside the periodic sweep.
func (s *Service) enforceCap() int {
	max := s.cfg.MaxProfiles
	if max <= 0 {
		return 0
	}
	evicted := 0
	over := s.store.count() - max
	if over <= 0 {
		return 0
	}
	for _, a := range s.store.accesses() {
		if over <= 0 {
			break
		}
		// cutoff now: only evict if the entry hasn't been touched since the
		// scan observed it (a concurrent user re-stamps lastAccess).
		if s.store.removeIfIdle(a.name, a.e, a.last) {
			s.metrics.evictLRU.Inc()
			evicted++
			over--
		}
	}
	return evicted
}

// Registry returns the registry holding the service's instruments, for
// mounting on additional listeners (samserve's debug endpoint).
func (s *Service) Registry() *obs.Registry { return s.cfg.Registry }

// Decisions returns the decision record ring (nil when capture is disabled).
func (s *Service) Decisions() *obs.DecisionRing { return s.decisions }

// Tracer returns the request tracer (nil when tracing is off), for mounting
// /debug/traces on additional listeners (samserve's debug endpoint).
func (s *Service) Tracer() *obs.Tracer { return s.cfg.Tracer }

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler { return s.mux }

// Close stops the eviction sweeper and the worker pool. Call it only after
// the HTTP server has fully shut down (no handler in flight).
func (s *Service) Close() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
		s.sweepStop = nil
	}
	s.pool.close()
}

// LoadProfile installs an externally trained profile (e.g. samtrain output)
// under the given name, cloning it so the caller keeps its copy. The install
// is eviction-safe: a concurrent DELETE or sweep cannot silently drop it
// (store.load re-checks residency under the shard lock).
func (s *Service) LoadProfile(name string, p *sam.Profile) error {
	if name == "" {
		return errors.New("service: profile name must not be empty")
	}
	if p == nil || p.PMF == nil {
		return errors.New("service: nil or PMF-less profile")
	}
	s.store.load(name, p)
	s.metrics.loads.Inc()
	s.enforceCap()
	return nil
}

// RestoreProfile installs a snapshot record — profile plus the adaptive
// feature means captured when it was written — under the given name. It is
// LoadProfile for state that must resume, not restart, the low-pass filter.
func (s *Service) RestoreProfile(name string, p *sam.Profile, pmaxMean, phiMean float64) error {
	if name == "" {
		return errors.New("service: profile name must not be empty")
	}
	if p == nil || p.PMF == nil {
		return errors.New("service: nil or PMF-less profile")
	}
	if err := validateSnapshotRecord(ProfileResponse{
		Name: name, PMaxMean: pmaxMean, PhiMean: phiMean, Profile: p,
	}); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	s.store.restore(name, p, pmaxMean, phiMean)
	s.metrics.loads.Inc()
	s.enforceCap()
	return nil
}

// wrap applies body limiting and metrics instrumentation to a handler.
func (s *Service) wrap(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.metrics.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	})
}

// hot registers a hot-path handler: instrumentation only. These handlers
// read their body through pooled scratch (wireScratch.readBody enforces
// MaxBodyBytes itself), skipping MaxBytesReader's per-request allocation.
func (s *Service) hot(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.metrics.instrument(name, h)
}

// writeJSON ships v through encoding/json — the writer for everything off
// the detect hot path (and for explain responses, whose decision records are
// too rich to hand-encode). Encode errors after the status line are counted
// and logged instead of silently shipping a 200 with truncated JSON.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header()["Content-Type"] = ctJSON
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.responseFailed("encode", err)
	}
}

func (s *Service) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// errorf is writeError for handlers holding a scratch: the body is built in
// the pooled buffer with the append encoder.
func (s *Service) errorf(w http.ResponseWriter, sc *wireScratch, status int, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	sc.out = appendErrorResponse(sc.out[:0], msg)
	s.writeBuf(w, status, sc.out)
}

// decodeStatus maps a decoding error to its HTTP status.
func decodeStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	if err := sc.readBody(r, s.cfg.MaxBodyBytes); err != nil {
		s.errorf(w, sc, decodeStatus(err), "%v", err)
		return
	}
	if err := sc.parseRequest(kindAnalyze); err != nil {
		s.errorf(w, sc, decodeStatus(err), "%v", err)
		return
	}
	sc.materializeRoutes()
	st := sam.Analyze(sc.routes)
	topK := sc.topK
	if topK == 0 {
		topK = 5
	}
	resp := AnalyzeResponse{
		Routes:   st.Routes,
		N:        st.N,
		Distinct: len(st.ByLink),
		PMax:     st.PMax,
		Phi:      st.Phi,
		MaxLink:  linkJSON(st.MaxLink),
		Suspect:  linkJSON(st.Suspect),
	}
	if topK > 0 {
		for _, lc := range st.TopLinks(topK) {
			resp.Top = append(resp.Top, LinkCountJSON{Link: linkJSON(lc.Link), Count: lc.Count, P: lc.P})
		}
	}
	sc.out = appendAnalyzeResponse(sc.out[:0], resp)
	s.writeBuf(w, http.StatusOK, sc.out)
}

// scoreOrError maps store/entry errors onto HTTP statuses shared by the
// detect endpoints: 404 unknown profile, 409 not yet trained.
func scoreStatus(err error) int {
	switch {
	case errors.Is(err, errUnknownProfile):
		return http.StatusNotFound
	case errors.Is(err, errUntrained):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleDetect(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	if err := sc.readBody(r, s.cfg.MaxBodyBytes); err != nil {
		s.errorf(w, sc, decodeStatus(err), "%v", err)
		return
	}
	if err := sc.parseRequest(kindDetect); err != nil {
		s.errorf(w, sc, decodeStatus(err), "%v", err)
		return
	}
	sc.trace = requestTraceHex(r)
	status, rec, v := s.detectScratch(sc)
	if rec != nil {
		s.writeJSON(w, http.StatusOK, DetectResponse{
			Profile: string(sc.profile), Verdict: verdictJSON(v), Explain: rec,
		})
		return
	}
	s.writeBuf(w, status, sc.out)
}

// detectScratch runs one parsed detect request to completion: profile
// lookup, scoring, observation, and response encoding into sc.out. It is
// shared by /v1/detect and each /v1/detect/stream line. The returned status
// goes with the sc.out body — except when rec is non-nil (explain requested),
// where the caller must build the cold-path DetectResponse with the record
// through encoding/json instead.
func (s *Service) detectScratch(sc *wireScratch) (status int, rec *obs.Decision, v sam.Verdict) {
	if len(sc.profile) == 0 {
		sc.out = appendErrorResponse(sc.out[:0], "missing profile name")
		return http.StatusBadRequest, nil, v
	}
	sc.materializeRoutes()
	e, err := s.store.getBytes(sc.profile)
	if err != nil {
		sc.out = appendErrorResponse(sc.out[:0], err.Error())
		return scoreStatus(err), nil, v
	}
	// e.name is the store's interned copy of the profile name: verdicts are
	// observed under it so no per-request string materializes.
	v, err = e.score(sam.Analyze(sc.routes), sc.requestUpdate())
	if err != nil {
		sc.out = appendErrorResponse(sc.out[:0], fmt.Sprintf("profile %q: %v", e.name, err))
		return scoreStatus(err), nil, v
	}
	if rec = s.observe(e.name, v, sc.explain, sc.trace); rec != nil {
		return http.StatusOK, rec, v
	}
	sc.out = appendDetectResponse(sc.out[:0], sc.profile, verdictJSON(v))
	return http.StatusOK, nil, v
}

// observe feeds one scored verdict into the instruments and, when capture is
// on, the decision ring; with explain set it also returns the record for the
// response body. Every detect path (single, batch, stream) goes through
// here, so capture/explain semantics cannot drift between them. The
// disabled-capture path is one atomic load and allocation-free (pinned by
// TestDetectTelemetryOffZeroAlloc). trace is the request's trace id ("" when
// tracing is off); it is stamped on the ring record only — the explain copy
// returned for the response body is scrubbed, keeping response bytes
// identical with tracing on or off.
func (s *Service) observe(profile string, v sam.Verdict, explain bool, trace string) *obs.Decision {
	s.metrics.observeVerdict(v)
	if !explain && !s.decisions.Enabled() {
		return nil
	}
	rec := sam.NewDecisionRecord(profile, v, s.detCfg)
	rec.TraceID = trace
	s.decisions.Record(rec)
	if explain {
		rec.TraceID = ""
		return &rec
	}
	return nil
}

// requestTraceHex returns the request's 32-digit hex trace id, or "" when no
// span was started (tracing off). The miss path is one context walk: no
// allocation, safe on the detect hot path.
func requestTraceHex(r *http.Request) string {
	if sc, ok := obs.SpanFromContext(r.Context()); ok {
		return sc.TraceHex()
	}
	return ""
}

func (s *Service) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	if err := sc.readBody(r, s.cfg.MaxBodyBytes); err != nil {
		s.errorf(w, sc, decodeStatus(err), "%v", err)
		return
	}
	if err := sc.parseRequest(kindBatch); err != nil {
		s.errorf(w, sc, decodeStatus(err), "%v", err)
		return
	}
	sc.trace = requestTraceHex(r)
	if len(sc.profile) == 0 {
		s.errorf(w, sc, http.StatusBadRequest, "missing profile name")
		return
	}
	if len(sc.setEnds) > s.cfg.MaxBatchItems {
		s.errorf(w, sc, http.StatusBadRequest, "batch has %d items, limit %d", len(sc.setEnds), s.cfg.MaxBatchItems)
		return
	}
	sc.materializeRoutes()
	e, err := s.store.getBytes(sc.profile)
	if err != nil {
		s.errorf(w, sc, scoreStatus(err), "%v", err)
		return
	}
	update := sc.requestUpdate()

	n := len(sc.sets)
	sc.verdicts = growSlice(sc.verdicts, n)
	sc.itemErrs = growSlice(sc.itemErrs, n)
	sc.tasks = sc.tasks[:0]
	for i := range sc.sets {
		i, set := i, sc.sets[i]
		sc.tasks = append(sc.tasks, func() {
			// Analysis is pure and runs fully parallel; only the stateful
			// evaluate+update pair serializes on the profile's mutex.
			// Observation waits for the barrier: metrics and decision records
			// must reflect only verdicts the response actually carries.
			v, err := e.score(sam.Analyze(set), update)
			if err != nil {
				sc.itemErrs[i] = err
				return
			}
			sc.verdicts[i] = v
		})
	}
	if !s.pool.tryRun(sc.tasks) {
		w.Header().Set("Retry-After", "1")
		s.errorf(w, sc, http.StatusTooManyRequests,
			"worker pool saturated (%d items would exceed queue depth %d)", n, s.cfg.QueueDepth)
		return
	}
	status := s.finishBatch(sc, e.name)
	s.writeBuf(w, status, sc.out)
}

// finishBatch turns a scored batch into the wire response after the pool
// barrier. Items that scored are observed (metrics + decision ring) and
// carry their verdict; items that failed carry a parallel error entry and a
// zero verdict slot — completed work is returned, never discarded because a
// sibling item failed (those verdicts already updated the adaptive profile,
// so hiding them would leave the client blind to a half-applied batch).
// Returns 200 when every item scored, 207 (Multi-Status) otherwise.
func (s *Service) finishBatch(sc *wireScratch, profile string) int {
	n := len(sc.verdicts)
	sc.wire = growSlice(sc.wire, n)
	sc.errStrs = growSlice(sc.errStrs, n)
	status := http.StatusOK
	for i, err := range sc.itemErrs {
		if err != nil {
			status = http.StatusMultiStatus
			sc.errStrs[i] = fmt.Sprintf("profile %q: %v", profile, err)
			continue
		}
		s.observe(profile, sc.verdicts[i], false, sc.trace)
		sc.wire[i] = verdictJSON(sc.verdicts[i])
	}
	sc.out = appendBatchDetectResponse(sc.out[:0], sc.profile, sc.wire, sc.errStrs)
	return status
}

func (s *Service) handleTrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		s.writeError(w, http.StatusBadRequest, "missing profile name")
		return
	}
	var req TrainRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, decodeStatus(err), "%v", err)
		return
	}
	if len(req.RouteSets) == 0 {
		s.writeError(w, http.StatusBadRequest, "route_sets must not be empty")
		return
	}
	sets, err := decodeRouteSets(req.RouteSets)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e := s.store.getOrCreate(name)
	runs, err := e.train(sets)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errProfileBuild) {
			// Observations were recorded but no usable profile came out of
			// them: the training data is unprocessable, not a server fault.
			status = http.StatusUnprocessableEntity
		}
		s.writeError(w, status, "profile %q: %v", name, err)
		return
	}
	s.metrics.trainings.Inc()
	s.enforceCap()
	s.writeJSON(w, http.StatusOK, TrainResponse{Profile: name, Runs: runs, Trained: runs > 0})
}

func (s *Service) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	names := s.store.names()
	infos := make([]ProfileInfo, 0, len(names))
	for _, name := range names {
		e, err := s.store.get(name)
		if err != nil {
			continue // deleted concurrently; nothing to report
		}
		_, _, _, runs, snapErr := e.snapshot()
		infos = append(infos, ProfileInfo{Name: name, Runs: runs, Trained: snapErr == nil})
	}
	s.writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, err := s.store.get(name)
	if err != nil {
		s.writeError(w, scoreStatus(err), "%v", err)
		return
	}
	p, pmaxMean, phiMean, runs, err := e.snapshot()
	if err != nil {
		s.writeError(w, scoreStatus(err), "profile %q: %v", name, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ProfileResponse{
		Name: name, Runs: runs, PMaxMean: pmaxMean, PhiMean: phiMean, Profile: p,
	})
}

// handlePutProfile installs a snapshot record under the path's name: the body
// is a ProfileResponse — exactly what GET /v1/profiles/{name} exports — so a
// profile travels between replicas without re-training, adaptive means
// included. A record naming a different profile than the path is refused
// rather than silently renamed.
func (s *Service) handlePutProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var rec ProfileResponse
	if err := decodeJSON(r, &rec); err != nil {
		s.writeError(w, decodeStatus(err), "%v", err)
		return
	}
	if rec.Name != "" && rec.Name != name {
		s.writeError(w, http.StatusBadRequest,
			"record names profile %q but the path names %q", rec.Name, name)
		return
	}
	if err := s.RestoreProfile(name, rec.Profile, rec.PMaxMean, rec.PhiMean); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, PutProfileResponse{Profile: name, Runs: rec.Runs, Restored: true})
}

func (s *Service) handleDeleteProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.remove(name) {
		s.writeError(w, http.StatusNotFound, "%v: %q", errUnknownProfile, name)
		return
	}
	s.metrics.evictDelete.Inc()
	s.writeJSON(w, http.StatusOK, DeleteProfileResponse{Profile: name, Deleted: true})
}

func (s *Service) handleDecisions(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, DecisionsResponse{
		Enabled:   s.decisions.Enabled(),
		Capacity:  s.decisions.Cap(),
		Recorded:  s.decisions.Recorded(),
		Decisions: s.decisions.Snapshot(),
	})
}

// Healthz reports the readiness signals /healthz serves: resident profile
// count, worker-pool queue depth, and the age of the last durable snapshot
// (-1 when none has been written).
func (s *Service) Healthz() HealthzResponse {
	age := -1.0
	if at := s.lastSnapshot.Load(); at > 0 {
		age = time.Since(time.Unix(0, at)).Seconds()
	}
	return HealthzResponse{
		Status:       "ok",
		Profiles:     s.store.count(),
		QueueDepth:   int(s.pool.depth()),
		SnapshotAgeS: age,
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Healthz())
}
