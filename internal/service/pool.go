package service

import (
	"sync"
	"sync/atomic"
)

// pool is a bounded worker pool with queue-depth backpressure: a fixed set
// of workers drains a task channel whose occupancy (queued + running) is
// capped. Batch detection admits a request only when the whole batch fits,
// so admission is all-or-nothing and an overloaded server answers 429
// immediately instead of queueing unboundedly.
type pool struct {
	tasks   chan func()
	cap     int64
	pending atomic.Int64
	wg      sync.WaitGroup
}

// newPool starts workers goroutines over a queue admitting at most queueCap
// tasks (queued or running) at once.
func newPool(workers, queueCap int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < workers {
		queueCap = workers
	}
	p := &pool{tasks: make(chan func(), queueCap), cap: int64(queueCap)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
				p.pending.Add(-1)
			}
		}()
	}
	return p
}

// tryRun admits all of fns or none. On admission it runs them on the pool,
// waits for completion, and returns true; when the batch does not fit under
// the queue cap it returns false without running anything.
//
// Admission reserves len(fns) slots up front, so the channel sends below can
// never block: tasks still in the channel never exceed the reserved total,
// which is kept at or below the channel capacity.
func (p *pool) tryRun(fns []func()) bool {
	n := int64(len(fns))
	if n == 0 {
		return true
	}
	if p.pending.Add(n) > p.cap {
		p.pending.Add(-n)
		return false
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.tasks <- func() {
			defer wg.Done()
			fn()
		}
	}
	wg.Wait()
	return true
}

// depth returns the current number of admitted (queued or running) tasks.
func (p *pool) depth() int64 { return p.pending.Load() }

// close stops the workers after the queue drains. The caller must guarantee
// no tryRun is in flight (the HTTP server's graceful Shutdown provides
// exactly that).
func (p *pool) close() {
	close(p.tasks)
	p.wg.Wait()
}
