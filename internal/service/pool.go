package service

import (
	"sync"
	"sync/atomic"
)

// pool is a bounded worker pool with queue-depth backpressure: a fixed set
// of workers drains a task channel whose occupancy (queued + running) is
// capped. Batch detection admits a request only when the whole batch fits,
// so admission is all-or-nothing and an overloaded server answers 429
// immediately instead of queueing unboundedly.
type pool struct {
	tasks   chan func()
	cap     int64
	pending atomic.Int64
	wg      sync.WaitGroup

	// closeMu serializes admission against close: tryRun holds the read
	// side across its channel sends, close takes the write side before
	// closing the channel, so a send can never race the close. closed is
	// checked under the same lock — after close, tryRun fail-fasts (the
	// caller answers 429/503) instead of panicking on a closed channel.
	closeMu sync.RWMutex
	closed  bool
}

// newPool starts workers goroutines over a queue admitting at most queueCap
// tasks (queued or running) at once.
func newPool(workers, queueCap int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < workers {
		queueCap = workers
	}
	p := &pool{tasks: make(chan func(), queueCap), cap: int64(queueCap)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
				p.pending.Add(-1)
			}
		}()
	}
	return p
}

// tryRun admits all of fns or none. On admission it runs them on the pool,
// waits for completion, and returns true; when the batch does not fit under
// the queue cap, or the pool has been closed, it returns false without
// running anything.
//
// Admission reserves len(fns) slots up front, so the channel sends below can
// never block: tasks still in the channel never exceed the reserved total,
// which is kept at or below the channel capacity.
func (p *pool) tryRun(fns []func()) bool {
	n := int64(len(fns))
	if n == 0 {
		return true
	}
	if p.pending.Add(n) > p.cap {
		p.pending.Add(-n)
		return false
	}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		p.pending.Add(-n)
		return false
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.tasks <- func() {
			defer wg.Done()
			fn()
		}
	}
	p.closeMu.RUnlock()
	wg.Wait()
	return true
}

// depth returns the current number of admitted (queued or running) tasks.
func (p *pool) depth() int64 { return p.pending.Load() }

// close stops the workers after the queue drains. It is idempotent and safe
// to race with tryRun: batches admitted before the close still complete,
// batches arriving after it are refused. The HTTP server's graceful
// Shutdown usually guarantees no tryRun is in flight, but close no longer
// depends on that.
func (p *pool) close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.closeMu.Unlock()
	p.wg.Wait()
}
