package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// verifyPost posts one /v1/verify body and decodes the response.
func verifyPost(t *testing.T, mux http.Handler, body string) (int, VerifyResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/verify", strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var resp VerifyResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v (%s)", err, rec.Body)
		}
	}
	return rec.Code, resp
}

// TestVerifyCondemnsBlackhole drives the whole loop over the API: a
// blackhole scenario's probes all time out, the pair is condemned and (with
// isolate set) lands on the isolation list.
func TestVerifyCondemnsBlackhole(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	mux := svc.Handler()

	code, resp := verifyPost(t, mux, `{"scenario":{"topo":"cluster"},"isolate":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Label != "cluster-1tier/MR" {
		t.Errorf("label = %q", resp.Label)
	}
	if !resp.Condemned || resp.Likelihood != 1 || !resp.Isolated || resp.IsolationSize != 1 {
		t.Fatalf("response = %+v, want condemned and isolated", resp)
	}
	if resp.Probes == 0 || len(resp.Evidence) == 0 {
		t.Fatalf("response = %+v, want probes and evidence", resp)
	}
	for _, e := range resp.Evidence {
		if e.Kind != "ack-missing" {
			t.Errorf("evidence kind %q, want ack-missing", e.Kind)
		}
	}

	// The isolation list reports the condemned pair.
	req := httptest.NewRequest("GET", "/v1/isolation", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var iso IsolationResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &iso); err != nil || len(iso.Pairs) != 1 {
		t.Fatalf("isolation = %s (err %v), want one pair", rec.Body, err)
	}
	if iso.Pairs[0].Pair != resp.Suspect {
		t.Errorf("isolated %+v, condemned %+v", iso.Pairs[0].Pair, resp.Suspect)
	}

	// Re-verifying the same pair is refused as already isolated.
	code, again := verifyPost(t, mux, `{"scenario":{"topo":"cluster"},"isolate":true}`)
	if code != http.StatusOK || !again.Isolated || again.Probes != 0 {
		t.Fatalf("re-verify = %d %+v, want probe-free refusal", code, again)
	}
	if len(again.Evidence) != 1 || again.Evidence[0].Kind != "pair-isolated" {
		t.Fatalf("re-verify evidence = %+v, want pair-isolated", again.Evidence)
	}

	// Lifting restores the pair; a second lift 404s.
	target := fmt.Sprintf("/v1/isolation/%d/%d", iso.Pairs[0].Pair.A, iso.Pairs[0].Pair.B)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("DELETE", target, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("lift: status %d %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("DELETE", target, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second lift: status %d, want 404", rec.Code)
	}
}

// TestVerifyClearsForwardingAttackers: a forwarding wormhole relays the
// probes faithfully, so the accused pair is cleared, not condemned.
func TestVerifyClearsForwardingAttackers(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	code, resp := verifyPost(t, svc.Handler(),
		`{"scenario":{"topo":"cluster"},"behavior":"forward","isolate":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Condemned || resp.Isolated || resp.Likelihood != 0 {
		t.Fatalf("response = %+v, want cleared", resp)
	}
	for _, e := range resp.Evidence {
		if e.Kind != "ack-valid" {
			t.Errorf("evidence kind %q, want ack-valid", e.Kind)
		}
	}
}

// TestVerifyCondemnsForger: forge behaviour forwards payload but fabricates
// probe answers; the MAC check condemns via proof-invalid evidence.
func TestVerifyCondemnsForger(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	code, resp := verifyPost(t, svc.Handler(), `{"scenario":{"topo":"cluster"},"behavior":"forge"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Condemned {
		t.Fatalf("response = %+v, want condemned", resp)
	}
	invalid := 0
	for _, e := range resp.Evidence {
		if e.Kind == "proof-invalid" {
			invalid++
		}
	}
	if invalid == 0 {
		t.Fatalf("evidence = %+v, want proof-invalid records", resp.Evidence)
	}
	if resp.Isolated || resp.IsolationSize != 0 {
		t.Fatalf("response = %+v: isolate not requested but pair isolated", resp)
	}
}

// TestVerifyDeterministic: identical requests reproduce the verdict bit for
// bit, including evidence timestamps.
func TestVerifyDeterministic(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	body := `{"scenario":{"topo":"uniform6x6","protocol":"dsr"},"behavior":"greyhole","seed":7}`
	_, a := verifyPost(t, svc.Handler(), body)
	_, b := verifyPost(t, svc.Handler(), body)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("verdicts differ:\n%s\n%s", ja, jb)
	}
}

// TestVerifyExplicitZeroKnobs: max_probes -1 is a true zero (no probes), per
// the ExplicitZero convention the request fields inherit from verify.Config.
func TestVerifyExplicitZeroKnobs(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	code, resp := verifyPost(t, svc.Handler(), `{"scenario":{"topo":"cluster"},"max_probes":-1}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Probes != 0 || resp.Condemned || resp.Likelihood != 0.5 {
		t.Fatalf("response = %+v, want unproven 0.5 prior", resp)
	}
}

// TestVerifyRejections pins the refusal statuses: bad scenario/behaviour/
// knobs are 400, semantically impossible routes and suspects are 422.
func TestVerifyRejections(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	mux := svc.Handler()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown topo", `{"scenario":{"topo":"nonesuch"}}`, http.StatusBadRequest},
		{"unknown behavior", `{"scenario":{"topo":"cluster"},"behavior":"teleport"}`, http.StatusBadRequest},
		{"retries cap", `{"scenario":{"topo":"cluster"},"retries":99}`, http.StatusBadRequest},
		{"timeout cap", `{"scenario":{"topo":"cluster"},"timeout":1e9}`, http.StatusBadRequest},
		{"wormhole count", `{"scenario":{"topo":"cluster"},"wormholes":99}`, http.StatusBadRequest},
		{"trailing garbage", `{"scenario":{"topo":"cluster"}}{}`, http.StatusBadRequest},
		{"route off topology", `{"scenario":{"topo":"cluster"},"routes":[[0,999999]]}`, http.StatusUnprocessableEntity},
		{"route not connected", `{"scenario":{"topo":"cluster"},"routes":[[0,1,0,5]],"suspect":{"a":0,"b":1}}`, http.StatusUnprocessableEntity},
		{"suspect off topology", `{"scenario":{"topo":"cluster"},"suspect":{"a":0,"b":999999}}`, http.StatusUnprocessableEntity},
		{"suspect self link", `{"scenario":{"topo":"cluster"},"suspect":{"a":3,"b":3}}`, http.StatusUnprocessableEntity},
		{"no routes to localize", `{"scenario":{"topo":"cluster"},"routes":[[]]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := verifyPost(t, mux, tc.body)
			if code != tc.want {
				t.Fatalf("status %d, want %d", code, tc.want)
			}
		})
	}
}

// TestVerifyMetricsAndDecisions: a verification shows up in the metrics
// exposition and the decision ring with kind "verify".
func TestVerifyMetricsAndDecisions(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	mux := svc.Handler()
	if code, _ := verifyPost(t, mux, `{"scenario":{"topo":"cluster"},"isolate":true}`); code != http.StatusOK {
		t.Fatalf("verify failed: %d", code)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, line := range []string{
		`samserve_verifications_total{outcome="condemned"} 1`,
		`samserve_verify_evidence_total{kind="ack-missing"}`,
		`samserve_isolated_pairs 1`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics exposition missing %q", line)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions", nil))
	var dr DecisionsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
		t.Fatalf("decisions decode: %v", err)
	}
	found := false
	for _, d := range dr.Decisions {
		if d.Kind == "verify" {
			found = true
			if d.Likelihood != 1 || d.Decision != "condemned" || len(d.Evidence) == 0 {
				t.Errorf("verify decision record = %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("no verify decision record captured")
	}
}

// TestVerifyAttackVariants exercises the named adversary vocabulary on
// /v1/verify — the same scenario set the rocmatrix experiment sweeps — and
// the request validation around it.
func TestVerifyAttackVariants(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	h := svc.Handler()

	for _, name := range []string{"classic", "latent", "chain", "adaptive"} {
		code, resp := verifyPost(t, h, `{"scenario":{"topo":"cluster"},"attack":"`+name+`"}`)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", name, code)
		}
		if resp.Label == "" {
			t.Errorf("%s: empty label", name)
		}
	}
	if code, _ := verifyPost(t, h, `{"scenario":{"topo":"cluster","protocol":"dsr"},"attack":"forge"}`); code != http.StatusOK {
		t.Errorf("forge on dsr: status %d, want 200", code)
	}
	if code, _ := verifyPost(t, h, `{"scenario":{"topo":"cluster","protocol":"aomdv"},"attack":"forge"}`); code != http.StatusBadRequest {
		t.Errorf("forge on aomdv: status %d, want 400 (no forge hook)", code)
	}
	if code, _ := verifyPost(t, h, `{"scenario":{"topo":"cluster"},"attack":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown attack variant: status %d, want 400", code)
	}
	if code, _ := verifyPost(t, h, `{"scenario":{"topo":"cluster"},"attack":"latent","wormholes":2}`); code != http.StatusBadRequest {
		t.Errorf("wormholes on non-classic variant: status %d, want 400", code)
	}
}
