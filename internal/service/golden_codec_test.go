package service

// Golden wire-format tests: the append encoders replaced json.NewEncoder on
// the serving hot paths, and the replacement is only safe if the bytes can
// never drift. Every response type the fast path can emit is rendered both
// ways here — including the float formats, HTML escaping, and trailing
// newline encoding/json is opinionated about — and compared byte for byte.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// encGolden renders v exactly as the old writeJSON did.
func encGolden(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("golden encode: %v", err)
	}
	return buf.Bytes()
}

// goldenFloats are the values most likely to expose a formatting divergence:
// format-switch boundaries (1e-6, 1e21), negative zero, subnormals, full
// precision, and exponents whose leading zero encoding/json trims.
var goldenFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, 0.1, 1.0 / 3.0, 2.0 / 3.0,
	1e-6, 9.999999e-7, 1e-7, 5e-324, 1e20, 1e21, 1.000001e21, -1e21,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	0.9999999999999999, 123456.789, -2.5e-7, 3.14159e100, -7e-12,
}

// goldenStrings cover the fast path (plain ASCII) and every slow-path
// class: escapes, HTML characters, non-ASCII, and invalid UTF-8.
var goldenStrings = []string{
	"", "bench", "profile-1", "with space",
	`quote"and\slash`, "tab\tnewline\ncr\r", "ctrl\x01\x1f",
	"<script>&amp;", "a<b>c&d", "héllo wörld", "日本語", "\xff\xfe", "a\xffb",
}

func goldenVerdict(i int) VerdictJSON {
	f := func(j int) float64 { return goldenFloats[(i+j)%len(goldenFloats)] }
	return VerdictJSON{
		Decision: []string{"normal", "suspicious", "attacked"}[i%3],
		Lambda:   f(0), ZPMax: f(1), ZPhi: f(2), TV: f(3), PMax: f(4), Phi: f(5),
		Routes: i * 7, N: i * 31, SuspectLink: LinkJSON{A: i, B: -i},
		Suspects: [2]int{i, i * 13},
	}
}

func TestAppendEncodersGolden(t *testing.T) {
	t.Run("detect", func(t *testing.T) {
		for i, profile := range goldenStrings {
			v := goldenVerdict(i)
			want := encGolden(t, DetectResponse{Profile: profile, Verdict: v})
			got := appendDetectResponse(nil, []byte(profile), v)
			if !bytes.Equal(got, want) {
				t.Errorf("detect profile=%q:\n got %s\nwant %s", profile, got, want)
			}
		}
	})

	t.Run("verdict-floats", func(t *testing.T) {
		// Sweep every golden float through every verdict field position.
		for i := range goldenFloats {
			v := goldenVerdict(i)
			want := encGolden(t, DetectResponse{Profile: "p", Verdict: v})
			got := appendDetectResponse(nil, []byte("p"), v)
			if !bytes.Equal(got, want) {
				t.Errorf("verdict %d:\n got %s\nwant %s", i, got, want)
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		for _, n := range []int{0, 1, 3} {
			verdicts := make([]VerdictJSON, n)
			for i := range verdicts {
				verdicts[i] = goldenVerdict(i)
			}
			// All-ok: errors omitted entirely, byte-identical to the old
			// BatchDetectResponse without the Errors field.
			want := encGolden(t, BatchDetectResponse{Profile: "batch", Verdicts: verdicts})
			got := appendBatchDetectResponse(nil, []byte("batch"), verdicts, make([]string, n))
			if !bytes.Equal(got, want) {
				t.Errorf("batch n=%d all-ok:\n got %s\nwant %s", n, got, want)
			}
			if n == 0 {
				continue
			}
			// Partial failure: parallel errors array present.
			errs := make([]string, n)
			errs[n-1] = `profile "batch": profile has no training runs yet`
			want = encGolden(t, BatchDetectResponse{Profile: "batch", Verdicts: verdicts, Errors: errs})
			got = appendBatchDetectResponse(nil, []byte("batch"), verdicts, errs)
			if !bytes.Equal(got, want) {
				t.Errorf("batch n=%d partial:\n got %s\nwant %s", n, got, want)
			}
		}
	})

	t.Run("analyze", func(t *testing.T) {
		base := AnalyzeResponse{
			Routes: 12, N: 48, Distinct: 31, PMax: 0.25, Phi: 1.0 / 3.0,
			MaxLink: LinkJSON{A: 4, B: 17}, Suspect: LinkJSON{A: 17, B: 4},
		}
		for _, top := range [][]LinkCountJSON{
			nil,
			{{Link: LinkJSON{A: 1, B: 2}, Count: 9, P: 0.75}},
			{{Link: LinkJSON{A: 1, B: 2}, Count: 9, P: 1e-7}, {Link: LinkJSON{A: 0, B: 0}, Count: 0, P: 0}},
		} {
			r := base
			r.Top = top
			want := encGolden(t, r)
			got := appendAnalyzeResponse(nil, r)
			if !bytes.Equal(got, want) {
				t.Errorf("analyze top=%d:\n got %s\nwant %s", len(top), got, want)
			}
		}
	})

	t.Run("error", func(t *testing.T) {
		for _, msg := range goldenStrings {
			want := encGolden(t, ErrorResponse{Error: msg})
			got := appendErrorResponse(nil, msg)
			if !bytes.Equal(got, want) {
				t.Errorf("error %q:\n got %s\nwant %s", msg, got, want)
			}
		}
	})

	t.Run("floats-raw", func(t *testing.T) {
		for _, f := range goldenFloats {
			want, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
				t.Errorf("float %v: got %s want %s", f, got, want)
			}
		}
	})
}
