package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// fuzzService is shared by the fuzz targets: one instance with a trained
// profile, so the detect path past decoding is reachable too.
func fuzzService(f *testing.F) http.Handler {
	svc := New(Config{Workers: 2, QueueDepth: 64})
	f.Cleanup(svc.Close)
	mux := svc.Handler()
	// Train over the API so "p" is a live profile for detect fuzzing.
	body := `{"route_sets":[[[0,1,2],[0,3,2],[0,4,2]],[[0,1,2],[0,3,2]],[[0,1,5,2],[0,3,2]]]}`
	req := httptest.NewRequest("POST", "/v1/profiles/p/train", strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		f.Fatalf("seed training failed: %d %s", rec.Code, rec.Body)
	}
	return mux
}

// allowedStatus is the contract every fuzzed request must satisfy: a
// well-defined client or server refusal, never a panic or a hung handler.
func allowedStatus(code int) bool {
	switch code {
	case http.StatusOK, http.StatusMultiStatus, http.StatusBadRequest,
		http.StatusNotFound,
		http.StatusConflict, http.StatusRequestEntityTooLarge,
		http.StatusUnprocessableEntity,
		http.StatusTooManyRequests, http.StatusMethodNotAllowed,
		// ServeMux path cleaning answers dirty paths ("//", "..") with a
		// redirect before any handler runs.
		http.StatusMovedPermanently, http.StatusPermanentRedirect:
		return true
	}
	return false
}

// FuzzDetectDecoding throws arbitrary bytes at the detect and batch-detect
// request decoders: malformed bodies must map to clean 4xx answers, and
// bodies that do decode must score without panicking.
func FuzzDetectDecoding(f *testing.F) {
	mux := fuzzService(f)
	f.Add(`{"profile":"p","routes":[[0,1,2],[0,3,2]]}`)
	f.Add(`{"profile":"p","routes":[]}`)
	f.Add(`{"profile":"missing","routes":[[1,2]]}`)
	f.Add(`{"profile":"p","routes":[[0,1,2]],"update":false}`)
	f.Add(`{"profile":"p","items":[[[0,1,2]],[[0,3,2]]]}`)
	f.Add(`{"routes":[[-1,2]]}`)
	f.Add(`{"routes":[[0,1`)
	f.Add(`null`)
	f.Add(`{"profile":"p","routes":[[0,1]]}{"x":1}`)
	f.Add(`{"profile":"p","routes":[[9999999999999999999]]}`)
	f.Fuzz(func(t *testing.T, body string) {
		for _, path := range []string{"/v1/detect", "/v1/detect/batch"} {
			req := httptest.NewRequest("POST", path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if !allowedStatus(rec.Code) {
				t.Fatalf("%s: status %d on body %q", path, rec.Code, body)
			}
		}
	})
}

// FuzzDetectStreamFraming throws arbitrary bytes at the NDJSON stream
// endpoint: whatever the line framing and per-line parser make of the input,
// the answer must be a 200 whose body is well-formed NDJSON — every line a
// complete JSON object — with no panic and no hang.
func FuzzDetectStreamFraming(f *testing.F) {
	mux := fuzzService(f)
	f.Add("{\"profile\":\"p\",\"routes\":[[0,1,2]]}\n")
	f.Add("{\"profile\":\"p\",\"routes\":[[0,1,2]]}\n{\"profile\":\"missing\",\"routes\":[[1]]}\n")
	f.Add("\n\n\r\n")
	f.Add("{\"profile\":\"p\",\"routes\":[[0,1\n{\"profile\":\"p\",\"routes\":[[2]]}\n")
	f.Add("null\ntrue\n[]\n")
	f.Add("{\"profile\":\"p\",\"routes\":[[0,1,2]],\"explain\":true}\n")
	f.Add("{\"profile\":\"p\",\"routes\":[[9999999999999999999]]}")
	f.Add("{} {}\n")
	f.Fuzz(func(t *testing.T, body string) {
		// The no-hang half of the contract, enforced: a handler that stops
		// making progress on some framing shape would otherwise stall the
		// fuzz worker silently instead of recording the input.
		wd := time.AfterFunc(3*time.Second, func() {
			panic(fmt.Sprintf("stream exec exceeded 3s on %d-byte body %.200q", len(body), body))
		})
		defer wd.Stop()
		req := httptest.NewRequest("POST", "/v1/detect/stream", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("stream: status %d on body %q", rec.Code, body)
		}
		for i, line := range strings.Split(rec.Body.String(), "\n") {
			if line == "" {
				continue
			}
			if !json.Valid([]byte(line)) {
				t.Fatalf("stream: response line %d is not valid JSON: %q (body %q)", i, line, body)
			}
		}
	})
}

// FuzzVerifyRequestJSON throws arbitrary bytes at the /v1/verify decoder:
// malformed bodies and impossible scenarios must map to clean 4xx answers,
// and bodies that do decode must probe (a full scenario simulation) without
// panicking.
func FuzzVerifyRequestJSON(f *testing.F) {
	mux := fuzzService(f)
	f.Add(`{"scenario":{"topo":"cluster"}}`)
	f.Add(`{"scenario":{"topo":"cluster","tier":2,"protocol":"dsr"},"behavior":"forge","isolate":true}`)
	f.Add(`{"scenario":{"topo":"uniform6x6"},"routes":[[0,1,2]],"suspect":{"a":1,"b":2}}`)
	f.Add(`{"scenario":{"topo":"cluster"},"wormholes":0,"behavior":"forward"}`)
	f.Add(`{"scenario":{"topo":"cluster","protocol":"dsr"},"attack":"forge"}`)
	f.Add(`{"scenario":{"topo":"cluster"},"attack":"adaptive"}`)
	f.Add(`{"scenario":{"topo":"cluster"},"timeout":-1,"retries":-1,"max_probes":-1}`)
	f.Add(`{"scenario":{"topo":"nonesuch"}}`)
	f.Add(`{"scenario":{"topo":"cluster"},"suspect":{"a":-5,"b":3}}`)
	f.Add(`{"scenario":{"topo":"cluster"}`)
	f.Add(`null`)
	f.Add(`{"scenario":{"topo":"cluster"},"seed":18446744073709551615}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/verify", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if !allowedStatus(rec.Code) {
			t.Fatalf("verify: status %d on body %q", rec.Code, body)
		}
	})
}

// FuzzAnalyzeAndTrainDecoding does the same for the stateless analyze
// endpoint and the train endpoint (including fuzzed profile names in the
// path).
func FuzzAnalyzeAndTrainDecoding(f *testing.F) {
	mux := fuzzService(f)
	f.Add("q", `{"routes":[[0,1,2],[0,3,2]]}`)
	f.Add("q", `{"route_sets":[[[0,1,2]]]}`)
	f.Add("a b", `{"route_sets":[[[1]],[[2,2]],[[]]]}`)
	f.Add("%2e%2e", `{"route_sets":[[[0,1],[1,0],[0,1]]]}`)
	f.Add("", `{}`)
	f.Fuzz(func(t *testing.T, name, body string) {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if !allowedStatus(rec.Code) {
			t.Fatalf("analyze: status %d on body %q", rec.Code, body)
		}

		// Fuzzed profile names travel path-escaped, as a real client would
		// send them: either a clean answer or a router-level 404, never a
		// panic.
		target := "/v1/profiles/" + url.PathEscape(name) + "/train"
		req = httptest.NewRequest("POST", target, strings.NewReader(body))
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if !allowedStatus(rec.Code) {
			t.Fatalf("train %q: status %d on body %q", target, rec.Code, body)
		}
	})
}
