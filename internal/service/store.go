package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"samnet/internal/routing"
	"samnet/internal/sam"
)

// Errors the store maps to HTTP statuses.
var (
	// errUnknownProfile: the named profile does not exist (404).
	errUnknownProfile = errors.New("unknown profile")
	// errUntrained: the profile exists but has no training runs yet (409).
	errUntrained = errors.New("profile has no training runs yet")
	// errProfileBuild: training data was observed but building the profile
	// (or its detector) failed — the submitted data is unprocessable (422).
	errProfileBuild = errors.New("profile construction failed")
)

// entry is one named profile: its trainer, and the detector rebuilt from the
// trainer after every training call. The mutex serializes training and
// scoring, because the detector's adaptive means (the paper's low-pass
// update, equations 8 and 9) mutate on every scored route set.
type entry struct {
	mu       sync.Mutex
	name     string
	trainer  *sam.Trainer
	detector *sam.Detector
	cfg      sam.DetectorConfig
	// lastAccess is the wall clock (unix nanos) of the entry's most recent
	// store lookup; the idle-TTL sweeper and the LRU cap read it to pick
	// eviction victims.
	lastAccess atomic.Int64
}

// touch stamps the entry as just-used.
func (e *entry) touch() { e.lastAccess.Store(time.Now().UnixNano()) }

// train folds normal-condition route sets into the trainer and rebuilds the
// detector over the refreshed profile. It returns the total training runs.
//
// Empty input is lenient: when nothing has ever been observed (e.g. every
// submitted set was empty), the entry simply stays untrained. A profile
// build that fails with observations on the books is a real error and
// propagates as errProfileBuild so the handler can answer 422 instead of
// silently keeping a stale (or absent) detector.
func (e *entry) train(sets [][]routing.Route) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, set := range sets {
		e.trainer.ObserveRoutes(set)
	}
	runs := e.trainer.Runs()
	if runs == 0 {
		return 0, nil
	}
	p, err := e.trainer.Profile()
	if err != nil {
		return runs, fmt.Errorf("%w: %v", errProfileBuild, err)
	}
	e.detector = sam.NewDetector(p, e.cfg)
	return runs, nil
}

// score evaluates already-analyzed statistics against the detector and,
// when update is set, applies the adaptive profile update with the verdict's
// soft decision lambda. Analysis itself is pure and happens outside the
// lock, so the critical section is only the stateful evaluate+update pair.
func (e *entry) score(s sam.Stats, update bool) (sam.Verdict, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.detector == nil {
		return sam.Verdict{}, errUntrained
	}
	v := e.detector.Evaluate(s)
	if update {
		e.detector.Update(s, v.Lambda)
	}
	return v, nil
}

// snapshot returns a race-free deep copy of the trained profile plus the
// current adaptive feature means. The run count is the local trainer's when
// the profile was trained here; for a profile installed via load (samserve's
// -profiles preload) the local trainer is empty, so the count recorded in
// the profile itself is reported instead of a misleading zero.
func (e *entry) snapshot() (p *sam.Profile, pmaxMean, phiMean float64, runs int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.detector == nil {
		return nil, 0, 0, e.trainer.Runs(), errUntrained
	}
	runs = e.trainer.Runs()
	if runs == 0 {
		runs = e.detector.Profile().Runs
	}
	pmaxMean, phiMean = e.detector.AdaptiveMeans()
	return e.detector.Profile().Clone(), pmaxMean, phiMean, runs, nil
}

// load installs an externally trained profile (e.g. a samtrain JSON file),
// replacing any detector the entry had. The profile is cloned so the caller
// keeps ownership of its copy. Callers must go through store.load so the
// install is re-checked for residency against a concurrent eviction.
func (e *entry) load(p *sam.Profile) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.detector = sam.NewDetector(p.Clone(), e.cfg)
}

// restore is load plus the adaptive feature means captured by a snapshot, so
// a restart resumes the low-pass filter exactly where the previous process
// left it instead of silently resetting to the trained means.
func (e *entry) restore(p *sam.Profile, pmaxMean, phiMean float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.detector = sam.NewDetector(p.Clone(), e.cfg)
	e.detector.SetAdaptiveMeans(pmaxMean, phiMean)
}

// retrain replaces the entry's whole training state with a finished trainer —
// batch training's semantics are declarative (the grid defines the profile),
// so re-running the same grid converges on the identical state instead of
// accumulating. A trainer with no observations leaves the entry untouched.
func (e *entry) retrain(tr *sam.Trainer) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	runs := tr.Runs()
	if runs == 0 {
		return 0, nil
	}
	p, err := tr.Profile()
	if err != nil {
		return runs, fmt.Errorf("%w: %v", errProfileBuild, err)
	}
	e.trainer = tr
	e.detector = sam.NewDetector(p, e.cfg)
	return runs, nil
}

// store is the sharded profile registry. Profile names hash onto shards so
// concurrent requests for different profiles rarely contend on the same
// lock; the per-entry mutex then scopes contention to one profile.
type store struct {
	shards []storeShard
	cfg    sam.DetectorConfig
	bins   int
}

type storeShard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// newStore builds a store with the given shard count (minimum 1), detector
// configuration, and PMF binning for new trainers.
func newStore(shards int, cfg sam.DetectorConfig, bins int) *store {
	if shards < 1 {
		shards = 1
	}
	s := &store{shards: make([]storeShard, shards), cfg: cfg, bins: bins}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	return s
}

// shard hashes name with inline FNV-1a: hash/fnv's heap-allocated digest
// state showed up in the detect hot path, and the algorithm is three lines.
func (s *store) shard(name string) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// get returns the named entry or errUnknownProfile, stamping its last-access
// time for the idle-TTL sweeper.
func (s *store) get(name string) (*entry, error) {
	sh := s.shard(name)
	sh.mu.RLock()
	e := sh.entries[name]
	sh.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", errUnknownProfile, name)
	}
	e.touch()
	return e, nil
}

// getBytes is get for a profile name still sitting in a pooled request
// buffer. The map lookup with an inline string conversion compiles without
// allocating, and the interned e.name gives callers a stable string without
// copying the bytes — the serving hot path's way to avoid one string
// allocation per request.
func (s *store) getBytes(name []byte) (*entry, error) {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	sh := &s.shards[h%uint32(len(s.shards))]
	sh.mu.RLock()
	e := sh.entries[string(name)]
	sh.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", errUnknownProfile, name)
	}
	e.touch()
	return e, nil
}

// getOrCreate returns the named entry, creating an empty trainer on first
// use, and stamps its last-access time.
func (s *store) getOrCreate(name string) *entry {
	sh := s.shard(name)
	sh.mu.RLock()
	e := sh.entries[name]
	sh.mu.RUnlock()
	if e != nil {
		e.touch()
		return e
	}
	sh.mu.Lock()
	if e = sh.entries[name]; e == nil {
		e = &entry{name: name, trainer: sam.NewTrainer(name, s.bins), cfg: s.cfg}
		sh.entries[name] = e
	}
	sh.mu.Unlock()
	e.touch()
	return e
}

// withResident runs fn against the named entry and retries until the entry is
// still resident afterwards. This closes the load-vs-eviction race: between
// getOrCreate returning an entry and fn mutating it, a concurrent
// DELETE /v1/profiles/{name} (or a TTL/LRU sweep) can remove the entry from
// the shard map, which would silently drop fn's work on an orphan. Re-checking
// residency under the shard lock and retrying linearizes the install after
// the eviction instead of losing it.
func (s *store) withResident(name string, fn func(*entry)) *entry {
	for {
		e := s.getOrCreate(name)
		fn(e)
		sh := s.shard(name)
		sh.mu.RLock()
		resident := sh.entries[name] == e
		sh.mu.RUnlock()
		if resident {
			return e
		}
	}
}

// load installs an external profile under name, surviving concurrent
// evictions (see withResident).
func (s *store) load(name string, p *sam.Profile) {
	s.withResident(name, func(e *entry) { e.load(p) })
}

// restore installs a snapshot record under name — profile plus adaptive
// means — surviving concurrent evictions.
func (s *store) restore(name string, p *sam.Profile, pmaxMean, phiMean float64) {
	s.withResident(name, func(e *entry) { e.restore(p, pmaxMean, phiMean) })
}

// remove evicts the named entry, reporting whether it existed. In-flight
// scores holding the entry pointer finish against their copy; new lookups
// answer errUnknownProfile.
func (s *store) remove(name string) bool {
	sh := s.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[name]; !ok {
		return false
	}
	delete(sh.entries, name)
	return true
}

// removeIfIdle evicts name only if the map still holds exactly e and e has
// not been touched past cutoff — the sweeper's double-check under the shard
// write lock, so an entry re-created or re-used after the candidate scan is
// never evicted by a stale observation.
func (s *store) removeIfIdle(name string, e *entry, cutoff int64) bool {
	sh := s.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.entries[name] != e || e.lastAccess.Load() > cutoff {
		return false
	}
	delete(sh.entries, name)
	return true
}

// access is one (name, entry, lastAccess) observation from an eviction scan.
type access struct {
	name string
	e    *entry
	last int64
}

// accesses snapshots every resident entry with its last-access stamp, oldest
// first — the candidate list for TTL and LRU eviction passes.
func (s *store) accesses() []access {
	var out []access
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name, e := range sh.entries {
			out = append(out, access{name: name, e: e, last: e.lastAccess.Load()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].last != out[j].last {
			return out[i].last < out[j].last
		}
		return out[i].name < out[j].name
	})
	return out
}

// count returns the number of resident profiles without building the sorted
// name list (the profiles gauge reads it on every scrape).
func (s *store) count() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// names returns every profile name, sorted.
func (s *store) names() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name := range sh.entries {
			out = append(out, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
