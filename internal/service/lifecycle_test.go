package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// backdate rewinds a resident profile's last-access stamp so eviction tests
// need no wall-clock sleeps.
func backdate(t *testing.T, svc *Service, name string, age time.Duration) {
	t.Helper()
	e, err := svc.store.get(name)
	if err != nil {
		t.Fatal(err)
	}
	e.lastAccess.Store(time.Now().Add(-age).UnixNano())
}

// TestTTLEviction: a profile idle past ProfileTTL is swept, counted under
// reason="ttl", and subsequent lookups answer 404; a fresh profile survives
// the same sweep.
func TestTTLEviction(t *testing.T) {
	ts, svc := newTrainedServer(t, Config{ProfileTTL: time.Hour})
	if _, err := postJSONStatus(t, ts.URL+"/v1/profiles/fresh/train",
		mustJSON(t, TrainRequest{RouteSets: genSets(3, false, 100)}), http.StatusOK); err != nil {
		t.Fatal(err)
	}

	backdate(t, svc, "test", 2*time.Hour)
	ttl, lru := svc.sweepOnce(time.Now())
	if ttl != 1 || lru != 0 {
		t.Fatalf("sweep evicted ttl=%d lru=%d, want 1/0", ttl, lru)
	}
	if _, err := svc.store.get("test"); err == nil {
		t.Error("idle profile still resident after TTL sweep")
	}
	if _, err := svc.store.get("fresh"); err != nil {
		t.Errorf("fresh profile swept: %v", err)
	}

	resp, err := http.Get(ts.URL + "/v1/profiles/test")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET evicted profile = %d, want 404", resp.StatusCode)
	}
	text := scrape(t, ts.URL)
	if !strings.Contains(text, `samserve_profile_evictions_total{reason="ttl"} 1`) {
		t.Error("ttl eviction not counted in metrics")
	}
}

// TestTTLSweepSparesActive: an entry touched after the candidate scan's
// observation is not evicted (the removeIfIdle double-check).
func TestTTLSweepSparesActive(t *testing.T) {
	_, svc := newTrainedServer(t, Config{ProfileTTL: time.Hour})
	backdate(t, svc, "test", 2*time.Hour)
	// A lookup between the scan and the sweep re-stamps the entry.
	if _, err := svc.store.get("test"); err != nil {
		t.Fatal(err)
	}
	if ttl, _ := svc.sweepOnce(time.Now()); ttl != 0 {
		t.Fatalf("sweep evicted %d just-touched profiles", ttl)
	}
}

// TestLRUCap: training past MaxProfiles evicts the least recently used
// profile synchronously, counted under reason="lru".
func TestLRUCap(t *testing.T) {
	ts, svc := newTrainedServer(t, Config{MaxProfiles: 2})
	// Stagger ages: "test" oldest, then "b", then "c" arrives and must evict
	// "test" only.
	backdate(t, svc, "test", time.Hour)
	for _, name := range []string{"b", "c"} {
		if _, err := postJSONStatus(t, ts.URL+"/v1/profiles/"+name+"/train",
			mustJSON(t, TrainRequest{RouteSets: genSets(3, false, 200)}), http.StatusOK); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.store.count(); got != 2 {
		t.Fatalf("store holds %d profiles, want 2", got)
	}
	if _, err := svc.store.get("test"); err == nil {
		t.Error("LRU profile survived the cap")
	}
	for _, name := range []string{"b", "c"} {
		if _, err := svc.store.get(name); err != nil {
			t.Errorf("profile %q evicted, want resident: %v", name, err)
		}
	}
	if text := scrape(t, ts.URL); !strings.Contains(text, `samserve_profile_evictions_total{reason="lru"} 1`) {
		t.Error("lru eviction not counted in metrics")
	}
}

// postJSONStatus posts a body and asserts the response status.
func postJSONStatus(t *testing.T, url, body string, want int) ([]byte, error) {
	t.Helper()
	resp, out := postJSON(t, url, body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s = %d, want %d: %s", url, resp.StatusCode, want, out)
	}
	return out, nil
}

// TestLoadSurvivesConcurrentDelete pins the load-vs-eviction race: installs
// racing explicit removals must never leave a "resident but untrained" or
// silently-dropped profile — after the final load the profile answers with a
// live detector. Run under -race this also proves the retry loop is clean.
func TestLoadSurvivesConcurrentDelete(t *testing.T) {
	svc := New(Config{Shards: 1})
	defer svc.Close()
	p := benchProfile(t, "raced", 7000)

	var wg sync.WaitGroup
	start := make(chan struct{})
	const iters = 200
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			if err := svc.LoadProfile("raced", p); err != nil {
				t.Errorf("load %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			svc.store.remove("raced")
		}
	}()
	close(start)
	wg.Wait()

	// The loader finished last word or not; either way a final load must
	// land on a resident, trained entry.
	if err := svc.LoadProfile("raced", p); err != nil {
		t.Fatal(err)
	}
	e, err := svc.store.get("raced")
	if err != nil {
		t.Fatalf("profile lost after concurrent load/delete: %v", err)
	}
	if _, _, _, _, err := e.snapshot(); err != nil {
		t.Fatalf("installed profile has no detector: %v", err)
	}
}

// TestTrainBatch: the endpoint trains one profile per scenario and the
// resulting profiles are byte-identical across repeated sweeps and across
// parallelism levels — the runner determinism contract surfaced over HTTP.
func TestTrainBatch(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{Workers: 4})
	req := func(parallel int) string {
		return mustJSON(t, TrainBatchRequest{
			Scenarios: []TrainScenarioJSON{
				{Topo: "cluster"},
				{Topo: "uniform6x6", Tier: 2, Protocol: "dsr", Profile: "grid-dsr"},
			},
			Runs:     6,
			Parallel: parallel,
		})
	}
	var resp TrainBatchResponse
	out, _ := postJSONStatus(t, ts.URL+"/v1/train/batch", req(4), http.StatusOK)
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Scenarios) != 2 || resp.Cells != 12 || resp.Seed != 2005 || resp.Runs != 6 {
		t.Fatalf("batch response = %+v", resp)
	}
	for _, sc := range resp.Scenarios {
		if !sc.Trained || sc.Runs != 6 || sc.Error != "" {
			t.Fatalf("scenario result = %+v, want 6 trained runs", sc)
		}
	}
	if resp.Scenarios[0].Profile != "cluster-1tier-MR" {
		t.Errorf("default profile name = %q", resp.Scenarios[0].Profile)
	}
	if resp.Scenarios[0].Label != "cluster-1tier/MR" {
		t.Errorf("canonical label = %q", resp.Scenarios[0].Label)
	}
	if resp.Scenarios[1].Profile != "grid-dsr" {
		t.Errorf("explicit profile name = %q", resp.Scenarios[1].Profile)
	}

	first := [2][]byte{
		getProfileBody(t, ts.URL, "cluster-1tier-MR"),
		getProfileBody(t, ts.URL, "grid-dsr"),
	}
	// Re-running the same grid — serially this time — must converge on the
	// identical bytes: replace semantics plus grid-coordinate seeding.
	postJSONStatus(t, ts.URL+"/v1/train/batch", req(1), http.StatusOK)
	second := [2][]byte{
		getProfileBody(t, ts.URL, "cluster-1tier-MR"),
		getProfileBody(t, ts.URL, "grid-dsr"),
	}
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Errorf("scenario %d: profiles diverge across sweeps:\n %s\n %s", i, first[i], second[i])
		}
	}
}

// TestTrainBatchStream: stream mode answers 200 with progress text whose
// final line is the result JSON.
func TestTrainBatchStream(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	body := mustJSON(t, TrainBatchRequest{
		Scenarios: []TrainScenarioJSON{{Topo: "cluster"}},
		Runs:      4,
		Stream:    true,
	})
	resp, out := postJSON(t, ts.URL+"/v1/train/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d: %s", resp.StatusCode, out)
	}
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	var last TrainBatchResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final stream line is not the result JSON: %v\n%s", err, out)
	}
	if len(last.Scenarios) != 1 || !last.Scenarios[0].Trained {
		t.Fatalf("streamed result = %+v", last)
	}
}

// TestTrainBatchErrors: malformed grids are refused before any work runs.
func TestTrainBatchErrors(t *testing.T) {
	ts, svc := newTrainedServer(t, Config{})
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"empty grid", `{"scenarios":[]}`, http.StatusBadRequest},
		{"unknown topo", `{"scenarios":[{"topo":"moon"}]}`, http.StatusBadRequest},
		{"unknown protocol", `{"scenarios":[{"topo":"cluster","protocol":"ospf"}]}`, http.StatusBadRequest},
		{"bad tier", `{"scenarios":[{"topo":"cluster","tier":9}]}`, http.StatusBadRequest},
		{"duplicate profile", `{"scenarios":[{"topo":"cluster"},{"topo":"cluster"}]}`, http.StatusBadRequest},
		{"runs too large", `{"scenarios":[{"topo":"cluster"}],"runs":100000}`, http.StatusBadRequest},
		{"grid too large", mustJSON(t, TrainBatchRequest{
			Scenarios: manyScenarios(t, 40), Runs: 4000}), http.StatusBadRequest},
		{"not json", `{"scenarios":`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := postJSON(t, ts.URL+"/v1/train/batch", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.want, out)
			}
		})
	}
	// Nothing from the refused grids may be resident.
	if _, err := svc.store.get("cluster-1tier-MR"); err == nil {
		t.Error("refused batch request still installed a profile")
	}
}

// manyScenarios builds n distinct-profile cluster scenarios.
func manyScenarios(t *testing.T, n int) []TrainScenarioJSON {
	t.Helper()
	out := make([]TrainScenarioJSON, n)
	for i := range out {
		out[i] = TrainScenarioJSON{Topo: "cluster", Profile: string(rune('a' + i%26)) + string(rune('0'+i/26))}
	}
	return out
}
