package service

// Pooled request decoding for the serving hot paths. encoding/json costs
// ~7 allocations per decoded detect request even when the target struct is
// reused; at the 100k+ req/s target that is the bulk of the serving garbage.
// wireScratch holds everything one request needs — body buffer, parser
// state, a routing.Route backing arena, and the response buffer — and cycles
// through a sync.Pool so the steady-state detect path allocates nothing for
// wire handling.
//
// The parser implements the subset of JSON the detect/analyze/batch
// requests use, with encoding/json-compatible semantics where they are
// observable: case-insensitive key fallback, last-key-wins duplicates,
// null as a field no-op, \u escapes (surrogate pairs included), invalid
// UTF-8 replaced with U+FFFD, and strict trailing-data rejection. Unknown
// fields are skipped with full validation. The existing fuzz targets
// (FuzzDetectDecoding and friends) run the same corpus against this parser
// as against the old decoder.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"samnet/internal/routing"
	"samnet/internal/sam"
	"samnet/internal/topology"
)

// maxParseDepth bounds skipped-value nesting so hostile bodies cannot
// overflow the parse stack. (encoding/json allows 10000; anything past this
// limit is a 400 either way.)
const maxParseDepth = 256

// Retention caps: a scratch grown past these by a pathological request is
// dropped instead of returned to the pool.
const (
	maxRetainedBody  = 1 << 20
	maxRetainedArena = 1 << 17
)

var wirePool = sync.Pool{New: func() any { return new(wireScratch) }}

// wireScratch is the per-request decode/encode scratch. Route slices handed
// to sam.Analyze alias the arena, so the scratch must stay checked out until
// the response is written.
type wireScratch struct {
	p    jparser
	body []byte

	// Decoded request fields (detect/batch/analyze).
	profile   []byte
	update    bool
	updateSet bool
	explain   bool
	topK      int

	// trace is the request's (or stream line's) hex trace id, "" when
	// tracing is off; decision records stamp it ring-side only.
	trace string

	// Route arena: node ids land contiguously in arena, spans records one
	// [start,end) per route, setEnds one end-index into spans per batch item.
	arena   []topology.NodeID
	spans   [][2]int
	setEnds []int
	routes  []routing.Route
	sets    [][]routing.Route

	// Batch execution and wire-verdict staging.
	verdicts []sam.Verdict
	itemErrs []error
	errStrs  []string
	tasks    []func()
	wire     []VerdictJSON

	// Encoded response and stream line buffer.
	out  []byte
	lbuf []byte
}

func getScratch() *wireScratch {
	sc := wirePool.Get().(*wireScratch)
	sc.reset()
	return sc
}

func putScratch(sc *wireScratch) {
	if cap(sc.body) > maxRetainedBody || cap(sc.out) > maxRetainedBody ||
		cap(sc.lbuf) > maxRetainedBody || cap(sc.arena) > maxRetainedArena {
		return
	}
	wirePool.Put(sc)
}

func (sc *wireScratch) reset() {
	sc.profile = sc.profile[:0]
	sc.update, sc.updateSet, sc.explain = false, false, false
	sc.topK = 0
	sc.trace = ""
	sc.resetRoutes()
	sc.out = sc.out[:0]
}

func (sc *wireScratch) resetRoutes() {
	sc.arena = sc.arena[:0]
	sc.spans = sc.spans[:0]
	sc.setEnds = sc.setEnds[:0]
	sc.routes = sc.routes[:0]
	sc.sets = sc.sets[:0]
}

// readBody slurps the request body into the pooled buffer, enforcing the
// configured size limit (the hot handlers skip http.MaxBytesReader and its
// per-request allocation; the limit lives here instead).
func (sc *wireScratch) readBody(r *http.Request, limit int64) error {
	buf := sc.body[:0]
	if cap(buf) == 0 {
		hint := r.ContentLength
		if hint <= 0 || hint > 4096 {
			hint = 4096
		}
		buf = make([]byte, 0, hint)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		sc.body = buf
		if int64(len(buf)) > limit {
			return errBodyTooLarge
		}
		switch {
		case err == io.EOF:
			return nil
		case err != nil:
			return fmt.Errorf("reading request body: %w", err)
		}
	}
}

// growSlice returns s resized to n zeroed elements, reusing its backing
// array when the capacity allows.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// requestUpdate resolves the adaptive-update flag with the wire default
// (absent or null means true, the paper's behaviour).
func (sc *wireScratch) requestUpdate() bool { return !sc.updateSet || sc.update }

// materializeRoutes builds the routing.Route headers over the final arena.
// It runs after parsing because the arena's backing array may move while it
// grows; spans are stable offsets, headers are not.
func (sc *wireScratch) materializeRoutes() {
	sc.routes = sc.routes[:0]
	for _, sp := range sc.spans {
		sc.routes = append(sc.routes, routing.Route(sc.arena[sp[0]:sp[1]:sp[1]]))
	}
	start := 0
	for _, end := range sc.setEnds {
		sc.sets = append(sc.sets, sc.routes[start:end:end])
		start = end
	}
}

// reqKind selects which request schema parseRequest decodes.
type reqKind int

const (
	kindDetect reqKind = iota
	kindBatch
	kindAnalyze
)

// parseRequest parses one request object of the given kind from sc.body,
// rejecting trailing data like decodeJSON. A bare null leaves every field
// zero, matching json.Decode into a struct pointer.
func (sc *wireScratch) parseRequest(kind reqKind) error {
	p := &sc.p
	p.init(sc.body)
	p.skipWS()
	if p.pos >= len(p.buf) {
		return errors.New("invalid JSON body: empty body")
	}
	switch p.buf[p.pos] {
	case 'n':
		if err := p.expectLiteral("null"); err != nil {
			return err
		}
	case '{':
		p.pos++
		p.skipWS()
		if p.peek() == '}' {
			p.pos++
			break
		}
	fields:
		for {
			p.skipWS()
			key, err := p.parseString()
			if err != nil {
				return err
			}
			p.skipWS()
			if p.peek() != ':' {
				return p.syntaxErr("expected ':' after object key")
			}
			p.pos++
			switch kind {
			case kindDetect:
				err = sc.detectField(key)
			case kindBatch:
				err = sc.batchField(key)
			case kindAnalyze:
				err = sc.analyzeField(key)
			}
			if err != nil {
				return err
			}
			p.skipWS()
			switch p.peek() {
			case ',':
				p.pos++
			case '}':
				p.pos++
				break fields
			default:
				return p.syntaxErr("expected ',' or '}'")
			}
		}
	default:
		return p.syntaxErr("expected request object")
	}
	p.skipWS()
	if p.pos != len(p.buf) {
		return errors.New("invalid JSON body: trailing data after the request object")
	}
	return nil
}

func (sc *wireScratch) detectField(key []byte) error {
	p := &sc.p
	switch {
	case keyIs(key, "profile"):
		return p.parseStringField(&sc.profile)
	case keyIs(key, "routes"):
		return sc.routesField()
	case keyIs(key, "update"):
		return p.parseBoolField(&sc.update, &sc.updateSet)
	case keyIs(key, "explain"):
		var set bool
		return p.parseBoolField(&sc.explain, &set)
	}
	return p.skipValue(0)
}

func (sc *wireScratch) batchField(key []byte) error {
	p := &sc.p
	switch {
	case keyIs(key, "profile"):
		return p.parseStringField(&sc.profile)
	case keyIs(key, "items"):
		return sc.itemsField()
	case keyIs(key, "update"):
		return p.parseBoolField(&sc.update, &sc.updateSet)
	}
	return p.skipValue(0)
}

func (sc *wireScratch) analyzeField(key []byte) error {
	p := &sc.p
	switch {
	case keyIs(key, "routes"):
		return sc.routesField()
	case keyIs(key, "top_k"):
		return p.parseIntField(&sc.topK)
	}
	return p.skipValue(0)
}

// routesField parses the "routes" value: null is a no-op (json semantics),
// an array replaces any earlier duplicate of the field.
func (sc *wireScratch) routesField() error {
	p := &sc.p
	p.skipWS()
	if p.peek() == 'n' {
		return p.expectLiteral("null")
	}
	sc.resetRoutes()
	_, err := sc.parseRouteSet()
	return err
}

// itemsField parses the "items" value of a batch request: an array of route
// sets, accumulated into the shared arena with per-set boundaries, under the
// same total-route cap decodeRouteSets enforces.
func (sc *wireScratch) itemsField() error {
	p := &sc.p
	p.skipWS()
	if p.peek() == 'n' {
		return p.expectLiteral("null")
	}
	sc.resetRoutes()
	if p.peek() != '[' {
		return p.syntaxErr("expected array of route sets")
	}
	p.pos++
	p.skipWS()
	if p.peek() == ']' {
		p.pos++
		return nil
	}
	total := 0
	for set := 0; ; set++ {
		n, err := sc.parseRouteSet()
		if err != nil {
			return fmt.Errorf("route set %d: %w", set, err)
		}
		total += n
		if total > maxRoutesPerSet*4 {
			return fmt.Errorf("request carries more than %d routes in total", maxRoutesPerSet*4)
		}
		sc.setEnds = append(sc.setEnds, len(sc.spans))
		p.skipWS()
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return nil
		default:
			return p.syntaxErr("expected ',' or ']'")
		}
	}
}

// parseRouteSet parses one [[int,...],...] into the arena, appending one
// span per route, and returns the number of routes parsed. Null is an empty
// set. Semantic limits reuse decodeRoutes' messages.
func (sc *wireScratch) parseRouteSet() (int, error) {
	p := &sc.p
	p.skipWS()
	if p.peek() == 'n' {
		if err := p.expectLiteral("null"); err != nil {
			return 0, err
		}
		return 0, nil
	}
	if p.peek() != '[' {
		return 0, p.syntaxErr("expected route array")
	}
	p.pos++
	p.skipWS()
	if p.peek() == ']' {
		p.pos++
		return 0, nil
	}
	count := 0
	for {
		if err := sc.parseRoute(count); err != nil {
			return count, err
		}
		count++
		p.skipWS()
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			if count > maxRoutesPerSet {
				return count, fmt.Errorf("route set has %d routes, limit %d", count, maxRoutesPerSet)
			}
			return count, nil
		default:
			return count, p.syntaxErr("expected ',' or ']'")
		}
	}
}

// parseRoute parses one [int,...] into the arena and records its span.
// A null element is an empty route, as encoding/json decodes it.
func (sc *wireScratch) parseRoute(routeIdx int) error {
	p := &sc.p
	p.skipWS()
	start := len(sc.arena)
	if p.peek() == 'n' {
		if err := p.expectLiteral("null"); err != nil {
			return err
		}
		sc.spans = append(sc.spans, [2]int{start, start})
		return nil
	}
	if p.peek() != '[' {
		return p.syntaxErr("expected route")
	}
	p.pos++
	p.skipWS()
	if p.peek() == ']' {
		p.pos++
		sc.spans = append(sc.spans, [2]int{start, start})
		return nil
	}
	for node := 0; ; node++ {
		id, err := p.parseIntValue()
		if err != nil {
			return err
		}
		if id < 0 || id > maxNodeID {
			return fmt.Errorf("route %d node %d: id %d out of range [0,%d]", routeIdx, node, id, maxNodeID)
		}
		sc.arena = append(sc.arena, topology.NodeID(id))
		p.skipWS()
		switch p.peek() {
		case ',':
			p.pos++
			p.skipWS()
		case ']':
			p.pos++
			if n := len(sc.arena) - start; n > maxRouteHops+1 {
				return fmt.Errorf("route %d has %d nodes, limit %d", routeIdx, n, maxRouteHops+1)
			}
			sc.spans = append(sc.spans, [2]int{start, len(sc.arena)})
			return nil
		default:
			return p.syntaxErr("expected ',' or ']'")
		}
	}
}

// keyIs matches an object key against a known (lower-case) field name:
// exact first, then ASCII case-insensitive, mirroring encoding/json's
// fallback.
func keyIs(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	if string(key) == name {
		return true
	}
	for i := 0; i < len(name); i++ {
		c := key[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

// jparser is a minimal JSON parser over one in-memory body. String values
// alias either the body or the str scratch; both are stable only until the
// next parseString call.
type jparser struct {
	buf []byte
	pos int
	str []byte
}

func (p *jparser) init(b []byte) { p.buf, p.pos = b, 0 }

func (p *jparser) skipWS() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peek returns the next byte without consuming it, 0 at end of input.
func (p *jparser) peek() byte {
	if p.pos < len(p.buf) {
		return p.buf[p.pos]
	}
	return 0
}

func (p *jparser) syntaxErr(what string) error {
	return fmt.Errorf("invalid JSON body: %s at offset %d", what, p.pos)
}

// literal consumes lit if it is next in the input.
func (p *jparser) literal(lit string) bool {
	if len(p.buf)-p.pos >= len(lit) && string(p.buf[p.pos:p.pos+len(lit)]) == lit {
		p.pos += len(lit)
		return true
	}
	return false
}

// expectLiteral consumes lit and requires a value boundary after it, so
// "nullx" is rejected like encoding/json would.
func (p *jparser) expectLiteral(lit string) error {
	if !p.literal(lit) {
		return p.syntaxErr("invalid literal")
	}
	return p.boundary()
}

// boundary requires the current byte to legally follow a completed value.
func (p *jparser) boundary() error {
	if p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r', ',', ']', '}':
		default:
			return p.syntaxErr("unexpected character after value")
		}
	}
	return nil
}

// parseStringField parses a string value into dst (reusing its capacity);
// null leaves dst untouched, like encoding/json decoding null into a string.
func (p *jparser) parseStringField(dst *[]byte) error {
	p.skipWS()
	if p.peek() == 'n' {
		return p.expectLiteral("null")
	}
	s, err := p.parseString()
	if err != nil {
		return err
	}
	*dst = append((*dst)[:0], s...)
	return nil
}

// parseBoolField parses true/false into dst and marks set; null is a no-op.
func (p *jparser) parseBoolField(dst, set *bool) error {
	p.skipWS()
	switch p.peek() {
	case 'n':
		return p.expectLiteral("null")
	case 't':
		if err := p.expectLiteral("true"); err != nil {
			return err
		}
		*dst, *set = true, true
		return nil
	case 'f':
		if err := p.expectLiteral("false"); err != nil {
			return err
		}
		*dst, *set = false, true
		return nil
	}
	return p.syntaxErr("expected boolean")
}

// parseIntField parses an integer value into dst; null is a no-op.
func (p *jparser) parseIntField(dst *int) error {
	p.skipWS()
	if p.peek() == 'n' {
		return p.expectLiteral("null")
	}
	v, err := p.parseIntValue()
	if err != nil {
		return err
	}
	*dst = int(v)
	return nil
}

// parseString parses a JSON string. The fast path covers ASCII without
// escapes and returns a slice into the body; escapes, control-character
// errors, and non-ASCII (which needs U+FFFD replacement of invalid UTF-8,
// as encoding/json does) take the slow path into the str scratch.
func (p *jparser) parseString() ([]byte, error) {
	if p.peek() != '"' {
		return nil, p.syntaxErr("expected string")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		switch {
		case c == '"':
			s := p.buf[start:p.pos]
			p.pos++
			return s, nil
		case c == '\\' || c >= utf8.RuneSelf:
			return p.parseStringSlow(start)
		case c < 0x20:
			return nil, p.syntaxErr("control character in string")
		default:
			p.pos++
		}
	}
	return nil, p.syntaxErr("unterminated string")
}

func (p *jparser) parseStringSlow(start int) ([]byte, error) {
	out := append(p.str[:0], p.buf[start:p.pos]...)
	defer func() { p.str = out }()
	for p.pos < len(p.buf) {
		c := p.buf[p.pos]
		switch {
		case c == '"':
			p.pos++
			return out, nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.buf) {
				return nil, p.syntaxErr("unterminated escape")
			}
			e := p.buf[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				out = append(out, e)
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(rune(r)) {
					if p.pos+1 < len(p.buf) && p.buf[p.pos] == '\\' && p.buf[p.pos+1] == 'u' {
						save := p.pos
						p.pos += 2
						r2, err := p.hex4()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(rune(r), rune(r2)); dec != utf8.RuneError {
							out = utf8.AppendRune(out, dec)
							continue
						}
						p.pos = save // lone surrogate; re-parse the next escape
					}
					out = utf8.AppendRune(out, utf8.RuneError)
				} else {
					out = utf8.AppendRune(out, rune(r))
				}
			default:
				return nil, p.syntaxErr("invalid escape")
			}
		case c < 0x20:
			return nil, p.syntaxErr("control character in string")
		case c < utf8.RuneSelf:
			out = append(out, c)
			p.pos++
		default:
			r, size := utf8.DecodeRune(p.buf[p.pos:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, utf8.RuneError)
				p.pos++
			} else {
				out = append(out, p.buf[p.pos:p.pos+size]...)
				p.pos += size
			}
		}
	}
	return nil, p.syntaxErr("unterminated string")
}

func (p *jparser) hex4() (uint32, error) {
	if p.pos+4 > len(p.buf) {
		return 0, p.syntaxErr("invalid \\u escape")
	}
	var v uint32
	for i := 0; i < 4; i++ {
		c := p.buf[p.pos+i]
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | uint32(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		case 'A' <= c && c <= 'F':
			v = v<<4 | uint32(c-'A'+10)
		default:
			return 0, p.syntaxErr("invalid \\u escape")
		}
	}
	p.pos += 4
	return v, nil
}

// scanNumber validates a full JSON number literal and reports whether it is
// integral (no fraction or exponent).
func (p *jparser) scanNumber() (lit []byte, isInt bool, err error) {
	start := p.pos
	isInt = true
	if p.peek() == '-' {
		p.pos++
	}
	switch c := p.peek(); {
	case c == '0':
		p.pos++
	case '1' <= c && c <= '9':
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
		}
	default:
		return nil, false, p.syntaxErr("expected number")
	}
	if p.peek() == '.' {
		isInt = false
		p.pos++
		if c := p.peek(); c < '0' || c > '9' {
			return nil, false, p.syntaxErr("malformed number")
		}
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
		}
	}
	if c := p.peek(); c == 'e' || c == 'E' {
		isInt = false
		p.pos++
		if c := p.peek(); c == '+' || c == '-' {
			p.pos++
		}
		if c := p.peek(); c < '0' || c > '9' {
			return nil, false, p.syntaxErr("malformed number")
		}
		for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
			p.pos++
		}
	}
	if err := p.boundary(); err != nil {
		return nil, false, err
	}
	return p.buf[start:p.pos], isInt, nil
}

// parseIntValue parses a JSON number that must fit an int64, rejecting
// fractions and exponents the way encoding/json rejects them for int
// targets.
func (p *jparser) parseIntValue() (int64, error) {
	lit, isInt, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	if !isInt {
		return 0, fmt.Errorf("invalid JSON body: number %s is not an integer", lit)
	}
	neg := false
	digits := lit
	if digits[0] == '-' {
		neg = true
		digits = digits[1:]
	}
	var v int64
	for _, c := range digits {
		d := int64(c - '0')
		if v > (math.MaxInt64-d)/10 {
			return 0, fmt.Errorf("invalid JSON body: number %s overflows", lit)
		}
		v = v*10 + d
	}
	if neg {
		v = -v
	}
	return v, nil
}

// skipValue validates and discards one JSON value of any shape (unknown
// request fields), bounding nesting at maxParseDepth.
func (p *jparser) skipValue(depth int) error {
	if depth > maxParseDepth {
		return errors.New("invalid JSON body: value nesting exceeds the limit")
	}
	p.skipWS()
	if p.pos >= len(p.buf) {
		return p.syntaxErr("unexpected end of value")
	}
	switch c := p.buf[p.pos]; c {
	case '"':
		_, err := p.parseString()
		return err
	case '{':
		p.pos++
		p.skipWS()
		if p.peek() == '}' {
			p.pos++
			return nil
		}
		for {
			p.skipWS()
			if _, err := p.parseString(); err != nil {
				return err
			}
			p.skipWS()
			if p.peek() != ':' {
				return p.syntaxErr("expected ':' after object key")
			}
			p.pos++
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipWS()
			switch p.peek() {
			case ',':
				p.pos++
			case '}':
				p.pos++
				return nil
			default:
				return p.syntaxErr("expected ',' or '}'")
			}
		}
	case '[':
		p.pos++
		p.skipWS()
		if p.peek() == ']' {
			p.pos++
			return nil
		}
		for {
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipWS()
			switch p.peek() {
			case ',':
				p.pos++
			case ']':
				p.pos++
				return nil
			default:
				return p.syntaxErr("expected ',' or ']'")
			}
		}
	case 't':
		return p.expectLiteral("true")
	case 'f':
		return p.expectLiteral("false")
	case 'n':
		return p.expectLiteral("null")
	default:
		_, _, err := p.scanNumber()
		return err
	}
}
