package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"samnet/internal/sam"
)

// TestDetectServeZeroAlloc pins the tentpole invariant: once warm, a full
// /v1/detect request — mux dispatch, instrumentation, body read, wire
// decode, analysis, locked scoring, wire encode — allocates nothing beyond
// sam.Analyze's one pooled-scratch return, and the codec layer by itself
// allocates nothing at all (style of TestBroadcastDeliverZeroAlloc).
func TestDetectServeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a quarter of Puts under the race detector, so pooled-path allocation counts are meaningless")
	}
	// Telemetry off: decision records are an optional feature with their own
	// (bounded) cost; the serving-path guarantee is about the wire layer.
	svc := New(Config{DecisionBuffer: -1})
	t.Cleanup(svc.Close)
	mux := svc.Handler()

	trainBody, err := json.Marshal(TrainRequest{RouteSets: genSets(20, false, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/profiles/zero/train", bytes.NewReader(trainBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("train: %d %s", rec.Code, rec.Body)
	}
	body, err := json.Marshal(DetectRequest{Profile: "zero", Routes: genSets(1, true, 5000)[0]})
	if err != nil {
		t.Fatal(err)
	}

	req, rd, w := benchRequest("/v1/detect", body)
	// Warm the pools (scratch, statusWriter, analyze scratch).
	for i := 0; i < 8; i++ {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	}
	// sam.Analyze returns its pooled scratch through an interface, which is
	// one unavoidable allocation per call today; everything else must be
	// free. The CI bench guard enforces ≤ 9 on the default config (decision
	// capture on); this test pins the wire layer itself much tighter.
	if got := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
	}); got > 2 {
		t.Errorf("detect request allocates %.1f times per op, want <= 2", got)
	}

	// The codec layer alone — parse, materialize, encode — must be exactly
	// zero once its scratch is warm.
	sc := getScratch()
	defer putScratch(sc)
	v := goldenVerdict(1)
	if got := testing.AllocsPerRun(200, func() {
		sc.reset()
		sc.body = append(sc.body[:0], body...)
		if err := sc.parseRequest(kindDetect); err != nil {
			t.Fatal(err)
		}
		sc.materializeRoutes()
		sc.out = appendDetectResponse(sc.out[:0], sc.profile, v)
	}); got != 0 {
		t.Errorf("codec path allocates %.1f times per op, want 0", got)
	}
}

// TestWireParserMatchesEncodingJSON is the differential decode test: every
// body is decoded by both the old encoding/json path and the pooled parser,
// and they must agree on accept/reject and on every decoded field.
func TestWireParserMatchesEncodingJSON(t *testing.T) {
	bodies := []string{
		`{"profile":"p","routes":[[0,1,2],[0,3,2]]}`,
		`{"profile":"p","routes":[]}`,
		`{"profile":"p","routes":null}`,
		`{"profile":null,"routes":[[1,2]]}`,
		`{"PROFILE":"p","Routes":[[7]]}`,               // case-insensitive keys
		`{"profile":"a","profile":"b","routes":[[1]]}`, // last key wins
		`{"routes":[[1,2]],"routes":[[3,4]]}`,
		`{"profile":"p","routes":[[0,1]],"update":false}`,
		`{"profile":"p","routes":[[0,1]],"update":null}`,
		`{"profile":"p","routes":[[0,1]],"explain":true}`,
		`{"profile":"p","routes":[[0,1]],"unknown":{"deep":[1,{"x":"y"}]}}`,
		`  {  "profile" : "p" , "routes" : [ [ 0 , 1 ] ] }  `,
		`{"profile":"pé😀","routes":[[1]]}`, // escapes + surrogate pair
		`{"profile":"a\"b\\c\n","routes":[[1]]}`,
		`{}`,
		`null`,
		`{"profile":"p","routes":[[9999999999999999999]]}`, // int64 overflow
		`{"profile":"p","routes":[[1.5]]}`,                 // fraction
		`{"profile":"p","routes":[[1e2]]}`,                 // exponent
		`{"profile":"p","routes":[[01]]}`,                  // leading zero
		`{"profile":"p","routes":[[-0]]}`,
		`{"profile":"p","routes":[[2,3]]}{"x":1}`, // trailing garbage
		`{"profile":"p","routes":[[0,1`,           // truncated
		`{"profile":"p",}`,                        // trailing comma
		`[1,2,3]`,                                 // wrong top-level type
		`{"profile":"p","routes":[null,[1,2]]}`,   // null route element
		`{"profile":"p","routes":[[1],null]}`,
		`truex`,
		``,
		`{"update":true}`,
		`{"profile":123}`, // wrong field type
		`{"routes":[[true]]}`,
		`{"routes":"nope"}`,
	}
	for _, body := range bodies {
		// Old path.
		var oldReq DetectRequest
		oldErr := decodeJSON(httptest.NewRequest("POST", "/v1/detect", strings.NewReader(body)), &oldReq)
		var oldRoutes any
		if oldErr == nil {
			routes, rerr := decodeRoutes(oldReq.Routes)
			if rerr != nil {
				oldErr = rerr
			} else {
				oldRoutes = routes
			}
		}
		// New path.
		sc := getScratch()
		sc.body = append(sc.body[:0], body...)
		newErr := sc.parseRequest(kindDetect)
		if (oldErr == nil) != (newErr == nil) {
			t.Errorf("body %q: old err %v, new err %v", body, oldErr, newErr)
			putScratch(sc)
			continue
		}
		if oldErr != nil {
			putScratch(sc)
			continue
		}
		sc.materializeRoutes()
		if got, want := string(sc.profile), oldReq.Profile; got != want {
			t.Errorf("body %q: profile %q, want %q", body, got, want)
		}
		oldUpdate := oldReq.Update == nil || *oldReq.Update
		if got := sc.requestUpdate(); got != oldUpdate {
			t.Errorf("body %q: update %v, want %v", body, got, oldUpdate)
		}
		if got := sc.explain; got != oldReq.Explain {
			t.Errorf("body %q: explain %v, want %v", body, got, oldReq.Explain)
		}
		if oldRoutes != nil {
			want := fmt.Sprint(oldRoutes)
			if got := fmt.Sprint(sc.routes); got != want {
				t.Errorf("body %q: routes %s, want %s", body, got, want)
			}
		}
		putScratch(sc)
	}
}

// TestDetectBatchPartialFailure pins the repaired batch contract: items that
// scored are returned (they already updated the adaptive profile) alongside
// per-item errors for the ones that failed, under 207 instead of discarding
// completed work behind a single error status.
func TestDetectBatchPartialFailure(t *testing.T) {
	ts, svc := newTrainedServer(t, Config{})

	t.Run("all-fail-untrained", func(t *testing.T) {
		// An existing but untrained profile: every item fails the same way.
		// (Train with only empty route sets so the entry exists without runs.)
		resp, err := http.Post(ts.URL+"/v1/profiles/untrained/train", "application/json",
			strings.NewReader(`{"route_sets":[[]]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed train: %s", resp.Status)
		}
		resp, err = http.Post(ts.URL+"/v1/detect/batch", "application/json",
			strings.NewReader(`{"profile":"untrained","items":[[[0,1,2]],[[0,3,2]]]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMultiStatus {
			t.Fatalf("status = %d, want 207", resp.StatusCode)
		}
		var br BatchDetectResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		if len(br.Verdicts) != 2 || len(br.Errors) != 2 {
			t.Fatalf("got %d verdicts / %d errors, want 2/2", len(br.Verdicts), len(br.Errors))
		}
		for i, e := range br.Errors {
			if !strings.Contains(e, "no training runs") {
				t.Errorf("errors[%d] = %q, want untrained error", i, e)
			}
		}
	})

	t.Run("all-ok-is-200-no-errors", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/detect/batch", "application/json",
			strings.NewReader(`{"profile":"test","items":[[[0,1,2]],[[0,3,2]]]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		blob, _ := io.ReadAll(resp.Body)
		if bytes.Contains(blob, []byte(`"errors"`)) {
			t.Fatalf("all-ok response carries errors key: %s", blob)
		}
		var br BatchDetectResponse
		if err := json.Unmarshal(blob, &br); err != nil {
			t.Fatal(err)
		}
		if len(br.Verdicts) != 2 || br.Errors != nil {
			t.Fatalf("got %d verdicts, errors %v", len(br.Verdicts), br.Errors)
		}
	})

	t.Run("mixed-observes-only-returned", func(t *testing.T) {
		// The store can't produce per-item divergence today (score has one
		// error mode and it hits every item), so the mixed case exercises
		// finishBatch directly: two scored items, one failed slot.
		sc := getScratch()
		defer putScratch(sc)
		sc.profile = append(sc.profile[:0], "test"...)
		sc.verdicts = growSlice(sc.verdicts, 3)
		sc.itemErrs = growSlice(sc.itemErrs, 3)
		e, err := svc.store.get("test")
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range []int{0, 2} {
			routes, _ := decodeRoutes([][]int{{0, 1, 2}, {0, 3, 2}})
			v, err := e.score(sam.Analyze(routes), true)
			if err != nil {
				t.Fatal(err)
			}
			sc.verdicts[i] = v
		}
		sc.itemErrs[1] = errUntrained

		before := svc.decisions.Recorded()
		status := svc.finishBatch(sc, "test")
		if status != http.StatusMultiStatus {
			t.Fatalf("status = %d, want 207", status)
		}
		if got := svc.decisions.Recorded() - before; got != 2 {
			t.Errorf("observed %d verdicts, want 2 (failed slot must not be observed)", got)
		}
		var br BatchDetectResponse
		if err := json.Unmarshal(sc.out, &br); err != nil {
			t.Fatalf("response %s: %v", sc.out, err)
		}
		if len(br.Verdicts) != 3 || len(br.Errors) != 3 {
			t.Fatalf("got %d verdicts / %d errors, want 3/3", len(br.Verdicts), len(br.Errors))
		}
		if br.Errors[0] != "" || br.Errors[2] != "" || br.Errors[1] == "" {
			t.Errorf("errors = %q, want failure only at slot 1", br.Errors)
		}
		if br.Verdicts[0].Decision == "" || br.Verdicts[2].Decision == "" {
			t.Errorf("scored slots lost their verdicts: %+v", br.Verdicts)
		}
	})
}

// TestDetectStream drives the NDJSON pipeline end to end over a real
// connection: responses arrive in request order, per-line failures don't
// kill the stream, and a lockstep client (read-after-every-write) never
// stalls on an unflushed response.
func TestDetectStream(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})

	t.Run("lockstep", func(t *testing.T) {
		pr, pw := io.Pipe()
		req, err := http.NewRequest("POST", ts.URL+"/v1/detect/stream", pr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content-type = %q", ct)
		}
		lines := []struct {
			in      string
			wantErr string
		}{
			{`{"profile":"test","routes":[[0,1,2],[0,3,2]]}`, ""},
			{`{"profile":"missing","routes":[[0,1,2]]}`, "unknown profile"},
			{`{"profile":"test","routes":[[0,`, "invalid JSON body"}, // malformed line: report, continue
			{`{"profile":"test","routes":[[0,4,2]],"update":false}`, ""},
			{`{"profile":"test","routes":[[0,1,2]],"explain":true}`, ""},
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for i, l := range lines {
			if _, err := io.WriteString(pw, l.in+"\n"); err != nil {
				t.Fatal(err)
			}
			if !sc.Scan() {
				t.Fatalf("line %d: stream ended early: %v", i, sc.Err())
			}
			var probe struct {
				Profile string          `json:"profile"`
				Verdict *VerdictJSON    `json:"verdict"`
				Explain json.RawMessage `json:"explain"`
				Error   string          `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Fatalf("line %d: bad JSON %q: %v", i, sc.Bytes(), err)
			}
			if l.wantErr == "" {
				if probe.Error != "" || probe.Verdict == nil {
					t.Fatalf("line %d: got %s, want verdict", i, sc.Bytes())
				}
			} else if !strings.Contains(probe.Error, l.wantErr) {
				t.Fatalf("line %d: error %q, want %q", i, probe.Error, l.wantErr)
			}
			if i == 4 && len(probe.Explain) == 0 {
				t.Fatalf("explain line missing record: %s", sc.Bytes())
			}
		}
		pw.Close()
		if sc.Scan() {
			t.Fatalf("unexpected trailing line: %s", sc.Bytes())
		}
	})

	t.Run("pipelined", func(t *testing.T) {
		const n = 500
		var buf bytes.Buffer
		for i := 0; i < n; i++ {
			fmt.Fprintf(&buf, `{"profile":"test","routes":[[0,%d,2],[0,3,2]]}`+"\n", i%7)
		}
		buf.WriteString("\n\n") // blank lines are skipped
		resp, err := http.Post(ts.URL+"/v1/detect/stream", "application/x-ndjson", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		got := 0
		for sc.Scan() {
			var dr DetectResponse
			if err := json.Unmarshal(sc.Bytes(), &dr); err != nil || dr.Profile != "test" {
				t.Fatalf("line %d: %q err %v", got, sc.Bytes(), err)
			}
			got++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("got %d response lines, want %d", got, n)
		}
	})

	t.Run("oversized-line-skipped", func(t *testing.T) {
		// An over-limit line is discarded up to its newline and answered
		// with an error line; the stream then continues, so the following
		// line still gets its own (here: unknown-profile) answer. The
		// service is untrained on purpose — only the per-line limit
		// (MaxBodyBytes) and realignment are under test.
		svc2 := New(Config{MaxBodyBytes: 256})
		small := httptest.NewServer(svc2.Handler())
		t.Cleanup(func() {
			small.Close()
			svc2.Close()
		})
		long := `{"profile":"test","routes":[[` + strings.Repeat("1,", 400) + `1]]}`
		body := long + "\n" + `{"profile":"test","routes":[[0,1,2]]}` + "\n"
		resp, err := http.Post(small.URL+"/v1/detect/stream", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(blob), []byte("\n"))
		if len(lines) != 2 {
			t.Fatalf("got %d lines, want 2 (oversized error + next answer): %s", len(lines), blob)
		}
		var er ErrorResponse
		if err := json.Unmarshal(lines[0], &er); err != nil || !strings.Contains(er.Error, "size limit") {
			t.Fatalf("line 0 = %s (err %v), want size-limit error", lines[0], err)
		}
		if err := json.Unmarshal(lines[1], &er); err != nil || !strings.Contains(er.Error, "unknown profile") {
			t.Fatalf("line 1 = %s (err %v), want unknown-profile error", lines[1], err)
		}
	})
}

// TestLineReaderLimitWithLargeBuffer pins that the per-line limit holds even
// when the pooled buffer is larger than the limit — a complete over-limit
// line arriving in one read must still answer errBodyTooLarge, with the
// reader aligned on the next line (regression: the limit was only enforced
// at refill time, so a big enough recycled buffer bypassed it).
func TestLineReaderLimitWithLargeBuffer(t *testing.T) {
	long := strings.Repeat("x", 1024)
	t.Run("terminated", func(t *testing.T) {
		lr := lineReader{
			r:     strings.NewReader(long + "\nnext\n"),
			buf:   make([]byte, 0, 1<<16), // recycled scratch, cap >> limit
			limit: 256,
		}
		if _, err := lr.next(); err != errBodyTooLarge {
			t.Fatalf("over-limit line: err = %v, want errBodyTooLarge", err)
		}
		line, err := lr.next()
		if err != nil || string(line) != "next" {
			t.Fatalf("after over-limit line: %q, %v, want \"next\"", line, err)
		}
		if _, err := lr.next(); err != io.EOF {
			t.Fatalf("end of stream: err = %v, want EOF", err)
		}
	})
	t.Run("unterminated-trailing", func(t *testing.T) {
		lr := lineReader{
			r:     strings.NewReader(long), // no newline, fits in one read
			buf:   make([]byte, 0, 1<<16),
			limit: 256,
		}
		if _, err := lr.next(); err != errBodyTooLarge {
			t.Fatalf("trailing over-limit line: err = %v, want errBodyTooLarge", err)
		}
	})
}
