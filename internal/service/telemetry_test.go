package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"samnet/internal/obs"
	"samnet/internal/sam"
)

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// familyBlock extracts every exposition line belonging to one metric family.
func familyBlock(text, name string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+"_") || strings.HasPrefix(line, name+" ") ||
			strings.HasPrefix(line, name+"{") ||
			strings.HasPrefix(line, "# HELP "+name+" ") || strings.HasPrefix(line, "# TYPE "+name+" ") {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestDetectExplainRoundTrip: a detect with "explain": true answers the full
// decision record — frequency table, statistics against thresholds, localized
// link — consistent with the verdict in the same response.
func TestDetectExplainRoundTrip(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/detect",
		mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, true, 6000)[0], Explain: true}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	var dr DetectResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	rec := dr.Explain
	if rec == nil {
		t.Fatal("explain requested but absent from the response")
	}
	if rec.Profile != "test" || rec.Decision != dr.Verdict.Decision || rec.Lambda != dr.Verdict.Lambda {
		t.Errorf("explain disagrees with the verdict: %+v vs %+v", rec, dr.Verdict)
	}
	if rec.PMax != dr.Verdict.PMax || rec.Phi != dr.Verdict.Phi || rec.TV != dr.Verdict.TV {
		t.Errorf("explain statistics disagree with the verdict: %+v", rec)
	}
	if rec.ZLow != 1.5 || rec.ZHigh != 4 || rec.TVLow != 0.3 || rec.TVHigh != 0.7 {
		t.Errorf("explain thresholds = %+v, want the sam defaults", rec)
	}
	if len(rec.Links) == 0 {
		t.Fatal("explain carries no frequency table")
	}
	for i := 1; i < len(rec.Links); i++ {
		if rec.Links[i].Count > rec.Links[i-1].Count {
			t.Fatalf("frequency table not sorted at row %d", i)
		}
	}
	if rec.Suspect != (obs.DecisionLink{A: dr.Verdict.Suspects[0], B: dr.Verdict.Suspects[1]}) {
		t.Errorf("localized link %+v disagrees with verdict suspects %v", rec.Suspect, dr.Verdict.Suspects)
	}
	// A route set through an armed wormhole must put the dominant link on top.
	if rec.Links[0].P != rec.PMax {
		t.Errorf("top table row p=%v, want p_max %v", rec.Links[0].P, rec.PMax)
	}

	// A detect without explain answers no record.
	_, body = postJSON(t, ts.URL+"/v1/detect",
		mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, false, 5000)[0]}))
	if strings.Contains(string(body), `"explain"`) {
		t.Error("explain present without being requested")
	}
}

// TestDebugDecisions: scored route sets appear in GET /debug/decisions in
// sequence order, labelled with their profile.
func TestDebugDecisions(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	for i, set := range genSets(3, false, 7000) {
		resp, body := postJSON(t, ts.URL+"/v1/detect", mustJSON(t, DetectRequest{Profile: "test", Routes: set}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %d: %d %s", i, resp.StatusCode, body)
		}
	}
	var dec DecisionsResponse
	getJSON(t, ts.URL+"/debug/decisions", &dec)
	if !dec.Enabled || dec.Capacity != 256 {
		t.Errorf("ring state = enabled %v cap %d, want enabled cap 256", dec.Enabled, dec.Capacity)
	}
	if dec.Recorded != 3 || len(dec.Decisions) != 3 {
		t.Fatalf("recorded %d / returned %d decisions, want 3/3", dec.Recorded, len(dec.Decisions))
	}
	for i, d := range dec.Decisions {
		if d.Seq != uint64(i+1) {
			t.Errorf("decision %d has seq %d, want %d", i, d.Seq, i+1)
		}
		if d.Profile != "test" || d.Decision == "" {
			t.Errorf("decision %d incomplete: %+v", i, d)
		}
	}
}

// TestDecisionCaptureDisabled: DecisionBuffer < 0 disables the ring but
// leaves per-request explain working.
func TestDecisionCaptureDisabled(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{DecisionBuffer: -1})
	_, body := postJSON(t, ts.URL+"/v1/detect",
		mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, false, 5000)[0], Explain: true}))
	var dr DetectResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Explain == nil {
		t.Error("explain must still work with capture disabled")
	}
	var dec DecisionsResponse
	getJSON(t, ts.URL+"/debug/decisions", &dec)
	if dec.Enabled || dec.Capacity != 0 || dec.Recorded != 0 || len(dec.Decisions) != 0 {
		t.Errorf("disabled ring leaked state: %+v", dec)
	}
}

// TestDeleteProfile: eviction over the API frees the name, answers 404 on a
// second delete, and shows up in the eviction counter and profile gauge.
func TestDeleteProfile(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	del := func() *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/profiles/test", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := del(); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d, want 200", resp.StatusCode)
	}
	if resp := del(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete = %d, want 404", resp.StatusCode)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/detect",
		mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, false, 5000)[0]}))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("detect after eviction = %d, want 404", resp.StatusCode)
	}
	text := scrape(t, ts.URL)
	for _, want := range []string{
		`samserve_profile_evictions_total{reason="delete"} 1`,
		"samserve_profiles 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestMetricsGoldenDetectExposition pins the Prometheus form of the detect
// histograms: after two scored route sets, the samserve_detect_pmax family
// must render exactly as cumulative le buckets, a +Inf bucket, _sum and
// _count — computed here from the very values the API reported.
func TestMetricsGoldenDetectExposition(t *testing.T) {
	ts, _ := newTrainedServer(t, Config{})
	var pmaxes []float64
	decisions := map[string]int{}
	for _, set := range [][][]int{genSets(1, false, 5000)[0], genSets(1, true, 6000)[0]} {
		_, body := postJSON(t, ts.URL+"/v1/detect",
			mustJSON(t, DetectRequest{Profile: "test", Routes: set, Explain: true}))
		var dr DetectResponse
		if err := json.Unmarshal(body, &dr); err != nil {
			t.Fatal(err)
		}
		pmaxes = append(pmaxes, dr.Explain.PMax)
		decisions[dr.Explain.Decision]++
	}

	var want strings.Builder
	want.WriteString("# HELP samserve_detect_pmax Observed p_max (max link relative frequency) per scored route set.\n")
	want.WriteString("# TYPE samserve_detect_pmax histogram\n")
	sum := 0.0
	for _, p := range pmaxes {
		sum += p
	}
	for _, bound := range obs.RatioBuckets {
		cum := 0
		for _, p := range pmaxes {
			if p <= bound {
				cum++
			}
		}
		fmt.Fprintf(&want, "samserve_detect_pmax_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	fmt.Fprintf(&want, "samserve_detect_pmax_bucket{le=\"+Inf\"} %d\n", len(pmaxes))
	fmt.Fprintf(&want, "samserve_detect_pmax_sum %g\n", sum)
	fmt.Fprintf(&want, "samserve_detect_pmax_count %d\n", len(pmaxes))

	text := scrape(t, ts.URL)
	if got := familyBlock(text, "samserve_detect_pmax"); got != want.String() {
		t.Errorf("samserve_detect_pmax family:\n%s--- want ---\n%s", got, want.String())
	}
	for decision, n := range decisions {
		line := fmt.Sprintf("samserve_detections_total{decision=%q} %d", decision, n)
		if !strings.Contains(text, line) {
			t.Errorf("metrics exposition missing %q", line)
		}
	}
}

// TestDetectTelemetryOffZeroAlloc is the hard constraint from the telemetry
// design: with decision capture disabled, the full per-verdict telemetry path
// (histograms, counters, ring check) adds zero allocations over scoring
// alone.
func TestDetectTelemetryOffZeroAlloc(t *testing.T) {
	svc := New(Config{DecisionBuffer: -1})
	defer svc.Close()
	sets, err := decodeRouteSets(genSets(20, false, 1000))
	if err != nil {
		t.Fatal(err)
	}
	e := svc.store.getOrCreate("test")
	if _, err := e.train(sets); err != nil {
		t.Fatal(err)
	}
	routes, err := decodeRoutes(genSets(1, true, 6000)[0])
	if err != nil {
		t.Fatal(err)
	}
	st := sam.Analyze(routes)

	base := testing.AllocsPerRun(500, func() {
		if _, err := e.score(st, false); err != nil {
			t.Fatal(err)
		}
	})
	withTelemetry := testing.AllocsPerRun(500, func() {
		v, err := e.score(st, false)
		if err != nil {
			t.Fatal(err)
		}
		svc.observe("test", v, false, "")
	})
	if withTelemetry != base {
		t.Errorf("disabled telemetry costs %.1f allocs/op over the %.1f baseline, want 0 extra",
			withTelemetry-base, base)
	}
}

// BenchmarkDetectNoTelemetry measures the scoring hot path with capture off —
// the steady-state cost a production deployment pays per route set.
func BenchmarkDetectNoTelemetry(b *testing.B) {
	svc := New(Config{DecisionBuffer: -1})
	defer svc.Close()
	sets, err := decodeRouteSets(genSets(20, false, 1000))
	if err != nil {
		b.Fatal(err)
	}
	e := svc.store.getOrCreate("test")
	if _, err := e.train(sets); err != nil {
		b.Fatal(err)
	}
	routes, err := decodeRoutes(genSets(1, true, 6000)[0])
	if err != nil {
		b.Fatal(err)
	}
	st := sam.Analyze(routes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := e.score(st, false)
		if err != nil {
			b.Fatal(err)
		}
		svc.observe("test", v, false, "")
	}
}
