package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

// TestHealthzReadiness pins the enriched /healthz body: a gateway gates
// traffic on these fields, so their presence and semantics are contract.
func TestHealthzReadiness(t *testing.T) {
	ts, svc := newTrainedServer(t, Config{})

	get := func() HealthzResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %s", resp.Status)
		}
		var h HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := get()
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if h.Profiles != 1 {
		t.Fatalf("profiles = %d, want 1 (trained profile resident)", h.Profiles)
	}
	if h.QueueDepth != 0 {
		t.Fatalf("queue_depth = %d, want 0 at idle", h.QueueDepth)
	}
	if h.SnapshotAgeS != -1 {
		t.Fatalf("snapshot_age_s = %v, want -1 before any snapshot", h.SnapshotAgeS)
	}

	if _, err := svc.SaveSnapshot(filepath.Join(t.TempDir(), "state.jsonl")); err != nil {
		t.Fatal(err)
	}
	if h = get(); h.SnapshotAgeS < 0 {
		t.Fatalf("snapshot_age_s = %v after a snapshot, want >= 0", h.SnapshotAgeS)
	}
}

// TestPutProfileRoundTrip ships a snapshot record between two services the
// way the cluster sync does — GET from the holder, PUT to the owner — and
// requires the destination's export to be byte-identical to the source's.
func TestPutProfileRoundTrip(t *testing.T) {
	src, _ := newTrainedServer(t, Config{})

	// Drift the adaptive means so the record carries real filter state.
	set := genSets(1, false, 9000)[0]
	if resp, _ := postJSON(t, src.URL+"/v1/detect", mustJSON(t, DetectRequest{Profile: "test", Routes: set})); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d", resp.StatusCode)
	}

	record := getBody(t, src.URL+"/v1/profiles/test")

	dstSvc := New(Config{})
	defer dstSvc.Close()
	dst := newTestServer(t, dstSvc)

	resp := putJSON(t, dst.URL+"/v1/profiles/test", record)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	if got := getBody(t, dst.URL+"/v1/profiles/test"); !bytes.Equal(got, record) {
		t.Fatalf("shipped record drifted:\n src: %s\n dst: %s", record, got)
	}

	// The shipped profile must also score: the record is complete state.
	if resp, body := postJSON(t, dst.URL+"/v1/detect", mustJSON(t, DetectRequest{Profile: "test", Routes: set})); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect on shipped profile: %d: %s", resp.StatusCode, body)
	}
}

// TestPutProfileRejections pins the PUT validation contract.
func TestPutProfileRejections(t *testing.T) {
	src, _ := newTrainedServer(t, Config{})
	record := getBody(t, src.URL+"/v1/profiles/test")

	dstSvc := New(Config{})
	defer dstSvc.Close()
	dst := newTestServer(t, dstSvc)

	// A record naming a different profile than the path is refused.
	if resp := putJSON(t, dst.URL+"/v1/profiles/other", record); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("name-mismatch PUT: %d, want 400", resp.StatusCode)
	}
	// A record with no profile document is refused.
	if resp := putJSON(t, dst.URL+"/v1/profiles/test", []byte(`{"name":"test","runs":3}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("profile-less PUT: %d, want 400", resp.StatusCode)
	}
	// Garbage is refused.
	if resp := putJSON(t, dst.URL+"/v1/profiles/test", []byte(`{`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT: %d, want 400", resp.StatusCode)
	}
	if dstSvc.store.count() != 0 {
		t.Fatalf("rejected PUTs left %d profiles resident", dstSvc.store.count())
	}
}

func newTestServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

func putJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp
}
