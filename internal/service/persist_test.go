package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samnet/internal/sam"
)

// adaptServer trains "test" and drifts its adaptive means with updating
// detects, so persistence tests exercise state beyond the trained profile.
func adaptServer(t *testing.T, cfg Config) (string, *Service) {
	t.Helper()
	ts, svc := newTrainedServer(t, cfg)
	for i, set := range genSets(5, false, 9000) {
		resp, _ := postJSON(t, ts.URL+"/v1/detect",
			mustJSON(t, DetectRequest{Profile: "test", Routes: set}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("adapt detect %d: %s", i, resp.Status)
		}
	}
	return ts.URL, svc
}

func getProfileBody(t *testing.T, url, name string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/profiles/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get profile %q: %s", name, resp.Status)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// TestSnapshotRoundTrip is the durability contract end to end: a trained,
// adapted service snapshots to disk; a fresh service restores the file; the
// exported profile document (trained state + adaptive means) and the verdicts
// of a fixed probe are identical across the restart.
func TestSnapshotRoundTrip(t *testing.T) {
	url1, svc1 := adaptServer(t, Config{})
	path := filepath.Join(t.TempDir(), "state.jsonl")
	n, err := svc1.SaveSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("snapshot wrote %d profiles, want 1", n)
	}
	before := getProfileBody(t, url1, "test")

	svc2 := New(Config{})
	ts2 := httptest.NewServer(svc2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		svc2.Close()
	})
	st, err := svc2.RestoreSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.Skipped != 0 {
		t.Fatalf("restore stats = %+v, want 1 restored 0 skipped", st)
	}
	after := getProfileBody(t, ts2.URL, "test")
	if !bytes.Equal(before, after) {
		t.Fatalf("profile changed across snapshot/restore:\n before %s\n after  %s", before, after)
	}

	// The same probe, scored without updating, must answer identically.
	probe := mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, true, 12000)[0],
		Update: new(bool)})
	_, want := postJSON(t, url1+"/v1/detect", probe)
	_, got := postJSON(t, ts2.URL+"/v1/detect", probe)
	if !bytes.Equal(want, got) {
		t.Fatalf("verdict changed across snapshot/restore:\n before %s\n after  %s", want, got)
	}
}

// TestSnapshotAtomicOverwrite: saving over an existing snapshot leaves no
// temp debris and the file always parses completely.
func TestSnapshotAtomicOverwrite(t *testing.T) {
	_, svc := adaptServer(t, Config{})
	dir := t.TempDir()
	path := filepath.Join(dir, "state.jsonl")
	for i := 0; i < 3; i++ {
		if _, err := svc.SaveSnapshot(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.jsonl" {
		t.Fatalf("snapshot dir holds %v, want only state.jsonl", entries)
	}
	svc2 := New(Config{})
	defer svc2.Close()
	st, err := svc2.RestoreSnapshot(path)
	if err != nil || st.Restored != 1 || st.Skipped != 0 {
		t.Fatalf("restore = %+v, %v", st, err)
	}
}

// TestSnapshotTruncation is the crash-recovery guarantee: for every possible
// truncation point of a multi-profile snapshot, restore installs exactly the
// complete records before the cut and never errors out of the boot.
func TestSnapshotTruncation(t *testing.T) {
	p := benchProfile(t, "seed", 2000)
	var full bytes.Buffer
	if err := WriteSnapshotHeader(&full); err != nil {
		t.Fatal(err)
	}
	const profiles = 4
	for i := 0; i < profiles; i++ {
		q := p.Clone()
		q.Label = fmt.Sprintf("p%d", i)
		rec := ProfileResponse{Name: q.Label, Runs: q.Runs,
			PMaxMean: q.PMax.Mean, PhiMean: q.Phi.Mean, Profile: q}
		if err := WriteSnapshotRecord(&full, rec); err != nil {
			t.Fatal(err)
		}
	}
	blob := full.Bytes()
	headerLen := bytes.IndexByte(blob, '\n') + 1

	// Complete record boundaries, to know how many profiles a prefix holds.
	var bounds []int
	for off := headerLen; ; {
		i := bytes.IndexByte(blob[off:], '\n')
		if i < 0 {
			break
		}
		off += i + 1
		bounds = append(bounds, off)
	}
	if len(bounds) != profiles {
		t.Fatalf("found %d record boundaries, want %d", len(bounds), profiles)
	}

	for cut := headerLen; cut <= len(blob); cut++ {
		// A record is complete when all its content bytes fit under the cut;
		// the trailing newline is optional because the scanner yields a final
		// unterminated line.
		complete := 0
		for _, b := range bounds {
			if b-1 <= cut {
				complete++
			}
		}
		fresh := New(Config{})
		st, err := fresh.ReadSnapshot(bytes.NewReader(blob[:cut]))
		if err != nil {
			t.Fatalf("cut %d: restore errored: %v", cut, err)
		}
		if st.Restored != complete {
			t.Fatalf("cut %d: restored %d profiles, want %d (skipped %d, last %v)",
				cut, st.Restored, complete, st.Skipped, st.LastError)
		}
		lastWhole := headerLen
		if complete > 0 {
			lastWhole = bounds[complete-1] // position after the record's newline
		}
		if torn := cut > lastWhole; torn && st.Skipped == 0 {
			t.Fatalf("cut %d: torn tail not counted as skipped", cut)
		}
		fresh.Close()
	}
}

// TestSnapshotHeaderStrict: a file that is not a known snapshot restores
// nothing — wrong magic, wrong version, or garbage first line all refuse.
func TestSnapshotHeaderStrict(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	for _, in := range []string{
		"",
		"not json\n",
		`{"format":"other","version":1}` + "\n",
		`{"format":"samserve-snapshot","version":99}` + "\n",
	} {
		st, err := svc.ReadSnapshot(strings.NewReader(in))
		if err == nil {
			t.Errorf("header %q: restore accepted", in)
		}
		if st.Restored != 0 {
			t.Errorf("header %q: restored %d profiles", in, st.Restored)
		}
	}
}

// TestSnapshotBadRecords: invalid records (garbage JSON, missing profile,
// out-of-domain means) are skipped and counted while valid neighbours — before
// and after — restore.
func TestSnapshotBadRecords(t *testing.T) {
	p := benchProfile(t, "ok", 3000)
	good := func(name string) string {
		return mustJSONT(t, ProfileResponse{Name: name, Runs: p.Runs, PMaxMean: 0.5, PhiMean: 0.5, Profile: p})
	}
	in := strings.Join([]string{
		`{"format":"samserve-snapshot","version":1}`,
		good("a"),
		`{"name":"no-profile","runs":3}`,
		`{broken`,
		`{"name":"bad-mean","runs":1,"adaptive_pmax_mean":1.5,"adaptive_phi_mean":0.2,"profile":` + mustJSONT(t, p) + `}`,
		good("b"),
		"",
	}, "\n")
	svc := New(Config{})
	defer svc.Close()
	st, err := svc.ReadSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 2 || st.Skipped != 3 {
		t.Fatalf("stats = %+v, want 2 restored 3 skipped", st)
	}
	if st.LastError == nil || !strings.Contains(st.LastError.Error(), "line") {
		t.Fatalf("LastError = %v, want line-numbered cause", st.LastError)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := svc.store.get(name); err != nil {
			t.Errorf("profile %q did not restore: %v", name, err)
		}
	}
}

func mustJSONT(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// FuzzSnapshotRestore: arbitrary bytes must never panic the restore path, and
// everything it reports restored must actually be resident and scoreable.
func FuzzSnapshotRestore(f *testing.F) {
	var seed bytes.Buffer
	WriteSnapshotHeader(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte(`{"format":"samserve-snapshot","version":1}` + "\n" +
		`{"name":"p","runs":2,"adaptive_pmax_mean":0.4,"adaptive_phi_mean":0.1,` +
		`"profile":{"label":"p","runs":2,"pmax":{"N":2,"Mean":0.4},"phi":{"N":2,"Mean":0.1},` +
		`"pmf_counts":[1,1],"pmf_total":2}}` + "\n"))
	f.Add([]byte("{}\n{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		svc := New(Config{Shards: 2})
		defer svc.Close()
		st, err := svc.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // refused outright; nothing may be resident
		}
		// Duplicate names overwrite in place, so residency can be below the
		// restored count but never above it.
		names := svc.store.names()
		if len(names) > st.Restored {
			t.Fatalf("restored %d but %d resident", st.Restored, len(names))
		}
		for _, name := range names {
			e, err := svc.store.get(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, _, err := e.snapshot(); err != nil {
				t.Fatalf("restored profile %q not snapshotable: %v", name, err)
			}
		}
	})
}

// benchProfile trains a small real profile directly (no HTTP) for tests and
// benchmarks that need raw records.
func benchProfile(tb testing.TB, label string, seedBase uint64) *sam.Profile {
	tb.Helper()
	tr := sam.NewTrainer(label, 0)
	sets, err := decodeRouteSets(genSets(6, false, seedBase))
	if err != nil {
		tb.Fatal(err)
	}
	for _, set := range sets {
		tr.ObserveRoutes(set)
	}
	p, err := tr.Profile()
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// benchService builds a service holding n trained profiles.
func benchService(b *testing.B, n int) *Service {
	b.Helper()
	svc := New(Config{})
	b.Cleanup(svc.Close)
	p := benchProfile(b, "bench", 4000)
	for i := 0; i < n; i++ {
		q := p.Clone()
		q.Label = fmt.Sprintf("bench-%03d", i)
		if err := svc.RestoreProfile(q.Label, q, q.PMax.Mean, q.Phi.Mean); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

func BenchmarkSnapshotWrite(b *testing.B) {
	svc := benchService(b, 128)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		n, err := svc.WriteSnapshot(&buf)
		if err != nil || n != 128 {
			b.Fatalf("wrote %d profiles, err %v", n, err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSnapshotRestore(b *testing.B) {
	svc := benchService(b, 128)
	var buf bytes.Buffer
	if _, err := svc.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := New(Config{})
		st, err := fresh.ReadSnapshot(bytes.NewReader(blob))
		if err != nil || st.Restored != 128 {
			b.Fatalf("restored %d, err %v", st.Restored, err)
		}
		fresh.Close()
	}
}
