package service

// Serving-path benchmarks: the first perf baseline for the detection
// service. They exercise the full handler stack (mux, body limit, JSON
// decode, analysis, locked scoring, JSON encode) without real sockets, so
// the numbers isolate service cost from kernel networking.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchHandler returns the handler of a service trained on 20 normal
// cluster discoveries, plus a marshalled detect body for the given batch
// size (0 = single-detect request).
func benchHandler(b *testing.B, cfg Config, batch int) (http.Handler, []byte, string) {
	b.Helper()
	svc := New(cfg)
	b.Cleanup(svc.Close)
	mux := svc.Handler()

	trainBody, err := json.Marshal(TrainRequest{RouteSets: genSets(20, false, 1000)})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/profiles/bench/train", bytes.NewReader(trainBody))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("train: %d %s", rec.Code, rec.Body)
	}

	set := genSets(1, true, 5000)[0]
	if batch == 0 {
		body, err := json.Marshal(DetectRequest{Profile: "bench", Routes: set})
		if err != nil {
			b.Fatal(err)
		}
		return mux, body, "/v1/detect"
	}
	items := make([][][]int, batch)
	for i := range items {
		items[i] = set
	}
	body, err := json.Marshal(BatchDetectRequest{Profile: "bench", Items: items})
	if err != nil {
		b.Fatal(err)
	}
	return mux, body, "/v1/detect/batch"
}

// BenchmarkServiceDetect measures one /v1/detect request through the full
// handler stack.
func BenchmarkServiceDetect(b *testing.B) {
	mux, body, path := benchHandler(b, Config{}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServiceDetectParallel measures contended single-detect scoring:
// every request serializes on the same profile's mutex, the shape a hot
// production profile sees.
func BenchmarkServiceDetectParallel(b *testing.B) {
	mux, body, path := benchHandler(b, Config{}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", path, bytes.NewReader(body))
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}

// BenchmarkServiceDetectBatch measures a 16-item /v1/detect/batch request:
// per-op cost includes fan-out over the worker pool and the barrier wait.
func BenchmarkServiceDetectBatch(b *testing.B) {
	mux, body, path := benchHandler(b, Config{QueueDepth: 1 << 16}, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "sets/s")
}

// BenchmarkServiceAnalyze measures the stateless analyze endpoint.
func BenchmarkServiceAnalyze(b *testing.B) {
	svc := New(Config{})
	b.Cleanup(svc.Close)
	mux := svc.Handler()
	body, err := json.Marshal(AnalyzeRequest{Routes: genSets(1, true, 5000)[0]})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
