package service

// Serving-path benchmarks: the perf baseline for the detection service.
// They exercise the full handler stack (mux dispatch, instrumentation, body
// read, wire decode, analysis, locked scoring, wire encode) without real
// sockets, so the numbers isolate service cost from kernel networking.
//
// The request and response writer are reused across iterations — httptest's
// per-iteration NewRequest/NewRecorder used to contribute ~15 allocs/op of
// pure harness noise, which would mask the serving path's own allocation
// behaviour that BenchmarkServiceDetect exists to pin (CI fails it above
// 9 allocs/op).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchHandler returns the handler of a service trained on 20 normal
// cluster discoveries, plus a marshalled detect body for the given batch
// size (0 = single-detect request).
func benchHandler(b *testing.B, cfg Config, batch int) (http.Handler, []byte, string) {
	b.Helper()
	svc := New(cfg)
	b.Cleanup(svc.Close)
	mux := svc.Handler()

	trainBody, err := json.Marshal(TrainRequest{RouteSets: genSets(20, false, 1000)})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/profiles/bench/train", bytes.NewReader(trainBody))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("train: %d %s", rec.Code, rec.Body)
	}

	set := genSets(1, true, 5000)[0]
	if batch == 0 {
		body, err := json.Marshal(DetectRequest{Profile: "bench", Routes: set})
		if err != nil {
			b.Fatal(err)
		}
		return mux, body, "/v1/detect"
	}
	items := make([][][]int, batch)
	for i := range items {
		items[i] = set
	}
	body, err := json.Marshal(BatchDetectRequest{Profile: "bench", Items: items})
	if err != nil {
		b.Fatal(err)
	}
	return mux, body, "/v1/detect/batch"
}

// rewindBody adapts a rewindable bytes.Reader as a request body.
type rewindBody struct{ *bytes.Reader }

func (rewindBody) Close() error { return nil }

// discardWriter is a reusable ResponseWriter that drops the body.
type discardWriter struct {
	h      http.Header
	status int
	bytes  int
}

func (w *discardWriter) Header() http.Header { return w.h }
func (w *discardWriter) Write(b []byte) (int, error) {
	w.bytes += len(b)
	return len(b), nil
}
func (w *discardWriter) WriteHeader(code int) { w.status = code }

// benchRequest builds one reusable request/writer pair for path and body.
func benchRequest(path string, body []byte) (*http.Request, *bytes.Reader, *discardWriter) {
	rd := bytes.NewReader(body)
	req := httptest.NewRequest("POST", path, nil)
	req.Body = rewindBody{rd}
	req.ContentLength = int64(len(body))
	return req, rd, &discardWriter{h: make(http.Header)}
}

// BenchmarkServiceDetect measures one /v1/detect request through the full
// handler stack. CI pins its allocs/op at single digits (≤ 9).
func BenchmarkServiceDetect(b *testing.B) {
	mux, body, path := benchHandler(b, Config{}, 0)
	req, rd, w := benchRequest(path, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}

// BenchmarkServiceDetectParallel measures contended single-detect scoring:
// every request serializes on the same profile's mutex, the shape a hot
// production profile sees.
func BenchmarkServiceDetectParallel(b *testing.B) {
	mux, body, path := benchHandler(b, Config{}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req, rd, w := benchRequest(path, body)
		for pb.Next() {
			rd.Reset(body)
			w.status = 0
			mux.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
	})
}

// BenchmarkServiceDetectBatch measures a 16-item /v1/detect/batch request:
// per-op cost includes fan-out over the worker pool and the barrier wait.
func BenchmarkServiceDetectBatch(b *testing.B) {
	mux, body, path := benchHandler(b, Config{QueueDepth: 1 << 16}, 16)
	req, rd, w := benchRequest(path, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "sets/s")
}

// BenchmarkServiceAnalyze measures the stateless analyze endpoint.
func BenchmarkServiceAnalyze(b *testing.B) {
	svc := New(Config{})
	b.Cleanup(svc.Close)
	mux := svc.Handler()
	body, err := json.Marshal(AnalyzeRequest{Routes: genSets(1, true, 5000)[0]})
	if err != nil {
		b.Fatal(err)
	}
	req, rd, w := benchRequest("/v1/analyze", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}
