package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"samnet/internal/obs"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// TestDetectTracePropagation pins the single-process trace contract: a
// traced detect continues the caller's trace, parents its span under the
// caller's span id, echoes the continuation header in the response, surfaces
// the span on /debug/traces, and stamps the trace id on the ring-side
// decision record.
func TestDetectTracePropagation(t *testing.T) {
	tracer := obs.NewTracer(64, 0)
	ts, svc := newTrainedServer(t, Config{Tracer: tracer})
	body := mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, true, 5000)[0]})

	req, err := http.NewRequest("POST", ts.URL+"/v1/detect", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %s", resp.Status)
	}

	// The response announces the server span, continuing the client's trace.
	echo := resp.Header.Get("Traceparent")
	et, es, ok := obs.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent unparseable: %q", echo)
	}
	if et.String() != testTraceID {
		t.Fatalf("response trace = %s, want %s", et, testTraceID)
	}

	var detectSpan *obs.Span
	for _, sp := range tracer.Snapshot() {
		if sp.Name == "detect" && sp.TraceID == testTraceID {
			detectSpan = &sp
			break
		}
	}
	if detectSpan == nil {
		t.Fatalf("no detect span for trace %s in %+v", testTraceID, tracer.Snapshot())
	}
	if detectSpan.Parent != "00f067aa0ba902b7" {
		t.Fatalf("detect span parent = %q, want client span id", detectSpan.Parent)
	}
	if detectSpan.SpanID != es.String() {
		t.Fatalf("span id %q does not match response header %q", detectSpan.SpanID, es)
	}
	if detectSpan.Status != http.StatusOK || detectSpan.DurationNS <= 0 {
		t.Fatalf("span not finished properly: %+v", detectSpan)
	}

	// The decision ring links the verdict to the trace...
	decisions := svc.Decisions().Snapshot()
	if len(decisions) == 0 || decisions[len(decisions)-1].TraceID != testTraceID {
		t.Fatalf("decision record missing trace id: %+v", decisions)
	}

	// ...and /debug/traces?trace= filters to it.
	dbg, err := http.Get(ts.URL + "/debug/traces?trace=" + testTraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Body.Close()
	var tresp obs.TracesResponse
	if err := json.NewDecoder(dbg.Body).Decode(&tresp); err != nil {
		t.Fatal(err)
	}
	if !tresp.Enabled || len(tresp.Spans) == 0 {
		t.Fatalf("debug traces empty: %+v", tresp)
	}
	for _, sp := range tresp.Spans {
		if sp.TraceID != testTraceID {
			t.Fatalf("filter leaked span %+v", sp)
		}
	}
}

// TestDetectResponseBytesIdenticalWithTracing pins the hard constraint from
// PRs 2–7 carried into tracing: response bodies are bitwise identical with
// tracing on or off, for plain, explain, and batch detect. Only headers may
// differ (the traceparent echo).
func TestDetectResponseBytesIdenticalWithTracing(t *testing.T) {
	tsOff, _ := newTrainedServer(t, Config{})
	tsOn, _ := newTrainedServer(t, Config{Tracer: obs.NewTracer(64, time.Nanosecond)})

	attacked := genSets(1, true, 5000)[0]
	bodies := []string{
		mustJSON(t, DetectRequest{Profile: "test", Routes: attacked}),
		`{"profile":"test","routes":` + mustJSON(t, attacked) + `,"explain":true}`,
		`{"profile":"test","route_sets":[` + mustJSON(t, attacked) + `,` + mustJSON(t, attacked) + `]}`,
		`{"profile":"nosuch","routes":` + mustJSON(t, attacked) + `}`,
	}
	paths := []string{"/v1/detect", "/v1/detect", "/v1/detect/batch", "/v1/detect"}
	for i, body := range bodies {
		respOff, gotOff := postJSON(t, tsOff.URL+paths[i], body)
		respOn, gotOn := postJSON(t, tsOn.URL+paths[i], body)
		if respOff.StatusCode != respOn.StatusCode {
			t.Errorf("case %d: status %d (off) vs %d (on)", i, respOff.StatusCode, respOn.StatusCode)
		}
		if !bytes.Equal(gotOff, gotOn) {
			t.Errorf("case %d: bodies differ with tracing:\noff: %s\non:  %s", i, gotOff, gotOn)
		}
		if i < 2 && respOn.Header.Get("Traceparent") == "" {
			t.Errorf("case %d: traced response missing traceparent echo", i)
		}
	}
}

// TestStreamPerLineSpans pins the pipeline contract: each scored stream line
// gets its own child span under the stream request's span, all in one trace.
func TestStreamPerLineSpans(t *testing.T) {
	tracer := obs.NewTracer(64, 0)
	ts, _ := newTrainedServer(t, Config{Tracer: tracer})
	line := mustJSON(t, DetectRequest{Profile: "test", Routes: genSets(1, false, 7000)[0]})
	input := line + "\n" + line + "\n" + line + "\n"

	req, err := http.NewRequest("POST", ts.URL+"/v1/detect/stream", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		if strings.Contains(scan.Text(), `"error"`) {
			t.Fatalf("stream error line: %s", scan.Text())
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d response lines, want 3", lines)
	}

	var streamSpan string
	var lineSpans []obs.Span
	for _, sp := range tracer.Snapshot() {
		switch sp.Name {
		case "detect_stream":
			streamSpan = sp.SpanID
		case "detect_stream_line":
			lineSpans = append(lineSpans, sp)
		}
	}
	if streamSpan == "" {
		t.Fatalf("no stream request span in %+v", tracer.Snapshot())
	}
	if len(lineSpans) != 3 {
		t.Fatalf("got %d line spans, want 3", len(lineSpans))
	}
	for _, sp := range lineSpans {
		if sp.TraceID != testTraceID {
			t.Errorf("line span in foreign trace: %+v", sp)
		}
		if sp.Parent != streamSpan {
			t.Errorf("line span parent = %q, want stream span %q", sp.Parent, streamSpan)
		}
	}
}

// TestDetectTracingDisabledZeroAlloc extends the zero-alloc pin to a service
// built with a tracer that is present but switched off: the tracing branch
// must cost its one atomic load and nothing else.
func TestDetectTracingDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a quarter of Puts under the race detector, so pooled-path allocation counts are meaningless")
	}
	tracer := obs.NewTracer(16, 0)
	tracer.SetEnabled(false)
	svc := New(Config{DecisionBuffer: -1, Tracer: tracer})
	t.Cleanup(svc.Close)
	mux := svc.Handler()

	trainBody, err := json.Marshal(TrainRequest{RouteSets: genSets(20, false, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/profiles/zero/train", bytes.NewReader(trainBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("train: %d %s", rec.Code, rec.Body)
	}
	body, err := json.Marshal(DetectRequest{Profile: "zero", Routes: genSets(1, true, 5000)[0]})
	if err != nil {
		t.Fatal(err)
	}
	req, rd, w := benchRequest("/v1/detect", body)
	for i := 0; i < 8; i++ {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		w.status = 0
		mux.ServeHTTP(w, req)
	}); got > 2 {
		t.Errorf("detect with disabled tracer allocates %.1f times per op, want <= 2", got)
	}
}
