package service

// Append-style response encoding for the serving hot paths. encoding/json's
// Encoder costs ~60 allocations per detect response (reflection walk, field
// buffering, HTML-escape scanning); the functions here build the identical
// bytes with strconv.Append* into a caller-owned (pooled) buffer instead.
//
// The contract is byte identity: for every response type encoded here,
// appendX(nil, v) must equal json.NewEncoder(buf).Encode(v)'s output —
// including the HTML escaping of < > &, encoding/json's float format, and
// the trailing newline Encode emits. TestAppendEncodersGolden pins this
// against the standard library for every type, so the old and new wire
// formats can never drift apart. Strings that need any escaping fall back
// to encoding/json itself (cold path), which makes the identity claim easy
// to trust: the fast path only covers bytes that encode as themselves.

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"unicode/utf8"
)

// Content-Type header values pre-allocated as one-element slices: direct map
// assignment (w.Header()[k] = v) skips the per-request slice allocation that
// Header().Set would pay. The slices must never be mutated.
var (
	ctJSON   = []string{"application/json"}
	ctNDJSON = []string{"application/x-ndjson"}
)

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, %f style inside [1e-6, 1e21), %e style with a
// minimal exponent outside it. encoding/json refuses non-finite values
// (failing the whole encode); the detector only produces finite statistics,
// so a non-finite input encodes as 0 rather than corrupting the stream.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(b, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims a leading zero off negative exponents
		// ("2.5e-07" -> "2.5e-7").
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// jsonStringSafe reports whether byte c encodes as itself inside a JSON
// string under encoding/json's default (HTML-escaping) encoder.
func jsonStringSafe(c byte) bool {
	return c >= 0x20 && c < utf8.RuneSelf &&
		c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

// appendJSONString appends s as a JSON string. The fast path covers plain
// ASCII that needs no escaping; anything else delegates to encoding/json so
// escapes, invalid UTF-8 and HTML characters stay byte-identical by
// construction.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if !jsonStringSafe(s[i]) {
			blob, err := json.Marshal(s)
			if err != nil { // unreachable: a string always marshals
				return append(b, `""`...)
			}
			return append(b, blob...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONStringBytes is appendJSONString for a name still sitting in a
// pooled request buffer.
func appendJSONStringBytes(b, s []byte) []byte {
	for i := 0; i < len(s); i++ {
		if !jsonStringSafe(s[i]) {
			blob, err := json.Marshal(string(s))
			if err != nil {
				return append(b, `""`...)
			}
			return append(b, blob...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

func appendLinkJSON(b []byte, l LinkJSON) []byte {
	b = append(b, `{"a":`...)
	b = strconv.AppendInt(b, int64(l.A), 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, int64(l.B), 10)
	return append(b, '}')
}

// appendVerdict appends one VerdictJSON object, fields in struct order.
func appendVerdict(b []byte, v VerdictJSON) []byte {
	b = append(b, `{"decision":`...)
	b = appendJSONString(b, v.Decision)
	b = append(b, `,"lambda":`...)
	b = appendJSONFloat(b, v.Lambda)
	b = append(b, `,"z_pmax":`...)
	b = appendJSONFloat(b, v.ZPMax)
	b = append(b, `,"z_phi":`...)
	b = appendJSONFloat(b, v.ZPhi)
	b = append(b, `,"tv":`...)
	b = appendJSONFloat(b, v.TV)
	b = append(b, `,"p_max":`...)
	b = appendJSONFloat(b, v.PMax)
	b = append(b, `,"phi":`...)
	b = appendJSONFloat(b, v.Phi)
	b = append(b, `,"routes":`...)
	b = strconv.AppendInt(b, int64(v.Routes), 10)
	b = append(b, `,"n":`...)
	b = strconv.AppendInt(b, int64(v.N), 10)
	b = append(b, `,"suspect_link":`...)
	b = appendLinkJSON(b, v.SuspectLink)
	b = append(b, `,"suspects":[`...)
	b = strconv.AppendInt(b, int64(v.Suspects[0]), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(v.Suspects[1]), 10)
	return append(b, ']', '}')
}

// appendDetectResponse appends a full /v1/detect response line (terminating
// newline included, as json.Encoder.Encode emits). The explain variant of
// DetectResponse goes through encoding/json instead — decision records are
// cold-path payloads.
func appendDetectResponse(b, profile []byte, v VerdictJSON) []byte {
	b = append(b, `{"profile":`...)
	b = appendJSONStringBytes(b, profile)
	b = append(b, `,"verdict":`...)
	b = appendVerdict(b, v)
	return append(b, '}', '\n')
}

// appendBatchDetectResponse appends a /v1/detect/batch response. errs holds
// one entry per item ("" for success) and is emitted only when any item
// failed, matching BatchDetectResponse's omitempty contract.
func appendBatchDetectResponse(b, profile []byte, verdicts []VerdictJSON, errs []string) []byte {
	b = append(b, `{"profile":`...)
	b = appendJSONStringBytes(b, profile)
	b = append(b, `,"verdicts":[`...)
	for i, v := range verdicts {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendVerdict(b, v)
	}
	b = append(b, ']')
	emit := false
	for _, e := range errs {
		if e != "" {
			emit = true
			break
		}
	}
	if emit {
		b = append(b, `,"errors":[`...)
		for i, e := range errs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, e)
		}
		b = append(b, ']')
	}
	return append(b, '}', '\n')
}

// appendAnalyzeResponse appends a /v1/analyze response.
func appendAnalyzeResponse(b []byte, r AnalyzeResponse) []byte {
	b = append(b, `{"routes":`...)
	b = strconv.AppendInt(b, int64(r.Routes), 10)
	b = append(b, `,"n":`...)
	b = strconv.AppendInt(b, int64(r.N), 10)
	b = append(b, `,"distinct_links":`...)
	b = strconv.AppendInt(b, int64(r.Distinct), 10)
	b = append(b, `,"p_max":`...)
	b = appendJSONFloat(b, r.PMax)
	b = append(b, `,"phi":`...)
	b = appendJSONFloat(b, r.Phi)
	b = append(b, `,"max_link":`...)
	b = appendLinkJSON(b, r.MaxLink)
	b = append(b, `,"suspect_link":`...)
	b = appendLinkJSON(b, r.Suspect)
	if len(r.Top) > 0 {
		b = append(b, `,"top_links":[`...)
		for i, lc := range r.Top {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"link":`...)
			b = appendLinkJSON(b, lc.Link)
			b = append(b, `,"count":`...)
			b = strconv.AppendInt(b, int64(lc.Count), 10)
			b = append(b, `,"p":`...)
			b = appendJSONFloat(b, lc.P)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}', '\n')
}

// appendErrorResponse appends an ErrorResponse body.
func appendErrorResponse(b []byte, msg string) []byte {
	b = append(b, `{"error":`...)
	b = appendJSONString(b, msg)
	return append(b, '}', '\n')
}

// writeBuf ships a pre-encoded JSON body. The status line is already on the
// wire when a write fails (client gone, connection reset), so the failure is
// counted and logged instead of silently dropped.
func (s *Service) writeBuf(w http.ResponseWriter, status int, body []byte) {
	w.Header()["Content-Type"] = ctJSON
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.responseFailed("write", err)
	}
}

// responseFailed records a response body that could not be delivered after
// the status was committed — the one failure mode a JSON API cannot report
// in-band, so it must at least be observable.
func (s *Service) responseFailed(stage string, err error) {
	s.metrics.respErrors.Inc()
	s.logger.Warn("response body failed after status was sent", "stage", stage, "err", err)
}
