package topology

// Graph utilities over a topology's connectivity: BFS distances, shortest
// paths and connectivity checks. All of them treat tunnels as ordinary
// one-hop links, matching how routing sees the network.

// BFSDist returns, for every node, its hop distance from src, or -1 if
// unreachable. The excluded set (may be nil) is treated as removed from the
// graph; src itself must not be excluded.
func (t *Topology) BFSDist(src NodeID, excluded map[NodeID]bool) []int {
	t.checkID(src)
	dist := make([]int, t.N())
	for i := range dist {
		dist[i] = -1
	}
	if excluded[src] {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Neighbors(u) {
			if dist[v] == -1 && !excluded[v] {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// HopDist returns the hop distance between a and b, or -1 if disconnected.
func (t *Topology) HopDist(a, b NodeID) int {
	return t.BFSDist(a, nil)[b]
}

// ShortestPath returns one minimum-hop path from a to b inclusive of both
// endpoints, or nil if none exists. Ties break toward lower node ids, so the
// result is deterministic.
func (t *Topology) ShortestPath(a, b NodeID) []NodeID {
	t.checkID(a)
	t.checkID(b)
	if a == b {
		return []NodeID{a}
	}
	prev := make([]NodeID, t.N())
	for i := range prev {
		prev[i] = None
	}
	seen := make([]bool, t.N())
	seen[a] = true
	queue := []NodeID{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == b {
			break
		}
		for _, v := range t.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if !seen[b] {
		return nil
	}
	var rev []NodeID
	for v := b; v != None; v = prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Connected reports whether every node is reachable from node 0.
// An empty topology is trivially connected.
func (t *Topology) Connected() bool {
	if t.N() == 0 {
		return true
	}
	dist := t.BFSDist(0, nil)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// ConnectedWithout reports whether all non-excluded nodes remain mutually
// reachable when the excluded nodes are removed. It returns true when fewer
// than two nodes remain.
func (t *Topology) ConnectedWithout(excluded map[NodeID]bool) bool {
	var start NodeID = None
	remaining := 0
	for i := 0; i < t.N(); i++ {
		if !excluded[NodeID(i)] {
			remaining++
			if start == None {
				start = NodeID(i)
			}
		}
	}
	if remaining < 2 {
		return true
	}
	dist := t.BFSDist(start, excluded)
	for i := 0; i < t.N(); i++ {
		if !excluded[NodeID(i)] && dist[i] == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum hop distance from id to any reachable
// node.
func (t *Topology) Eccentricity(id NodeID) int {
	max := 0
	for _, d := range t.BFSDist(id, nil) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum hop distance between any pair of connected
// nodes. It is O(n * edges); fine at paper scale.
func (t *Topology) Diameter() int {
	max := 0
	for i := 0; i < t.N(); i++ {
		if e := t.Eccentricity(NodeID(i)); e > max {
			max = e
		}
	}
	return max
}
