// Package topology models the static layout of a wireless ad hoc network:
// node positions, the unit-disk connectivity induced by a transmission
// range, and any out-of-band links (wormhole tunnels) layered on top.
//
// The paper's "k-tier" systems — each node can communicate with its
// neighbors up to k (grid) hops away — are reproduced by setting the radio
// range to k grid spacings plus a small epsilon.
package topology

import (
	"fmt"
	"sort"

	"samnet/internal/geom"
)

// NodeID identifies a node within one Topology. IDs are dense, starting at 0,
// in the order nodes were added.
type NodeID int

// None is the sentinel for "no node".
const None NodeID = -1

// RangeEpsilon is added to k grid spacings when deriving the radio range for
// a k-tier system, so that nodes exactly k units apart are neighbors while
// diagonal nodes at distance sqrt(2)k are not (for k=1).
const RangeEpsilon = 1e-3

// TierRange returns the unit-disk radius of a k-tier system on a grid with
// the given spacing.
func TierRange(k int, spacing float64) float64 {
	return float64(k)*spacing + RangeEpsilon
}

// Link is an undirected edge between two nodes, stored with A < B so that
// links compare equal regardless of direction.
type Link struct {
	A, B NodeID
}

// MkLink returns the normalized undirected link between a and b.
func MkLink(a, b NodeID) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// Other returns the endpoint of l that is not id, or None if id is not an
// endpoint.
func (l Link) Other(id NodeID) NodeID {
	switch id {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return None
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d-%d", l.A, l.B) }

// Topology is an immutable-after-build node layout plus connectivity.
// It is not safe for concurrent mutation; concurrent reads are fine once
// building has finished (Freeze, or any read method, computes adjacency).
type Topology struct {
	name   string
	pos    []geom.Point
	radius float64
	extra  map[Link]bool // out-of-band links (wormhole tunnels)
	adj    [][]NodeID    // lazily built; nil when stale
}

// New returns an empty topology whose radio range is radius.
func New(name string, radius float64) *Topology {
	if radius <= 0 {
		panic("topology: radius must be positive")
	}
	return &Topology{
		name:   name,
		radius: radius,
		extra:  make(map[Link]bool),
	}
}

// Name returns the human-readable topology name ("cluster", "uniform6x6", ...).
func (t *Topology) Name() string { return t.name }

// Radius returns the radio range.
func (t *Topology) Radius() float64 { return t.radius }

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.pos) }

// AddNode appends a node at p and returns its id.
func (t *Topology) AddNode(p geom.Point) NodeID {
	t.pos = append(t.pos, p)
	t.adj = nil
	return NodeID(len(t.pos) - 1)
}

// Pos returns the position of id.
func (t *Topology) Pos(id NodeID) geom.Point { return t.pos[id] }

// SetPos moves node id to p and invalidates the adjacency cache. The
// mobility models use it between discoveries; moving nodes mid-simulation
// is not supported (a discovery sees one frozen topology, which matches the
// paper's quasi-static assumption).
func (t *Topology) SetPos(id NodeID, p geom.Point) {
	t.checkID(id)
	t.pos[id] = p
	t.adj = nil
}

// Positions returns a copy of all node positions indexed by NodeID.
func (t *Topology) Positions() []geom.Point {
	out := make([]geom.Point, len(t.pos))
	copy(out, t.pos)
	return out
}

// AddExtraLink installs an out-of-band link between a and b regardless of
// their distance. Wormhole tunnels are modeled this way: the two attacker
// nodes behave like one-hop neighbors no matter how far apart they sit.
func (t *Topology) AddExtraLink(a, b NodeID) {
	if a == b {
		panic("topology: self link")
	}
	t.checkID(a)
	t.checkID(b)
	t.extra[MkLink(a, b)] = true
	t.adj = nil
}

// RemoveExtraLink removes a previously installed out-of-band link. It is a
// no-op if the link is not present.
func (t *Topology) RemoveExtraLink(a, b NodeID) {
	delete(t.extra, MkLink(a, b))
	t.adj = nil
}

// HasExtraLink reports whether an out-of-band link exists between a and b.
func (t *Topology) HasExtraLink(a, b NodeID) bool { return t.extra[MkLink(a, b)] }

// ExtraLinks returns all out-of-band links in deterministic order.
func (t *Topology) ExtraLinks() []Link {
	out := make([]Link, 0, len(t.extra))
	for l := range t.extra {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// InRange reports whether a and b are within radio range of each other
// (excluding out-of-band links).
func (t *Topology) InRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	return t.pos[a].Dist2(t.pos[b]) <= t.radius*t.radius
}

// Adjacent reports whether a and b share a link, via radio or tunnel.
func (t *Topology) Adjacent(a, b NodeID) bool {
	return t.InRange(a, b) || t.extra[MkLink(a, b)]
}

// Neighbors returns the neighbor list of id in ascending order. The returned
// slice is shared; callers must not modify it.
func (t *Topology) Neighbors(id NodeID) []NodeID {
	t.checkID(id)
	t.build()
	return t.adj[id]
}

// Degree returns the number of neighbors of id.
func (t *Topology) Degree(id NodeID) int { return len(t.Neighbors(id)) }

// Links returns every link in the topology (radio and tunnel), each once,
// in deterministic order.
func (t *Topology) Links() []Link {
	t.build()
	var out []Link
	for a := range t.adj {
		for _, b := range t.adj[a] {
			if NodeID(a) < b {
				out = append(out, Link{A: NodeID(a), B: b})
			}
		}
	}
	return out
}

// Freeze forces adjacency construction now, so that later concurrent reads
// never race on the lazy build.
func (t *Topology) Freeze() { t.build() }

func (t *Topology) checkID(id NodeID) {
	if id < 0 || int(id) >= len(t.pos) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", id, len(t.pos)))
	}
}

func (t *Topology) build() {
	if t.adj != nil {
		return
	}
	n := len(t.pos)
	adj := make([][]NodeID, n)
	r2 := t.radius * t.radius
	// O(n^2) is fine at the paper's scales (tens of nodes); a grid index
	// would only pay off far beyond them.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if t.pos[i].Dist2(t.pos[j]) <= r2 {
				adj[i] = append(adj[i], NodeID(j))
				adj[j] = append(adj[j], NodeID(i))
			}
		}
	}
	for l := range t.extra {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for i := range adj {
		sort.Slice(adj[i], func(a, b int) bool { return adj[i][a] < adj[i][b] })
		// Deduplicate in case a tunnel doubles a radio link.
		adj[i] = dedupSorted(adj[i])
	}
	t.adj = adj
}

func dedupSorted(s []NodeID) []NodeID {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
