package topology

import (
	"fmt"
	"math"
	"math/rand/v2"

	"samnet/internal/geom"
)

// Network bundles a topology with the experiment-facing metadata the paper's
// setups imply: which nodes may be chosen as source/destination, and where
// the attacker nodes sit. Attacker nodes are always present — in normal
// ("no attack") runs they behave as ordinary relays; installing the tunnel
// between a pair is the attack package's job.
type Network struct {
	Topo *Topology

	// SrcPool and DstPool are the candidate source/destination nodes for a
	// route discovery, per the paper's placement rules (cluster A to cluster
	// B; left side to right side).
	SrcPool, DstPool []NodeID

	// AttackerPairs lists wormhole endpoint pairs, in the order experiments
	// enable them (fig15 uses one, then two).
	AttackerPairs [][2]NodeID
}

// Attackers returns the set of all attacker node ids.
func (n *Network) Attackers() map[NodeID]bool {
	out := make(map[NodeID]bool, 2*len(n.AttackerPairs))
	for _, p := range n.AttackerPairs {
		out[p[0]] = true
		out[p[1]] = true
	}
	return out
}

// PickPair draws a (source, destination) pair from the pools using rng.
// Attacker nodes never appear in the pools, and source != destination is
// guaranteed because the pools are disjoint in every builder.
func (n *Network) PickPair(rng *rand.Rand) (src, dst NodeID) {
	src = n.SrcPool[rng.IntN(len(n.SrcPool))]
	dst = n.DstPool[rng.IntN(len(n.DstPool))]
	return src, dst
}

// TunnelSpan returns the normal-path hop distance between the endpoints of
// attacker pair i, computed with all tunnels removed. It measures how many
// hops the wormhole shortcuts.
func (n *Network) TunnelSpan(i int) int {
	pair := n.AttackerPairs[i]
	extras := n.Topo.ExtraLinks()
	for _, l := range extras {
		n.Topo.RemoveExtraLink(l.A, l.B)
	}
	d := n.Topo.HopDist(pair[0], pair[1])
	for _, l := range extras {
		n.Topo.AddExtraLink(l.A, l.B)
	}
	return d
}

// Cluster builds the paper's 2-cluster system (Fig. 1): two 4x4 clusters
// joined by a 2x5 bridge, 42 nodes total, at unit grid spacing. k is the
// tier (transmission range = k grid spacings).
//
// Attacker pair 0 is a malicious insider in each cluster — the node at (1,1)
// in cluster A and (10,2) in cluster B. Their tunnel shortcuts 10 normal
// hops at 1-tier (the paper's "long attack link") and beats the 2x5 bridge
// for every source/destination pair, which is why the paper sees 100% of
// cluster-topology routes affected. Attackers are removed from the
// source/destination pools. wormholes may be 0..2; pair 1 claims (2,2) and
// (11,1).
func Cluster(k, wormholes int) *Network {
	if k < 1 {
		panic("topology: tier must be >= 1")
	}
	t := New(fmt.Sprintf("cluster-%dtier", k), TierRange(k, 1))
	net := &Network{Topo: t}

	// Cluster A: 4x4 at x in [0,3], y in [0,3].
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			id := t.AddNode(geom.Pt(float64(x), float64(y)))
			net.SrcPool = append(net.SrcPool, id)
		}
	}
	// Bridge: 2 rows x 5 columns at x in [4,8], y in {1,2}.
	for x := 4; x <= 8; x++ {
		for y := 1; y <= 2; y++ {
			t.AddNode(geom.Pt(float64(x), float64(y)))
		}
	}
	// Cluster B: 4x4 at x in [9,12], y in [0,3].
	for x := 9; x < 13; x++ {
		for y := 0; y < 4; y++ {
			id := t.AddNode(geom.Pt(float64(x), float64(y)))
			net.DstPool = append(net.DstPool, id)
		}
	}
	claimAttackerPairs(net, wormholes, [][2]geom.Point{
		{geom.Pt(2, 1), geom.Pt(10, 2)},
		{geom.Pt(1, 2), geom.Pt(11, 1)},
	})
	t.Freeze()
	return net
}

// Uniform builds a cols x rows uniform grid (Fig. 2 uses 6x6; the long-
// tunnel variant in Fig. 8 uses 10x6) at unit spacing and tier k. Sources
// are drawn from the leftmost two columns and destinations from the
// rightmost two, per the paper ("close to one attacker ... opposite side").
//
// Attacker pair 0 is a malicious insider on each vertical edge, offset one
// row from each other: (0,2) and (cols-1,3) for six rows. That reproduces
// the paper's tunnel spans exactly — 6 hops in the 6x6 grid, 10 hops in the
// 10x6 grid of Fig. 8. wormholes may be 0..2; pair 1 claims (1,0) and
// (cols-2,rows-1).
func Uniform(cols, rows, k, wormholes int) *Network {
	if cols < 3 || rows < 3 {
		panic("topology: uniform grid too small")
	}
	if k < 1 {
		panic("topology: tier must be >= 1")
	}
	t := New(fmt.Sprintf("uniform%dx%d-%dtier", cols, rows, k), TierRange(k, 1))
	net := &Network{Topo: t}
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			id := t.AddNode(geom.Pt(float64(x), float64(y)))
			if x < 2 {
				net.SrcPool = append(net.SrcPool, id)
			}
			if x >= cols-2 {
				net.DstPool = append(net.DstPool, id)
			}
		}
	}
	mid := rows / 2
	claimAttackerPairs(net, wormholes, [][2]geom.Point{
		{geom.Pt(0, float64(mid-1)), geom.Pt(float64(cols-1), float64(mid))},
		{geom.Pt(1, 0), geom.Pt(float64(cols-2), float64(rows-1))},
	})
	t.Freeze()
	return net
}

// RandomConfig parameterizes Random.
type RandomConfig struct {
	N      int     // node count (default 60)
	Side   float64 // square side length (default 15)
	Radius float64 // radio range (default 2.3)
	// Wormholes is the number of attacker pairs (0..2). Attackers sit at
	// fixed positions on the left/right edges, as in the paper's fixed-
	// position assumption.
	Wormholes int
	// MaxTries bounds the rejection sampling for a connected placement
	// (default 1000).
	MaxTries int
}

func (c *RandomConfig) defaults() {
	if c.N == 0 {
		c.N = 60
	}
	if c.Side == 0 {
		c.Side = 15
	}
	if c.Radius == 0 {
		c.Radius = 2.3
	}
	if c.MaxTries == 0 {
		c.MaxTries = 2000
	}
}

// Random builds a random topology (Fig. 9): N nodes placed uniformly at
// random in a Side x Side square, redrawn until the network is connected.
// Sources come from the left quarter and destinations from the right
// quarter ("close to one attacker ... opposite side", as in the paper's
// uniform setup); if a draw leaves either pool empty it is rejected too.
// Attacker pair 0 claims the placed nodes nearest (Side/6, Side/2) and
// (5*Side/6, Side/2) — one embedded in each end region, mirroring the grid
// setups where each attacker sits close to one traffic pool; pair 1 claims
// nodes displaced a quarter-side vertically from pair 0.
func Random(cfg RandomConfig, rng *rand.Rand) *Network {
	cfg.defaults()
	for try := 0; try < cfg.MaxTries; try++ {
		t := New("random", cfg.Radius)
		net := &Network{Topo: t}
		for i := 0; i < cfg.N; i++ {
			p := geom.Pt(rng.Float64()*cfg.Side, rng.Float64()*cfg.Side)
			id := t.AddNode(p)
			switch {
			case p.X < cfg.Side/4:
				net.SrcPool = append(net.SrcPool, id)
			case p.X > 3*cfg.Side/4:
				net.DstPool = append(net.DstPool, id)
			}
		}
		mid := cfg.Side / 2
		claimAttackerPairs(net, cfg.Wormholes, [][2]geom.Point{
			{geom.Pt(cfg.Side/6, mid), geom.Pt(5*cfg.Side/6, mid)},
			{geom.Pt(cfg.Side/6, mid/2), geom.Pt(5*cfg.Side/6, 3*mid/2)},
		})
		t.Freeze()
		if len(net.SrcPool) > 0 && len(net.DstPool) > 0 && t.Connected() {
			return net
		}
	}
	panic("topology: could not draw a connected random topology; raise Radius or N")
}

// claimAttackerPairs designates, for each requested wormhole, the two
// existing nodes nearest the given anchor points as the attacker pair —
// malicious insiders at fixed positions, per the paper's model. Claimed
// nodes are removed from the source/destination pools.
func claimAttackerPairs(net *Network, wormholes int, anchors [][2]geom.Point) {
	if wormholes < 0 || wormholes > len(anchors) {
		panic(fmt.Sprintf("topology: wormholes must be in [0,%d]", len(anchors)))
	}
	claimed := make(map[NodeID]bool)
	for i := 0; i < wormholes; i++ {
		a := nearestUnclaimed(net.Topo, anchors[i][0], claimed)
		claimed[a] = true
		b := nearestUnclaimed(net.Topo, anchors[i][1], claimed)
		claimed[b] = true
		net.AttackerPairs = append(net.AttackerPairs, [2]NodeID{a, b})
	}
	net.SrcPool = withoutNodes(net.SrcPool, claimed)
	net.DstPool = withoutNodes(net.DstPool, claimed)
}

func nearestUnclaimed(t *Topology, p geom.Point, claimed map[NodeID]bool) NodeID {
	best := None
	bestD := math.MaxFloat64
	for i := 0; i < t.N(); i++ {
		id := NodeID(i)
		if claimed[id] {
			continue
		}
		if d := t.Pos(id).Dist2(p); d < bestD {
			best, bestD = id, d
		}
	}
	if best == None {
		panic("topology: no node available to claim as attacker")
	}
	return best
}

func withoutNodes(pool []NodeID, drop map[NodeID]bool) []NodeID {
	out := pool[:0]
	for _, id := range pool {
		if !drop[id] {
			out = append(out, id)
		}
	}
	return out
}
