package topology

import (
	"testing"

	"samnet/internal/geom"
)

func line(t *testing.T, n int, radius float64) *Topology {
	t.Helper()
	topo := New("line", radius)
	for i := 0; i < n; i++ {
		topo.AddNode(geom.Pt(float64(i), 0))
	}
	return topo
}

func TestMkLinkNormalizes(t *testing.T) {
	if MkLink(3, 1) != MkLink(1, 3) {
		t.Error("MkLink is not direction-independent")
	}
	l := MkLink(5, 2)
	if l.A != 2 || l.B != 5 {
		t.Errorf("MkLink(5,2) = %+v", l)
	}
}

func TestLinkOther(t *testing.T) {
	l := MkLink(1, 3)
	if l.Other(1) != 3 || l.Other(3) != 1 {
		t.Error("Other returns wrong endpoint")
	}
	if l.Other(9) != None {
		t.Error("Other on non-endpoint should be None")
	}
}

func TestTierRange(t *testing.T) {
	r1 := TierRange(1, 1)
	if !(r1 > 1 && r1 < 1.01) {
		t.Errorf("TierRange(1,1) = %v", r1)
	}
	if TierRange(2, 1) <= TierRange(1, 1) {
		t.Error("2-tier range should exceed 1-tier")
	}
}

func TestAdjacencyUnitDisk(t *testing.T) {
	topo := line(t, 3, 1.001)
	if !topo.Adjacent(0, 1) || !topo.Adjacent(1, 2) {
		t.Error("unit neighbors should be adjacent")
	}
	if topo.Adjacent(0, 2) {
		t.Error("distance-2 nodes adjacent at 1-tier")
	}
	if topo.Adjacent(1, 1) {
		t.Error("node adjacent to itself")
	}
}

func TestNeighborsSortedAndShared(t *testing.T) {
	topo := New("t", 1.5)
	c := topo.AddNode(geom.Pt(0, 0))
	n1 := topo.AddNode(geom.Pt(1, 0))
	n2 := topo.AddNode(geom.Pt(0, 1))
	n3 := topo.AddNode(geom.Pt(-1, 0))
	topo.AddNode(geom.Pt(5, 5)) // out of range
	got := topo.Neighbors(c)
	want := []NodeID{n1, n2, n3}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("neighbors not sorted: %v", got)
		}
	}
}

func TestExtraLinkCreatesAdjacency(t *testing.T) {
	topo := line(t, 12, 1.001)
	if topo.Adjacent(0, 11) {
		t.Fatal("far nodes should not be adjacent")
	}
	topo.AddExtraLink(0, 11)
	if !topo.Adjacent(0, 11) {
		t.Error("tunnel endpoints should be adjacent")
	}
	if !topo.HasExtraLink(11, 0) {
		t.Error("HasExtraLink should be direction-independent")
	}
	found := false
	for _, n := range topo.Neighbors(0) {
		if n == 11 {
			found = true
		}
	}
	if !found {
		t.Error("tunnel peer missing from neighbor list")
	}
	topo.RemoveExtraLink(11, 0)
	if topo.Adjacent(0, 11) {
		t.Error("tunnel should be gone after removal")
	}
}

func TestExtraLinkDoesNotDuplicateRadioLink(t *testing.T) {
	topo := line(t, 2, 1.001)
	topo.AddExtraLink(0, 1) // doubles an existing radio link
	if got := len(topo.Neighbors(0)); got != 1 {
		t.Errorf("neighbor list has %d entries, want 1", got)
	}
	if got := len(topo.Links()); got != 1 {
		t.Errorf("Links has %d entries, want 1", got)
	}
}

func TestLinksEnumeratesEachOnce(t *testing.T) {
	topo := line(t, 4, 1.001)
	links := topo.Links()
	if len(links) != 3 {
		t.Fatalf("Links = %v", links)
	}
	seen := map[Link]bool{}
	for _, l := range links {
		if l.A >= l.B {
			t.Errorf("link %v not normalized", l)
		}
		if seen[l] {
			t.Errorf("duplicate link %v", l)
		}
		seen[l] = true
	}
}

func TestSelfLinkPanics(t *testing.T) {
	topo := line(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddExtraLink(self) should panic")
		}
	}()
	topo.AddExtraLink(1, 1)
}

func TestBFSDist(t *testing.T) {
	topo := line(t, 5, 1.001)
	d := topo.BFSDist(0, nil)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSDistExcluded(t *testing.T) {
	topo := line(t, 5, 1.001)
	d := topo.BFSDist(0, map[NodeID]bool{2: true})
	if d[1] != 1 {
		t.Errorf("dist[1] = %d", d[1])
	}
	if d[3] != -1 || d[4] != -1 {
		t.Error("nodes beyond excluded cut should be unreachable")
	}
}

func TestHopDistUsesTunnel(t *testing.T) {
	topo := line(t, 12, 1.001)
	if got := topo.HopDist(0, 11); got != 11 {
		t.Fatalf("HopDist = %d", got)
	}
	topo.AddExtraLink(0, 11)
	if got := topo.HopDist(0, 11); got != 1 {
		t.Errorf("HopDist with tunnel = %d, want 1", got)
	}
}

func TestShortestPath(t *testing.T) {
	topo := line(t, 5, 1.001)
	p := topo.ShortestPath(0, 4)
	want := []NodeID{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if got := topo.ShortestPath(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("self path = %v", got)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	topo := New("gap", 1.001)
	topo.AddNode(geom.Pt(0, 0))
	topo.AddNode(geom.Pt(10, 0))
	if p := topo.ShortestPath(0, 1); p != nil {
		t.Errorf("path across gap = %v", p)
	}
	if topo.Connected() {
		t.Error("disconnected topology reported connected")
	}
}

func TestConnectedWithout(t *testing.T) {
	topo := line(t, 5, 1.001)
	if !topo.ConnectedWithout(nil) {
		t.Error("line should be connected")
	}
	if topo.ConnectedWithout(map[NodeID]bool{2: true}) {
		t.Error("line minus middle node should be disconnected")
	}
	// Removing an endpoint keeps the rest connected.
	if !topo.ConnectedWithout(map[NodeID]bool{0: true}) {
		t.Error("line minus endpoint should stay connected")
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	topo := line(t, 6, 1.001)
	if got := topo.Diameter(); got != 5 {
		t.Errorf("Diameter = %d", got)
	}
	if got := topo.Eccentricity(2); got != 3 {
		t.Errorf("Eccentricity(2) = %d", got)
	}
}

func TestCheckIDPanics(t *testing.T) {
	topo := line(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("Neighbors(out of range) should panic")
		}
	}()
	topo.Neighbors(7)
}
