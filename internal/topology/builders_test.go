package topology

import (
	"math/rand/v2"
	"testing"
)

func TestClusterLayout(t *testing.T) {
	net := Cluster(1, 1)
	topo := net.Topo
	if topo.N() != 42 {
		t.Fatalf("cluster has %d nodes, want 42 (16+10+16)", topo.N())
	}
	if !topo.Connected() {
		t.Fatal("cluster topology must be connected")
	}
	if len(net.SrcPool) != 15 || len(net.DstPool) != 15 {
		// 16 per cluster minus the claimed attacker.
		t.Errorf("pools = %d/%d, want 15/15", len(net.SrcPool), len(net.DstPool))
	}
	if len(net.AttackerPairs) != 1 {
		t.Fatalf("attacker pairs = %d", len(net.AttackerPairs))
	}
}

func TestClusterTunnelSpanIsLong(t *testing.T) {
	net := Cluster(1, 1)
	// The paper's "long attack link": the tunnel shortcuts on the order of
	// 10 hops at 1-tier.
	if span := net.TunnelSpan(0); span < 8 || span > 11 {
		t.Errorf("cluster tunnel span = %d, want ~9-10", span)
	}
}

func TestClusterTiers(t *testing.T) {
	n1 := Cluster(1, 0)
	n2 := Cluster(2, 0)
	d1 := n1.Topo.Degree(0)
	d2 := n2.Topo.Degree(0)
	if d2 <= d1 {
		t.Errorf("2-tier degree (%d) should exceed 1-tier (%d)", d2, d1)
	}
	if n2.Topo.Diameter() >= n1.Topo.Diameter() {
		t.Error("2-tier diameter should shrink")
	}
}

func TestClusterAttackersExcludedFromPools(t *testing.T) {
	net := Cluster(1, 2)
	attackers := net.Attackers()
	if len(attackers) != 4 {
		t.Fatalf("attackers = %d, want 4", len(attackers))
	}
	for _, id := range append(append([]NodeID{}, net.SrcPool...), net.DstPool...) {
		if attackers[id] {
			t.Errorf("attacker %d found in a pool", id)
		}
	}
}

func TestClusterTunnelDominatesEveryPair(t *testing.T) {
	// The design requirement behind Table I's 100%: for every (src,dst)
	// pair, routing via the tunnel is strictly shorter than any normal
	// path.
	net := Cluster(1, 1)
	a1, a2 := net.AttackerPairs[0][0], net.AttackerPairs[0][1]
	normal := make(map[NodeID][]int) // distances without tunnel
	for _, s := range net.SrcPool {
		normal[s] = net.Topo.BFSDist(s, nil)
	}
	dA1 := net.Topo.BFSDist(a1, nil)
	dA2 := net.Topo.BFSDist(a2, nil)
	for _, s := range net.SrcPool {
		for _, d := range net.DstPool {
			direct := normal[s][d]
			viaTunnel := dA1[s] + 1 + dA2[d]
			if viaTunnel >= direct {
				t.Errorf("tunnel does not win for %d->%d: %d vs %d", s, d, viaTunnel, direct)
			}
		}
	}
}

func TestUniformLayout(t *testing.T) {
	net := Uniform(6, 6, 1, 1)
	if net.Topo.N() != 36 {
		t.Fatalf("6x6 grid has %d nodes", net.Topo.N())
	}
	if !net.Topo.Connected() {
		t.Fatal("grid must be connected")
	}
	// Interior grid node at 1-tier has exactly 4 neighbors.
	var interior NodeID = None
	for i := 0; i < net.Topo.N(); i++ {
		p := net.Topo.Pos(NodeID(i))
		if p.X == 2 && p.Y == 2 {
			interior = NodeID(i)
		}
	}
	if interior == None {
		t.Fatal("no node at (2,2)")
	}
	if got := net.Topo.Degree(interior); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
}

func TestUniformTunnelSpansMatchPaper(t *testing.T) {
	// Paper: 6-hop attack link in the 6x6 grid, 10-hop in the 10x6 grid.
	if span := Uniform(6, 6, 1, 1).TunnelSpan(0); span != 6 {
		t.Errorf("6x6 tunnel span = %d, want 6", span)
	}
	if span := Uniform(10, 6, 1, 1).TunnelSpan(0); span != 10 {
		t.Errorf("10x6 tunnel span = %d, want 10", span)
	}
}

func TestUniformPools(t *testing.T) {
	net := Uniform(6, 6, 1, 0)
	if len(net.SrcPool) != 12 || len(net.DstPool) != 12 {
		t.Fatalf("pools = %d/%d, want 12/12", len(net.SrcPool), len(net.DstPool))
	}
	for _, id := range net.SrcPool {
		if net.Topo.Pos(id).X >= 2 {
			t.Errorf("source %d not on the left side", id)
		}
	}
	for _, id := range net.DstPool {
		if net.Topo.Pos(id).X < 4 {
			t.Errorf("destination %d not on the right side", id)
		}
	}
}

func TestUniformRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { Uniform(2, 6, 1, 0) },
		func() { Uniform(6, 6, 0, 0) },
		func() { Cluster(0, 0) },
		func() { Cluster(1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRandomTopology(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	net := Random(RandomConfig{Wormholes: 1}, rng)
	if net.Topo.N() != 60 {
		t.Fatalf("random N = %d, want 60", net.Topo.N())
	}
	if !net.Topo.Connected() {
		t.Fatal("random topology must be connected")
	}
	if len(net.SrcPool) == 0 || len(net.DstPool) == 0 {
		t.Fatal("pools must be non-empty")
	}
	if len(net.AttackerPairs) != 1 {
		t.Fatal("wanted one attacker pair")
	}
	side := 15.0
	a1 := net.Topo.Pos(net.AttackerPairs[0][0])
	a2 := net.Topo.Pos(net.AttackerPairs[0][1])
	if a1.X >= a2.X {
		t.Errorf("attacker 0 (%v) should be left of attacker 1 (%v)", a1, a2)
	}
	for _, id := range net.SrcPool {
		if net.Topo.Pos(id).X >= side/4 {
			t.Errorf("source %v outside left quarter", net.Topo.Pos(id))
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(RandomConfig{}, rand.New(rand.NewPCG(9, 9)))
	b := Random(RandomConfig{}, rand.New(rand.NewPCG(9, 9)))
	if a.Topo.N() != b.Topo.N() {
		t.Fatal("node counts differ")
	}
	for i := 0; i < a.Topo.N(); i++ {
		if a.Topo.Pos(NodeID(i)) != b.Topo.Pos(NodeID(i)) {
			t.Fatalf("node %d differs across identical seeds", i)
		}
	}
}

func TestRandomImpossiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unconnectable config")
		}
	}()
	Random(RandomConfig{N: 10, Side: 100, Radius: 1, MaxTries: 5}, rand.New(rand.NewPCG(1, 1)))
}

func TestPickPairNeverPicksAttacker(t *testing.T) {
	net := Cluster(1, 2)
	attackers := net.Attackers()
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 200; i++ {
		s, d := net.PickPair(rng)
		if attackers[s] || attackers[d] {
			t.Fatal("picked an attacker as src/dst")
		}
		if s == d {
			t.Fatal("src == dst")
		}
	}
}

func TestTunnelSpanRestoresTunnels(t *testing.T) {
	net := Cluster(1, 1)
	p := net.AttackerPairs[0]
	net.Topo.AddExtraLink(p[0], p[1])
	span := net.TunnelSpan(0)
	if span < 2 {
		t.Fatalf("span = %d", span)
	}
	if !net.Topo.HasExtraLink(p[0], p[1]) {
		t.Error("TunnelSpan must restore the tunnel afterwards")
	}
}

func TestKTierNeighborhoodMatchesPaperDefinition(t *testing.T) {
	// The paper defines a k-tier system as "each node can communicate with
	// its neighbors up to k hops away", where hops are 1-tier grid hops.
	// Verify: the k-tier neighborhood of an interior node is exactly the
	// set of nodes within 1-tier hop distance <= k.
	base := Uniform(7, 7, 1, 0)
	for _, k := range []int{1, 2} {
		tiered := Uniform(7, 7, k, 0)
		var center NodeID = None
		for i := 0; i < base.Topo.N(); i++ {
			p := base.Topo.Pos(NodeID(i))
			if p.X == 3 && p.Y == 3 {
				center = NodeID(i)
			}
		}
		if center == None {
			t.Fatal("no center node")
		}
		oneHop := base.Topo.BFSDist(center, nil)
		want := map[NodeID]bool{}
		for i, d := range oneHop {
			if d >= 1 && d <= k {
				want[NodeID(i)] = true
			}
		}
		got := map[NodeID]bool{}
		for _, nb := range tiered.Topo.Neighbors(center) {
			got[nb] = true
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d neighbors, want %d", k, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Errorf("k=%d: node %d (1-tier dist %d) missing from neighborhood", k, id, oneHop[id])
			}
		}
	}
}

func BenchmarkClusterBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := Cluster(1, 2)
		net.Topo.Freeze()
	}
}

func BenchmarkBFSDist(b *testing.B) {
	net := Uniform(30, 30, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Topo.BFSDist(0, nil)
	}
}

func BenchmarkRandomBuild(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Random(RandomConfig{}, rng)
	}
}
