package leash

import (
	"math/rand/v2"
	"testing"

	"samnet/internal/attack"
	"samnet/internal/routing/mr"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

func TestCheckAcceptsNeighbors(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	c := New(net.Topo, Config{}, rand.New(rand.NewPCG(1, 1)))
	for i := 0; i < net.Topo.N(); i++ {
		id := topology.NodeID(i)
		for _, nb := range net.Topo.Neighbors(id) {
			if !c.Check(id, nb) {
				t.Fatalf("leash rejected legitimate link %d-%d", id, nb)
			}
		}
	}
	if c.Flagged != 0 {
		t.Errorf("flagged %d legitimate receptions", c.Flagged)
	}
}

func TestCheckRejectsTunnel(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	c := New(net.Topo, Config{}, rand.New(rand.NewPCG(1, 1)))
	w := sc.Tunnels[0]
	if c.Check(w.A, w.B) {
		t.Error("leash accepted a 10-hop tunnel")
	}
	if c.Flagged != 1 || c.Checked != 1 {
		t.Errorf("counters = %d/%d", c.Flagged, c.Checked)
	}
}

func TestBoundGrowsWithErrors(t *testing.T) {
	net := topology.Uniform(6, 6, 1, 0)
	rng := rand.New(rand.NewPCG(1, 1))
	tight := New(net.Topo, Config{PosError: 0.01, ClockError: 0.01}, rng)
	loose := New(net.Topo, Config{PosError: 0.5, ClockError: 0.5}, rng)
	if tight.Bound() >= loose.Bound() {
		t.Error("bound should grow with error budgets")
	}
}

func TestMonitorFlagsWormholeDuringDiscovery(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 3})
	c := New(net.Topo, Config{}, s.Rand())
	tally := c.Monitor(s, nil)
	(&mr.Protocol{}).Discover(s, net.SrcPool[0], net.DstPool[0])
	v := Summarize(tally)
	if !v.Detected {
		t.Fatal("leash missed the wormhole")
	}
	if v.WorstLink != sc.TunnelLinks()[0] {
		t.Errorf("worst link = %v, want the tunnel %v", v.WorstLink, sc.TunnelLinks()[0])
	}
}

func TestMonitorCleanRunFlagsNothing(t *testing.T) {
	net := topology.Cluster(1, 0)
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 3})
	c := New(net.Topo, Config{}, s.Rand())
	tally := c.Monitor(s, nil)
	(&mr.Protocol{}).Discover(s, net.SrcPool[0], net.DstPool[0])
	if v := Summarize(tally); v.Detected {
		t.Errorf("false positives on a clean run: %+v", v)
	}
}

func TestEnforceNeutralizesWormhole(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Forward)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 4})
	c := New(net.Topo, Config{}, s.Rand())
	c.Enforce(s, nil)
	d := (&mr.Protocol{}).Discover(s, net.SrcPool[0], net.DstPool[0])
	if len(d.Routes) == 0 {
		t.Fatal("enforced leash should still allow normal routes")
	}
	if got := d.AffectedBy(sc.TunnelLinks()[0]); got != 0 {
		t.Errorf("affected = %v with enforced leashes, want 0", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	v := Summarize(nil)
	if v.Detected || v.Violations != 0 {
		t.Errorf("empty summary = %+v", v)
	}
}

func TestMonitorComposesWithInnerPolicy(t *testing.T) {
	net := topology.Cluster(1, 1)
	sc := attack.NewScenario(net, 1, attack.Blackhole)
	defer sc.Teardown()
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 5})
	policy := attack.NewDropPolicy(sc.MaliciousNodes(), attack.Blackhole)
	c := New(net.Topo, Config{}, s.Rand())
	tally := c.Monitor(s, policy.Func(s.Rand()))
	d := (&mr.Protocol{}).Discover(s, net.SrcPool[0], net.DstPool[0])
	if len(d.Routes) == 0 {
		t.Fatal("discovery failed")
	}
	if v := Summarize(tally); !v.Detected {
		t.Error("monitor with inner policy should still flag the tunnel")
	}
}
