// Package leash implements the geographic packet leash of Hu, Perrig and
// Johnson ("Packet Leashes", INFOCOM 2003) — the prior-art wormhole defense
// the paper compares SAM against. Each transmission carries the sender's
// claimed location and timestamp; the receiver bounds the distance the
// packet can legitimately have traveled and rejects receptions that exceed
// it. A wormhole tunnel spans many radio ranges, so tunneled packets fail
// the check immediately.
//
// The catch — and the paper's motivation for SAM — is the hardware this
// needs: every node must know its own position (GPS) and share loosely
// synchronized clocks. Both are simulated here with configurable error
// bounds, so experiments can quantify the trade-off: the leash detects
// per-packet and instantly, SAM detects per-route-discovery with no
// hardware at all.
package leash

import (
	"math/rand/v2"

	"samnet/internal/geom"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Config sets the simulated hardware error bounds.
type Config struct {
	// Range is the nominal radio range nodes assume when checking leashes
	// (usually the topology's radius).
	Range float64
	// PosError is the maximum GPS position error per node, in the same
	// units as node coordinates. Claimed positions are perturbed uniformly
	// within a square of this half-width (default 0.1).
	PosError float64
	// ClockError is the maximum clock offset between any two nodes,
	// expressed as extra distance slack at propagation speed (default 0.05
	// units). Geographic leashes only need loose synchronization; this term
	// widens the acceptance bound accordingly.
	ClockError float64
}

func (c *Config) defaults() {
	if c.PosError == 0 {
		c.PosError = 0.1
	}
	if c.ClockError == 0 {
		c.ClockError = 0.05
	}
}

// Checker verifies geographic leashes for one network. It owns the simulated
// GPS readings (true position + bounded noise per node, fixed at creation,
// as a stationary node's GPS bias would be).
type Checker struct {
	cfg     Config
	topo    *topology.Topology
	claimed []geom.Point // per-node claimed (GPS-noisy) position

	// Checked counts leash verifications; Flagged counts rejections.
	Checked, Flagged int64
}

// New builds a Checker over topo. rng draws the per-node GPS noise; pass the
// simulation's source for reproducibility. If cfg.Range is zero the
// topology's radius is used.
func New(topo *topology.Topology, cfg Config, rng *rand.Rand) *Checker {
	cfg.defaults()
	if cfg.Range == 0 {
		cfg.Range = topo.Radius()
	}
	c := &Checker{cfg: cfg, topo: topo, claimed: make([]geom.Point, topo.N())}
	for i := 0; i < topo.N(); i++ {
		p := topo.Pos(topology.NodeID(i))
		c.claimed[i] = geom.Pt(
			p.X+(rng.Float64()*2-1)*cfg.PosError,
			p.Y+(rng.Float64()*2-1)*cfg.PosError,
		)
	}
	return c
}

// Bound returns the maximum distance a legitimate single-hop reception may
// claim: radio range plus twice the GPS error plus the clock slack.
func (c *Checker) Bound() float64 {
	return c.cfg.Range + 2*c.cfg.PosError + c.cfg.ClockError
}

// Check verifies the leash on a reception from sender to receiver: the
// distance between the claimed positions must be within Bound. It returns
// true if the reception is acceptable and false if the leash flags it.
func (c *Checker) Check(sender, receiver topology.NodeID) bool {
	c.Checked++
	ok := c.claimed[sender].Dist(c.claimed[receiver]) <= c.Bound()
	if !ok {
		c.Flagged++
	}
	return ok
}

// FlaggedLink records one leash violation observed during a run.
type FlaggedLink struct {
	Link  topology.Link
	Count int64
}

// Monitor attaches the checker to a simulation as a passive observer: every
// delivery is leash-checked and violations are tallied per link, without
// interfering with delivery (detection, not prevention — mirroring how SAM
// observes). inner, if non-nil, is an existing drop policy (e.g. a black
// hole) that still decides actual delivery. Monitor replaces the network's
// drop func; install attack policies by passing them as inner, not by
// calling SetDropFunc afterwards. The returned tally is updated in place as
// the simulation runs.
func (c *Checker) Monitor(net *sim.Network, inner sim.DropFunc) map[topology.Link]int64 {
	tally := make(map[topology.Link]int64)
	net.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if !c.Check(from, to) {
			tally[topology.MkLink(from, to)]++
		}
		if inner != nil {
			return inner(n, from, to, pkt)
		}
		return false
	})
	return tally
}

// Enforce attaches the checker as an active filter: receptions that fail the
// leash are dropped, which is packet leashes as the original defense
// intended — the wormhole simply stops working. inner composes as in
// Monitor.
func (c *Checker) Enforce(net *sim.Network, inner sim.DropFunc) {
	net.SetDropFunc(func(n *sim.Network, from, to topology.NodeID, pkt sim.Packet) bool {
		if !c.Check(from, to) {
			return true
		}
		if inner != nil {
			return inner(n, from, to, pkt)
		}
		return false
	})
}

// Verdict summarizes what the leash concluded about a run.
type Verdict struct {
	// Detected is true if any leash violation was observed.
	Detected bool
	// WorstLink is the link with the most violations (the tunnel, under a
	// wormhole attack).
	WorstLink topology.Link
	// Violations is the total number of flagged receptions.
	Violations int64
}

// Summarize turns a Monitor tally into a Verdict.
func Summarize(tally map[topology.Link]int64) Verdict {
	var v Verdict
	for l, n := range tally {
		v.Violations += n
		if !v.Detected || n > tally[v.WorstLink] ||
			(n == tally[v.WorstLink] && less(l, v.WorstLink)) {
			v.WorstLink = l
		}
		v.Detected = true
	}
	return v
}

func less(a, b topology.Link) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}
