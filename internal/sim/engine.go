// Package sim is a deterministic discrete-event simulator for broadcast
// wireless networks. It provides a virtual clock, an event queue with
// stable tie-breaking, and a Network that delivers packets between nodes
// over unit-disk links (plus any out-of-band tunnel links), counting every
// transmission and reception — the paper's route-discovery overhead metric.
//
// Determinism: every run is fully determined by its seed. Events at equal
// times fire in scheduling order (a monotone sequence number breaks ties),
// and all randomness flows from one seeded PCG source.
package sim

import (
	"math"

	"samnet/internal/topology"
)

// Time is virtual simulation time. One unit is one nominal hop transmission
// delay (see Config.HopDelay).
type Time float64

// Forever is a time later than any event a simulation schedules.
const Forever Time = Time(math.MaxFloat64)

// TimerHandler receives timer events scheduled with ScheduleTimer. The id is
// whatever the scheduler passed — protocol timeout wheels (the verify probe
// engine's retry timers) key their pending state on it.
type TimerHandler interface {
	Timer(id uint64)
}

// event is one queue entry. The hot paths — packet delivery and protocol
// timers — are concrete structs dispatched by the engine itself (fn == nil),
// so delivering a packet or firing a timeout allocates nothing. Schedule'd
// callbacks ride the same queue with fn set.
type event struct {
	at   Time
	seq  uint64
	fn   func() // slow path: scheduled callback; nil for deliveries/timers
	pkt  Packet
	th   TimerHandler // timer events: receiver of tid; nil for deliveries
	tid  uint64
	from topology.NodeID
	to   topology.NodeID
}

// Engine is the event loop. The zero value is ready to use.
//
// The queue is a hand-rolled 4-ary min-heap of concrete events rather than
// container/heap: no interface boxing per push/pop, and the shallower tree
// roughly halves the sift depth for the flood-sized queues discovery builds.
// Heap order is (at, seq); since every event's (at, seq) key is unique, pop
// order — and therefore every simulation output — is independent of arity.
type Engine struct {
	pq        []event
	now       Time
	seq       uint64
	processed uint64

	// net is set when the engine is embedded in a Network; fn == nil events
	// are deliveries dispatched to it.
	net *Network
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay d. A negative delay panics: the simulator
// does not travel backwards.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	e.push(event{at: e.now + d, seq: e.seq, fn: fn})
}

// scheduleDelivery enqueues a packet reception without boxing or closures.
func (e *Engine) scheduleDelivery(d Time, from, to topology.NodeID, pkt Packet) {
	e.seq++
	e.push(event{at: e.now + d, seq: e.seq, pkt: pkt, from: from, to: to})
}

// ScheduleTimer fires h.Timer(id) after delay d. Like deliveries (and unlike
// Schedule's closures) the timer rides the heap as a concrete event, so
// arming a timeout allocates nothing. Ties against deliveries at the same
// instant resolve by scheduling order, as for every other event.
func (e *Engine) ScheduleTimer(d Time, h TimerHandler, id uint64) {
	if d < 0 {
		panic("sim: negative delay")
	}
	if h == nil {
		panic("sim: nil timer handler")
	}
	e.seq++
	e.push(event{at: e.now + d, seq: e.seq, th: h, tid: id})
}

// reset rewinds the engine to its zero state, keeping the queue's capacity.
func (e *Engine) reset() {
	for i := range e.pq {
		e.pq[i] = event{}
	}
	e.pq = e.pq[:0]
	e.now, e.seq, e.processed = 0, 0, 0
}

func (ev *event) less(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.pq[i].less(&e.pq[parent]) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = event{} // release fn/pkt references
	e.pq = e.pq[:n]
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.pq[c].less(&e.pq[min]) {
				min = c
			}
		}
		if !e.pq[min].less(&e.pq[i]) {
			break
		}
		e.pq[i], e.pq[min] = e.pq[min], e.pq[i]
		i = min
	}
	return top
}

// fire executes one popped event at its timestamp.
func (e *Engine) fire(ev *event) {
	e.now = ev.at
	e.processed++
	if ev.fn != nil {
		ev.fn()
		return
	}
	if ev.th != nil {
		ev.th.Timer(ev.tid)
		return
	}
	e.net.dispatch(ev.from, ev.to, ev.pkt)
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// RunUntil executes events with time <= deadline, leaves later events
// queued, advances the clock to min(deadline, last event time), and returns
// the current time.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		ev := e.pop()
		e.fire(&ev)
	}
	if deadline != Forever && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// Step executes exactly one event if any is pending and reports whether it
// did.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pop()
	e.fire(&ev)
	return true
}
