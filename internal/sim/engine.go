// Package sim is a deterministic discrete-event simulator for broadcast
// wireless networks. It provides a virtual clock, an event queue with
// stable tie-breaking, and a Network that delivers packets between nodes
// over unit-disk links (plus any out-of-band tunnel links), counting every
// transmission and reception — the paper's route-discovery overhead metric.
//
// Determinism: every run is fully determined by its seed. Events at equal
// times fire in scheduling order (a monotone sequence number breaks ties),
// and all randomness flows from one seeded PCG source.
package sim

import (
	"container/heap"
	"math"
)

// Time is virtual simulation time. One unit is one nominal hop transmission
// delay (see Config.HopDelay).
type Time float64

// Forever is a time later than any event a simulation schedules.
const Forever Time = Time(math.MaxFloat64)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the event loop. The zero value is ready to use.
type Engine struct {
	pq        eventHeap
	now       Time
	seq       uint64
	processed uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay d. A negative delay panics: the simulator
// does not travel backwards.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + d, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time { return e.RunUntil(Forever) }

// RunUntil executes events with time <= deadline, leaves later events
// queued, advances the clock to min(deadline, last event time), and returns
// the current time.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	if deadline != Forever && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// Step executes exactly one event if any is pending and reports whether it
// did.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}
