package sim

import "testing"

// timerLog records Timer callbacks for assertions.
type timerLog struct {
	e   *Engine
	ids []uint64
	ats []Time
}

func (l *timerLog) Timer(id uint64) {
	l.ids = append(l.ids, id)
	l.ats = append(l.ats, l.e.Now())
}

func TestScheduleTimerFiresInOrder(t *testing.T) {
	var e Engine
	l := &timerLog{e: &e}
	e.ScheduleTimer(5, l, 1)
	e.ScheduleTimer(2, l, 2)
	e.ScheduleTimer(2, l, 3) // tie with id 2: scheduling order wins
	e.Run()
	want := []uint64{2, 3, 1}
	if len(l.ids) != len(want) {
		t.Fatalf("fired %v, want %v", l.ids, want)
	}
	for i := range want {
		if l.ids[i] != want[i] {
			t.Fatalf("fired %v, want %v", l.ids, want)
		}
	}
	if l.ats[0] != 2 || l.ats[1] != 2 || l.ats[2] != 5 {
		t.Fatalf("fire times %v, want [2 2 5]", l.ats)
	}
}

func TestScheduleTimerInterleavesWithCallbacks(t *testing.T) {
	var e Engine
	l := &timerLog{e: &e}
	var order []string
	e.Schedule(3, func() { order = append(order, "fn") })
	e.ScheduleTimer(3, l, 7) // same instant, scheduled second: fires second
	e.RunUntil(3)
	if len(order) != 1 || len(l.ids) != 1 {
		t.Fatalf("fn fired %d times, timer %d times", len(order), len(l.ids))
	}
	if e.Processed() != 2 {
		t.Fatalf("Processed = %d, want 2", e.Processed())
	}
}

func TestScheduleTimerPanics(t *testing.T) {
	var e Engine
	l := &timerLog{e: &e}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative delay", func() { e.ScheduleTimer(-1, l, 1) })
	mustPanic("nil handler", func() { e.ScheduleTimer(1, nil, 1) })
}

// TestScheduleTimerNoAlloc pins the zero-alloc property: once the heap has
// capacity, arming and firing a timer allocates nothing — timers share the
// delivery events' concrete-struct fast path.
func TestScheduleTimerNoAlloc(t *testing.T) {
	var e Engine
	l := &timerLog{e: &e}
	l.ids = make([]uint64, 0, 1024)
	l.ats = make([]Time, 0, 1024)
	// Prime heap capacity.
	for i := 0; i < 64; i++ {
		e.ScheduleTimer(1, l, uint64(i))
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleTimer(1, l, 42)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("timer schedule+fire allocates %.1f times", allocs)
	}
}
