package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleRunOrder(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(5, func() { fired++ })
	e.RunUntil(3)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3 (deadline)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 5 {
		t.Errorf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestStep(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(2, func() { fired++ })
	if !e.Step() || fired != 1 {
		t.Fatal("first Step should fire exactly one event")
	}
	if !e.Step() || fired != 2 {
		t.Fatal("second Step should fire the second event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestProcessedCount(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestEventOrderProperty(t *testing.T) {
	// Whatever the (non-negative) delays, events fire in nondecreasing time
	// order and the clock never goes backwards.
	f := func(raw []uint16) bool {
		var e Engine
		var fireTimes []Time
		for _, r := range raw {
			d := Time(r % 1000)
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
