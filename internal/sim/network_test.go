package sim

import (
	"testing"

	"samnet/internal/geom"
	"samnet/internal/topology"
)

func lineTopo(n int) *topology.Topology {
	t := topology.New("line", 1.001)
	for i := 0; i < n; i++ {
		t.AddNode(geom.Pt(float64(i), 0))
	}
	return t
}

type recorder struct {
	got []string
}

func (r *recorder) Recv(n *Network, self, from topology.NodeID, pkt Packet) {
	r.got = append(r.got, pkt.(string))
}

func TestBroadcastReachesNeighborsOnly(t *testing.T) {
	topo := lineTopo(4)
	net := NewNetwork(topo, Config{Seed: 1})
	recs := make([]*recorder, 4)
	for i := range recs {
		recs[i] = &recorder{}
		net.SetHandler(topology.NodeID(i), recs[i])
	}
	net.Schedule(0, func() { net.Broadcast(1, "hello") })
	net.Run()
	if len(recs[0].got) != 1 || len(recs[2].got) != 1 {
		t.Error("neighbors of 1 should receive the broadcast")
	}
	if len(recs[1].got) != 0 {
		t.Error("sender should not receive its own broadcast")
	}
	if len(recs[3].got) != 0 {
		t.Error("node out of range received the broadcast")
	}
}

func TestBroadcastCountsOneTxPerAirTransmission(t *testing.T) {
	topo := lineTopo(3)
	net := NewNetwork(topo, Config{Seed: 1})
	net.Schedule(0, func() { net.Broadcast(1, "x") })
	net.Run()
	if got := net.TxCount(1); got != 1 {
		t.Errorf("TxCount = %d, want 1 (single on-air transmission)", got)
	}
	tx, rx := net.TotalTraffic()
	if tx != 1 || rx != 2 {
		t.Errorf("traffic = %d/%d, want 1/2", tx, rx)
	}
}

func TestUnicast(t *testing.T) {
	topo := lineTopo(3)
	net := NewNetwork(topo, Config{Seed: 1})
	r := &recorder{}
	net.SetHandler(1, r)
	net.Schedule(0, func() { net.Unicast(0, 1, "direct") })
	net.Run()
	if len(r.got) != 1 || r.got[0] != "direct" {
		t.Errorf("unicast delivery = %v", r.got)
	}
	if net.RxCount(2) != 0 {
		t.Error("unicast should not reach third parties")
	}
}

func TestUnicastNonAdjacentPanics(t *testing.T) {
	topo := lineTopo(3)
	net := NewNetwork(topo, Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("unicast between non-adjacent nodes should panic")
		}
	}()
	net.Unicast(0, 2, "nope")
}

func TestUnicastOverTunnel(t *testing.T) {
	topo := lineTopo(5)
	topo.AddExtraLink(0, 4)
	net := NewNetwork(topo, Config{Seed: 1})
	r := &recorder{}
	net.SetHandler(4, r)
	net.Schedule(0, func() { net.Unicast(0, 4, "tunneled") })
	net.Run()
	if len(r.got) != 1 {
		t.Error("tunnel unicast failed")
	}
}

func TestDropFuncSuppressesDelivery(t *testing.T) {
	topo := lineTopo(2)
	net := NewNetwork(topo, Config{Seed: 1})
	r := &recorder{}
	net.SetHandler(1, r)
	net.SetDropFunc(func(n *Network, from, to topology.NodeID, pkt Packet) bool {
		return true
	})
	net.Schedule(0, func() { net.Broadcast(0, "lost") })
	net.Run()
	if len(r.got) != 0 {
		t.Error("dropped packet was delivered")
	}
	tx, rx := net.TotalTraffic()
	if tx != 1 {
		t.Errorf("tx = %d; transmission still happens when receiver drops", tx)
	}
	if rx != 0 {
		t.Errorf("rx = %d; dropped packets must not count as receptions", rx)
	}
	if net.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", net.Dropped())
	}
	if net.Lost() != 0 {
		t.Errorf("Lost = %d; attack drops must not count as channel loss", net.Lost())
	}
	net.Reset(1)
	if net.Dropped() != 0 {
		t.Errorf("Dropped = %d after Reset, want 0", net.Dropped())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]string, Time) {
		topo := lineTopo(6)
		net := NewNetwork(topo, Config{Seed: 42})
		var trace []string
		net.SetAllHandlers(HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
			trace = append(trace, pkt.(string))
			if self != 5 {
				n.Broadcast(self, pkt)
			}
		}))
		net.Schedule(0, func() { net.Broadcast(0, "w") })
		net.RunUntil(20)
		return trace, net.Now()
	}
	t1, n1 := run()
	t2, n2 := run()
	if n1 != n2 || len(t1) != len(t2) {
		t.Fatalf("nondeterministic run: %v/%v vs %v/%v", len(t1), n1, len(t2), n2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("traces differ")
		}
	}
}

func TestSeedChangesJitter(t *testing.T) {
	arrival := func(seed uint64) Time {
		topo := lineTopo(2)
		net := NewNetwork(topo, Config{Seed: seed})
		var at Time
		net.SetHandler(1, HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
			at = n.Now()
		}))
		net.Schedule(0, func() { net.Broadcast(0, "x") })
		net.Run()
		return at
	}
	a, b := arrival(1), arrival(2)
	if a == b {
		t.Error("different seeds should give different jitter")
	}
	if a < 1 || a >= 1.1 {
		t.Errorf("arrival %v outside [HopDelay, HopDelay+Jitter)", a)
	}
}

func TestResetCounters(t *testing.T) {
	topo := lineTopo(2)
	net := NewNetwork(topo, Config{Seed: 1})
	net.Schedule(0, func() { net.Broadcast(0, "x") })
	net.Run()
	net.ResetCounters()
	tx, rx := net.TotalTraffic()
	if tx != 0 || rx != 0 {
		t.Errorf("counters not reset: %d/%d", tx, rx)
	}
}

func TestLossRateDropsReceptions(t *testing.T) {
	topo := lineTopo(2)
	net := NewNetwork(topo, Config{Seed: 1, LossRate: 1})
	r := &recorder{}
	net.SetHandler(1, r)
	for i := 0; i < 20; i++ {
		net.Schedule(0, func() { net.Broadcast(0, "x") })
	}
	net.Run()
	if len(r.got) != 0 {
		t.Errorf("received %d packets at 100%% loss", len(r.got))
	}
	if net.Lost() != 20 {
		t.Errorf("Lost = %d, want 20", net.Lost())
	}
}

func TestLossRatePartial(t *testing.T) {
	topo := lineTopo(2)
	net := NewNetwork(topo, Config{Seed: 1, LossRate: 0.5})
	r := &recorder{}
	net.SetHandler(1, r)
	const n = 400
	for i := 0; i < n; i++ {
		net.Schedule(0, func() { net.Broadcast(0, "x") })
	}
	net.Run()
	got := len(r.got)
	if got < n/4 || got > 3*n/4 {
		t.Errorf("received %d of %d at 50%% loss", got, n)
	}
	if int(net.Lost())+got != n {
		t.Errorf("lost (%d) + received (%d) != sent (%d)", net.Lost(), got, n)
	}
}

func TestDelayFactorSpeedsDelivery(t *testing.T) {
	arrival := func(factor float64) Time {
		topo := lineTopo(2)
		net := NewNetwork(topo, Config{Seed: 9})
		if factor != 1 {
			net.SetDelayFactor(0, factor)
		}
		var at Time
		net.SetHandler(1, HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
			at = n.Now()
		}))
		net.Schedule(0, func() { net.Broadcast(0, "x") })
		net.Run()
		return at
	}
	fast, slow := arrival(0.5), arrival(2)
	if fast >= arrival(1) || slow <= arrival(1) {
		t.Errorf("delay factors not respected: fast=%v slow=%v normal=%v", fast, slow, arrival(1))
	}
}

func TestDelayFactorRejectsNonPositive(t *testing.T) {
	topo := lineTopo(2)
	net := NewNetwork(topo, Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("non-positive factor should panic")
		}
	}()
	net.SetDelayFactor(0, 0)
}

// BenchmarkFloodLargeGrid measures raw event throughput: a full flood over
// a 30x30 grid (every node rebroadcasts once), ~900 broadcasts and ~3500
// receptions per iteration.
func BenchmarkFloodLargeGrid(b *testing.B) {
	topo := topology.New("grid30", 1.001)
	for x := 0; x < 30; x++ {
		for y := 0; y < 30; y++ {
			topo.AddNode(geom.Pt(float64(x), float64(y)))
		}
	}
	topo.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := NewNetwork(topo, Config{Seed: uint64(i + 1)})
		seen := make([]bool, topo.N())
		net.SetAllHandlers(HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
			if !seen[self] {
				seen[self] = true
				n.Broadcast(self, pkt)
			}
		}))
		net.Schedule(0, func() { net.Broadcast(0, "flood") })
		net.Run()
		if net.Processed() == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkBroadcastDelivery isolates the per-delivery cost.
func BenchmarkBroadcastDelivery(b *testing.B) {
	topo := lineTopo(3)
	net := NewNetwork(topo, Config{Seed: 1})
	net.SetAllHandlers(HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Schedule(0, func() { net.Broadcast(1, "x") })
		net.Run()
	}
}

func TestSetLinkDelaySlowsOnlyThatLink(t *testing.T) {
	topo := lineTopo(5)
	topo.AddExtraLink(0, 4)
	// Deterministic timing: no jitter.
	net := NewNetwork(topo, Config{Seed: 1, Jitter: ExplicitZero})
	net.SetLinkDelay(0, 4, 6)

	var tunnelAt, radioAt Time
	net.SetHandler(4, HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
		tunnelAt = n.Now()
	}))
	net.SetHandler(1, HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
		radioAt = n.Now()
	}))
	net.Schedule(0, func() {
		net.Unicast(0, 4, "tunneled")
		net.Unicast(0, 1, "radio")
	})
	net.Run()
	if radioAt != 1 {
		t.Errorf("radio hop arrived at %v, want 1", radioAt)
	}
	if tunnelAt != 7 {
		t.Errorf("tunnel crossing arrived at %v, want hop delay 1 + link delay 6", tunnelAt)
	}

	// A non-positive delay clears the entry; Reset clears all of them.
	net.SetLinkDelay(0, 4, 0)
	net.SetLinkDelay(0, 1, 3)
	net.Reset(2)
	radioAt = 0
	net.SetHandler(1, HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
		radioAt = n.Now()
	}))
	net.Schedule(0, func() { net.Unicast(0, 1, "after reset") })
	net.Run()
	if radioAt != 1 {
		t.Errorf("link delays survived Reset: arrival at %v, want 1", radioAt)
	}
}
