package sim

import (
	"testing"

	"samnet/internal/topology"
)

// floodTrace runs the same rebroadcast flood TestDeterministicAcrossRuns
// uses and returns its full reception trace, final clock, and traffic.
func floodTrace(net *Network) (trace []topology.NodeID, now Time, tx, rx int64) {
	last := topology.NodeID(net.Topology().N() - 1)
	net.SetAllHandlers(HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
		trace = append(trace, self)
		if self != last {
			n.Broadcast(self, pkt)
		}
	}))
	net.Schedule(0, func() { net.Broadcast(0, "w") })
	now = net.RunUntil(20)
	tx, rx = net.TotalTraffic()
	return trace, now, tx, rx
}

func sameTrace(t *testing.T, label string, a, b []topology.NodeID) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: traces diverge at %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func TestResetReproducesFreshNetwork(t *testing.T) {
	topo := lineTopo(6)
	wantTrace, wantNow, wantTx, wantRx := floodTrace(NewNetwork(topo, Config{Seed: 42}))

	// Dirty a network with a different seed, handlers, counters, a drop func
	// and a delay factor, then Reset to seed 42: every observable must match
	// a fresh NewNetwork.
	net := NewNetwork(topo, Config{Seed: 7})
	net.SetDropFunc(func(n *Network, from, to topology.NodeID, pkt Packet) bool { return false })
	net.SetDelayFactor(2, 0.5)
	net.NextID()
	floodTrace(net)

	net.Reset(42)
	if net.Now() != 0 || net.Pending() != 0 || net.Processed() != 0 {
		t.Fatalf("Reset left engine state: now=%v pending=%d processed=%d",
			net.Now(), net.Pending(), net.Processed())
	}
	if tx, rx := net.TotalTraffic(); tx != 0 || rx != 0 || net.Lost() != 0 {
		t.Fatalf("Reset left counters: %d/%d lost=%d", tx, rx, net.Lost())
	}
	if id := net.NextID(); id != 1 {
		t.Errorf("NextID after Reset = %d, want 1", id)
	}
	net.Reset(42) // NextID above consumed an id; rewind again
	gotTrace, gotNow, gotTx, gotRx := floodTrace(net)
	sameTrace(t, "reset", gotTrace, wantTrace)
	if gotNow != wantNow || gotTx != wantTx || gotRx != wantRx {
		t.Errorf("reset run differs: now %v/%v tx %d/%d rx %d/%d",
			gotNow, wantNow, gotTx, wantTx, gotRx, wantRx)
	}
}

func TestRetargetAcrossTopologies(t *testing.T) {
	small, big := lineTopo(3), lineTopo(8)
	wantTrace, wantNow, _, _ := floodTrace(NewNetwork(big, Config{Seed: 9}))

	net := NewNetwork(small, Config{Seed: 1})
	floodTrace(net)
	net.Retarget(big, Config{Seed: 9})
	gotTrace, gotNow, _, _ := floodTrace(net)
	sameTrace(t, "retarget-grow", gotTrace, wantTrace)
	if gotNow != wantNow {
		t.Errorf("retarget clock differs: %v vs %v", gotNow, wantNow)
	}

	// Shrinking back must not leak the larger node count.
	net.Retarget(small, Config{Seed: 3})
	want2, _, _, _ := floodTrace(NewNetwork(small, Config{Seed: 3}))
	got2, _, _, _ := floodTrace(net)
	sameTrace(t, "retarget-shrink", got2, want2)
}

func TestConfigExplicitZeroJitter(t *testing.T) {
	arrival := func(seed uint64, cfg Config) Time {
		cfg.Seed = seed
		net := NewNetwork(lineTopo(2), cfg)
		var at Time
		net.SetHandler(1, HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {
			at = n.Now()
		}))
		net.Schedule(0, func() { net.Broadcast(0, "x") })
		net.Run()
		return at
	}
	// ExplicitZero jitter: delivery lands exactly on HopDelay, every seed.
	for _, seed := range []uint64{1, 2, 99} {
		if at := arrival(seed, Config{Jitter: ExplicitZero}); at != 1 {
			t.Errorf("seed %d with explicit-zero jitter arrived at %v, want exactly 1", seed, at)
		}
	}
	// ExplicitZero hop delay: only jitter remains.
	if at := arrival(1, Config{HopDelay: ExplicitZero}); at < 0 || at >= 0.1 {
		t.Errorf("explicit-zero hop delay arrived at %v, want [0, 0.1)", at)
	}
	// Both explicit zero: instantaneous delivery.
	if at := arrival(1, Config{HopDelay: ExplicitZero, Jitter: ExplicitZero}); at != 0 {
		t.Errorf("fully zero-delay network arrived at %v, want 0", at)
	}
	// Plain zero still means the defaults.
	if at := arrival(1, Config{}); at < 1 || at >= 1.1 {
		t.Errorf("default config arrived at %v, want [1, 1.1)", at)
	}
}

// TestBroadcastDeliverZeroAlloc pins the tentpole invariant: once warm, a
// broadcast plus the delivery of every copy allocates nothing — no closure,
// no boxed heap event.
func TestBroadcastDeliverZeroAlloc(t *testing.T) {
	net := NewNetwork(lineTopo(3), Config{Seed: 1})
	var pkt Packet = "x"
	net.SetAllHandlers(HandlerFunc(func(n *Network, self, from topology.NodeID, pkt Packet) {}))
	// Warm the event queue.
	net.Broadcast(1, pkt)
	net.Run()
	if got := testing.AllocsPerRun(200, func() {
		net.Broadcast(1, pkt)
		net.Run()
	}); got != 0 {
		t.Errorf("broadcast+deliver allocates %.1f times per op, want 0", got)
	}
	// Reset is part of the steady-state reuse loop and must stay free too.
	if got := testing.AllocsPerRun(200, func() {
		net.Reset(5)
		net.SetAllHandlers(HandlerFunc(nopHandler))
		net.Broadcast(1, pkt)
		net.Run()
	}); got != 0 {
		t.Errorf("reset+broadcast+deliver allocates %.1f times per op, want 0", got)
	}
}

func nopHandler(n *Network, self, from topology.NodeID, pkt Packet) {}
