package sim

import (
	"fmt"
	"math/rand/v2"

	"samnet/internal/topology"
)

// Packet is any protocol payload carried by the network. Protocols define
// their own concrete packet types; the network treats them opaquely.
type Packet interface{}

// Handler is the per-node protocol logic. Recv is invoked once per
// reception, at the virtual time the packet arrives.
type Handler interface {
	Recv(n *Network, self, from topology.NodeID, pkt Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(n *Network, self, from topology.NodeID, pkt Packet)

// Recv implements Handler.
func (f HandlerFunc) Recv(n *Network, self, from topology.NodeID, pkt Packet) {
	f(n, self, from, pkt)
}

// DropFunc decides whether a particular reception is lost. It models both
// link-level loss and malicious payload dropping (black/grey holes). Return
// true to drop the packet before the receiving handler sees it. The
// transmission is still counted; the reception is not.
type DropFunc func(n *Network, from, to topology.NodeID, pkt Packet) bool

// ExplicitZero requests a genuinely zero HopDelay or Jitter, which a literal
// zero cannot (zero means "use the default"). Any negative value is treated
// as zero, mirroring sam.DetectorConfig's explicit-zero convention.
const ExplicitZero = -1

// Config parameterizes a Network.
type Config struct {
	// HopDelay is the nominal transmission delay per hop (default 1; use
	// ExplicitZero for a zero-delay network).
	HopDelay Time
	// Jitter is the maximum extra uniform random delay added to each
	// broadcast, modeling MAC contention and breaking grid symmetry
	// (default 0.1; use ExplicitZero for a jitter-free network). All
	// receivers of one broadcast share the same jitter, as they would share
	// one on-air transmission.
	Jitter float64
	// LossRate is the probability that any single reception is lost to
	// channel noise (independent per receiver; default 0). Lost receptions
	// are counted as transmissions but not receptions, like attack drops.
	LossRate float64
	// Seed feeds the simulation's PCG random source.
	Seed uint64
}

func (c *Config) defaults() {
	switch {
	case c.HopDelay == 0:
		c.HopDelay = 1
	case c.HopDelay < 0:
		c.HopDelay = 0
	}
	switch {
	case c.Jitter == 0:
		c.Jitter = 0.1
	case c.Jitter < 0:
		c.Jitter = 0
	}
}

// simStream is the fixed PCG stream selector for simulation randomness; the
// seed alone distinguishes runs.
const simStream = 0x5a4d5e7b2f9c1d03

// Network couples an Engine with a topology, per-node handlers and
// transmission/reception counters.
type Network struct {
	Engine
	topo     *topology.Topology
	handlers []Handler
	rng      *rand.Rand
	pcg      *rand.PCG
	cfg      Config
	drop     DropFunc

	tx []int64 // transmissions per node
	rx []int64 // receptions per node

	// delayFactor scales a node's transmission delay (rushing attackers
	// transmit "faster" by skipping MAC politeness); nil means all 1.
	delayFactor []float64
	// factorSpare keeps a cleared delayFactor slice across Reset so reuse
	// cycles that re-arm attackers do not reallocate it.
	factorSpare []float64

	// linkDelay adds extra propagation delay to specific links — the
	// variable-latency out-of-band tunnels of complex wormhole attacks, where
	// the covert channel is slower than one radio hop. Nil means no link has
	// extra delay, keeping the hot delivery path a single nil check.
	linkDelay map[topology.Link]Time

	lost    int64 // receptions destroyed by channel loss
	dropped int64 // receptions destroyed by the drop hook (attacks)
	ids     uint64
}

// NewNetwork builds a network over topo. Handlers default to a no-op; set
// them with SetHandler before injecting traffic.
func NewNetwork(topo *topology.Topology, cfg Config) *Network {
	cfg.defaults()
	pcg := rand.NewPCG(cfg.Seed, simStream)
	n := &Network{
		topo:     topo,
		handlers: make([]Handler, topo.N()),
		rng:      rand.New(pcg),
		pcg:      pcg,
		cfg:      cfg,
		tx:       make([]int64, topo.N()),
		rx:       make([]int64, topo.N()),
	}
	n.Engine.net = n
	return n
}

// Reset rewinds the network to the pristine state NewNetwork(topo, cfg)
// with the given seed would produce — clock at zero, counters zeroed,
// handlers and drop/delay hooks cleared, RNG reseeded to the identical
// stream — while keeping every allocation (event queue, per-node slices)
// for reuse. It does NOT touch the topology: attacker tunnel links added to
// the topology survive a Reset, exactly as they survive building a fresh
// Network over the same topology.
func (n *Network) Reset(seed uint64) {
	n.cfg.Seed = seed
	n.resetState()
}

// Retarget rebinds the network to a (possibly different) topology and a
// fresh config, reusing per-node slices when the node count allows. It is
// Reset for sweeps that rebuild their topology per run: afterwards the
// network is indistinguishable from NewNetwork(topo, cfg).
func (n *Network) Retarget(topo *topology.Topology, cfg Config) {
	cfg.defaults()
	n.topo = topo
	n.cfg = cfg
	if m := topo.N(); m != len(n.handlers) {
		n.handlers = make([]Handler, m)
		n.tx = make([]int64, m)
		n.rx = make([]int64, m)
		n.factorSpare = nil
	}
	n.resetState()
}

func (n *Network) resetState() {
	n.Engine.reset()
	n.pcg.Seed(n.cfg.Seed, simStream)
	for i := range n.handlers {
		n.handlers[i] = nil
	}
	for i := range n.tx {
		n.tx[i] = 0
		n.rx[i] = 0
	}
	if n.delayFactor != nil {
		n.factorSpare = n.delayFactor
	}
	n.delayFactor = nil
	n.linkDelay = nil
	n.drop = nil
	n.lost = 0
	n.dropped = 0
	n.ids = 0
}

// NextID returns a fresh nonzero identifier, unique within this network
// since construction or the last Reset/Retarget. Route discovery uses it
// for request ids, so packet traces depend only on the network's own
// history, never on global or cross-worker state.
func (n *Network) NextID() uint64 {
	n.ids++
	return n.ids
}

// Topology returns the underlying topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Rand returns the simulation's random source. Protocols needing randomness
// must draw from it so runs stay reproducible.
func (n *Network) Rand() *rand.Rand { return n.rng }

// SetHandler installs the protocol logic for node id.
func (n *Network) SetHandler(id topology.NodeID, h Handler) { n.handlers[id] = h }

// SetAllHandlers installs h on every node.
func (n *Network) SetAllHandlers(h Handler) {
	for i := range n.handlers {
		n.handlers[i] = h
	}
}

// SetDropFunc installs the loss/attack drop decision (nil disables).
func (n *Network) SetDropFunc(d DropFunc) { n.drop = d }

// SetDelayFactor scales node id's transmission delay. Factors below 1 model
// rushing attackers that skip MAC-level politeness to win duplicate-
// suppression races; factors above 1 model congested or weak transmitters.
func (n *Network) SetDelayFactor(id topology.NodeID, f float64) {
	if f <= 0 {
		panic("sim: delay factor must be positive")
	}
	if n.delayFactor == nil {
		if n.factorSpare != nil && len(n.factorSpare) == n.topo.N() {
			n.delayFactor, n.factorSpare = n.factorSpare, nil
		} else {
			n.delayFactor = make([]float64, n.topo.N())
		}
		for i := range n.delayFactor {
			n.delayFactor[i] = 1
		}
	}
	n.delayFactor[id] = f
}

// SetLinkDelay adds extra propagation delay to every delivery crossing the
// a-b link, in either direction, on top of the transmitter's normal delay.
// Wormhole scenarios model variable-latency tunnels with it: the out-of-band
// channel still collapses many radio hops into one link, but each crossing
// costs extra time — the delay evidence a timing-aware detector keys on.
// A non-positive extra clears the link's entry.
func (n *Network) SetLinkDelay(a, b topology.NodeID, extra Time) {
	l := topology.MkLink(a, b)
	if extra <= 0 {
		delete(n.linkDelay, l)
		return
	}
	if n.linkDelay == nil {
		n.linkDelay = make(map[topology.Link]Time, 4)
	}
	n.linkDelay[l] = extra
}

// Lost returns how many receptions channel noise destroyed.
func (n *Network) Lost() int64 { return n.lost }

// Dropped returns how many receptions the drop hook destroyed — black/grey
// hole payload drops and other malicious behaviour, as opposed to channel
// loss (Lost). Together with TotalTraffic these are the simulation's
// tx/rx/drop telemetry totals.
func (n *Network) Dropped() int64 { return n.dropped }

// TxCount returns the number of transmissions node id has performed.
func (n *Network) TxCount(id topology.NodeID) int64 { return n.tx[id] }

// RxCount returns the number of receptions at node id.
func (n *Network) RxCount(id topology.NodeID) int64 { return n.rx[id] }

// TotalTraffic returns the total transmissions and receptions summed over
// all nodes — the paper's Table II overhead metric.
func (n *Network) TotalTraffic() (tx, rx int64) {
	for i := range n.tx {
		tx += n.tx[i]
		rx += n.rx[i]
	}
	return tx, rx
}

// ResetCounters zeroes all traffic counters.
func (n *Network) ResetCounters() {
	for i := range n.tx {
		n.tx[i] = 0
		n.rx[i] = 0
	}
}

// Broadcast transmits pkt from node "from" to every current neighbor. The
// single on-air transmission is counted once; each neighbor that is not
// dropped receives after HopDelay plus one shared jitter draw.
func (n *Network) Broadcast(from topology.NodeID, pkt Packet) {
	n.tx[from]++
	delay := n.txDelay(from)
	for _, to := range n.topo.Neighbors(from) {
		n.deliver(from, to, pkt, delay)
	}
}

func (n *Network) txDelay(from topology.NodeID) Time {
	d := n.cfg.HopDelay + Time(n.rng.Float64()*n.cfg.Jitter)
	if n.delayFactor != nil {
		d *= Time(n.delayFactor[from])
	}
	return d
}

// Unicast transmits pkt from "from" to adjacent node "to". It panics if the
// nodes are not adjacent: routing bugs should fail loudly, not silently
// teleport packets.
func (n *Network) Unicast(from, to topology.NodeID, pkt Packet) {
	if !n.topo.Adjacent(from, to) {
		panic(fmt.Sprintf("sim: unicast between non-adjacent nodes %d and %d", from, to))
	}
	n.tx[from]++
	n.deliver(from, to, pkt, n.txDelay(from))
}

func (n *Network) deliver(from, to topology.NodeID, pkt Packet, delay Time) {
	// Channel loss is drawn at transmission time so the loss pattern is
	// independent of handler scheduling.
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.lost++
		return
	}
	if n.linkDelay != nil {
		delay += n.linkDelay[topology.MkLink(from, to)]
	}
	n.scheduleDelivery(delay, from, to, pkt)
}

// dispatch is the engine's callback for delivery events: the receive-side
// half of deliver, at arrival time.
func (n *Network) dispatch(from, to topology.NodeID, pkt Packet) {
	if n.drop != nil && n.drop(n, from, to, pkt) {
		n.dropped++
		return
	}
	n.rx[to]++
	if h := n.handlers[to]; h != nil {
		h.Recv(n, to, from, pkt)
	}
}
