// Package mobility adds node movement on top of the static topologies — the
// extension the paper defers ("node mobility is not considered in this
// study"). The classic random-waypoint model is implemented: each mobile
// node repeatedly picks a uniform waypoint in its arena and a uniform speed
// from [MinSpeed, MaxSpeed], travels there in a straight line, pauses, and
// repeats.
//
// Movement happens between route discoveries (Advance), never during one:
// each discovery sees a frozen snapshot, matching the quasi-static regime
// where on-demand routing is meaningful. Attackers can be pinned
// (Pin) to keep the paper's fixed-attacker assumption while legitimate
// nodes roam.
package mobility

import (
	"math/rand/v2"

	"samnet/internal/geom"
	"samnet/internal/topology"
)

// ExplicitZero requests a true zero for Config fields whose zero value means
// "use the default" — the repo-wide convention for zero-vs-unset config.
const ExplicitZero = -1

// Config parameterizes the random-waypoint model.
type Config struct {
	// Arena is the rectangle nodes roam in. Required.
	Arena geom.Rect
	// MinSpeed and MaxSpeed bound the per-leg speed in distance units per
	// unit time (defaults 0.5 and 1.5). MinSpeed must be positive: the
	// classic model's zero-minimum speed decays to a frozen network.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint (default 1). ExplicitZero
	// selects the zero-pause model, where nodes never dwell between legs.
	Pause float64
}

func (c *Config) defaults() {
	if c.MinSpeed == 0 {
		c.MinSpeed = 0.5
	}
	if c.MaxSpeed == 0 {
		c.MaxSpeed = 1.5
	}
	switch {
	case c.Pause == 0:
		c.Pause = 1
	case c.Pause < 0:
		c.Pause = 0
	}
}

// Model moves the nodes of one topology.
type Model struct {
	cfg    Config
	topo   *topology.Topology
	rng    *rand.Rand
	pinned map[topology.NodeID]bool
	legs   []leg
	now    float64
}

// leg is one node's current trajectory: from -> to, departing at start with
// the given speed, then pausing until pauseUntil before the next draw.
type leg struct {
	from, to   geom.Point
	start      float64
	speed      float64
	pauseUntil float64
	paused     bool
}

// New builds a random-waypoint model over topo. rng drives waypoint and
// speed draws.
func New(topo *topology.Topology, cfg Config, rng *rand.Rand) *Model {
	cfg.defaults()
	if cfg.Arena.Width() <= 0 || cfg.Arena.Height() <= 0 {
		panic("mobility: arena must have positive area")
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		panic("mobility: speeds must satisfy 0 < min <= max")
	}
	m := &Model{
		cfg:    cfg,
		topo:   topo,
		rng:    rng,
		pinned: make(map[topology.NodeID]bool),
		legs:   make([]leg, topo.N()),
	}
	for i := range m.legs {
		m.legs[i] = m.newLeg(topo.Pos(topology.NodeID(i)), 0)
	}
	return m
}

// Pin freezes a node in place (the paper's fixed-position attackers).
func (m *Model) Pin(ids ...topology.NodeID) {
	for _, id := range ids {
		m.pinned[id] = true
	}
}

// Now returns the model's current time.
func (m *Model) Now() float64 { return m.now }

func (m *Model) newLeg(from geom.Point, start float64) leg {
	to := geom.Pt(
		m.cfg.Arena.Min.X+m.rng.Float64()*m.cfg.Arena.Width(),
		m.cfg.Arena.Min.Y+m.rng.Float64()*m.cfg.Arena.Height(),
	)
	speed := m.cfg.MinSpeed + m.rng.Float64()*(m.cfg.MaxSpeed-m.cfg.MinSpeed)
	return leg{from: from, to: to, start: start, speed: speed}
}

// Advance moves time forward by dt and updates every unpinned node's
// position, drawing new waypoints as legs complete.
func (m *Model) Advance(dt float64) {
	if dt < 0 {
		panic("mobility: negative dt")
	}
	m.now += dt
	for i := range m.legs {
		id := topology.NodeID(i)
		if m.pinned[id] {
			continue
		}
		m.topo.SetPos(id, m.positionAt(i, m.now))
	}
}

// positionAt resolves node i's position at time t, rolling legs forward as
// needed.
func (m *Model) positionAt(i int, t float64) geom.Point {
	l := &m.legs[i]
	for {
		if l.paused {
			if t < l.pauseUntil {
				return l.to
			}
			*l = m.newLeg(l.to, l.pauseUntil)
			continue
		}
		dist := l.from.Dist(l.to)
		travel := dist / l.speed
		if t < l.start+travel {
			frac := (t - l.start) / travel
			return l.from.Lerp(l.to, frac)
		}
		l.paused = true
		l.pauseUntil = l.start + travel + m.cfg.Pause
	}
}

// InArena reports whether every node currently sits inside the arena —
// a model invariant (pinned nodes may start outside; they are exempt).
func (m *Model) InArena() bool {
	for i := 0; i < m.topo.N(); i++ {
		id := topology.NodeID(i)
		if m.pinned[id] {
			continue
		}
		if !m.cfg.Arena.Contains(m.topo.Pos(id)) {
			return false
		}
	}
	return true
}
