package mobility

import (
	"math/rand/v2"
	"testing"

	"samnet/internal/geom"
	"samnet/internal/topology"
)

func arena() geom.Rect { return geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)) }

func testTopo(n int) *topology.Topology {
	t := topology.New("mob", 3)
	for i := 0; i < n; i++ {
		t.AddNode(geom.Pt(float64(i%5)*2, float64(i/5)*2))
	}
	return t
}

func TestAdvanceMovesNodes(t *testing.T) {
	topo := testTopo(10)
	before := topo.Positions()
	m := New(topo, Config{Arena: arena()}, rand.New(rand.NewPCG(1, 1)))
	m.Advance(5)
	moved := 0
	for i, p := range topo.Positions() {
		if p != before[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no node moved after 5 time units")
	}
}

func TestPinnedNodesStay(t *testing.T) {
	topo := testTopo(10)
	m := New(topo, Config{Arena: arena()}, rand.New(rand.NewPCG(1, 1)))
	m.Pin(0, 3)
	p0, p3 := topo.Pos(0), topo.Pos(3)
	m.Advance(20)
	if topo.Pos(0) != p0 || topo.Pos(3) != p3 {
		t.Error("pinned nodes moved")
	}
}

func TestNodesStayInArena(t *testing.T) {
	topo := testTopo(10)
	m := New(topo, Config{Arena: arena()}, rand.New(rand.NewPCG(2, 2)))
	for step := 0; step < 200; step++ {
		m.Advance(0.37)
		if !m.InArena() {
			t.Fatalf("node left the arena at step %d", step)
		}
	}
}

func TestMovementIsContinuous(t *testing.T) {
	// Over a small dt, no node may jump farther than MaxSpeed*dt.
	topo := testTopo(10)
	cfg := Config{Arena: arena(), MinSpeed: 0.5, MaxSpeed: 1.5}
	m := New(topo, cfg, rand.New(rand.NewPCG(3, 3)))
	const dt = 0.1
	prev := topo.Positions()
	for step := 0; step < 500; step++ {
		m.Advance(dt)
		cur := topo.Positions()
		for i := range cur {
			if d := cur[i].Dist(prev[i]); d > cfg.MaxSpeed*dt+1e-9 {
				t.Fatalf("node %d jumped %.3f in dt=%.2f (max %.3f)", i, d, dt, cfg.MaxSpeed*dt)
			}
		}
		prev = cur
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	topo := testTopo(5)
	m := New(topo, Config{Arena: arena()}, rand.New(rand.NewPCG(4, 4)))
	before := topo.Positions()
	m.Advance(0)
	for i, p := range topo.Positions() {
		if p != before[i] {
			t.Error("Advance(0) moved a node")
		}
	}
	if m.Now() != 0 {
		t.Error("time advanced")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	topo := testTopo(2)
	m := New(topo, Config{Arena: arena()}, rand.New(rand.NewPCG(5, 5)))
	defer func() {
		if recover() == nil {
			t.Error("negative dt should panic")
		}
	}()
	m.Advance(-1)
}

func TestBadConfigPanics(t *testing.T) {
	topo := testTopo(2)
	rng := rand.New(rand.NewPCG(6, 6))
	for _, cfg := range []Config{
		{}, // no arena
		{Arena: arena(), MinSpeed: 2, MaxSpeed: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(topo, cfg, rng)
		}()
	}
}

func TestAdjacencyTracksMovement(t *testing.T) {
	// Two nodes start adjacent; after enough movement, adjacency must be
	// recomputed from the new positions (cache invalidation).
	topo := topology.New("pair", 1.5)
	a := topo.AddNode(geom.Pt(0, 0))
	b := topo.AddNode(geom.Pt(1, 0))
	if !topo.Adjacent(a, b) {
		t.Fatal("should start adjacent")
	}
	m := New(topo, Config{Arena: geom.NewRect(geom.Pt(0, 0), geom.Pt(50, 50))}, rand.New(rand.NewPCG(7, 7)))
	changed := false
	for step := 0; step < 400 && !changed; step++ {
		m.Advance(1)
		if !topo.Adjacent(a, b) {
			changed = true
		}
	}
	if !changed {
		t.Error("adjacency never changed despite roaming a 50x50 arena")
	}
}

// TestExplicitZeroPauseNeverDwells pins the ExplicitZero convention on
// Config.Pause: previously a requested zero pause was silently coerced to
// the default dwell of 1, making the classic zero-pause waypoint model
// unreachable. With Pause: ExplicitZero every node must be in motion at
// every sampling instant.
func TestExplicitZeroPauseNeverDwells(t *testing.T) {
	topo := testTopo(6)
	m := New(topo, Config{Arena: arena(), Pause: ExplicitZero}, rand.New(rand.NewPCG(3, 3)))
	if m.cfg.Pause != 0 {
		t.Fatalf("ExplicitZero resolved to %v, want 0", m.cfg.Pause)
	}
	prev := topo.Positions()
	for step := 0; step < 500; step++ {
		m.Advance(0.05)
		cur := topo.Positions()
		for i := range cur {
			if cur[i] == prev[i] {
				t.Fatalf("node %d dwelled at %v during step %d despite zero pause", i, cur[i], step)
			}
		}
		prev = cur
	}
}

// TestPauseZeroStillDefaults pins the compatibility half of the convention:
// a plain zero keeps selecting the default dwell.
func TestPauseZeroStillDefaults(t *testing.T) {
	m := New(testTopo(2), Config{Arena: arena()}, rand.New(rand.NewPCG(4, 4)))
	if m.cfg.Pause != 1 {
		t.Errorf("unset Pause resolved to %v, want default 1", m.cfg.Pause)
	}
}
