package samnet

// This file is the library's public facade: the handful of types and
// functions a downstream user needs to build a network, run multi-path
// route discovery, and detect wormholes with SAM, without touching the
// internal packages directly. Everything here delegates to internal/.

import (
	"math/rand/v2"

	"samnet/internal/attack"
	"samnet/internal/routing"
	"samnet/internal/routing/dsr"
	"samnet/internal/routing/mr"
	"samnet/internal/sam"
	"samnet/internal/service"
	"samnet/internal/sim"
	"samnet/internal/topology"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Network is a built topology plus its source/destination pools and
	// attacker sites.
	Network = topology.Network
	// NodeID identifies a node.
	NodeID = topology.NodeID
	// Link is an undirected link between two nodes.
	Link = topology.Link
	// Route is an ordered node sequence from source to destination.
	Route = routing.Route
	// Discovery is the outcome of one route discovery.
	Discovery = routing.Discovery
	// Stats holds SAM's link-frequency statistics of one route set.
	Stats = sam.Stats
	// Profile is a trained normal-condition profile.
	Profile = sam.Profile
	// Trainer accumulates normal runs into a Profile.
	Trainer = sam.Trainer
	// Detector scores route sets against a Profile.
	Detector = sam.Detector
	// DetectorConfig tunes the detector.
	DetectorConfig = sam.DetectorConfig
	// Verdict is a detector decision with its soft lambda.
	Verdict = sam.Verdict
	// Pipeline is the three-step detection procedure.
	Pipeline = sam.Pipeline
	// Wormhole is an installed tunnel between two attacker nodes.
	Wormhole = attack.Wormhole
	// Scenario bundles active wormholes and their payload behaviour.
	Scenario = attack.Scenario
	// DetectionService is the long-running HTTP/JSON scoring service built
	// around SAM (see internal/service and cmd/samserve).
	DetectionService = service.Service
	// ServiceConfig tunes a DetectionService.
	ServiceConfig = service.Config
)

// Payload behaviours for wormhole endpoints.
const (
	BehaviorForward   = attack.Forward
	BehaviorBlackhole = attack.Blackhole
	BehaviorGreyhole  = attack.Greyhole
)

// NewCluster builds the paper's 2-cluster topology at tier k with the given
// number of (inactive) attacker pairs.
func NewCluster(k, wormholes int) *Network { return topology.Cluster(k, wormholes) }

// NewUniform builds a cols x rows uniform grid at tier k.
func NewUniform(cols, rows, k, wormholes int) *Network {
	return topology.Uniform(cols, rows, k, wormholes)
}

// NewRandom builds a connected random topology with the library defaults
// (60 nodes in a 15x15 area, radio range 2.3), seeded by seed.
func NewRandom(wormholes int, seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0xda7a))
	return topology.Random(topology.RandomConfig{Wormholes: wormholes}, rng)
}

// Attack activates the first `count` wormhole pairs of net with the given
// payload behaviour. Call Teardown on the result to restore the network.
func Attack(net *Network, count int, behavior attack.PayloadBehavior) *Scenario {
	return attack.NewScenario(net, count, behavior)
}

// DiscoverMR floods one multi-path (SMR-like) route discovery from src to
// dst and returns the route set the destination collected. seed makes the
// run reproducible. If the network is under attack (Attack was called and
// not torn down), tunneled routes show up accordingly.
func DiscoverMR(net *Network, src, dst NodeID, seed uint64) *Discovery {
	return discover(net, &mr.Protocol{}, src, dst, seed, nil)
}

// DiscoverDSR runs a DSR-style single-path discovery.
func DiscoverDSR(net *Network, src, dst NodeID, seed uint64) *Discovery {
	return discover(net, &dsr.Protocol{}, src, dst, seed, nil)
}

// DiscoverMRUnderAttack is DiscoverMR with the scenario's payload policy
// armed, so black/grey hole behaviour affects probe traffic on the same
// simulated network.
func DiscoverMRUnderAttack(net *Network, sc *Scenario, src, dst NodeID, seed uint64) *Discovery {
	return discover(net, &mr.Protocol{}, src, dst, seed, sc)
}

// DiscoverMRAvoiding runs a multi-path discovery with the excluded nodes
// isolated: no node sends to or accepts from them — the network-level effect
// of step 3's "notify the neighbors of the attackers in order to isolate
// the attackers".
func DiscoverMRAvoiding(net *Network, excluded map[NodeID]bool, src, dst NodeID, seed uint64) *Discovery {
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
	s.SetDropFunc(func(n *sim.Network, from, to NodeID, pkt sim.Packet) bool {
		return excluded[from] || excluded[to]
	})
	return (&mr.Protocol{}).Discover(s, src, dst)
}

func discover(net *Network, p routing.Protocol, src, dst NodeID, seed uint64, sc *Scenario) *Discovery {
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
	if sc != nil {
		sc.Arm(s)
	}
	return p.Discover(s, src, dst)
}

// Analyze computes SAM's statistics (p_max, phi, per-link frequencies and
// the localization suspect) over a route set.
func Analyze(routes []Route) Stats { return sam.Analyze(routes) }

// NewTrainer returns a profile trainer with default PMF binning.
func NewTrainer(label string) *Trainer { return sam.NewTrainer(label, 0) }

// NewDetector builds a detector with default configuration over a trained
// profile.
func NewDetector(p *Profile) *Detector { return sam.NewDetector(p, sam.DetectorConfig{}) }

// NewDetectionService builds a SAM detection service: a sharded profile
// store plus a bounded worker pool, served over HTTP via its Handler. The
// zero Config selects production defaults. Close the service only after its
// HTTP server has fully shut down.
func NewDetectionService(cfg ServiceConfig) *DetectionService { return service.New(cfg) }

// ProbeRoutes sends one test data packet along each route on a fresh
// simulation of net (with sc's payload policy armed if non-nil) and reports
// which end-to-end ACKs returned — SAM's step 2.
func ProbeRoutes(net *Network, sc *Scenario, routes []Route, seed uint64) []routing.ProbeResult {
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: seed})
	if sc != nil {
		sc.Arm(s)
	}
	return routing.ProbeRoutes(s, routes)
}
