// Package samnet is a from-scratch reproduction of "Wormhole Attacks
// Detection in Wireless Ad Hoc Networks: A Statistical Analysis Approach"
// (Song, Qian, Li — IPDPS 2005): a deterministic wireless ad hoc network
// simulator, DSR and SMR-style multi-path route discovery, wormhole /
// blackhole / greyhole adversaries, the SAM statistical detector with its
// three-step detection pipeline and IDS integration, a geographic
// packet-leash baseline, and an experiment harness that regenerates every
// table and figure of the paper's evaluation.
//
// The root package holds only the benchmark suite (bench_test.go); the
// implementation lives under internal/ and the executables under cmd/.
package samnet
