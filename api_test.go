package samnet_test

import (
	"testing"

	"samnet"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	net := samnet.NewCluster(1, 1)
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]

	normal := samnet.DiscoverMR(net, src, dst, 1)
	if len(normal.Routes) == 0 {
		t.Fatal("no routes on clean network")
	}
	ns := samnet.Analyze(normal.Routes)

	sc := samnet.Attack(net, 1, samnet.BehaviorForward)
	defer sc.Teardown()
	attacked := samnet.DiscoverMR(net, src, dst, 1)
	as := samnet.Analyze(attacked.Routes)

	if as.PMax <= ns.PMax {
		t.Errorf("attack p_max %.3f should exceed normal %.3f", as.PMax, ns.PMax)
	}
	tunnel := sc.TunnelLinks()[0]
	if attacked.AffectedBy(tunnel) != 1 {
		t.Errorf("cluster affected = %v, want 1", attacked.AffectedBy(tunnel))
	}
	if as.Suspect != tunnel {
		t.Errorf("suspect %v != tunnel %v", as.Suspect, tunnel)
	}
}

func TestFacadeBuilders(t *testing.T) {
	if n := samnet.NewUniform(6, 6, 1, 2).Topo.N(); n != 36 {
		t.Errorf("uniform N = %d", n)
	}
	r := samnet.NewRandom(1, 7)
	if !r.Topo.Connected() {
		t.Error("random topology disconnected")
	}
	if len(r.AttackerPairs) != 1 {
		t.Error("wormhole pair missing")
	}
	// Same seed, same placement.
	r2 := samnet.NewRandom(1, 7)
	for i := 0; i < r.Topo.N(); i++ {
		if r.Topo.Pos(samnet.NodeID(i)) != r2.Topo.Pos(samnet.NodeID(i)) {
			t.Fatal("NewRandom not deterministic per seed")
		}
	}
}

func TestFacadeTrainDetect(t *testing.T) {
	net := samnet.NewCluster(1, 1)
	trainer := samnet.NewTrainer("facade")
	for seed := uint64(1); seed <= 15; seed++ {
		src := net.SrcPool[int(seed)%len(net.SrcPool)]
		dst := net.DstPool[int(3*seed)%len(net.DstPool)]
		trainer.ObserveRoutes(samnet.DiscoverMR(net, src, dst, seed).Routes)
	}
	profile, err := trainer.Profile()
	if err != nil {
		t.Fatal(err)
	}
	det := samnet.NewDetector(profile)

	sc := samnet.Attack(net, 1, samnet.BehaviorBlackhole)
	defer sc.Teardown()
	d := samnet.DiscoverMRUnderAttack(net, sc, net.SrcPool[0], net.DstPool[0], 99)
	v := det.Evaluate(samnet.Analyze(d.Routes))
	if v.Lambda > 0.7 {
		t.Errorf("lambda = %.3f; trained detector should find this suspicious at least", v.Lambda)
	}
}

func TestFacadeProbeRoutes(t *testing.T) {
	net := samnet.NewCluster(1, 1)
	sc := samnet.Attack(net, 1, samnet.BehaviorBlackhole)
	defer sc.Teardown()
	d := samnet.DiscoverMRUnderAttack(net, sc, net.SrcPool[0], net.DstPool[0], 5)
	if len(d.Routes) == 0 {
		t.Fatal("no routes")
	}
	res := samnet.ProbeRoutes(net, sc, d.Routes[:1], 6)
	if res[0].Acked {
		t.Error("probe through a blackhole wormhole must fail")
	}
	// Without the scenario armed, the same probe succeeds (tunnel still
	// exists as a link; the attackers just stop dropping).
	res2 := samnet.ProbeRoutes(net, nil, d.Routes[:1], 6)
	if !res2[0].Acked {
		t.Error("probe without payload dropping should succeed")
	}
}

func TestFacadeDSRAndAvoiding(t *testing.T) {
	net := samnet.NewCluster(1, 1)
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]
	d := samnet.DiscoverDSR(net, src, dst, 2)
	if len(d.Routes) == 0 {
		t.Fatal("DSR found nothing")
	}

	sc := samnet.Attack(net, 1, samnet.BehaviorForward)
	defer sc.Teardown()
	excluded := map[samnet.NodeID]bool{}
	for id := range sc.MaliciousNodes() {
		excluded[id] = true
	}
	clean := samnet.DiscoverMRAvoiding(net, excluded, src, dst, 3)
	for _, r := range clean.Routes {
		for id := range excluded {
			if r.Contains(id) {
				t.Errorf("route %v crosses isolated node %d", r, id)
			}
		}
	}
	if len(clean.Routes) == 0 {
		t.Error("isolation left no routes in a well-connected cluster")
	}
}
