// Quickstart: build the paper's cluster topology, run one multi-path route
// discovery with and without a wormhole, and watch SAM's statistics jump.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"samnet"
)

func main() {
	// The paper's 2-cluster system at 1-tier range, with one (inactive)
	// attacker pair embedded.
	net := samnet.NewCluster(1, 1)
	src := net.SrcPool[0]
	dst := net.DstPool[len(net.DstPool)-1]
	fmt.Printf("cluster topology: %d nodes, src=%d dst=%d\n", net.Topo.N(), src, dst)

	// Normal condition.
	normal := samnet.DiscoverMR(net, src, dst, 1)
	ns := samnet.Analyze(normal.Routes)
	fmt.Printf("\nnormal:   %d routes, p_max=%.3f phi=%.3f\n", len(normal.Routes), ns.PMax, ns.Phi)
	for _, r := range normal.Routes {
		fmt.Println("   ", r)
	}

	// Activate the wormhole: the attacker pair tunnels RREQs over a link
	// that shortcuts ~10 normal hops.
	sc := samnet.Attack(net, 1, samnet.BehaviorForward)
	defer sc.Teardown()
	tunnel := sc.TunnelLinks()[0]
	fmt.Printf("\nwormhole active on link %v (spans %d normal hops)\n", tunnel, net.TunnelSpan(0))

	attacked := samnet.DiscoverMR(net, src, dst, 1)
	as := samnet.Analyze(attacked.Routes)
	fmt.Printf("\nattacked: %d routes, p_max=%.3f phi=%.3f\n", len(attacked.Routes), as.PMax, as.Phi)
	for _, r := range attacked.Routes {
		fmt.Println("   ", r)
	}

	fmt.Printf("\naffected routes: %.0f%% (paper: 100%% in cluster topology)\n",
		100*attacked.AffectedBy(tunnel))
	fmt.Printf("SAM's accused link: %v — actual tunnel: %v\n", as.Suspect, tunnel)
	if as.Suspect == tunnel {
		fmt.Println("localization: correct, the statistics alone found the attacker pair")
	}
}
