// Multi-wormhole example (paper Sec. III.D, Fig. 15): two simultaneous
// wormholes in the cluster topology, detected and localized per tunnel with
// the outlier-link statistic.
//
//	go run ./examples/multiwormhole
package main

import (
	"fmt"

	"samnet"
)

func main() {
	net := samnet.NewCluster(1, 2)
	fmt.Printf("cluster topology with %d embedded attacker pairs\n", len(net.AttackerPairs))

	// Baseline: what does p_max look like without any attack?
	src := net.SrcPool[2]
	dst := net.DstPool[len(net.DstPool)-3]
	base := samnet.Analyze(samnet.DiscoverMR(net, src, dst, 11).Routes)
	fmt.Printf("normal:        p_max=%.3f phi=%.3f (%d routes)\n", base.PMax, base.Phi, base.Routes)

	for _, worms := range []int{1, 2} {
		sc := samnet.Attack(net, worms, samnet.BehaviorGreyhole)
		tunnels := sc.TunnelLinks()
		fmt.Printf("%d wormhole(s): tunnels=%v\n", worms, tunnels)

		// Two tunnels compete for routes: whichever shortcut wins for a
		// given source/destination pair captures that discovery, so
		// localizing both needs several discoveries — which is exactly how
		// a deployed IDS sees the network over time.
		localized := map[samnet.Link]bool{}
		for run := 0; run < 6; run++ {
			s := net.SrcPool[(2+run*3)%len(net.SrcPool)]
			t := net.DstPool[(run*5+1)%len(net.DstPool)]
			st := samnet.Analyze(samnet.DiscoverMRUnderAttack(net, sc, s, t, uint64(20+run)).Routes)
			mark := ""
			for _, tl := range tunnels {
				if st.Suspect == tl {
					localized[tl] = true
					mark = "  <- accused the tunnel"
				}
			}
			fmt.Printf("  run %d: src=%2d dst=%2d p_max=%.3f suspect=%v%s\n",
				run+1, s, t, st.PMax, st.Suspect, mark)
		}
		fmt.Printf("  localized %d/%d tunnels across runs\n\n", len(localized), len(tunnels))
		sc.Teardown()
	}
}
