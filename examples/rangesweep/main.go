// Range-sweep example: the paper's central geometric claim — "as long as
// the length of the attack link is much longer than the node transmission
// range, wormhole attack will be effective... If the node transmission
// range grows large enough that comparable to the tunneled link between the
// two attackers, then wormhole attack is no longer effective."
//
// Sweep the tier (transmission range) on the cluster topology and watch the
// tunnel's span shrink, the captured route share fall, and SAM's p_max
// signal fade with it.
//
//	go run ./examples/rangesweep
package main

import (
	"fmt"

	"samnet"
)

func main() {
	fmt.Println("tier  tunnel-span  affected   p_max(normal)  p_max(attack)")
	for tier := 1; tier <= 5; tier++ {
		net := samnet.NewCluster(tier, 1)
		src := net.SrcPool[0]
		dst := net.DstPool[len(net.DstPool)-1]

		var normalP, attackP, affected float64
		const runs = 8
		for seed := uint64(1); seed <= runs; seed++ {
			n := samnet.Analyze(samnet.DiscoverMR(net, src, dst, seed).Routes)
			normalP += n.PMax
		}
		sc := samnet.Attack(net, 1, samnet.BehaviorForward)
		span := net.TunnelSpan(0)
		for seed := uint64(1); seed <= runs; seed++ {
			d := samnet.DiscoverMR(net, src, dst, seed)
			a := samnet.Analyze(d.Routes)
			attackP += a.PMax
			affected += d.AffectedBy(sc.TunnelLinks()[0])
		}
		sc.Teardown()

		fmt.Printf("%4d  %11d  %7.0f%%  %13.3f  %13.3f\n",
			tier, span, 100*affected/runs, normalP/runs, attackP/runs)
	}
	fmt.Println("\nAs the radio range approaches the tunnel's reach, the shortcut stops")
	fmt.Println("winning races, captures fewer routes, and the statistical signal fades —")
	fmt.Println("but so does the attack itself, which is SAM's whole premise: it detects")
	fmt.Println("the attack exactly when the attack is worth detecting.")
}
