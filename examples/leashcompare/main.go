// Baselines example: run the two prior-art defenses the paper's related
// work describes — the geographic packet leash and SECTOR's distance
// bounding — side by side with SAM on the same attacked network, and
// contrast what each needs and what each sees.
//
//	go run ./examples/leashcompare
package main

import (
	"fmt"

	"samnet"
	"samnet/internal/leash"
	"samnet/internal/routing/mr"
	"samnet/internal/sector"
	"samnet/internal/sim"
)

func main() {
	net := samnet.NewCluster(1, 1)
	sc := samnet.Attack(net, 1, samnet.BehaviorForward)
	defer sc.Teardown()
	tunnel := sc.TunnelLinks()[0]
	src, dst := net.SrcPool[0], net.DstPool[len(net.DstPool)-1]

	// --- Packet leash: needs GPS + loose clock sync at every node. ---
	// Monitor mode observes every reception without interfering.
	s := sim.NewNetwork(net.Topo, sim.Config{Seed: 42})
	checker := leash.New(net.Topo, leash.Config{PosError: 0.1, ClockError: 0.05}, s.Rand())
	tally := checker.Monitor(s, nil)
	disc := (&mr.Protocol{}).Discover(s, src, dst)
	verdict := leash.Summarize(tally)

	fmt.Println("geographic packet leash (requires GPS + clock sync):")
	fmt.Printf("  receptions checked: %d, flagged: %d\n", checker.Checked, checker.Flagged)
	fmt.Printf("  detected: %v, worst link: %v (actual tunnel: %v)\n",
		verdict.Detected, verdict.WorstLink, tunnel)

	// --- SECTOR: distance-bound every neighbor with timed one-bit
	// challenges; needs dedicated response hardware at every node. ---
	prover := sector.New(net.Topo, sector.Config{}, s.Rand())
	flagged := prover.SweepNeighbors()
	fmt.Println("\nSECTOR distance bounding (requires challenge-response hardware):")
	fmt.Printf("  links measured: %d, flagged: %d\n", prover.Checked, len(flagged))
	for l, d := range flagged {
		fmt.Printf("  flagged link %v at measured distance %.2f (bound %.2f)\n", l, d, prover.Bound())
	}

	// --- SAM: needs only the routes the destination already collected. ---
	st := samnet.Analyze(disc.Routes)
	fmt.Println("\nSAM (requires nothing beyond multi-path routing):")
	fmt.Printf("  %d routes, p_max=%.3f phi=%.3f\n", st.Routes, st.PMax, st.Phi)
	fmt.Printf("  accused link: %v (actual tunnel: %v)\n", st.Suspect, tunnel)

	// --- Enforcement: leashes can also prevent, not just detect. ---
	s2 := sim.NewNetwork(net.Topo, sim.Config{Seed: 42})
	checker2 := leash.New(net.Topo, leash.Config{}, s2.Rand())
	checker2.Enforce(s2, nil)
	disc2 := (&mr.Protocol{}).Discover(s2, src, dst)
	fmt.Println("\nwith leashes enforced (tunneled receptions dropped):")
	fmt.Printf("  %d routes, %.0f%% affected by the tunnel (was %.0f%%)\n",
		len(disc2.Routes), 100*disc2.AffectedBy(tunnel), 100*disc.AffectedBy(tunnel))
	fmt.Println("\ntrade-off: the leash and SECTOR detect per packet/link and can prevent,")
	fmt.Println("but every node needs position, time, or challenge-response hardware; SAM")
	fmt.Println("detects per route discovery at the destination with zero infrastructure.")
}
