// IDS-agent example: the full three-step SAM procedure inside a distributed
// intrusion detection system (paper Sec. III.B, Figs. 3-4).
//
//  1. Train a normal-condition profile for the topology.
//
//  2. Several destination nodes run SAM agents; wormhole attackers tunnel
//     route requests and blackhole the data.
//
//  3. Agents detect, probe (step 2), report to the coordinator (step 3);
//     once the quorum accuses the pair, the network isolates it and a fresh
//     discovery succeeds on clean routes.
//
//     go run ./examples/idsagent
package main

import (
	"fmt"

	"samnet"
	"samnet/internal/routing"
	"samnet/internal/sam"
)

func main() {
	net := samnet.NewCluster(1, 1)

	// --- Training: 30 normal route discoveries feed the profile. ---
	trainer := samnet.NewTrainer("cluster-1tier/MR")
	for seed := uint64(1); seed <= 30; seed++ {
		src := net.SrcPool[int(seed)%len(net.SrcPool)]
		dst := net.DstPool[int(seed*7)%len(net.DstPool)]
		d := samnet.DiscoverMR(net, src, dst, seed)
		trainer.ObserveRoutes(d.Routes)
	}
	profile, err := trainer.Profile()
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained profile %q over %d runs: pmax %v | phi %v\n\n",
		profile.Label, trainer.Runs(), profile.PMax, profile.Phi)

	// --- Attack: the embedded pair activates its tunnel and blackholes
	// data packets. ---
	sc := samnet.Attack(net, 1, samnet.BehaviorBlackhole)
	tunnel := sc.TunnelLinks()[0]
	fmt.Printf("wormhole active: link %v, payload behaviour %v\n\n", tunnel, sc.Behavior)

	// --- Distributed detection: three destinations each run an agent;
	// two distinct accusations blacklist a node. ---
	coordinator := sam.NewCoordinator(2)
	dests := net.DstPool[:3]
	for i, dstNode := range dests {
		detector := samnet.NewDetector(profile)
		seed := uint64(100 + i)
		prober := sam.ProberFunc(func(routes []routing.Route) []routing.ProbeResult {
			return samnet.ProbeRoutes(net, sc, routes, seed)
		})
		pipeline := sam.NewPipeline(detector, prober, coordinator.ResponderFor(dstNode), sam.PipelineConfig{})
		agent := sam.NewAgent(dstNode, pipeline)

		src := net.SrcPool[i*3%len(net.SrcPool)]
		disc := samnet.DiscoverMRUnderAttack(net, sc, src, dstNode, seed)
		out := agent.OnRouteDiscovery(disc.Routes)
		fmt.Printf("agent@%d: %d routes, verdict=%v lambda=%.3f", dstNode,
			len(disc.Routes), out.Verdict.Decision, out.Verdict.Lambda)
		if out.Report != nil {
			fmt.Printf(" -> report: link %v confirmed=%v (probes %d/%d failed)",
				out.Report.SuspectLink, out.Report.Confirmed,
				out.Report.ProbesFailed, out.Report.ProbesSent)
		}
		fmt.Println()
	}

	// --- Response: quorum reached, isolate the accused pair. ---
	blacklist := coordinator.Blacklist()
	fmt.Printf("\ncoordinator blacklist (quorum %d): %v\n", coordinator.Quorum, blacklist)
	if len(blacklist) == 0 {
		fmt.Println("no quorum; nothing to isolate")
		return
	}

	sc.Teardown() // isolation severs the tunnel...
	fmt.Println("\nattackers isolated (neighbors refuse their traffic); rediscovering routes:")
	d := samnet.DiscoverMRAvoiding(net, coordinator.BlacklistSet(), net.SrcPool[0], net.DstPool[len(net.DstPool)-1], 999)
	clean := 0
	for _, r := range d.Routes {
		uses := false
		for _, bad := range blacklist {
			if r.Contains(bad) {
				uses = true
			}
		}
		if !uses {
			clean++
		}
	}
	fmt.Printf("  %d routes found, %d/%d avoid every blacklisted node\n", len(d.Routes), clean, len(d.Routes))
}
