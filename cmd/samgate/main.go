// Command samgate fronts a samserve fleet with one endpoint. It places every
// profile on a replica by rendezvous hashing, proxies profile-scoped requests
// (/v1/detect, /v1/detect/batch, /v1/detect/stream, profile CRUD) to the
// owner, scatters /v1/train/batch grids across the replicas owning each
// scenario's profile and merges the results in grid order — byte-identical
// to a single-replica sweep, because training derives all randomness from
// grid coordinates — and repairs placement by shipping profile snapshot
// records: pull-on-miss when an owner answers 404, and an optional periodic
// anti-entropy pass. Replica health is checked in the background and routing
// fails over past unreachable replicas.
//
// Usage:
//
//	samgate -replicas http://h1:8080,http://h2:8080 [-addr :8070]
//	        [-health-interval 2s] [-sync-interval 0] [-no-pull-on-miss]
//	        [-max-body 0] [-retries 4] [-log-format text|json]
//
// -sync-interval 0 disables anti-entropy (pull-on-miss still repairs lazily);
// -no-pull-on-miss leaves misses as the owner's 404.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"samnet/internal/cli"
	"samnet/internal/cluster"
)

func main() {
	var (
		addr           = flag.String("addr", ":8070", "listen address")
		replicas       = flag.String("replicas", "", "comma-separated samserve base URLs (required)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "replica health sweep period (<=0 disables the background checker)")
		syncInterval   = flag.Duration("sync-interval", 0, "anti-entropy profile sync period (0 = disabled)")
		noPullOnMiss   = flag.Bool("no-pull-on-miss", false, "do not repair owner 404s by pulling the profile from another replica")
		maxBody        = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 8MiB)")
		retries        = flag.Int("retries", 0, "attempts per scatter sub-request on 429 (0 = default 4)")
		logFormat      = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger, err := cli.NewLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samgate:", err)
		os.Exit(2)
	}
	addrs := strings.Split(*replicas, ",")
	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "samgate: -replicas is required (comma-separated samserve URLs)")
		os.Exit(2)
	}

	// -health-interval <= 0 means "check once at boot, never again"; the
	// config's 0 value would select the default, so map it below zero.
	hi := *healthInterval
	if hi <= 0 {
		hi = -1
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Replicas:          addrs,
		MaxAttempts:       *retries,
		HealthInterval:    hi,
		SyncInterval:      *syncInterval,
		DisablePullOnMiss: *noPullOnMiss,
		MaxBodyBytes:      *maxBody,
		Logger:            logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	healthy := 0
	for _, st := range gw.Fleet().Statuses() {
		if st.Healthy {
			healthy++
		}
	}
	logger.Info("starting",
		"addr", *addr, "replicas", len(addrs), "healthy", healthy,
		"health_interval", *healthInterval, "sync_interval", *syncInterval,
		"pull_on_miss", !*noPullOnMiss)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Scatter-gathered training sweeps and streams run long; the stream
		// handler manages its own idle deadline, and train/batch lifts the
		// write deadline like the replicas do.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		logger.Error("fatal", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown incomplete", "err", err)
	}
	gw.Close()
	logger.Info("stopped")
}
